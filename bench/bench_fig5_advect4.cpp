// Reproduces Figure 5 of the paper: bounded advection for the fourth-order
// CP PLL. As in the paper, advection alone is inconclusive after the bounded
// number of iterations (their progress was asymmetric; ours stalls against
// the slow phase-error mode) and the argument is closed by escape
// certificates on the residual region — the paper needed certificates for
// two modes; we split the residual region by the sign of the phase error,
// yielding the same count.
#include <cstdio>

#include "bench_common.hpp"
#include "core/escape.hpp"
#include "util/timer.hpp"

using namespace soslock;

int main() {
  const pll::Params params = pll::Params::paper_fourth_order();
  std::printf("=== Figure 5: fourth-order CP PLL bounded advection + escape ===\n%s\n",
              params.str().c_str());
  const pll::ReducedModel model = pll::make_averaged(params);
  const std::size_t nvars = model.system.nvars();

  core::PipelineOptions opt;
  opt.lyapunov = bench::pll_lyapunov_options(4, bench::env_flag("SOSLOCK_PAPER_DEGREES"));
  opt.advection = bench::pll_advection_options(4);
  opt.max_advection_iterations = 7;  // the paper stopped after 7 iterations
  opt.escape_fallback = false;       // we run the escape stage explicitly below

  const poly::Polynomial b_init =
      bench::ellipsoid(nvars, {6.0, 6.0, 6.0, 0.9});
  util::Timer timer;
  const core::PipelineReport report =
      core::InevitabilityVerifier(opt).verify(model.system, b_init);
  const double t_advect = timer.seconds();
  std::printf("%s\n", report.summary().c_str());

  // Escape stage: residual region split by the sign of e (mirrors the
  // paper's two per-mode certificates; the pink region of their Fig. 5).
  int certificates = 0;
  double t_escape = 0.0;
  if (!report.advection_included && !report.advection_iterates.empty()) {
    const poly::Polynomial& b_final = report.advection_iterates.back();
    const poly::Polynomial e_var = poly::Polynomial::variable(nvars, model.e_index);
    core::EscapeOptions eopt;
    eopt.certificate_degree = 4;  // the paper's degree-4 escape certificates
    timer.reset();
    for (int sign = -1; sign <= 1; sign += 2) {
      hybrid::SemialgebraicSet region = model.system.modes()[0].domain;
      region.add_constraint(-1.0 * b_final);  // inside the advected set
      region.add_constraint(report.invariant.certificates.front() -
                            report.invariant.consistent_level);  // outside A_I
      region.add_constraint(static_cast<double>(sign) * e_var);  // half-space
      const core::EscapeResult esc =
          core::EscapeCertifier(eopt).certify_set(model.system, 0, region);
      std::printf("escape certificate on e %s 0 half: %s (rate %.4g)\n",
                  sign < 0 ? "<=" : ">=", esc.success ? "FOUND" : esc.message.c_str(),
                  esc.success ? esc.rates.front() : 0.0);
      if (esc.success) ++certificates;
    }
    t_escape = timer.seconds();
  }

  // Panels matching the paper: (v2, v3) and (v2, e).
  std::vector<util::Series> left, right;
  for (std::size_t k = 0; k < report.advection_iterates.size(); ++k) {
    const poly::Polynomial& b = report.advection_iterates[k];
    const char glyph = k == 0 ? '#' : '.';
    const std::string name = k == 0 ? "initial set" : "iterate " + std::to_string(k);
    left.push_back({name, glyph, bench::boundary_slice(b, 1, 2, 0.0)});
    right.push_back({name, glyph, bench::boundary_slice(b, 1, 3, 0.0)});
  }
  const poly::Polynomial& v = report.invariant.certificates.front();
  const double c = report.invariant.consistent_level;
  left.push_back({"attractive invariant", '*', bench::boundary_slice(v, 1, 2, c)});
  right.push_back({"attractive invariant", '*', bench::boundary_slice(v, 1, 3, c)});
  auto select = [](const std::vector<util::Series>& s) {
    std::vector<util::Series> out{s.front()};
    if (s.size() > 3) out.push_back(s[s.size() / 2]);
    if (s.size() > 2) out.push_back(s[s.size() - 2]);
    out.push_back(s.back());
    return out;
  };
  bench::print_series_plot("Fig.5 left: advection on (v2, v3)", select(left), 8.0, 8.0,
                           "v2 [V]", "v3 [V]");
  bench::print_series_plot("Fig.5 right: advection on (v2, e)", select(right), 8.0, 1.2,
                           "v2 [V]", "e [cycles]");
  std::vector<util::Series> all = left;
  all.insert(all.end(), right.begin(), right.end());
  bench::dump_csv("fig5_advect4.csv", all);

  std::printf("\nadvection: %d iterations, %.3fs (paper: 7 iterations, 140.7s); "
              "escape: %d certificates, %.3fs (paper: 2 certificates, 18s)\n",
              report.advection_iterations, t_advect, certificates, t_escape);
  std::printf("verdict: %s\n",
              certificates == 2 ? "inevitability verified (advection + escape)"
                                : "inconclusive");
  return 0;
}
