#pragma once
// Shared helpers for the figure/table reproduction benches: boundary
// sampling of polynomial sublevel sets for 2-D projections, standard
// pipeline configurations, and CSV/ASCII output.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "linalg/kernels.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"
#include "util/ascii_plot.hpp"
#include "util/cpu.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace soslock::bench {

/// Worker-thread banner, honoring the SOSLOCK_THREADS override (the
/// sanitizer CI pins fan-out with it) unlike raw hardware_concurrency().
/// Returns the count so every gate bench can record a "worker_threads"
/// field in its JSON section — a speedup number without the thread count
/// that produced it is not reproducible evidence.
inline std::size_t thread_banner() {
  const std::size_t hw = util::ThreadPool::hardware_threads();
  std::printf("worker threads: %zu%s\n", hw,
              hw > 1 ? "" : "  (single core: parallel modes cannot win here)");
  return hw;
}

/// SIMD dispatch banner, the ISA analogue of thread_banner(): which kernel
/// table this process resolved at startup (detection + SOSLOCK_SIMD
/// override) versus what the CPU supports. Returns the dispatched ISA so the
/// gates can record it — a kernel speedup without the ISA that produced it
/// is not reproducible evidence.
inline util::SimdIsa cpu_banner() {
  const util::SimdIsa active = linalg::active_isa();
  const util::SimdIsa detected = util::detected_isa();
  std::printf("simd kernels: %s%s (cpu supports %s)\n", util::isa_name(active),
              active == detected ? "" : "  [SOSLOCK_SIMD override]",
              util::isa_name(detected));
  return active;
}

/// Append the two kernel-configuration fields every gate bench records in
/// its JSON section: the dispatched ISA as its enum code (0=scalar 1=neon
/// 2=avx2 3=avx512 — write_bench_json is numbers-only) and whether the run
/// used the mixed-precision IPM. Wraps the field list so call sites stay
/// brace-literal: write_bench_json(path, sec, with_kernel_fields({...}), f).
inline std::vector<std::pair<std::string, double>> with_kernel_fields(
    std::vector<std::pair<std::string, double>> fields, bool mixed_precision = false) {
  fields.emplace_back("simd_isa_code",
                      static_cast<double>(static_cast<int>(linalg::active_isa())));
  fields.emplace_back("mixed_precision", mixed_precision ? 1.0 : 0.0);
  return fields;
}

/// Boundary of {p <= level} intersected with the (i, j) coordinate plane
/// (all other variables fixed to 0), sampled over `rays` directions by
/// bisection up to radius `rmax`. Points where the set exceeds rmax are
/// clamped (consistent with plotting a bounded window).
inline std::vector<std::pair<double, double>> boundary_slice(const poly::Polynomial& p,
                                                             std::size_t i, std::size_t j,
                                                             double level, int rays = 180,
                                                             double rmax = 20.0) {
  std::vector<std::pair<double, double>> points;
  points.reserve(static_cast<std::size_t>(rays));
  linalg::Vector x(p.nvars(), 0.0);
  for (int k = 0; k < rays; ++k) {
    const double theta = 2.0 * M_PI * k / rays;
    const double ci = std::cos(theta), cj = std::sin(theta);
    auto inside = [&](double r) {
      x.assign(p.nvars(), 0.0);
      x[i] = r * ci;
      x[j] = r * cj;
      return p.eval(x) <= level;
    };
    if (!inside(0.0)) continue;  // origin outside this slice: skip ray
    double lo = 0.0, hi = rmax;
    if (inside(rmax)) {
      points.emplace_back(rmax * ci, rmax * cj);
      continue;
    }
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      (inside(mid) ? lo : hi) = mid;
    }
    points.emplace_back(lo * ci, lo * cj);
  }
  return points;
}

/// Initial ellipsoidal level-set polynomial 0.5 * (sum (x_i/a_i)^2 - 1).
inline poly::Polynomial ellipsoid(std::size_t nvars, const std::vector<double>& semiaxes) {
  poly::Polynomial b(nvars);
  for (std::size_t i = 0; i < semiaxes.size(); ++i) {
    const poly::Polynomial x = poly::Polynomial::variable(nvars, i);
    b += (1.0 / (semiaxes[i] * semiaxes[i])) * x * x;
  }
  b -= poly::Polynomial::constant(nvars, 1.0);
  b *= 0.5;
  return b;
}

/// Standard P1 (attractive invariant) configuration for the PLL benches.
/// `paper_degrees` switches the certificate degree to the paper's (6 for the
/// third order, 4 for the fourth order); default uses the fast settings.
inline core::LyapunovOptions pll_lyapunov_options(int order, bool paper_degrees) {
  core::LyapunovOptions opt;
  opt.certificate_degree = paper_degrees ? (order == 3 ? 6u : 4u) : 2u;
  opt.flow_decrease = core::FlowDecrease::Strict;
  opt.strict_margin = order == 3 ? 1e-4 : 1e-5;
  opt.maximize_region = true;
  return opt;
}

inline core::AdvectionOptions pll_advection_options(int order) {
  core::AdvectionOptions opt;
  if (order == 3) {
    opt.h = 0.01;
    opt.gamma = 0.008;
  } else {
    opt.h = 0.004;
    opt.gamma = 0.01;
  }
  opt.eps = 0.3;
  return opt;
}

inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Minimal machine-readable bench output: one flat JSON object per section,
/// {"section": {"field": value, ...}, ...}. `fresh` truncates the file (the
/// first bench of a CI run); otherwise sections written by earlier benches
/// are kept and a section with the same name is *replaced*, so re-running
/// any single bench is idempotent. Only files this helper wrote (its fixed
/// two-space formatting) are parsed; anything else starts fresh.
inline void write_bench_json(const std::string& path, const std::string& section,
                             const std::vector<std::pair<std::string, double>>& fields,
                             bool fresh) {
  // Recover (name, body-lines) of previously written sections.
  std::vector<std::pair<std::string, std::string>> sections;
  if (!fresh) {
    std::string existing;
    if (std::FILE* in = std::fopen(path.c_str(), "rb")) {
      char buf[4096];
      std::size_t got;
      while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0) existing.append(buf, got);
      std::fclose(in);
    }
    std::string name, body;
    bool inside = false;
    std::size_t pos = 0;
    while (pos < existing.size()) {
      std::size_t eol = existing.find('\n', pos);
      if (eol == std::string::npos) eol = existing.size();
      const std::string line = existing.substr(pos, eol - pos);
      pos = eol + 1;
      if (!inside && line.size() > 4 && line.compare(0, 3, "  \"") == 0 &&
          line.back() == '{') {
        const std::size_t close = line.find('"', 3);
        if (close == std::string::npos) continue;
        name = line.substr(3, close - 3);
        body.clear();
        inside = true;
      } else if (inside && (line == "  }" || line == "  },")) {
        sections.emplace_back(name, body);
        inside = false;
      } else if (inside) {
        // Strip any trailing comma; it is re-added on write.
        std::string entry = line;
        if (!entry.empty() && entry.back() == ',') entry.pop_back();
        body += entry + "\n";
      }
    }
  }
  // Replace or append this bench's section.
  std::string body;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    char line[160];
    std::snprintf(line, sizeof(line), "    \"%s\": %.6g\n", fields[i].first.c_str(),
                  fields[i].second);
    body += line;
  }
  bool replaced = false;
  for (auto& [existing_name, existing_body] : sections) {
    if (existing_name == section) {
      existing_body = body;
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(section, body);

  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  for (std::size_t s = 0; s < sections.size(); ++s) {
    std::fprintf(out, "  \"%s\": {\n", sections[s].first.c_str());
    // Re-add the per-field commas (every line but the last).
    const std::string& b = sections[s].second;
    std::size_t pos = 0;
    while (pos < b.size()) {
      std::size_t eol = b.find('\n', pos);
      if (eol == std::string::npos) eol = b.size();
      const bool last = b.find('\n', eol + 1) == std::string::npos && eol + 1 >= b.size();
      std::fprintf(out, "%.*s%s\n", static_cast<int>(eol - pos), b.c_str() + pos,
                   last ? "" : ",");
      pos = eol + 1;
    }
    std::fprintf(out, "  }%s\n", s + 1 < sections.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
}

inline void print_series_plot(const std::string& title,
                              const std::vector<util::Series>& series, double extent_x,
                              double extent_y, const std::string& xlabel,
                              const std::string& ylabel) {
  util::AsciiPlot plot(-extent_x, extent_x, -extent_y, extent_y);
  for (const util::Series& s : series) plot.add(s);
  std::printf("%s\n", plot.str(title, xlabel, ylabel).c_str());
}

/// Dump multiple named boundary series to one CSV (series,x,y columns).
inline void dump_csv(const std::string& path, const std::vector<util::Series>& series) {
  util::CsvWriter csv({"series", "x", "y"});
  for (const util::Series& s : series) {
    for (const auto& [x, y] : s.points) csv.add_row(std::vector<std::string>{
        s.name, std::to_string(x), std::to_string(y)});
  }
  if (csv.write(path)) std::printf("wrote %s (%zu points)\n", path.c_str(), csv.rows());
}

}  // namespace soslock::bench
