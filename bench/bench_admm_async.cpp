// PR 8 gate: asynchronous clique-parallel ADMM vs the synchronous loop on a
// decomposable clock-tree coupling SDP.
//
// Workload: K-loop clock tree with *clustered* leaf crosstalk — the leaves
// split into fully-coupled clusters whose only tie to each other is the
// shared rail, and the coupling SDP coarsens each cluster's measurement rows
// into per-cluster aggregate observables. That shape puts the solve squarely
// in the clique-parallel regime: large per-clique eigensplits (one
// cluster+rail clique per ~25 states) against a near-constant consensus-side
// normal solve and one-entry separators (an unbroken banded chain instead
// makes consecutive cliques share all but one vertex, so the serial
// overlap-eliminated solve grows quadratically and swamps the eigenwork).
// Lowered once with native decomposed cones and the subtree-partition pass
// (partition_workers = 4), then the same lowered problem is solved three
// ways:
//   1. synchronous at its default configuration (threads = 1) — the baseline
//      the speedup gate measures against;
//   2. synchronous, threads = 4 — the fork-join parallel variant (one thread
//      spawn + barrier per iteration), reported for comparison;
//   3. async, workers = 4, bounded staleness — resident per-clique workers
//      exchanging separator state through mailboxes.
//
// Gates (exit nonzero on failure):
//   * async wall-clock >= 1.5x over the synchronous loop (needs >= 4
//     hardware threads; reported but not enforced below that, like every
//     parallel-speedup bench in this suite — a single-core runner cannot
//     exhibit parallelism);
//   * verdict parity: same status, matching recovered objective;
//   * non-degenerate telemetry: every worker iterated, the observed
//     staleness respects the bound, and the consensus published rounds.
// Writes the admm_async section of BENCH_PR8.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "sdp/admm.hpp"
#include "sdp/lowering.hpp"
#include "sdp/solver.hpp"
#include "util/timer.hpp"

using namespace soslock;

namespace {

constexpr std::size_t kWorkers = 4;
constexpr int kStaleness = 1;

/// Workload-shape overrides for local tuning (the CI gate always runs the
/// defaults): SOSLOCK_BENCH_LOOPS, SOSLOCK_BENCH_HOPS, SOSLOCK_BENCH_CLUSTER,
/// SOSLOCK_BENCH_MINBLK.
std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct Run {
  sdp::Solution solution;
  sdp::Solution recovered;
  double wall = 1e99;
};

Run run_config(const sdp::Lowering& lowering, const sdp::AdmmOptions& opt) {
  Run out;
  for (int rep = 0; rep < 3; ++rep) {  // best-of-3: shared-runner noise
    const util::Timer wall;
    sdp::SolveContext context;
    sdp::Solution sol = sdp::AdmmSolver(opt).solve(lowering.problem, context);
    out.wall = std::min(out.wall, wall.seconds());
    if (rep == 0) {
      out.recovered = sdp::recover(sol, lowering);
      out.solution = std::move(sol);
    }
  }
  return out;
}

bool verdict_parity(const sdp::Solution& a, const sdp::Solution& b) {
  return a.status == b.status &&
         std::fabs(a.primal_objective - b.primal_objective) <
             1e-3 * (1.0 + std::fabs(b.primal_objective));
}

}  // namespace

int main() {
  std::printf("=== Async clique-parallel ADMM vs synchronous loop ===\n");
  const std::size_t worker_threads = bench::thread_banner();
  bench::cpu_banner();

  pll::ClockTreeOptions tree;
  tree.loops = env_size("SOSLOCK_BENCH_LOOPS", 192);  // >= the K = 16 gate scale
  tree.neighbor_coupling = 0.05;
  tree.cluster = env_size("SOSLOCK_BENCH_CLUSTER", 24);
  tree.neighbor_hops = env_size("SOSLOCK_BENCH_HOPS", tree.cluster - 1);
  const pll::ClockTreeModel model =
      pll::make_clock_tree(pll::Params::paper_third_order(), tree);
  const sdp::Problem original = pll::clock_tree_coupling_sdp(model.constants, tree);

  sdp::LoweringOptions low_opt;
  low_opt.sparsity = sdp::SparsityOptions::Chordal;
  low_opt.chordal.min_block_size = env_size("SOSLOCK_BENCH_MINBLK", 4);
  low_opt.partition_workers = kWorkers;
  const sdp::Lowering lowering = sdp::lower(original, low_opt);
  std::printf("clock tree: K=%zu loops, %zu states, %zu rows -> %zu blocks, "
              "%zu overlap couplings, partition: %s\n\n",
              tree.loops, 1 + 2 * tree.loops, original.num_rows(),
              lowering.problem.num_blocks(), lowering.problem.num_overlaps(),
              lowering.partition.detail.c_str());

  sdp::AdmmOptions sync1;
  sync1.threads = 1;
  // Wall-clock bench, not a certification run: the coarse aggregate-row
  // space leaves the dual slightly degenerate, so the last half-decade of
  // dual residual is stagnation, not progress worth timing.
  sync1.tolerance = 1e-5;
  sdp::AdmmOptions sync4 = sync1;
  sync4.threads = kWorkers;
  sdp::AdmmOptions async = sync1;
  async.async = true;
  async.workers = kWorkers;
  async.max_staleness = kStaleness;

  const Run rs1 = run_config(lowering, sync1);
  const Run rs4 = run_config(lowering, sync4);
  const Run ra = run_config(lowering, async);

  const double speedup = rs1.wall / std::max(1e-12, ra.wall);
  const double speedup_forkjoin = rs4.wall / std::max(1e-12, ra.wall);
  std::printf("%-34s %9.4fs  (%d iters)\n", "sync baseline (threads=1)", rs1.wall,
              rs1.solution.iterations);
  std::printf("%-34s %9.4fs  (%d iters)\n", "sync fork-join (threads=4)", rs4.wall,
              rs4.solution.iterations);
  std::printf("%-34s %9.4fs  (%d iters)\n", "async, 4 workers, staleness<=1", ra.wall,
              ra.solution.iterations);
  std::printf("%-34s %9.2fx (vs fork-join: %.2fx)\n", "speedup vs synchronous", speedup,
              speedup_forkjoin);
  const sdp::PhaseTimes& ph = rs1.solution.phase;
  std::printf("%-34s eig %.3fs, normal solve %.3fs, residuals %.3fs\n",
              "sync phase split (parallelizable:", ph.eig, ph.schur, ph.recover);

  const auto& wi = ra.solution.worker_iterations;
  const int min_rounds = wi.empty() ? 0 : *std::min_element(wi.begin(), wi.end());
  const int max_rounds = wi.empty() ? 0 : *std::max_element(wi.begin(), wi.end());
  std::printf("\nasync telemetry: %zu workers, rounds [%d, %d], staleness seen %d "
              "(bound %d), %ld consensus rounds, overlap residual %.2e\n\n",
              wi.size(), min_rounds, max_rounds, ra.solution.max_staleness_seen,
              kStaleness, ra.solution.consensus_rounds, ra.solution.consensus_residual);

  int failures = 0;
  auto gate = [&failures](bool ok, const char* what) {
    std::printf("  gate %-58s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };
  std::printf("gates:\n");
  if (worker_threads >= kWorkers) {
    gate(speedup >= 1.5, "async >= 1.5x over synchronous at 4 workers");
  } else {
    std::printf("  gate %-58s SKIP (%zu hardware threads < %zu workers)\n",
                "async >= 1.5x over synchronous at 4 workers", worker_threads, kWorkers);
  }
  gate(verdict_parity(ra.recovered, rs1.recovered), "verdict parity with synchronous");
  gate(verdict_parity(rs1.recovered, rs4.recovered), "sync thread-count parity (1 vs 4)");
  gate(wi.size() >= 2 && min_rounds > 0, "every worker iterated");
  gate(ra.solution.max_staleness_seen <= kStaleness, "observed staleness within bound");
  gate(ra.solution.consensus_rounds > 0, "consensus thread published rounds");
  gate(std::isfinite(ra.solution.consensus_residual), "overlap residual recorded");

  bench::write_bench_json(
      "BENCH_PR8.json", "admm_async",
      bench::with_kernel_fields({
          {"loops", static_cast<double>(tree.loops)},
          {"cluster", static_cast<double>(tree.cluster)},
          {"rows", static_cast<double>(original.num_rows())},
          {"blocks", static_cast<double>(lowering.problem.num_blocks())},
          {"overlap_couplings", static_cast<double>(lowering.problem.num_overlaps())},
          {"wall_sync_seconds", rs1.wall},
          {"wall_sync_forkjoin_seconds", rs4.wall},
          {"wall_async_seconds", ra.wall},
          {"speedup_vs_sync", speedup},
          {"speedup_vs_forkjoin", speedup_forkjoin},
          {"sync_eig_seconds", ph.eig},
          {"sync_normal_solve_seconds", ph.schur},
          {"workers", static_cast<double>(kWorkers)},
          {"max_staleness", static_cast<double>(kStaleness)},
          {"max_staleness_seen", static_cast<double>(ra.solution.max_staleness_seen)},
          {"worker_rounds_min", static_cast<double>(min_rounds)},
          {"worker_rounds_max", static_cast<double>(max_rounds)},
          {"consensus_rounds", static_cast<double>(ra.solution.consensus_rounds)},
          {"consensus_residual", ra.solution.consensus_residual},
          {"worker_threads", static_cast<double>(worker_threads)},
      }),
      /*fresh=*/true);
  std::printf("\nwrote BENCH_PR8.json (admm_async)\n");
  return failures == 0 ? 0 : 1;
}
