// Certification sweep throughput: the paper's third-order charge-pump design
// swept over a 5 x 4 ip x kv grid (20 design points, all inside the lockable
// region), once with warm chaining + the in-place coefficient-update pass and
// once fully cold (no warm starts, but the same per-lane lowering cache).
//
// The machine-checked gates (exit 1 on failure) are iteration counts, hit
// rates and pass provenance — not wall clock, which single-core CI cannot
// measure meaningfully:
//   1. warm-hit rate > 50% (acceptance floor; a healthy chain hits 19/20),
//   2. warm chaining takes strictly fewer total IPM iterations than solving
//      every point cold,
//   3. zero recompiles after the first grid point: exactly 1 full pipeline
//      run and points-1 in-place updates (plus one update per cold re-solve),
//   4. the update pass leaves provenance: the second lower() of a
//      structurally identical compile stamps passes ["update", "equilibrate"],
//   5. kill-and-resume: the sweep is interrupted after 8 points (max_points +
//      a checkpoint file), resumed from the checkpoint, and the resumed
//      report must be verdict-identical to the uninterrupted warm sweep while
//      re-solving strictly fewer points than a cold start would.
// Results land in BENCH_PR6.json (sections sweep_throughput, sweep_resume).
#include <cstddef>
#include <cstdio>

#include "bench_common.hpp"
#include "sdp/lowering.hpp"
#include "sweep/grid.hpp"
#include "sweep/query.hpp"
#include "sweep/service.hpp"

using namespace soslock;

int main() {
  const std::size_t worker_threads = bench::thread_banner();
  bench::cpu_banner();
  const pll::Params base = pll::Params::paper_third_order();
  const sweep::Grid grid(base, {
      {sweep::Axis::Ip, 5, 300e-6, 700e-6, 5e-6},
      {sweep::Axis::Kv, 4, 120.0, 280.0, 2.0},
  });
  const sweep::CertificationQuery query = sweep::lyapunov_query();
  const std::size_t points = grid.size();
  std::printf("=== certification sweep throughput: %zu-point ip x kv grid ===\n\n", points);

  sweep::SweepOptions warm_options;
  warm_options.solver.backend = "ipm";
  warm_options.threads = 1;  // one lane: the chain covers the whole grid
  sweep::SweepOptions cold_options = warm_options;
  cold_options.warm_chaining = false;
  cold_options.solver.warm_start = false;

  std::printf("warm-chained sweep (in-place updates + neighbor warm starts):\n");
  const sweep::SweepReport warm = sweep::run_sweep(grid, query, warm_options);
  std::printf("%s\n\n", warm.summary().c_str());

  std::printf("cold sweep (every point from scratch):\n");
  const sweep::SweepReport cold = sweep::run_sweep(grid, query, cold_options);
  std::printf("%s\n\n", cold.summary().c_str());

  // Direct provenance check of the update pass: two structurally identical
  // compiles through one LoweringCache — the second must be the in-place
  // path, stamped as the "update" pass, not a re-run of the full pipeline.
  sdp::LoweringCache cache;
  const sdp::LoweringOptions lopt;
  cache.lower(query.build(grid.params(0)).compile(), lopt);
  const sdp::Lowering& second = cache.lower(query.build(grid.params(1)).compile(), lopt);
  const bool update_provenance = !second.passes.empty() &&
                                 second.passes.front().name == "update" &&
                                 cache.full_lowerings() == 1 && cache.updates() == 1;

  int failures = 0;
  auto gate = [&failures](bool ok, const char* what) {
    std::printf("  gate %-58s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };
  std::printf("gates:\n");
  gate(warm.certified == points, "every grid point certifies");
  gate(warm.warm_hit_rate() > 0.5, "warm-hit rate > 50%");
  gate(warm.total_iterations < cold.total_iterations,
       "warm chaining beats cold on total IPM iterations");
  gate(warm.full_lowerings == 1 &&
           warm.updates == points - 1 + warm.cold_restarts,
       "zero recompiles after the first grid point");
  gate(update_provenance, "update pass stamps [\"update\", ...] provenance");

  // --- kill-and-resume: interrupt the warm sweep deterministically after
  // kKillAfter points with a checkpoint on disk, then resume from it.
  constexpr std::size_t kKillAfter = 8;
  const char* ckpt = "bench_sweep_checkpoint.txt";
  sweep::SweepOptions kill_options = warm_options;
  kill_options.checkpoint_path = ckpt;
  kill_options.max_points = kKillAfter;
  std::printf("\nkilled sweep (checkpoint after every point, stop at %zu):\n",
              kKillAfter);
  const sweep::SweepReport killed = sweep::run_sweep(grid, query, kill_options);
  std::printf("%s\n\n", killed.summary().c_str());

  sweep::SweepOptions resume_options = warm_options;
  resume_options.resume_from = ckpt;
  std::printf("resumed sweep (from %s):\n", ckpt);
  const sweep::SweepReport resumed = sweep::run_sweep(grid, query, resume_options);
  std::printf("%s\n\n", resumed.summary().c_str());

  bool verdicts_identical = resumed.points.size() == warm.points.size();
  for (std::size_t i = 0; verdicts_identical && i < warm.points.size(); ++i) {
    verdicts_identical = resumed.points[i].certified == warm.points[i].certified &&
                         !resumed.points[i].skipped;
  }
  const std::size_t resolved = points - resumed.resumed_points;

  std::printf("resume gates:\n");
  gate(killed.interrupted && killed.skipped == points - kKillAfter,
       "kill run stops after the checkpointed prefix");
  gate(verdicts_identical, "resumed report is verdict-identical to uninterrupted");
  gate(resumed.resumed_points == kKillAfter && resolved < points,
       "resume re-solves strictly fewer points than cold");
  gate(resumed.total_iterations <= warm.total_iterations,
       "resume spends no more iterations than the uninterrupted sweep");
  std::printf("\n");

  bench::write_bench_json(
      "BENCH_PR6.json", "sweep_throughput",
      bench::with_kernel_fields({
          {"points", static_cast<double>(points)},
          {"certified", static_cast<double>(warm.certified)},
          {"certificates_per_second", warm.certificates_per_second()},
          {"warm_hit_rate", warm.warm_hit_rate()},
          {"warm_total_iterations", static_cast<double>(warm.total_iterations)},
          {"cold_total_iterations", static_cast<double>(cold.total_iterations)},
          {"full_lowerings", static_cast<double>(warm.full_lowerings)},
          {"inplace_updates", static_cast<double>(warm.updates)},
          {"cold_restarts", static_cast<double>(warm.cold_restarts)},
          {"warm_seconds", warm.seconds},
          {"cold_seconds", cold.seconds},
          {"worker_threads", static_cast<double>(worker_threads)},
      }),
      /*fresh=*/true);
  bench::write_bench_json(
      "BENCH_PR6.json", "sweep_resume",
      bench::with_kernel_fields({
          {"kill_after", static_cast<double>(kKillAfter)},
          {"killed_skipped", static_cast<double>(killed.skipped)},
          {"resumed_points", static_cast<double>(resumed.resumed_points)},
          {"resolved_points", static_cast<double>(resolved)},
          {"resumed_certified", static_cast<double>(resumed.certified)},
          {"resumed_total_iterations", static_cast<double>(resumed.total_iterations)},
          {"verdicts_identical", verdicts_identical ? 1.0 : 0.0},
      }),
      /*fresh=*/false);
  std::remove(ckpt);
  std::printf("wrote BENCH_PR6.json (sweep_throughput, sweep_resume)\n");
  return failures == 0 ? 0 : 1;
}
