// Micro-benchmarks of the SDP solver hot paths, with the PR 4 kernel gates:
//
//  * IPM scaling with block size / constraint count, and the value of the
//    Mehrotra predictor-corrector (informational).
//  * ADMM PSD-projection-dominated solve with the tridiagonal-QL production
//    eigensolver vs the cyclic-Jacobi reference (AdmmOptions::use_jacobi_eig)
//    — the eigensolver-swap speedup, gated.
//  * IPM Schur assembly, fast sparse-panel upper-triangle path vs the
//    pre-overhaul reference (IpmOptions::reference_schur) on a random SDP
//    (informational here; the pump-vertex model gate lives in
//    bench_table2_timing).
//
// Speedups are measured per iteration from the backends' per-phase timers
// (sdp::Solution::phase), so they are self-relative on the current machine:
// immune to absolute-speed noise between CI runners. Results are written to
// BENCH_PR4.json (this bench truncates; bench_table2_timing appends) and a
// regression beyond the noise slack exits nonzero, which is what CI keys on.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "linalg/matrix.hpp"
#include "sdp/admm.hpp"
#include "sdp/ipm.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace soslock;

namespace {

/// Random feasible min-trace SDP: b = A(X*) for a random PSD X*.
sdp::Problem random_sdp(std::size_t n, std::size_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1.0, 1.0);
  const linalg::Matrix xstar = linalg::transposed_times(g, g);

  sdp::Problem p;
  const std::size_t b = p.add_block(n);
  p.set_block_objective(b, linalg::Matrix::identity(n));
  for (std::size_t i = 0; i < m; ++i) {
    sdp::Row row;
    sdp::SparseSym a;
    for (int k = 0; k < 6; ++k) {
      const std::size_t r = rng.index(n), c = rng.index(n);
      a.add(std::min(r, c), std::max(r, c), rng.uniform(-1.0, 1.0));
    }
    if (a.empty()) a.add(0, 0, 1.0);
    linalg::Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[b] = std::move(a);
    p.add_row(std::move(row));
  }
  return p;
}

double per_iter(double seconds, int iterations) {
  return seconds / std::max(1, iterations);
}

}  // namespace

int main() {
  const std::size_t worker_threads = bench::thread_banner();
  bench::cpu_banner();
  std::printf("=== IPM scaling (informational) ===\n");
  std::printf("%-26s %10s %10s %8s\n", "", "wall", "schur/it", "iters");
  for (std::size_t n : {5u, 10u, 20u, 40u}) {
    const sdp::Problem p = random_sdp(n, 2 * n, 7);
    const util::Timer t;
    const sdp::Solution sol = sdp::IpmSolver().solve(p);
    std::printf("block n=%-17zu %9.3fs %9.2es %8d\n", n, t.seconds(),
                per_iter(sol.phase.schur, sol.iterations), sol.iterations);
  }
  for (std::size_t m : {10u, 40u, 120u}) {
    const sdp::Problem p = random_sdp(12, m, 11);
    const util::Timer t;
    const sdp::Solution sol = sdp::IpmSolver().solve(p);
    std::printf("constraints m=%-11zu %9.3fs %9.2es %8d\n", m, t.seconds(),
                per_iter(sol.phase.schur, sol.iterations), sol.iterations);
  }
  {
    sdp::IpmOptions no_pc;
    no_pc.predictor_corrector = false;
    const sdp::Problem p = random_sdp(16, 40, 13);
    const sdp::Solution with_pc = sdp::IpmSolver().solve(p);
    const sdp::Solution without = sdp::IpmSolver(no_pc).solve(p);
    std::printf("predictor-corrector: %d iters with, %d without\n", with_pc.iterations,
                without.iterations);
  }

  // --- ADMM eigensolver swap: QL vs Jacobi on projection-dominated solves ---
  // One large Gram-sized block: per-iteration cost is the block
  // eigendecomposition, i.e. exactly what the tridiagonal-QL swap targets.
  std::printf("\n=== ADMM PSD projection: tridiagonal-QL vs Jacobi reference ===\n");
  const sdp::Problem big = random_sdp(120, 48, 17);
  sdp::AdmmOptions aopt;
  aopt.max_iterations = 80;  // timing window; convergence is not the point
  const sdp::Solution ql = sdp::AdmmSolver(aopt).solve(big);
  sdp::AdmmOptions jopt = aopt;
  jopt.use_jacobi_eig = true;
  const sdp::Solution jac = sdp::AdmmSolver(jopt).solve(big);
  const double ql_eig = per_iter(ql.phase.eig, ql.iterations);
  const double jac_eig = per_iter(jac.phase.eig, jac.iterations);
  const double eig_speedup = jac_eig / std::max(1e-12, ql_eig);
  std::printf("%-26s %12.4es/it (%d iters)\n", "QL projection", ql_eig, ql.iterations);
  std::printf("%-26s %12.4es/it (%d iters)\n", "Jacobi projection", jac_eig, jac.iterations);
  std::printf("%-26s %12.2fx\n", "eigensolver swap speedup", eig_speedup);

  // --- IPM Schur assembly: sparse panels vs reference -----------------------
  std::printf("\n=== IPM Schur assembly: fast vs reference (random SDP) ===\n");
  const sdp::Problem mid = random_sdp(40, 80, 19);
  const sdp::Solution fast = sdp::IpmSolver().solve(mid);
  sdp::IpmOptions ref_opt;
  ref_opt.reference_schur = true;
  const sdp::Solution ref = sdp::IpmSolver(ref_opt).solve(mid);
  const double fast_schur = per_iter(fast.phase.schur, fast.iterations);
  const double ref_schur = per_iter(ref.phase.schur, ref.iterations);
  const double schur_speedup = ref_schur / std::max(1e-12, fast_schur);
  std::printf("%-26s %12.4es/it (%d iters, %s)\n", "fast assembly", fast_schur,
              fast.iterations, fast.backend.c_str());
  std::printf("%-26s %12.4es/it (%d iters)\n", "reference assembly", ref_schur,
              ref.iterations);
  std::printf("%-26s %12.2fx\n", "schur assembly speedup", schur_speedup);

  bench::write_bench_json("BENCH_PR4.json", "sdp_micro",
                          bench::with_kernel_fields(
                              {{"admm_eig_per_iter_ql", ql_eig},
                               {"admm_eig_per_iter_jacobi", jac_eig},
                               {"admm_eig_speedup", eig_speedup},
                               {"ipm_schur_per_iter_fast", fast_schur},
                               {"ipm_schur_per_iter_reference", ref_schur},
                               {"ipm_schur_speedup_random", schur_speedup},
                               {"worker_threads", static_cast<double>(worker_threads)}}),
                          // Merge (replace own section only): fresh=true
                          // made the recorded file order-dependent — running
                          // this bench after bench_table2_timing wiped the
                          // table2 section.
                          /*fresh=*/false);
  std::printf("\nwrote BENCH_PR4.json (sdp_micro)\n");

  int failures = 0;

  // --- PR 10: mixed-precision IPM, FP32 Schur factor + FP64 refinement -----
  // Verdict parity is the gate; the factor-phase ratio is informational here
  // (the m x m factor is only part of the iteration) — the kernel-level
  // speedups are gated in bench_linalg_micro.
  std::printf("\n=== IPM mixed precision: FP32 Schur factor + FP64 refinement ===\n");
  {
    const sdp::Problem mp = random_sdp(24, 160, 23);
    const sdp::Solution fp64 = sdp::IpmSolver().solve(mp);
    sdp::IpmOptions mp_opt;
    mp_opt.mixed_precision = true;
    const sdp::Solution fp32 = sdp::IpmSolver(mp_opt).solve(mp);
    const double fp64_factor = per_iter(fp64.phase.factor, fp64.iterations);
    const double fp32_factor = per_iter(fp32.phase.factor, fp32.iterations);
    std::printf("%-26s %12.4es/it (%d iters)\n", "fp64 factor", fp64_factor,
                fp64.iterations);
    std::printf("%-26s %12.4es/it (%d iters, %d fp32 factors, %ld refinement steps,"
                " max %d/solve, %d fallbacks)\n",
                "fp32+refine factor", fp32_factor, fp32.iterations,
                fp32.mixed.fp32_factorizations, fp32.mixed.refinement_steps,
                fp32.mixed.max_refinement_steps, fp32.mixed.fp64_fallbacks);
    if (fp32.status != fp64.status ||
        std::fabs(fp32.primal_objective - fp64.primal_objective) >
            1e-4 * (1.0 + std::fabs(fp64.primal_objective))) {
      std::printf("FAIL: mixed-precision IPM diverged from FP64 (%s vs %s)\n",
                  sdp::to_string(fp32.status).c_str(), sdp::to_string(fp64.status).c_str());
      ++failures;
    }
    if (!fp32.mixed.enabled || fp32.mixed.fp32_factorizations == 0) {
      std::printf("FAIL: mixed-precision solve never used the FP32 factor\n");
      ++failures;
    }
    bench::write_bench_json(
        "BENCH_PR10.json", "mixed_precision_ipm",
        bench::with_kernel_fields(
            {{"fp64_factor_per_iter", fp64_factor},
             {"fp32_factor_per_iter", fp32_factor},
             {"fp32_factorizations", static_cast<double>(fp32.mixed.fp32_factorizations)},
             {"refinement_steps", static_cast<double>(fp32.mixed.refinement_steps)},
             {"max_refinement_steps", static_cast<double>(fp32.mixed.max_refinement_steps)},
             {"fp64_fallbacks", static_cast<double>(fp32.mixed.fp64_fallbacks)}},
            /*mixed_precision=*/true),
        /*fresh=*/false);
    std::printf("wrote BENCH_PR10.json (mixed_precision_ipm)\n");
  }
  // Target is >= 2x (measured ~5x); the gate sits at 1.6x so shared-runner
  // noise cannot trip CI while a real eigensolver regression still fails.
  if (eig_speedup < 1.6) {
    std::printf("FAIL: ADMM eigensolver swap speedup %.2fx < 1.6x\n", eig_speedup);
    ++failures;
  }
  // The solves must agree: same status, matching objectives.
  if (ql.status != jac.status) {
    std::printf("FAIL: QL vs Jacobi ADMM status diverged (%s vs %s)\n",
                sdp::to_string(ql.status).c_str(), sdp::to_string(jac.status).c_str());
    ++failures;
  }
  if (fast.status != ref.status ||
      std::fabs(fast.primal_objective - ref.primal_objective) >
          1e-4 * (1.0 + std::fabs(ref.primal_objective))) {
    std::printf("FAIL: fast vs reference IPM solves diverged\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
