// Micro-benchmarks of the interior-point SDP solver: scaling with block size
// and constraint count, and the value of the Mehrotra predictor-corrector.
#include <benchmark/benchmark.h>

#include "linalg/matrix.hpp"
#include "sdp/ipm.hpp"
#include "util/rng.hpp"

using namespace soslock;

namespace {

/// Random feasible min-trace SDP: b = A(X*) for a random PSD X*.
sdp::Problem random_sdp(std::size_t n, std::size_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1.0, 1.0);
  const linalg::Matrix xstar = linalg::transposed_times(g, g);

  sdp::Problem p;
  const std::size_t b = p.add_block(n);
  p.set_block_objective(b, linalg::Matrix::identity(n));
  for (std::size_t i = 0; i < m; ++i) {
    sdp::Row row;
    sdp::SparseSym a;
    for (int k = 0; k < 6; ++k) {
      const std::size_t r = rng.index(n), c = rng.index(n);
      a.add(std::min(r, c), std::max(r, c), rng.uniform(-1.0, 1.0));
    }
    if (a.empty()) a.add(0, 0, 1.0);
    linalg::Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[b] = std::move(a);
    p.add_row(std::move(row));
  }
  return p;
}

void BM_IpmSolveBlockSize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sdp::Problem p = random_sdp(n, 2 * n, 7);
  const sdp::IpmSolver solver;
  for (auto _ : state) {
    const sdp::Solution sol = solver.solve(p);
    benchmark::DoNotOptimize(sol.primal_objective);
  }
}
BENCHMARK(BM_IpmSolveBlockSize)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_IpmSolveConstraints(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const sdp::Problem p = random_sdp(12, m, 11);
  const sdp::IpmSolver solver;
  for (auto _ : state) {
    const sdp::Solution sol = solver.solve(p);
    benchmark::DoNotOptimize(sol.iterations);
  }
}
BENCHMARK(BM_IpmSolveConstraints)->Arg(10)->Arg(40)->Arg(120);

void BM_IpmPredictorCorrector(benchmark::State& state) {
  const bool use_pc = state.range(0) != 0;
  const sdp::Problem p = random_sdp(16, 40, 13);
  sdp::IpmOptions options;
  options.predictor_corrector = use_pc;
  const sdp::IpmSolver solver(options);
  int iterations = 0;
  for (auto _ : state) {
    const sdp::Solution sol = solver.solve(p);
    iterations = sol.iterations;
    benchmark::DoNotOptimize(sol.mu);
  }
  state.counters["iterations"] = iterations;
}
BENCHMARK(BM_IpmPredictorCorrector)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
