// Reproduces Figure 2 of the paper: the attractive invariant of the
// third-order CP PLL projected onto the (v1, v2) and (v2, e) planes.
// The paper plots the maximized Lyapunov sublevel sets; we synthesize the
// certificate (SOS program 1), maximize its level (SOS program 2), and dump
// the projected boundary as ASCII art + CSV.
//
// Environment: SOSLOCK_PAPER_DEGREES=1 uses the paper's degree-6 certificate.
#include <cstdio>

#include "bench_common.hpp"
#include "core/level_set.hpp"
#include "core/lyapunov.hpp"
#include "util/timer.hpp"

using namespace soslock;

int main() {
  const pll::Params params = pll::Params::paper_third_order();
  std::printf("=== Figure 2: third-order CP PLL attractive invariant ===\n%s\n",
              params.str().c_str());
  const pll::ReducedModel model = pll::make_averaged(params);
  const bool paper_degrees = bench::env_flag("SOSLOCK_PAPER_DEGREES");

  util::Timer timer;
  const core::LyapunovOptions lyap_opt = bench::pll_lyapunov_options(3, paper_degrees);
  const core::LyapunovResult lyap = core::LyapunovSynthesizer(lyap_opt).synthesize(model.system);
  if (!lyap.success) {
    std::printf("FAILED: %s\n", lyap.message.c_str());
    return 1;
  }
  const double t_lyap = timer.seconds();

  timer.reset();
  const core::LevelSetResult levels =
      core::LevelSetMaximizer().maximize(model.system, lyap.certificates);
  const double t_level = timer.seconds();
  if (!levels.success) {
    std::printf("FAILED: %s\n", levels.message.c_str());
    return 1;
  }

  const poly::Polynomial& v = lyap.certificates.front();
  const double c = levels.consistent_level;
  std::printf("certificate degree %u, level c* = %.5f\n", lyap_opt.certificate_degree, c);
  std::printf("V = %s\n\n", v.str(model.system.state_names()).c_str());

  // Projections matching the paper's two panels.
  util::Series p12{"A_I boundary on (v1,v2)", '*',
                   bench::boundary_slice(v, 0, 1, c)};
  util::Series p2e{"A_I boundary on (v2,e)", '*',
                   bench::boundary_slice(v, 1, 2, c)};
  bench::print_series_plot("Fig.2 left: A_I projected onto (v1, v2)", {p12}, 8.0, 8.0,
                           "v1 [V]", "v2 [V]");
  bench::print_series_plot("Fig.2 right: A_I projected onto (v2, e)", {p2e}, 8.0, 1.2,
                           "v2 [V]", "e [cycles]");
  bench::dump_csv("fig2_ai3.csv", {p12, p2e});

  std::printf("timings: attractive invariant %.3fs, level maximisation %.3fs\n", t_lyap,
              t_level);
  std::printf("paper reference (Table 2): 1381.7s (degree 6), 15.5s on a 2011-class CPU\n");
  return 0;
}
