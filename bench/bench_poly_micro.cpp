// Micro-benchmarks of the polynomial algebra layer (the inner loops of SOS
// program assembly).
#include <benchmark/benchmark.h>

#include "poly/basis.hpp"
#include "poly/polynomial.hpp"
#include "util/rng.hpp"

using namespace soslock;
using poly::Polynomial;

namespace {

Polynomial dense_poly(std::size_t nvars, unsigned deg, std::uint64_t seed) {
  util::Rng rng(seed);
  Polynomial p(nvars);
  for (const poly::Monomial& m : poly::monomials_up_to(nvars, deg))
    p.add_term(m, rng.uniform(-1.0, 1.0));
  return p;
}

void BM_PolyMultiply(benchmark::State& state) {
  const auto nvars = static_cast<std::size_t>(state.range(0));
  const Polynomial a = dense_poly(nvars, 4, 3);
  const Polynomial b = dense_poly(nvars, 4, 5);
  for (auto _ : state) {
    const Polynomial c = a * b;
    benchmark::DoNotOptimize(c.term_count());
  }
}
BENCHMARK(BM_PolyMultiply)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_PolyLieDerivative(benchmark::State& state) {
  const auto nvars = static_cast<std::size_t>(state.range(0));
  const Polynomial v = dense_poly(nvars, 6, 7);
  std::vector<Polynomial> f;
  for (std::size_t i = 0; i < nvars; ++i) f.push_back(dense_poly(nvars, 1, 11 + i));
  for (auto _ : state) {
    const Polynomial lie = v.lie_derivative(f);
    benchmark::DoNotOptimize(lie.term_count());
  }
}
BENCHMARK(BM_PolyLieDerivative)->Arg(3)->Arg(4)->Arg(5);

void BM_PolyEval(benchmark::State& state) {
  const Polynomial p = dense_poly(4, 8, 17);
  util::Rng rng(23);
  const linalg::Vector x = rng.uniform_vector(4, -1.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(p.eval(x));
}
BENCHMARK(BM_PolyEval);

void BM_PolySubstitute(benchmark::State& state) {
  const Polynomial p = dense_poly(3, 4, 29);
  std::vector<Polynomial> repl;
  for (std::size_t i = 0; i < 3; ++i) repl.push_back(dense_poly(3, 1, 31 + i));
  for (auto _ : state) {
    const Polynomial composed = p.substitute(repl);
    benchmark::DoNotOptimize(composed.term_count());
  }
}
BENCHMARK(BM_PolySubstitute);

void BM_GramBasis(benchmark::State& state) {
  const auto deg = static_cast<unsigned>(state.range(0));
  const Polynomial p = dense_poly(4, deg, 37);
  const poly::SupportInfo info = poly::support_info(p);
  for (auto _ : state) {
    const auto basis = poly::gram_basis(4, info);
    benchmark::DoNotOptimize(basis.size());
  }
}
BENCHMARK(BM_GramBasis)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
