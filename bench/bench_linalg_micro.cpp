// Tiny kernel-level micro-bench: eigensolver / Cholesky / GEMM across sizes
// 8..256, so a linalg kernel regression is caught in seconds without running
// a full certify. Prints per-size timings, checks each kernel's result (the
// timing loop doubles as a correctness sweep), and gates the one relation
// the PR 4 overhaul guarantees at kernel level: tridiagonal-QL beats the
// Jacobi reference on mid-size symmetric matrices.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace soslock;
using linalg::Matrix;

namespace {

Matrix random_sym(std::size_t n, util::Rng& rng) {
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  a.symmetrize();
  return a;
}

Matrix random_spd(std::size_t n, util::Rng& rng) {
  const Matrix g = random_sym(n, rng);
  Matrix s = linalg::times_transposed(g, g);
  for (std::size_t i = 0; i < n; ++i) s(i, i) += 0.5;
  return s;
}

/// Repeat `fn` until ~50ms of wall clock; returns seconds per call.
template <typename Fn>
double time_kernel(const Fn& fn) {
  const util::Timer total;
  int calls = 0;
  do {
    fn();
    ++calls;
  } while (total.seconds() < 0.05);
  return total.seconds() / calls;
}

}  // namespace

int main() {
  int failures = 0;
  std::printf("%6s %12s %12s %12s %12s %12s\n", "n", "eig-ql", "eig-jacobi", "eig-values",
              "cholesky", "gemm");
  double ql64 = 0.0, jac64 = 0.0;
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    util::Rng rng(n * 7 + 1);
    const Matrix sym = random_sym(n, rng);
    const Matrix spd = random_spd(n, rng);
    const Matrix b = random_sym(n, rng);

    // Timing loop measures the bare eigensolver; the reconstruction check
    // runs once outside it (a GEMM regression must not skew the eig gate).
    const double t_ql = time_kernel([&] { linalg::eigen_sym(sym); });
    {
      const linalg::EigenSym es = linalg::eigen_sym(sym);
      const Matrix rec = es.vectors * Matrix::diag(es.values) * es.vectors.transposed();
      const double resid = linalg::norm_inf(rec - sym);
      if (resid > 1e-8 * std::max(1.0, linalg::norm_inf(sym))) {
        std::printf("FAIL: eigen_sym reconstruction residual %.2e at n=%zu\n", resid, n);
        ++failures;
      }
    }
    // The Jacobi reference is quadratic-in-practice in sweeps: keep the
    // largest sizes out of its timing loop (the ratio gate uses n=64).
    const double t_jac = n <= 64 ? time_kernel([&] { linalg::eigen_sym_jacobi(sym); }) : -1.0;
    const double t_vals = time_kernel([&] { linalg::eigen_values_sym(sym); });
    if (n == 64) {
      ql64 = t_ql;
      jac64 = t_jac;
    }

    const double t_chol = time_kernel([&] { linalg::Cholesky::factor(spd); });
    {
      const auto chol = linalg::Cholesky::factor(spd);
      const double chol_resid =
          chol.has_value()
              ? linalg::norm_inf(linalg::times_transposed(chol->lower(), chol->lower()) - spd)
              : 1.0;
      if (chol_resid > 1e-8 * std::max(1.0, linalg::norm_inf(spd))) {
        std::printf("FAIL: Cholesky residual %.2e at n=%zu\n", chol_resid, n);
        ++failures;
      }
    }

    const double t_gemm = time_kernel([&] {
      const Matrix c = sym * b;
      (void)c;
    });

    char jac_buf[16];
    std::snprintf(jac_buf, sizeof(jac_buf), t_jac < 0 ? "-" : "%.3e", t_jac);
    std::printf("%6zu %11.3es %12s %11.3es %11.3es %11.3es\n", n, t_ql, jac_buf, t_vals,
                t_chol, t_gemm);
  }

  // Kernel-level gate: QL must clearly beat the Jacobi reference at n=64
  // (measured ~5x; gate at 2x for noise slack).
  const double speedup = jac64 / std::max(1e-12, ql64);
  std::printf("\neigen n=64: ql=%.3es jacobi=%.3es speedup=%.2fx\n", ql64, jac64, speedup);
  if (speedup < 2.0) {
    std::printf("FAIL: QL eigensolver speedup %.2fx < 2x over Jacobi at n=64\n", speedup);
    ++failures;
  }

  // --- PR 10 gate: SIMD kernel table vs the scalar reference ---------------
  // Honest A/B on the same binary: force the scalar table with
  // set_active_isa, time Gram-sized GEMM and Cholesky, then restore the
  // dispatched table and time again. The >= 3x gate only arms on AVX2-class
  // hardware (and not under a scalar override) — elsewhere the ratio is
  // reported but not enforced, like every hardware-conditional gate in this
  // suite.
  std::printf("\n=== SIMD kernels vs scalar reference ===\n");
  const util::SimdIsa active = bench::cpu_banner();
  double gemm_speedup = 1.0, chol_speedup = 1.0;
  {
    const std::size_t n = 256;  // Gram-block scale for the paper's workloads
    util::Rng rng(4242);
    const Matrix sym = random_sym(n, rng);
    const Matrix b = random_sym(n, rng);
    const Matrix spd = random_spd(n, rng);

    const util::SimdIsa prev = linalg::set_active_isa(util::SimdIsa::Scalar);
    const double scalar_gemm = time_kernel([&] {
      const Matrix c = sym * b;
      (void)c;
    });
    const double scalar_chol = time_kernel([&] { linalg::Cholesky::factor(spd); });
    linalg::set_active_isa(prev);
    const double simd_gemm = time_kernel([&] {
      const Matrix c = sym * b;
      (void)c;
    });
    const double simd_chol = time_kernel([&] { linalg::Cholesky::factor(spd); });

    gemm_speedup = scalar_gemm / std::max(1e-12, simd_gemm);
    chol_speedup = scalar_chol / std::max(1e-12, simd_chol);
    std::printf("n=%zu gemm: scalar=%.3es %s=%.3es speedup=%.2fx\n", n, scalar_gemm,
                util::isa_name(active), simd_gemm, gemm_speedup);
    std::printf("n=%zu cholesky: scalar=%.3es %s=%.3es speedup=%.2fx\n", n, scalar_chol,
                util::isa_name(active), simd_chol, chol_speedup);
    if (active >= util::SimdIsa::Avx2) {
      if (gemm_speedup < 3.0) {
        std::printf("FAIL: %s GEMM speedup %.2fx < 3x over scalar at n=%zu\n",
                    util::isa_name(active), gemm_speedup, n);
        ++failures;
      }
      if (chol_speedup < 3.0) {
        std::printf("FAIL: %s Cholesky speedup %.2fx < 3x over scalar at n=%zu\n",
                    util::isa_name(active), chol_speedup, n);
        ++failures;
      }
    } else {
      std::printf("gate skipped: dispatched ISA %s below avx2\n", util::isa_name(active));
    }
  }

  bench::write_bench_json("BENCH_PR10.json", "linalg_simd",
                          bench::with_kernel_fields({
                              {"gemm_speedup_vs_scalar", gemm_speedup},
                              {"cholesky_speedup_vs_scalar", chol_speedup},
                              {"gate_armed", active >= util::SimdIsa::Avx2 ? 1.0 : 0.0},
                          }),
                          /*fresh=*/false);
  std::printf("wrote BENCH_PR10.json (linalg_simd)\n");
  return failures == 0 ? 0 : 1;
}
