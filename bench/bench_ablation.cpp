// Ablation studies for the design decisions called out in DESIGN.md:
//  A. strict vs non-strict flow decrease on the hybrid CP PLL (the paper's
//     Theorem-1 rigor gap: strict is impossible in the idle mode),
//  B. the fat-guard 3-mode reduction admits no polynomial certificate at all
//     (reproduction finding), while the continuized model does,
//  C. continuization ripple requires ball-exclusion (practical stability),
//  D. robust pump interval vs nominal pump (cost of the S-procedure box),
//  E. common vs multiple Lyapunov certificates on a switched system.
#include <cstdio>

#include "bench_common.hpp"
#include "core/lyapunov.hpp"
#include "util/timer.hpp"

using namespace soslock;

namespace {

void report(const char* name, const core::LyapunovResult& r, double seconds) {
  std::printf("  %-46s %-12s %8.3fs\n", name,
              r.success ? "feasible" : "infeasible", seconds);
}

core::LyapunovResult run(const hybrid::HybridSystem& sys, core::LyapunovOptions opt,
                         double& seconds) {
  opt.solver.max_iterations = 80;
  util::Timer t;
  const core::LyapunovResult r = core::LyapunovSynthesizer(opt).synthesize(sys);
  seconds = t.seconds();
  return r;
}

}  // namespace

int main() {
  std::printf("=== Ablations: certificate-synthesis design choices ===\n\n");
  const pll::Params p3 = pll::Params::paper_third_order();
  double secs = 0.0;

  std::printf("A. flow-decrease condition on the 3-mode hybrid CP PLL (common V, deg 4):\n");
  {
    const pll::ReducedModel hyb = pll::make_reduced(p3);
    core::LyapunovOptions opt;
    opt.certificate_degree = 4;
    opt.common_certificate = true;
    opt.flow_decrease = core::FlowDecrease::Strict;
    report("strict (Theorem 1 as written)", run(hyb.system, opt, secs), secs);
    opt.flow_decrease = core::FlowDecrease::NonStrict;
    report("non-strict (paper's SOS encoding)", run(hyb.system, opt, secs), secs);
    std::printf("  -> both infeasible: the fat-guard reduction has unbounded pump dwell\n"
                "     (see DESIGN.md); the idle mode alone already rules out strict.\n\n");
  }

  std::printf("B. model abstraction (deg-2 certificates):\n");
  {
    const pll::ReducedModel hyb = pll::make_reduced(p3);
    core::LyapunovOptions opt;
    opt.certificate_degree = 2;
    opt.common_certificate = true;
    report("3-mode hybrid (bang-bang pump)", run(hyb.system, opt, secs), secs);
    const pll::ReducedModel avg = pll::make_averaged(p3);
    core::LyapunovOptions avg_opt;
    avg_opt.certificate_degree = 2;
    avg_opt.flow_decrease = core::FlowDecrease::Strict;
    avg_opt.strict_margin = 1e-4;
    report("continuized (duty-cycle averaged pump)", run(avg.system, avg_opt, secs), secs);
    std::printf("\n");
  }

  std::printf("C. continuization ripple |w| <= 0.05 (strict, deg 2):\n");
  {
    pll::ModelOptions mo;
    mo.ripple_bound = 0.05;
    const pll::ReducedModel rip = pll::make_averaged(p3, mo);
    core::LyapunovOptions opt;
    opt.certificate_degree = 2;
    opt.flow_decrease = core::FlowDecrease::Strict;
    opt.strict_margin = 1e-4;
    report("decrease required everywhere", run(rip.system, opt, secs), secs);
    opt.exclude_ball_radius = 2.0;
    report("decrease outside ||x|| <= 2 (practical)", run(rip.system, opt, secs), secs);
    std::printf("\n");
  }

  std::printf("D. pump uncertainty (averaged model, strict, deg 2):\n");
  {
    const pll::ReducedModel robust = pll::make_averaged(p3);
    core::LyapunovOptions opt;
    opt.certificate_degree = 2;
    opt.flow_decrease = core::FlowDecrease::Strict;
    opt.strict_margin = 1e-4;
    report("Ip interval via S-procedure box", run(robust.system, opt, secs), secs);
    pll::ModelOptions nominal;
    nominal.uncertain_pump = false;
    const pll::ReducedModel nom = pll::make_averaged(p3, nominal);
    report("nominal Ip only", run(nom.system, opt, secs), secs);
    const pll::ReducedModel vertices = pll::make_averaged_vertices(p3);
    core::LyapunovOptions vopt = opt;
    vopt.common_certificate = true;
    report("Ip interval via vertex enumeration", run(vertices.system, vopt, secs), secs);
    std::printf("\n");
  }

  std::printf("E. multiple vs common certificates (switched 2-mode spiral):\n");
  {
    using poly::Polynomial;
    hybrid::HybridSystem sys(2, 0);
    const Polynomial x = Polynomial::variable(2, 0), y = Polynomial::variable(2, 1);
    hybrid::Mode m0;
    m0.flow = {-0.5 * x + y, -1.0 * x - 0.5 * y};
    m0.domain = hybrid::SemialgebraicSet(2);
    m0.domain.add_constraint(x);
    m0.domain.add_interval(1, -3.0, 3.0);
    m0.contains_equilibrium = true;
    hybrid::Mode m1;
    m1.flow = {-0.5 * x + 2.0 * y, -0.5 * x - 0.5 * y};
    m1.domain = hybrid::SemialgebraicSet(2);
    m1.domain.add_constraint(-1.0 * x);
    m1.domain.add_interval(1, -3.0, 3.0);
    m1.contains_equilibrium = true;
    sys.add_mode(std::move(m0));
    sys.add_mode(std::move(m1));
    hybrid::SemialgebraicSet surface(2);
    surface.add_constraint(x);
    surface.add_constraint(-1.0 * x);
    sys.add_jump({0, 1, surface, {}, "x=0"});
    sys.add_jump({1, 0, surface, {}, "x=0"});

    core::LyapunovOptions opt;
    opt.certificate_degree = 2;
    opt.flow_decrease = core::FlowDecrease::Strict;
    opt.strict_margin = 1e-3;
    report("multiple certificates (per mode)", run(sys, opt, secs), secs);
    opt.common_certificate = true;
    report("single common certificate", run(sys, opt, secs), secs);
  }
  return 0;
}
