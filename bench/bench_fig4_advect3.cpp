// Reproduces Figure 4 of the paper: bounded advection of the initial level
// set for the third-order CP PLL, projected onto (v1, v2) and (v2, e). The
// outer (solid '#') curve is the initial set; dotted ('.') curves are the
// advected iterates; the central ('*') curve is the attractive invariant the
// iterates immerse into.
#include <cstdio>

#include "bench_common.hpp"
#include "util/timer.hpp"

using namespace soslock;

int main() {
  const pll::Params params = pll::Params::paper_third_order();
  std::printf("=== Figure 4: third-order CP PLL bounded advection ===\n%s\n",
              params.str().c_str());
  const pll::ReducedModel model = pll::make_averaged(params);

  core::PipelineOptions opt;
  opt.lyapunov = bench::pll_lyapunov_options(3, bench::env_flag("SOSLOCK_PAPER_DEGREES"));
  opt.advection = bench::pll_advection_options(3);
  opt.max_advection_iterations = 14;  // the paper's iteration budget
  opt.escape_fallback = false;

  const poly::Polynomial b_init = bench::ellipsoid(model.system.nvars(), {5.0, 4.2, 0.9});
  util::Timer timer;
  const core::PipelineReport report =
      core::InevitabilityVerifier(opt).verify(model.system, b_init);
  const double total = timer.seconds();

  std::printf("%s\n", report.summary().c_str());
  if (report.verdict != core::Verdict::VerifiedByAdvection) {
    std::printf("NOTE: advection did not conclude; see bench_fig5 for the escape route\n");
  }

  // Panels: every iterate projected.
  std::vector<util::Series> left, right, all;
  const double level_c = report.invariant.consistent_level;
  for (std::size_t k = 0; k < report.advection_iterates.size(); ++k) {
    const poly::Polynomial& b = report.advection_iterates[k];
    const char glyph = k == 0 ? '#' : '.';
    const std::string name = k == 0 ? "initial set" : "advected iterate " + std::to_string(k);
    left.push_back({name + " (v1,v2)", glyph, bench::boundary_slice(b, 0, 1, 0.0)});
    right.push_back({name + " (v2,e)", glyph, bench::boundary_slice(b, 1, 2, 0.0)});
  }
  if (!report.invariant.certificates.empty()) {
    const poly::Polynomial& v = report.invariant.certificates.front();
    left.push_back({"attractive invariant", '*', bench::boundary_slice(v, 0, 1, level_c)});
    right.push_back({"attractive invariant", '*', bench::boundary_slice(v, 1, 2, level_c)});
  }
  // Keep the legend readable: plot initial, a middle iterate, final, A_I.
  auto select = [](const std::vector<util::Series>& s) {
    std::vector<util::Series> out;
    if (s.empty()) return out;
    out.push_back(s.front());
    if (s.size() > 3) out.push_back(s[s.size() / 2]);
    if (s.size() > 2) out.push_back(s[s.size() - 2]);
    out.push_back(s.back());
    return out;
  };
  bench::print_series_plot("Fig.4 left: advection on (v1, v2)", select(left), 8.0, 8.0,
                           "v1 [V]", "v2 [V]");
  bench::print_series_plot("Fig.4 right: advection on (v2, e)", select(right), 8.0, 1.2,
                           "v2 [V]", "e [cycles]");
  all = left;
  all.insert(all.end(), right.begin(), right.end());
  bench::dump_csv("fig4_advect3.csv", all);

  std::printf("advection: %d iterations in %.3fs total (paper: 14 iterations, 106.8s; "
              "set inclusion checks 13s)\n",
              report.advection_iterations, total);
  return report.verdict == core::Verdict::VerifiedByAdvection ? 0 : 0;
}
