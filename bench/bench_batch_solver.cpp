// Batched parallel SOS solving vs the sequential baseline on a 3-mode PLL
// model (the pump-interval vertex relaxation: one averaged mode per pump
// value {Ip_lo, Ip_nom, Ip_hi}, no jumps, so the per-mode Lyapunov programs
// are genuinely independent). Reports:
//   1. joint coupled SDP (the pre-redesign baseline: one solve, 3x blocks),
//   2. decoupled per-mode solves, sequential (threads = 1),
//   3. decoupled per-mode solves, batched on the thread pool,
// then the same sequential-vs-batched comparison for the per-mode
// level-curve maximisation step (SOS program 2). Speedups require hardware
// parallelism; the thread count is printed so single-core runs are legible.
#include <cstdio>

#include "bench_common.hpp"
#include "core/level_set.hpp"
#include "core/lyapunov.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace soslock;

namespace {

/// 3-mode averaged PLL: one mode per pump-current vertex {lo, nom, hi} over
/// the shared voltage box (the 3-vertex analogue of make_averaged_vertices).
hybrid::HybridSystem three_vertex_pll(const pll::Params& params) {
  pll::ModelOptions nominal;
  nominal.uncertain_pump = false;
  nominal.ripple_bound = 0.0;
  const pll::ReducedModel vertices = pll::make_averaged_vertices(params, nominal);
  const pll::ReducedModel nom = pll::make_averaged(params, nominal);

  hybrid::HybridSystem sys(nom.system.nstates(), 0);
  sys.set_state_names(nom.system.state_names());
  for (const hybrid::Mode& m : vertices.system.modes()) {
    hybrid::Mode copy = m;
    sys.add_mode(std::move(copy));
  }
  hybrid::Mode mid = nom.system.modes().front();
  mid.name = "pump-nom";
  sys.add_mode(std::move(mid));
  return sys;
}

core::LyapunovOptions lyapunov_options(bool parallel, std::size_t threads) {
  core::LyapunovOptions opt;
  opt.certificate_degree = 4;
  opt.flow_decrease = core::FlowDecrease::Strict;
  opt.strict_margin = 1e-4;
  opt.mode_parallel = parallel;
  opt.threads = threads;
  return opt;
}

double run_lyapunov(const hybrid::HybridSystem& sys, const core::LyapunovOptions& opt,
                    const char* label) {
  util::Timer timer;
  const core::LyapunovResult r = core::LyapunovSynthesizer(opt).synthesize(sys);
  const double seconds = timer.seconds();
  std::printf("  %-34s %-10s %8.3fs   %s\n", label, r.success ? "ok" : "FAILED", seconds,
              r.solver.str().c_str());
  return seconds;
}

}  // namespace

int main() {
  std::printf("=== Batched per-mode SOS solves vs sequential baseline ===\n");
  bench::thread_banner();
  bench::cpu_banner();
  std::printf("\n");

  const pll::Params params = pll::Params::paper_third_order();
  const hybrid::HybridSystem sys = three_vertex_pll(params);
  std::printf("3-mode pump-vertex PLL model: %zu modes, %zu states\n\n",
              sys.modes().size(), sys.nstates());

  std::printf("P1 Lyapunov synthesis (degree 4, strict):\n");
  const double joint = run_lyapunov(sys, lyapunov_options(false, 1), "joint coupled SDP");
  const double seq = run_lyapunov(sys, lyapunov_options(true, 1), "decoupled, sequential");
  const double par = run_lyapunov(sys, lyapunov_options(true, 0), "decoupled, batched");
  if (par > 0.0) {
    std::printf("  speedup: batched vs joint %.2fx, batched vs sequential %.2fx\n\n",
                joint / par, seq / par);
  }

  // Level-curve maximisation (SOS program 2) over the synthesized V_q.
  const core::LyapunovResult certs =
      core::LyapunovSynthesizer(lyapunov_options(true, 0)).synthesize(sys);
  if (!certs.success) {
    std::printf("no certificates for the level-set stage: %s\n", certs.message.c_str());
    return 1;
  }
  std::printf("P1 level-curve maximisation (per-mode SDPs):\n");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
    core::LevelSetOptions lopt;
    lopt.threads = threads == 0 ? 0 : 1;
    const core::LevelSetMaximizer maximizer(lopt);
    util::Timer timer;
    const core::LevelSetResult levels = maximizer.maximize(sys, certs.certificates);
    std::printf("  %-34s %-10s %8.3fs   %s\n",
                threads == 1 ? "sequential (threads=1)" : "batched (threads=hw)",
                levels.success ? "ok" : "FAILED", timer.seconds(),
                levels.solver.str().c_str());
  }
  return 0;
}
