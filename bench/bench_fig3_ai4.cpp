// Reproduces Figure 3 of the paper: the attractive invariant of the
// fourth-order CP PLL projected onto the (v2, v3) and (v2, e) planes.
//
// Environment: SOSLOCK_PAPER_DEGREES=1 uses the paper's degree-4 certificate
// (also the default here, since degree 4 is affordable; the flag additionally
// raises nothing for order 4).
#include <cstdio>

#include "bench_common.hpp"
#include "core/level_set.hpp"
#include "core/lyapunov.hpp"
#include "util/timer.hpp"

using namespace soslock;

int main() {
  const pll::Params params = pll::Params::paper_fourth_order();
  std::printf("=== Figure 3: fourth-order CP PLL attractive invariant ===\n%s\n",
              params.str().c_str());
  const pll::ReducedModel model = pll::make_averaged(params);
  const bool paper_degrees = bench::env_flag("SOSLOCK_PAPER_DEGREES");

  util::Timer timer;
  const core::LyapunovOptions lyap_opt = bench::pll_lyapunov_options(4, paper_degrees);
  const core::LyapunovResult lyap = core::LyapunovSynthesizer(lyap_opt).synthesize(model.system);
  if (!lyap.success) {
    std::printf("FAILED: %s\n", lyap.message.c_str());
    return 1;
  }
  const double t_lyap = timer.seconds();

  timer.reset();
  const core::LevelSetResult levels =
      core::LevelSetMaximizer().maximize(model.system, lyap.certificates);
  const double t_level = timer.seconds();
  if (!levels.success) {
    std::printf("FAILED: %s\n", levels.message.c_str());
    return 1;
  }

  const poly::Polynomial& v = lyap.certificates.front();
  const double c = levels.consistent_level;
  std::printf("certificate degree %u, level c* = %.5f\n", lyap_opt.certificate_degree, c);

  // States: (v1, v2, v3, e) -> paper panels (v2, v3) and (v2, e).
  util::Series p23{"A_I boundary on (v2,v3)", '*', bench::boundary_slice(v, 1, 2, c)};
  util::Series p2e{"A_I boundary on (v2,e)", '*', bench::boundary_slice(v, 1, 3, c)};
  bench::print_series_plot("Fig.3 left: A_I projected onto (v2, v3)", {p23}, 8.0, 8.0,
                           "v2 [V]", "v3 [V]");
  bench::print_series_plot("Fig.3 right: A_I projected onto (v2, e)", {p2e}, 8.0, 1.2,
                           "v2 [V]", "e [cycles]");
  bench::dump_csv("fig3_ai4.csv", {p23, p2e});

  std::printf("timings: attractive invariant %.3fs, level maximisation %.3fs\n", t_lyap,
              t_level);
  std::printf("paper reference (Table 2): 10021s (degree 4), 12s on a 2011-class CPU\n");
  return 0;
}
