// Reproduces Table 2 of the paper: computation time of each step of the
// inevitability verification, for the third- and fourth-order CP PLL.
// Absolute numbers differ (our from-scratch IPM on modern hardware vs
// YALMIP+MATLAB on a 2011 i5); the reproduced *shape* is the per-step cost
// breakdown: deductive attractive-invariant synthesis at the paper's
// certificate degrees is the dominant deductive step, level maximisation and
// set-inclusion checks are cheap, advection requires several iterations, and
// only the fourth order needs escape certificates.
//
// SOSLOCK_PAPER_DEGREES=1 -> degree-6 certificate for order 3 (paper).
#include <cstdio>

#include "bench_common.hpp"
#include "core/escape.hpp"
#include "util/timer.hpp"

using namespace soslock;

namespace {

struct RowSet {
  double invariant = 0, levels = 0, advection = 0, inclusion = 0, escape = 0;
  int advect_iters = 0, escape_certs = 0;
  unsigned degree = 0;
  std::string verdict;
};

RowSet run_order(int order, bool paper_degrees) {
  const pll::Params params =
      order == 3 ? pll::Params::paper_third_order() : pll::Params::paper_fourth_order();
  const pll::ReducedModel model = pll::make_averaged(params);

  core::PipelineOptions opt;
  opt.lyapunov = bench::pll_lyapunov_options(order, paper_degrees);
  opt.advection = bench::pll_advection_options(order);
  opt.max_advection_iterations = order == 3 ? 14 : 7;
  opt.escape.certificate_degree = order == 3 ? 2 : 4;

  const poly::Polynomial b_init =
      order == 3 ? bench::ellipsoid(model.system.nvars(), {5.0, 4.2, 0.9})
                 : bench::ellipsoid(model.system.nvars(), {6.0, 6.0, 6.0, 0.9});
  const core::PipelineReport report =
      core::InevitabilityVerifier(opt).verify(model.system, b_init);

  RowSet rows;
  rows.degree = opt.lyapunov.certificate_degree;
  rows.advect_iters = report.advection_iterations;
  rows.escape_certs = report.escape.num_certificates;
  rows.verdict = core::to_string(report.verdict);
  for (const auto& entry : report.timings.entries()) {
    if (entry.name == "Attractive Invariant") rows.invariant = entry.seconds;
    if (entry.name == "Max.Level Curves") rows.levels = entry.seconds;
    if (entry.name == "Advection") rows.advection = entry.seconds;
    if (entry.name == "Checking Set Inclusion") rows.inclusion = entry.seconds;
    if (entry.name == "Escape Certificate") rows.escape = entry.seconds;
  }
  return rows;
}

}  // namespace

int main() {
  const bool paper_degrees = bench::env_flag("SOSLOCK_PAPER_DEGREES");
  std::printf("=== Table 2: computation time of the inevitability verification ===\n");
  std::printf("(certificate degrees: %s; set SOSLOCK_PAPER_DEGREES=1 for the paper's)\n\n",
              paper_degrees ? "paper (6 / 4)" : "fast (2 / 2)");

  const RowSet o3 = run_order(3, paper_degrees);
  const RowSet o4 = run_order(4, paper_degrees);

  std::printf("%-28s %18s %18s\n", "Verification Step", "3-Order Time(Sec)",
              "4-Order Time(Sec)");
  std::printf("%-28s %12.3f (d%u) %12.3f (d%u)\n", "Attractive Invariant", o3.invariant,
              o3.degree, o4.invariant, o4.degree);
  std::printf("%-28s %18.3f %18.3f\n", "Max.Level Curves", o3.levels, o4.levels);
  std::printf("%-28s %11.3f (%2d it) %11.3f (%2d it)\n", "Advection", o3.advection,
              o3.advect_iters, o4.advection, o4.advect_iters);
  std::printf("%-28s %18.3f %18.3f\n", "Checking Set Inclusion", o3.inclusion, o4.inclusion);
  std::printf("%-28s %11.3f (%d crt) %11.3f (%d crt)\n", "Escape Certificate", o3.escape,
              o3.escape_certs, o4.escape, o4.escape_certs);
  std::printf("%-28s %18s %18s\n", "Verdict", o3.verdict.c_str(), o4.verdict.c_str());

  std::printf("\nPaper reference values (2.6 GHz i5, 4 GB, YALMIP/MATLAB):\n");
  std::printf("%-28s %18s %18s\n", "Attractive Invariant", "1381.7 (deg 6)", "10021 (deg 4)");
  std::printf("%-28s %18s %18s\n", "Max.Level Curves", "15.5", "12");
  std::printf("%-28s %18s %18s\n", "Advection", "106.8 (14 it)", "140.7 (7 it)");
  std::printf("%-28s %18s %18s\n", "Checking Set Inclusion", "13", "10.2");
  std::printf("%-28s %18s %18s\n", "Escape Certificate", "-", "18 (2 crt)");

  std::printf("\nShape checks (see EXPERIMENTS.md for discussion):\n");
  auto yesno = [](bool b) { return b ? "yes" : "NO"; };
  std::printf("  both orders verified: %s / %s\n",
              yesno(o3.verdict.rfind("Verified", 0) == 0),
              yesno(o4.verdict.rfind("Verified", 0) == 0));
  std::printf("  advection iterates several steps (3rd >= 3, 4th == 7): %s / %s\n",
              yesno(o3.advect_iters >= 3), yesno(o4.advect_iters == 7));
  std::printf("  set-inclusion checks cheap vs advection: %s / %s\n",
              yesno(o3.inclusion < o3.advection), yesno(o4.inclusion < o4.advection));
  std::printf("  4th order needs escape certificates: %s\n", yesno(o4.escape_certs >= 1));
  if (paper_degrees) {
    std::printf("  [paper degrees] invariant synthesis vs level maximisation: our IPM "
                "solves the deg-%u invariant in %.1fs; the level step, which carries "
                "the deg-%u certificate into %zu-variable products, costs %.1fs. The "
                "paper's 1382s/10021s invariant steps dominated instead — solver "
                "generation gap, not a structural difference.\n",
                o3.degree, o3.invariant, o3.degree, static_cast<std::size_t>(4), o3.levels);
    std::printf("  [paper degrees] our deg-6 3rd-order run also closes P2 with an escape "
                "certificate (%d) where the paper's immersed symmetrically; at fast "
                "degrees (default run) the 3rd order immerses by advection alone.\n",
                o3.escape_certs);
  }
  return 0;
}
