// Reproduces Table 2 of the paper: computation time of each step of the
// inevitability verification, for the third- and fourth-order CP PLL.
// Absolute numbers differ (our from-scratch IPM on modern hardware vs
// YALMIP+MATLAB on a 2011 i5); the reproduced *shape* is the per-step cost
// breakdown: deductive attractive-invariant synthesis at the paper's
// certificate degrees is the dominant deductive step, level maximisation and
// set-inclusion checks are cheap, advection requires several iterations, and
// only the fourth order needs escape certificates.
//
// SOSLOCK_PAPER_DEGREES=1 -> degree-6 certificate for order 3 (paper).
//
// Also prints the cold-vs-warm iteration comparison for the advection and
// level-curve loops (the incremental-solve acceptance gate) and checks the
// Newton-pruned Gram-basis size on the pump-vertex model against the pruned
// baseline; a regression of either fails the process (nonzero exit), which
// is what CI keys on.
#include <cstdio>

#include <algorithm>

#include "bench_common.hpp"
#include "core/escape.hpp"
#include "poly/basis.hpp"
#include "poly/sparsity.hpp"
#include "sdp/ipm.hpp"
#include "sdp/lowering.hpp"
#include "util/timer.hpp"

using namespace soslock;

namespace {

struct RowSet {
  double invariant = 0, levels = 0, advection = 0, inclusion = 0, escape = 0;
  int advect_iters = 0, escape_certs = 0;
  unsigned degree = 0;
  std::string verdict;
};

RowSet run_order(int order, bool paper_degrees) {
  const pll::Params params =
      order == 3 ? pll::Params::paper_third_order() : pll::Params::paper_fourth_order();
  const pll::ReducedModel model = pll::make_averaged(params);

  core::PipelineOptions opt;
  opt.lyapunov = bench::pll_lyapunov_options(order, paper_degrees);
  opt.advection = bench::pll_advection_options(order);
  opt.max_advection_iterations = order == 3 ? 14 : 7;
  opt.escape.certificate_degree = order == 3 ? 2 : 4;

  const poly::Polynomial b_init =
      order == 3 ? bench::ellipsoid(model.system.nvars(), {5.0, 4.2, 0.9})
                 : bench::ellipsoid(model.system.nvars(), {6.0, 6.0, 6.0, 0.9});
  const core::PipelineReport report =
      core::InevitabilityVerifier(opt).verify(model.system, b_init);

  RowSet rows;
  rows.degree = opt.lyapunov.certificate_degree;
  rows.advect_iters = report.advection_iterations;
  rows.escape_certs = report.escape.num_certificates;
  rows.verdict = core::to_string(report.verdict);
  for (const auto& entry : report.timings.entries()) {
    if (entry.name == "Attractive Invariant") rows.invariant = entry.seconds;
    if (entry.name == "Max.Level Curves") rows.levels = entry.seconds;
    if (entry.name == "Advection") rows.advection = entry.seconds;
    if (entry.name == "Checking Set Inclusion") rows.inclusion = entry.seconds;
    if (entry.name == "Escape Certificate") rows.escape = entry.seconds;
  }
  return rows;
}

/// Advection + level-curve loops of the third-order model with warm starts
/// on or off; returns (level iterations, advection iterations, wall seconds).
struct LoopCost {
  int level_iters = 0;
  int advect_iters = 0;
  int inclusion_iters = 0;
  double seconds = 0.0;
  int total() const { return level_iters + advect_iters + inclusion_iters; }
};

LoopCost run_incremental_loops(bool warm,
                               sdp::SparsityOptions sparsity = sdp::SparsityOptions::Off,
                               std::size_t* level_cone = nullptr,
                               std::size_t* inclusion_cone = nullptr) {
  const pll::Params params = pll::Params::paper_third_order();
  const util::Timer timer;
  LoopCost cost;

  // Level curves on the 2-mode pump-vertex model (structurally identical
  // per-mode programs: the warm path seeds mode 1+ from mode 0).
  {
    const pll::ReducedModel model = pll::make_averaged_vertices(params);
    core::LyapunovOptions lopt = bench::pll_lyapunov_options(3, false);
    const core::LyapunovResult lyap = core::LyapunovSynthesizer(lopt).synthesize(model.system);
    core::LevelSetOptions levopt;
    levopt.solver.warm_start = warm;
    levopt.solver.sparsity = sparsity;
    const core::LevelSetResult lev =
        core::LevelSetMaximizer(levopt).maximize(model.system, lyap.certificates);
    cost.level_iters = lev.solver.iterations;
  }

  // Advection eps/lambda ladder on the averaged model (successive steps and
  // retries share one compiled shape), with the per-step immersion check
  // exactly as the pipeline interleaves it (structurally identical from one
  // advected iterate to the next).
  {
    const pll::ReducedModel model = pll::make_averaged(params);
    core::LyapunovOptions lopt = bench::pll_lyapunov_options(3, false);
    const core::LyapunovResult lyap = core::LyapunovSynthesizer(lopt).synthesize(model.system);
    core::LevelSetOptions levopt;
    levopt.solver.warm_start = warm;
    levopt.solver.sparsity = sparsity;
    const core::LevelSetResult lev =
        core::LevelSetMaximizer(levopt).maximize(model.system, lyap.certificates);
    if (level_cone != nullptr) *level_cone = lev.solver.max_cone;

    core::AdvectionOptions aopt = bench::pll_advection_options(3);
    aopt.solver.warm_start = warm;
    aopt.solver.sparsity = sparsity;
    const core::AdvectionEngine engine(model.system, aopt);
    core::InclusionOptions iopt;
    iopt.solver.warm_start = warm;
    iopt.solver.sparsity = sparsity;
    const core::InclusionChecker inclusion(iopt);
    poly::Polynomial b = bench::ellipsoid(model.system.nvars(), {5.0, 4.2, 0.9});
    sos::SolveStats advect_stats, inclusion_stats;
    for (int it = 0; it < 6; ++it) {
      const core::AdvectionStepResult step = engine.step(b);
      advect_stats.merge(step.solver);
      if (!step.success) break;
      b = step.next;
      const core::InclusionResult incl = inclusion.subset_of_invariant(
          b, model.system, lyap.certificates, lev.consistent_level);
      inclusion_stats.merge(incl.solver);
    }
    cost.advect_iters = advect_stats.iterations;
    cost.inclusion_iters = inclusion_stats.iterations;
    if (inclusion_cone != nullptr) *inclusion_cone = inclusion_stats.max_cone;
  }
  cost.seconds = timer.seconds();
  return cost;
}

/// Gram geometry of the joint maximize_region Lyapunov program on the
/// pump-vertex model, compiled dense or with the correlative clique split —
/// the pruning/clique regression gates (the Newton-polytope +
/// diagonal-consistency prune lands the dense program at kPrunedGramBudget;
/// box is larger; the clique split must never grow a block past the dense
/// maximum).
struct GramGeometry {
  int total = 0;      // sum of Gram block dimensions
  int max_block = 0;  // largest Gram block (== largest PSD cone compiled)
};

/// The joint maximize_region-shaped Lyapunov feasibility program on the
/// pump-vertex model — the Gram-geometry gate input and the Schur-assembly
/// bench workload.
sos::SosProgram build_pump_vertex_lyapunov(sdp::SparsityOptions sparsity) {
  const pll::ReducedModel model = pll::make_averaged_vertices(pll::Params::paper_third_order());
  const hybrid::HybridSystem& system = model.system;
  const std::size_t nvars = system.nvars();
  const std::size_t nstates = system.nstates();
  sos::SosProgram prog(nvars);
  sdp::SolverConfig config;
  config.sparsity = sparsity;
  prog.set_sparsity(config);
  poly::MultiplierSparsity csp(nvars, sparsity != sdp::SparsityOptions::Off);
  const auto v_support = core::state_monomials(nvars, nstates, 2, 2);
  const poly::Polynomial x_norm2 = poly::squared_norm(nvars, nstates);
  std::vector<poly::PolyLin> v;
  for (std::size_t q = 0; q < system.modes().size(); ++q)
    v.push_back(prog.add_poly(v_support, "V" + std::to_string(q)));
  // Couple every mode's data before the first multiplier basis is drawn.
  for (std::size_t q = 0; q < system.modes().size(); ++q) {
    csp.couple(v[q] - poly::PolyLin(1e-2 * x_norm2));
    csp.couple(-v[q].lie_derivative(system.modes()[q].flow));
  }
  for (std::size_t q = 0; q < system.modes().size(); ++q) {
    const auto& mode = system.modes()[q];
    poly::PolyLin pos = v[q] - poly::PolyLin(1e-2 * x_norm2);
    poly::PolyLin dec = -v[q].lie_derivative(mode.flow);
    for (std::size_t k = 0; k < mode.domain.constraints().size(); ++k) {
      const poly::Polynomial& g = mode.domain.constraints()[k];
      pos -= prog.add_sos_poly(csp.multiplier_basis(g, 2u), "p") * g;
      dec -= prog.add_sos_poly(csp.multiplier_basis(g, 2u), "d") * g;
    }
    prog.add_sos_constraint(pos, "pos" + std::to_string(q));
    prog.add_sos_constraint(dec, "dec" + std::to_string(q));
  }
  return prog;
}

GramGeometry pump_vertex_gram(sdp::SparsityOptions sparsity) {
  const sos::SosProgram prog = build_pump_vertex_lyapunov(sparsity);
  GramGeometry geometry;
  for (const auto& g : prog.gram_blocks()) {
    geometry.total += static_cast<int>(g.basis.size());
    geometry.max_block = std::max(geometry.max_block, static_cast<int>(g.basis.size()));
  }
  return geometry;
}

/// IPM Schur-assembly speedup on the pump-vertex model: the fast sparse-panel
/// upper-triangle assembly vs the pre-overhaul reference
/// (IpmOptions::reference_schur), measured per iteration from the backend's
/// phase timers so the comparison is self-relative on this machine.
struct SchurBench {
  double fast_per_iter = 0.0, ref_per_iter = 0.0, speedup = 0.0;
  int iters_fast = 0, iters_ref = 0;
  bool verdict_parity = false;
};

SchurBench bench_pump_vertex_schur() {
  const sos::SosProgram prog = build_pump_vertex_lyapunov(sdp::SparsityOptions::Off);
  sdp::SolverConfig config;
  config.backend = "ipm";
  config.warm_start = false;
  const sos::SolveResult fast = prog.solve(config);
  config.ipm.reference_schur = true;
  const sos::SolveResult ref = prog.solve(config);
  SchurBench out;
  out.iters_fast = fast.sdp.iterations;
  out.iters_ref = ref.sdp.iterations;
  out.fast_per_iter = fast.sdp.phase.schur / std::max(1, fast.sdp.iterations);
  out.ref_per_iter = ref.sdp.phase.schur / std::max(1, ref.sdp.iterations);
  out.speedup = out.ref_per_iter / std::max(1e-12, out.fast_per_iter);
  out.verdict_parity = fast.status == ref.status && fast.feasible == ref.feasible;
  return out;
}

/// Native decomposed cones vs the seam conversion on the clock-tree
/// coupling SDP (the PR 5 gate): same IPM, same decomposition plan, the
/// overlap consistency lowered either as native multiplier couplings
/// (block-eliminated from the Schur factor) or as equality rows. The gated
/// claims: the factored Schur complement must shrink back to the original
/// row count, verdicts must agree, and the native round trip (including its
/// convert/complete phases) must not regress wall-clock.
struct NativeSeamBench {
  std::size_t rows_original = 0, overlaps = 0;
  std::size_t schur_rows_native = 0, schur_rows_seam = 0;
  int iters_native = 0, iters_seam = 0;
  double wall_native = 0.0, wall_seam = 0.0;
  bool verdict_parity = false;
};

NativeSeamBench bench_clock_tree_native_vs_seam() {
  pll::ClockTreeOptions tree;
  tree.loops = 48;  // 97 states: big enough that the factor geometry shows
  const pll::ClockTreeModel model =
      pll::make_clock_tree(pll::Params::paper_third_order(), tree);
  const sdp::Problem original = pll::clock_tree_coupling_sdp(model.constants, tree);

  NativeSeamBench out;
  out.rows_original = original.num_rows();
  sdp::Solution recovered[2];
  for (const bool at_seam : {false, true}) {
    sdp::LoweringOptions low_opt;
    low_opt.sparsity = sdp::SparsityOptions::Chordal;
    low_opt.chordal.min_block_size = 4;
    low_opt.chordal.at_seam = at_seam;
    double best_wall = 1e99;
    for (int rep = 0; rep < 3; ++rep) {  // best-of-3: shared-runner noise
      const util::Timer wall;
      const sdp::Lowering lowering = sdp::lower(original, low_opt);
      sdp::SolveContext context;
      const sdp::Solution sol = sdp::IpmSolver().solve(lowering.problem, context);
      const sdp::Solution rec = sdp::recover(sol, lowering);
      best_wall = std::min(best_wall, wall.seconds());
      if (rep == 0) {
        if (at_seam) {
          out.schur_rows_seam = sol.schur_rows;
          out.iters_seam = sol.iterations;
        } else {
          out.overlaps = lowering.problem.num_overlaps();
          out.schur_rows_native = sol.schur_rows;
          out.iters_native = sol.iterations;
        }
        recovered[at_seam ? 1 : 0] = rec;
      }
    }
    (at_seam ? out.wall_seam : out.wall_native) = best_wall;
  }
  out.verdict_parity =
      recovered[0].status == recovered[1].status &&
      std::fabs(recovered[0].primal_objective - recovered[1].primal_objective) <
          1e-4 * (1.0 + std::fabs(recovered[1].primal_objective));
  return out;
}

}  // namespace

int main() {
  const std::size_t worker_threads = bench::thread_banner();
  bench::cpu_banner();
  const bool paper_degrees = bench::env_flag("SOSLOCK_PAPER_DEGREES");
  std::printf("=== Table 2: computation time of the inevitability verification ===\n");
  std::printf("(certificate degrees: %s; set SOSLOCK_PAPER_DEGREES=1 for the paper's)\n\n",
              paper_degrees ? "paper (6 / 4)" : "fast (2 / 2)");

  const RowSet o3 = run_order(3, paper_degrees);
  const RowSet o4 = run_order(4, paper_degrees);

  std::printf("%-28s %18s %18s\n", "Verification Step", "3-Order Time(Sec)",
              "4-Order Time(Sec)");
  std::printf("%-28s %12.3f (d%u) %12.3f (d%u)\n", "Attractive Invariant", o3.invariant,
              o3.degree, o4.invariant, o4.degree);
  std::printf("%-28s %18.3f %18.3f\n", "Max.Level Curves", o3.levels, o4.levels);
  std::printf("%-28s %11.3f (%2d it) %11.3f (%2d it)\n", "Advection", o3.advection,
              o3.advect_iters, o4.advection, o4.advect_iters);
  std::printf("%-28s %18.3f %18.3f\n", "Checking Set Inclusion", o3.inclusion, o4.inclusion);
  std::printf("%-28s %11.3f (%d crt) %11.3f (%d crt)\n", "Escape Certificate", o3.escape,
              o3.escape_certs, o4.escape, o4.escape_certs);
  std::printf("%-28s %18s %18s\n", "Verdict", o3.verdict.c_str(), o4.verdict.c_str());

  std::printf("\nPaper reference values (2.6 GHz i5, 4 GB, YALMIP/MATLAB):\n");
  std::printf("%-28s %18s %18s\n", "Attractive Invariant", "1381.7 (deg 6)", "10021 (deg 4)");
  std::printf("%-28s %18s %18s\n", "Max.Level Curves", "15.5", "12");
  std::printf("%-28s %18s %18s\n", "Advection", "106.8 (14 it)", "140.7 (7 it)");
  std::printf("%-28s %18s %18s\n", "Checking Set Inclusion", "13", "10.2");
  std::printf("%-28s %18s %18s\n", "Escape Certificate", "-", "18 (2 crt)");

  std::printf("\nShape checks (see EXPERIMENTS.md for discussion):\n");
  auto yesno = [](bool b) { return b ? "yes" : "NO"; };
  std::printf("  both orders verified: %s / %s\n",
              yesno(o3.verdict.rfind("Verified", 0) == 0),
              yesno(o4.verdict.rfind("Verified", 0) == 0));
  std::printf("  advection iterates several steps (3rd >= 3, 4th == 7): %s / %s\n",
              yesno(o3.advect_iters >= 3), yesno(o4.advect_iters == 7));
  std::printf("  set-inclusion checks cheap vs advection: %s / %s\n",
              yesno(o3.inclusion < o3.advection), yesno(o4.inclusion < o4.advection));
  std::printf("  4th order needs escape certificates: %s\n", yesno(o4.escape_certs >= 1));
  if (paper_degrees) {
    std::printf("  [paper degrees] invariant synthesis vs level maximisation: our IPM "
                "solves the deg-%u invariant in %.1fs; the level step, which carries "
                "the deg-%u certificate into %zu-variable products, costs %.1fs. The "
                "paper's 1382s/10021s invariant steps dominated instead — solver "
                "generation gap, not a structural difference.\n",
                o3.degree, o3.invariant, o3.degree, static_cast<std::size_t>(4), o3.levels);
    std::printf("  [paper degrees] our deg-6 3rd-order run also closes P2 with an escape "
                "certificate (%d) where the paper's immersed symmetrically; at fast "
                "degrees (default run) the 3rd order immerses by advection alone.\n",
                o3.escape_certs);
  }

  // --- incremental solve path: cold vs warm ---------------------------------
  std::printf("\n=== Incremental solves: cold vs warm (3rd-order loops) ===\n");
  std::size_t level_cone_dense = 0, incl_cone_dense = 0;
  const LoopCost cold = run_incremental_loops(false);
  // The warm dense run doubles as the dense baseline of the clique
  // comparison below (same configuration; only the cone telemetry is new).
  const LoopCost warm = run_incremental_loops(true, sdp::SparsityOptions::Off,
                                              &level_cone_dense, &incl_cone_dense);
  const double ratio =
      warm.total() > 0 ? static_cast<double>(cold.total()) / warm.total() : 0.0;
  std::printf("%-26s %10s %10s\n", "", "cold", "warm");
  std::printf("%-26s %10d %10d\n", "level-curve iters", cold.level_iters, warm.level_iters);
  std::printf("%-26s %10d %10d\n", "advection iters", cold.advect_iters, warm.advect_iters);
  std::printf("%-26s %10d %10d\n", "inclusion iters", cold.inclusion_iters,
              warm.inclusion_iters);
  std::printf("%-26s %10d %10d   (%.2fx fewer warm)\n", "total IPM iters", cold.total(),
              warm.total(), ratio);
  std::printf("%-26s %9.2fs %9.2fs\n", "wall", cold.seconds, warm.seconds);

  // --- dense vs clique: cone sizes and iterations ---------------------------
  // The same warm-started loops with SparsityOptions::Chordal: correlative
  // Gram clique splitting + csp-restricted multiplier bases (+ the SDP-level
  // chordal conversion for any remaining large block). On the averaged
  // 3rd-order model the level/inclusion programs never touch the parameter
  // variable, so its monomials drop from every multiplier cone; the
  // advection program couples everything (the flow's state-parameter
  // product) and stays dense — which is the honest shape of this model.
  std::printf("\n=== Dense vs clique (SparsityOptions::Chordal, warm loops) ===\n");
  std::size_t level_cone_clique = 0, incl_cone_clique = 0;
  const LoopCost& dense_loops = warm;  // measured above, identical config
  const LoopCost clique_loops = run_incremental_loops(true, sdp::SparsityOptions::Chordal,
                                                      &level_cone_clique, &incl_cone_clique);
  std::printf("%-26s %10s %10s\n", "", "dense", "clique");
  std::printf("%-26s %10zu %10zu\n", "level max cone", level_cone_dense, level_cone_clique);
  std::printf("%-26s %10zu %10zu\n", "inclusion max cone", incl_cone_dense,
              incl_cone_clique);
  std::printf("%-26s %10d %10d\n", "level iters", dense_loops.level_iters,
              clique_loops.level_iters);
  std::printf("%-26s %10d %10d\n", "advection iters", dense_loops.advect_iters,
              clique_loops.advect_iters);
  std::printf("%-26s %10d %10d\n", "inclusion iters", dense_loops.inclusion_iters,
              clique_loops.inclusion_iters);
  std::printf("%-26s %9.2fs %9.2fs\n", "wall", dense_loops.seconds, clique_loops.seconds);

  // --- Gram-basis pruning + clique gates ------------------------------------
  // Newton-polytope + diagonal-consistency pruning lands the dense
  // pump-vertex Lyapunov program at this total Gram dimension; the box prune
  // is larger. The pump-vertex model couples all three states in every
  // constraint (its csp graph is complete), so the clique split must
  // reproduce the dense geometry exactly — its gate is "no block ever grows
  // past the dense maximum, no monomial is duplicated".
  constexpr int kPrunedGramBudget = 112;
  constexpr int kMaxCliqueBudget = 4;  // largest clique cone of the dense program
  const GramGeometry dense_gram = pump_vertex_gram(sdp::SparsityOptions::Off);
  const GramGeometry clique_gram = pump_vertex_gram(sdp::SparsityOptions::Chordal);
  std::printf("\npump-vertex gram: dense total=%d max=%d | clique total=%d max=%d "
              "(budgets: total %d, max clique %d)\n",
              dense_gram.total, dense_gram.max_block, clique_gram.total,
              clique_gram.max_block, kPrunedGramBudget, kMaxCliqueBudget);

  // --- IPM Schur-assembly speedup gate (PR 4 kernel overhaul) ---------------
  std::printf("\n=== IPM Schur assembly on the pump-vertex model ===\n");
  const SchurBench schur = bench_pump_vertex_schur();
  std::printf("%-26s %12.4es/it (%d iters)\n", "fast assembly", schur.fast_per_iter,
              schur.iters_fast);
  std::printf("%-26s %12.4es/it (%d iters)\n", "reference assembly", schur.ref_per_iter,
              schur.iters_ref);
  std::printf("%-26s %12.2fx (verdict parity: %s)\n", "speedup", schur.speedup,
              schur.verdict_parity ? "yes" : "NO");

  // --- native decomposed cones vs seam conversion (PR 5 gate) ---------------
  std::printf("\n=== Clock-tree coupling SDP: native cones vs seam rows ===\n");
  const NativeSeamBench ns = bench_clock_tree_native_vs_seam();
  std::printf("%-26s %10zu rows + %zu overlap couplings\n", "problem",
              ns.rows_original, ns.overlaps);
  std::printf("%-26s %10zu %10zu\n", "schur rows (native/seam)", ns.schur_rows_native,
              ns.schur_rows_seam);
  std::printf("%-26s %10d %10d\n", "iterations", ns.iters_native, ns.iters_seam);
  std::printf("%-26s %9.4fs %9.4fs   (verdict parity: %s)\n", "wall (lower+solve+recover)",
              ns.wall_native, ns.wall_seam, ns.verdict_parity ? "yes" : "NO");

  bench::write_bench_json("BENCH_PR5.json", "native_cones",
                          bench::with_kernel_fields(
                          {{"rows_original", static_cast<double>(ns.rows_original)},
                           {"overlap_couplings", static_cast<double>(ns.overlaps)},
                           {"schur_rows_native", static_cast<double>(ns.schur_rows_native)},
                           {"schur_rows_seam", static_cast<double>(ns.schur_rows_seam)},
                           {"iters_native", static_cast<double>(ns.iters_native)},
                           {"iters_seam", static_cast<double>(ns.iters_seam)},
                           {"wall_native_seconds", ns.wall_native},
                           {"wall_seam_seconds", ns.wall_seam},
                           {"worker_threads", static_cast<double>(worker_threads)}}),
                          /*fresh=*/true);
  std::printf("wrote BENCH_PR5.json (native_cones)\n");

  bench::write_bench_json("BENCH_PR4.json", "table2",
                          bench::with_kernel_fields(
                          {{"schur_per_iter_fast", schur.fast_per_iter},
                           {"schur_per_iter_reference", schur.ref_per_iter},
                           {"schur_speedup_pump_vertex", schur.speedup},
                           {"warm_iteration_ratio", ratio},
                           {"wall_cold_seconds", cold.seconds},
                           {"wall_warm_seconds", warm.seconds},
                           {"wall_clique_seconds", clique_loops.seconds},
                           {"worker_threads", static_cast<double>(worker_threads)}}),
                          /*fresh=*/false);
  std::printf("wrote BENCH_PR4.json (table2)\n");

  int failures = 0;
  // Target is >= 1.5x (measured well above); the gate sits at 1.25x so
  // shared-runner noise cannot trip CI while a real Schur-assembly
  // regression still fails loudly.
  if (schur.speedup < 1.25) {
    std::printf("FAIL: pump-vertex Schur assembly speedup %.2fx < 1.25x\n", schur.speedup);
    ++failures;
  }
  if (!schur.verdict_parity) {
    std::printf("FAIL: fast vs reference Schur assembly changed the verdict\n");
    ++failures;
  }
  // Current ratio is ~1.53x; the gate sits below it so cross-platform
  // iteration-count jitter cannot trip CI, while a real warm-start
  // regression (ratio -> 1.0) still fails loudly.
  if (ratio < 1.35) {
    std::printf("FAIL: warm starts give %.2fx < 1.35x iteration reduction\n", ratio);
    ++failures;
  }
  if (dense_gram.total > kPrunedGramBudget) {
    std::printf("FAIL: gram basis regressed above the pruned baseline (%d > %d)\n",
                dense_gram.total, kPrunedGramBudget);
    ++failures;
  }
  if (clique_gram.max_block > kMaxCliqueBudget) {
    std::printf("FAIL: pump-vertex max clique cone regressed (%d > %d)\n",
                clique_gram.max_block, kMaxCliqueBudget);
    ++failures;
  }
  if (clique_gram.total > kPrunedGramBudget) {
    std::printf("FAIL: clique split grew the pump-vertex gram total (%d > %d)\n",
                clique_gram.total, kPrunedGramBudget);
    ++failures;
  }
  // The level-program cone must genuinely shrink under the clique split (the
  // parameter variable drops from the multiplier cones), and the clique
  // loops must not regress wall-clock beyond CI noise.
  if (level_cone_clique >= level_cone_dense) {
    std::printf("FAIL: clique split did not shrink the level-program cone (%zu >= %zu)\n",
                level_cone_clique, level_cone_dense);
    ++failures;
  }
  if (incl_cone_clique > incl_cone_dense) {
    std::printf("FAIL: clique split grew the inclusion-program cone (%zu > %zu)\n",
                incl_cone_clique, incl_cone_dense);
    ++failures;
  }
  // Generous relative + absolute slack: the loops run ~1.5s, so a tight
  // ratio gate would trip on shared-runner load noise; a real regression
  // (clique machinery adding solver work) blows well past 2x + 2s.
  if (clique_loops.seconds > 2.0 * dense_loops.seconds + 2.0) {
    std::printf("FAIL: clique loops regressed wall-clock (%.2fs vs %.2fs dense)\n",
                clique_loops.seconds, dense_loops.seconds);
    ++failures;
  }
  // Native decomposed-cone gates: the factored Schur complement must shrink
  // back to the original row count (zero overlap rows in it), verdicts must
  // agree with the seam reference, and the native round trip must not
  // regress wall-clock. The half-solve + syrk block elimination is
  // flop-neutral with the extended factorization (measured at parity or
  // slightly faster), so the gate sits at 1.3x + 20ms — loose enough for
  // shared-runner noise on a ~15ms solve, tight enough that a structural
  // regression (e.g. the elimination degrading to full GEMM form) fails.
  if (ns.schur_rows_native != ns.rows_original) {
    std::printf("FAIL: native Schur factor carries overlap rows (%zu != %zu)\n",
                ns.schur_rows_native, ns.rows_original);
    ++failures;
  }
  if (ns.schur_rows_seam <= ns.schur_rows_native) {
    std::printf("FAIL: clock-tree Schur rows did not shrink native vs seam (%zu <= %zu)\n",
                ns.schur_rows_seam, ns.schur_rows_native);
    ++failures;
  }
  if (!ns.verdict_parity) {
    std::printf("FAIL: native vs seam decomposed-cone verdicts diverged\n");
    ++failures;
  }
  if (ns.wall_native > 1.3 * ns.wall_seam + 0.02) {
    std::printf("FAIL: native cones regressed wall-clock (%.4fs vs %.4fs seam)\n",
                ns.wall_native, ns.wall_seam);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
