// Micro-benchmarks of the SOS layer: compile+solve cost by degree, and the
// effect of the Newton-box Gram basis pruning (an ablation of a DESIGN.md
// choice).
#include <benchmark/benchmark.h>

#include "sos/checker.hpp"
#include "sos/program.hpp"
#include "util/rng.hpp"

using namespace soslock;
using poly::Polynomial;

namespace {

/// Obviously-SOS polynomial: sum of squares of random polynomials of degree
/// deg/2 in `nvars` variables.
Polynomial random_sos(std::size_t nvars, unsigned deg, std::uint64_t seed) {
  util::Rng rng(seed);
  Polynomial p(nvars);
  for (int k = 0; k < 4; ++k) {
    Polynomial q(nvars);
    for (const poly::Monomial& m : poly::monomials_up_to(nvars, deg / 2))
      q.add_term(m, rng.uniform(-1.0, 1.0));
    p += q * q;
  }
  return p;
}

void BM_SosFeasibilityByDegree(benchmark::State& state) {
  const auto deg = static_cast<unsigned>(state.range(0));
  const Polynomial p = random_sos(3, deg, 41);
  for (auto _ : state) {
    sos::SosProgram prog(3);
    prog.set_trace_regularization(1e-8);
    prog.add_sos_constraint(p, "p");
    const sos::SolveResult r = prog.solve();
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_SosFeasibilityByDegree)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_SosPruning(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  // Sparse even polynomial where pruning pays off.
  const Polynomial x = Polynomial::variable(3, 0);
  const Polynomial y = Polynomial::variable(3, 1);
  const Polynomial z = Polynomial::variable(3, 2);
  const Polynomial p = x.pow(6) + y.pow(6) + z.pow(6) + x.pow(2) * y.pow(2) * z.pow(2) +
                       2.0 * x.pow(4) * y.pow(2) + 1.0 * y.pow(4) * z.pow(2);
  std::size_t basis_size = 0;
  for (auto _ : state) {
    sos::SosProgram prog(3);
    prog.set_trace_regularization(1e-8);
    prog.add_sos_constraint(p, "p", prune);
    basis_size = prog.gram_blocks().front().basis.size();
    const sos::SolveResult r = prog.solve();
    benchmark::DoNotOptimize(r.feasible);
  }
  state.counters["gram_basis"] = static_cast<double>(basis_size);
}
BENCHMARK(BM_SosPruning)->Arg(0)->Arg(1);

void BM_SosCompileOnly(benchmark::State& state) {
  const Polynomial p = random_sos(4, 6, 43);
  for (auto _ : state) {
    sos::SosProgram prog(4);
    prog.add_sos_constraint(p, "p");
    const sdp::Problem compiled = prog.compile();
    benchmark::DoNotOptimize(compiled.num_rows());
  }
}
BENCHMARK(BM_SosCompileOnly);

void BM_CertificateAudit(benchmark::State& state) {
  const Polynomial p = random_sos(3, 6, 47);
  sos::SosProgram prog(3);
  prog.set_trace_regularization(1e-8);
  prog.add_sos_constraint(p, "p");
  const sos::SolveResult r = prog.solve();
  for (auto _ : state) {
    const sos::AuditReport report = sos::audit(prog, r);
    benchmark::DoNotOptimize(report.ok);
  }
}
BENCHMARK(BM_CertificateAudit);

}  // namespace

BENCHMARK_MAIN();
