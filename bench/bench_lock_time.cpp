// Extension bench: certified "time to locking" bounds (the property verified
// by Althoff et al. [2] and Lin et al. [6], discussed in the paper's related
// work) versus simulated lock times of the full event-driven model. The
// certified bound must dominate every simulated sample.
#include <cstdio>

#include "bench_common.hpp"
#include "core/lyapunov.hpp"
#include "core/rate.hpp"
#include "sim/monte_carlo.hpp"

using namespace soslock;

namespace {

void run_order(int order) {
  const pll::Params params =
      order == 3 ? pll::Params::paper_third_order() : pll::Params::paper_fourth_order();
  const pll::ReducedModel model = pll::make_averaged(params);
  std::printf("--- order %d ---\n", order);

  core::LyapunovOptions lopt;
  lopt.certificate_degree = 2;
  lopt.flow_decrease = core::FlowDecrease::Strict;
  lopt.strict_margin = order == 3 ? 1e-4 : 1e-5;
  const core::LyapunovResult lyap = core::LyapunovSynthesizer(lopt).synthesize(model.system);
  if (!lyap.success) {
    std::printf("Lyapunov synthesis failed: %s\n", lyap.message.c_str());
    return;
  }
  const core::RateResult rate =
      core::RateCertifier().certify(model.system, 0, lyap.certificates.front());
  if (!rate.success) {
    std::printf("rate certification failed: %s\n", rate.message.c_str());
    return;
  }
  const double r0 = 2.5;    // initial ||x|| bound (volts/cycles mixed norm)
  const double r_lock = 0.1;
  const double bound = rate.time_to_reach(r0, r_lock);
  std::printf("certified: V decays at rate alpha=%.4f, %.4f|x|^2 <= V <= %.4f|x|^2\n",
              rate.alpha, rate.lower_quadratic, rate.upper_quadratic);
  std::printf("certified time bound ||x0||<=%.1f -> ||x||<=%.2f:  t <= %.1f (x R*C2 = %.3g s)\n",
              r0, r_lock, bound, bound * model.constants.t_scale);

  // Simulated lock times of the *averaged* model (the certified object).
  const hybrid::Simulator sim(model.system);
  util::Rng rng(2026);
  double worst = 0.0;
  int violations = 0, left_domain = 0;
  const std::size_t trials = 20;
  for (std::size_t k = 0; k < trials; ++k) {
    linalg::Vector x0(model.system.nstates());
    // Sample inside ||x|| <= r0, keeping the phase error moderate so the
    // transient cannot overshoot past the certified domain |e| <= 1 (the
    // rate bound only applies to flows that stay in C).
    do {
      for (double& xi : x0) xi = rng.uniform(-r0, r0);
    } while (linalg::norm2(x0) > r0 || std::fabs(x0[model.e_index]) > 0.4);
    hybrid::SimOptions sopt;
    sopt.dt = 2e-3;
    sopt.t_max = bound * 1.2;
    sopt.stop_when = [r_lock](const hybrid::TracePoint& pt) {
      return linalg::norm2(pt.x) < r_lock;
    };
    const hybrid::SimResult run = sim.run(0, x0, sopt);
    if (run.stop_reason == "stop_when") {
      worst = std::max(worst, run.final().t);
    } else if (run.stuck()) {
      ++left_domain;  // bound not applicable to this trajectory
    } else {
      ++violations;
    }
  }
  std::printf("simulated: %zu trials, slowest settle %.1f, bound violations: %d "
              "(%d left the certified domain)\n\n",
              trials, worst, violations, left_domain);
}

}  // namespace

int main() {
  std::printf("=== Certified time-to-lock bounds (extension; cf. refs [2],[6]) ===\n\n");
  run_order(3);
  run_order(4);
  return 0;
}
