// S-procedure "fact library": parameterized checks that the SOS layer
// certifies (or correctly refuses to certify) a catalogue of elementary
// semialgebraic positivity facts. These are the atoms every certificate in
// the pipeline is built from, so each fact is exercised through the same
// add_sos_poly / add_sos_constraint path the pipeline uses.
#include <gtest/gtest.h>

#include <cmath>

#include "poly/basis.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"
#include "linalg/eigen_sym.hpp"
#include "util/rng.hpp"

namespace soslock::sos {
namespace {

using poly::LinExpr;
using poly::Monomial;
using poly::Polynomial;
using poly::PolyLin;

Polynomial var(std::size_t n, std::size_t i) { return Polynomial::variable(n, i); }

/// Certify min of p on {g >= 0 for g in set} >= bound via one multiplier per
/// constraint; returns the maximal certified bound.
double certified_min(const Polynomial& p, const std::vector<Polynomial>& set,
                     unsigned mult_deg = 2) {
  SosProgram prog(p.nvars());
  const LinExpr c = prog.add_scalar("c");
  PolyLin expr(p);
  PolyLin cterm(p.nvars());
  cterm.add_term(Monomial(p.nvars()), c);
  expr -= cterm;
  for (std::size_t k = 0; k < set.size(); ++k) {
    const PolyLin sigma = prog.add_sos_poly(mult_deg, 0, "s" + std::to_string(k));
    expr -= sigma * set[k];
  }
  prog.add_sos_constraint(expr, "bound");
  prog.maximize(c);
  const SolveResult r = prog.solve();
  if (!r.feasible) return -std::numeric_limits<double>::infinity();
  return r.objective;
}

struct IntervalCase {
  double lo, hi;        // domain [lo, hi]
  double expected_min;  // of the test polynomial below
};

class QuadraticOnInterval : public ::testing::TestWithParam<IntervalCase> {};

// p(x) = (x-1)^2 + 0.5: global min 0.5 at x=1.
TEST_P(QuadraticOnInterval, CertifiedMinMatches) {
  const auto [lo, hi, expected] = GetParam();
  const Polynomial x = var(1, 0);
  const Polynomial p = (x - 1.0) * (x - 1.0) + 0.5;
  const std::vector<Polynomial> interval = {x - lo, Polynomial::constant(1, hi) - x};
  EXPECT_NEAR(certified_min(p, interval), expected, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Cases, QuadraticOnInterval,
                         ::testing::Values(IntervalCase{0.0, 2.0, 0.5},      // min interior
                                           IntervalCase{2.0, 3.0, 1.5},      // min at lo
                                           IntervalCase{-2.0, 0.0, 1.5},     // min at hi
                                           IntervalCase{-1.0, 0.5, 0.75}));  // at hi

TEST(SProcedure, BallConstraintBound) {
  // min of x + y on the unit disk is -sqrt(2).
  const Polynomial x = var(2, 0), y = var(2, 1);
  const Polynomial p = x + y;
  const Polynomial ball = Polynomial::constant(2, 1.0) - x * x - y * y;
  EXPECT_NEAR(certified_min(p, {ball}), -std::sqrt(2.0), 2e-3);
}

TEST(SProcedure, TwoConstraintCorner) {
  // min of x + y on {x >= 1} ∩ {y >= 2} is 3.
  const Polynomial x = var(2, 0), y = var(2, 1);
  EXPECT_NEAR(certified_min(x + y, {x - 1.0, y - 2.0}), 3.0, 2e-3);
}

TEST(SProcedure, RedundantConstraintHarmless) {
  const Polynomial x = var(1, 0);
  const Polynomial p = x * x;
  const std::vector<Polynomial> set = {x - 1.0, x - 0.5};  // x>=1 implies x>=0.5
  EXPECT_NEAR(certified_min(p, set), 1.0, 5e-3);
}

TEST(SProcedure, EmptyDomainIsUnbounded) {
  // {x >= 1} ∩ {-x >= 0} is empty: every bound is certifiable, so the
  // maximisation is unbounded and the solver must flag it (dual infeasible)
  // rather than return a finite "minimum".
  const Polynomial x = var(1, 0);
  SosProgram prog(1);
  const LinExpr c = prog.add_scalar("c");
  PolyLin expr(x);
  PolyLin cterm(1);
  cterm.add_term(Monomial(1), c);
  expr -= cterm;
  const PolyLin s1 = prog.add_sos_poly(2, 0, "s1");
  const PolyLin s2 = prog.add_sos_poly(2, 0, "s2");
  expr -= s1 * (x - 1.0);
  expr -= s2 * (-1.0 * x);
  prog.add_sos_constraint(expr, "bound");
  prog.maximize(c);
  sdp::SolverConfig opt;
  opt.max_iterations = 60;
  const SolveResult r = prog.solve(opt);
  // Either flagged unbounded/diverged, or (with caps) a huge value.
  EXPECT_TRUE(!r.feasible || r.objective > 10.0);
}

TEST(SProcedure, QuarticNeedsQuarticMultipliers) {
  // min of x^4 - x^2 on [-1, 1] is -1/4; degree-0/2 multipliers give a valid
  // but possibly loose bound, degree-4 multipliers should be near-exact.
  const Polynomial x = var(1, 0);
  const Polynomial p = x.pow(4) - x * x;
  const std::vector<Polynomial> interval = {x + 1.0, Polynomial::constant(1, 1.0) - x};
  const double loose = certified_min(p, interval, 2);
  const double tight = certified_min(p, interval, 4);
  EXPECT_LE(loose, -0.25 + 1e-6);  // sound
  EXPECT_LE(tight, -0.25 + 1e-6);
  EXPECT_NEAR(tight, -0.25, 2e-3);
  EXPECT_LE(loose, tight + 1e-9);  // richer multipliers never worse
}

class RandomQuadraticBound : public ::testing::TestWithParam<std::uint64_t> {};

// Random convex quadratic on a box: the certified minimum must lower-bound a
// dense grid evaluation, and be close to it.
TEST_P(RandomQuadraticBound, SoundAndTight) {
  util::Rng rng(GetParam());
  const Polynomial x = var(2, 0), y = var(2, 1);
  const double a = rng.uniform(0.5, 2.0), b = rng.uniform(0.5, 2.0);
  const double cx = rng.uniform(-1.0, 1.0), cy = rng.uniform(-1.0, 1.0);
  const Polynomial p = a * (x - cx) * (x - cx) + b * (y - cy) * (y - cy) +
                       rng.uniform(-0.3, 0.3) * (x - cx) * (y - cy);
  const std::vector<Polynomial> box = {x + 1.0, Polynomial::constant(2, 1.0) - x, y + 1.0,
                                       Polynomial::constant(2, 1.0) - y};
  const double certified = certified_min(p, box);
  double grid_min = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= 40; ++i)
    for (int j = 0; j <= 40; ++j)
      grid_min = std::min(grid_min, p.eval({-1.0 + i * 0.05, -1.0 + j * 0.05}));
  EXPECT_LE(certified, grid_min + 1e-6) << "bound not sound";
  EXPECT_GE(certified, grid_min - 0.05) << "bound too loose";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQuadraticBound, ::testing::Range<std::uint64_t>(1, 13));

class SosConeMembership : public ::testing::TestWithParam<std::uint64_t> {};

// Random sums of squares must be accepted; the same polynomial minus a
// margin beyond its minimum must be rejected.
TEST_P(SosConeMembership, AcceptAndReject) {
  util::Rng rng(GetParam() * 97 + 5);
  const std::size_t nvars = 2 + rng.index(2);
  Polynomial p(nvars);
  for (int k = 0; k < 3; ++k) {
    Polynomial q(nvars);
    for (const Monomial& m : poly::monomials_up_to(nvars, 2))
      q.add_term(m, rng.uniform(-1.0, 1.0));
    p += q * q;
  }
  EXPECT_TRUE(is_sos_numeric(p));
  // p is SOS with p(x*) = min >= 0; subtracting (min + 1) makes it negative
  // somewhere, hence not SOS. A crude lower estimate of the min: sample.
  double sample_min = std::numeric_limits<double>::infinity();
  for (int s = 0; s < 2000; ++s) {
    linalg::Vector xx = rng.uniform_vector(nvars, -2.0, 2.0);
    sample_min = std::min(sample_min, p.eval(xx));
  }
  const Polynomial shifted = p - (sample_min + 1.0);
  EXPECT_FALSE(is_sos_numeric(shifted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SosConeMembership, ::testing::Range<std::uint64_t>(1, 9));

TEST(SProcedure, EqualityViaTwoInequalities) {
  // min of y on {x^2 + y^2 = 1} (as two inequalities) is -1.
  const Polynomial x = var(2, 0), y = var(2, 1);
  const Polynomial circle = Polynomial::constant(2, 1.0) - x * x - y * y;
  EXPECT_NEAR(certified_min(y, {circle, -1.0 * circle}), -1.0, 5e-3);
}

TEST(SProcedure, PositivstellensatzDegreeGap) {
  // p = x on {x^3 >= 0} (i.e. x >= 0): the relaxation x - c - sigma*x^3 ∈ Σ
  // is infeasible for EVERY c at low multiplier degree — any sigma with a
  // nonzero even term produces an odd leading monomial. This demonstrates
  // the (well-known) incompleteness of fixed-degree S-procedure relaxations;
  // the answer "no certificate" is sound, never wrong.
  const Polynomial x = var(1, 0);
  const double bound = certified_min(x, {x.pow(3)}, 2);
  EXPECT_TRUE(std::isinf(bound) && bound < 0.0);
  // Rewriting the same constraint as {x >= 0} (degree 1) restores exactness.
  const double exact = certified_min(x, {x}, 2);
  EXPECT_NEAR(exact, 0.0, 1e-4);
}

TEST(SProcedure, MultiplierExtraction) {
  // The multipliers returned in the Gram blocks must themselves be PSD and
  // reconstruct SOS polynomials.
  SosProgram prog(1);
  const Polynomial x = var(1, 0);
  const PolyLin sigma = prog.add_sos_poly(2, 0, "sigma");
  PolyLin expr(x * x - 0.5);
  expr -= sigma * (x - 1.0);
  prog.add_sos_constraint(expr, "main");
  const SolveResult r = prog.solve();
  ASSERT_TRUE(r.feasible);
  for (const GramCertificate& g : r.grams) {
    if (g.gram.rows() == 0) continue;
    EXPECT_GT(linalg::min_eigenvalue(g.gram), -1e-7);
  }
  const AuditReport audit_report = audit(prog, r);
  EXPECT_TRUE(audit_report.ok);
}

}  // namespace
}  // namespace soslock::sos
