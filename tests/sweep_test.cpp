// Tests for the certification sweep service (src/sweep): grid enumeration
// and parameter substitution, report totals and telemetry consistency on a
// small all-certified sweep, budget/cancellation skipping, and the
// warm-chaining correctness regressions across a real verdict boundary (an
// inverted-polarity pump): a chained certificate must never carry a verdict
// across the feasibility boundary — certified→uncertified triggers a cold
// restart, uncertified→certified starts cold because uncertified points
// never donate.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "sweep/grid.hpp"
#include "sweep/query.hpp"
#include "sweep/service.hpp"

namespace soslock {
namespace {

sweep::SweepOptions ipm_options() {
  sweep::SweepOptions options;
  options.solver.backend = "ipm";
  options.threads = 1;
  return options;
}

TEST(SweepGrid, MixedRadixEnumerationRoundTrips) {
  const sweep::Grid grid(pll::Params::paper_third_order(),
                         {{sweep::Axis::Ip, 3, 1e-4, 3e-4, 5e-6},
                          {sweep::Axis::Kv, 2, 100.0, 200.0, 0.0},
                          {sweep::Axis::R, 4, 7e3, 9e3, 0.0}});
  ASSERT_EQ(grid.size(), 24u);
  ASSERT_EQ(grid.dims(), 3u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const std::vector<std::size_t> c = grid.coords(i);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(grid.index(c), i);
  }
  // Axis 0 is the fastest digit: consecutive indices are ip-neighbors.
  EXPECT_EQ(grid.coords(0), (std::vector<std::size_t>{0, 0, 0}));
  EXPECT_EQ(grid.coords(1), (std::vector<std::size_t>{1, 0, 0}));
  EXPECT_EQ(grid.coords(3), (std::vector<std::size_t>{0, 1, 0}));
  EXPECT_EQ(grid.coords(6), (std::vector<std::size_t>{0, 0, 1}));

  // Endpoint + even-spacing of the midpoints.
  EXPECT_DOUBLE_EQ(grid.axis_value(0, 0), 1e-4);
  EXPECT_DOUBLE_EQ(grid.axis_value(0, 2), 3e-4);
  EXPECT_DOUBLE_EQ(grid.axis_value(2, 1), 7e3 + 2e3 / 3.0);

  EXPECT_THROW(sweep::Grid(pll::Params::paper_third_order(), {{sweep::Axis::Ip, 0, 0, 1, 0}}),
               std::invalid_argument);
}

TEST(SweepGrid, ParamsSubstitutesSweptIntervalsOnly) {
  const pll::Params base = pll::Params::paper_third_order();
  const sweep::Grid grid(base, {{sweep::Axis::Ip, 3, 1e-4, 3e-4, 5e-6},
                                {sweep::Axis::Kv, 2, 100.0, 200.0, 0.0}});
  const std::size_t idx = grid.index({2, 1});
  const pll::Params p = grid.params(idx);
  EXPECT_DOUBLE_EQ(p.ip.lo, 3e-4 - 5e-6);
  EXPECT_DOUBLE_EQ(p.ip.hi, 3e-4 + 5e-6);
  EXPECT_DOUBLE_EQ(p.kv.lo, 200.0);
  EXPECT_DOUBLE_EQ(p.kv.hi, 200.0);
  // Untouched axes keep the base design.
  EXPECT_DOUBLE_EQ(p.r.lo, base.r.lo);
  EXPECT_DOUBLE_EQ(p.c1.hi, base.c1.hi);
  EXPECT_DOUBLE_EQ(p.f_ref, base.f_ref);

  // A single-step axis pins the midpoint of [lo, hi].
  const sweep::Grid pinned(base, {{sweep::Axis::Kv, 1, 100.0, 300.0, 2.0}});
  EXPECT_DOUBLE_EQ(pinned.params(0).kv.lo, 200.0 - 2.0);
  EXPECT_DOUBLE_EQ(pinned.params(0).kv.hi, 200.0 + 2.0);
}

TEST(SweepService, ReportTotalsAndTelemetryAreConsistent) {
  // 3 x 2 paper neighborhood: every point certifies; after the first point
  // every compile must take the in-place update path and every solve after
  // the first must chain warm.
  const sweep::Grid grid(pll::Params::paper_third_order(),
                         {{sweep::Axis::Ip, 3, 400e-6, 600e-6, 5e-6},
                          {sweep::Axis::Kv, 2, 160.0, 240.0, 2.0}});
  const sweep::SweepReport report =
      sweep::run_sweep(grid, sweep::lyapunov_query(), ipm_options());

  ASSERT_EQ(report.points.size(), grid.size());
  EXPECT_EQ(report.certified + report.uncertified + report.skipped, grid.size());
  EXPECT_EQ(report.certified, grid.size());
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_FALSE(report.interrupted);
  EXPECT_GT(report.total_iterations, 0);
  EXPECT_GT(report.certificates_per_second(), 0.0);

  // Recompile-free hot path: one full pipeline run, then updates only.
  EXPECT_EQ(report.full_lowerings, 1u);
  EXPECT_EQ(report.updates, grid.size() - 1 + report.cold_restarts);
  EXPECT_EQ(report.warm_hits, grid.size() - 1 - report.cold_restarts);
  EXPECT_GT(report.warm_hit_rate(), 0.5);

  // Per-point records are in grid order and match the aggregate.
  std::size_t warm_hits = 0;
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const sweep::PointRecord& rec = report.points[i];
    EXPECT_EQ(rec.index, i);
    EXPECT_TRUE(rec.certified);
    EXPECT_EQ(rec.values.size(), 2u);
    warm_hits += rec.warm_hit ? 1 : 0;
  }
  EXPECT_EQ(warm_hits, report.warm_hits);

  // Derived artifacts: one CSV row per point, a map with a certified glyph.
  EXPECT_EQ(report.csv(grid).rows(), grid.size());
  EXPECT_NE(report.stability_map(grid).find('#'), std::string::npos);
  EXPECT_FALSE(report.summary().empty());

  // Chaining off: same verdicts, zero warm hits.
  sweep::SweepOptions cold = ipm_options();
  cold.warm_chaining = false;
  const sweep::SweepReport cold_report =
      sweep::run_sweep(grid, sweep::lyapunov_query(), cold);
  EXPECT_EQ(cold_report.certified, grid.size());
  EXPECT_EQ(cold_report.warm_hits, 0u);
  EXPECT_EQ(cold_report.cold_restarts, 0u);
}

TEST(SweepService, ExhaustedBudgetSkipsRemainingPoints) {
  const sweep::Grid grid(pll::Params::paper_third_order(),
                         {{sweep::Axis::Ip, 4, 400e-6, 600e-6, 5e-6}});
  sweep::SweepOptions options = ipm_options();
  options.time_budget_seconds = 1e-9;  // gone before the first point
  const sweep::SweepReport report =
      sweep::run_sweep(grid, sweep::lyapunov_query(), options);
  EXPECT_GE(report.skipped, grid.size() - 1);
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(report.certified + report.uncertified + report.skipped, grid.size());
  for (const sweep::PointRecord& rec : report.points) {
    if (rec.skipped) {
      EXPECT_FALSE(rec.certified);
    }
  }
}

TEST(SweepService, CancellationSkipsEverything) {
  const sweep::Grid grid(pll::Params::paper_third_order(),
                         {{sweep::Axis::Ip, 3, 400e-6, 600e-6, 5e-6}});
  std::atomic<bool> cancel{true};
  sweep::SweepOptions options = ipm_options();
  options.cancel = &cancel;
  const sweep::SweepReport report =
      sweep::run_sweep(grid, sweep::lyapunov_query(), options);
  EXPECT_EQ(report.skipped, grid.size());
  EXPECT_EQ(report.certified, 0u);
  EXPECT_TRUE(report.interrupted);
}

TEST(SweepService, VerdictFlipTriggersColdRestartAndBreaksTheChain) {
  // The satellite-2 regression on a *real* verdict boundary: an inverted
  // pump polarity (ip < 0) makes the averaged loop positive feedback
  // (char-poly constant term a*rho*kappa < 0), so negative pump points are
  // genuinely uncertifiable while positive ones certify. Values are chosen
  // well away from zero so the SOS verdict is unambiguous.
  const pll::Params base = pll::Params::paper_third_order();
  const sweep::CertificationQuery query = sweep::lyapunov_query();

  // Certified → uncertified (descending ip): the flip point's warm attempt
  // inherits a certified donor, must be re-solved cold before the
  // uncertified verdict stands.
  {
    const sweep::Grid grid(base, {{sweep::Axis::Ip, 4, 400e-6, -400e-6, 0.0}});
    const sweep::SweepReport report = sweep::run_sweep(grid, query, ipm_options());
    ASSERT_EQ(report.points.size(), 4u);
    EXPECT_TRUE(report.points[0].certified);   // ip = +400u, cold start
    EXPECT_TRUE(report.points[1].certified);   // ip = +133u, chained
    EXPECT_TRUE(report.points[1].warm_hit);
    EXPECT_FALSE(report.points[2].certified);  // ip = -133u: the boundary
    EXPECT_TRUE(report.points[2].cold_restart);
    EXPECT_FALSE(report.points[2].warm_hit);   // verdict came from the cold solve
    EXPECT_FALSE(report.points[3].certified);  // ip = -400u
    EXPECT_FALSE(report.points[3].warm_hit);   // chain broken at the boundary
    EXPECT_FALSE(report.points[3].cold_restart);
    EXPECT_EQ(report.certified, 2u);
    EXPECT_EQ(report.uncertified, 2u);
    EXPECT_EQ(report.cold_restarts, 1u);
  }

  // Uncertified → certified (ascending ip): uncertified points never donate,
  // so the first certified point after the boundary must start cold — a
  // chained blob from the infeasible side could otherwise poison it.
  {
    const sweep::Grid grid(base, {{sweep::Axis::Ip, 4, -400e-6, 400e-6, 0.0}});
    const sweep::SweepReport report = sweep::run_sweep(grid, query, ipm_options());
    ASSERT_EQ(report.points.size(), 4u);
    EXPECT_FALSE(report.points[0].certified);
    EXPECT_FALSE(report.points[1].certified);
    EXPECT_TRUE(report.points[2].certified);   // first feasible point
    EXPECT_FALSE(report.points[2].warm_hit);   // ...starts cold: no donor
    EXPECT_FALSE(report.points[2].cold_restart);
    EXPECT_TRUE(report.points[3].certified);
    EXPECT_TRUE(report.points[3].warm_hit);    // chain resumes inside the region
    EXPECT_EQ(report.warm_hits, 1u);
  }
}

}  // namespace
}  // namespace soslock
