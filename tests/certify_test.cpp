// Tests for level-set maximisation, Lemma-1 inclusion certificates, bounded
// advection, and escape certificates on systems with known geometry.
#include <gtest/gtest.h>

#include <cmath>

#include "core/advection.hpp"
#include "core/escape.hpp"
#include "core/inclusion.hpp"
#include "core/level_set.hpp"
#include "core/lyapunov.hpp"

namespace soslock::core {
namespace {

using hybrid::HybridSystem;
using hybrid::Mode;
using hybrid::SemialgebraicSet;
using poly::Polynomial;

Polynomial var(std::size_t nvars, std::size_t i) { return Polynomial::variable(nvars, i); }

TEST(LevelSet, UnitBoxQuadratic) {
  // V = x^2 + y^2 inside [-1,1]^2: the largest inscribed sublevel set is the
  // unit disk, c* = 1.
  const Polynomial v = var(2, 0) * var(2, 0) + var(2, 1) * var(2, 1);
  SemialgebraicSet box(2);
  box.add_interval(0, -1.0, 1.0);
  box.add_interval(1, -1.0, 1.0);
  const LevelSetResult r = LevelSetMaximizer().maximize_one(v, box);
  ASSERT_TRUE(r.success) << r.message;
  EXPECT_NEAR(r.levels.front(), 1.0, 1e-3);
}

TEST(LevelSet, AsymmetricBox) {
  // V = x^2 + y^2 inside [-2,2] x [-0.5,0.5]: c* = 0.25 (limited by y).
  const Polynomial v = var(2, 0) * var(2, 0) + var(2, 1) * var(2, 1);
  SemialgebraicSet box(2);
  box.add_interval(0, -2.0, 2.0);
  box.add_interval(1, -0.5, 0.5);
  const LevelSetResult r = LevelSetMaximizer().maximize_one(v, box);
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.levels.front(), 0.25, 1e-3);
}

TEST(LevelSet, ScaledCertificate) {
  // V = 4x^2 + y^2 inside the unit box: {V <= c} has x-extent sqrt(c)/2 and
  // y-extent sqrt(c): c* = 1.
  const Polynomial v = 4.0 * var(2, 0) * var(2, 0) + var(2, 1) * var(2, 1);
  SemialgebraicSet box(2);
  box.add_interval(0, -1.0, 1.0);
  box.add_interval(1, -1.0, 1.0);
  const LevelSetResult r = LevelSetMaximizer().maximize_one(v, box);
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.levels.front(), 1.0, 1e-3);
}

TEST(LevelSet, ConsistentLevelIsMin) {
  // Two modes with different domains: consistent level = min of the two.
  HybridSystem sys(2, 0);
  const Polynomial v = var(2, 0) * var(2, 0) + var(2, 1) * var(2, 1);
  Mode wide;
  wide.flow = {Polynomial(2), Polynomial(2)};
  wide.domain = SemialgebraicSet(2);
  wide.domain.add_interval(0, -2.0, 2.0);
  wide.domain.add_interval(1, -2.0, 2.0);
  Mode narrow = wide;
  narrow.domain = SemialgebraicSet(2);
  narrow.domain.add_interval(0, -1.0, 1.0);
  narrow.domain.add_interval(1, -1.0, 1.0);
  sys.add_mode(std::move(wide));
  sys.add_mode(std::move(narrow));
  const LevelSetResult r = LevelSetMaximizer().maximize(sys, {v, v});
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.levels[0], 4.0, 1e-2);
  EXPECT_NEAR(r.levels[1], 1.0, 1e-3);
  EXPECT_NEAR(r.consistent_level, 1.0, 1e-3);
}

TEST(AttractiveInvariant, MembershipUnion) {
  AttractiveInvariant ai;
  ai.certificates = {var(1, 0) * var(1, 0)};
  ai.levels = {1.0};
  ai.consistent_level = 0.25;
  EXPECT_TRUE(ai.contains({0.9}));
  EXPECT_FALSE(ai.contains({1.1}));
  EXPECT_TRUE(ai.contains_consistent({0.4}));
  EXPECT_FALSE(ai.contains_consistent({0.6}));
}

TEST(Inclusion, NestedDisks) {
  const Polynomial b1 = var(2, 0) * var(2, 0) + var(2, 1) * var(2, 1) - 1.0;
  const Polynomial b2 = var(2, 0) * var(2, 0) + var(2, 1) * var(2, 1) - 2.0;
  const InclusionResult r = InclusionChecker().subset(b1, b2);
  EXPECT_TRUE(r.included) << r.message;
}

TEST(Inclusion, NonSubsetRejected) {
  const Polynomial b1 = var(2, 0) * var(2, 0) + var(2, 1) * var(2, 1) - 1.0;
  const Polynomial b2 = var(2, 0) * var(2, 0) + var(2, 1) * var(2, 1) - 0.5;
  InclusionOptions opt;
  opt.solver.max_iterations = 50;
  const InclusionResult r = InclusionChecker(opt).subset(b1, b2);
  EXPECT_FALSE(r.included);
}

TEST(Inclusion, EllipseInDisk) {
  // {4x^2 + y^2 <= 1} has extents (1/2, 1) -> inside the unit disk.
  const Polynomial b1 = 4.0 * var(2, 0) * var(2, 0) + var(2, 1) * var(2, 1) - 1.0;
  const Polynomial b2 = var(2, 0) * var(2, 0) + var(2, 1) * var(2, 1) - 1.0;
  EXPECT_TRUE(InclusionChecker().subset(b1, b2).included);
}

TEST(Inclusion, DomainRestrictionMatters) {
  // On the halfplane x >= 0, {x - 1 <= 0} IS inside {x^2 <= 4} even though
  // globally it is not (x -> -inf).
  const Polynomial b1 = var(1, 0) - 1.0;
  const Polynomial b2 = var(1, 0) * var(1, 0) - 4.0;
  InclusionOptions opt;
  opt.solver.max_iterations = 50;
  EXPECT_FALSE(InclusionChecker(opt).subset(b1, b2).included);
  SemialgebraicSet half(1);
  half.add_constraint(var(1, 0));
  EXPECT_TRUE(InclusionChecker().subset_on(b1, b2, half).included);
}

HybridSystem contraction_1d() {
  HybridSystem sys(1, 0);
  Mode m;
  m.flow = {-1.0 * var(1, 0)};
  m.domain = SemialgebraicSet(1);
  m.domain.add_interval(0, -5.0, 5.0);
  m.contains_equilibrium = true;
  sys.add_mode(std::move(m));
  return sys;
}

// Note on parameter scaling: the Taylor truncation bound requires
// kappa = curvature_fraction * gamma >= (h^2/2) * |b''| * |f|^2 over the
// region, so gamma must scale like h^2 * (set scale). Level-set polynomials
// are kept O(1)-normalized (b = (x/r)^2 - 1).
TEST(Advection, ContractionStepShrinksInterval) {
  // x' = -x, b0 = (x/2)^2 - 1 (|x| <= 2). After one advection step of h the
  // set is ~ {|x| <= 2 e^{-h}}: strictly inside, origin inside.
  const HybridSystem sys = contraction_1d();
  AdvectionOptions opt;
  opt.h = 0.05;
  opt.gamma = 0.02;
  opt.eps = 0.5;
  opt.set_degree = 2;
  const AdvectionEngine engine(sys, opt);
  const Polynomial b0 = 0.25 * var(1, 0) * var(1, 0) - 1.0;
  const AdvectionStepResult step = engine.step(b0);
  ASSERT_TRUE(step.success) << step.message;
  EXPECT_LT(step.next.eval({0.0}), 0.0);
  // The new set is contained in the old one...
  EXPECT_TRUE(InclusionChecker().subset(step.next, b0).included);
  // ...and has pulled in from the boundary (2 e^{-h} ~ 1.902).
  EXPECT_GT(step.next.eval({1.99}), 0.0);
  EXPECT_LT(step.next.eval({1.80}), 0.0);
}

TEST(Advection, IteratedStepsImmerse) {
  const HybridSystem sys = contraction_1d();
  AdvectionOptions opt;
  opt.h = 0.1;
  opt.gamma = 0.05;
  opt.eps = 0.5;
  const AdvectionEngine engine(sys, opt);
  Polynomial b = 0.25 * var(1, 0) * var(1, 0) - 1.0;
  const Polynomial target = var(1, 0) * var(1, 0) - 1.0;
  const InclusionChecker incl;
  bool immersed = false;
  for (int i = 0; i < 20 && !immersed; ++i) {
    const AdvectionStepResult step = engine.step(b);
    ASSERT_TRUE(step.success) << "iter " << i << ": " << step.message;
    b = step.next;
    immersed = incl.subset(b, target).included;
  }
  EXPECT_TRUE(immersed);
}

TEST(Advection, ExpansionTracksForwardImage) {
  // x' = +x: sets grow; the advected set must contain the forward image.
  HybridSystem sys(1, 0);
  Mode m;
  m.flow = {var(1, 0)};
  m.domain = SemialgebraicSet(1);
  m.domain.add_interval(0, -5.0, 5.0);
  sys.add_mode(std::move(m));
  AdvectionOptions opt;
  opt.h = 0.05;
  opt.gamma = 0.02;
  opt.eps = 0.5;
  const AdvectionEngine engine(sys, opt);
  const Polynomial b0 = var(1, 0) * var(1, 0) - 1.0;
  const AdvectionStepResult step = engine.step(b0);
  ASSERT_TRUE(step.success) << step.message;
  // x = 1 flows to e^{h} ~ 1.051; allow Taylor slack.
  EXPECT_LT(step.next.eval({1.02}), 0.0);
}

TEST(Escape, ConstantDriftLeavesInterval) {
  // x' = 1 on T = [1, 2]: E = -x has dE/dt = -1.
  HybridSystem sys(1, 0);
  Mode m;
  m.flow = {Polynomial::constant(1, 1.0)};
  m.domain = SemialgebraicSet(1);
  sys.add_mode(std::move(m));
  SemialgebraicSet t(1);
  t.add_interval(0, 1.0, 2.0);
  EscapeOptions opt;
  opt.certificate_degree = 2;
  const EscapeResult r = EscapeCertifier(opt).certify_set(sys, 0, t);
  ASSERT_TRUE(r.success) << r.message;
  EXPECT_GE(r.rates.front(), opt.rho_min);
  // The returned E must actually decrease along the flow on T.
  const Polynomial edot =
      r.certificates.front().lie_derivative({Polynomial::constant(1, 1.0)});
  EXPECT_LT(edot.eval({1.5}), 0.0);
}

TEST(Escape, NoEscapeFromInvariantRegion) {
  // x' = -x on T = [-1, 1]: 0 is invariant inside T, no escape certificate
  // can exist (Prop. 1 would be violated).
  const HybridSystem sys = contraction_1d();
  SemialgebraicSet t(1);
  t.add_interval(0, -1.0, 1.0);
  EscapeOptions opt;
  opt.certificate_degree = 4;
  opt.solver.max_iterations = 50;
  const EscapeResult r = EscapeCertifier(opt).certify_set(sys, 0, t);
  EXPECT_FALSE(r.success);
}

TEST(Escape, AnnulusWithOutwardDrift) {
  // x' = x on [1 <= x <= 3]: E = -x^2 escapes (trajectories exit at x=3).
  HybridSystem sys(1, 0);
  Mode m;
  m.flow = {var(1, 0)};
  m.domain = SemialgebraicSet(1);
  sys.add_mode(std::move(m));
  SemialgebraicSet t(1);
  t.add_interval(0, 1.0, 3.0);
  const EscapeResult r = EscapeCertifier().certify_set(sys, 0, t);
  EXPECT_TRUE(r.success) << r.message;
}

}  // namespace
}  // namespace soslock::core
