// End-to-end inevitability pipeline tests (Algorithm 1) on the CP PLL
// models, plus a small synthetic system.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"

namespace soslock::core {
namespace {

using poly::Polynomial;

Polynomial ellipsoid(std::size_t nvars, const std::vector<double>& semiaxes) {
  Polynomial b(nvars);
  for (std::size_t i = 0; i < semiaxes.size(); ++i) {
    const Polynomial x = Polynomial::variable(nvars, i);
    b += (1.0 / (semiaxes[i] * semiaxes[i])) * x * x;
  }
  b -= Polynomial::constant(nvars, 1.0);
  b *= 0.5;
  return b;
}

PipelineOptions pll3_options() {
  PipelineOptions opt;
  opt.lyapunov.certificate_degree = 2;
  opt.lyapunov.flow_decrease = FlowDecrease::Strict;
  opt.lyapunov.strict_margin = 1e-4;
  opt.lyapunov.maximize_region = true;
  opt.advection.h = 0.01;
  opt.advection.gamma = 0.008;
  opt.advection.eps = 0.3;
  opt.max_advection_iterations = 12;
  return opt;
}

TEST(Pipeline, AveragedPll3VerifiedByAdvection) {
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_third_order());
  const Polynomial b_init = ellipsoid(m.system.nvars(), {5.0, 4.2, 0.9});
  const PipelineReport report =
      InevitabilityVerifier(pll3_options()).verify(m.system, b_init);
  EXPECT_EQ(report.verdict, Verdict::VerifiedByAdvection) << report.summary();
  EXPECT_GE(report.advection_iterations, 1);
  EXPECT_TRUE(report.lyapunov.audit.ok);
  EXPECT_GT(report.levels.consistent_level, 0.0);
  // Every advection iterate contains the origin.
  for (const Polynomial& b : report.advection_iterates) {
    EXPECT_LT(b.eval(linalg::Vector(m.system.nvars(), 0.0)), 0.0);
  }
}

TEST(Pipeline, AveragedPll3EscapeFallback) {
  // A wider initial set cannot immerse within a small iteration budget; the
  // escape certificate must close the argument (Algorithm 1 lines 13-18).
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_third_order());
  const Polynomial b_init = ellipsoid(m.system.nvars(), {6.5, 5.5, 0.95});
  PipelineOptions opt = pll3_options();
  opt.max_advection_iterations = 3;
  opt.escape.certificate_degree = 2;  // E = V-like certificates suffice here
  const PipelineReport report = InevitabilityVerifier(opt).verify(m.system, b_init);
  EXPECT_EQ(report.verdict, Verdict::VerifiedWithEscape) << report.summary();
  EXPECT_GE(report.escape.num_certificates, 1);
}

TEST(Pipeline, AveragedPll4VerifiedWithEscape) {
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_fourth_order());
  const Polynomial b_init = ellipsoid(m.system.nvars(), {6.0, 6.0, 6.0, 0.9});
  PipelineOptions opt;
  opt.lyapunov.certificate_degree = 2;
  opt.lyapunov.flow_decrease = FlowDecrease::Strict;
  opt.lyapunov.strict_margin = 1e-5;
  opt.lyapunov.maximize_region = true;
  opt.advection.h = 0.004;
  opt.advection.gamma = 0.01;
  opt.advection.eps = 0.3;
  opt.max_advection_iterations = 2;  // keep the test fast; the bench runs 7
  const PipelineReport report = InevitabilityVerifier(opt).verify(m.system, b_init);
  EXPECT_EQ(report.verdict, Verdict::VerifiedWithEscape) << report.summary();
}

TEST(Pipeline, FailsOnUnstableSystem) {
  hybrid::HybridSystem sys(1, 0);
  hybrid::Mode mode;
  mode.flow = {Polynomial::variable(1, 0)};
  mode.domain = hybrid::SemialgebraicSet(1);
  mode.domain.add_interval(0, -1.0, 1.0);
  mode.contains_equilibrium = true;
  sys.add_mode(std::move(mode));
  PipelineOptions opt;
  opt.lyapunov.certificate_degree = 2;
  opt.lyapunov.flow_decrease = FlowDecrease::Strict;
  opt.lyapunov.solver.max_iterations = 50;
  const Polynomial b_init = ellipsoid(1, {0.5});
  const PipelineReport report = InevitabilityVerifier(opt).verify(sys, b_init);
  EXPECT_EQ(report.verdict, Verdict::Failed);
}

TEST(Pipeline, TimingRowsMatchTable2Structure) {
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_third_order());
  const Polynomial b_init = ellipsoid(m.system.nvars(), {5.0, 4.2, 0.9});
  const PipelineReport report =
      InevitabilityVerifier(pll3_options()).verify(m.system, b_init);
  ASSERT_EQ(report.verdict, Verdict::VerifiedByAdvection);
  // The paper's Table 2 rows must all be present.
  const auto& entries = report.timings.entries();
  ASSERT_GE(entries.size(), 4u);
  EXPECT_EQ(entries[0].name, "Attractive Invariant");
  EXPECT_EQ(entries[1].name, "Max.Level Curves");
  EXPECT_EQ(entries[2].name, "Advection");
  EXPECT_EQ(entries[3].name, "Checking Set Inclusion");
  for (const auto& entry : entries) EXPECT_GE(entry.seconds, 0.0);
}

TEST(Pipeline, SummaryMentionsVerdict) {
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_third_order());
  const Polynomial b_init = ellipsoid(m.system.nvars(), {1.0, 1.0, 0.2});
  const PipelineReport report =
      InevitabilityVerifier(pll3_options()).verify(m.system, b_init);
  EXPECT_NE(report.summary().find("verdict:"), std::string::npos);
}

}  // namespace
}  // namespace soslock::core
