// Tests for the shared fork-join worker pool (util/thread_pool.hpp): the
// substrate under sos::BatchSolver and the SDP backends' intra-solve
// parallelism.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace soslock::util {
namespace {

TEST(ThreadPool, ResolvesZeroToHardware) {
  const ThreadPool pool(0);
  EXPECT_GE(pool.threads(), 1u);
  EXPECT_EQ(pool.threads(), ThreadPool::hardware_threads());
}

TEST(ThreadPool, EnvVariableOverridesHardwareCount) {
  // SOSLOCK_THREADS pins the fan-out (the TSan CI job uses 4 so the
  // parallel paths run regardless of runner core count); garbage or
  // non-positive values fall back to the hardware count.
  ASSERT_EQ(setenv("SOSLOCK_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::hardware_threads(), 3u);
  EXPECT_EQ(ThreadPool(0).threads(), 3u);
  ASSERT_EQ(setenv("SOSLOCK_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
  ASSERT_EQ(setenv("SOSLOCK_THREADS", "nope", 1), 0);
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
  ASSERT_EQ(unsetenv("SOSLOCK_THREADS"), 0);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 7u}) {
    const ThreadPool pool(threads);
    constexpr std::size_t kCount = 257;
    std::vector<std::atomic<int>> hits(kCount);
    pool.run_all(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ZeroCountIsNoop) {
  const ThreadPool pool(4);
  bool ran = false;
  pool.run_all(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, InlineModeRunsOnCallingThreadInOrder) {
  // A 1-thread pool (and a 1-item call on any pool) must run inline:
  // sequential order, same thread as the caller.
  const ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.run_all(5, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: inline implies no concurrency
  });
  const std::vector<std::size_t> expected{0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);

  const ThreadPool wide(8);
  wide.run_all(1, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ThreadPool, WorkerIdsAddressDisjointScratch) {
  const ThreadPool pool(4);
  constexpr std::size_t kCount = 64;
  // Per-worker scratch accumulators, the pattern the IPM Schur panels use.
  std::vector<std::size_t> scratch(pool.threads(), 0);
  std::mutex seen_mutex;
  std::set<std::size_t> seen_workers;
  pool.run_all_indexed(kCount, [&](std::size_t worker, std::size_t) {
    ASSERT_LT(worker, pool.threads());
    ++scratch[worker];  // raced only if two tasks shared a worker id at once
    {
      const std::lock_guard<std::mutex> lock(seen_mutex);
      seen_workers.insert(worker);
    }
  });
  EXPECT_EQ(std::accumulate(scratch.begin(), scratch.end(), std::size_t{0}), kCount);
  EXPECT_GE(seen_workers.size(), 1u);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock) {
  // Fork-join per call: an inner run_all inside a task owns its own threads,
  // so nesting must complete (a shared-queue pool could deadlock here).
  const ThreadPool outer(3);
  const ThreadPool inner(2);
  std::atomic<int> total{0};
  outer.run_all(6, [&](std::size_t) {
    inner.run_all(5, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 30);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  for (std::size_t threads : {1u, 4u}) {
    const ThreadPool pool(threads);
    std::atomic<int> completed{0};
    try {
      pool.run_all(16, [&](std::size_t i) {
        if (i == 7) throw std::runtime_error("task 7 failed");
        completed.fetch_add(1);
      });
      FAIL() << "expected exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 7 failed");
    }
    // Every non-throwing task that started still completed (join semantics).
    EXPECT_LE(completed.load(), 15);
  }
}

TEST(ThreadPool, UntilFailureReturnsLowestFailedIndex) {
  const ThreadPool pool(4);
  const std::size_t failed =
      pool.run_all_until_failure(100, [&](std::size_t i) { return i != 42 && i != 90; });
  EXPECT_EQ(failed, 42u);
  const std::size_t ok = pool.run_all_until_failure(10, [](std::size_t) { return true; });
  EXPECT_EQ(ok, 10u);
}

TEST(ResidentPool, ResolvesZeroToHardwareAndSpawnsEagerly) {
  const ResidentPool pool(0);
  EXPECT_EQ(pool.count(), ThreadPool::hardware_threads());
  // No start() ever issued: the destructor must still shut the resident
  // threads down cleanly.
}

TEST(ResidentPool, RedispatchesResidentThreadsAcrossRounds) {
  ResidentPool pool(4);
  ASSERT_EQ(pool.count(), 4u);
  std::mutex mu;
  std::set<std::thread::id> thread_ids;
  std::vector<int> per_worker_runs(4, 0);
  for (int round = 0; round < 5; ++round) {
    pool.start([&](std::size_t id) {
      std::lock_guard<std::mutex> lock(mu);
      thread_ids.insert(std::this_thread::get_id());
      ASSERT_LT(id, 4u);
      per_worker_runs[id] += 1;
    });
    pool.join();
  }
  // Persistent residency: every round ran on the same 4 threads (the whole
  // point versus the fork-join pool), and every worker id ran every round.
  EXPECT_EQ(thread_ids.size(), 4u);
  for (const int runs : per_worker_runs) EXPECT_EQ(runs, 5);
}

TEST(ResidentPool, JoinRethrowsWorkerExceptionAndPoolStaysUsable) {
  ResidentPool pool(3);
  pool.start([](std::size_t id) {
    if (id == 1) throw std::runtime_error("worker 1 failed");
  });
  try {
    pool.join();
    FAIL() << "expected the worker exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 1 failed");
  }
  // The round is over; the pool must accept the next dispatch.
  std::atomic<int> ran{0};
  pool.start([&](std::size_t) { ran.fetch_add(1); });
  pool.join();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ResidentPool, WorkersCoordinateThroughSharedState) {
  // The async-ADMM usage shape in miniature: long-lived bodies that block on
  // a condition until a "consensus" update arrives, then finish on their own
  // (no per-iteration barrier inside the body).
  ResidentPool pool(4);
  std::mutex mu;
  std::condition_variable cv;
  int version = 0;
  std::atomic<int> observed{0};
  pool.start([&](std::size_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return version >= 1; });
    observed.fetch_add(1);
  });
  {
    std::lock_guard<std::mutex> lock(mu);
    version = 1;
  }
  cv.notify_all();
  pool.join();
  EXPECT_EQ(observed.load(), 4);
}

}  // namespace
}  // namespace soslock::util
