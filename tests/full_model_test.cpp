// Focused tests of the event-driven CP PLL model: PFD state machine
// behaviour, lock detection, parameter sweeps, and agreement with the
// averaged abstraction.
#include <gtest/gtest.h>

#include <cmath>

#include "hybrid/simulator.hpp"
#include "pll/full_model.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"

namespace soslock::pll {
namespace {

TEST(FullModel, AlreadyLockedStaysLocked) {
  const FullPllModel model(Params::paper_third_order());
  FullSimOptions opt;
  opt.tau_max = 50.0;
  const FullSimResult run = model.simulate({0.0, 0.0}, 0.0, opt);
  EXPECT_TRUE(run.locked);
  EXPECT_LT(run.lock_time, 1.0);
  for (const FullTracePoint& pt : run.trace) {
    EXPECT_LT(std::fabs(pt.e), 0.05);
  }
}

TEST(FullModel, PositiveErrorPumpsUpFirst) {
  const FullPllModel model(Params::paper_third_order());
  FullSimOptions opt;
  opt.tau_max = 1.5;
  opt.record_stride = 1;
  const FullSimResult run = model.simulate({0.0, 0.0}, 0.5, opt);
  // The first non-idle PFD state encountered must be Up (reference leads).
  PfdState first_active = PfdState::Idle;
  for (const FullTracePoint& pt : run.trace) {
    if (pt.pfd != PfdState::Idle) {
      first_active = pt.pfd;
      break;
    }
  }
  EXPECT_EQ(first_active, PfdState::Up);
}

TEST(FullModel, NegativeErrorPumpsDownFirst) {
  const FullPllModel model(Params::paper_third_order());
  FullSimOptions opt;
  opt.tau_max = 1.5;
  opt.record_stride = 1;
  const FullSimResult run = model.simulate({0.0, 0.0}, -0.5, opt);
  PfdState first_active = PfdState::Idle;
  for (const FullTracePoint& pt : run.trace) {
    if (pt.pfd != PfdState::Idle) {
      first_active = pt.pfd;
      break;
    }
  }
  EXPECT_EQ(first_active, PfdState::Down);
}

TEST(FullModel, SymmetryUnderSignFlip) {
  // (v, e) -> (-v, -e) is a symmetry of the loop; lock times must agree.
  const FullPllModel model(Params::paper_third_order());
  FullSimOptions opt;
  opt.tau_max = 600.0;
  const FullSimResult pos = model.simulate({1.0, 0.5}, 0.3, opt);
  const FullSimResult neg = model.simulate({-1.0, -0.5}, -0.3, opt);
  ASSERT_TRUE(pos.locked);
  ASSERT_TRUE(neg.locked);
  EXPECT_NEAR(pos.lock_time, neg.lock_time, 0.2 * pos.lock_time + 2.0);
}

class LockFromOffsets : public ::testing::TestWithParam<double> {};

TEST_P(LockFromOffsets, ThirdOrderLocks) {
  const FullPllModel model(Params::paper_third_order());
  FullSimOptions opt;
  opt.tau_max = 800.0;
  const FullSimResult run = model.simulate({0.5, -0.5}, GetParam(), opt);
  EXPECT_TRUE(run.locked) << "e0 = " << GetParam();
  EXPECT_EQ(run.cycle_slips, 0);
}

INSTANTIATE_TEST_SUITE_P(PhaseOffsets, LockFromOffsets,
                         ::testing::Values(-0.8, -0.4, -0.1, 0.1, 0.4, 0.8));

TEST(FullModel, LargerGainLocksFasterWithinLimit) {
  // Within the Gardner limit, more loop gain -> faster acquisition.
  const FullPllModel slow(Params::paper_third_order(), 0.01);
  const FullPllModel fast(Params::paper_third_order(), 0.03);
  FullSimOptions opt;
  opt.tau_max = 1500.0;
  const FullSimResult s = slow.simulate({1.0, 1.0}, 0.4, opt);
  const FullSimResult f = fast.simulate({1.0, 1.0}, 0.4, opt);
  ASSERT_TRUE(s.locked);
  ASSERT_TRUE(f.locked);
  EXPECT_LT(f.lock_time, s.lock_time);
}

TEST(FullModel, TraceIsTimeMonotone) {
  const FullPllModel model(Params::paper_third_order());
  FullSimOptions opt;
  opt.tau_max = 20.0;
  const FullSimResult run = model.simulate({1.0, -1.0}, 0.2, opt);
  for (std::size_t i = 1; i < run.trace.size(); ++i) {
    EXPECT_GE(run.trace[i].tau, run.trace[i - 1].tau);
  }
}

TEST(FullModel, AgreesWithAveragedEnvelope) {
  // The event-driven control voltage must track the averaged model's within
  // the pump ripple amplitude during a moderate transient.
  const Params params = Params::paper_third_order();
  const FullPllModel full(params);
  const ReducedModel avg = make_averaged(params);
  const hybrid::Simulator sim(avg.system);

  FullSimOptions fopt;
  fopt.tau_max = 40.0;
  fopt.record_stride = 1;
  const FullSimResult frun = full.simulate({0.5, 0.5}, 0.2, fopt);

  hybrid::SimOptions sopt;
  sopt.dt = 1e-3;
  sopt.t_max = 40.0;
  const hybrid::SimResult srun = sim.run(0, {0.5, 0.5, 0.2}, sopt);

  // Compare v2 at a few matched times.
  const double ripple = full.constants().rho / (params.f_ref * full.constants().t_scale);
  for (double t : {5.0, 15.0, 30.0}) {
    auto at = [t](const auto& trace, auto time_of) {
      std::size_t best = 0;
      double bd = 1e18;
      for (std::size_t i = 0; i < trace.size(); ++i) {
        const double d = std::fabs(time_of(trace[i]) - t);
        if (d < bd) {
          bd = d;
          best = i;
        }
      }
      return best;
    };
    const std::size_t fi =
        at(frun.trace, [](const FullTracePoint& p) { return p.tau; });
    const std::size_t si =
        at(srun.trace, [](const hybrid::TracePoint& p) { return p.t; });
    EXPECT_NEAR(frun.trace[fi].v[1], srun.trace[si].x[1], ripple + 0.35)
        << "at t = " << t;
  }
}

TEST(FullModel, FourthOrderConstantsPropagate) {
  const FullPllModel model(Params::paper_fourth_order());
  EXPECT_EQ(model.num_voltages(), 3u);
  EXPECT_GT(model.constants().beta, 0.0);
  EXPECT_GT(model.constants().gamma, 0.0);
}

TEST(VertexModel, StructureAndNominalEquivalence) {
  const ReducedModel v = make_averaged_vertices(Params::paper_third_order());
  ASSERT_EQ(v.system.modes().size(), 2u);
  // At the interval midpoint the two vertex flows bracket the nominal one.
  const ReducedModel nom = [] {
    ModelOptions o;
    o.uncertain_pump = false;
    return make_averaged(Params::paper_third_order(), o);
  }();
  const linalg::Vector x = {0.3, -0.2, 0.4};
  const linalg::Vector lo = v.system.eval_flow(0, x, {});
  const linalg::Vector hi = v.system.eval_flow(1, x, {});
  const linalg::Vector mid = nom.system.eval_flow(0, x, {});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(std::min(lo[i], hi[i]), mid[i] + 1e-12);
    EXPECT_GE(std::max(lo[i], hi[i]), mid[i] - 1e-12);
  }
}

}  // namespace
}  // namespace soslock::pll
