// Tests for the incremental-solve path: structure fingerprints, the
// WarmStart capability of both backends, state preservation on interrupted
// solves, the pattern cache, warm-start threading through the core retry
// loops, and the maximize_region ADMM stall regression (classification by
// the first-order backend, recovery through the "auto" policy backend).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/advection.hpp"
#include "core/barrier.hpp"
#include "core/escape.hpp"
#include "core/level_set.hpp"
#include "core/lyapunov.hpp"
#include "core/rate.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"
#include "sdp/admm.hpp"
#include "sdp/ipm.hpp"
#include "sdp/solver.hpp"
#include "sdp/structure.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"
#include "util/rng.hpp"

namespace soslock {
namespace {

using linalg::Matrix;
using sdp::Problem;
using sdp::Row;
using sdp::Solution;
using sdp::SolveStatus;
using sdp::SparseSym;

/// Random feasible min-trace SDP: b = A(X*) for a random PSD X*.
Problem random_feasible_sdp(std::uint64_t seed, std::size_t n = 6, std::size_t m = 8) {
  util::Rng rng(seed);
  Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1.0, 1.0);
  const Matrix xstar = linalg::transposed_times(g, g);

  Problem p;
  const std::size_t b = p.add_block(n);
  p.set_block_objective(b, Matrix::identity(n));
  for (std::size_t i = 0; i < m; ++i) {
    Row row;
    SparseSym a;
    for (int k = 0; k < 4; ++k) {
      const std::size_t r = rng.index(n);
      const std::size_t c = rng.index(n);
      a.add(std::min(r, c), std::max(r, c), rng.uniform(-1.0, 1.0));
    }
    if (a.empty()) a.add(0, 0, 1.0);
    Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[b] = a;
    p.add_row(std::move(row));
  }
  return p;
}

TEST(StructureFingerprint, ValueChangesPreserveItStructureChangesDoNot) {
  const Problem p = random_feasible_sdp(3);
  Problem same_structure = p;
  for (Row& row : same_structure.mutable_rows()) {
    row.rhs *= 2.0;
    for (auto& [j, a] : row.blocks)
      for (auto& t : a.entries) t.v *= 0.5;
  }
  EXPECT_EQ(sdp::structure_fingerprint(p), sdp::structure_fingerprint(same_structure));

  Problem extra_row = p;
  {
    Row row;
    SparseSym a;
    a.add(0, 0, 1.0);
    row.blocks[0] = a;
    extra_row.add_row(std::move(row));
  }
  EXPECT_NE(sdp::structure_fingerprint(p), sdp::structure_fingerprint(extra_row));

  Problem moved_entry = p;
  moved_entry.mutable_rows()[0].blocks.begin()->second.entries[0].c += 1;
  EXPECT_NE(sdp::structure_fingerprint(p), sdp::structure_fingerprint(moved_entry));
}

TEST(StructureCache, RepeatedStructurallyEqualProblemsHit) {
  sdp::StructureCache cache(4);
  const Problem p = random_feasible_sdp(4);
  const auto first = cache.get(p);
  EXPECT_EQ(cache.hits(), 0u);
  const auto second = cache.get(p);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(first->rows_touching_block.size(), p.num_blocks());
}

TEST(StructureCache, ConcurrentMixedShapeStress) {
  // ThreadSanitizer-style stress of the process-wide pattern cache as
  // sos::BatchSolver workers drive it: many threads, more distinct shapes
  // than slots (every insert evicts), every get() validated against a
  // from-scratch rebuild. Run under -fsanitize=thread this doubles as a
  // data-race detector; without it, it still catches iterator invalidation
  // (crash), duplicate-slot eviction bugs (wrong pattern served), and lost
  // or bogus structures.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kShapes = 6;
  constexpr int kIters = 200;
  sdp::StructureCache cache(2);  // much smaller than the working set

  std::vector<Problem> problems;
  std::vector<sdp::ProblemStructure> expected;
  for (std::size_t s = 0; s < kShapes; ++s) {
    // Distinct structures: vary block size and row count.
    problems.push_back(random_feasible_sdp(100 + s, 4 + s, 6 + s));
    expected.push_back(sdp::build_structure(problems.back()));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t s = (t * 31 + static_cast<std::size_t>(i) * 7) % kShapes;
        const auto structure = cache.get(problems[s]);
        if (structure->fingerprint != expected[s].fingerprint ||
            structure->num_rows != expected[s].num_rows ||
            structure->rows_touching_block != expected[s].rows_touching_block) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Shared shapes were revisited constantly: the cache must have served hits.
  EXPECT_GT(cache.hits(), 0u);
}

TEST(StructureCache, IncompatibleShapeIsNeverServedForAFingerprint) {
  // compatible_with is the collision guard: equal fingerprints with a
  // different shape must not be accepted (a served collision would hand the
  // backends out-of-range row indices).
  const Problem a = random_feasible_sdp(11, 5, 7);
  const Problem b = random_feasible_sdp(12, 6, 9);
  const sdp::ProblemStructure sa = sdp::build_structure(a);
  EXPECT_TRUE(sa.compatible_with(a));
  EXPECT_FALSE(sa.compatible_with(b));
}

TEST(StructureCache, CapacityBoundEvictsLruAndCountsTelemetry) {
  // The LRU cap + counters the sweep service surfaces per request: misses
  // count fresh builds, evictions count entries dropped by the bound, and
  // hit-promotion keeps a hot shape alive through eviction rounds.
  sdp::StructureCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  const Problem s0 = random_feasible_sdp(20, 4, 6);
  const Problem s1 = random_feasible_sdp(21, 5, 7);
  const Problem s2 = random_feasible_sdp(22, 6, 8);

  cache.get(s0);
  cache.get(s1);
  sdp::StructureCacheTelemetry t = cache.telemetry();
  EXPECT_EQ(t.misses, 2u);
  EXPECT_EQ(t.evictions, 0u);
  EXPECT_EQ(t.entries, 2u);

  cache.get(s2);  // over capacity: evicts s0, the least recently used
  t = cache.telemetry();
  EXPECT_EQ(t.misses, 3u);
  EXPECT_EQ(t.evictions, 1u);
  EXPECT_EQ(t.entries, 2u);

  cache.get(s1);  // still cached: a hit, promoted to most recently used
  t = cache.telemetry();
  EXPECT_EQ(t.hits, 1u);
  EXPECT_EQ(cache.hits(), t.hits);

  cache.get(s0);  // was evicted: a fresh miss, evicting s2 (s1 is protected)
  cache.get(s1);  // the promotion survived both eviction rounds
  t = cache.telemetry();
  EXPECT_EQ(t.hits, 2u);
  EXPECT_EQ(t.misses, 4u);
  EXPECT_EQ(t.evictions, 2u);

  // Shrinking the cap evicts immediately (and is itself counted).
  cache.set_capacity(1);
  t = cache.telemetry();
  EXPECT_EQ(t.capacity, 1u);
  EXPECT_EQ(t.entries, 1u);
  EXPECT_EQ(t.evictions, 3u);
}

TEST(WarmStart, FitsChecksShapes) {
  const Problem p = random_feasible_sdp(5);
  const Solution sol = sdp::IpmSolver().solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  const sdp::WarmStart ws = sdp::make_warm_start(sol, 123);
  EXPECT_EQ(ws.fingerprint, 123u);
  EXPECT_FALSE(ws.empty());
  EXPECT_TRUE(ws.fits(p));
  const Problem other = random_feasible_sdp(6, 5, 8);  // different block size
  EXPECT_FALSE(ws.fits(other));
}

TEST(WarmStart, IpmShiftedRestoreConvergesFaster) {
  const Problem p = random_feasible_sdp(7);
  const Solution cold = sdp::IpmSolver().solve(p);
  ASSERT_EQ(cold.status, SolveStatus::Optimal);

  const sdp::WarmStart ws = sdp::make_warm_start(cold, 0);
  sdp::SolveContext context;
  context.warm_start = &ws;
  const Solution warm = sdp::IpmSolver().solve(p, context);
  ASSERT_EQ(warm.status, SolveStatus::Optimal);
  EXPECT_LT(warm.iterations, cold.iterations);
  EXPECT_NEAR(warm.primal_objective, cold.primal_objective,
              1e-4 * (1.0 + std::fabs(cold.primal_objective)));
}

TEST(WarmStart, AdmmRawRestoreConvergesFaster) {
  const Problem p = random_feasible_sdp(9);
  const Solution cold = sdp::AdmmSolver().solve(p);
  ASSERT_EQ(cold.status, SolveStatus::Optimal);

  const sdp::WarmStart ws = sdp::make_warm_start(cold, 0);
  sdp::SolveContext context;
  context.warm_start = &ws;
  const Solution warm = sdp::AdmmSolver().solve(p, context);
  ASSERT_EQ(warm.status, SolveStatus::Optimal);
  EXPECT_LE(warm.iterations, cold.iterations / 2);
  EXPECT_NEAR(warm.primal_objective, cold.primal_objective,
              1e-4 * (1.0 + std::fabs(cold.primal_objective)));
}

TEST(WarmStart, BothBackendsAdvertiseTheCapability) {
  EXPECT_TRUE(sdp::IpmSolver().capabilities().warm_startable);
  EXPECT_TRUE(sdp::AdmmSolver().capabilities().warm_startable);
}

sos::SosProgram small_sos_program() {
  using poly::Polynomial;
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  const Polynomial p =
      2.0 * x.pow(4) + 2.0 * x.pow(3) * y - x * x * y * y + 5.0 * y.pow(4);
  sos::SosProgram prog(2);
  prog.set_trace_regularization(1e-8);
  prog.add_sos_constraint(p, "p");
  return prog;
}

TEST(WarmStart, SolveResultCarriesReplayableBlob) {
  const sos::SosProgram prog = small_sos_program();
  sdp::SolverConfig config;
  config.backend = "ipm";
  const sos::SolveResult cold = prog.solve(config);
  ASSERT_TRUE(cold.feasible);
  ASSERT_FALSE(cold.warm.empty());
  ASSERT_NE(cold.warm.fingerprint, 0u);

  const sos::SolveResult warm = prog.solve(config, &cold.warm);
  EXPECT_TRUE(warm.feasible);
  EXPECT_LT(warm.sdp.iterations, cold.sdp.iterations);
  EXPECT_TRUE(sos::audit(prog, warm).ok);
}

TEST(WarmStart, MismatchedBlobSolvesColdAndSucceeds) {
  const sos::SosProgram prog = small_sos_program();
  sdp::SolverConfig config;
  config.backend = "ipm";
  sos::SolveResult cold = prog.solve(config);
  ASSERT_TRUE(cold.feasible);
  cold.warm.fingerprint ^= 0xdeadbeef;  // no longer matches the program
  const sos::SolveResult again = prog.solve(config, &cold.warm);
  EXPECT_TRUE(again.feasible);
  EXPECT_EQ(again.sdp.iterations, cold.sdp.iterations);  // identical cold solve
}

TEST(WarmStart, InterruptedSolveStillExportsState) {
  const sos::SosProgram prog = small_sos_program();
  sdp::SolverConfig config;
  config.backend = "ipm";
  config.time_budget_seconds = 1e-9;  // expires before the first iteration
  const sos::SolveResult interrupted = prog.solve(config);
  ASSERT_EQ(interrupted.status, SolveStatus::Interrupted);
  // The aborted solve's best iterate is preserved for the next attempt
  // instead of being dropped on the floor.
  EXPECT_FALSE(interrupted.warm.empty());
  EXPECT_NE(interrupted.warm.fingerprint, 0u);
  ASSERT_FALSE(interrupted.warm.x.empty());
  EXPECT_GT(interrupted.warm.x[0].rows(), 0u);

  // And replaying it must be accepted (fingerprint matches the program).
  sdp::SolverConfig retry;
  retry.backend = "ipm";
  const sos::SolveResult resumed = prog.solve(retry, &interrupted.warm);
  EXPECT_TRUE(resumed.feasible);
}

// --- core-loop integration -------------------------------------------------

poly::Polynomial ellipsoid(std::size_t nvars, const std::vector<double>& semiaxes) {
  poly::Polynomial b(nvars);
  for (std::size_t i = 0; i < semiaxes.size(); ++i) {
    const poly::Polynomial x = poly::Polynomial::variable(nvars, i);
    b += (1.0 / (semiaxes[i] * semiaxes[i])) * x * x;
  }
  b -= poly::Polynomial::constant(nvars, 1.0);
  b *= 0.5;
  return b;
}

core::LyapunovOptions third_order_lyapunov_options() {
  core::LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.flow_decrease = core::FlowDecrease::Strict;
  opt.strict_margin = 1e-4;
  opt.maximize_region = true;
  return opt;
}

/// Drive the advection ladder for a few steps; returns aggregated stats and
/// the final iterate.
std::pair<sos::SolveStats, poly::Polynomial> run_advection(
    const hybrid::HybridSystem& system, bool warm, int steps) {
  core::AdvectionOptions opt;
  opt.h = 0.01;
  opt.gamma = 0.008;
  opt.eps = 0.3;
  opt.solver.warm_start = warm;
  const core::AdvectionEngine engine(system, opt);
  poly::Polynomial b = ellipsoid(system.nvars(), {5.0, 4.2, 0.9});
  sos::SolveStats stats;
  for (int it = 0; it < steps; ++it) {
    const core::AdvectionStepResult step = engine.step(b);
    stats.merge(step.solver);
    if (!step.success) break;
    EXPECT_TRUE(step.audit.ok) << "warm=" << warm << " step " << it;
    b = step.next;
  }
  return {stats, b};
}

TEST(WarmStartLoops, AdvectionRetryLadderSameCertificatesFewerIterations) {
  const pll::ReducedModel model = pll::make_averaged(pll::Params::paper_third_order());
  const auto [cold_stats, cold_b] = run_advection(model.system, false, 4);
  const auto [warm_stats, warm_b] = run_advection(model.system, true, 4);

  // Same audited certificate chain: every step of both runs passed its audit
  // (asserted inside run_advection), and the final normalized iterates agree
  // to solver-tolerance-times-chain-amplification. Exact coefficient equality
  // is not expected — the advection optimum is not unique at tolerance, and
  // four steps compound the solver's 1e-7 into ~1e-3 wiggle.
  for (const auto& [m, c] : cold_b.terms()) {
    EXPECT_NEAR(c, warm_b.coefficient(m), 0.05 * (1.0 + std::fabs(c))) << m.str();
  }
  // Strictly fewer total iterations with warm starts on.
  EXPECT_LT(warm_stats.iterations, cold_stats.iterations);
}

TEST(WarmStartLoops, LevelCurvesWarmSeedMatchesColdLevels) {
  const pll::ReducedModel model =
      pll::make_averaged_vertices(pll::Params::paper_third_order());
  const core::LyapunovResult lyap =
      core::LyapunovSynthesizer(third_order_lyapunov_options()).synthesize(model.system);
  ASSERT_TRUE(lyap.success);

  core::LevelSetOptions cold_opt;
  cold_opt.solver.warm_start = false;
  core::LevelSetOptions warm_opt;
  warm_opt.solver.warm_start = true;
  const core::LevelSetResult cold =
      core::LevelSetMaximizer(cold_opt).maximize(model.system, lyap.certificates);
  const core::LevelSetResult warm =
      core::LevelSetMaximizer(warm_opt).maximize(model.system, lyap.certificates);
  ASSERT_TRUE(cold.success);
  ASSERT_TRUE(warm.success);
  ASSERT_EQ(cold.levels.size(), warm.levels.size());
  for (std::size_t q = 0; q < cold.levels.size(); ++q) {
    EXPECT_NEAR(cold.levels[q], warm.levels[q], 1e-4 * (1.0 + std::fabs(cold.levels[q])));
  }
  EXPECT_LT(warm.solver.iterations, cold.solver.iterations);
}

// --- warm-start coverage: escape / rate / barrier ---------------------------

TEST(WarmStartLoops, EscapePerModeSeedingSucceedsWithFewerOrEqualIterations) {
  // The per-mode escape programs share one compiled shape on the pump-vertex
  // model: with warm starts on, mode 0 seeds mode 1.
  const pll::ReducedModel model =
      pll::make_averaged_vertices(pll::Params::paper_third_order());
  const core::LyapunovResult lyap =
      core::LyapunovSynthesizer(third_order_lyapunov_options()).synthesize(model.system);
  ASSERT_TRUE(lyap.success);

  const poly::Polynomial region = ellipsoid(model.system.nvars(), {6.0, 6.0, 1.0});
  auto run = [&](bool warm) {
    core::EscapeOptions opt;
    opt.certificate_degree = 2;
    opt.solver.warm_start = warm;
    const core::EscapeCertifier certifier(opt);
    return certifier.certify(model.system, {0, 1}, region, lyap.certificates, 0.05);
  };
  const core::EscapeResult cold = run(false);
  const core::EscapeResult warm = run(true);
  ASSERT_EQ(cold.success, warm.success);
  if (cold.success) {
    ASSERT_EQ(cold.rates.size(), warm.rates.size());
    for (std::size_t i = 0; i < cold.rates.size(); ++i)
      EXPECT_NEAR(cold.rates[i], warm.rates[i], 1e-3 * (1.0 + std::fabs(cold.rates[i])));
  }
  EXPECT_LE(warm.solver.iterations, cold.solver.iterations);
}

TEST(WarmStartLoops, RateRepeatedCertifyReusesIterates) {
  // Certifying rates for several modes of one system re-solves one compiled
  // shape per program family (rate / lower envelope / upper envelope); the
  // second certify() call must replay the first call's iterates.
  const pll::ReducedModel model =
      pll::make_averaged_vertices(pll::Params::paper_third_order());
  const core::LyapunovResult lyap =
      core::LyapunovSynthesizer(third_order_lyapunov_options()).synthesize(model.system);
  ASSERT_TRUE(lyap.success);

  core::RateOptions warm_opt;
  warm_opt.solver.warm_start = true;
  const core::RateCertifier warm_certifier(warm_opt);
  const core::RateResult first = warm_certifier.certify(model.system, 0, lyap.certificates[0]);
  const core::RateResult second = warm_certifier.certify(model.system, 1, lyap.certificates[1]);

  core::RateOptions cold_opt;
  cold_opt.solver.warm_start = false;
  const core::RateCertifier cold_certifier(cold_opt);
  const core::RateResult cold0 = cold_certifier.certify(model.system, 0, lyap.certificates[0]);
  const core::RateResult cold1 = cold_certifier.certify(model.system, 1, lyap.certificates[1]);

  EXPECT_EQ(first.success, cold0.success);
  EXPECT_EQ(second.success, cold1.success);
  if (second.success && cold1.success) {
    EXPECT_NEAR(second.alpha, cold1.alpha, 1e-2 * (1.0 + std::fabs(cold1.alpha)));
  }
  // The warmed second call must not exceed the cold one's iteration bill.
  EXPECT_LE(second.solver.iterations, cold1.solver.iterations);
}

TEST(WarmStartLoops, BarrierRepeatedCertifyReusesIterates) {
  // A margin sweep re-certifies one compiled barrier shape; the second
  // certify() call warm-starts from the first.
  const pll::ReducedModel model = pll::make_averaged(pll::Params::paper_third_order());
  hybrid::SemialgebraicSet initial(model.system.nvars());
  initial.add_interval(0, -1.0, 1.0);
  initial.add_interval(1, -1.0, 1.0);
  initial.add_interval(2, -0.5, 0.5);
  hybrid::SemialgebraicSet unsafe(model.system.nvars());
  unsafe.add_interval(2, 0.9, 1.5);

  core::BarrierOptions warm_opt;
  warm_opt.certificate_degree = 2;
  warm_opt.solver.warm_start = true;
  const core::BarrierCertifier warm_certifier(warm_opt);
  const core::BarrierResult first = warm_certifier.certify(model.system, initial, unsafe);
  const core::BarrierResult second = warm_certifier.certify(model.system, initial, unsafe);

  core::BarrierOptions cold_opt = warm_opt;
  cold_opt.solver.warm_start = false;
  const core::BarrierCertifier cold_certifier(cold_opt);
  const core::BarrierResult cold = cold_certifier.certify(model.system, initial, unsafe);

  EXPECT_EQ(first.success, cold.success);
  EXPECT_EQ(second.success, cold.success);
  if (cold.success) {
    // The replayed solve converges strictly faster than the cold one.
    EXPECT_LT(second.solver.iterations, cold.solver.iterations);
  }
}

// --- maximize_region ADMM stall regression ---------------------------------

TEST(AdmmStallRegression, MaximizeRegionClassifiesInsteadOfStalling) {
  // PR 1 shipped this exact configuration as a known stall: the ADMM crawled
  // through its full 20k-iteration budget on the degenerate maximize_region
  // objective. The fix classifies the degenerate-drift lock early and
  // returns the best iterate with honest residuals (the program is solvable
  // — the IPM proves it — but not by this splitting from a cold start).
  const pll::ReducedModel model = pll::make_averaged(pll::Params::paper_third_order());
  core::LyapunovOptions opt = third_order_lyapunov_options();
  opt.solver.backend = "admm";
  const core::LyapunovResult result = core::LyapunovSynthesizer(opt).synthesize(model.system);

  // No stall: the classification fires long before the iteration budget.
  EXPECT_LT(result.solver.iterations, sdp::AdmmOptions{}.max_iterations / 4);
  if (!result.success) {
    // Classified, not silently wrong: a non-Optimal status with the honest
    // residual profile, never a fake "solved".
    EXPECT_NE(result.status, SolveStatus::Optimal);
    EXPECT_FALSE(result.message.empty());
  }
}

TEST(AdmmStallRegression, AutoRecoversMaximizeRegionThroughWarmHandoff) {
  // With "auto" forced to pick the first-order backend (threshold 1), the
  // degenerate-drift classification triggers the policy-level recovery: the
  // IPM re-solve, warm-started from the ADMM's best iterate, must produce
  // audited certificates. This is what lets "auto" route by block size
  // without special-casing the maximize_region objective.
  const pll::ReducedModel model = pll::make_averaged(pll::Params::paper_third_order());
  core::LyapunovOptions opt = third_order_lyapunov_options();
  opt.solver.backend = "auto";
  opt.solver.auto_block_threshold = 1;  // force the first-order delegate
  const core::LyapunovResult result = core::LyapunovSynthesizer(opt).synthesize(model.system);
  EXPECT_TRUE(result.success) << result.message;
  EXPECT_TRUE(result.audit.ok);
}

}  // namespace
}  // namespace soslock
