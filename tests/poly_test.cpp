// Unit and property tests for the polynomial algebra layer.
#include <gtest/gtest.h>

#include <cmath>

#include "poly/basis.hpp"
#include "poly/lin_expr.hpp"
#include "poly/poly_lin.hpp"
#include "poly/polynomial.hpp"
#include "util/rng.hpp"

namespace soslock::poly {
namespace {

using linalg::Vector;

Polynomial random_poly(std::size_t nvars, unsigned deg, util::Rng& rng, double density = 0.6) {
  Polynomial p(nvars);
  for (const Monomial& m : monomials_up_to(nvars, deg)) {
    if (rng.uniform() < density) p.add_term(m, rng.uniform(-2.0, 2.0));
  }
  return p;
}

TEST(Monomial, DegreeAndEval) {
  Monomial m(3);
  m.set_exponent(0, 2);
  m.set_exponent(2, 1);
  EXPECT_EQ(m.degree(), 3u);
  EXPECT_DOUBLE_EQ(m.eval({2.0, 5.0, 3.0}), 12.0);
}

TEST(Monomial, GradedLexOrder) {
  const Monomial one(2);
  const Monomial x = Monomial::variable(2, 0);
  const Monomial y = Monomial::variable(2, 1);
  const Monomial x2 = Monomial::variable(2, 0, 2);
  EXPECT_LT(one, x);
  EXPECT_LT(y, x);   // lexicographic tiebreak on exponent vectors: (0,1) < (1,0)
  EXPECT_LT(x, x2);  // degree dominates
}

TEST(Monomial, ProductAddsExponents) {
  const Monomial x = Monomial::variable(2, 0);
  const Monomial xy = x * Monomial::variable(2, 1);
  EXPECT_EQ(xy.exponent(0), 1u);
  EXPECT_EQ(xy.exponent(1), 1u);
  EXPECT_EQ((x * x).exponent(0), 2u);
}

TEST(Monomial, Divides) {
  const Monomial x = Monomial::variable(2, 0);
  const Monomial x2y = Monomial::variable(2, 0, 2) * Monomial::variable(2, 1);
  EXPECT_TRUE(x.divides(x2y));
  EXPECT_FALSE(x2y.divides(x));
}

TEST(Polynomial, ConstructorsAndDegree) {
  const Polynomial c = Polynomial::constant(2, 3.0);
  EXPECT_EQ(c.degree(), 0u);
  EXPECT_DOUBLE_EQ(c.eval({1.0, 1.0}), 3.0);
  const Polynomial x = Polynomial::variable(2, 0);
  EXPECT_EQ(x.degree(), 1u);
  const Polynomial p = x * x + 2.0 * Polynomial::variable(2, 1);
  EXPECT_EQ(p.degree(), 2u);
  EXPECT_EQ(p.min_degree(), 1u);
}

TEST(Polynomial, AffineHelper) {
  const Polynomial p = Polynomial::affine(3, {1.0, -2.0, 0.5}, 4.0);
  EXPECT_DOUBLE_EQ(p.eval({1.0, 1.0, 2.0}), 1.0 - 2.0 + 1.0 + 4.0);
}

TEST(Polynomial, AdditionCancels) {
  const Polynomial x = Polynomial::variable(1, 0);
  const Polynomial zero = x - x;
  EXPECT_TRUE(zero.is_zero());
}

class PolyArithmetic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolyArithmetic, ProductEvaluationHomomorphism) {
  util::Rng rng(GetParam());
  const std::size_t nvars = 1 + rng.index(3);
  const Polynomial p = random_poly(nvars, 3, rng);
  const Polynomial q = random_poly(nvars, 2, rng);
  const Vector x = rng.uniform_vector(nvars, -1.5, 1.5);
  EXPECT_NEAR((p * q).eval(x), p.eval(x) * q.eval(x), 1e-9);
}

TEST_P(PolyArithmetic, SumEvaluationHomomorphism) {
  util::Rng rng(GetParam() + 1000);
  const std::size_t nvars = 1 + rng.index(4);
  const Polynomial p = random_poly(nvars, 4, rng);
  const Polynomial q = random_poly(nvars, 4, rng);
  const Vector x = rng.uniform_vector(nvars, -1.0, 1.0);
  EXPECT_NEAR((p + q).eval(x), p.eval(x) + q.eval(x), 1e-10);
}

TEST_P(PolyArithmetic, PowMatchesRepeatedProduct) {
  util::Rng rng(GetParam() + 2000);
  const Polynomial p = random_poly(2, 2, rng);
  const Polynomial p3 = p.pow(3);
  const Polynomial explicit3 = p * p * p;
  const Vector x = rng.uniform_vector(2, -1.0, 1.0);
  EXPECT_NEAR(p3.eval(x), explicit3.eval(x), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyArithmetic, ::testing::Range<std::uint64_t>(1, 11));

TEST(Polynomial, DerivativeKnown) {
  // d/dx (x^2 y + 3x) = 2xy + 3
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  const Polynomial p = x * x * y + 3.0 * x;
  const Polynomial dp = p.derivative(0);
  EXPECT_DOUBLE_EQ(dp.eval({2.0, 5.0}), 2.0 * 2.0 * 5.0 + 3.0);
}

TEST(Polynomial, DerivativeNumericalCheck) {
  util::Rng rng(77);
  const Polynomial p = random_poly(3, 4, rng);
  const Vector x = rng.uniform_vector(3, -1.0, 1.0);
  const double h = 1e-6;
  for (std::size_t i = 0; i < 3; ++i) {
    Vector xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    const double fd = (p.eval(xp) - p.eval(xm)) / (2.0 * h);
    EXPECT_NEAR(p.derivative(i).eval(x), fd, 1e-5);
  }
}

TEST(Polynomial, LieDerivativeIsChainRule) {
  // V = x^2 + y^2, f = (-y, x) (rotation): V̇ = 0.
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  const Polynomial v = x * x + y * y;
  const Polynomial vdot = v.lie_derivative({-1.0 * y, x});
  EXPECT_TRUE(vdot.pruned(1e-15).is_zero());
}

TEST(Polynomial, SubstituteAffine) {
  // p(x) = x^2, x := 1 + 2t  =>  p = 1 + 4t + 4t^2.
  const Polynomial p = Polynomial::variable(1, 0).pow(2);
  const Polynomial repl = Polynomial::affine(1, {2.0}, 1.0);
  const Polynomial composed = p.substitute({repl});
  EXPECT_DOUBLE_EQ(composed.eval({0.5}), 4.0);
  EXPECT_EQ(composed.degree(), 2u);
}

TEST(Polynomial, SubstituteMatchesEvaluation) {
  util::Rng rng(91);
  const Polynomial p = random_poly(2, 3, rng);
  const Polynomial r0 = random_poly(2, 2, rng);
  const Polynomial r1 = random_poly(2, 2, rng);
  const Polynomial composed = p.substitute({r0, r1});
  const Vector x = rng.uniform_vector(2, -0.8, 0.8);
  EXPECT_NEAR(composed.eval(x), p.eval({r0.eval(x), r1.eval(x)}), 1e-8);
}

TEST(Polynomial, RemapMovesVariables) {
  const Polynomial p = Polynomial::variable(2, 0) * Polynomial::variable(2, 1);
  const Polynomial q = p.remap(4, {3, 1});
  EXPECT_DOUBLE_EQ(q.eval({0.0, 5.0, 0.0, 2.0}), 10.0);
}

TEST(Polynomial, FixVariable) {
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  const Polynomial p = x * x * y + y + 1.0 * x;
  const Polynomial fixed = p.fix_variable(1, 2.0);
  // 2x^2 + x + 2
  EXPECT_DOUBLE_EQ(fixed.eval({3.0, 999.0}), 2.0 * 9.0 + 3.0 + 2.0);
}

TEST(Polynomial, SquaredNormHelper) {
  const Polynomial n2 = squared_norm(3, 2);  // x0^2 + x1^2 only
  EXPECT_DOUBLE_EQ(n2.eval({3.0, 4.0, 100.0}), 25.0);
}

TEST(Polynomial, PrunedDropsSmallTerms) {
  Polynomial p(1);
  p.add_term(Monomial::variable(1, 0), 1e-15);
  p.add_term(Monomial(1), 1.0);
  EXPECT_EQ(p.pruned(1e-12).term_count(), 1u);
}

TEST(LinExpr, Arithmetic) {
  const LinExpr a = LinExpr::variable(0, 2.0) + LinExpr(1.0);
  const LinExpr b = LinExpr::variable(1) - LinExpr::variable(0);
  const LinExpr c = a + b;  // x0 + x1 + 1
  EXPECT_DOUBLE_EQ(c.eval({3.0, 4.0}), 8.0);
  EXPECT_TRUE((a - a).is_zero());
}

TEST(LinExpr, ScalingAndNegation) {
  LinExpr e = LinExpr::variable(2, 3.0) + LinExpr(1.0);
  e *= -2.0;
  EXPECT_DOUBLE_EQ(e.eval({0.0, 0.0, 1.0}), -8.0);
  EXPECT_DOUBLE_EQ((-e).eval({0.0, 0.0, 1.0}), 8.0);
}

TEST(PolyLin, PromoteAndEvalDecision) {
  const Polynomial p = Polynomial::variable(2, 0) + Polynomial::constant(2, 2.0);
  const PolyLin pl(p);
  const Polynomial back = pl.eval_decision({});
  EXPECT_TRUE((back - p).is_zero());
}

TEST(PolyLin, DecisionLinearity) {
  // q = d0 * x + d1 * y^2; instantiating decisions gives the right poly.
  PolyLin q(2);
  q.add_term(Monomial::variable(2, 0), LinExpr::variable(0));
  q.add_term(Monomial::variable(2, 1, 2), LinExpr::variable(1));
  const Polynomial inst = q.eval_decision({3.0, -2.0});
  EXPECT_DOUBLE_EQ(inst.eval({1.0, 2.0}), 3.0 - 8.0);
}

TEST(PolyLin, MultiplyByPolynomial) {
  PolyLin q(1);
  q.add_term(Monomial::variable(1, 0), LinExpr::variable(0));  // d0 * x
  const Polynomial x = Polynomial::variable(1, 0);
  const PolyLin qx = q * x;  // d0 * x^2
  const Polynomial inst = qx.eval_decision({2.0});
  EXPECT_DOUBLE_EQ(inst.eval({3.0}), 18.0);
}

TEST(PolyLin, DerivativeCommutesWithInstantiation) {
  util::Rng rng(123);
  PolyLin q(2);
  for (const Monomial& m : monomials_up_to(2, 3)) {
    q.add_term(m, LinExpr::variable(static_cast<int>(q.terms().size()), rng.uniform(-1, 1)));
  }
  Vector decisions(q.terms().size());
  for (double& d : decisions) d = rng.uniform(-1.0, 1.0);
  const Polynomial d_then_i = q.derivative(0).eval_decision(decisions);
  const Polynomial i_then_d = q.eval_decision(decisions).derivative(0);
  EXPECT_TRUE((d_then_i - i_then_d).pruned(1e-14).is_zero());
}

TEST(PolyLin, DecisionVariablesListed) {
  PolyLin q(1);
  q.add_term(Monomial(1), LinExpr::variable(5));
  q.add_term(Monomial::variable(1, 0), LinExpr::variable(2));
  const auto vars = q.decision_variables();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], 2);
  EXPECT_EQ(vars[1], 5);
}

TEST(Basis, MonomialCountsMatchFormula) {
  for (std::size_t n = 1; n <= 4; ++n) {
    for (unsigned d = 0; d <= 5; ++d) {
      EXPECT_EQ(monomials_up_to(n, d).size(), monomial_count(n, d))
          << "n=" << n << " d=" << d;
    }
  }
}

TEST(Basis, MinDegreeFilter) {
  const auto ms = monomials_up_to(2, 4, 3);
  for (const Monomial& m : ms) {
    EXPECT_GE(m.degree(), 3u);
    EXPECT_LE(m.degree(), 4u);
  }
  // Count: deg-3 (4 monomials) + deg-4 (5 monomials) in 2 vars.
  EXPECT_EQ(ms.size(), 9u);
}

TEST(Basis, GramBasisForEvenForm) {
  // p = x^4 + x^2 y^2 + y^4 (homogeneous quartic): basis must be the three
  // degree-2 monomials only.
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  const Polynomial p = x.pow(4) + x.pow(2) * y.pow(2) + y.pow(4);
  const auto basis = gram_basis(2, support_info(p));
  EXPECT_EQ(basis.size(), 3u);
  for (const Monomial& m : basis) EXPECT_EQ(m.degree(), 2u);
}

TEST(Basis, GramBasisBoxPrune) {
  // p = 1 + x^2: y never appears, so no basis monomial may contain y.
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial p = x * x + 1.0;
  const auto basis = gram_basis(2, support_info(p));
  for (const Monomial& m : basis) EXPECT_EQ(m.exponent(1), 0u);
  EXPECT_EQ(basis.size(), 2u);  // {1, x}
}

TEST(Basis, NoPruneKeepsFullRange) {
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial p = x * x + 1.0;
  const auto full = gram_basis(2, support_info(p), /*prune=*/false);
  EXPECT_EQ(full.size(), 3u);  // {1, x, y}
}

TEST(Basis, NewtonPolytopeMembership) {
  // supp = {(0,0), (4,2), (2,4)} (Motzkin without the middle term): the
  // half-polytope is the triangle conv{(0,0), (2,1), (1,2)}.
  const Monomial c0(2);
  std::vector<Monomial> supp = {c0, Monomial({4, 2}), Monomial({2, 4})};
  EXPECT_TRUE(in_half_newton_polytope(Monomial({1, 1}), supp));   // (2,2) inside
  EXPECT_TRUE(in_half_newton_polytope(Monomial({2, 1}), supp));   // vertex
  EXPECT_FALSE(in_half_newton_polytope(Monomial({2, 0}), supp));  // (4,0) outside
  EXPECT_FALSE(in_half_newton_polytope(Monomial({0, 1}), supp));  // (0,2) outside
}

TEST(Basis, NewtonPruneNeverLargerThanBoxAndExactOnMotzkin) {
  // Motzkin: x^4 y^2 + x^2 y^4 - 3 x^2 y^2 + 1. Box prune keeps every
  // monomial with per-variable degree <= 2 and total degree <= 3; the exact
  // Newton prune keeps only {1, xy, x^2 y, x y^2}.
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  const Polynomial motzkin =
      x.pow(4) * y.pow(2) + x.pow(2) * y.pow(4) - 3.0 * x.pow(2) * y.pow(2) + 1.0;
  const SupportInfo info = support_info(motzkin);
  const auto box = gram_basis(2, info, GramPrune::Box);
  const auto newton = gram_basis(2, info, GramPrune::Newton);
  EXPECT_LE(newton.size(), box.size());
  ASSERT_EQ(newton.size(), 4u);
  EXPECT_EQ(newton[0], Monomial(2));           // 1
  EXPECT_EQ(newton[1], Monomial({1, 1}));      // xy
  EXPECT_EQ(newton[2], Monomial({1, 2}));      // x y^2 (graded-lex order)
  EXPECT_EQ(newton[3], Monomial({2, 1}));      // x^2 y
  // Every Newton monomial must also survive the (weaker) box prune.
  for (const Monomial& m : newton)
    EXPECT_NE(std::find(box.begin(), box.end(), m), box.end());
}

TEST(Basis, DiagonalConsistencyFixpoint) {
  // basis {1, x}, supp {x^2}: the square of 1 is matched by no support
  // monomial and no pair, so 1 is dropped; x survives (x^2 in supp).
  const Monomial one(1);
  const Monomial x = Monomial::variable(1, 0);
  const std::vector<Monomial> supp = {Monomial::variable(1, 0, 2)};
  const auto pruned = diagonal_consistency_prune({one, x}, supp);
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_EQ(pruned[0], x);
}

TEST(Basis, HomogeneousQuarticNewtonBasisIsHomogeneous) {
  // p = (x^2 + y)^2 = x^4 + 2 x^2 y + y^2: supp is collinear on x + 2y = 4,
  // so the Newton basis is exactly {x^2, y} — the true decomposition — while
  // the box prune would also keep x and xy.
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  const Polynomial p = (x * x + y) * (x * x + y);
  const SupportInfo info = support_info(p);
  const auto newton = gram_basis(2, info, GramPrune::Newton);
  ASSERT_EQ(newton.size(), 2u);
  EXPECT_EQ(newton[0], Monomial({0, 1}));  // y
  EXPECT_EQ(newton[1], Monomial({2, 0}));  // x^2
  EXPECT_LT(newton.size(), gram_basis(2, info, GramPrune::Box).size());
}

TEST(Basis, SupportInfoOfPolyLin) {
  PolyLin q(2);
  q.add_term(Monomial::variable(2, 0, 4), LinExpr::variable(0));
  q.add_term(Monomial::variable(2, 1, 2), LinExpr(1.0));
  const SupportInfo info = support_info(q);
  EXPECT_EQ(info.max_degree, 4u);
  EXPECT_EQ(info.min_degree, 2u);
  EXPECT_EQ(info.max_degree_per_var[0], 4u);
  EXPECT_EQ(info.max_degree_per_var[1], 2u);
}

}  // namespace
}  // namespace soslock::poly
