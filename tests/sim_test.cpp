// Monte-Carlo validation harness tests: certified statements must agree with
// simulated behaviour of both the reduced and the full event-driven models.
#include <gtest/gtest.h>

#include "core/level_set.hpp"
#include "core/lyapunov.hpp"
#include "pll/models.hpp"
#include "sim/monte_carlo.hpp"

namespace soslock::sim {
namespace {

core::AttractiveInvariant pll3_invariant(const pll::ReducedModel& m) {
  core::LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.flow_decrease = core::FlowDecrease::Strict;
  opt.strict_margin = 1e-4;
  opt.maximize_region = true;
  const core::LyapunovResult lyap = core::LyapunovSynthesizer(opt).synthesize(m.system);
  EXPECT_TRUE(lyap.success);
  const core::LevelSetResult levels =
      core::LevelSetMaximizer().maximize(m.system, lyap.certificates);
  EXPECT_TRUE(levels.success);
  core::AttractiveInvariant ai;
  ai.certificates = lyap.certificates;
  ai.levels = levels.levels;
  ai.consistent_level = levels.consistent_level;
  return ai;
}

TEST(MonteCarlo, FullModelLockStudyThirdOrder) {
  const pll::FullPllModel model(pll::Params::paper_third_order());
  LockStudyOptions opt;
  opt.trials = 40;
  opt.v_range = 2.0;
  opt.e_range = 0.8;
  opt.sim.tau_max = 600.0;
  const LockStudyResult result = lock_study(model, opt);
  EXPECT_EQ(result.total, 40u);
  // The certified claim is inevitability: every randomized start locks.
  EXPECT_EQ(result.locked, result.total);
  EXPECT_GT(result.mean_lock_time, 0.0);
  EXPECT_LE(result.mean_lock_time, result.max_lock_time);
}

TEST(MonteCarlo, DecreaseStudyAveragedPll3) {
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_third_order());
  const core::AttractiveInvariant ai = pll3_invariant(m);
  DecreaseStudyOptions opt;
  opt.trials = 25;
  opt.sim.dt = 2e-3;
  opt.sim.t_max = 5.0;
  const DecreaseStudyResult result = decrease_study(
      m.system, ai, {{-8.0, 8.0}, {-8.0, 8.0}, {-1.0, 1.0}}, opt);
  EXPECT_GT(result.points_checked, 100u);
  EXPECT_TRUE(result.ok) << "worst V increase " << result.worst_increase;
}

TEST(MonteCarlo, InvarianceStudyAveragedPll3) {
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_third_order());
  const core::AttractiveInvariant ai = pll3_invariant(m);
  DecreaseStudyOptions opt;
  opt.trials = 25;
  opt.sim.dt = 2e-3;
  opt.sim.t_max = 10.0;
  const InvarianceStudyResult result = invariance_study(
      m.system, ai, {{-8.0, 8.0}, {-8.0, 8.0}, {-1.0, 1.0}}, opt);
  EXPECT_GT(result.total, 0u);
  EXPECT_TRUE(result.ok()) << result.stayed << "/" << result.total;
}

TEST(MonteCarlo, LockFractionDropsOutsideGardnerLimit) {
  // Ablation of the documented gain interpretation: at the raw Table-1 gain
  // the event-driven loop cycle-slips and fails to lock.
  const pll::FullPllModel hot(pll::Params::paper_third_order(), /*gain_scale=*/1.0);
  LockStudyOptions opt;
  opt.trials = 10;
  opt.v_range = 1.0;
  opt.e_range = 0.5;
  opt.sim.tau_max = 150.0;
  const LockStudyResult result = lock_study(hot, opt);
  EXPECT_LT(result.lock_fraction(), 0.5);
  EXPECT_GT(result.trials_with_cycle_slip, 0u);
}

TEST(MonteCarlo, FourthOrderLockStudy) {
  const pll::FullPllModel model(pll::Params::paper_fourth_order());
  LockStudyOptions opt;
  opt.trials = 8;
  opt.v_range = 1.0;
  opt.e_range = 0.5;
  opt.sim.tau_max = 4000.0;
  opt.sim.dt = 4e-3;
  const LockStudyResult result = lock_study(model, opt);
  EXPECT_GE(result.lock_fraction(), 0.75);
}

}  // namespace
}  // namespace soslock::sim
