// Tests for the CP PLL models: parameter derivation, reduced hybrid model
// structure, averaged-model stability, and full-model lock behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "hybrid/simulator.hpp"
#include "linalg/eigen_sym.hpp"
#include "pll/full_model.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"

namespace soslock::pll {
namespace {

TEST(Params, PaperTablesLoad) {
  const Params p3 = Params::paper_third_order();
  EXPECT_EQ(p3.order, 3);
  EXPECT_NEAR(p3.ip.mid(), 500e-6, 1e-9);
  EXPECT_TRUE(p3.kv.contains(200.0));
  const Params p4 = Params::paper_fourth_order();
  EXPECT_EQ(p4.order, 4);
  EXPECT_NEAR(p4.r2.mid(), 8e3, 1e-9);
  EXPECT_NEAR(p4.c3.mid(), 2e-12, 1e-15);
}

TEST(Params, DerivedConstantsThirdOrder) {
  const LoopConstants k = derive_constants(Params::paper_third_order(), 1.0);
  // T = R*C2 = 8e3 * 6.25e-12 = 5e-8 s.
  EXPECT_NEAR(k.t_scale, 5e-8, 1e-10);
  EXPECT_NEAR(k.a, 6.25 / 2.09, 0.02);     // C2/C1
  EXPECT_NEAR(k.rho, 4.0, 0.05);           // Ip*R
  EXPECT_NEAR(k.kappa, 10.0, 0.05);        // Kv * T
  EXPECT_LT(k.rho_lo, k.rho);
  EXPECT_GT(k.rho_hi, k.rho);
}

TEST(Params, DerivedConstantsFourthOrder) {
  const LoopConstants k = derive_constants(Params::paper_fourth_order(), 1.0);
  EXPECT_NEAR(k.beta, 50.0 / 8.0, 1e-6);
  EXPECT_GT(k.gamma, 0.0);
  EXPECT_NEAR(k.rho, 20.0, 0.2);
}

TEST(Params, GainScaleResolution) {
  EXPECT_DOUBLE_EQ(resolve_gain_scale(3, 0.0), 0.02);
  EXPECT_DOUBLE_EQ(resolve_gain_scale(4, 0.0), 3e-4);
  EXPECT_DOUBLE_EQ(resolve_gain_scale(4, 0.5), 0.5);
}

/// Hurwitz test via the characteristic polynomial (Leverrier-Faddeev).
bool is_hurwitz(const linalg::Matrix& a) {
  const std::size_t n = a.rows();
  std::vector<double> c(n + 1);
  c[0] = 1.0;
  linalg::Matrix mk = a;
  for (std::size_t k = 1; k <= n; ++k) {
    double tr = 0.0;
    for (std::size_t i = 0; i < n; ++i) tr += mk(i, i);
    c[k] = -tr / static_cast<double>(k);
    if (k < n) {
      linalg::Matrix tmp = mk;
      for (std::size_t i = 0; i < n; ++i) tmp(i, i) += c[k];
      mk = a * tmp;
    }
  }
  for (std::size_t i = 1; i <= n; ++i)
    if (!(c[i] > 0.0)) return false;
  if (n == 3) return c[1] * c[2] > c[3];
  if (n == 4) return (c[1] * c[2] - c[3]) * c[3] > c[1] * c[1] * c[4];
  return true;
}

TEST(AveragedModel, ThirdOrderStableAtDefaultGain) {
  const LoopConstants k = derive_constants(Params::paper_third_order(),
                                           resolve_gain_scale(3, 0.0));
  EXPECT_TRUE(is_hurwitz(averaged_state_matrix(k)));
}

TEST(AveragedModel, FourthOrderStableAtDefaultGain) {
  const LoopConstants k = derive_constants(Params::paper_fourth_order(),
                                           resolve_gain_scale(4, 0.0));
  EXPECT_TRUE(is_hurwitz(averaged_state_matrix(k)));
}

TEST(AveragedModel, FourthOrderUnstableAtRawGain) {
  // The documented substitution: raw Table-1 reading is unstable for our
  // reconstructed topology.
  const LoopConstants k = derive_constants(Params::paper_fourth_order(), 1.0);
  EXPECT_FALSE(is_hurwitz(averaged_state_matrix(k)));
}

TEST(ReducedModel, StructureThirdOrder) {
  const ReducedModel m = make_reduced(Params::paper_third_order());
  EXPECT_EQ(m.system.nstates(), 3u);
  EXPECT_EQ(m.system.nparams(), 1u);
  EXPECT_EQ(m.system.modes().size(), 3u);
  EXPECT_EQ(m.system.jumps().size(), 4u);
  EXPECT_TRUE(m.system.validate().empty());
  EXPECT_TRUE(m.system.modes()[m.mode_idle].contains_equilibrium);
  // All jumps are identity resets (Remark 1).
  for (const auto& j : m.system.jumps()) EXPECT_TRUE(j.is_identity_reset());
}

TEST(ReducedModel, StructureFourthOrder) {
  const ReducedModel m = make_reduced(Params::paper_fourth_order());
  EXPECT_EQ(m.system.nstates(), 4u);
  EXPECT_EQ(m.e_index, 3u);
  EXPECT_TRUE(m.system.validate().empty());
}

TEST(ReducedModel, OriginIsIdleEquilibrium) {
  const ReducedModel m = make_reduced(Params::paper_third_order());
  const linalg::Vector dx = m.system.eval_flow(m.mode_idle, {0.0, 0.0, 0.0}, {0.0});
  for (double d : dx) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(ReducedModel, PumpSignsCorrect) {
  const ReducedModel m = make_reduced(Params::paper_third_order());
  // Nominal pump: normalized uncertainty u = 0; extremes u = +/-1.
  const linalg::Vector up = m.system.eval_flow(m.mode_up, {0.0, 0.0, 0.5}, {0.0});
  const linalg::Vector dn = m.system.eval_flow(m.mode_down, {0.0, 0.0, -0.5}, {0.0});
  EXPECT_NEAR(up[1], m.constants.rho, 1e-9);   // pump up raises v2
  EXPECT_NEAR(dn[1], -m.constants.rho, 1e-9);  // pump down lowers v2
  const linalg::Vector up_hi = m.system.eval_flow(m.mode_up, {0.0, 0.0, 0.5}, {1.0});
  EXPECT_NEAR(up_hi[1], m.constants.rho_hi, 1e-9);
  // e' = -kappa * v2 = 0 at v2 = 0 in both.
  EXPECT_DOUBLE_EQ(up[2], 0.0);
}

TEST(ReducedModel, ModeDomainsPartitionBySign) {
  const ReducedModel m = make_reduced(Params::paper_third_order());
  linalg::Vector pos(m.system.nvars(), 0.0);
  pos[m.e_index] = 0.5;
  EXPECT_TRUE(m.system.modes()[m.mode_up].domain.contains(pos));
  EXPECT_FALSE(m.system.modes()[m.mode_down].domain.contains(pos));
  pos[m.e_index] = -0.5;
  EXPECT_FALSE(m.system.modes()[m.mode_up].domain.contains(pos));
  EXPECT_TRUE(m.system.modes()[m.mode_down].domain.contains(pos));
}

TEST(ReducedModel, UncertainPumpOptional) {
  ModelOptions opt;
  opt.uncertain_pump = false;
  const ReducedModel m = make_reduced(Params::paper_third_order(), opt);
  EXPECT_EQ(m.system.nparams(), 0u);
  EXPECT_TRUE(m.system.parameter_set().empty());
}

TEST(AveragedModel, SimulationConvergesToLock) {
  const ReducedModel m = make_averaged(Params::paper_third_order());
  const hybrid::Simulator sim(m.system);
  hybrid::SimOptions opt;
  opt.dt = 1e-3;
  opt.t_max = 300.0;
  const hybrid::SimResult r = sim.run(0, {0.5, -0.25, 0.2}, opt);
  EXPECT_EQ(r.stop_reason, "t_max");
  EXPECT_LT(std::fabs(r.final().x[0]), 2e-2);
  EXPECT_LT(std::fabs(r.final().x[1]), 2e-2);
  EXPECT_LT(std::fabs(r.final().x[2]), 2e-2);
}

TEST(FullModel, LocksFromModerateOffset) {
  const FullPllModel model(Params::paper_third_order());
  FullSimOptions opt;
  opt.tau_max = 400.0;
  const FullSimResult r = model.simulate({1.0, 1.0}, 0.4, opt);
  EXPECT_TRUE(r.locked) << "final e = " << r.trace.back().e;
  EXPECT_EQ(r.cycle_slips, 0);
}

TEST(FullModel, LocksFromNegativePhaseError) {
  const FullPllModel model(Params::paper_third_order());
  FullSimOptions opt;
  opt.tau_max = 400.0;
  const FullSimResult r = model.simulate({-0.5, -0.5}, -0.4, opt);
  EXPECT_TRUE(r.locked);
}

TEST(FullModel, FourthOrderLocks) {
  const FullPllModel model(Params::paper_fourth_order());
  FullSimOptions opt;
  opt.tau_max = 3000.0;
  opt.dt = 2e-3;
  const FullSimResult r = model.simulate({0.5, 0.5, 0.5}, 0.3, opt);
  EXPECT_TRUE(r.locked) << "final e = " << r.trace.back().e;
}

TEST(FullModel, PfdDutyMatchesPhaseError) {
  // With a constant positive phase error and frozen voltages the PFD spends
  // roughly an e-fraction of each period in Up. We approximate by checking
  // the model pumps the control voltage upward from e0 > 0, v = 0.
  const FullPllModel model(Params::paper_third_order());
  FullSimOptions opt;
  opt.tau_max = 2.0;
  opt.record_stride = 1;
  const FullSimResult r = model.simulate({0.0, 0.0}, 0.5, opt);
  EXPECT_GT(r.trace.back().v[1], 0.0);
}

}  // namespace
}  // namespace soslock::pll
