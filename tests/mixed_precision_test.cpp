// Tests for the mixed-precision IPM (IpmOptions::mixed_precision): the
// FP32-factored / FP64-refined Schur solves on the paper's two workload
// shapes —
//
//   * pump-vertex Lyapunov certification (sweep::lyapunov_query through the
//     full SOS pipeline): verdict parity with the plain FP64 solve, an
//     independent certificate audit that passes, and populated
//     MixedPrecisionStats with the refinement-step budget respected;
//   * clock-tree coupling SDP solved at the backend level: status and
//     objective parity, FP32 factorizations actually taken;
//
// plus the telemetry plumbing: stats default-clean without the mode, the
// refinement budget surfaced on Solution::mixed, and the SolveStats rollup.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "linalg/matrix.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"
#include "sdp/ipm.hpp"
#include "sdp/lowering.hpp"
#include "sdp/solver.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"
#include "sweep/query.hpp"

namespace soslock {
namespace {

using sdp::Solution;
using sdp::SolveStatus;

/// Clustered clock-tree coupling SDP (the admm_async test workload).
sdp::Problem clock_tree_sdp(std::size_t loops, std::size_t cluster) {
  pll::ClockTreeOptions tree;
  tree.loops = loops;
  tree.neighbor_coupling = 0.05;
  tree.cluster = cluster;
  tree.neighbor_hops = cluster > 0 ? cluster - 1 : 1;
  const pll::ClockTreeModel model =
      pll::make_clock_tree(pll::Params::paper_third_order(), tree);
  return pll::clock_tree_coupling_sdp(model.constants, tree);
}

sdp::IpmOptions mixed_options() {
  sdp::IpmOptions opt;
  opt.mixed_precision = true;
  // The acceptance budget on the paper workloads: a refined solve that needs
  // more than 5 FP64 correction steps falls back to FP64 instead.
  opt.max_refinement_steps = 5;
  return opt;
}

TEST(MixedPrecision, PumpVertexCertificationMatchesFp64AndPassesAudit) {
  const sweep::CertificationQuery query = sweep::lyapunov_query();
  const sos::SosProgram program = query.build(pll::Params::paper_third_order());

  sdp::SolverConfig plain;
  plain.backend = "ipm";
  const sos::SolveResult fp64 = program.solve(plain);

  sdp::SolverConfig mixed = plain;
  mixed.ipm = mixed_options();
  const sos::SolveResult fp32 = program.solve(mixed);

  // Verdict parity with the plain solve, and the independent audit accepts
  // the refined certificate — soundness does not rest on the refinement.
  EXPECT_EQ(fp32.status, fp64.status);
  EXPECT_EQ(fp32.feasible, fp64.feasible);
  EXPECT_TRUE(fp32.feasible);
  EXPECT_TRUE(sos::audit(program, fp32).ok);

  // Telemetry: the mode ran, factored in FP32, and respected the budget.
  EXPECT_TRUE(fp32.sdp.mixed.enabled);
  EXPECT_GT(fp32.sdp.mixed.fp32_factorizations, 0);
  EXPECT_LE(fp32.sdp.mixed.max_refinement_steps, 5);
  EXPECT_FALSE(fp64.sdp.mixed.enabled);
  EXPECT_EQ(fp64.sdp.mixed.fp32_factorizations, 0);
}

TEST(MixedPrecision, ClockTreeSolveMatchesFp64) {
  const sdp::Problem p = clock_tree_sdp(12, 4);

  sdp::SolveContext c64, c32;
  const Solution fp64 = sdp::IpmSolver().solve(p, c64);
  const Solution fp32 = sdp::IpmSolver(mixed_options()).solve(p, c32);

  ASSERT_EQ(fp64.status, SolveStatus::Optimal);
  EXPECT_EQ(fp32.status, fp64.status);
  EXPECT_NEAR(fp32.primal_objective, fp64.primal_objective,
              1e-4 * (1.0 + std::fabs(fp64.primal_objective)));
  EXPECT_LT(fp32.gap, 1e-6);

  EXPECT_TRUE(fp32.mixed.enabled);
  EXPECT_GT(fp32.mixed.fp32_factorizations, 0);
  EXPECT_LE(fp32.mixed.max_refinement_steps, 5);
  // A fallback is allowed (it is the safety net, not a failure) — but every
  // fallback must have left a matching record.
  EXPECT_EQ(static_cast<int>(fp32.recoveries.size()), fp32.mixed.fp64_fallbacks);
  for (const sdp::RecoveryRecord& rec : fp32.recoveries) {
    EXPECT_EQ(rec.action, "fp32-fallback");
    EXPECT_EQ(rec.from, "ipm-fp32-schur");
    EXPECT_EQ(rec.to, "ipm-fp64-schur");
  }
}

TEST(MixedPrecision, StatsRollUpIntoSolveStats) {
  const sweep::CertificationQuery query = sweep::lyapunov_query();
  const sos::SosProgram program = query.build(pll::Params::paper_third_order());
  sdp::SolverConfig mixed;
  mixed.backend = "ipm";
  mixed.ipm = mixed_options();
  const sos::SolveResult result = program.solve(mixed);

  sos::SolveStats stats;
  stats.absorb(result);
  EXPECT_EQ(stats.mixed_precision_solves, 1);
  EXPECT_EQ(stats.max_refinement_steps, result.sdp.mixed.max_refinement_steps);
  EXPECT_EQ(stats.fp32_fallbacks, result.sdp.mixed.fp64_fallbacks);
  EXPECT_NE(stats.str().find("fp32=1"), std::string::npos);

  sos::SolveStats plain_stats;
  sdp::SolverConfig plain;
  plain.backend = "ipm";
  plain_stats.absorb(program.solve(plain));
  EXPECT_EQ(plain_stats.mixed_precision_solves, 0);
  EXPECT_EQ(plain_stats.str().find("fp32="), std::string::npos);
}

}  // namespace
}  // namespace soslock
