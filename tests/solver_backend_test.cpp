// Tests for the pluggable solver-backend API: registry lookup and
// registration, auto-selection, IPM-vs-ADMM parity, SolveContext controls
// (cancellation, budget, telemetry), and batched parallel SOS solves.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "linalg/eigen_sym.hpp"
#include "sdp/admm.hpp"
#include "sdp/ipm.hpp"
#include "sdp/solver.hpp"
#include "sos/batch.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace soslock {
namespace {

using linalg::Matrix;
using sdp::Problem;
using sdp::Row;
using sdp::Solution;
using sdp::SolveStatus;
using sdp::SparseSym;

/// Random feasible min-trace SDP: b = A(X*) for a random PSD X*.
Problem random_feasible_sdp(std::uint64_t seed, std::size_t n = 0, std::size_t m = 0) {
  util::Rng rng(seed);
  if (n == 0) n = 4 + rng.index(4);
  if (m == 0) m = 3 + rng.index(5);
  Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1.0, 1.0);
  const Matrix xstar = linalg::transposed_times(g, g);

  Problem p;
  const std::size_t b = p.add_block(n);
  p.set_block_objective(b, Matrix::identity(n));
  for (std::size_t i = 0; i < m; ++i) {
    Row row;
    SparseSym a;
    for (int k = 0; k < 4; ++k) {
      const std::size_t r = rng.index(n);
      const std::size_t c = rng.index(n);
      a.add(std::min(r, c), std::max(r, c), rng.uniform(-1.0, 1.0));
    }
    if (a.empty()) a.add(0, 0, 1.0);
    Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[b] = a;
    p.add_row(std::move(row));
  }
  return p;
}

TEST(SolverRegistry, BuiltinBackendsRegistered) {
  const std::vector<std::string> names = sdp::registered_backends();
  EXPECT_NE(std::find(names.begin(), names.end(), "ipm"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "admm"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "auto"), names.end());
}

TEST(SolverRegistry, MakeSolverByName) {
  EXPECT_EQ(sdp::make_solver("ipm")->name(), "ipm");
  EXPECT_EQ(sdp::make_solver("admm")->name(), "admm");
  EXPECT_EQ(sdp::make_solver("auto")->name(), "auto");
}

TEST(SolverRegistry, UnknownBackendThrows) {
  EXPECT_THROW(sdp::make_solver("no-such-solver"), std::invalid_argument);
}

TEST(SolverRegistry, CustomBackendRegistration) {
  const bool registered = sdp::register_backend(
      "test-custom", [](const sdp::SolverConfig& config) {
        return std::make_unique<sdp::IpmSolver>(config.resolved_ipm());
      });
  EXPECT_TRUE(registered);
  // Duplicate names are rejected; "auto" is reserved.
  EXPECT_FALSE(sdp::register_backend("test-custom", [](const sdp::SolverConfig&) {
    return std::unique_ptr<sdp::SolverBackend>();
  }));
  EXPECT_FALSE(sdp::register_backend("auto", [](const sdp::SolverConfig&) {
    return std::unique_ptr<sdp::SolverBackend>();
  }));

  const auto solver = sdp::make_solver("test-custom");
  const Solution sol = solver->solve(random_feasible_sdp(3));
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
}

TEST(SolverRegistry, ConfigSharedFieldsOverrideBackendOptions) {
  sdp::SolverConfig config;
  config.tolerance = 1e-4;
  config.max_iterations = 7;
  EXPECT_DOUBLE_EQ(config.resolved_ipm().tolerance, 1e-4);
  EXPECT_EQ(config.resolved_ipm().max_iterations, 7);
  EXPECT_DOUBLE_EQ(config.resolved_admm().tolerance, 1e-4);
  EXPECT_EQ(config.resolved_admm().max_iterations, 7);
  // Zero keeps the per-backend defaults (which differ by orders of magnitude).
  const sdp::SolverConfig defaults;
  EXPECT_EQ(defaults.resolved_ipm().max_iterations, sdp::IpmOptions{}.max_iterations);
  EXPECT_EQ(defaults.resolved_admm().max_iterations, sdp::AdmmOptions{}.max_iterations);
}

TEST(AutoSelection, SmallBlocksUseIpmLargeBlocksUseAdmm) {
  const sdp::SolverConfig config;  // auto_block_threshold = 80
  Problem small;
  small.add_block(10);
  EXPECT_EQ(sdp::auto_backend_for(small, config), "ipm");

  Problem large;
  large.add_block(10);
  large.add_block(120);
  EXPECT_EQ(sdp::auto_backend_for(large, config), "admm");

  sdp::SolverConfig tight = config;
  tight.auto_block_threshold = 8;
  EXPECT_EQ(sdp::auto_backend_for(small, tight), "admm");
}

TEST(AutoSelection, DelegatesAndReportsDelegateBackend) {
  sdp::SolverConfig config;
  config.backend = "auto";
  const auto solver = sdp::make_solver(config);
  const Solution sol = solver->solve(random_feasible_sdp(5));
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_EQ(sol.backend, "ipm");  // small blocks delegate to the IPM
}

// The acceptance bar of the backend redesign: both backends solve the same
// random feasible SDPs and agree on the optimal value.
class BackendParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackendParity, IpmAndAdmmAgreeOnObjective) {
  const Problem p = random_feasible_sdp(GetParam());
  sdp::AdmmOptions admm_options;
  admm_options.tolerance = 1e-7;
  const Solution si = sdp::IpmSolver().solve(p);
  const Solution sa = sdp::AdmmSolver(admm_options).solve(p);
  ASSERT_EQ(si.status, SolveStatus::Optimal);
  ASSERT_EQ(sa.status, SolveStatus::Optimal);
  const double scale = 1.0 + std::fabs(si.primal_objective);
  EXPECT_LT(std::fabs(si.primal_objective - sa.primal_objective) / scale, 1e-4);
  EXPECT_LT(sa.primal_residual, 1e-6);
  EXPECT_LT(sa.gap, 1e-6);
  // The ADMM multiplier update keeps the primal block exactly PSD.
  EXPECT_GT(linalg::min_eigenvalue(sa.x[0]), -1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendParity, ::testing::Range<std::uint64_t>(1, 9));

TEST(Admm, FreeVariableEquality) {
  // min w s.t. w - x11 = 0, x11 = 2  =>  w = 2 (free-variable dual rows).
  Problem p;
  const std::size_t b = p.add_block(1);
  const std::size_t w = p.add_free(1.0);
  {
    Row row;
    SparseSym a;
    a.add(0, 0, -1.0);
    row.blocks[b] = a;
    row.free_coeffs[w] = 1.0;
    p.add_row(std::move(row));
  }
  {
    Row row;
    SparseSym a;
    a.add(0, 0, 1.0);
    row.blocks[b] = a;
    row.rhs = 2.0;
    p.add_row(std::move(row));
  }
  const Solution sol = sdp::AdmmSolver().solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.w[0], 2.0, 1e-4);
}

TEST(SolveContext, CancellationInterruptsBothBackends) {
  const Problem p = random_feasible_sdp(7);
  std::atomic<bool> cancel{true};  // pre-cancelled: stop on the first check
  for (const char* name : {"ipm", "admm"}) {
    sdp::SolveContext context;
    context.cancel = &cancel;
    const Solution sol = sdp::make_solver(name)->solve(p, context);
    EXPECT_EQ(sol.status, SolveStatus::Interrupted) << name;
    EXPECT_LE(sol.iterations, 1) << name;
  }
}

TEST(SolveContext, WallClockBudgetInterrupts) {
  const Problem p = random_feasible_sdp(8);
  sdp::SolveContext context;
  context.time_budget_seconds = 1e-9;  // expires before the first iteration
  const Solution sol = sdp::IpmSolver().solve(p, context);
  EXPECT_EQ(sol.status, SolveStatus::Interrupted);
}

TEST(SolveContext, TelemetryCallbackSeesEveryIteration) {
  const Problem p = random_feasible_sdp(9);
  sdp::SolveContext context;
  int calls = 0;
  int last_iteration = -1;
  context.on_iteration = [&](const sdp::IterationInfo& info) {
    EXPECT_EQ(info.iteration, calls);
    last_iteration = info.iteration;
    ++calls;
  };
  const Solution sol = sdp::IpmSolver().solve(p, context);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_GT(calls, 0);
  EXPECT_EQ(last_iteration, sol.iterations);
}

TEST(SolveContext, BackendAndTimingRecordedInSolution) {
  const Problem p = random_feasible_sdp(10);
  const Solution sol = sdp::AdmmSolver().solve(p);
  EXPECT_EQ(sol.backend, "admm");
  EXPECT_GE(sol.solve_seconds, 0.0);
}

// --- SOS-layer integration ------------------------------------------------

sos::SosProgram motzkin_like_program() {
  // 2x^4 + 2x^3 y - x^2 y^2 + 5y^4 is SOS; a small Gram feasibility program.
  using poly::Polynomial;
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  const Polynomial p =
      2.0 * x.pow(4) + 2.0 * x.pow(3) * y - x * x * y * y + 5.0 * y.pow(4);
  sos::SosProgram prog(2);
  prog.set_trace_regularization(1e-8);
  prog.add_sos_constraint(p, "p");
  return prog;
}

TEST(SosBackends, AdmmSolvesSosProgramAndPassesAudit) {
  const sos::SosProgram prog = motzkin_like_program();
  sdp::SolverConfig config;
  config.backend = "admm";
  const sos::SolveResult result = prog.solve(config);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.sdp.backend, "admm");
  EXPECT_TRUE(sos::audit(prog, result).ok);
}

TEST(SosBackends, SolveStatsAggregateAcrossBackends) {
  sos::SolveStats stats;
  EXPECT_EQ(stats.str(), "");
  sos::SolveResult a;
  a.sdp.backend = "ipm";
  a.sdp.iterations = 10;
  a.sdp.solve_seconds = 0.5;
  stats.absorb(a);
  EXPECT_EQ(stats.backend, "ipm");
  sos::SolveResult b;
  b.sdp.backend = "admm";
  b.sdp.iterations = 100;
  stats.absorb(b);
  EXPECT_EQ(stats.backend, "mixed");
  EXPECT_EQ(stats.solves, 2);
  EXPECT_EQ(stats.iterations, 110);
  EXPECT_NE(stats.str().find("backend=mixed"), std::string::npos);

  sos::SolveStats other;
  other.backend = "ipm";
  other.solves = 3;
  stats.merge(other);
  EXPECT_EQ(stats.solves, 5);
}

TEST(BatchSolver, MatchesSequentialResults) {
  // N independent copies of the same feasibility program: the batched solve
  // must produce the same status/objective as solving them one by one.
  std::vector<sos::SosProgram> programs;
  for (int i = 0; i < 4; ++i) programs.push_back(motzkin_like_program());
  std::vector<const sos::SosProgram*> ptrs;
  for (const sos::SosProgram& p : programs) ptrs.push_back(&p);

  const sos::BatchSolver batch(4);
  EXPECT_GE(batch.threads(), 1u);
  const std::vector<sos::SolveResult> results = batch.solve_all(ptrs);
  ASSERT_EQ(results.size(), 4u);
  const sos::SolveResult reference = programs.front().solve();
  for (const sos::SolveResult& r : results) {
    EXPECT_EQ(r.status, reference.status);
    EXPECT_TRUE(r.feasible);
    EXPECT_NEAR(r.objective, reference.objective, 1e-6);
  }
}

TEST(BatchSolver, RunAllCoversEveryIndexConcurrently) {
  const sos::BatchSolver batch(4);
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  batch.run_all(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(BatchSolver, PropagatesTaskExceptions) {
  const sos::BatchSolver batch(2);
  EXPECT_THROW(batch.run_all(8,
                             [&](std::size_t i) {
                               if (i == 3) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
}

TEST(BatchSolver, EffectiveConfigDividesThreadsAcrossWorkers) {
  const sos::BatchSolver batch(4);
  sdp::SolverConfig config;
  config.threads = 8;
  // 4 batch workers share the 8 backend threads: 2 each.
  EXPECT_EQ(batch.effective_config(config, 4).threads, 2u);
  // More workers than threads: floor at 1, never oversubscribe to 0.
  EXPECT_EQ(batch.effective_config(config, 100).threads, 2u);  // workers capped at 4
  config.threads = 2;
  EXPECT_EQ(batch.effective_config(config, 4).threads, 1u);
  // The serial default stays serial regardless of batch width.
  config.threads = 1;
  EXPECT_EQ(batch.effective_config(config, 4).threads, 1u);
  // A single-program batch passes the request through unchanged.
  config.threads = 8;
  EXPECT_EQ(batch.effective_config(config, 1).threads, 8u);
}

// --- multi-threaded determinism and reference-kernel parity -----------------

TEST(Threading, IpmDeterministicAcrossThreadCounts) {
  // The parallel Schur/factor/recover partitions write disjoint entries in a
  // fixed order, so multi-threaded solves must reproduce the single-threaded
  // iterate *bitwise*: same status, same iteration count, same duals.
  for (std::uint64_t seed : {3u, 19u}) {
    const Problem p = random_feasible_sdp(seed, 10, 14);
    sdp::IpmOptions serial;
    serial.threads = 1;
    const Solution a = sdp::IpmSolver(serial).solve(p);
    sdp::IpmOptions parallel = serial;
    parallel.threads = 4;
    const Solution b = sdp::IpmSolver(parallel).solve(p);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.iterations, b.iterations);
    ASSERT_EQ(a.y.size(), b.y.size());
    for (std::size_t i = 0; i < a.y.size(); ++i) EXPECT_EQ(a.y[i], b.y[i]) << "y[" << i << "]";
    EXPECT_EQ(a.primal_objective, b.primal_objective);
  }
}

TEST(Threading, AdmmDeterministicAcrossThreadCounts) {
  const Problem p = random_feasible_sdp(7, 12, 10);
  sdp::AdmmOptions serial;
  serial.threads = 1;
  serial.max_iterations = 600;
  const Solution a = sdp::AdmmSolver(serial).solve(p);
  sdp::AdmmOptions parallel = serial;
  parallel.threads = 4;
  const Solution b = sdp::AdmmSolver(parallel).solve(p);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.primal_objective, b.primal_objective);
  ASSERT_EQ(a.y.size(), b.y.size());
  for (std::size_t i = 0; i < a.y.size(); ++i) EXPECT_EQ(a.y[i], b.y[i]) << "y[" << i << "]";
}

TEST(Threading, ConfigThreadsReachesBackends) {
  sdp::SolverConfig config;
  config.threads = 3;
  EXPECT_EQ(config.resolved_ipm().threads, 3u);
  EXPECT_EQ(config.resolved_admm().threads, 3u);
  config.threads = 1;  // default passes the per-backend option through
  config.ipm.threads = 2;
  EXPECT_EQ(config.resolved_ipm().threads, 2u);
}

TEST(ReferenceKernels, IpmSchurAssemblyParity) {
  // The fast upper-triangle panel assembly computes the same Schur operator
  // as the reference (exact-arithmetic identical); solves must agree on
  // status and objective to solver tolerance.
  for (std::uint64_t seed : {5u, 23u}) {
    const Problem p = random_feasible_sdp(seed, 9, 12);
    sdp::IpmOptions fast;
    const Solution a = sdp::IpmSolver(fast).solve(p);
    sdp::IpmOptions reference = fast;
    reference.reference_schur = true;
    const Solution b = sdp::IpmSolver(reference).solve(p);
    EXPECT_EQ(a.status, b.status);
    EXPECT_NEAR(a.primal_objective, b.primal_objective,
                1e-5 * (1.0 + std::fabs(a.primal_objective)));
  }
}

TEST(ReferenceKernels, AdmmEigensolverParity) {
  const Problem p = random_feasible_sdp(11, 14, 10);
  sdp::AdmmOptions ql;
  ql.max_iterations = 2000;
  const Solution a = sdp::AdmmSolver(ql).solve(p);
  sdp::AdmmOptions jacobi = ql;
  jacobi.use_jacobi_eig = true;
  const Solution b = sdp::AdmmSolver(jacobi).solve(p);
  EXPECT_EQ(a.status, b.status);
  EXPECT_NEAR(a.primal_objective, b.primal_objective,
              1e-4 * (1.0 + std::fabs(a.primal_objective)));
}

TEST(PhaseTimers, BackendsRecordPhaseBreakdown) {
  const Problem p = random_feasible_sdp(13, 12, 16);
  const Solution ipm = sdp::IpmSolver().solve(p);
  EXPECT_GT(ipm.phase.total(), 0.0);
  EXPECT_GT(ipm.phase.schur, 0.0);
  EXPECT_GT(ipm.phase.factor, 0.0);
  EXPECT_GT(ipm.phase.eig, 0.0);
  EXPECT_GT(ipm.phase.recover, 0.0);
  EXPECT_LE(ipm.phase.total(), ipm.solve_seconds + 1e-9);

  sdp::AdmmOptions aopt;
  aopt.max_iterations = 200;
  const Solution admm = sdp::AdmmSolver(aopt).solve(p);
  EXPECT_GT(admm.phase.eig, 0.0);  // PSD projections dominate
  EXPECT_GT(admm.phase.factor, 0.0);
  EXPECT_LE(admm.phase.total(), admm.solve_seconds + 1e-9);
}

TEST(PhaseTimers, AggregateIntoSolveStats) {
  sos::SosProgram prog = motzkin_like_program();
  const sos::SolveResult result = prog.solve();
  sos::SolveStats stats;
  stats.absorb(result);
  EXPECT_GT(stats.phase.total(), 0.0);
  sos::SolveStats merged;
  merged.merge(stats);
  merged.merge(stats);
  EXPECT_NEAR(merged.phase.total(), 2.0 * stats.phase.total(), 1e-12);
}

TEST(TimingTable, ConcurrentAddsAreLossless) {
  util::TimingTable table;
  constexpr int kThreads = 4, kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&table] {
      for (int i = 0; i < kPerThread; ++i) table.add("row", 0.001, "note");
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(table.entries().size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_NEAR(table.total_seconds(), kThreads * kPerThread * 0.001, 1e-9);
}

}  // namespace
}  // namespace soslock
