// Tests for the extension features: certified exponential rates ("time to
// locking") and barrier certificates (safety).
#include <gtest/gtest.h>

#include <cmath>

#include "core/barrier.hpp"
#include "core/lyapunov.hpp"
#include "core/rate.hpp"
#include "hybrid/simulator.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"

namespace soslock::core {
namespace {

using hybrid::HybridSystem;
using hybrid::Mode;
using hybrid::SemialgebraicSet;
using poly::Polynomial;

HybridSystem decay_1d(double rate) {
  HybridSystem sys(1, 0);
  Mode m;
  m.flow = {-rate * Polynomial::variable(1, 0)};
  m.domain = SemialgebraicSet(1);
  m.domain.add_interval(0, -2.0, 2.0);
  m.contains_equilibrium = true;
  sys.add_mode(std::move(m));
  return sys;
}

TEST(Rate, ExactForLinearDecay) {
  // x' = -2x with V = x^2: V̇ = -4 V exactly, so alpha* = 4.
  const HybridSystem sys = decay_1d(2.0);
  const Polynomial v = Polynomial::variable(1, 0) * Polynomial::variable(1, 0);
  const RateResult r = RateCertifier().certify(sys, 0, v);
  ASSERT_TRUE(r.success) << r.message;
  EXPECT_NEAR(r.alpha, 4.0, 1e-2);
  // Envelope: V = |x|^2 exactly, m = M = 1.
  EXPECT_NEAR(r.lower_quadratic, 1.0, 1e-3);
  EXPECT_NEAR(r.upper_quadratic, 1.0, 1e-3);
}

TEST(Rate, TimeToReachBound) {
  const HybridSystem sys = decay_1d(1.0);  // x' = -x: |x(t)| = |x0| e^{-t}
  const Polynomial v = Polynomial::variable(1, 0) * Polynomial::variable(1, 0);
  const RateResult r = RateCertifier().certify(sys, 0, v);
  ASSERT_TRUE(r.success);
  // Reaching |x| <= 0.1 from |x0| <= 1 takes ln(10) ~ 2.303; the certified
  // bound must be valid (>= truth) and reasonably tight.
  const double bound = r.time_to_reach(1.0, 0.1);
  EXPECT_GE(bound, std::log(10.0) - 1e-6);
  EXPECT_LE(bound, std::log(10.0) * 1.3);
}

TEST(Rate, InfiniteWhenNoEnvelope) {
  RateResult r;
  r.alpha = 1.0;
  EXPECT_TRUE(std::isinf(r.time_to_reach(1.0, 0.1)));
}

TEST(Rate, Pll3LockTimeBound) {
  // Certified "time to locking" for the averaged third-order CP PLL: find V,
  // certify its decay rate, and bound the time to enter a small ball.
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_third_order());
  LyapunovOptions lopt;
  lopt.certificate_degree = 2;
  lopt.flow_decrease = FlowDecrease::Strict;
  lopt.strict_margin = 1e-4;
  const LyapunovResult lyap = LyapunovSynthesizer(lopt).synthesize(m.system);
  ASSERT_TRUE(lyap.success);
  const RateResult r = RateCertifier().certify(m.system, 0, lyap.certificates.front());
  ASSERT_TRUE(r.success) << r.message;
  EXPECT_GT(r.alpha, 0.0);
  const double t_bound = r.time_to_reach(8.0, 0.1);
  EXPECT_TRUE(std::isfinite(t_bound));
  // Empirical sanity: the bound must exceed the simulated settling time of
  // one trajectory (certified bounds are conservative).
  const hybrid::Simulator sim(m.system);
  hybrid::SimOptions sopt;
  sopt.dt = 2e-3;
  sopt.t_max = t_bound;
  sopt.stop_when = [](const hybrid::TracePoint& pt) {
    return linalg::norm2(pt.x) < 0.1;
  };
  const hybrid::SimResult run = sim.run(0, {2.0, -1.0, 0.5}, sopt);
  EXPECT_EQ(run.stop_reason, "stop_when");
  EXPECT_LE(run.final().t, t_bound);
}

TEST(Barrier, SeparatesLinearFlow) {
  // x' = -x on [-2, 2]: from X0 = [-0.5, 0.5] the unsafe set [1.5, 2] is
  // never reached (|x| only shrinks).
  const HybridSystem sys = decay_1d(1.0);
  SemialgebraicSet x0(1), xu(1);
  x0.add_interval(0, -0.5, 0.5);
  xu.add_interval(0, 1.5, 2.0);
  BarrierOptions opt;
  opt.certificate_degree = 2;
  const BarrierResult r = BarrierCertifier(opt).certify(sys, x0, xu);
  ASSERT_TRUE(r.success) << r.message;
  // The certificate must actually separate: B <= 0 on X0, > 0 on Xu.
  const Polynomial& b = r.certificates.front();
  EXPECT_LE(b.eval({0.3}), 1e-9);
  EXPECT_GT(b.eval({1.7}), 0.0);
}

TEST(Barrier, InfeasibleWhenUnsafeReachable) {
  // x' = +x: trajectories from [-0.5,0.5] DO reach [1.5,2]; no barrier.
  HybridSystem sys(1, 0);
  Mode m;
  m.flow = {Polynomial::variable(1, 0)};
  m.domain = SemialgebraicSet(1);
  m.domain.add_interval(0, -2.0, 2.0);
  sys.add_mode(std::move(m));
  SemialgebraicSet x0(1), xu(1);
  x0.add_interval(0, -0.5, 0.5);
  xu.add_interval(0, 1.5, 2.0);
  BarrierOptions opt;
  opt.certificate_degree = 4;
  opt.solver.max_iterations = 60;
  const BarrierResult r = BarrierCertifier(opt).certify(sys, x0, xu);
  EXPECT_FALSE(r.success);
}

TEST(Barrier, Pll3ControlVoltageSafety) {
  // Safety companion of inevitability: starting with |v| <= 2 V and |e| <=
  // 0.5, the control voltage v2 never exceeds 7 V while acquiring lock.
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_third_order());
  const std::size_t nvars = m.system.nvars();
  SemialgebraicSet x0(nvars), xu(nvars);
  x0.add_interval(0, -2.0, 2.0);
  x0.add_interval(1, -2.0, 2.0);
  x0.add_interval(2, -0.5, 0.5);
  xu.add_interval(1, 7.0, 8.0);  // unsafe: v2 in [7, 8]
  BarrierOptions opt;
  opt.certificate_degree = 2;
  const BarrierResult r = BarrierCertifier(opt).certify(m.system, x0, xu);
  ASSERT_TRUE(r.success) << r.message;
  linalg::Vector inside(nvars, 0.0);
  EXPECT_LE(r.certificates.front().eval(inside), 0.0);
  linalg::Vector unsafe_pt(nvars, 0.0);
  unsafe_pt[1] = 7.5;
  EXPECT_GT(r.certificates.front().eval(unsafe_pt), 0.0);
}

TEST(Barrier, TwoModeSwitchedSafety) {
  // Two-mode system with identity jumps on a surface: barrier per mode.
  HybridSystem sys(2, 0);
  const Polynomial x = Polynomial::variable(2, 0), y = Polynomial::variable(2, 1);
  Mode m0;
  m0.flow = {-1.0 * x, -1.0 * y};
  m0.domain = SemialgebraicSet(2);
  m0.domain.add_constraint(x);
  m0.domain.add_interval(1, -2.0, 2.0);
  Mode m1;
  m1.flow = {-0.5 * x, -2.0 * y};
  m1.domain = SemialgebraicSet(2);
  m1.domain.add_constraint(-1.0 * x);
  m1.domain.add_interval(1, -2.0, 2.0);
  sys.add_mode(std::move(m0));
  sys.add_mode(std::move(m1));
  SemialgebraicSet surface(2);
  surface.add_constraint(x);
  surface.add_constraint(-1.0 * x);
  sys.add_jump({0, 1, surface, {}, ""});
  sys.add_jump({1, 0, surface, {}, ""});

  SemialgebraicSet x0(2), xu(2);
  x0.add_ball({0, 1}, 0.5);
  xu.add_ball({0, 1}, 0.2);
  // Unsafe = annulus complement trick is not semialgebraic here; instead use
  // a far box:
  xu = SemialgebraicSet(2);
  xu.add_interval(0, 1.5, 2.0);
  xu.add_interval(1, 1.5, 2.0);
  BarrierOptions opt;
  opt.certificate_degree = 2;
  opt.common_certificate = false;
  const BarrierResult r = BarrierCertifier(opt).certify(sys, x0, xu);
  ASSERT_TRUE(r.success) << r.message;
  EXPECT_EQ(r.certificates.size(), 2u);
}

}  // namespace
}  // namespace soslock::core
