// Tests for the fault-injection framework (util/fault) and the resilience
// behavior at every injection site:
//
//   * registry mechanics: arm/disarm/reset, fire_after + times windows,
//     traversal/fired counters, callback arming, the known-site table;
//   * each named site, fired deterministically, ends in a successful
//     recovery (RecoveryRecord present) or a typed terminal status — never a
//     hang or a raw uncaught exception: IPM factorization failure, NaN into
//     an IPM/ADMM iterate, ResidentPool thread death (+ respawn), async
//     worker silent exit (consensus stall → sync fallback), mailbox
//     corruption (divergence watchdog → sync fallback), lowering-pass
//     exception (caches untouched), structure-cache eviction race.
//
// The scenario tests are skipped when SOSLOCK_FAULTS is compiled out
// (Release); the registry tests always run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "sdp/admm.hpp"
#include "sdp/ipm.hpp"
#include "sdp/lowering.hpp"
#include "sdp/resilience.hpp"
#include "sdp/solver.hpp"
#include "sdp/structure.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace soslock {
namespace {

using linalg::Matrix;
using sdp::Lowering;
using sdp::LoweringOptions;
using sdp::Problem;
using sdp::Solution;
using sdp::SolveStatus;
using util::FaultInjectedError;
using util::FaultInjector;
namespace site = util::fault_site;

#if defined(SOSLOCK_FAULTS)
constexpr bool kFaultsCompiled = true;
#else
constexpr bool kFaultsCompiled = false;
#endif

/// Random feasible min-trace SDP (b = A(X*) for a random PSD X*).
Problem random_feasible_sdp(std::uint64_t seed, std::size_t n = 5, std::size_t m = 4) {
  util::Rng rng(seed);
  Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1.0, 1.0);
  const Matrix xstar = linalg::transposed_times(g, g);

  Problem p;
  const std::size_t b = p.add_block(n);
  p.set_block_objective(b, Matrix::identity(n));
  for (std::size_t i = 0; i < m; ++i) {
    sdp::Row row;
    sdp::SparseSym a;
    for (int k = 0; k < 4; ++k) {
      const std::size_t r = rng.index(n);
      const std::size_t c = rng.index(n);
      a.add(std::min(r, c), std::max(r, c), rng.uniform(-1.0, 1.0));
    }
    if (a.empty()) a.add(0, 0, 1.0);
    Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[b] = a;
    p.add_row(std::move(row));
  }
  return p;
}

/// Feasible banded min-trace SDP; chordal decomposition splits it into a
/// chain of small cliques so every async worker owns blocks.
Problem banded_sdp(std::size_t n) {
  Problem p;
  const std::size_t blk = p.add_block(n);
  p.set_block_objective(blk, Matrix::identity(n));
  Matrix xstar(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    xstar(i, i) = 2.0 + 0.1 * static_cast<double>(i % 3);
    if (i + 1 < n) {
      xstar(i, i + 1) = 0.7;
      xstar(i + 1, i) = 0.7;
    }
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    sdp::Row row;
    sdp::SparseSym a;
    a.add(i, i, 1.0);
    a.add(i, i + 1, 0.5 + 0.1 * static_cast<double>(i % 2));
    a.add(i + 1, i + 1, -0.3);
    Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[blk] = std::move(a);
    p.add_row(std::move(row));
  }
  return p;
}

LoweringOptions chordal_lowering(std::size_t min_block_size) {
  LoweringOptions low;
  low.sparsity = sdp::SparsityOptions::Chordal;
  low.chordal.min_block_size = min_block_size;
  return low;
}

sdp::AdmmOptions async_options(std::size_t workers, double stall_seconds) {
  sdp::AdmmOptions opt;
  opt.threads = 1;
  opt.tolerance = 1e-5;
  opt.async = true;
  opt.workers = workers;
  opt.max_staleness = 0;
  opt.worker_stall_seconds = stall_seconds;
  return opt;
}

/// Every scenario starts and ends with a clean registry, so a failing test
/// can never leave a site armed for its neighbors.
class FaultScenario : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::reset(); }
  void TearDown() override { FaultInjector::reset(); }
};

TEST(FaultRegistry, UnarmedSitesNeverFireOrCount) {
  FaultInjector::reset();
  EXPECT_FALSE(FaultInjector::should_fire(site::kIpmFactorization));
  EXPECT_EQ(FaultInjector::traversals(site::kIpmFactorization), 0);
  EXPECT_EQ(FaultInjector::fired(site::kIpmFactorization), 0);
}

TEST(FaultRegistry, FireAfterAndTimesWindows) {
  FaultInjector::reset();
  FaultInjector::arm(site::kIterateNan, /*fire_after=*/2, /*times=*/2);
  EXPECT_FALSE(FaultInjector::should_fire(site::kIterateNan));  // traversal 0
  EXPECT_FALSE(FaultInjector::should_fire(site::kIterateNan));  // traversal 1
  EXPECT_TRUE(FaultInjector::should_fire(site::kIterateNan));   // fires
  EXPECT_TRUE(FaultInjector::should_fire(site::kIterateNan));   // fires
  EXPECT_FALSE(FaultInjector::should_fire(site::kIterateNan));  // exhausted
  EXPECT_EQ(FaultInjector::traversals(site::kIterateNan), 5);
  EXPECT_EQ(FaultInjector::fired(site::kIterateNan), 2);

  FaultInjector::disarm(site::kIterateNan);
  EXPECT_FALSE(FaultInjector::should_fire(site::kIterateNan));
  FaultInjector::reset();
  EXPECT_EQ(FaultInjector::traversals(site::kIterateNan), 0);
}

TEST(FaultRegistry, CallbackRunsInsteadOfFiring) {
  FaultInjector::reset();
  int calls = 0;
  FaultInjector::arm_callback(site::kLoweringPass, [&calls] { ++calls; });
  // The callback replaces the effect: the site observes "no fault", but the
  // hook (e.g. a test's cancellation trigger) runs exactly once.
  EXPECT_FALSE(FaultInjector::should_fire(site::kLoweringPass));
  EXPECT_FALSE(FaultInjector::should_fire(site::kLoweringPass));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(FaultInjector::fired(site::kLoweringPass), 1);
  FaultInjector::reset();
}

TEST(FaultRegistry, KnownSitesCoverTheInjectionTable) {
  const std::vector<std::string> sites = FaultInjector::known_sites();
  for (const char* expected :
       {site::kIpmFactorization, site::kIpmFp32Factor, site::kIterateNan,
        site::kPoolWorkerDeath, site::kAdmmWorkerExit, site::kAdmmMailboxCorrupt,
        site::kLoweringPass, site::kCacheEvict}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << expected;
  }
  EXPECT_EQ(sites.size(), 8u);
}

TEST_F(FaultScenario, IpmFactorizationFaultIsTypedNotThrown) {
  if (!kFaultsCompiled) GTEST_SKIP() << "SOSLOCK_FAULTS compiled out";
  FaultInjector::arm(site::kIpmFactorization);
  sdp::SolveContext context;
  const Solution sol = sdp::IpmSolver().solve(random_feasible_sdp(11), context);
  EXPECT_EQ(sol.status, SolveStatus::NumericalProblem);
  EXPECT_EQ(sol.faulted_phase, "factor");
  EXPECT_EQ(FaultInjector::fired(site::kIpmFactorization), 1);
}

TEST_F(FaultScenario, ResilientSolveRetriesPastIpmFactorizationFault) {
  if (!kFaultsCompiled) GTEST_SKIP() << "SOSLOCK_FAULTS compiled out";
  FaultInjector::arm(site::kIpmFactorization);
  sdp::SolveContext context;
  sdp::SolverConfig config;
  config.backend = "ipm";
  const Solution sol = sdp::resilient_solve(random_feasible_sdp(11), context, config);
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
  ASSERT_FALSE(sol.recoveries.empty());
  EXPECT_EQ(sol.recoveries[0].action, "retry");
  EXPECT_EQ(sol.recoveries[0].from, "ipm");
  EXPECT_EQ(sol.recoveries[0].to, "ipm");
  EXPECT_NE(sol.recoveries[0].reason.find("NumericalProblem"), std::string::npos);
}

TEST_F(FaultScenario, IpmIterateNanTripsTheWatchdog) {
  if (!kFaultsCompiled) GTEST_SKIP() << "SOSLOCK_FAULTS compiled out";
  FaultInjector::arm(site::kIterateNan, /*fire_after=*/2);
  sdp::SolveContext context;
  const Solution sol = sdp::IpmSolver().solve(random_feasible_sdp(7), context);
  EXPECT_EQ(sol.status, SolveStatus::Diverged);
  EXPECT_FALSE(sol.faulted_phase.empty());

  // The same failure through the resilience layer recovers on the retry.
  FaultInjector::reset();
  FaultInjector::arm(site::kIterateNan, /*fire_after=*/2);
  sdp::SolveContext retry_context;
  sdp::SolverConfig config;
  config.backend = "ipm";
  const Solution rescued =
      sdp::resilient_solve(random_feasible_sdp(7), retry_context, config);
  EXPECT_EQ(rescued.status, SolveStatus::Optimal);
  ASSERT_FALSE(rescued.recoveries.empty());
  EXPECT_NE(rescued.recoveries[0].reason.find("Diverged"), std::string::npos);
}

TEST_F(FaultScenario, AdmmIterateNanBailsWithPhaseNamed) {
  if (!kFaultsCompiled) GTEST_SKIP() << "SOSLOCK_FAULTS compiled out";
  const Lowering low = sdp::lower(banded_sdp(20), chordal_lowering(8));
  ASSERT_TRUE(low.decomposed());
  FaultInjector::arm(site::kIterateNan, /*fire_after=*/3);
  sdp::AdmmOptions opt;
  opt.threads = 1;
  sdp::SolveContext context;
  const Solution sol = sdp::AdmmSolver(opt).solve(low.problem, context);
  // Satellite fix: the poisoned iterate stops at the watchdog (phase named),
  // not after silently burning max_iterations on NaN residuals.
  EXPECT_EQ(sol.status, SolveStatus::Diverged);
  EXPECT_FALSE(sol.faulted_phase.empty());
  EXPECT_LT(sol.iterations, opt.max_iterations);
}

TEST_F(FaultScenario, ResidentPoolWorkerDeathIsTypedAndRespawned) {
  if (!kFaultsCompiled) GTEST_SKIP() << "SOSLOCK_FAULTS compiled out";
  util::ResidentPool pool(2);
  std::atomic<int> runs{0};
  FaultInjector::arm(site::kPoolWorkerDeath);
  pool.start([&runs](std::size_t) { runs.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_THROW(pool.join(), util::WorkerDeath);
  EXPECT_EQ(runs.load(), 1);  // the surviving worker still ran its round

  // Self-healing: the next round reaps the dead thread, respawns it, and
  // runs at full width again.
  pool.start([&runs](std::size_t) { runs.fetch_add(1, std::memory_order_relaxed); });
  pool.join();
  EXPECT_EQ(runs.load(), 3);
  EXPECT_EQ(pool.respawns(), 1u);
}

TEST_F(FaultScenario, AsyncWorkerSilentExitFallsBackToLockstep) {
  if (!kFaultsCompiled) GTEST_SKIP() << "SOSLOCK_FAULTS compiled out";
  const Lowering low = sdp::lower(banded_sdp(30), chordal_lowering(8));
  ASSERT_TRUE(low.decomposed());
  FaultInjector::arm(site::kAdmmWorkerExit);
  sdp::SolveContext context;
  const Solution sol = sdp::AdmmSolver(async_options(2, /*stall_seconds=*/0.2))
                           .solve(low.problem, context);
  // The dead worker never posts a round; the bounded consensus wait trips,
  // and the solve self-heals through the synchronous lockstep fallback.
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
  ASSERT_EQ(sol.recoveries.size(), 1u);
  EXPECT_EQ(sol.recoveries[0].action, "sync-fallback");
  EXPECT_EQ(sol.recoveries[0].from, "admm-async");
  EXPECT_EQ(sol.recoveries[0].to, "admm-sync");
  EXPECT_EQ(sol.recoveries[0].reason, "worker-stall");
}

TEST_F(FaultScenario, MailboxCorruptionDivergesThenFallsBackToLockstep) {
  if (!kFaultsCompiled) GTEST_SKIP() << "SOSLOCK_FAULTS compiled out";
  const Lowering low = sdp::lower(banded_sdp(30), chordal_lowering(8));
  ASSERT_TRUE(low.decomposed());
  FaultInjector::arm(site::kAdmmMailboxCorrupt);
  sdp::SolveContext context;
  const Solution sol = sdp::AdmmSolver(async_options(2, /*stall_seconds=*/5.0))
                           .solve(low.problem, context);
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
  ASSERT_EQ(sol.recoveries.size(), 1u);
  EXPECT_EQ(sol.recoveries[0].action, "sync-fallback");
  EXPECT_EQ(sol.recoveries[0].reason.rfind("diverged", 0), 0u)
      << sol.recoveries[0].reason;
}

TEST_F(FaultScenario, AsyncFaultWithFallbackDisabledIsTypedTerminal) {
  if (!kFaultsCompiled) GTEST_SKIP() << "SOSLOCK_FAULTS compiled out";
  const Lowering low = sdp::lower(banded_sdp(30), chordal_lowering(8));
  FaultInjector::arm(site::kAdmmWorkerExit);
  sdp::AdmmOptions opt = async_options(2, /*stall_seconds=*/0.2);
  opt.sync_fallback = false;
  sdp::SolveContext context;
  const Solution sol = sdp::AdmmSolver(opt).solve(low.problem, context);
  EXPECT_EQ(sol.status, SolveStatus::Faulted);
  EXPECT_EQ(sol.faulted_phase, "worker-stall");
  EXPECT_TRUE(sol.recoveries.empty());
}

TEST_F(FaultScenario, LoweringPassFaultLeavesCachesUntouched) {
  if (!kFaultsCompiled) GTEST_SKIP() << "SOSLOCK_FAULTS compiled out";
  FaultInjector::arm(site::kLoweringPass);
  EXPECT_THROW(sdp::lower(banded_sdp(22), chordal_lowering(8)), FaultInjectedError);

  // The aborted pipeline published nothing: the same lowering now runs
  // clean, and the lowered problem solves and certifies as usual.
  const Lowering low = sdp::lower(banded_sdp(22), chordal_lowering(8));
  ASSERT_TRUE(low.decomposed());
  sdp::AdmmOptions opt;
  opt.threads = 1;
  sdp::SolveContext context;
  EXPECT_EQ(sdp::AdmmSolver(opt).solve(low.problem, context).status,
            SolveStatus::Optimal);
}

TEST_F(FaultScenario, CacheEvictionRaceNeverCorruptsServedStructures) {
  if (!kFaultsCompiled) GTEST_SKIP() << "SOSLOCK_FAULTS compiled out";
  sdp::StructureCache& cache = sdp::StructureCache::global();
  const Problem p = random_feasible_sdp(99, 6, 5);
  const auto before = cache.telemetry();
  FaultInjector::arm(site::kCacheEvict);
  // Miss path with the whole cache flushed mid-build: the caller's
  // shared_ptr keeps the structure alive and the re-insert is consistent.
  const auto first = cache.get(p);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(FaultInjector::fired(site::kCacheEvict), 1);
  const auto second = cache.get(p);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->fingerprint, first->fingerprint);
  EXPECT_EQ(second->num_rows, p.num_rows());
  const auto after = cache.telemetry();
  EXPECT_GE(after.evictions, before.evictions);
  // And a full solve through the repopulated cache still certifies.
  sdp::SolveContext context;
  EXPECT_EQ(sdp::IpmSolver().solve(p, context).status, SolveStatus::Optimal);
}

}  // namespace
}  // namespace soslock
