// Tests for the SOS programming layer: known SOS / non-SOS polynomials,
// S-procedure facts, optimization, and the independent certificate checker.
#include <gtest/gtest.h>

#include <cmath>

#include "poly/basis.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"
#include "util/rng.hpp"

namespace soslock::sos {
namespace {

using poly::LinExpr;
using poly::Monomial;
using poly::Polynomial;
using poly::PolyLin;

Polynomial var(std::size_t nvars, std::size_t i) { return Polynomial::variable(nvars, i); }

TEST(Sos, ObviousSosAccepted) {
  // (x - y)^2 + (x + 2y)^2
  const Polynomial x = var(2, 0), y = var(2, 1);
  const Polynomial p = (x - y) * (x - y) + (x + 2.0 * y) * (x + 2.0 * y);
  EXPECT_TRUE(is_sos_numeric(p));
}

TEST(Sos, NegativePolynomialRejected) {
  const Polynomial x = var(1, 0);
  const Polynomial p = -1.0 * x * x - 1.0;
  EXPECT_FALSE(is_sos_numeric(p));
}

TEST(Sos, IndefiniteQuadraticRejected) {
  const Polynomial x = var(2, 0), y = var(2, 1);
  EXPECT_FALSE(is_sos_numeric(x * y));
}

TEST(Sos, MotzkinNotSos) {
  // x^4 y^2 + x^2 y^4 - 3 x^2 y^2 + 1: nonnegative but famously not SOS.
  const Polynomial x = var(2, 0), y = var(2, 1);
  const Polynomial p =
      x.pow(4) * y.pow(2) + x.pow(2) * y.pow(4) - 3.0 * x.pow(2) * y.pow(2) + 1.0;
  EXPECT_FALSE(is_sos_numeric(p));
}

TEST(Sos, MotzkinTimesNormIsSos) {
  // (x^2 + y^2 + 1) * Motzkin IS a sum of squares (classical fact).
  const Polynomial x = var(2, 0), y = var(2, 1);
  const Polynomial motzkin =
      x.pow(4) * y.pow(2) + x.pow(2) * y.pow(4) - 3.0 * x.pow(2) * y.pow(2) + 1.0;
  const Polynomial p = (x * x + y * y + 1.0) * motzkin;
  EXPECT_TRUE(is_sos_numeric(p));
}

TEST(Sos, ShiftedQuarticBoundary) {
  // x^4 - 2x^2 + 1 = (x^2 - 1)^2: SOS on the boundary of the cone.
  const Polynomial x = var(1, 0);
  const Polynomial p = x.pow(4) - 2.0 * x.pow(2) + 1.0;
  EXPECT_TRUE(is_sos_numeric(p));
}

TEST(Sos, SmallNegativeDipRejected) {
  // x^4 - 2x^2 + 0.9 dips below zero near |x|=1.
  const Polynomial x = var(1, 0);
  const Polynomial p = x.pow(4) - 2.0 * x.pow(2) + 0.9;
  EXPECT_FALSE(is_sos_numeric(p));
}

class UnivariateNonneg : public ::testing::TestWithParam<double> {};

// Every nonnegative univariate polynomial is SOS: (x^2 - a)^2 + c, c >= 0.
TEST_P(UnivariateNonneg, IsSos) {
  const double a = GetParam();
  const Polynomial x = var(1, 0);
  const Polynomial p = (x * x - a) * (x * x - a) + 0.1;
  EXPECT_TRUE(is_sos_numeric(p));
}

INSTANTIATE_TEST_SUITE_P(Shifts, UnivariateNonneg, ::testing::Values(0.0, 0.5, 1.0, 2.0, 5.0));

TEST(SosProgram, FeasibilityWithFreePolynomial) {
  // Find q(x) with x^2 + q(x) ∈ Σ and q(0) = -1 (e.g. q = -1 works only if
  // x^2 - 1 ∈ Σ, which is false, so q must grow; q = x^2 - 1 won't work
  // either: 2x^2 - 1 not ≥ 0 ... but q = x^4 - 1 gives x^4 + x^2 - 1, still
  // negative at 0... any feasible q needs q(0) = -1 and x^2+q ≥ 0, e.g.
  // q = 2x^2 - 1 + ... no: at x=0 value -1 < 0. Infeasible? No: p(0) =
  // q(0) = -1 < 0 always, so the program IS infeasible.
  SosProgram prog(1);
  const PolyLin q = prog.add_poly(4, 0, "q");
  prog.add_linear_eq(q.coefficient(Monomial(1)) + LinExpr(1.0), "q(0) = -1");
  PolyLin target = q;
  target += PolyLin(var(1, 0) * var(1, 0));
  prog.add_sos_constraint(target, "x^2 + q in SOS");
  const SolveResult r = prog.solve();
  EXPECT_FALSE(r.feasible && audit(prog, r).ok);
}

TEST(SosProgram, LowerBoundOfQuartic) {
  // gamma* = min x^4 - 3x^2 + 2 = 2 - 9/4 = -0.25 at x^2 = 3/2.
  // maximize gamma s.t. p - gamma ∈ Σ (exact for univariate).
  SosProgram prog(1);
  const Polynomial x = var(1, 0);
  const Polynomial p = x.pow(4) - 3.0 * x.pow(2) + 2.0;
  const LinExpr gamma = prog.add_scalar("gamma");
  PolyLin expr(p);
  PolyLin g(1);
  g.add_term(Monomial(1), gamma);
  expr -= g;
  prog.add_sos_constraint(expr, "p - gamma");
  prog.maximize(gamma);
  const SolveResult r = prog.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, -0.25, 1e-4);
}

TEST(SosProgram, SProcedureIntervalBound) {
  // Certify min of p(x) = x on [1, 3] is >= 1 - tol:
  // x - c - sigma*(x-1)(3-x) ∈ Σ with sigma ∈ Σ; maximize c -> 1.
  SosProgram prog(1);
  const Polynomial x = var(1, 0);
  const Polynomial interval = (x - 1.0) * (Polynomial::constant(1, 3.0) - x);
  const LinExpr c = prog.add_scalar("c");
  const PolyLin sigma = prog.add_sos_poly(2, 0, "sigma");
  PolyLin expr(x);
  PolyLin cterm(1);
  cterm.add_term(Monomial(1), c);
  expr -= cterm;
  expr -= sigma * interval;
  prog.add_sos_constraint(expr, "bound");
  prog.maximize(c);
  const SolveResult r = prog.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 1.0, 1e-4);
}

TEST(SosProgram, LyapunovForStableLinearSystem) {
  // f = (-x + y, -x - y): find V = quadratic SOS with -V̇ ∈ Σ and V - 0.1|x|^2 ∈ Σ.
  SosProgram prog(2);
  const Polynomial x = var(2, 0), y = var(2, 1);
  const std::vector<Polynomial> f = {-1.0 * x + y, -1.0 * x - y};
  const PolyLin v = prog.add_poly(poly::monomials_up_to(2, 2, 2), "V");
  PolyLin pos = v;
  pos -= PolyLin(0.1 * (x * x + y * y));
  prog.add_sos_constraint(pos, "V pos");
  PolyLin dec = -v.lie_derivative(f);
  dec -= PolyLin(0.01 * (x * x + y * y));
  prog.add_sos_constraint(dec, "V dec");
  const SolveResult r = prog.solve();
  ASSERT_TRUE(r.feasible);
  const AuditReport a = audit(prog, r);
  EXPECT_TRUE(a.ok) << (a.failures.empty() ? "" : a.failures.front());
  // The solved V must actually decrease along f at a sample point.
  const Polynomial v_num = r.value(v);
  const Polynomial vdot = v_num.lie_derivative(f);
  EXPECT_LT(vdot.eval({0.5, -0.3}), 0.0);
  EXPECT_GT(v_num.eval({0.5, -0.3}), 0.0);
}

TEST(SosProgram, UnstableLinearSystemHasNoLyapunov) {
  // f = (x, y) is anti-stable: the same program must be infeasible.
  SosProgram prog(2);
  const Polynomial x = var(2, 0), y = var(2, 1);
  const std::vector<Polynomial> f = {x, y};
  const PolyLin v = prog.add_poly(poly::monomials_up_to(2, 2, 2), "V");
  PolyLin pos = v;
  pos -= PolyLin(0.1 * (x * x + y * y));
  prog.add_sos_constraint(pos, "V pos");
  PolyLin dec = -v.lie_derivative(f);
  dec -= PolyLin(0.01 * (x * x + y * y));
  prog.add_sos_constraint(dec, "V dec");
  const SolveResult r = prog.solve();
  EXPECT_FALSE(r.feasible && audit(prog, r).ok);
}

TEST(Checker, GramIdentityDetectsCorruption) {
  const Polynomial x = var(1, 0);
  const Polynomial p = x * x + 1.0;
  SosProgram prog(1);
  prog.add_sos_constraint(p, "p");
  const SolveResult r = prog.solve();
  ASSERT_TRUE(r.feasible);
  GramCertificate cert = r.grams.front();
  CheckReport ok = check_gram_identity(p, cert);
  EXPECT_TRUE(ok.ok);
  // Corrupt the Gram matrix: identity must now fail.
  cert.gram(0, 0) += 0.5;
  CheckReport bad = check_gram_identity(p, cert);
  EXPECT_FALSE(bad.ok);
  EXPECT_GT(bad.residual, 0.1);
}

TEST(Checker, PsdViolationDetected) {
  GramCertificate cert;
  cert.basis = {Monomial(1), Monomial::variable(1, 0)};
  cert.gram = linalg::Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});  // indefinite
  // p = basis' G basis = 1 + 4x + x^2; identity holds, PSD fails.
  const Polynomial x = var(1, 0);
  const Polynomial p = x * x + 4.0 * x + 1.0;
  const CheckReport report = check_gram_identity(p, cert);
  EXPECT_FALSE(report.ok);
  EXPECT_LT(report.min_eigenvalue, -0.5);
}

TEST(Checker, SosDecompositionReconstructs) {
  const Polynomial x = var(2, 0), y = var(2, 1);
  const Polynomial p = 2.0 * x * x + 2.0 * x * y + y * y + 1.0;
  SosProgram prog(2);
  prog.add_sos_constraint(p, "p");
  const SolveResult r = prog.solve();
  ASSERT_TRUE(r.feasible);
  const auto squares = sos_decomposition(r.grams.front(), 2);
  Polynomial sum(2);
  for (const Polynomial& q : squares) sum += q * q;
  EXPECT_LT((sum - p).coeff_norm_inf(), 1e-4);
}

TEST(Checker, SampleMinimumFindsNegativeRegion)
{
  const Polynomial x = var(1, 0);
  const Polynomial p = x * x - 1.0;  // negative on (-1, 1)
  util::Rng rng(5);
  hybrid::SemialgebraicSet all(1);
  const SampleReport rep = sample_minimum(p, all, {{-2.0, 2.0}}, 500, rng);
  EXPECT_LT(rep.min_value, -0.8);
  EXPECT_EQ(rep.inside, 500u);
}

TEST(SosProgram, LinearInequalityAndEquality) {
  // max t s.t. t <= 3 (ge) and s == 2t (eq), s <= 10 -> t = 3.
  SosProgram prog(1);
  const LinExpr t = prog.add_scalar("t");
  const LinExpr s = prog.add_scalar("s");
  prog.add_linear_ge(LinExpr(3.0) - t, "t<=3");
  prog.add_linear_eq(s - 2.0 * t, "s=2t");
  prog.add_linear_ge(LinExpr(10.0) - s, "s<=10");
  prog.add_linear_ge(t, "t>=0");
  prog.add_linear_ge(s, "s>=0");
  prog.maximize(t);
  const SolveResult r = prog.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.value(t), 3.0, 1e-5);
  EXPECT_NEAR(r.value(s), 6.0, 1e-4);
}

TEST(SosProgram, GramBasisPruningReducesSize) {
  // Even quartic in 2 vars: pruned basis (deg-2 monomials only, 3 entries) vs
  // full basis (6 entries).
  const Polynomial x = var(2, 0), y = var(2, 1);
  const Polynomial p = x.pow(4) + y.pow(4) + x.pow(2) * y.pow(2);
  SosProgram pruned(2), full(2);
  pruned.add_sos_constraint(p, "p", true);
  full.add_sos_constraint(p, "p", false);
  EXPECT_LT(pruned.gram_blocks().front().basis.size(),
            full.gram_blocks().front().basis.size());
  EXPECT_TRUE(pruned.solve().feasible);
  EXPECT_TRUE(full.solve().feasible);
}

TEST(SosProgram, CompileShapes) {
  SosProgram prog(2);
  const Polynomial x = var(2, 0);
  prog.add_sos_constraint(x * x + 1.0, "p");
  const sdp::Problem sdp_problem = prog.compile();
  EXPECT_GE(sdp_problem.num_blocks(), 1u);
  EXPECT_GT(sdp_problem.num_rows(), 0u);
}

}  // namespace
}  // namespace soslock::sos
