// Tests for the asynchronous clique-parallel ADMM driver (sdp/admm_async):
//
//   * max_staleness = 0 is the lockstep schedule — bit-identical to the
//     synchronous loop at every worker count, on banded and clock-tree
//     workloads (same iterates, not just the same verdict);
//   * bounded staleness >= 1 changes the schedule but never the audit:
//     verdict parity on banded chains, clustered clock trees at K = 16 and
//     K = 64, and a sweep-style LoweringCache coefficient-update chain;
//   * AdmmOptions::use_jacobi_eig routes through the shared admm_split_psd
//     in both drivers (the PR 8 parity fix);
//   * telemetry is non-degenerate and respects the staleness bound;
//   * the TSan-targeted stress test: 8 resident workers plus the consensus
//     thread hammering the mailboxes across repeated solves.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"
#include "sdp/admm.hpp"
#include "sdp/lowering.hpp"
#include "sdp/solver.hpp"
#include "sos/program.hpp"
#include "util/thread_pool.hpp"

namespace soslock {
namespace {

using linalg::Matrix;
using sdp::Lowering;
using sdp::LoweringOptions;
using sdp::Problem;
using sdp::Solution;
using sdp::SolveStatus;

/// Feasible banded min-trace SDP (the lowering/verify test family): chordal
/// decomposition splits it into a chain of small cliques — many blocks, so
/// every worker of even an 8-way partition owns some.
Problem banded_sdp(std::size_t n) {
  Problem p;
  const std::size_t blk = p.add_block(n);
  p.set_block_objective(blk, Matrix::identity(n));
  Matrix xstar(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    xstar(i, i) = 2.0 + 0.1 * static_cast<double>(i % 3);
    if (i + 1 < n) {
      xstar(i, i + 1) = 0.7;
      xstar(i + 1, i) = 0.7;
    }
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    sdp::Row row;
    sdp::SparseSym a;
    a.add(i, i, 1.0);
    a.add(i, i + 1, 0.5 + 0.1 * static_cast<double>(i % 2));
    a.add(i + 1, i + 1, -0.3);
    Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[blk] = std::move(a);
    p.add_row(std::move(row));
  }
  return p;
}

/// Clustered clock-tree coupling SDP: one large clique per leaf cluster,
/// one-entry separators — the workload the async driver is built for.
Problem clock_tree_sdp(std::size_t loops, std::size_t cluster,
                       const pll::Params& params = pll::Params::paper_third_order()) {
  pll::ClockTreeOptions tree;
  tree.loops = loops;
  tree.neighbor_coupling = 0.05;
  tree.cluster = cluster;
  tree.neighbor_hops = cluster > 0 ? cluster - 1 : 1;
  const pll::ClockTreeModel model = pll::make_clock_tree(params, tree);
  return pll::clock_tree_coupling_sdp(model.constants, tree);
}

LoweringOptions chordal_lowering(std::size_t min_block_size,
                                 std::size_t partition_workers = 0) {
  LoweringOptions low;
  low.sparsity = sdp::SparsityOptions::Chordal;
  low.chordal.min_block_size = min_block_size;
  low.partition_workers = partition_workers;
  return low;
}

Solution solve_admm(const Problem& p, const sdp::AdmmOptions& opt) {
  sdp::SolveContext context;
  return sdp::AdmmSolver(opt).solve(p, context);
}

sdp::AdmmOptions async_options(std::size_t workers, int staleness) {
  sdp::AdmmOptions opt;
  opt.threads = 1;
  opt.tolerance = 1e-5;
  opt.async = true;
  opt.workers = workers;
  opt.max_staleness = staleness;
  return opt;
}

sdp::AdmmOptions sync_options() {
  sdp::AdmmOptions opt;
  opt.threads = 1;
  opt.tolerance = 1e-5;
  return opt;
}

void expect_bit_identical(const Solution& a, const Solution& b, const char* what) {
  ASSERT_EQ(a.status, b.status) << what;
  ASSERT_EQ(a.iterations, b.iterations) << what;
  // Exact double equality on purpose: the lockstep schedule computes every
  // update from the same snapshots, so even the last bit must agree.
  EXPECT_EQ(a.primal_objective, b.primal_objective) << what;
  EXPECT_EQ(a.dual_objective, b.dual_objective) << what;
  ASSERT_EQ(a.x.size(), b.x.size()) << what;
  for (std::size_t j = 0; j < a.x.size(); ++j) {
    for (std::size_t r = 0; r < a.x[j].rows(); ++r)
      for (std::size_t c = 0; c < a.x[j].cols(); ++c)
        ASSERT_EQ(a.x[j](r, c), b.x[j](r, c)) << what << " X[" << j << "]";
  }
  ASSERT_EQ(a.y.size(), b.y.size()) << what;
  for (std::size_t i = 0; i < a.y.size(); ++i) ASSERT_EQ(a.y[i], b.y[i]) << what;
}

void expect_verdict_parity(const Solution& a, const Solution& b, const char* what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_NEAR(a.primal_objective, b.primal_objective,
              1e-3 * (1.0 + std::fabs(b.primal_objective)))
      << what;
}

void expect_sane_telemetry(const Solution& sol, int staleness_bound) {
  ASSERT_GE(sol.worker_iterations.size(), 2u);
  for (const int rounds : sol.worker_iterations) EXPECT_GT(rounds, 0);
  EXPECT_LE(sol.max_staleness_seen, staleness_bound);
  EXPECT_GT(sol.consensus_rounds, 0);
  EXPECT_TRUE(std::isfinite(sol.consensus_residual));
}

TEST(AdmmAsync, LockstepBitIdenticalToSyncOnBandedChain) {
  const Lowering low = sdp::lower(banded_sdp(30), chordal_lowering(8));
  ASSERT_TRUE(low.decomposed());
  const Solution sync = solve_admm(low.problem, sync_options());
  ASSERT_EQ(sync.status, SolveStatus::Optimal);
  for (const std::size_t workers : {2u, 4u, 8u}) {
    const Solution async =
        solve_admm(low.problem, async_options(workers, /*staleness=*/0));
    expect_bit_identical(async, sync,
                         ("banded, workers=" + std::to_string(workers)).c_str());
    expect_sane_telemetry(async, 0);
  }
}

TEST(AdmmAsync, LockstepBitIdenticalToSyncOnClockTree) {
  // Partition precomputed by the lowering pass here (the banded test above
  // exercises the driver's on-the-fly fallback).
  const Lowering low =
      sdp::lower(clock_tree_sdp(16, 4), chordal_lowering(4, /*partition_workers=*/4));
  ASSERT_TRUE(low.decomposed());
  const Solution sync = solve_admm(low.problem, sync_options());
  const Solution async = solve_admm(low.problem, async_options(4, /*staleness=*/0));
  expect_bit_identical(async, sync, "clock tree K=16");
  expect_sane_telemetry(async, 0);
}

TEST(AdmmAsync, StaleVerdictParityOnBandedChain) {
  const Lowering low = sdp::lower(banded_sdp(30), chordal_lowering(8));
  const Solution sync = solve_admm(low.problem, sync_options());
  ASSERT_EQ(sync.status, SolveStatus::Optimal);
  for (const int staleness : {1, 2}) {
    const Solution async = solve_admm(low.problem, async_options(4, staleness));
    expect_verdict_parity(async, sync,
                          ("banded, staleness=" + std::to_string(staleness)).c_str());
    expect_sane_telemetry(async, staleness);
  }
}

TEST(AdmmAsync, StaleVerdictParityOnClockTrees) {
  for (const std::size_t loops : {16u, 64u}) {
    const std::size_t cluster = loops == 16 ? 4 : 8;
    const Lowering low = sdp::lower(clock_tree_sdp(loops, cluster),
                                    chordal_lowering(4, /*partition_workers=*/4));
    ASSERT_TRUE(low.decomposed());
    const Solution sync = solve_admm(low.problem, sync_options());
    const Solution async = solve_admm(low.problem, async_options(4, /*staleness=*/2));
    expect_verdict_parity(async, sync, ("clock tree K=" + std::to_string(loops)).c_str());
    expect_sane_telemetry(async, 2);
    // The recovered (completed) solutions must agree on the audit too.
    const Solution rs = sdp::recover(sync, low);
    const Solution ra = sdp::recover(async, low);
    expect_verdict_parity(ra, rs, "recovered");
  }
}

TEST(AdmmAsync, StaleVerdictParityAcrossSweepUpdateChain) {
  // Sweep-style chain: the same structure re-lowered through the cache's
  // in-place coefficient-update pass as the design point moves; sync and
  // async must agree at every point.
  sdp::LoweringCache cache;
  const LoweringOptions options = chordal_lowering(4, /*partition_workers=*/4);
  pll::Params params = pll::Params::paper_third_order();
  for (const double kv : {160.0, 170.0, 180.0}) {
    params.kv = {kv, kv + 5.0};
    const Lowering& low = cache.lower(clock_tree_sdp(12, 4, params), options);
    ASSERT_TRUE(low.decomposed());
    const Solution sync = solve_admm(low.problem, sync_options());
    const Solution async = solve_admm(low.problem, async_options(4, /*staleness=*/1));
    expect_verdict_parity(async, sync, ("sweep kv=" + std::to_string(kv)).c_str());
  }
  EXPECT_GE(cache.updates(), 1u);
}

TEST(AdmmAsync, JacobiEigParityThroughSharedSplit) {
  // use_jacobi_eig routes through admm_split_psd in BOTH drivers: lockstep
  // async with Jacobi must replay sync-with-Jacobi bit for bit, and the two
  // eigensolvers must agree on the verdict in either driver.
  const Lowering low = sdp::lower(banded_sdp(24), chordal_lowering(8));
  sdp::AdmmOptions sync_jac = sync_options();
  sync_jac.use_jacobi_eig = true;
  sdp::AdmmOptions async_jac = async_options(4, /*staleness=*/0);
  async_jac.use_jacobi_eig = true;

  const Solution sj = solve_admm(low.problem, sync_jac);
  const Solution aj = solve_admm(low.problem, async_jac);
  expect_bit_identical(aj, sj, "jacobi lockstep");

  const Solution sq = solve_admm(low.problem, sync_options());
  expect_verdict_parity(sj, sq, "jacobi vs ql, sync");
  const Solution aq = solve_admm(low.problem, async_options(4, /*staleness=*/1));
  expect_verdict_parity(aj, aq, "jacobi vs ql, async");
}

TEST(AdmmAsync, FallsBackToSyncWhenPartitionDegenerates) {
  // A single dense block cannot be split across workers: the async driver
  // must quietly run the synchronous loop (and report no async telemetry).
  Problem p = banded_sdp(8);  // below min_block_size: stays one block
  const Lowering low = sdp::lower(std::move(p), chordal_lowering(24));
  const Solution sync = solve_admm(low.problem, sync_options());
  const Solution async = solve_admm(low.problem, async_options(4, /*staleness=*/2));
  expect_bit_identical(async, sync, "degenerate partition");
  EXPECT_TRUE(async.worker_iterations.empty());
}

TEST(AdmmAsync, SolverConfigWiresPartitionPassThroughSosProgram) {
  // SosProgram::set_sparsity(config) must request the lowering pipeline's
  // subtree-partition pass exactly when the config selects the async driver,
  // resolving workers = 0 to the hardware count.
  sdp::SolverConfig config;
  config.sparsity = sdp::SparsityOptions::Chordal;
  config.admm.async = true;
  config.admm.workers = 3;
  sos::SosProgram program(2);
  program.set_sparsity(config);
  EXPECT_EQ(program.partition_workers(), 3u);

  config.admm.workers = 0;
  program.set_sparsity(config);
  EXPECT_EQ(program.partition_workers(), util::ThreadPool::hardware_threads());

  config.admm.async = false;
  program.set_sparsity(config);
  EXPECT_EQ(program.partition_workers(), 0u);
}

TEST(AdmmAsync, SolveStatsAggregateAsyncTelemetry) {
  sos::SolveResult result;
  result.sdp.backend = "admm";
  result.sdp.iterations = 10;
  result.sdp.worker_iterations = {5, 6};
  result.sdp.max_staleness_seen = 2;
  result.sdp.consensus_rounds = 7;

  sos::SolveStats stats;
  stats.absorb(result);
  sos::SolveResult sync_result;
  sync_result.sdp.backend = "admm";
  stats.absorb(sync_result);  // no worker telemetry: not an async solve
  EXPECT_EQ(stats.async_solves, 1);
  EXPECT_EQ(stats.max_staleness_seen, 2);
  EXPECT_EQ(stats.consensus_rounds, 7);
  EXPECT_NE(stats.str().find("async=1(stale<=2)"), std::string::npos) << stats.str();

  sos::SolveStats merged;
  merged.merge(stats);
  merged.merge(stats);
  EXPECT_EQ(merged.async_solves, 2);
  EXPECT_EQ(merged.consensus_rounds, 14);

  sos::SolveStats plain;
  plain.absorb(sync_result);
  EXPECT_EQ(plain.str().find("async"), std::string::npos) << plain.str();
}

TEST(AdmmAsync, EightWorkerMailboxStress) {
  // TSan target (the CI sanitizer matrix runs this file under SOSLOCK_THREADS
  // = 4): 8 resident workers + the consensus thread exchanging separator
  // state through the mailboxes, repeated so start/join teardown races and
  // mailbox reuse get hammered, at staleness bounds 0, 1 and 2.
  const Lowering low =
      sdp::lower(clock_tree_sdp(24, 4), chordal_lowering(4, /*partition_workers=*/8));
  ASSERT_TRUE(low.decomposed());
  const Solution sync = solve_admm(low.problem, sync_options());
  for (const int staleness : {0, 1, 2}) {
    const Solution async = solve_admm(low.problem, async_options(8, staleness));
    expect_verdict_parity(async, sync,
                          ("stress staleness=" + std::to_string(staleness)).c_str());
    expect_sane_telemetry(async, staleness);
  }
}

}  // namespace
}  // namespace soslock
