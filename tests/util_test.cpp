// Tests for the utility layer: deterministic RNG, timers, CSV, ASCII plots.
#include <gtest/gtest.h>

#include <cmath>

#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace soslock::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sumsq += u * u;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.normal();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Rng, IndexBounds) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) EXPECT_LT(rng.index(7), 7u);
  EXPECT_EQ(rng.index(0), 0u);
}

TEST(Rng, UniformVectorShape) {
  Rng rng(19);
  const auto v = rng.uniform_vector(5, 1.0, 2.0);
  EXPECT_EQ(v.size(), 5u);
  for (double x : v) {
    EXPECT_GE(x, 1.0);
    EXPECT_LT(x, 2.0);
  }
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  double acc = 0.0;
  for (int i = 0; i < 100000; ++i) acc += std::sqrt(static_cast<double>(i));
  volatile double sink = acc;
  (void)sink;
  EXPECT_GT(t.seconds(), 0.0);
  const double before = t.seconds();
  t.reset();
  EXPECT_LE(t.seconds(), before + 1.0);
}

TEST(TimingTable, TotalsAndRendering) {
  TimingTable table;
  table.add("step one", 1.5, "note");
  table.add("step two", 0.5);
  EXPECT_DOUBLE_EQ(table.total_seconds(), 2.0);
  const std::string s = table.str("title");
  EXPECT_NE(s.find("step one"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
  EXPECT_NE(s.find("note"), std::string::npos);
}

TEST(Csv, RoundTripFormatting) {
  CsvWriter csv({"a", "b"});
  csv.add_row(std::vector<double>{1.5, -2.0});
  csv.add_row(std::vector<std::string>{"x", "y"});
  const std::string s = csv.str();
  EXPECT_EQ(s, "a,b\n1.5,-2\nx,y\n");
  EXPECT_EQ(csv.rows(), 2u);
}

TEST(Csv, WriteToFile) {
  CsvWriter csv({"h"});
  csv.add_row(std::vector<double>{42.0});
  const std::string path = "/tmp/soslock_csv_test.csv";
  ASSERT_TRUE(csv.write(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_STREQ(buf, "h\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(AsciiPlot, PointsLandInGrid) {
  AsciiPlot plot(-1.0, 1.0, -1.0, 1.0, 20, 10);
  plot.add({"s", '*', {{0.0, 0.0}, {0.9, 0.9}}});
  const std::string s = plot.str("t", "x", "y");
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("t"), std::string::npos);
  EXPECT_NE(s.find("s"), std::string::npos);  // legend
}

TEST(AsciiPlot, OutOfRangePointsIgnored) {
  AsciiPlot plot(-1.0, 1.0, -1.0, 1.0, 20, 10);
  plot.add_point(5.0, 5.0, '#');
  EXPECT_EQ(plot.str("t", "x", "y").find('#'), std::string::npos);
}

}  // namespace
}  // namespace soslock::util
