// Unit and property tests for the dense linear algebra kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "util/rng.hpp"

namespace soslock::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix random_spd(std::size_t n, util::Rng& rng, double shift = 0.5) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix s = transposed_times(a, a);
  for (std::size_t i = 0; i < n; ++i) s(i, i) += shift;
  return s;
}

TEST(Matrix, IdentityAndDiag) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(i3(0, 0), 1.0);
  EXPECT_EQ(i3(0, 1), 0.0);
  const Matrix d = Matrix::diag({2.0, 3.0});
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, MultiplyKnown) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, TransposeRoundTrip) {
  util::Rng rng(1);
  const Matrix a = random_matrix(4, 7, rng);
  const Matrix att = a.transposed().transposed();
  EXPECT_NEAR(norm_inf(a - att), 0.0, 0.0);
}

TEST(Matrix, TransposedTimesAgreesWithExplicit) {
  util::Rng rng(2);
  const Matrix a = random_matrix(5, 3, rng);
  const Matrix b = random_matrix(5, 4, rng);
  const Matrix direct = transposed_times(a, b);
  const Matrix explicit_ = a.transposed() * b;
  EXPECT_LT(norm_inf(direct - explicit_), 1e-14);
}

TEST(Matrix, TimesTransposedAgreesWithExplicit) {
  util::Rng rng(3);
  const Matrix a = random_matrix(4, 6, rng);
  const Matrix b = random_matrix(5, 6, rng);
  const Matrix direct = times_transposed(a, b);
  const Matrix explicit_ = a * b.transposed();
  EXPECT_LT(norm_inf(direct - explicit_), 1e-14);
}

TEST(Matrix, SubtractGramAgreesWithExplicit) {
  util::Rng rng(17);
  const Matrix w = random_matrix(4, 6, rng);
  Matrix c = random_spd(6, rng);
  Matrix expected = c;
  expected -= transposed_times(w, w);
  subtract_gram(c, w);
  EXPECT_LT(norm_inf(c - expected), 1e-13);
  // Result stays exactly symmetric (upper computed, lower mirrored).
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(c(i, j), c(j, i));

  // Empty W (no overlap couplings) is a no-op.
  Matrix unchanged = expected;
  unchanged.symmetrize();
  const Matrix before = unchanged;
  subtract_gram(unchanged, Matrix(0, 6));
  EXPECT_EQ(norm_inf(unchanged - before), 0.0);
}

TEST(Matrix, FrobeniusDotSymmetry) {
  util::Rng rng(4);
  const Matrix a = random_matrix(6, 6, rng);
  const Matrix b = random_matrix(6, 6, rng);
  EXPECT_NEAR(dot(a, b), dot(b, a), 1e-12);
}

TEST(Matrix, SymmetrizeProducesSymmetric) {
  util::Rng rng(5);
  Matrix a = random_matrix(5, 5, rng);
  a.symmetrize();
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) EXPECT_DOUBLE_EQ(a(r, c), a(c, r));
}

TEST(Vector, Norms) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

class CholeskyParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyParam, ReconstructsAndSolves) {
  util::Rng rng(GetParam() * 13 + 1);
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  // L L^T == A
  const Matrix rec = times_transposed(chol->lower(), chol->lower());
  EXPECT_LT(norm_inf(rec - a), 1e-10 * std::max(1.0, norm_inf(a)));
  // Solve residual
  const Vector b = rng.uniform_vector(n, -1.0, 1.0);
  const Vector x = chol->solve(b);
  const Vector r = a * x;
  EXPECT_LT(max_abs_diff(r, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyParam, ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::factor(a).has_value());
  EXPECT_FALSE(is_positive_definite(a));
}

TEST(Cholesky, ShiftedFactorizationHandlesSingular) {
  Matrix a(3, 3);  // zero matrix: PSD but singular
  const Cholesky chol = Cholesky::factor_shifted(a);
  EXPECT_GT(chol.shift(), 0.0);
}

TEST(Cholesky, MatrixSolve) {
  util::Rng rng(11);
  const Matrix a = random_spd(6, rng);
  const Matrix b = random_matrix(6, 3, rng);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix x = chol->solve(b);
  EXPECT_LT(norm_inf(a * x - b), 1e-9);
}

TEST(Cholesky, LogDetMatchesKnown) {
  const Matrix a = Matrix::diag({2.0, 3.0, 4.0});
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_NEAR(chol->log_det(), std::log(24.0), 1e-12);
}

class LuParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuParam, SolveResidual) {
  util::Rng rng(GetParam() * 7 + 3);
  const std::size_t n = GetParam();
  const Matrix a = random_matrix(n, n, rng);
  const auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  const Vector b = rng.uniform_vector(n, -2.0, 2.0);
  const Vector x = lu->solve(b);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuParam, ::testing::Values(1, 2, 4, 8, 20, 50));

TEST(Lu, DetKnown) {
  const Matrix a = Matrix::from_rows({{2.0, 0.0}, {1.0, 3.0}});
  const auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR(lu->det(), 6.0, 1e-12);
}

TEST(Lu, SingularDetected) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_FALSE(Lu::factor(a).has_value());
}

TEST(Lu, InverseRoundTrip) {
  util::Rng rng(17);
  const Matrix a = random_spd(5, rng);
  const Matrix inv = inverse(a);
  EXPECT_LT(norm_inf(a * inv - Matrix::identity(5)), 1e-9);
}

TEST(Qr, LeastSquaresResidualOrthogonal) {
  util::Rng rng(23);
  const Matrix a = random_matrix(10, 4, rng);
  const Vector b = rng.uniform_vector(10, -1.0, 1.0);
  const Qr qr = Qr::factor(a);
  const Vector x = qr.solve_least_squares(b);
  // Normal equations: A^T (A x - b) == 0.
  Vector res = a * x;
  axpy(-1.0, b, res);
  const Vector nt = transposed_times(a, res);
  EXPECT_LT(norm_inf(nt), 1e-9);
}

TEST(Qr, ExactSolveWhenSquare) {
  util::Rng rng(29);
  const Matrix a = random_spd(5, rng);
  const Vector b = rng.uniform_vector(5, -1.0, 1.0);
  const Qr qr = Qr::factor(a);
  const Vector x = qr.solve_least_squares(b);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-8);
}

TEST(Qr, RankDetection) {
  // Rank-2 matrix embedded in 4 columns.
  util::Rng rng(31);
  const Matrix u = random_matrix(8, 2, rng);
  const Matrix v = random_matrix(4, 2, rng);
  const Matrix a = times_transposed(u, v);
  const Qr qr = Qr::factor(a);
  EXPECT_EQ(qr.rank(1e-8), 2u);
}

class EigenParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenParam, DecompositionProperties) {
  util::Rng rng(GetParam() * 5 + 11);
  const std::size_t n = GetParam();
  Matrix a = random_matrix(n, n, rng);
  a.symmetrize();
  const EigenSym es = eigen_sym(a);
  // Ascending order.
  for (std::size_t i = 1; i < n; ++i) EXPECT_LE(es.values[i - 1], es.values[i] + 1e-12);
  // Orthogonality of eigenvectors.
  const Matrix vtv = transposed_times(es.vectors, es.vectors);
  EXPECT_LT(norm_inf(vtv - Matrix::identity(n)), 1e-9);
  // Reconstruction A = V D V^T.
  const Matrix rec = es.vectors * Matrix::diag(es.values) * es.vectors.transposed();
  EXPECT_LT(norm_inf(rec - a), 1e-8 * std::max(1.0, norm_inf(a)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenParam, ::testing::Values(1, 2, 3, 6, 12, 30));

TEST(EigenSym, KnownEigenvalues) {
  const Matrix a = Matrix::from_rows({{2.0, 1.0}, {1.0, 2.0}});
  const EigenSym es = eigen_sym(a);
  EXPECT_NEAR(es.values[0], 1.0, 1e-10);
  EXPECT_NEAR(es.values[1], 3.0, 1e-10);
}

TEST(EigenSym, MinEigenvalueOfIndefinite) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_NEAR(min_eigenvalue(a), -1.0, 1e-10);
}

TEST(EigenSym, SqrtPsdSquares) {
  util::Rng rng(37);
  const Matrix a = random_spd(6, rng);
  const Matrix r = sqrt_psd(a);
  EXPECT_LT(norm_inf(r * r - a), 1e-8);
}

// --- tridiagonal-QL vs Jacobi reference parity ------------------------------

/// Both solvers must agree on eigenvalues; eigenvectors may differ by sign
/// (or basis within degenerate clusters), so parity is checked on values and
/// on the decomposition properties, not vector-by-vector.
void expect_eigen_parity(const Matrix& a, double tol) {
  const std::size_t n = a.rows();
  const EigenSym ql = eigen_sym(a);
  const EigenSym jac = eigen_sym_jacobi(a);
  ASSERT_EQ(ql.values.size(), n);
  ASSERT_EQ(jac.values.size(), n);
  const double scale = std::max(1.0, norm_inf(a));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(ql.values[i], jac.values[i], tol * scale) << "eigenvalue " << i;
  // Values-only fast path agrees with the full decomposition.
  const Vector vals = eigen_values_sym(a);
  ASSERT_EQ(vals.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(vals[i], ql.values[i], tol * scale) << "values-only " << i;
  if (n == 0) return;
  const Matrix vtv = transposed_times(ql.vectors, ql.vectors);
  EXPECT_LT(norm_inf(vtv - Matrix::identity(n)), 1e-9);
  const Matrix rec = ql.vectors * Matrix::diag(ql.values) * ql.vectors.transposed();
  EXPECT_LT(norm_inf(rec - a), tol * scale);
}

TEST(EigenSym, QlVsJacobiRandom) {
  for (std::size_t n : {2u, 3u, 7u, 16u, 33u, 64u}) {
    util::Rng rng(n * 101 + 7);
    Matrix a = random_matrix(n, n, rng);
    a.symmetrize();
    expect_eigen_parity(a, 1e-8);
  }
}

TEST(EigenSym, QlVsJacobiRankDeficient) {
  // A = G G^T with G n x r, r < n: exactly n - r zero eigenvalues.
  util::Rng rng(41);
  const std::size_t n = 20, r = 5;
  const Matrix g = random_matrix(n, r, rng);
  const Matrix a = times_transposed(g, g);
  expect_eigen_parity(a, 1e-8);
  const Vector vals = eigen_values_sym(a);
  for (std::size_t i = 0; i < n - r; ++i) EXPECT_NEAR(vals[i], 0.0, 1e-8);
  EXPECT_GT(vals[n - r], 1e-6);
}

TEST(EigenSym, QlVsJacobiClusteredEigenvalues) {
  // Diagonal with tight clusters, rotated by a random orthogonal basis (the
  // eigenvectors of a random symmetric matrix, taken from the Jacobi
  // reference): stresses the deflation logic of the QL sweep.
  util::Rng rng(43);
  const std::size_t n = 12;
  Vector d(n);
  for (std::size_t i = 0; i < n; ++i)
    d[i] = (i < 4 ? 1.0 : i < 8 ? 1.0 + 1e-9 * static_cast<double>(i) : 5.0);
  Matrix basis_seed = random_matrix(n, n, rng);
  basis_seed.symmetrize();
  const Matrix q = eigen_sym_jacobi(basis_seed).vectors;
  Matrix a = q * Matrix::diag(d) * q.transposed();
  a.symmetrize();
  expect_eigen_parity(a, 1e-8);
}

TEST(EigenSym, TinyAndEmptyMatrices) {
  expect_eigen_parity(Matrix(), 1e-12);
  Matrix one(1, 1);
  one(0, 0) = -3.5;
  expect_eigen_parity(one, 1e-12);
  EXPECT_DOUBLE_EQ(eigen_sym(one).values[0], -3.5);
  EXPECT_DOUBLE_EQ(min_eigenvalue(one), -3.5);
  EXPECT_TRUE(eigen_sym(Matrix()).values.empty());
}

// --- blocked Cholesky vs unblocked reference --------------------------------

/// Textbook unblocked lower Cholesky, the pre-overhaul reference.
bool reference_cholesky(const Matrix& a, double shift, Matrix& l) {
  const std::size_t n = a.rows();
  l = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j) + shift;
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return true;
}

TEST(Cholesky, BlockedMatchesUnblockedAcrossSizes) {
  // Sizes straddling the panel width (48), including non-multiples.
  for (std::size_t n : {1u, 2u, 17u, 47u, 48u, 49u, 96u, 117u}) {
    util::Rng rng(n * 3 + 5);
    const Matrix a = random_spd(n, rng);
    const auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value()) << "n=" << n;
    Matrix ref;
    ASSERT_TRUE(reference_cholesky(a, 0.0, ref));
    EXPECT_LT(norm_inf(chol->lower() - ref), 1e-9 * std::max(1.0, norm_inf(a)))
        << "n=" << n;
  }
}

TEST(Cholesky, BlockedShiftedIndefinitePath) {
  // Indefinite matrix larger than one panel: the unshifted attempt must fail
  // and the adaptive shift must land a factorization of A + shift I.
  util::Rng rng(53);
  const std::size_t n = 80;
  Matrix a = random_matrix(n, n, rng);
  a.symmetrize();
  a(3, 3) = -50.0;  // guarantee indefiniteness
  EXPECT_FALSE(Cholesky::factor(a).has_value());
  const Cholesky chol = Cholesky::factor_shifted(a);
  EXPECT_GT(chol.shift(), 0.0);
  Matrix shifted = a;
  for (std::size_t i = 0; i < n; ++i) shifted(i, i) += chol.shift();
  const Matrix rec = times_transposed(chol.lower(), chol.lower());
  EXPECT_LT(norm_inf(rec - shifted), 1e-7 * std::max(1.0, norm_inf(shifted)));
}

TEST(Cholesky, ExplicitInverse) {
  util::Rng rng(59);
  for (std::size_t n : {1u, 6u, 60u}) {
    const Matrix a = random_spd(n, rng);
    const auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value());
    const Matrix inv = chol->inverse();
    EXPECT_LT(norm_inf(a * inv - Matrix::identity(n)), 1e-7);
    // Symmetrized output.
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) EXPECT_DOUBLE_EQ(inv(r, c), inv(c, r));
  }
}

// --- GEMM micro-kernel vs naive triple loop ---------------------------------

Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  return c;
}

TEST(Matrix, GemmKernelMatchesNaiveOnOddShapes) {
  // Shapes chosen to miss the 4x8 register tile in every way: single
  // rows/cols, sub-tile sizes, tile size plus remainders.
  const std::size_t shapes[][3] = {{1, 1, 1},  {1, 9, 3},  {3, 2, 11}, {4, 8, 8},
                                   {5, 9, 7},  {7, 13, 5}, {8, 16, 4}, {13, 11, 17},
                                   {33, 7, 29}, {40, 64, 24}};
  int seed = 61;
  for (const auto& s : shapes) {
    util::Rng rng(seed++);
    const Matrix a = random_matrix(s[0], s[1], rng);
    const Matrix b = random_matrix(s[1], s[2], rng);
    const Matrix fast = a * b;
    const Matrix ref = naive_multiply(a, b);
    EXPECT_LT(norm_inf(fast - ref), 1e-12)
        << s[0] << "x" << s[1] << " * " << s[1] << "x" << s[2];
    // Transposed variants ride on the same kernel.
    EXPECT_LT(norm_inf(transposed_times(a.transposed(), b) - ref), 1e-12);
    EXPECT_LT(norm_inf(times_transposed(a, b.transposed()) - ref), 1e-12);
  }
}

TEST(Matrix, GemmKernelEmptyOperands) {
  const Matrix a(0, 0), b(0, 0);
  EXPECT_TRUE((a * b).empty());
  const Matrix c(3, 0), d(0, 4);
  const Matrix cd = c * d;
  EXPECT_EQ(cd.rows(), 3u);
  EXPECT_EQ(cd.cols(), 4u);
  EXPECT_NEAR(norm_inf(cd), 0.0, 0.0);
}

}  // namespace
}  // namespace soslock::linalg
