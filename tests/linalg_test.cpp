// Unit and property tests for the dense linear algebra kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/kernels.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "util/rng.hpp"

namespace soslock::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix random_spd(std::size_t n, util::Rng& rng, double shift = 0.5) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix s = transposed_times(a, a);
  for (std::size_t i = 0; i < n; ++i) s(i, i) += shift;
  return s;
}

TEST(Matrix, IdentityAndDiag) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(i3(0, 0), 1.0);
  EXPECT_EQ(i3(0, 1), 0.0);
  const Matrix d = Matrix::diag({2.0, 3.0});
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, MultiplyKnown) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, TransposeRoundTrip) {
  util::Rng rng(1);
  const Matrix a = random_matrix(4, 7, rng);
  const Matrix att = a.transposed().transposed();
  EXPECT_NEAR(norm_inf(a - att), 0.0, 0.0);
}

TEST(Matrix, TransposedTimesAgreesWithExplicit) {
  util::Rng rng(2);
  const Matrix a = random_matrix(5, 3, rng);
  const Matrix b = random_matrix(5, 4, rng);
  const Matrix direct = transposed_times(a, b);
  const Matrix explicit_ = a.transposed() * b;
  EXPECT_LT(norm_inf(direct - explicit_), 1e-14);
}

TEST(Matrix, TimesTransposedAgreesWithExplicit) {
  util::Rng rng(3);
  const Matrix a = random_matrix(4, 6, rng);
  const Matrix b = random_matrix(5, 6, rng);
  const Matrix direct = times_transposed(a, b);
  const Matrix explicit_ = a * b.transposed();
  EXPECT_LT(norm_inf(direct - explicit_), 1e-14);
}

TEST(Matrix, SubtractGramAgreesWithExplicit) {
  util::Rng rng(17);
  const Matrix w = random_matrix(4, 6, rng);
  Matrix c = random_spd(6, rng);
  Matrix expected = c;
  expected -= transposed_times(w, w);
  subtract_gram(c, w);
  EXPECT_LT(norm_inf(c - expected), 1e-13);
  // Result stays exactly symmetric (upper computed, lower mirrored).
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(c(i, j), c(j, i));

  // Empty W (no overlap couplings) is a no-op.
  Matrix unchanged = expected;
  unchanged.symmetrize();
  const Matrix before = unchanged;
  subtract_gram(unchanged, Matrix(0, 6));
  EXPECT_EQ(norm_inf(unchanged - before), 0.0);
}

TEST(Matrix, FrobeniusDotSymmetry) {
  util::Rng rng(4);
  const Matrix a = random_matrix(6, 6, rng);
  const Matrix b = random_matrix(6, 6, rng);
  EXPECT_NEAR(dot(a, b), dot(b, a), 1e-12);
}

TEST(Matrix, SymmetrizeProducesSymmetric) {
  util::Rng rng(5);
  Matrix a = random_matrix(5, 5, rng);
  a.symmetrize();
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) EXPECT_DOUBLE_EQ(a(r, c), a(c, r));
}

TEST(Vector, Norms) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

class CholeskyParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyParam, ReconstructsAndSolves) {
  util::Rng rng(GetParam() * 13 + 1);
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  // L L^T == A
  const Matrix rec = times_transposed(chol->lower(), chol->lower());
  EXPECT_LT(norm_inf(rec - a), 1e-10 * std::max(1.0, norm_inf(a)));
  // Solve residual
  const Vector b = rng.uniform_vector(n, -1.0, 1.0);
  const Vector x = chol->solve(b);
  const Vector r = a * x;
  EXPECT_LT(max_abs_diff(r, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyParam, ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::factor(a).has_value());
  EXPECT_FALSE(is_positive_definite(a));
}

TEST(Cholesky, ShiftedFactorizationHandlesSingular) {
  Matrix a(3, 3);  // zero matrix: PSD but singular
  const Cholesky chol = Cholesky::factor_shifted(a);
  EXPECT_GT(chol.shift(), 0.0);
}

TEST(Cholesky, MatrixSolve) {
  util::Rng rng(11);
  const Matrix a = random_spd(6, rng);
  const Matrix b = random_matrix(6, 3, rng);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix x = chol->solve(b);
  EXPECT_LT(norm_inf(a * x - b), 1e-9);
}

TEST(Cholesky, LogDetMatchesKnown) {
  const Matrix a = Matrix::diag({2.0, 3.0, 4.0});
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_NEAR(chol->log_det(), std::log(24.0), 1e-12);
}

class LuParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuParam, SolveResidual) {
  util::Rng rng(GetParam() * 7 + 3);
  const std::size_t n = GetParam();
  const Matrix a = random_matrix(n, n, rng);
  const auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  const Vector b = rng.uniform_vector(n, -2.0, 2.0);
  const Vector x = lu->solve(b);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuParam, ::testing::Values(1, 2, 4, 8, 20, 50));

TEST(Lu, DetKnown) {
  const Matrix a = Matrix::from_rows({{2.0, 0.0}, {1.0, 3.0}});
  const auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR(lu->det(), 6.0, 1e-12);
}

TEST(Lu, SingularDetected) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_FALSE(Lu::factor(a).has_value());
}

TEST(Lu, InverseRoundTrip) {
  util::Rng rng(17);
  const Matrix a = random_spd(5, rng);
  const Matrix inv = inverse(a);
  EXPECT_LT(norm_inf(a * inv - Matrix::identity(5)), 1e-9);
}

TEST(Qr, LeastSquaresResidualOrthogonal) {
  util::Rng rng(23);
  const Matrix a = random_matrix(10, 4, rng);
  const Vector b = rng.uniform_vector(10, -1.0, 1.0);
  const Qr qr = Qr::factor(a);
  const Vector x = qr.solve_least_squares(b);
  // Normal equations: A^T (A x - b) == 0.
  Vector res = a * x;
  axpy(-1.0, b, res);
  const Vector nt = transposed_times(a, res);
  EXPECT_LT(norm_inf(nt), 1e-9);
}

TEST(Qr, ExactSolveWhenSquare) {
  util::Rng rng(29);
  const Matrix a = random_spd(5, rng);
  const Vector b = rng.uniform_vector(5, -1.0, 1.0);
  const Qr qr = Qr::factor(a);
  const Vector x = qr.solve_least_squares(b);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-8);
}

TEST(Qr, RankDetection) {
  // Rank-2 matrix embedded in 4 columns.
  util::Rng rng(31);
  const Matrix u = random_matrix(8, 2, rng);
  const Matrix v = random_matrix(4, 2, rng);
  const Matrix a = times_transposed(u, v);
  const Qr qr = Qr::factor(a);
  EXPECT_EQ(qr.rank(1e-8), 2u);
}

class EigenParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenParam, DecompositionProperties) {
  util::Rng rng(GetParam() * 5 + 11);
  const std::size_t n = GetParam();
  Matrix a = random_matrix(n, n, rng);
  a.symmetrize();
  const EigenSym es = eigen_sym(a);
  // Ascending order.
  for (std::size_t i = 1; i < n; ++i) EXPECT_LE(es.values[i - 1], es.values[i] + 1e-12);
  // Orthogonality of eigenvectors.
  const Matrix vtv = transposed_times(es.vectors, es.vectors);
  EXPECT_LT(norm_inf(vtv - Matrix::identity(n)), 1e-9);
  // Reconstruction A = V D V^T.
  const Matrix rec = es.vectors * Matrix::diag(es.values) * es.vectors.transposed();
  EXPECT_LT(norm_inf(rec - a), 1e-8 * std::max(1.0, norm_inf(a)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenParam, ::testing::Values(1, 2, 3, 6, 12, 30));

TEST(EigenSym, KnownEigenvalues) {
  const Matrix a = Matrix::from_rows({{2.0, 1.0}, {1.0, 2.0}});
  const EigenSym es = eigen_sym(a);
  EXPECT_NEAR(es.values[0], 1.0, 1e-10);
  EXPECT_NEAR(es.values[1], 3.0, 1e-10);
}

TEST(EigenSym, MinEigenvalueOfIndefinite) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_NEAR(min_eigenvalue(a), -1.0, 1e-10);
}

TEST(EigenSym, SqrtPsdSquares) {
  util::Rng rng(37);
  const Matrix a = random_spd(6, rng);
  const Matrix r = sqrt_psd(a);
  EXPECT_LT(norm_inf(r * r - a), 1e-8);
}

// --- tridiagonal-QL vs Jacobi reference parity ------------------------------

/// Both solvers must agree on eigenvalues; eigenvectors may differ by sign
/// (or basis within degenerate clusters), so parity is checked on values and
/// on the decomposition properties, not vector-by-vector.
void expect_eigen_parity(const Matrix& a, double tol) {
  const std::size_t n = a.rows();
  const EigenSym ql = eigen_sym(a);
  const EigenSym jac = eigen_sym_jacobi(a);
  ASSERT_EQ(ql.values.size(), n);
  ASSERT_EQ(jac.values.size(), n);
  const double scale = std::max(1.0, norm_inf(a));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(ql.values[i], jac.values[i], tol * scale) << "eigenvalue " << i;
  // Values-only fast path agrees with the full decomposition.
  const Vector vals = eigen_values_sym(a);
  ASSERT_EQ(vals.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(vals[i], ql.values[i], tol * scale) << "values-only " << i;
  if (n == 0) return;
  const Matrix vtv = transposed_times(ql.vectors, ql.vectors);
  EXPECT_LT(norm_inf(vtv - Matrix::identity(n)), 1e-9);
  const Matrix rec = ql.vectors * Matrix::diag(ql.values) * ql.vectors.transposed();
  EXPECT_LT(norm_inf(rec - a), tol * scale);
}

TEST(EigenSym, QlVsJacobiRandom) {
  for (std::size_t n : {2u, 3u, 7u, 16u, 33u, 64u}) {
    util::Rng rng(n * 101 + 7);
    Matrix a = random_matrix(n, n, rng);
    a.symmetrize();
    expect_eigen_parity(a, 1e-8);
  }
}

TEST(EigenSym, QlVsJacobiRankDeficient) {
  // A = G G^T with G n x r, r < n: exactly n - r zero eigenvalues.
  util::Rng rng(41);
  const std::size_t n = 20, r = 5;
  const Matrix g = random_matrix(n, r, rng);
  const Matrix a = times_transposed(g, g);
  expect_eigen_parity(a, 1e-8);
  const Vector vals = eigen_values_sym(a);
  for (std::size_t i = 0; i < n - r; ++i) EXPECT_NEAR(vals[i], 0.0, 1e-8);
  EXPECT_GT(vals[n - r], 1e-6);
}

TEST(EigenSym, QlVsJacobiClusteredEigenvalues) {
  // Diagonal with tight clusters, rotated by a random orthogonal basis (the
  // eigenvectors of a random symmetric matrix, taken from the Jacobi
  // reference): stresses the deflation logic of the QL sweep.
  util::Rng rng(43);
  const std::size_t n = 12;
  Vector d(n);
  for (std::size_t i = 0; i < n; ++i)
    d[i] = (i < 4 ? 1.0 : i < 8 ? 1.0 + 1e-9 * static_cast<double>(i) : 5.0);
  Matrix basis_seed = random_matrix(n, n, rng);
  basis_seed.symmetrize();
  const Matrix q = eigen_sym_jacobi(basis_seed).vectors;
  Matrix a = q * Matrix::diag(d) * q.transposed();
  a.symmetrize();
  expect_eigen_parity(a, 1e-8);
}

TEST(EigenSym, TinyAndEmptyMatrices) {
  expect_eigen_parity(Matrix(), 1e-12);
  Matrix one(1, 1);
  one(0, 0) = -3.5;
  expect_eigen_parity(one, 1e-12);
  EXPECT_DOUBLE_EQ(eigen_sym(one).values[0], -3.5);
  EXPECT_DOUBLE_EQ(min_eigenvalue(one), -3.5);
  EXPECT_TRUE(eigen_sym(Matrix()).values.empty());
}

// --- blocked Cholesky vs unblocked reference --------------------------------

/// Textbook unblocked lower Cholesky, the pre-overhaul reference.
bool reference_cholesky(const Matrix& a, double shift, Matrix& l) {
  const std::size_t n = a.rows();
  l = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j) + shift;
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return true;
}

TEST(Cholesky, BlockedMatchesUnblockedAcrossSizes) {
  // Sizes straddling the panel width (48), including non-multiples.
  for (std::size_t n : {1u, 2u, 17u, 47u, 48u, 49u, 96u, 117u}) {
    util::Rng rng(n * 3 + 5);
    const Matrix a = random_spd(n, rng);
    const auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value()) << "n=" << n;
    Matrix ref;
    ASSERT_TRUE(reference_cholesky(a, 0.0, ref));
    EXPECT_LT(norm_inf(chol->lower() - ref), 1e-9 * std::max(1.0, norm_inf(a)))
        << "n=" << n;
  }
}

TEST(Cholesky, BlockedShiftedIndefinitePath) {
  // Indefinite matrix larger than one panel: the unshifted attempt must fail
  // and the adaptive shift must land a factorization of A + shift I.
  util::Rng rng(53);
  const std::size_t n = 80;
  Matrix a = random_matrix(n, n, rng);
  a.symmetrize();
  a(3, 3) = -50.0;  // guarantee indefiniteness
  EXPECT_FALSE(Cholesky::factor(a).has_value());
  const Cholesky chol = Cholesky::factor_shifted(a);
  EXPECT_GT(chol.shift(), 0.0);
  Matrix shifted = a;
  for (std::size_t i = 0; i < n; ++i) shifted(i, i) += chol.shift();
  const Matrix rec = times_transposed(chol.lower(), chol.lower());
  EXPECT_LT(norm_inf(rec - shifted), 1e-7 * std::max(1.0, norm_inf(shifted)));
}

TEST(Cholesky, ExplicitInverse) {
  util::Rng rng(59);
  for (std::size_t n : {1u, 6u, 60u}) {
    const Matrix a = random_spd(n, rng);
    const auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value());
    const Matrix inv = chol->inverse();
    EXPECT_LT(norm_inf(a * inv - Matrix::identity(n)), 1e-7);
    // Symmetrized output.
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) EXPECT_DOUBLE_EQ(inv(r, c), inv(c, r));
  }
}

// --- GEMM micro-kernel vs naive triple loop ---------------------------------

Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  return c;
}

TEST(Matrix, GemmKernelMatchesNaiveOnOddShapes) {
  // Shapes chosen to miss the 4x8 register tile in every way: single
  // rows/cols, sub-tile sizes, tile size plus remainders.
  const std::size_t shapes[][3] = {{1, 1, 1},  {1, 9, 3},  {3, 2, 11}, {4, 8, 8},
                                   {5, 9, 7},  {7, 13, 5}, {8, 16, 4}, {13, 11, 17},
                                   {33, 7, 29}, {40, 64, 24}};
  int seed = 61;
  for (const auto& s : shapes) {
    util::Rng rng(seed++);
    const Matrix a = random_matrix(s[0], s[1], rng);
    const Matrix b = random_matrix(s[1], s[2], rng);
    const Matrix fast = a * b;
    const Matrix ref = naive_multiply(a, b);
    EXPECT_LT(norm_inf(fast - ref), 1e-12)
        << s[0] << "x" << s[1] << " * " << s[1] << "x" << s[2];
    // Transposed variants ride on the same kernel.
    EXPECT_LT(norm_inf(transposed_times(a.transposed(), b) - ref), 1e-12);
    EXPECT_LT(norm_inf(times_transposed(a, b.transposed()) - ref), 1e-12);
  }
}

TEST(Matrix, GemmKernelEmptyOperands) {
  const Matrix a(0, 0), b(0, 0);
  EXPECT_TRUE((a * b).empty());
  const Matrix c(3, 0), d(0, 4);
  const Matrix cd = c * d;
  EXPECT_EQ(cd.rows(), 3u);
  EXPECT_EQ(cd.cols(), 4u);
  EXPECT_NEAR(norm_inf(cd), 0.0, 0.0);
}

// --- ISA kernel parity suite ------------------------------------------------
//
// Every vector table the build compiled in (and this machine can run) is
// checked against the scalar reference. The elementwise kernels keep the
// scalar per-element accumulation order and differ only by FMA fusing, so
// they must match a fused sequential reference EXACTLY (and the scalar table
// must match the unfused reference exactly). The reduction kernels split
// sums across lanes, so they are held to ulp-scaled bounds instead.

std::vector<const Kernels*> vector_tables() {
  std::vector<const Kernels*> out;
  for (util::SimdIsa isa :
       {util::SimdIsa::Neon, util::SimdIsa::Avx2, util::SimdIsa::Avx512}) {
    if (const Kernels* t = kernels_for(isa)) out.push_back(t);
  }
  return out;
}

TEST(KernelParity, MatrixStorageIs64ByteAligned) {
  for (std::size_t n : {1u, 7u, 64u, 129u}) {
    const Matrix m(n, n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % 64, 0u) << "n=" << n;
  }
}

TEST(KernelParity, DispatchResolvesAndRoundTrips) {
  // The active table is one of the compiled-in tables and the scalar table
  // always resolves; forcing scalar and back is a no-op on availability.
  ASSERT_NE(kernels_for(util::SimdIsa::Scalar), nullptr);
  const util::SimdIsa startup = active_isa();
  const util::SimdIsa prev = set_active_isa(util::SimdIsa::Scalar);
  EXPECT_EQ(prev, startup);
  EXPECT_EQ(active_isa(), util::SimdIsa::Scalar);
  set_active_isa(startup);
  EXPECT_EQ(active_isa(), startup);
}

TEST(KernelParity, GemmExactAgainstOrderedReference) {
  const std::size_t shapes[][3] = {{4, 8, 8},   {4, 16, 16}, {8, 16, 8},  {1, 1, 1},
                                   {5, 9, 7},   {13, 11, 17}, {33, 7, 29}, {40, 64, 24},
                                   {17, 31, 19}};
  int seed = 71;
  for (const auto& s : shapes) {
    util::Rng rng(seed++);
    const std::size_t m = s[0], kk = s[1], n = s[2];
    const Matrix a = random_matrix(m, kk, rng);
    const Matrix b = random_matrix(kk, n, rng);
    // Unfused (scalar) and fused (vector) per-element references: identical
    // k-order, only the multiply-add contraction differs.
    Matrix ref_plain(m, n), ref_fma(m, n);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0, accf = 0.0;
        for (std::size_t k = 0; k < kk; ++k) {
          acc += a(i, k) * b(k, j);
          accf = std::fma(a(i, k), b(k, j), accf);
        }
        ref_plain(i, j) = acc;
        ref_fma(i, j) = accf;
      }
    }
    Matrix c(m, n);
    scalar_kernels().gemm_acc(m, n, kk, a.data(), kk, b.data(), n, c.data(), n);
    for (std::size_t i = 0; i < m * n; ++i)
      ASSERT_EQ(c.data()[i], ref_plain.data()[i]) << "scalar gemm, elem " << i;
    for (const Kernels* t : vector_tables()) {
      Matrix cv(m, n);
      t->gemm_acc(m, n, kk, a.data(), kk, b.data(), n, cv.data(), n);
      for (std::size_t i = 0; i < m * n; ++i)
        ASSERT_EQ(cv.data()[i], ref_fma.data()[i])
            << util::isa_name(t->isa) << " gemm, elem " << i;
    }
  }
}

TEST(KernelParity, SyrkExactAgainstOrderedReference) {
  int seed = 83;
  for (std::size_t n : {1u, 4u, 8u, 9u, 16u, 23u, 48u}) {
    util::Rng rng(seed++);
    const std::size_t k = n / 2 + 1;
    Matrix w = random_matrix(k, n, rng);
    w(0, n / 2) = 0.0;  // exercise the zero-skip
    const Matrix c0 = random_spd(n, rng);
    Matrix ref_plain = c0, ref_fma = c0;
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t i = 0; i < n; ++i) {
        const double f = w(a, i);
        if (f == 0.0) continue;
        for (std::size_t j = i; j < n; ++j) {
          ref_plain(i, j) -= f * w(a, j);
          ref_fma(i, j) = std::fma(-f, w(a, j), ref_fma(i, j));
        }
      }
    }
    Matrix c = c0;
    scalar_kernels().syrk_sub_upper(n, k, w.data(), n, c.data(), n);
    for (std::size_t i = 0; i < n * n; ++i)
      ASSERT_EQ(c.data()[i], ref_plain.data()[i]) << "scalar syrk, elem " << i;
    for (const Kernels* t : vector_tables()) {
      Matrix cv = c0;
      t->syrk_sub_upper(n, k, w.data(), n, cv.data(), n);
      for (std::size_t i = 0; i < n * n; ++i)
        ASSERT_EQ(cv.data()[i], ref_fma.data()[i])
            << util::isa_name(t->isa) << " syrk, elem " << i;
    }
  }
}

TEST(KernelParity, ElementwiseKernelsExact) {
  util::Rng rng(97);
  for (std::size_t n : {1u, 2u, 4u, 7u, 8u, 15u, 16u, 63u, 200u}) {
    const Vector x = rng.uniform_vector(n, -2.0, 2.0);
    const Vector u = rng.uniform_vector(n, -2.0, 2.0);
    const Vector y0 = rng.uniform_vector(n, -2.0, 2.0);
    const double f = 0.77, g = -1.3, rho = 2.5;

    Vector ax_plain = y0, ax_fma = y0, s2_plain = y0, s2_fma = y0;
    Vector sp_ref(n), xn_ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      ax_plain[i] += f * x[i];
      ax_fma[i] = std::fma(f, x[i], ax_fma[i]);
      s2_plain[i] -= f * x[i] + g * u[i];
      s2_fma[i] = std::fma(-g, u[i], std::fma(-f, x[i], s2_fma[i]));
      sp_ref[i] = x[i] + u[i];
      xn_ref[i] = rho * x[i];
    }

    Vector y = y0;
    scalar_kernels().axpy(f, x.data(), y.data(), n);
    EXPECT_EQ(max_abs_diff(y, ax_plain), 0.0) << "scalar axpy n=" << n;
    y = y0;
    scalar_kernels().sub_scaled2(f, x.data(), g, u.data(), y.data(), n);
    EXPECT_EQ(max_abs_diff(y, s2_plain), 0.0) << "scalar sub_scaled2 n=" << n;
    Vector sp(n), xn(n);
    scalar_kernels().split_recombine(x.data(), u.data(), rho, sp.data(), xn.data(), n);
    EXPECT_EQ(max_abs_diff(sp, sp_ref), 0.0);
    EXPECT_EQ(max_abs_diff(xn, xn_ref), 0.0);

    for (const Kernels* t : vector_tables()) {
      y = y0;
      t->axpy(f, x.data(), y.data(), n);
      EXPECT_EQ(max_abs_diff(y, ax_fma), 0.0) << util::isa_name(t->isa) << " axpy n=" << n;
      y = y0;
      t->sub_scaled2(f, x.data(), g, u.data(), y.data(), n);
      EXPECT_EQ(max_abs_diff(y, s2_fma), 0.0)
          << util::isa_name(t->isa) << " sub_scaled2 n=" << n;
      // split_recombine has no fused contraction at all: exact on every ISA.
      t->split_recombine(x.data(), u.data(), rho, sp.data(), xn.data(), n);
      EXPECT_EQ(max_abs_diff(sp, sp_ref), 0.0) << util::isa_name(t->isa);
      EXPECT_EQ(max_abs_diff(xn, xn_ref), 0.0) << util::isa_name(t->isa);
    }
  }
}

TEST(KernelParity, ReductionKernelsUlpBounded) {
  util::Rng rng(101);
  for (std::size_t n : {1u, 3u, 8u, 16u, 17u, 48u, 63u, 257u}) {
    const Vector a = rng.uniform_vector(n, -1.0, 1.0);
    const Vector b = rng.uniform_vector(n, -1.0, 1.0);
    const double ds = scalar_kernels().dot(a.data(), b.data(), n);
    const double dss = scalar_kernels().dot_sub(3.25, a.data(), b.data(), n);
    const double tol = 1e-13 * static_cast<double>(n + 1);
    for (const Kernels* t : vector_tables()) {
      EXPECT_NEAR(t->dot(a.data(), b.data(), n), ds, tol)
          << util::isa_name(t->isa) << " dot n=" << n;
      EXPECT_NEAR(t->dot_sub(3.25, a.data(), b.data(), n), dss, tol)
          << util::isa_name(t->isa) << " dot_sub n=" << n;
    }
  }
}

TEST(KernelParity, CholTrailingUpdateLowerTriangleParity) {
  // Scalar must reproduce the per-element `dr[j] -= dot(...)` loop bit for
  // bit; vector tables are ulp-bounded on the LOWER triangle only — cells
  // above the diagonal of the trailing block are contractually dead and may
  // be scribbled on.
  for (std::size_t ntrail : {0u, 1u, 3u, 4u, 17u, 70u}) {
    for (std::size_t kb : {1u, 7u, 48u}) {
      util::Rng rng(ntrail * 131 + kb);
      const std::size_t ld = kb + ntrail + 5;  // non-trivial stride
      const Vector panel0 = rng.uniform_vector(ntrail * ld, -1.0, 1.0);
      Vector ref = panel0;
      for (std::size_t r = 0; r < ntrail; ++r) {
        const double* pr = ref.data() + r * ld;
        for (std::size_t j = 0; j <= r; ++j)
          ref[r * ld + kb + j] -= scalar_kernels().dot(pr, ref.data() + j * ld, kb);
      }
      Vector ps = panel0;
      scalar_kernels().chol_trailing_update(ntrail, kb, ps.data(), ld);
      EXPECT_EQ(max_abs_diff(ps, ref), 0.0)
          << "scalar chol_trailing_update ntrail=" << ntrail << " kb=" << kb;
      const double tol = 1e-13 * static_cast<double>(kb + 1);
      for (const Kernels* t : vector_tables()) {
        Vector pv = panel0;
        t->chol_trailing_update(ntrail, kb, pv.data(), ld);
        double worst = 0.0;
        for (std::size_t r = 0; r < ntrail; ++r)
          for (std::size_t j = 0; j <= r; ++j)
            worst = std::max(worst, std::fabs(pv[r * ld + kb + j] - ref[r * ld + kb + j]));
        EXPECT_LT(worst, tol)
            << util::isa_name(t->isa) << " chol_trailing_update ntrail=" << ntrail
            << " kb=" << kb;
      }
    }
  }
}

TEST(KernelParity, CholFactorPanelParity) {
  // Factor the leading kb x kb block of an SPD matrix and solve the rows
  // below it. Scalar must match the historical loop nest exactly; vector
  // tables are held to a scaled bound on every written cell.
  for (std::size_t kb : {1u, 4u, 5u, 48u}) {
    for (std::size_t nrows : {0u, 1u, 6u, 33u}) {
      const std::size_t n = kb + nrows;
      util::Rng rng(kb * 57 + nrows + 11);
      const Matrix a = random_spd(n, rng, 2.0);
      Matrix ref = a;
      for (std::size_t j = 0; j < kb; ++j) {
        double* lj = ref.row_ptr(j);
        const double d = scalar_kernels().dot_sub(lj[j], lj, lj, j);
        ASSERT_GT(d, 0.0);
        lj[j] = std::sqrt(d);
        const double inv = 1.0 / lj[j];
        for (std::size_t i = j + 1; i < kb; ++i) {
          double* li = ref.row_ptr(i);
          li[j] = scalar_kernels().dot_sub(li[j], li, lj, j) * inv;
        }
      }
      for (std::size_t r = kb; r < n; ++r) {
        double* ri = ref.row_ptr(r);
        for (std::size_t j = 0; j < kb; ++j) {
          const double* lj = ref.row_ptr(j);
          ri[j] = scalar_kernels().dot_sub(ri[j], ri, lj, j) / lj[j];
        }
      }
      Matrix ms = a;
      ASSERT_TRUE(scalar_kernels().chol_factor_panel(kb, nrows, ms.data(), n));
      for (std::size_t i = 0; i < n * n; ++i)
        ASSERT_EQ(ms.data()[i], ref.data()[i])
            << "scalar chol_factor_panel kb=" << kb << " nrows=" << nrows
            << " elem " << i;
      for (const Kernels* t : vector_tables()) {
        Matrix mv = a;
        ASSERT_TRUE(t->chol_factor_panel(kb, nrows, mv.data(), n));
        double worst = 0.0;
        for (std::size_t r = 0; r < n; ++r)
          for (std::size_t j = 0; j < std::min(r + 1, kb); ++j)
            worst = std::max(worst, std::fabs(mv(r, j) - ref(r, j)));
        EXPECT_LT(worst, 1e-11 * static_cast<double>(kb + 1))
            << util::isa_name(t->isa) << " chol_factor_panel kb=" << kb
            << " nrows=" << nrows;
      }
    }
  }
  // A non-positive pivot is rejected identically by every table.
  Matrix bad(3, 3);
  bad(0, 0) = 1.0;
  bad(1, 1) = -2.0;
  bad(2, 2) = 1.0;
  EXPECT_FALSE(scalar_kernels().chol_factor_panel(3, 0, bad.data(), 3));
  for (const Kernels* t : vector_tables()) {
    Matrix bv = bad;
    EXPECT_FALSE(t->chol_factor_panel(3, 0, bv.data(), 3)) << util::isa_name(t->isa);
  }
  // Triangular solves: scalar vs vector on a well-conditioned factor.
  for (std::size_t n : {1u, 5u, 33u, 96u}) {
    util::Rng rng2(n * 7 + 3);
    const Matrix a = random_spd(n, rng2, 2.0);
    const auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value());
    const Matrix& l = chol->lower();
    const Vector rhs = rng2.uniform_vector(n, -1.0, 1.0);
    Vector xs = rhs;
    scalar_kernels().trsv_lower(n, l.data(), n, xs.data());
    Vector xst = rhs;
    scalar_kernels().trsv_lower_t(n, l.data(), n, xst.data());
    for (const Kernels* t : vector_tables()) {
      Vector xv = rhs;
      t->trsv_lower(n, l.data(), n, xv.data());
      EXPECT_LT(max_abs_diff(xv, xs), 1e-10 * static_cast<double>(n + 1))
          << util::isa_name(t->isa) << " trsv_lower n=" << n;
      Vector xvt = rhs;
      t->trsv_lower_t(n, l.data(), n, xvt.data());
      EXPECT_LT(max_abs_diff(xvt, xst), 1e-10 * static_cast<double>(n + 1))
          << util::isa_name(t->isa) << " trsv_lower_t n=" << n;
    }
  }
}

TEST(KernelParity, Fp32KernelsUlpBounded) {
  util::Rng rng(103);
  for (std::size_t n : {1u, 7u, 16u, 33u, 128u}) {
    std::vector<float> a(n), b(n), y0(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      b[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      y0[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    const float ds = scalar_kernels().dot_f32(a.data(), b.data(), n);
    const float dss = scalar_kernels().dot_sub_f32(1.5f, a.data(), b.data(), n);
    const float tol = 1e-5f * static_cast<float>(n + 1);
    for (const Kernels* t : vector_tables()) {
      EXPECT_NEAR(t->dot_f32(a.data(), b.data(), n), ds, tol)
          << util::isa_name(t->isa) << " dot_f32 n=" << n;
      EXPECT_NEAR(t->dot_sub_f32(1.5f, a.data(), b.data(), n), dss, tol)
          << util::isa_name(t->isa) << " dot_sub_f32 n=" << n;
      std::vector<float> ys = y0, yv = y0;
      scalar_kernels().axpy_f32(0.6f, a.data(), ys.data(), n);
      t->axpy_f32(0.6f, a.data(), yv.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(yv[i], ys[i], 1e-6f) << util::isa_name(t->isa) << " axpy_f32";
    }
  }
}

TEST(KernelParity, WholeMatrixOpsAgreeAcrossIsas) {
  // End-to-end: the routed entry points (GEMM, Cholesky factor+solve, eigen)
  // agree between the forced-scalar table and the startup table. This is the
  // same check the SOSLOCK_SIMD=scalar CI job makes machine-wide.
  const util::SimdIsa startup = active_isa();
  util::Rng rng(107);
  const std::size_t n = 64;
  const Matrix a = random_spd(n, rng);
  const Matrix b = random_matrix(n, n, rng);
  const Vector rhs = rng.uniform_vector(n, -1.0, 1.0);

  set_active_isa(util::SimdIsa::Scalar);
  const Matrix prod_s = a * b;
  const Cholesky chol_s = Cholesky::factor_shifted(a);
  const Vector x_s = chol_s.solve(rhs);
  const Vector ev_s = eigen_values_sym(a);

  set_active_isa(startup);
  const Matrix prod_v = a * b;
  const Cholesky chol_v = Cholesky::factor_shifted(a);
  const Vector x_v = chol_v.solve(rhs);
  const Vector ev_v = eigen_values_sym(a);

  const double scale = norm_inf(a) * static_cast<double>(n);
  EXPECT_LT(norm_inf(prod_s - prod_v), 1e-12 * scale);
  EXPECT_LT(norm_inf(chol_s.lower() - chol_v.lower()), 1e-9 * scale);
  EXPECT_LT(max_abs_diff(x_s, x_v), 1e-8 * scale);
  EXPECT_LT(max_abs_diff(ev_s, ev_v), 1e-9 * scale);
}

// --- FP32 Cholesky (mixed-precision building block) -------------------------

TEST(Cholesky32, FactorsAndRefinesToFp64Accuracy) {
  util::Rng rng(109);
  for (std::size_t n : {1u, 9u, 48u, 97u}) {
    const Matrix a = random_spd(n, rng, 1.0);
    Cholesky32 c32;
    ASSERT_TRUE(c32.factor(a)) << "n=" << n;
    const Vector b = rng.uniform_vector(n, -1.0, 1.0);
    // Raw FP32 solve lands within single-precision distance...
    Vector x = c32.solve(b);
    Vector r = b;
    axpy(-1.0, a * x, r);
    EXPECT_LT(norm_inf(r), 1e-3 * static_cast<double>(n + 1)) << "n=" << n;
    // ...and FP64 iterative refinement against the FP64 matrix recovers
    // double-precision residuals within a few steps.
    for (int step = 0; step < 5 && norm_inf(r) > 1e-12 * static_cast<double>(n + 1);
         ++step) {
      axpy(1.0, c32.solve(r), x);
      r = b;
      axpy(-1.0, a * x, r);
    }
    EXPECT_LT(norm_inf(r), 1e-10 * static_cast<double>(n + 1)) << "n=" << n;
  }
}

TEST(Cholesky32, RejectsIndefinite) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});
  Cholesky32 c32;
  EXPECT_FALSE(c32.factor(a));
  // FP64-representable but FP32-overflowing input is rejected, not folded
  // into an Inf-poisoned factor.
  Matrix big = Matrix::identity(2);
  big(0, 0) = 1e200;
  EXPECT_FALSE(c32.factor(big));
}

}  // namespace
}  // namespace soslock::linalg
