// Unit and property tests for the dense linear algebra kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "util/rng.hpp"

namespace soslock::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix random_spd(std::size_t n, util::Rng& rng, double shift = 0.5) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix s = transposed_times(a, a);
  for (std::size_t i = 0; i < n; ++i) s(i, i) += shift;
  return s;
}

TEST(Matrix, IdentityAndDiag) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(i3(0, 0), 1.0);
  EXPECT_EQ(i3(0, 1), 0.0);
  const Matrix d = Matrix::diag({2.0, 3.0});
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, MultiplyKnown) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, TransposeRoundTrip) {
  util::Rng rng(1);
  const Matrix a = random_matrix(4, 7, rng);
  const Matrix att = a.transposed().transposed();
  EXPECT_NEAR(norm_inf(a - att), 0.0, 0.0);
}

TEST(Matrix, TransposedTimesAgreesWithExplicit) {
  util::Rng rng(2);
  const Matrix a = random_matrix(5, 3, rng);
  const Matrix b = random_matrix(5, 4, rng);
  const Matrix direct = transposed_times(a, b);
  const Matrix explicit_ = a.transposed() * b;
  EXPECT_LT(norm_inf(direct - explicit_), 1e-14);
}

TEST(Matrix, TimesTransposedAgreesWithExplicit) {
  util::Rng rng(3);
  const Matrix a = random_matrix(4, 6, rng);
  const Matrix b = random_matrix(5, 6, rng);
  const Matrix direct = times_transposed(a, b);
  const Matrix explicit_ = a * b.transposed();
  EXPECT_LT(norm_inf(direct - explicit_), 1e-14);
}

TEST(Matrix, FrobeniusDotSymmetry) {
  util::Rng rng(4);
  const Matrix a = random_matrix(6, 6, rng);
  const Matrix b = random_matrix(6, 6, rng);
  EXPECT_NEAR(dot(a, b), dot(b, a), 1e-12);
}

TEST(Matrix, SymmetrizeProducesSymmetric) {
  util::Rng rng(5);
  Matrix a = random_matrix(5, 5, rng);
  a.symmetrize();
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) EXPECT_DOUBLE_EQ(a(r, c), a(c, r));
}

TEST(Vector, Norms) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

class CholeskyParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyParam, ReconstructsAndSolves) {
  util::Rng rng(GetParam() * 13 + 1);
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  // L L^T == A
  const Matrix rec = times_transposed(chol->lower(), chol->lower());
  EXPECT_LT(norm_inf(rec - a), 1e-10 * std::max(1.0, norm_inf(a)));
  // Solve residual
  const Vector b = rng.uniform_vector(n, -1.0, 1.0);
  const Vector x = chol->solve(b);
  const Vector r = a * x;
  EXPECT_LT(max_abs_diff(r, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyParam, ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::factor(a).has_value());
  EXPECT_FALSE(is_positive_definite(a));
}

TEST(Cholesky, ShiftedFactorizationHandlesSingular) {
  Matrix a(3, 3);  // zero matrix: PSD but singular
  const Cholesky chol = Cholesky::factor_shifted(a);
  EXPECT_GT(chol.shift(), 0.0);
}

TEST(Cholesky, MatrixSolve) {
  util::Rng rng(11);
  const Matrix a = random_spd(6, rng);
  const Matrix b = random_matrix(6, 3, rng);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix x = chol->solve(b);
  EXPECT_LT(norm_inf(a * x - b), 1e-9);
}

TEST(Cholesky, LogDetMatchesKnown) {
  const Matrix a = Matrix::diag({2.0, 3.0, 4.0});
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_NEAR(chol->log_det(), std::log(24.0), 1e-12);
}

class LuParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuParam, SolveResidual) {
  util::Rng rng(GetParam() * 7 + 3);
  const std::size_t n = GetParam();
  const Matrix a = random_matrix(n, n, rng);
  const auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  const Vector b = rng.uniform_vector(n, -2.0, 2.0);
  const Vector x = lu->solve(b);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuParam, ::testing::Values(1, 2, 4, 8, 20, 50));

TEST(Lu, DetKnown) {
  const Matrix a = Matrix::from_rows({{2.0, 0.0}, {1.0, 3.0}});
  const auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR(lu->det(), 6.0, 1e-12);
}

TEST(Lu, SingularDetected) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_FALSE(Lu::factor(a).has_value());
}

TEST(Lu, InverseRoundTrip) {
  util::Rng rng(17);
  const Matrix a = random_spd(5, rng);
  const Matrix inv = inverse(a);
  EXPECT_LT(norm_inf(a * inv - Matrix::identity(5)), 1e-9);
}

TEST(Qr, LeastSquaresResidualOrthogonal) {
  util::Rng rng(23);
  const Matrix a = random_matrix(10, 4, rng);
  const Vector b = rng.uniform_vector(10, -1.0, 1.0);
  const Qr qr = Qr::factor(a);
  const Vector x = qr.solve_least_squares(b);
  // Normal equations: A^T (A x - b) == 0.
  Vector res = a * x;
  axpy(-1.0, b, res);
  const Vector nt = transposed_times(a, res);
  EXPECT_LT(norm_inf(nt), 1e-9);
}

TEST(Qr, ExactSolveWhenSquare) {
  util::Rng rng(29);
  const Matrix a = random_spd(5, rng);
  const Vector b = rng.uniform_vector(5, -1.0, 1.0);
  const Qr qr = Qr::factor(a);
  const Vector x = qr.solve_least_squares(b);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-8);
}

TEST(Qr, RankDetection) {
  // Rank-2 matrix embedded in 4 columns.
  util::Rng rng(31);
  const Matrix u = random_matrix(8, 2, rng);
  const Matrix v = random_matrix(4, 2, rng);
  const Matrix a = times_transposed(u, v);
  const Qr qr = Qr::factor(a);
  EXPECT_EQ(qr.rank(1e-8), 2u);
}

class EigenParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenParam, DecompositionProperties) {
  util::Rng rng(GetParam() * 5 + 11);
  const std::size_t n = GetParam();
  Matrix a = random_matrix(n, n, rng);
  a.symmetrize();
  const EigenSym es = eigen_sym(a);
  // Ascending order.
  for (std::size_t i = 1; i < n; ++i) EXPECT_LE(es.values[i - 1], es.values[i] + 1e-12);
  // Orthogonality of eigenvectors.
  const Matrix vtv = transposed_times(es.vectors, es.vectors);
  EXPECT_LT(norm_inf(vtv - Matrix::identity(n)), 1e-9);
  // Reconstruction A = V D V^T.
  const Matrix rec = es.vectors * Matrix::diag(es.values) * es.vectors.transposed();
  EXPECT_LT(norm_inf(rec - a), 1e-8 * std::max(1.0, norm_inf(a)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenParam, ::testing::Values(1, 2, 3, 6, 12, 30));

TEST(EigenSym, KnownEigenvalues) {
  const Matrix a = Matrix::from_rows({{2.0, 1.0}, {1.0, 2.0}});
  const EigenSym es = eigen_sym(a);
  EXPECT_NEAR(es.values[0], 1.0, 1e-10);
  EXPECT_NEAR(es.values[1], 3.0, 1e-10);
}

TEST(EigenSym, MinEigenvalueOfIndefinite) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_NEAR(min_eigenvalue(a), -1.0, 1e-10);
}

TEST(EigenSym, SqrtPsdSquares) {
  util::Rng rng(37);
  const Matrix a = random_spd(6, rng);
  const Matrix r = sqrt_psd(a);
  EXPECT_LT(norm_inf(r * r - a), 1e-8);
}

}  // namespace
}  // namespace soslock::linalg
