// Tests for the debug-mode lowering verifier (sdp/verify): a clean pipeline
// output verifies, and every deliberately seeded corruption — out-of-range
// triplet, tampered clique entry map, NaN objective, stale fingerprint,
// cyclic clique-tree parent array — is caught with the offending pass named
// in the thrown report. Plus the TSan-targeted stress test: eight sweep
// lanes, each with its own LoweringCache, hammering the shared
// StructureCache::global() under eviction churn while a telemetry thread
// polls the counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "linalg/matrix.hpp"
#include "sdp/lowering.hpp"
#include "sdp/structure.hpp"
#include "sdp/verify.hpp"

namespace soslock {
namespace {

using linalg::Matrix;
using sdp::Lowering;
using sdp::LoweringCache;
using sdp::LoweringOptions;
using sdp::Problem;
using sdp::VerifyResult;

/// Feasible banded min-trace SDP (same shape family as lowering_test):
/// banded coefficients so chordal decomposition splits the block, `scale`
/// perturbing values only (structurally identical problems for the cache
/// stress test), `drop_entry` changing the triplet set itself.
Problem banded_sdp(std::size_t n, double scale = 1.0, bool drop_entry = false) {
  Problem p;
  const std::size_t blk = p.add_block(n);
  p.set_block_objective(blk, Matrix::identity(n));
  Matrix xstar(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    xstar(i, i) = scale * (2.0 + 0.1 * static_cast<double>(i % 3));
    if (i + 1 < n) {
      xstar(i, i + 1) = 0.7 * scale;
      xstar(i + 1, i) = 0.7 * scale;
    }
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    sdp::Row row;
    sdp::SparseSym a;
    a.add(i, i, scale);
    a.add(i, i + 1,
          i == 0 && drop_entry ? 0.0 : scale * (0.5 + 0.1 * static_cast<double>(i % 2)));
    a.add(i + 1, i + 1, -0.3 * scale);
    Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[blk] = std::move(a);
    p.add_row(std::move(row));
  }
  return p;
}

LoweringOptions chordal_lowering(std::size_t min_block_size) {
  LoweringOptions low;
  low.sparsity = sdp::SparsityOptions::Chordal;
  low.chordal.min_block_size = min_block_size;
  return low;
}

/// A decomposed lowering of the banded SDP plus its cached structure — the
/// starting point every corruption test tampers with.
struct LoweredFixture {
  Lowering low;
  std::shared_ptr<const sdp::ProblemStructure> structure;
};

LoweredFixture lowered_banded() {
  LoweredFixture f;
  f.low = sdp::lower(banded_sdp(30), chordal_lowering(8));
  f.structure = sdp::StructureCache::global().find(f.low.lowered_fingerprint);
  return f;
}

TEST(Verify, CleanPipelineOutputVerifies) {
  LoweredFixture f = lowered_banded();
  ASSERT_TRUE(f.low.decomposed());
  ASSERT_NE(f.structure, nullptr);
  const VerifyResult result = sdp::verify(f.low.problem, f.structure.get());
  EXPECT_TRUE(result.ok()) << result.str();
  // The result names the pass that produced the problem (last provenance).
  EXPECT_EQ(result.pass, "equilibrate");
  // The hook body passes on a clean problem in every build type.
  EXPECT_NO_THROW(sdp::verify_pass_or_throw(f.low.problem, f.low.lowered_fingerprint,
                                            "equilibrate", f.structure.get()));
}

TEST(Verify, CleanIdentityLoweringVerifies) {
  const Lowering low = sdp::lower(banded_sdp(12), LoweringOptions{});
  const auto structure = sdp::StructureCache::global().find(low.lowered_fingerprint);
  ASSERT_NE(structure, nullptr);
  const VerifyResult result = sdp::verify(low.problem, structure.get());
  EXPECT_TRUE(result.ok()) << result.str();
}

TEST(Verify, OutOfRangeTripletCaughtWithPassNamed) {
  LoweredFixture f = lowered_banded();
  // Bypass SparseSym::add (which canonicalizes) and plant a raw triplet
  // outside its block — the corruption a buggy in-place update would leave.
  auto& row = f.low.problem.mutable_rows()[0];
  auto& coeff = row.blocks.begin()->second;
  const std::size_t n = f.low.problem.block_size(row.blocks.begin()->first);
  coeff.entries.push_back({n + 3, n + 5, 1.0});

  const VerifyResult result = sdp::verify(f.low.problem);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has("triplet-range")) << result.str();

  try {
    sdp::verify_pass_or_throw(f.low.problem, f.low.lowered_fingerprint, "update");
    FAIL() << "corrupted problem passed verification";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("after pass 'update'"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("triplet-range"), std::string::npos) << e.what();
  }
}

TEST(Verify, NonCanonicalTripletCaught) {
  LoweredFixture f = lowered_banded();
  auto& coeff = f.low.problem.mutable_rows()[0].blocks.begin()->second;
  ASSERT_FALSE(coeff.entries.empty());
  // Lower-triangular entry: within range but violating r <= c.
  coeff.entries.push_back({1, 0, 0.5});
  const VerifyResult result = sdp::verify(f.low.problem);
  EXPECT_TRUE(result.has("triplet-canonical")) << result.str();

  // Duplicate position: double-counts in every inner product.
  coeff.entries.pop_back();
  coeff.entries.push_back(coeff.entries.front());
  const VerifyResult dup = sdp::verify(f.low.problem);
  EXPECT_TRUE(dup.has("triplet-canonical")) << dup.str();
}

TEST(Verify, TamperedCliqueEntryMapCaught) {
  LoweredFixture f = lowered_banded();
  ASSERT_FALSE(f.low.problem.cones().empty());
  auto& cone = f.low.problem.mutable_cones()[0];
  ASSERT_GE(cone.cliques.size(), 2u);

  // Point one clique's entry map at another clique's block: the map is no
  // longer bijective, so two cliques would read/write one PSD copy.
  const std::size_t saved = cone.cliques[1].block;
  cone.cliques[1].block = cone.cliques[0].block;
  VerifyResult result = sdp::verify(f.low.problem);
  EXPECT_TRUE(result.has("clique-block")) << result.str();
  cone.cliques[1].block = saved;

  // Vertex outside the original cone: the completion would index out of it.
  const std::size_t saved_v = cone.cliques[0].vertices.back();
  cone.cliques[0].vertices.back() = cone.original_size + 7;
  result = sdp::verify(f.low.problem);
  EXPECT_TRUE(result.has("clique-vertices")) << result.str();
  cone.cliques[0].vertices.back() = saved_v;

  EXPECT_TRUE(sdp::verify(f.low.problem).ok());
}

TEST(Verify, NaNObjectiveCaughtWithPassNamed) {
  LoweredFixture f = lowered_banded();
  f.low.problem.mutable_block_objective(0)(0, 0) = std::numeric_limits<double>::quiet_NaN();
  const VerifyResult result = sdp::verify(f.low.problem);
  EXPECT_TRUE(result.has("finite")) << result.str();

  try {
    sdp::verify_pass_or_throw(f.low.problem, f.low.lowered_fingerprint, "equilibrate");
    FAIL() << "NaN objective passed verification";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("after pass 'equilibrate'"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos) << e.what();
  }
}

TEST(Verify, NaNRhsAndAsymmetricObjectiveCaught) {
  LoweredFixture f = lowered_banded();
  f.low.problem.mutable_rows()[2].rhs = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(sdp::verify(f.low.problem).has("finite"));
  f.low.problem.mutable_rows()[2].rhs = 0.0;

  Matrix& c = f.low.problem.mutable_block_objective(0);
  ASSERT_GE(c.rows(), 2u);
  c(0, 1) = c(1, 0) + 1.0;
  EXPECT_TRUE(sdp::verify(f.low.problem).has("objective-symmetric"));
}

TEST(Verify, StaleFingerprintCaughtWithPassNamed) {
  LoweredFixture f = lowered_banded();
  ASSERT_NE(f.structure, nullptr);
  // Move a triplet to a different (still canonical, in-range) position: the
  // shape is unchanged but the structure fingerprint is position-sensitive,
  // so the stamped structure no longer describes this problem.
  auto& coeff = f.low.problem.mutable_rows()[0].blocks.begin()->second;
  ASSERT_FALSE(coeff.entries.empty());
  coeff.entries.front().c += 1;

  const VerifyResult result = sdp::verify(f.low.problem, f.structure.get());
  EXPECT_TRUE(result.has("fingerprint-stale")) << result.str();

  try {
    sdp::verify_pass_or_throw(f.low.problem, f.low.lowered_fingerprint, "lower");
    FAIL() << "stale fingerprint passed verification";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("after pass 'lower'"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("fingerprint-stale"), std::string::npos)
        << e.what();
  }
}

TEST(Verify, CyclicCliqueTreeParentCaught) {
  LoweredFixture f = lowered_banded();
  auto& cone = f.low.problem.mutable_cones()[0];
  ASSERT_GE(cone.cliques.size(), 2u);
  // Two cliques pointing at each other: a completion walk along the "tree"
  // never terminates.
  cone.cliques[0].parent = 1;
  cone.cliques[1].parent = 0;
  const VerifyResult result = sdp::verify(f.low.problem);
  EXPECT_TRUE(result.has("clique-tree-cycle")) << result.str();
}

TEST(Verify, RipViolationAndBadParentCaught) {
  LoweredFixture f = lowered_banded();
  auto& cone = f.low.problem.mutable_cones()[0];
  ASSERT_GE(cone.cliques.size(), 2u);

  const std::size_t saved = cone.cliques[1].parent;
  cone.cliques[1].parent = cone.cliques.size() + 4;
  EXPECT_TRUE(sdp::verify(f.low.problem).has("clique-parent"));
  cone.cliques[1].parent = saved;

  // Reparent a non-root clique onto a disjoint one: the vertices it shares
  // with earlier cliques are no longer in its parent (RIP broken), so the
  // overlap couplings no longer chain every copy of the shared entries.
  const std::size_t nk = cone.cliques.size();
  ASSERT_GE(nk, 3u);
  const std::size_t last = nk - 1;
  if (cone.cliques[last].parent != last) {
    cone.cliques[last].parent = 0;  // cliques 0 and last are disjoint in a long band
    EXPECT_TRUE(sdp::verify(f.low.problem).has("clique-rip"));
  }
}

/// A partitioned lowering (the opt-in "partition" pass between lower and
/// equilibrate) — the fixture the async-driver corruption tests tamper with.
LoweredFixture lowered_partitioned(std::size_t workers) {
  LoweredFixture f;
  LoweringOptions options = chordal_lowering(8);
  options.partition_workers = workers;
  f.low = sdp::lower(banded_sdp(30), options);
  f.structure = sdp::StructureCache::global().find(f.low.lowered_fingerprint);
  return f;
}

TEST(Verify, PartitionInvalidSubtreeAssignmentCaught) {
  LoweredFixture f = lowered_partitioned(3);
  ASSERT_NE(f.structure, nullptr);
  ASSERT_EQ(f.structure->partition_workers, 3u);
  ASSERT_EQ(f.structure->block_worker.size(), f.low.problem.num_blocks());
  ASSERT_TRUE(sdp::verify(f.low.problem, f.structure.get()).ok());

  // Worker id past the worker count: an out-of-bounds worker dispatch.
  sdp::ProblemStructure tampered = *f.structure;
  tampered.block_worker[0] = tampered.partition_workers + 5;
  EXPECT_TRUE(sdp::verify(f.low.problem, &tampered).has("partition-range"));

  // Fewer assignments than blocks: some block has no worker at all.
  tampered = *f.structure;
  tampered.block_worker.pop_back();
  EXPECT_TRUE(sdp::verify(f.low.problem, &tampered).has("partition-range"));
}

TEST(Verify, PartitionScatteredSubtreeCaught) {
  LoweredFixture f = lowered_partitioned(3);
  ASSERT_NE(f.structure, nullptr);
  const auto& cliques = f.low.problem.cones()[0].cliques;
  ASSERT_GE(cliques.size(), 2u);
  // Swap the first clique onto the last worker: the preorder now goes
  // 2, 0, ..., so one worker's "contiguous subtree segment" is scattered and
  // its separator mailboxes would span non-neighbor workers.
  sdp::ProblemStructure tampered = *f.structure;
  tampered.block_worker[cliques.front().block] = tampered.partition_workers - 1;
  tampered.block_worker[cliques.back().block] = 0;
  EXPECT_TRUE(sdp::verify(f.low.problem, &tampered).has("partition-order"));
}

TEST(Verify, PartitionPassOutOfPipelineOrderCaught) {
  LoweredFixture f = lowered_partitioned(3);
  ASSERT_NE(f.structure, nullptr);
  sdp::ProblemStructure tampered = *f.structure;
  std::size_t partition_at = tampered.provenance.size();
  for (std::size_t i = 0; i < tampered.provenance.size(); ++i) {
    if (tampered.provenance[i].name == "partition") partition_at = i;
  }
  ASSERT_LT(partition_at, tampered.provenance.size());
  ASSERT_GT(partition_at, 0u);
  // Partition before lower: pass_rank says the pipeline never runs it there
  // (it consumes the lowered clique blocks).
  std::swap(tampered.provenance[partition_at], tampered.provenance[partition_at - 1]);
  EXPECT_TRUE(sdp::verify(f.low.problem, &tampered).has("provenance-order"));
}

TEST(Verify, SeparatorMailboxShapeMismatchCaught) {
  LoweredFixture f = lowered_banded();
  auto& cone = f.low.problem.mutable_cones()[0];
  ASSERT_FALSE(cone.overlaps.empty());
  sdp::Row& overlap = cone.overlaps[0];
  ASSERT_EQ(overlap.blocks.size(), 2u);

  // Copies no longer pair 1:1: one side of the coupling lost an entry, so
  // the consensus exchange would misalign the separator state.
  const sdp::SparseSym saved = overlap.blocks.begin()->second;
  ASSERT_FALSE(saved.entries.empty());
  overlap.blocks.begin()->second.entries.pop_back();
  EXPECT_TRUE(sdp::verify(f.low.problem).has("overlap-mailbox"));
  overlap.blocks.begin()->second = saved;

  // A three-sided coupling: mailboxes pair exactly (child, parent).
  ASSERT_GE(cone.cliques.size(), 3u);
  std::size_t third = cone.cliques[2].block;
  if (overlap.blocks.count(third) != 0) third = cone.cliques[1].block;
  ASSERT_EQ(overlap.blocks.count(third), 0u);
  overlap.blocks[third] = saved;
  EXPECT_TRUE(sdp::verify(f.low.problem).has("overlap-mailbox"));
  overlap.blocks.erase(third);

  EXPECT_TRUE(sdp::verify(f.low.problem).ok());
}

TEST(Verify, TamperedProvenanceCaught) {
  LoweredFixture f = lowered_banded();
  ASSERT_NE(f.structure, nullptr);
  ASSERT_GE(f.structure->provenance.size(), 4u);
  // Out-of-order pass chain: equilibrate before lower.
  sdp::ProblemStructure tampered = *f.structure;
  std::swap(tampered.provenance[2], tampered.provenance[3]);
  EXPECT_TRUE(sdp::verify(f.low.problem, &tampered).has("provenance-order"));

  // Unknown pass name.
  tampered = *f.structure;
  tampered.provenance[1].name = "transmogrify";
  EXPECT_TRUE(sdp::verify(f.low.problem, &tampered).has("provenance-name"));
}

TEST(Verify, ZeroExpectedFingerprintSkipsTheStaleCheck) {
  LoweredFixture f = lowered_banded();
  EXPECT_NO_THROW(sdp::verify_pass_or_throw(f.low.problem, 0, "analyze"));
}

// TSan-targeted stress test: eight sweep lanes, each owning a LoweringCache
// (the documented ownership model), all hammering the process-global
// StructureCache with a small capacity so hits, misses, evictions and the
// LRU reshuffle race for the lock, while a telemetry thread concurrently
// polls the lane caches' atomic counters and the shared cache's snapshot.
// Run under -fsanitize=thread this proves the counter discipline; in a
// plain build it still exercises the lock paths.
TEST(VerifyStress, ConcurrentLoweringAndStructureCacheTelemetry) {
  auto& cache = sdp::StructureCache::global();
  const std::size_t saved_capacity = cache.capacity();
  cache.set_capacity(3);  // force eviction churn across lanes

  constexpr std::size_t kLanes = 8;
  constexpr std::size_t kIters = 24;
  std::vector<LoweringCache> lanes(kLanes);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> failures{0};

  std::thread telemetry([&] {
    std::size_t polls = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::size_t updates = 0, fulls = 0;
      for (const LoweringCache& lane : lanes) {
        updates += lane.updates();
        fulls += lane.full_lowerings();
      }
      const sdp::StructureCacheTelemetry t = cache.telemetry();
      if (t.entries > t.capacity || updates + fulls > kLanes * kIters) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      ++polls;
      std::this_thread::yield();
    }
    (void)polls;
  });

  std::vector<std::thread> workers;
  workers.reserve(kLanes);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    workers.emplace_back([&, lane] {
      // Three structurally distinct shapes across the lanes so the 3-slot
      // global cache thrashes; a lane keeps one shape, so its repeated
      // value-only re-solves take the in-place update fast path.
      for (std::size_t it = 0; it < kIters; ++it) {
        const std::size_t n = 18 + 2 * (lane % 3);
        const double scale = 1.0 + 0.01 * static_cast<double>(it);
        const Lowering& low =
            lanes[lane].lower(banded_sdp(n, scale), chordal_lowering(6));
        const VerifyResult result = sdp::verify(low.problem);
        if (!result.ok()) failures.fetch_add(1, std::memory_order_relaxed);
        if (cache.get(low.problem) == nullptr) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_release);
  telemetry.join();

  EXPECT_EQ(failures.load(), 0u);
  std::size_t updates = 0;
  for (const LoweringCache& lane : lanes) updates += lane.updates();
  EXPECT_GT(updates, 0u);  // the fast path actually ran
  cache.set_capacity(saved_capacity);
}

}  // namespace
}  // namespace soslock
