// Cross-module integration tests: formal certificates cross-checked against
// simulation, corrupted certificates caught by the audit, and the full
// verification pipeline agreeing with Monte-Carlo behaviour on both PLL
// orders.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "core/rate.hpp"
#include "hybrid/simulator.hpp"
#include "pll/full_model.hpp"
#include "pll/models.hpp"
#include "sim/monte_carlo.hpp"
#include "sos/checker.hpp"
#include "util/rng.hpp"

namespace soslock {
namespace {

using poly::Polynomial;

Polynomial ellipsoid(std::size_t nvars, const std::vector<double>& axes) {
  Polynomial b(nvars);
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const Polynomial x = Polynomial::variable(nvars, i);
    b += (1.0 / (axes[i] * axes[i])) * x * x;
  }
  b -= Polynomial::constant(nvars, 1.0);
  b *= 0.5;
  return b;
}

class Pll3Pipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new pll::ReducedModel(pll::make_averaged(pll::Params::paper_third_order()));
    core::PipelineOptions opt;
    opt.lyapunov.certificate_degree = 2;
    opt.lyapunov.flow_decrease = core::FlowDecrease::Strict;
    opt.lyapunov.strict_margin = 1e-4;
    opt.lyapunov.maximize_region = true;
    opt.advection.h = 0.01;
    opt.advection.gamma = 0.008;
    opt.advection.eps = 0.3;
    opt.max_advection_iterations = 12;
    report_ = new core::PipelineReport(core::InevitabilityVerifier(opt).verify(
        model_->system, ellipsoid(model_->system.nvars(), {5.0, 4.2, 0.9})));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete report_;
    model_ = nullptr;
    report_ = nullptr;
  }
  static pll::ReducedModel* model_;
  static core::PipelineReport* report_;
};

pll::ReducedModel* Pll3Pipeline::model_ = nullptr;
core::PipelineReport* Pll3Pipeline::report_ = nullptr;

TEST_F(Pll3Pipeline, Verifies) {
  EXPECT_EQ(report_->verdict, core::Verdict::VerifiedByAdvection) << report_->summary();
}

TEST_F(Pll3Pipeline, CertificateDecreasesAlongSimulatedFlows) {
  ASSERT_TRUE(report_->lyapunov.success);
  sim::DecreaseStudyOptions opt;
  opt.trials = 20;
  opt.sim.dt = 2e-3;
  opt.sim.t_max = 4.0;
  const sim::DecreaseStudyResult result = sim::decrease_study(
      model_->system, report_->invariant, {{-8.0, 8.0}, {-8.0, 8.0}, {-1.0, 1.0}}, opt);
  EXPECT_TRUE(result.ok) << "V increased by " << result.worst_increase;
}

TEST_F(Pll3Pipeline, AdvectedSetsContainFlowedSamples) {
  // Soundness of advection: points of S(b_k), flowed forward by h, must land
  // in S(b_{k+1}) (up to the gamma margin).
  ASSERT_GE(report_->advection_iterates.size(), 2u);
  const hybrid::Simulator sim(model_->system);
  util::Rng rng(99);
  const std::size_t nvars = model_->system.nvars();
  int checked = 0;
  for (std::size_t k = 0; k + 1 < report_->advection_iterates.size(); ++k) {
    const Polynomial& b0 = report_->advection_iterates[k];
    const Polynomial& b1 = report_->advection_iterates[k + 1];
    for (int s = 0; s < 200; ++s) {
      linalg::Vector x(3);
      x[0] = rng.uniform(-6.0, 6.0);
      x[1] = rng.uniform(-6.0, 6.0);
      x[2] = rng.uniform(-1.0, 1.0);
      linalg::Vector full(nvars, 0.0);
      std::copy(x.begin(), x.end(), full.begin());
      if (b0.eval(full) > 0.0) continue;
      hybrid::SimOptions sopt;
      sopt.dt = 1e-3;
      sopt.t_max = 0.01;  // the advection step h
      const hybrid::SimResult run = sim.run(0, x, sopt);
      linalg::Vector next(nvars, 0.0);
      std::copy(run.final().x.begin(), run.final().x.end(), next.begin());
      EXPECT_LE(b1.eval(next), 1e-6)
          << "iterate " << k << " sample escaped the advected set";
      ++checked;
    }
  }
  EXPECT_GT(checked, 100);
}

TEST_F(Pll3Pipeline, InvariantContainsAdvectionLimit) {
  // The final advected set is certified inside the invariant; spot-check.
  ASSERT_TRUE(report_->advection_included);
  const Polynomial& b_final = report_->advection_iterates.back();
  util::Rng rng(7);
  const std::size_t nvars = model_->system.nvars();
  for (int s = 0; s < 3000; ++s) {
    linalg::Vector full(nvars, 0.0);
    full[0] = rng.uniform(-6.0, 6.0);
    full[1] = rng.uniform(-6.0, 6.0);
    full[2] = rng.uniform(-1.0, 1.0);
    if (b_final.eval(full) > 0.0) continue;
    EXPECT_TRUE(report_->invariant.contains_consistent(full));
  }
}

TEST_F(Pll3Pipeline, CorruptedCertificateCaughtByChecker) {
  ASSERT_TRUE(report_->lyapunov.success);
  Polynomial v = report_->invariant.certificates.front();
  // Flip the sign of the e^2 coefficient: V is no longer positive definite.
  poly::Monomial e2(model_->system.nvars());
  e2.set_exponent(2, 2);
  v.set_coefficient(e2, -std::fabs(v.coefficient(e2)));
  EXPECT_FALSE(sos::is_sos_numeric(v - 1e-4 * poly::squared_norm(v.nvars(), 3)));
}

TEST(Integration, ReducedAndFullModelTimeScalesAgree) {
  // The averaged model's certified decay and the full event-driven model's
  // observed lock times live on the same normalized time axis: the full
  // model must lock within a small multiple of the certified bound.
  const pll::ReducedModel reduced = pll::make_averaged(pll::Params::paper_third_order());
  core::LyapunovOptions lopt;
  lopt.certificate_degree = 2;
  lopt.flow_decrease = core::FlowDecrease::Strict;
  lopt.strict_margin = 1e-4;
  const core::LyapunovResult lyap = core::LyapunovSynthesizer(lopt).synthesize(reduced.system);
  ASSERT_TRUE(lyap.success);
  const core::RateResult rate =
      core::RateCertifier().certify(reduced.system, 0, lyap.certificates.front());
  ASSERT_TRUE(rate.success);
  const double bound = rate.time_to_reach(2.0, 0.15);
  ASSERT_TRUE(std::isfinite(bound));

  const pll::FullPllModel full(pll::Params::paper_third_order());
  pll::FullSimOptions fopt;
  fopt.tau_max = 3.0 * bound;  // ripple means the full model is a bit slower
  const pll::FullSimResult run = full.simulate({1.0, -0.5}, 0.3, fopt);
  EXPECT_TRUE(run.locked);
}

TEST(Integration, FourthOrderPipelinePlusMonteCarlo) {
  const pll::ReducedModel model = pll::make_averaged(pll::Params::paper_fourth_order());
  core::PipelineOptions opt;
  opt.lyapunov.certificate_degree = 2;
  opt.lyapunov.flow_decrease = core::FlowDecrease::Strict;
  opt.lyapunov.strict_margin = 1e-5;
  opt.lyapunov.maximize_region = true;
  opt.advection.h = 0.004;
  opt.advection.gamma = 0.01;
  opt.max_advection_iterations = 1;
  const core::PipelineReport report = core::InevitabilityVerifier(opt).verify(
      model.system, ellipsoid(model.system.nvars(), {5.0, 5.0, 5.0, 0.8}));
  EXPECT_EQ(report.verdict, core::Verdict::VerifiedWithEscape) << report.summary();

  // Invariance of the certified region under simulation.
  sim::DecreaseStudyOptions mopt;
  mopt.trials = 10;
  mopt.sim.dt = 4e-3;
  mopt.sim.t_max = 5.0;
  const sim::InvarianceStudyResult inv = sim::invariance_study(
      model.system, report.invariant,
      {{-8.0, 8.0}, {-8.0, 8.0}, {-8.0, 8.0}, {-1.0, 1.0}}, mopt);
  EXPECT_TRUE(inv.ok()) << inv.stayed << "/" << inv.total;
}

TEST(Integration, EscapeRegionIsActuallyLeft) {
  // Simulate from inside the escape region of the 3rd-order pipeline and
  // confirm trajectories exit it in bounded time (Prop. 1's conclusion).
  const pll::ReducedModel model = pll::make_averaged(pll::Params::paper_third_order());
  core::PipelineOptions opt;
  opt.lyapunov.certificate_degree = 2;
  opt.lyapunov.flow_decrease = core::FlowDecrease::Strict;
  opt.lyapunov.strict_margin = 1e-4;
  opt.lyapunov.maximize_region = true;
  opt.max_advection_iterations = 0;
  opt.escape.certificate_degree = 2;
  const Polynomial b_init = ellipsoid(model.system.nvars(), {6.0, 5.0, 0.9});
  const core::PipelineReport report =
      core::InevitabilityVerifier(opt).verify(model.system, b_init);
  ASSERT_EQ(report.verdict, core::Verdict::VerifiedWithEscape) << report.summary();

  const hybrid::Simulator sim(model.system);
  util::Rng rng(11);
  const std::size_t nvars = model.system.nvars();
  int tested = 0;
  for (int s = 0; s < 500 && tested < 10; ++s) {
    linalg::Vector x(3);
    x[0] = rng.uniform(-6.0, 6.0);
    x[1] = rng.uniform(-5.0, 5.0);
    x[2] = rng.uniform(-0.9, 0.9);
    linalg::Vector full(nvars, 0.0);
    std::copy(x.begin(), x.end(), full.begin());
    const bool in_region = b_init.eval(full) <= 0.0 &&
                           !report.invariant.contains_consistent(full);
    if (!in_region) continue;
    ++tested;
    hybrid::SimOptions sopt;
    sopt.dt = 2e-3;
    sopt.t_max = 100.0;
    sopt.stop_when = [&](const hybrid::TracePoint& pt) {
      linalg::Vector f(nvars, 0.0);
      std::copy(pt.x.begin(), pt.x.end(), f.begin());
      return report.invariant.contains_consistent(f);
    };
    const hybrid::SimResult run = sim.run(0, x, sopt);
    EXPECT_EQ(run.stop_reason, "stop_when") << "trajectory failed to reach the invariant";
  }
  EXPECT_GE(tested, 5);
}

}  // namespace
}  // namespace soslock
