// Tests for the sparsity subsystem: chordal-graph machinery (util/chordal),
// correlative-sparsity Gram clique splitting (poly/sparsity), csp-restricted
// multiplier bases, the SDP-level chordal conversion pass (sdp/chordal), and
// the end-to-end guarantees — recombined clique certificates equal the dense
// ones, soundness verdicts match the dense path, and structure fingerprints
// separate the Off/Correlative/Chordal modes so stale warm blobs are
// rejected.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/lyapunov.hpp"
#include "linalg/eigen_sym.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"
#include "poly/sparsity.hpp"
#include "sdp/chordal.hpp"
#include "sdp/ipm.hpp"
#include "sdp/solver.hpp"
#include "sdp/structure.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"
#include "util/chordal.hpp"

namespace soslock {
namespace {

using linalg::Matrix;
using poly::Monomial;
using poly::Polynomial;

util::Adjacency make_adj(std::size_t n, const std::vector<std::pair<int, int>>& edges) {
  util::Adjacency adj(n, std::vector<bool>(n, false));
  for (const auto& [a, b] : edges) {
    adj[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
    adj[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = true;
  }
  return adj;
}

/// Running-intersection property of a clique forest: every clique's overlap
/// with the union of its predecessors lies inside its parent.
void expect_rip(const util::CliqueForest& forest) {
  std::vector<bool> seen;
  for (std::size_t k = 0; k < forest.cliques.size(); ++k) {
    ASSERT_LE(forest.parent[k], k);  // preorder: parents come first (or self)
    for (const std::size_t v : forest.cliques[k]) {
      if (v >= seen.size()) seen.resize(v + 1, false);
    }
  }
  std::vector<bool> placed(seen.size(), false);
  for (std::size_t k = 0; k < forest.cliques.size(); ++k) {
    const auto& parent = forest.cliques[forest.parent[k]];
    for (const std::size_t v : forest.cliques[k]) {
      if (placed[v]) {
        EXPECT_TRUE(std::binary_search(parent.begin(), parent.end(), v))
            << "RIP violated: vertex " << v << " of clique " << k
            << " seen before but not in parent";
      }
    }
    for (const std::size_t v : forest.cliques[k]) placed[v] = true;
  }
}

TEST(ChordalCliques, PathGraphSplitsIntoEdges) {
  // 0-1-2-3 is already chordal; maximal cliques are the edges.
  const auto forest = util::chordal_cliques(4, make_adj(4, {{0, 1}, {1, 2}, {2, 3}}));
  EXPECT_EQ(forest.cliques.size(), 3u);
  EXPECT_EQ(forest.max_clique_size(), 2u);
  EXPECT_TRUE(forest.covers(4));
  expect_rip(forest);
}

TEST(ChordalCliques, CycleGetsFillIn) {
  // 4-cycle: one fill edge -> two triangles.
  const auto forest =
      util::chordal_cliques(4, make_adj(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
  EXPECT_EQ(forest.cliques.size(), 2u);
  EXPECT_EQ(forest.max_clique_size(), 3u);
  EXPECT_TRUE(forest.covers(4));
  expect_rip(forest);
}

TEST(ChordalCliques, IsolatedVerticesBecomeSingletons) {
  const auto forest = util::chordal_cliques(3, make_adj(3, {{0, 1}}));
  EXPECT_EQ(forest.cliques.size(), 2u);
  EXPECT_TRUE(forest.covers(3));
  expect_rip(forest);
}

TEST(ChordalCliques, CompleteGraphIsOneClique) {
  const auto forest =
      util::chordal_cliques(3, make_adj(3, {{0, 1}, {0, 2}, {1, 2}}));
  ASSERT_EQ(forest.cliques.size(), 1u);
  EXPECT_EQ(forest.cliques[0], (std::vector<std::size_t>{0, 1, 2}));
}

// --- correlative Gram split ------------------------------------------------

Polynomial disjoint_pair_quartic() {
  // (x0^2 + x1^2)^2 + (x2^2 + x3^2)^2: csp cliques {0,1} and {2,3}.
  const Polynomial x0 = Polynomial::variable(4, 0), x1 = Polynomial::variable(4, 1);
  const Polynomial x2 = Polynomial::variable(4, 2), x3 = Polynomial::variable(4, 3);
  const Polynomial a = x0 * x0 + x1 * x1;
  const Polynomial b = x2 * x2 + x3 * x3;
  return a * a + b * b;
}

TEST(GramCliqueSplit, DisjointQuarticSplitsInTwo) {
  const Polynomial p = disjoint_pair_quartic();
  const poly::GramCliqueSplit split =
      poly::split_gram_basis(4, poly::support_info(p), poly::GramPrune::Newton);
  ASSERT_EQ(split.bases.size(), 2u);
  EXPECT_LT(split.max_basis_size(), split.dense_size);
  for (const auto& basis : split.bases) EXPECT_EQ(basis.size(), 3u);  // {xi^2, xi xj, xj^2}
}

TEST(GramCliqueSplit, DenseSupportFallsBackToSingleClique) {
  // x0^2 x1^2 couples everything: single clique == dense basis.
  const Polynomial x0 = Polynomial::variable(2, 0), x1 = Polynomial::variable(2, 1);
  const Polynomial p = x0 * x0 * x1 * x1 + x0 * x0 + x1 * x1;
  const poly::GramCliqueSplit split =
      poly::split_gram_basis(2, poly::support_info(p), poly::GramPrune::Newton);
  EXPECT_TRUE(split.trivial());
  EXPECT_EQ(split.max_basis_size(), split.dense_size);
}

TEST(MultiplierSparsity, DropsDataInactiveVariables) {
  // Data couples {0,1,2}; variable 3 is inactive -> multipliers of a
  // state-constraint never see it, a parameter-only constraint gets a
  // univariate basis.
  poly::MultiplierSparsity csp(4, true);
  Polynomial v(4);
  for (int i = 0; i < 3; ++i)
    for (int j = i; j < 3; ++j)
      v += Polynomial::variable(4, static_cast<std::size_t>(i)) *
           Polynomial::variable(4, static_cast<std::size_t>(j));
  csp.couple(v);
  const Polynomial g_state = Polynomial::variable(4, 0) + Polynomial::constant(4, 8.0);
  const auto basis = csp.multiplier_basis(g_state, 2);
  EXPECT_EQ(basis.size(), 4u);  // {1, x0, x1, x2}; dense would be 5
  for (const Monomial& m : basis) EXPECT_EQ(m.exponent(3), 0u);

  const Polynomial g_param = Polynomial::variable(4, 3) + Polynomial::constant(4, 1.0);
  EXPECT_EQ(csp.multiplier_basis(g_param, 2).size(), 2u);  // {1, x3}

  poly::MultiplierSparsity off(4, false);
  EXPECT_EQ(off.multiplier_basis(g_state, 2).size(), 5u);
}

// --- end-to-end: sparse SOS solves ----------------------------------------

TEST(SparseSos, RecombinedCliqueCertificateEqualsDense) {
  const Polynomial p = disjoint_pair_quartic();
  sdp::SolverConfig config;
  config.backend = "ipm";

  sos::SosProgram dense(4);
  dense.set_trace_regularization(1e-8);
  dense.add_sos_constraint(p, "p");
  const sos::SolveResult dense_result = dense.solve(config);
  ASSERT_TRUE(dense_result.feasible);
  ASSERT_TRUE(sos::audit(dense, dense_result).ok);

  sos::SosProgram sparse(4);
  sparse.set_trace_regularization(1e-8);
  sparse.set_sparsity(sdp::SparsityOptions::Correlative);
  sparse.add_sos_constraint(p, "p");
  ASSERT_EQ(sparse.gram_blocks().size(), 2u);  // one block per clique
  const sos::SolveResult sparse_result = sparse.solve(config);
  ASSERT_TRUE(sparse_result.feasible);
  ASSERT_TRUE(sos::audit(sparse, sparse_result).ok);

  // The recombined clique certificate is a dense PSD Gram representing the
  // same polynomial as the dense certificate (p itself).
  const sos::GramCertificate combined = sos::recombine_cliques(sparse_result.grams);
  ASSERT_EQ(combined.gram.rows(), combined.basis.size());
  EXPECT_GE(linalg::min_eigenvalue(combined.gram), -1e-8);
  const Polynomial recombined_poly = combined.polynomial(4);
  const Polynomial dense_poly = dense_result.grams.front().polynomial(4);
  const Polynomial diff = recombined_poly - dense_poly;
  EXPECT_LE(diff.coeff_norm_inf(), 1e-5 * std::max(1.0, p.coeff_norm_inf()));
  // And both reproduce p.
  EXPECT_LE((recombined_poly - p).coeff_norm_inf(), 1e-5 * p.coeff_norm_inf());
}

TEST(SparseSos, MotzkinAdjacentVerdictsMatchDense) {
  // Motzkin is not SOS: the sparse path must agree (no false positives), and
  // the SOS-able companion (x^2+y^2+1)*Motzkin must stay verifiable.
  const Polynomial x = Polynomial::variable(2, 0), y = Polynomial::variable(2, 1);
  const Polynomial motzkin =
      x.pow(4) * y * y + x * x * y.pow(4) - 3.0 * x * x * y * y + Polynomial::constant(2, 1.0);

  for (const Polynomial& p : {motzkin, (x * x + y * y + 1.0) * motzkin}) {
    sdp::SolverConfig config;
    config.backend = "ipm";
    bool verdict[2];
    int slot = 0;
    for (const auto mode : {sdp::SparsityOptions::Off, sdp::SparsityOptions::Correlative}) {
      sos::SosProgram prog(2);
      prog.set_trace_regularization(1e-8);
      prog.set_sparsity(mode);
      prog.add_sos_constraint(p, "p");
      const sos::SolveResult result = prog.solve(config);
      verdict[slot++] = result.feasible && sos::audit(prog, result).ok;
    }
    EXPECT_EQ(verdict[0], verdict[1]) << "sparse verdict diverged on " << p.str();
  }
}

TEST(SparseSos, BaseSpaceBlobsCrossCompatibleModesAndRejectForeignOnes) {
  // Warm blobs live in the base (pre-lowering) space. Modes that compile
  // different Gram blocks (Off vs Correlative: one dense block vs one per
  // clique) separate naturally through the compiled structure fingerprint,
  // so a stale blob from one can never leak into the other. Modes that
  // compile identically (Correlative vs Chordal on this program: the
  // SDP-level conversion pass is a no-op on complete Gram patterns) now
  // deliberately *share* blobs — the whole point of replacing the PR 3
  // fingerprint salting with per-clique remapping.
  const Polynomial p = disjoint_pair_quartic();
  sdp::SolverConfig config;
  config.backend = "ipm";
  std::vector<std::uint64_t> prints;
  std::vector<sos::SolveResult> results;
  for (const auto mode : {sdp::SparsityOptions::Off, sdp::SparsityOptions::Correlative,
                          sdp::SparsityOptions::Chordal}) {
    sos::SosProgram prog(4);
    prog.set_trace_regularization(1e-8);
    prog.set_sparsity(mode);
    prog.add_sos_constraint(p, "p");
    results.push_back(prog.solve(config));
    ASSERT_TRUE(results.back().feasible);
    ASSERT_FALSE(results.back().warm.empty());
    prints.push_back(results.back().warm.fingerprint);
  }
  EXPECT_NE(prints[0], prints[1]);  // different compiled blocks
  EXPECT_NE(prints[0], prints[2]);
  EXPECT_EQ(prints[1], prints[2]);  // identical compiled blocks: blobs transfer

  // Replaying the Off blob into a Correlative solve is rejected: the solve
  // runs cold and still succeeds.
  sos::SosProgram sparse(4);
  sparse.set_trace_regularization(1e-8);
  sparse.set_sparsity(sdp::SparsityOptions::Correlative);
  sparse.add_sos_constraint(p, "p");
  sos::SolveResult cold = sparse.solve(config);
  const sos::SolveResult replay = sparse.solve(config, &results[0].warm);
  EXPECT_TRUE(replay.feasible);
  EXPECT_EQ(replay.sdp.iterations, cold.sdp.iterations);  // identical cold solve

  // And the Correlative blob replays *warm* into a Chordal solve.
  sos::SosProgram chordal(4);
  chordal.set_trace_regularization(1e-8);
  chordal.set_sparsity(sdp::SparsityOptions::Chordal);
  chordal.add_sos_constraint(p, "p");
  const sos::SolveResult cross = chordal.solve(config, &results[1].warm);
  EXPECT_TRUE(cross.feasible);
  EXPECT_LT(cross.sdp.iterations, cold.sdp.iterations);
}

// --- SDP-level chordal conversion -----------------------------------------

/// Feasible banded min-trace SDP: b = A(X*) for a banded PSD X* and banded
/// coefficients, so the aggregate pattern is a path-like band.
sdp::Problem banded_sdp(std::size_t n) {
  sdp::Problem p;
  const std::size_t blk = p.add_block(n);
  p.set_block_objective(blk, Matrix::identity(n));
  // X* = tridiagonal diagonally-dominant PSD matrix.
  Matrix xstar(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    xstar(i, i) = 2.0 + 0.1 * static_cast<double>(i % 3);
    if (i + 1 < n) {
      xstar(i, i + 1) = 0.7;
      xstar(i + 1, i) = 0.7;
    }
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    sdp::Row row;
    sdp::SparseSym a;
    a.add(i, i, 1.0);
    a.add(i, i + 1, 0.5 + 0.1 * static_cast<double>(i % 2));
    a.add(i + 1, i + 1, -0.3);
    Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[blk] = std::move(a);
    p.add_row(std::move(row));
  }
  return p;
}

TEST(ChordalConversion, BandedBlockDecomposesAndRecovers) {
  const std::size_t n = 30;
  sdp::Problem dense_problem = banded_sdp(n);
  const sdp::Solution dense_sol = sdp::IpmSolver().solve(dense_problem);
  ASSERT_EQ(dense_sol.status, sdp::SolveStatus::Optimal);

  sdp::Problem converted = banded_sdp(n);
  sdp::ChordalOptions options;
  options.min_block_size = 8;
  const sdp::ChordalMap map = sdp::chordal_decompose(converted, options);
  ASSERT_FALSE(map.identity());
  EXPECT_LT(map.max_clique_size(), n);
  std::size_t max_converted = 0;
  for (std::size_t j = 0; j < converted.num_blocks(); ++j)
    max_converted = std::max(max_converted, converted.block_size(j));
  EXPECT_LT(max_converted, n);  // the cone genuinely shrank

  const sdp::Solution conv_sol = sdp::IpmSolver().solve(converted);
  ASSERT_EQ(conv_sol.status, sdp::SolveStatus::Optimal);
  // The conversion is exact: optimal values agree.
  EXPECT_NEAR(conv_sol.primal_objective, dense_sol.primal_objective,
              1e-5 * (1.0 + std::fabs(dense_sol.primal_objective)));

  // Recovery: dense-shaped solution, PSD (completion), primal feasible.
  const sdp::Solution recovered = sdp::recover_original(conv_sol, map);
  ASSERT_EQ(recovered.x.size(), 1u);
  ASSERT_EQ(recovered.x[0].rows(), n);
  ASSERT_EQ(recovered.y.size(), dense_problem.num_rows());
  EXPECT_GE(linalg::min_eigenvalue(recovered.x[0]), -1e-7);
  EXPECT_GE(linalg::min_eigenvalue(recovered.z[0]), -1e-7);
  for (std::size_t i = 0; i < dense_problem.num_rows(); ++i) {
    double ax = 0.0;
    for (const auto& [j, a] : dense_problem.rows()[i].blocks)
      ax += a.dot(recovered.x[j]);
    EXPECT_NEAR(ax, dense_problem.rhs(i), 1e-5 * (1.0 + std::fabs(dense_problem.rhs(i))));
  }
  // Dual slack identity Z = C - sum_i y_i A_i holds for the recovered pair.
  Matrix slack = dense_problem.block_objective(0);
  for (std::size_t i = 0; i < dense_problem.num_rows(); ++i)
    dense_problem.rows()[i].blocks.at(0).add_to(slack, -recovered.y[i]);
  slack -= recovered.z[0];
  EXPECT_LE(linalg::norm_inf(slack), 1e-6);
}

TEST(ChordalConversion, SmallAndDenseBlocksAreLeftAlone) {
  sdp::Problem small = banded_sdp(6);
  const std::uint64_t before = sdp::structure_fingerprint(small);
  const sdp::ChordalMap map = sdp::chordal_decompose(small, {});
  EXPECT_TRUE(map.identity());
  EXPECT_EQ(sdp::structure_fingerprint(small), before);  // untouched
}

// --- pipeline-level: pump-vertex Lyapunov dense vs chordal ----------------

TEST(SparsePipeline, PumpVertexLyapunovVerdictsMatchDense) {
  const pll::ReducedModel model =
      pll::make_averaged_vertices(pll::Params::paper_third_order());
  core::LyapunovOptions base;
  base.certificate_degree = 2;
  base.flow_decrease = core::FlowDecrease::Strict;
  base.strict_margin = 1e-4;
  base.maximize_region = true;

  core::LyapunovOptions dense_opt = base;
  const core::LyapunovResult dense = core::LyapunovSynthesizer(dense_opt).synthesize(model.system);

  core::LyapunovOptions sparse_opt = base;
  sparse_opt.solver.sparsity = sdp::SparsityOptions::Chordal;
  const core::LyapunovResult sparse =
      core::LyapunovSynthesizer(sparse_opt).synthesize(model.system);

  EXPECT_EQ(dense.success, sparse.success);
  if (dense.success) {
    EXPECT_TRUE(sparse.audit.ok);
    ASSERT_EQ(dense.certificates.size(), sparse.certificates.size());
  }
}

// --- clock-tree cascade: the first genuinely non-complete Lyapunov csp ----

TEST(SparsePipeline, ClockTreeSparseTemplateSplitsConesAndMatchesDenseVerdict) {
  pll::ClockTreeOptions tree;
  tree.loops = 3;
  const pll::ClockTreeModel model =
      pll::make_clock_tree(pll::Params::paper_third_order(), tree);
  ASSERT_EQ(model.system.nstates(), 7u);

  core::LyapunovOptions base;
  base.certificate_degree = 2;
  base.flow_decrease = core::FlowDecrease::Strict;
  base.strict_margin = 1e-5;

  core::LyapunovOptions dense_opt = base;
  const core::LyapunovResult dense =
      core::LyapunovSynthesizer(dense_opt).synthesize(model.system);
  ASSERT_TRUE(dense.success);

  core::LyapunovOptions sparse_opt = base;
  sparse_opt.sparse_template = true;
  sparse_opt.solver.sparsity = sdp::SparsityOptions::Correlative;
  const core::LyapunovResult sparse =
      core::LyapunovSynthesizer(sparse_opt).synthesize(model.system);
  EXPECT_TRUE(sparse.success);
  EXPECT_TRUE(sparse.audit.ok);

  // The clique-structured template keeps -V̇'s csp graph non-complete, so
  // the correlative split hands the backend genuinely smaller cones.
  EXPECT_LT(sparse.solver.max_cone, dense.solver.max_cone);

  // The sparse template really is sparse: fewer monomials than the dense
  // state template, and restricted to the flow-coupling cliques.
  const auto dense_support = core::state_monomials(7, 7, 2, 2);
  const auto sparse_support = core::sparse_state_monomials(model.system, 2, 2);
  EXPECT_LT(sparse_support.size(), dense_support.size());
}

}  // namespace
}  // namespace soslock
