// Tests for semialgebraic sets, hybrid system structure, and the simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "hybrid/semialgebraic.hpp"
#include "hybrid/simulator.hpp"
#include "hybrid/system.hpp"

namespace soslock::hybrid {
namespace {

using linalg::Vector;
using poly::Polynomial;

TEST(SemialgebraicSet, IntervalMembership) {
  SemialgebraicSet s(2);
  s.add_interval(0, -1.0, 2.0);
  EXPECT_TRUE(s.contains({0.0, 100.0}));
  EXPECT_TRUE(s.contains({2.0, 0.0}));
  EXPECT_FALSE(s.contains({2.1, 0.0}));
  EXPECT_FALSE(s.contains({-1.5, 0.0}));
}

TEST(SemialgebraicSet, BallMembership) {
  SemialgebraicSet s(3);
  s.add_ball({0, 1}, 2.0);  // x0^2 + x1^2 <= 4, x2 unconstrained
  EXPECT_TRUE(s.contains({1.0, 1.0, 50.0}));
  EXPECT_FALSE(s.contains({2.0, 1.5, 0.0}));
}

TEST(SemialgebraicSet, IntersectCombines) {
  SemialgebraicSet a(1), b(1);
  a.add_interval(0, 0.0, 10.0);
  b.add_interval(0, 5.0, 20.0);
  const SemialgebraicSet c = a.intersect(b);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_TRUE(c.contains({7.0}));
  EXPECT_FALSE(c.contains({3.0}));
}

TEST(SemialgebraicSet, ToleranceSlack) {
  SemialgebraicSet s(1);
  s.add_interval(0, 0.0, 1.0);
  EXPECT_FALSE(s.contains({-1e-6}));
  EXPECT_TRUE(s.contains({-1e-6}, 1e-5));
}

TEST(SemialgebraicSet, RemapKeepsGeometry) {
  SemialgebraicSet s(1);
  s.add_interval(0, 0.0, 1.0);
  const SemialgebraicSet r = s.remap(3, {2});
  EXPECT_TRUE(r.contains({9.0, 9.0, 0.5}));
  EXPECT_FALSE(r.contains({0.5, 0.5, 2.0}));
}

TEST(SemialgebraicSet, BoxHelper) {
  const SemialgebraicSet s = box_set(2, {{-1.0, 1.0}, {0.0, 2.0}});
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.contains({0.0, 1.0}));
  EXPECT_FALSE(s.contains({0.0, -0.5}));
}

HybridSystem linear_decay_system() {
  // One mode, x' = -x, no params.
  HybridSystem sys(1, 0);
  Mode m;
  m.name = "decay";
  m.flow = {-1.0 * Polynomial::variable(1, 0)};
  m.domain = SemialgebraicSet(1);
  sys.add_mode(std::move(m));
  return sys;
}

TEST(HybridSystem, ValidateCatchesBadFlowArity) {
  HybridSystem sys(2, 0);
  Mode m;
  m.flow = {Polynomial::variable(2, 0)};  // only 1 component for 2 states
  m.domain = SemialgebraicSet(2);
  // add_mode asserts in debug; use validate on a system built with the right
  // arity but inconsistent var space instead.
  Mode ok;
  ok.flow = {Polynomial::variable(3, 0), Polynomial::variable(3, 1)};  // 3 vars != 2
  ok.domain = SemialgebraicSet(2);
  sys.add_mode(std::move(ok));
  EXPECT_FALSE(sys.validate().empty());
}

TEST(HybridSystem, EvalFlowWithParams) {
  // x' = u * x with u as parameter.
  HybridSystem sys(1, 1);
  Mode m;
  m.flow = {Polynomial::variable(2, 0) * Polynomial::variable(2, 1)};
  m.domain = SemialgebraicSet(2);
  sys.add_mode(std::move(m));
  sys.set_nominal_parameters({3.0});
  const Vector dx = sys.eval_flow(0, {2.0}, {3.0});
  EXPECT_DOUBLE_EQ(dx[0], 6.0);
}

TEST(Simulator, ExponentialDecayMatchesClosedForm) {
  const HybridSystem sys = linear_decay_system();
  const Simulator sim(sys);
  SimOptions opt;
  opt.dt = 1e-3;
  opt.t_max = 1.0;
  const SimResult r = sim.run(0, {1.0}, opt);
  EXPECT_EQ(r.stop_reason, "t_max");
  EXPECT_NEAR(r.final().x[0], std::exp(-1.0), 1e-6);
}

TEST(Simulator, HarmonicOscillatorEnergyConserved) {
  HybridSystem sys(2, 0);
  Mode m;
  m.flow = {Polynomial::variable(2, 1), -1.0 * Polynomial::variable(2, 0)};
  m.domain = SemialgebraicSet(2);
  sys.add_mode(std::move(m));
  const Simulator sim(sys);
  SimOptions opt;
  opt.dt = 1e-3;
  opt.t_max = 6.283185307179586;  // one period
  const SimResult r = sim.run(0, {1.0, 0.0}, opt);
  EXPECT_NEAR(r.final().x[0], 1.0, 1e-5);
  EXPECT_NEAR(r.final().x[1], 0.0, 1e-5);
}

HybridSystem bouncing_ball() {
  // states (h, v): h' = v, v' = -1; jump at h <= 0, v < 0: v := -0.5 v.
  HybridSystem sys(2, 0);
  Mode m;
  m.name = "fall";
  m.flow = {Polynomial::variable(2, 1), Polynomial::constant(2, -1.0)};
  m.domain = SemialgebraicSet(2);
  m.domain.add_constraint(Polynomial::variable(2, 0));  // h >= 0
  sys.add_mode(std::move(m));
  Jump j;
  j.from = 0;
  j.to = 0;
  j.guard = SemialgebraicSet(2);
  j.guard.add_constraint(-1.0 * Polynomial::variable(2, 1));  // v <= 0
  j.reset = {Polynomial::variable(2, 0), -0.5 * Polynomial::variable(2, 1)};
  sys.add_jump(std::move(j));
  return sys;
}

TEST(Simulator, BouncingBallJumpsAndDecays) {
  const HybridSystem sys = bouncing_ball();
  const Simulator sim(sys);
  SimOptions opt;
  opt.dt = 1e-3;
  opt.t_max = 10.0;
  opt.max_jumps = 50;
  const SimResult r = sim.run(0, {1.0, 0.0}, opt);
  // First impact at t = sqrt(2) with v = -sqrt(2); after jump v = sqrt(2)/2.
  int jumps_seen = r.final().jumps;
  EXPECT_GE(jumps_seen, 3);
  // Energy decreases across jumps: final height bounded by a small value.
  double max_h_late = 0.0;
  for (const TracePoint& pt : r.trace) {
    if (pt.t > 8.0) max_h_late = std::max(max_h_late, pt.x[0]);
  }
  EXPECT_LT(max_h_late, 0.2);
}

TEST(Simulator, BouncingBallFirstImpactTime) {
  const HybridSystem sys = bouncing_ball();
  const Simulator sim(sys);
  SimOptions opt;
  opt.dt = 1e-3;
  opt.t_max = 2.0;
  opt.max_jumps = 1;
  const SimResult r = sim.run(0, {1.0, 0.0}, opt);
  EXPECT_EQ(r.stop_reason, "max_jumps");
  EXPECT_NEAR(r.final().t, std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(r.final().x[1], std::sqrt(2.0) / 2.0, 1e-2);
}

TEST(Simulator, StopWhenPredicate) {
  const HybridSystem sys = linear_decay_system();
  const Simulator sim(sys);
  SimOptions opt;
  opt.dt = 1e-3;
  opt.t_max = 10.0;
  opt.stop_when = [](const TracePoint& pt) { return pt.x[0] < 0.5; };
  const SimResult r = sim.run(0, {1.0}, opt);
  EXPECT_EQ(r.stop_reason, "stop_when");
  EXPECT_NEAR(r.final().t, std::log(2.0), 5e-3);
}

TEST(Simulator, StuckWhenNoJumpEnabled) {
  // Domain x <= 1, flow x' = +1, no jumps: must stop as "stuck" at x = 1.
  HybridSystem sys(1, 0);
  Mode m;
  m.flow = {Polynomial::constant(1, 1.0)};
  m.domain = SemialgebraicSet(1);
  m.domain.add_interval(0, -10.0, 1.0);
  sys.add_mode(std::move(m));
  const Simulator sim(sys);
  SimOptions opt;
  opt.dt = 1e-2;
  opt.t_max = 5.0;
  const SimResult r = sim.run(0, {0.0}, opt);
  EXPECT_TRUE(r.stuck());
  EXPECT_NEAR(r.final().x[0], 1.0, 1e-6);
}

}  // namespace
}  // namespace soslock::hybrid
