// Tests for multiple-Lyapunov certificate synthesis (SOS program 1).
#include <gtest/gtest.h>

#include "core/lyapunov.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"

namespace soslock::core {
namespace {

using hybrid::HybridSystem;
using hybrid::Mode;
using hybrid::SemialgebraicSet;
using poly::Polynomial;

HybridSystem stable_linear_2d() {
  HybridSystem sys(2, 0);
  Mode m;
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  m.flow = {-1.0 * x + y, -1.0 * x - y};
  m.domain = SemialgebraicSet(2);
  m.domain.add_interval(0, -2.0, 2.0);
  m.domain.add_interval(1, -2.0, 2.0);
  m.contains_equilibrium = true;
  sys.add_mode(std::move(m));
  return sys;
}

TEST(Lyapunov, StableLinearSystemStrict) {
  LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.flow_decrease = FlowDecrease::Strict;
  const LyapunovResult r = LyapunovSynthesizer(opt).synthesize(stable_linear_2d());
  ASSERT_TRUE(r.success) << r.message;
  ASSERT_EQ(r.certificates.size(), 1u);
  const Polynomial& v = r.certificates.front();
  EXPECT_GT(v.eval({1.0, 0.5}), 0.0);
  EXPECT_LT(v.lie_derivative({-1.0 * Polynomial::variable(2, 0) + Polynomial::variable(2, 1),
                              -1.0 * Polynomial::variable(2, 0) - Polynomial::variable(2, 1)})
                .eval({1.0, 0.5}),
            0.0);
}

TEST(Lyapunov, UnstableSystemRejected) {
  HybridSystem sys(2, 0);
  Mode m;
  m.flow = {Polynomial::variable(2, 0), Polynomial::variable(2, 1)};
  m.domain = SemialgebraicSet(2);
  m.domain.add_interval(0, -1.0, 1.0);
  m.domain.add_interval(1, -1.0, 1.0);
  m.contains_equilibrium = true;
  sys.add_mode(std::move(m));
  LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.flow_decrease = FlowDecrease::Strict;
  const LyapunovResult r = LyapunovSynthesizer(opt).synthesize(sys);
  EXPECT_FALSE(r.success);
}

TEST(Lyapunov, RejectsOddDegree) {
  LyapunovOptions opt;
  opt.certificate_degree = 3;
  const LyapunovResult r = LyapunovSynthesizer(opt).synthesize(stable_linear_2d());
  EXPECT_FALSE(r.success);
}

HybridSystem switched_linear_surface_guards() {
  // Piecewise-linear system: mode 0 on {x >= 0}, mode 1 on {x <= 0}, guards
  // on the switching surface x = 0 (represented as {x >= 0} ∩ {-x >= 0}).
  // Both subsystems are stable spirals; a common quadratic V exists, and the
  // multiple-certificate machinery must find (possibly equal) V_0, V_1.
  HybridSystem sys(2, 0);
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  Mode m0;
  m0.flow = {-0.5 * x + y, -1.0 * x - 0.5 * y};
  m0.domain = SemialgebraicSet(2);
  m0.domain.add_constraint(x);
  m0.domain.add_interval(1, -3.0, 3.0);
  m0.contains_equilibrium = true;
  Mode m1;
  m1.flow = {-0.5 * x + 2.0 * y, -0.5 * x - 0.5 * y};
  m1.domain = SemialgebraicSet(2);
  m1.domain.add_constraint(-1.0 * x);
  m1.domain.add_interval(1, -3.0, 3.0);
  m1.contains_equilibrium = true;
  sys.add_mode(std::move(m0));
  sys.add_mode(std::move(m1));

  SemialgebraicSet surface(2);
  surface.add_constraint(x);
  surface.add_constraint(-1.0 * x);
  surface.add_interval(1, -3.0, 3.0);
  sys.add_jump({0, 1, surface, {}, "x=0 down"});
  sys.add_jump({1, 0, surface, {}, "x=0 up"});
  return sys;
}

TEST(Lyapunov, SwitchedSystemMultipleCertificates) {
  LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.flow_decrease = FlowDecrease::Strict;
  opt.strict_margin = 1e-3;
  const LyapunovResult r =
      LyapunovSynthesizer(opt).synthesize(switched_linear_surface_guards());
  ASSERT_TRUE(r.success) << r.message;
  ASSERT_EQ(r.certificates.size(), 2u);
  // Each V decreases along its own mode's flow at an interior sample point.
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  EXPECT_LT(r.certificates[0]
                .lie_derivative({-0.5 * x + y, -1.0 * x - 0.5 * y})
                .eval({0.5, 0.5}),
            0.0);
  EXPECT_LT(r.certificates[1]
                .lie_derivative({-0.5 * x + 2.0 * y, -0.5 * x - 0.5 * y})
                .eval({-0.5, 0.5}),
            0.0);
}

TEST(Lyapunov, CommonCertificateOption) {
  LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.common_certificate = true;
  opt.flow_decrease = FlowDecrease::Strict;
  const LyapunovResult r =
      LyapunovSynthesizer(opt).synthesize(switched_linear_surface_guards());
  ASSERT_TRUE(r.success) << r.message;
  EXPECT_TRUE((r.certificates[0] - r.certificates[1]).is_zero());
}

TEST(Lyapunov, AveragedPll3StrictQuadratic) {
  // The continuized model is strictly asymptotically stable: strict margins
  // must be feasible (companion statement to the rigor note in DESIGN.md).
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_third_order());
  LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.flow_decrease = FlowDecrease::Strict;
  opt.strict_margin = 1e-4;
  const LyapunovResult r = LyapunovSynthesizer(opt).synthesize(m.system);
  EXPECT_TRUE(r.success) << r.message;
}

TEST(Lyapunov, HybridPll3FatGuardAbstractionHasNoCertificate) {
  // Reproduction finding (DESIGN.md): in the Remark-1-reduced 3-mode model
  // with fat mode domains (e in [0, 2] for UP), the pump modes have
  // unbounded dwell, so from (v=0, e=delta) the UP flow overshoots to
  // v2 ~ sqrt(2*rho*delta/kappa). Any positive definite V would need
  // V(exit) <= V(entry), i.e. eps*(2rho/kappa)*delta <= C*delta^2 as
  // delta -> 0 — impossible. The SOS program must therefore be infeasible
  // at every degree; we check degree 4.
  const pll::ReducedModel m = pll::make_reduced(pll::Params::paper_third_order());
  LyapunovOptions opt;
  opt.certificate_degree = 4;
  opt.common_certificate = true;
  opt.flow_decrease = FlowDecrease::NonStrict;
  opt.solver.max_iterations = 60;
  const LyapunovResult r = LyapunovSynthesizer(opt).synthesize(m.system);
  EXPECT_FALSE(r.success);
}

TEST(Lyapunov, AveragedPll3WithPumpIntervalRobust) {
  // The P1 model actually certified by the pipeline: continuized pump with
  // the Table-1 Ip interval as an uncertain parameter (S-procedure box).
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_third_order());
  LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.flow_decrease = FlowDecrease::Strict;
  opt.strict_margin = 1e-4;
  const LyapunovResult r = LyapunovSynthesizer(opt).synthesize(m.system);
  ASSERT_TRUE(r.success) << r.message;
  // Decrease must hold at both (normalized) pump extremes.
  for (double u : {-1.0, 1.0}) {
    const linalg::Vector x = {0.5, -0.3, 0.4};
    const linalg::Vector dx = m.system.eval_flow(0, x, {u});
    // Numerical directional derivative of V along the flow.
    linalg::Vector full(m.system.nvars(), 0.0);
    std::copy(x.begin(), x.end(), full.begin());
    double dv = 0.0;
    for (std::size_t i = 0; i < 3; ++i)
      dv += r.certificates[0].derivative(i).eval(full) * dx[i];
    EXPECT_LT(dv, 0.0) << "u=" << u;
  }
}

TEST(Lyapunov, AveragedPll3RippleNeedsBallExclusion) {
  // With a nonzero continuization ripple the adversarial disturbance defeats
  // exact decrease at the origin; excluding a small ball restores
  // feasibility (practical stability).
  pll::ModelOptions mopt;
  mopt.ripple_bound = 0.05;
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_third_order(), mopt);
  LyapunovOptions strict;
  strict.certificate_degree = 2;
  strict.flow_decrease = FlowDecrease::Strict;
  strict.strict_margin = 1e-3;
  strict.solver.max_iterations = 60;
  EXPECT_FALSE(LyapunovSynthesizer(strict).synthesize(m.system).success);

  LyapunovOptions ball = strict;
  ball.strict_margin = 1e-4;
  ball.exclude_ball_radius = 2.0;  // radius 1.0 is infeasible at this ripple
  const LyapunovResult r = LyapunovSynthesizer(ball).synthesize(m.system);
  EXPECT_TRUE(r.success) << r.message;
}

TEST(Lyapunov, VertexRobustMatchesSProcedureBox) {
  // Ablation: interval robustness via vertex enumeration (2 modes, common V)
  // must agree with the S-procedure parameter box on feasibility.
  const pll::ReducedModel vertices =
      pll::make_averaged_vertices(pll::Params::paper_third_order());
  EXPECT_EQ(vertices.system.modes().size(), 2u);
  EXPECT_EQ(vertices.system.nparams(), 0u);
  LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.common_certificate = true;
  opt.flow_decrease = FlowDecrease::Strict;
  opt.strict_margin = 1e-4;
  const LyapunovResult r = LyapunovSynthesizer(opt).synthesize(vertices.system);
  ASSERT_TRUE(r.success) << r.message;
  // The common V decreases under BOTH vertex flows at a sample point.
  linalg::Vector full(vertices.system.nvars(), 0.0);
  full[0] = 0.4;
  full[1] = -0.2;
  full[2] = 0.3;
  for (std::size_t q = 0; q < 2; ++q) {
    const linalg::Vector dx = vertices.system.eval_flow(q, {0.4, -0.2, 0.3}, {});
    double dv = 0.0;
    for (std::size_t i = 0; i < 3; ++i)
      dv += r.certificates[q].derivative(i).eval(full) * dx[i];
    EXPECT_LT(dv, 0.0) << "vertex mode " << q;
  }
}

TEST(Lyapunov, AveragedPll4Quadratic) {
  const pll::ReducedModel m = pll::make_averaged(pll::Params::paper_fourth_order());
  LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.flow_decrease = FlowDecrease::Strict;
  opt.strict_margin = 1e-5;
  const LyapunovResult r = LyapunovSynthesizer(opt).synthesize(m.system);
  ASSERT_TRUE(r.success) << r.message;
}

TEST(Lyapunov, ModeParallelNoJumpsSolvesDecoupled) {
  // Two stable modes with no jumps: the decoupled path has nothing to
  // re-audit and must accept without falling back to the joint SDP, so the
  // telemetry records exactly one solve per mode.
  HybridSystem sys(2, 0);
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  for (double k : {0.5, 1.5}) {
    Mode m;
    m.flow = {-k * x + y, -1.0 * x - k * y};
    m.domain = SemialgebraicSet(2);
    m.domain.add_interval(0, -2.0, 2.0);
    m.domain.add_interval(1, -2.0, 2.0);
    m.contains_equilibrium = true;
    sys.add_mode(std::move(m));
  }
  LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.flow_decrease = FlowDecrease::Strict;
  opt.strict_margin = 1e-3;
  opt.mode_parallel = true;
  opt.threads = 2;
  const LyapunovResult r = LyapunovSynthesizer(opt).synthesize(sys);
  ASSERT_TRUE(r.success) << r.message;
  ASSERT_EQ(r.certificates.size(), 2u);
  EXPECT_EQ(r.solver.solves, 2);  // no jump checks, no joint fallback
  EXPECT_TRUE(r.audit.ok);
}

TEST(Lyapunov, ModeParallelWithJumpsStillSound) {
  // Surface-guard switched system: the decoupled certificates must pass the
  // jump re-audit or the synthesizer must fall back to the joint coupled
  // solve — either way the result is a sound set of certificates.
  LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.flow_decrease = FlowDecrease::Strict;
  opt.strict_margin = 1e-3;
  opt.mode_parallel = true;
  const LyapunovResult r =
      LyapunovSynthesizer(opt).synthesize(switched_linear_surface_guards());
  ASSERT_TRUE(r.success) << r.message;
  ASSERT_EQ(r.certificates.size(), 2u);
  EXPECT_TRUE(r.audit.ok);
  // Certificates decrease along their own mode's flow regardless of path.
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  EXPECT_LT(r.certificates[0]
                .lie_derivative({-0.5 * x + y, -1.0 * x - 0.5 * y})
                .eval({0.5, 0.5}),
            0.0);
}

TEST(Lyapunov, ModeParallelInfeasibleSystemStillRejected) {
  // The fat-guard 3-mode reduction has no certificate (see
  // HybridPll3FatGuardAbstractionHasNoCertificate): the decoupled path must
  // not manufacture one — the jump re-audit or fallback must reject.
  const pll::ReducedModel m = pll::make_reduced(pll::Params::paper_third_order());
  LyapunovOptions opt;
  opt.certificate_degree = 4;
  opt.flow_decrease = FlowDecrease::NonStrict;
  opt.mode_parallel = true;
  opt.solver.max_iterations = 60;
  const LyapunovResult r = LyapunovSynthesizer(opt).synthesize(m.system);
  EXPECT_FALSE(r.success);
}

TEST(Lyapunov, HybridPll3StrictIdleInfeasible) {
  // DESIGN.md rigor note, demonstrated: strict decrease in the idle mode is
  // impossible (v1 = v2 = v2*, e != 0 are flow equilibria).
  const pll::ReducedModel m = pll::make_reduced(pll::Params::paper_third_order());
  LyapunovOptions opt;
  opt.certificate_degree = 4;
  opt.common_certificate = true;
  opt.flow_decrease = FlowDecrease::Strict;
  opt.strict_margin = 1e-3;
  opt.solver.max_iterations = 60;
  const LyapunovResult r = LyapunovSynthesizer(opt).synthesize(m.system);
  EXPECT_FALSE(r.success);
}

}  // namespace
}  // namespace soslock::core
