// Tests for the staged SOS→SDP lowering pipeline (sdp/lowering) and native
// decomposed cones in the backends: pass provenance, native-vs-seam verdict
// parity on banded SDPs and the clock-tree coupling model, the
// Schur-complement geometry claim (zero overlap rows in the factored
// system), base-space warm blobs surviving min_block_size changes via
// per-clique remapping, the drift guard on stale canonical entry maps, and
// bitwise thread determinism of the overlap-multiplier Schur assembly.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen_sym.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"
#include "sdp/admm.hpp"
#include "sdp/ipm.hpp"
#include "sdp/lowering.hpp"
#include "sdp/solver.hpp"
#include "sdp/structure.hpp"

namespace soslock {
namespace {

using linalg::Matrix;
using sdp::Lowering;
using sdp::LoweringOptions;
using sdp::Problem;
using sdp::Solution;
using sdp::SolveStatus;

/// Feasible banded min-trace SDP: b = A(X*) for a banded PSD X* and banded
/// coefficients, so the aggregate pattern is a path-like band. `scale`
/// perturbs every coefficient value without touching a single position
/// (structurally identical problems for the LoweringCache tests);
/// `drop_entry` zeroes one off-diagonal coefficient — SparseSym::add drops
/// exact zeros, so the triplet set itself (and the fingerprint) changes.
Problem banded_sdp(std::size_t n, double scale = 1.0, bool drop_entry = false) {
  Problem p;
  const std::size_t blk = p.add_block(n);
  p.set_block_objective(blk, Matrix::identity(n));
  Matrix xstar(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    xstar(i, i) = scale * (2.0 + 0.1 * static_cast<double>(i % 3));
    if (i + 1 < n) {
      xstar(i, i + 1) = 0.7 * scale;
      xstar(i + 1, i) = 0.7 * scale;
    }
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    sdp::Row row;
    sdp::SparseSym a;
    a.add(i, i, scale);
    a.add(i, i + 1,
          i == 0 && drop_entry ? 0.0 : scale * (0.5 + 0.1 * static_cast<double>(i % 2)));
    a.add(i + 1, i + 1, -0.3 * scale);
    Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[blk] = std::move(a);
    p.add_row(std::move(row));
  }
  return p;
}

Problem clock_tree_sdp(std::size_t loops) {
  pll::ClockTreeOptions options;
  options.loops = loops;
  const pll::ClockTreeModel model =
      pll::make_clock_tree(pll::Params::paper_third_order(), options);
  return pll::clock_tree_coupling_sdp(model.constants, options);
}

LoweringOptions chordal_lowering(std::size_t min_block_size, bool at_seam = false) {
  LoweringOptions low;
  low.sparsity = sdp::SparsityOptions::Chordal;
  low.chordal.min_block_size = min_block_size;
  low.chordal.at_seam = at_seam;
  return low;
}

/// Primal feasibility of a recovered solution against the original problem.
double primal_violation(const Problem& original, const Solution& recovered) {
  double worst = 0.0;
  for (std::size_t i = 0; i < original.num_rows(); ++i) {
    double ax = 0.0;
    for (const auto& [j, a] : original.rows()[i].blocks) ax += a.dot(recovered.x[j]);
    for (const auto& [v, c] : original.rows()[i].free_coeffs) ax += c * recovered.w[v];
    worst = std::max(worst, std::fabs(original.rhs(i) - ax) /
                                (1.0 + std::fabs(original.rhs(i))));
  }
  return worst;
}

TEST(LoweringPipeline, PassesRecordProvenanceAndSeedTheCache) {
  const Lowering low = sdp::lower(banded_sdp(30), chordal_lowering(8));
  ASSERT_TRUE(low.decomposed());
  ASSERT_EQ(low.passes.size(), 4u);
  EXPECT_EQ(low.passes[0].name, "analyze");
  EXPECT_EQ(low.passes[1].name, "decompose");
  EXPECT_EQ(low.passes[2].name, "lower");
  EXPECT_EQ(low.passes[3].name, "equilibrate");
  EXPECT_EQ(low.passes[0].fingerprint, low.base_fingerprint);
  EXPECT_EQ(low.passes[3].fingerprint, low.lowered_fingerprint);
  EXPECT_NE(low.base_fingerprint, low.lowered_fingerprint);
  EXPECT_GT(low.convert_seconds, 0.0);

  // The seeded cache entry carries the provenance to the backends.
  const auto structure = sdp::StructureCache::global().get(low.problem);
  EXPECT_EQ(structure->base_fingerprint, low.base_fingerprint);
  ASSERT_EQ(structure->provenance.size(), 4u);
  EXPECT_EQ(structure->provenance[2].name, "lower");
}

TEST(LoweringPipeline, NativeLoweringAddsConesNotRows) {
  const Problem original = banded_sdp(30);
  const Lowering native = sdp::lower(banded_sdp(30), chordal_lowering(8, false));
  const Lowering seam = sdp::lower(banded_sdp(30), chordal_lowering(8, true));
  ASSERT_TRUE(native.decomposed());
  ASSERT_TRUE(seam.decomposed());

  // Native: original row count, overlap couplings on the cone. Seam: the
  // couplings are rows.
  EXPECT_EQ(native.problem.num_rows(), original.num_rows());
  EXPECT_GT(native.problem.num_overlaps(), 0u);
  EXPECT_FALSE(native.problem.cones().empty());
  EXPECT_EQ(seam.problem.num_rows(), original.num_rows() + native.problem.num_overlaps());
  EXPECT_EQ(seam.problem.num_overlaps(), 0u);

  // The two lowerings share the base space but are distinct structures.
  EXPECT_EQ(native.base_fingerprint, seam.base_fingerprint);
  EXPECT_NE(native.lowered_fingerprint, seam.lowered_fingerprint);
}

TEST(LoweringPipeline, NativeVsSeamVerdictParityOnBandedAndClockTree) {
  struct Case {
    const char* name;
    Problem problem;
    std::size_t min_block_size;
  };
  std::vector<Case> cases;
  cases.push_back({"banded", banded_sdp(30), 8});
  cases.push_back({"clock-tree", clock_tree_sdp(8), 4});

  for (Case& c : cases) {
    const Solution dense_sol = sdp::IpmSolver().solve(c.problem);
    ASSERT_EQ(dense_sol.status, SolveStatus::Optimal) << c.name;

    Solution recovered[2];
    std::size_t schur_rows[2];
    int slot = 0;
    for (const bool at_seam : {false, true}) {
      const Lowering low = sdp::lower(c.problem, chordal_lowering(c.min_block_size, at_seam));
      ASSERT_TRUE(low.decomposed()) << c.name;
      sdp::SolveContext context;
      const Solution sol = sdp::IpmSolver().solve(low.problem, context);
      schur_rows[slot] = sol.schur_rows;
      recovered[slot] = sdp::recover(sol, low);
      ++slot;
    }
    // Audit-identical verdicts: same status, same objective, both recover a
    // primal-feasible PSD iterate and both match the dense solve.
    EXPECT_EQ(recovered[0].status, recovered[1].status) << c.name;
    for (int i = 0; i < 2; ++i) {
      ASSERT_EQ(recovered[i].status, SolveStatus::Optimal) << c.name;
      EXPECT_NEAR(recovered[i].primal_objective, dense_sol.primal_objective,
                  1e-4 * (1.0 + std::fabs(dense_sol.primal_objective)))
          << c.name;
      EXPECT_GE(linalg::min_eigenvalue(recovered[i].x[0]), -1e-6) << c.name;
      EXPECT_LT(primal_violation(c.problem, recovered[i]), 1e-5) << c.name;
      // The convert/complete phases of the lowering round trip are stamped.
      EXPECT_GT(recovered[i].phase.convert, 0.0) << c.name;
      EXPECT_GT(recovered[i].phase.complete, 0.0) << c.name;
    }
    // Zero overlap-consistency rows in the native Schur complement: the
    // factored system keeps the original row count, while the seam carries
    // one extra row per overlap entry.
    EXPECT_EQ(schur_rows[0], c.problem.num_rows()) << c.name;
    EXPECT_GT(schur_rows[1], schur_rows[0]) << c.name;
  }
}

TEST(LoweringPipeline, AdmmSolvesNativeConesWithSeamParity) {
  const Problem original = clock_tree_sdp(6);
  const Solution dense_sol = sdp::AdmmSolver().solve(original);
  ASSERT_EQ(dense_sol.status, SolveStatus::Optimal);

  Solution recovered[2];
  for (const bool at_seam : {false, true}) {
    const Lowering low = sdp::lower(original, chordal_lowering(4, at_seam));
    ASSERT_TRUE(low.decomposed());
    sdp::SolveContext context;
    const Solution sol = sdp::AdmmSolver().solve(low.problem, context);
    EXPECT_EQ(sol.schur_rows, at_seam ? low.problem.num_rows() : original.num_rows());
    recovered[at_seam ? 1 : 0] = sdp::recover(sol, low);
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(recovered[i].status, SolveStatus::Optimal) << i;
    EXPECT_NEAR(recovered[i].primal_objective, dense_sol.primal_objective,
                1e-3 * (1.0 + std::fabs(dense_sol.primal_objective)))
        << i;
    EXPECT_LT(primal_violation(original, recovered[i]), 1e-4) << i;
  }
}

TEST(LoweringPipeline, WarmStartSurvivesMinBlockSizeChange) {
  // The acceptance claim: a blob exported under one decomposition replays
  // into a different one (here: decomposed vs not decomposed at all, the
  // most extreme min_block_size change) with fewer iterations than cold.
  const Problem original = clock_tree_sdp(8);

  // Solve decomposed (min_block_size 4), export a base-space blob.
  const Lowering low_a = sdp::lower(original, chordal_lowering(4));
  ASSERT_TRUE(low_a.decomposed());
  sdp::SolveContext ctx_a;
  const Solution sol_a = sdp::IpmSolver().solve(low_a.problem, ctx_a);
  ASSERT_EQ(sol_a.status, SolveStatus::Optimal);
  const sdp::WarmStart blob = sdp::export_warm_start(sdp::recover(sol_a, low_a), low_a);
  EXPECT_EQ(blob.fingerprint, low_a.base_fingerprint);

  // Replay into a min_block_size that disables the decomposition entirely.
  const Lowering low_b = sdp::lower(original, chordal_lowering(100));
  ASSERT_FALSE(low_b.decomposed());
  ASSERT_EQ(low_b.base_fingerprint, low_a.base_fingerprint);
  const sdp::WarmStart remapped_b = sdp::remap_warm_start(blob, low_b);
  ASSERT_FALSE(remapped_b.empty());
  sdp::SolveContext cold_ctx, warm_ctx;
  warm_ctx.warm_start = &remapped_b;
  const Solution cold_b = sdp::IpmSolver().solve(low_b.problem, cold_ctx);
  const Solution warm_b = sdp::IpmSolver().solve(low_b.problem, warm_ctx);
  ASSERT_EQ(warm_b.status, SolveStatus::Optimal);
  EXPECT_LT(warm_b.iterations, cold_b.iterations);

  // And the reverse direction: the undecomposed solve's blob re-lowers per
  // clique into a *different* decomposition (min_block_size 6).
  const sdp::WarmStart blob_b = sdp::export_warm_start(sdp::recover(warm_b, low_b), low_b);
  const Lowering low_c = sdp::lower(original, chordal_lowering(6));
  ASSERT_TRUE(low_c.decomposed());
  const sdp::WarmStart remapped_c = sdp::remap_warm_start(blob_b, low_c);
  ASSERT_FALSE(remapped_c.empty());
  sdp::SolveContext cold_c_ctx, warm_c_ctx;
  warm_c_ctx.warm_start = &remapped_c;
  const Solution cold_c = sdp::IpmSolver().solve(low_c.problem, cold_c_ctx);
  const Solution warm_c = sdp::IpmSolver().solve(low_c.problem, warm_c_ctx);
  ASSERT_EQ(warm_c.status, SolveStatus::Optimal);
  EXPECT_LT(warm_c.iterations, cold_c.iterations);
}

TEST(LoweringPipeline, DriftGuardRejectsStaleCliqueEntryMaps) {
  // Mirrors the PR 3 fingerprint-collision fix at the remap layer: a blob
  // whose fingerprint matches but whose shape (or the map's canonical entry
  // lists) drifted must reject to a cold start, never scatter out-of-range.
  const Problem original = banded_sdp(30);
  const Lowering low = sdp::lower(original, chordal_lowering(8));
  ASSERT_TRUE(low.decomposed());
  sdp::SolveContext ctx;
  const Solution sol = sdp::IpmSolver().solve(low.problem, ctx);
  const sdp::WarmStart good = sdp::export_warm_start(sdp::recover(sol, low), low);
  ASSERT_FALSE(sdp::remap_warm_start(good, low).empty());

  // Blob block shape drifted (same fingerprint field, wrong matrix sizes).
  sdp::WarmStart shrunk = good;
  shrunk.x[0] = Matrix(10, 10);
  shrunk.z[0] = Matrix(10, 10);
  EXPECT_TRUE(sdp::remap_warm_start(shrunk, low).empty());

  // Blob row space drifted.
  sdp::WarmStart wrong_rows = good;
  wrong_rows.y.push_back(0.0);
  EXPECT_TRUE(sdp::remap_warm_start(wrong_rows, low).empty());

  // Canonical entry map drifted: a clique vertex beyond the original block.
  Lowering tampered = low;
  ASSERT_FALSE(tampered.map.plans.empty());
  tampered.map.plans[0].forest.cliques[0][0] = 999;
  EXPECT_TRUE(sdp::remap_warm_start(good, tampered).empty());
}

TEST(LoweringPipeline, OverlapMultiplierAssemblyIsThreadDeterministic) {
  // The extended Schur assembly (rows + overlap couplings) fans out on the
  // pool like the PR 4 kernels; the block elimination runs after the
  // barrier. Iterates must be bit-identical across thread counts.
  const Lowering low = sdp::lower(clock_tree_sdp(10), chordal_lowering(4));
  ASSERT_TRUE(low.decomposed());
  sdp::IpmOptions serial, parallel;
  serial.threads = 1;
  parallel.threads = 4;
  sdp::SolveContext ctx1, ctx4;
  const Solution one = sdp::IpmSolver(serial).solve(low.problem, ctx1);
  const Solution four = sdp::IpmSolver(parallel).solve(low.problem, ctx4);
  ASSERT_EQ(one.status, four.status);
  ASSERT_EQ(one.iterations, four.iterations);
  EXPECT_EQ(one.primal_objective, four.primal_objective);  // bitwise
  ASSERT_EQ(one.y.size(), four.y.size());
  for (std::size_t i = 0; i < one.y.size(); ++i) EXPECT_EQ(one.y[i], four.y[i]);
  for (std::size_t j = 0; j < one.x.size(); ++j) {
    for (std::size_t r = 0; r < one.x[j].rows(); ++r)
      for (std::size_t c = 0; c < one.x[j].cols(); ++c)
        ASSERT_EQ(one.x[j](r, c), four.x[j](r, c)) << j << " " << r << " " << c;
  }
}

TEST(LoweringCache, InPlaceUpdateMatchesFreshLoweringAcrossModes) {
  // The coefficient-update pass contract: for a structurally identical
  // compile with different values, the in-place rewrite must produce the
  // same lowered problem the full pipeline would — same verdict, same
  // objective, same recovered certificate to solver tolerance — in every
  // sparsity mode, with ["update", "equilibrate"] provenance.
  struct Mode {
    const char* name;
    LoweringOptions options;
  };
  std::vector<Mode> modes;
  modes.push_back({"dense", LoweringOptions{}});
  LoweringOptions correlative;
  correlative.sparsity = sdp::SparsityOptions::Correlative;
  modes.push_back({"correlative", correlative});
  modes.push_back({"chordal", chordal_lowering(8)});

  for (const Mode& mode : modes) {
    sdp::LoweringCache cache;
    const Lowering& first = cache.lower(banded_sdp(30), mode.options);
    EXPECT_EQ(cache.full_lowerings(), 1u) << mode.name;
    EXPECT_EQ(cache.updates(), 0u) << mode.name;
    EXPECT_NE(first.passes.front().name, "update") << mode.name;

    const Lowering& updated = cache.lower(banded_sdp(30, 1.45), mode.options);
    ASSERT_EQ(cache.updates(), 1u) << mode.name;
    ASSERT_EQ(updated.passes.size(), 2u) << mode.name;
    EXPECT_EQ(updated.passes[0].name, "update") << mode.name;
    EXPECT_EQ(updated.passes[1].name, "equilibrate") << mode.name;

    const Lowering fresh = sdp::lower(banded_sdp(30, 1.45), mode.options);
    EXPECT_EQ(updated.base_fingerprint, fresh.base_fingerprint) << mode.name;
    EXPECT_EQ(updated.lowered_fingerprint, fresh.lowered_fingerprint) << mode.name;

    sdp::SolveContext ctx_u, ctx_f;
    const Solution sol_u = sdp::recover(sdp::IpmSolver().solve(updated.problem, ctx_u), updated);
    const Solution sol_f = sdp::recover(sdp::IpmSolver().solve(fresh.problem, ctx_f), fresh);
    ASSERT_EQ(sol_u.status, sol_f.status) << mode.name;
    ASSERT_EQ(sol_u.status, SolveStatus::Optimal) << mode.name;
    EXPECT_NEAR(sol_u.primal_objective, sol_f.primal_objective,
                1e-6 * (1.0 + std::fabs(sol_f.primal_objective)))
        << mode.name;
    const Problem reference = banded_sdp(30, 1.45);
    EXPECT_LT(primal_violation(reference, sol_u), 1e-5) << mode.name;
    // Certificate parity entry-by-entry to solver tolerance.
    ASSERT_EQ(sol_u.x.size(), sol_f.x.size()) << mode.name;
    for (std::size_t j = 0; j < sol_u.x.size(); ++j) {
      for (std::size_t r = 0; r < sol_u.x[j].rows(); ++r)
        for (std::size_t c = 0; c < sol_u.x[j].cols(); ++c)
          ASSERT_NEAR(sol_u.x[j](r, c), sol_f.x[j](r, c), 1e-5) << mode.name;
    }
  }
}

TEST(LoweringCache, DecomposedClockTreeUpdateParity) {
  // Same contract on a genuinely decomposed instance: the clock-tree
  // coupling SDP under native chordal lowering, with the coefficient change
  // coming from a real design move (different pump current / VCO gain).
  pll::Params tweaked = pll::Params::paper_third_order();
  tweaked.ip = {540e-6, 550e-6};
  tweaked.kv = {170.0, 175.0};

  sdp::LoweringCache cache;
  const LoweringOptions options = chordal_lowering(4);
  const Lowering& first = cache.lower(clock_tree_sdp(8), options);
  ASSERT_TRUE(first.decomposed());

  pll::ClockTreeOptions tree;
  tree.loops = 8;
  const pll::ClockTreeModel model = pll::make_clock_tree(tweaked, tree);
  const Lowering& updated =
      cache.lower(pll::clock_tree_coupling_sdp(model.constants, tree), options);
  ASSERT_EQ(cache.updates(), 1u);
  ASSERT_EQ(cache.full_lowerings(), 1u);
  EXPECT_EQ(updated.passes.front().name, "update");
  ASSERT_TRUE(updated.decomposed());

  const Problem reference = pll::clock_tree_coupling_sdp(model.constants, tree);
  const Lowering fresh = sdp::lower(pll::clock_tree_coupling_sdp(model.constants, tree),
                                    options);
  EXPECT_EQ(updated.lowered_fingerprint, fresh.lowered_fingerprint);

  sdp::SolveContext ctx_u, ctx_f;
  const Solution sol_u = sdp::recover(sdp::IpmSolver().solve(updated.problem, ctx_u), updated);
  const Solution sol_f = sdp::recover(sdp::IpmSolver().solve(fresh.problem, ctx_f), fresh);
  ASSERT_EQ(sol_u.status, SolveStatus::Optimal);
  ASSERT_EQ(sol_f.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol_u.primal_objective, sol_f.primal_objective,
              1e-5 * (1.0 + std::fabs(sol_f.primal_objective)));
  EXPECT_LT(primal_violation(reference, sol_u), 1e-5);
  EXPECT_LT(primal_violation(reference, sol_f), 1e-5);
}

TEST(LoweringCache, FallsBackToFullPipelineOnAnyStructuralChange) {
  sdp::LoweringCache cache;
  EXPECT_FALSE(cache.valid());
  cache.lower(banded_sdp(30), chordal_lowering(8));
  EXPECT_TRUE(cache.valid());
  EXPECT_EQ(cache.full_lowerings(), 1u);

  // Different structure (different size) → full pipeline, re-cached.
  const Lowering& other = cache.lower(banded_sdp(26), chordal_lowering(8));
  EXPECT_EQ(cache.full_lowerings(), 2u);
  EXPECT_EQ(cache.updates(), 0u);
  EXPECT_EQ(other.passes.front().name, "analyze");

  // Different pass options → full pipeline even for an identical structure.
  cache.lower(banded_sdp(26), chordal_lowering(6));
  EXPECT_EQ(cache.full_lowerings(), 3u);
  EXPECT_EQ(cache.updates(), 0u);

  // Matching structure + options → the in-place path.
  cache.lower(banded_sdp(26, 1.2), chordal_lowering(6));
  EXPECT_EQ(cache.full_lowerings(), 3u);
  EXPECT_EQ(cache.updates(), 1u);

  // A coefficient that became exactly 0.0 drops its triplet: the fingerprint
  // changes and the cache must relower, never rewrite against a stale plan.
  const Lowering& dropped = cache.lower(banded_sdp(26, 1.2, true), chordal_lowering(6));
  EXPECT_EQ(cache.full_lowerings(), 4u);
  EXPECT_EQ(cache.updates(), 1u);
  EXPECT_EQ(dropped.passes.front().name, "analyze");
}

TEST(PhaseTimes, ConvertAndCompleteJoinTheTaxonomy) {
  sdp::PhaseTimes a;
  a.schur = 1.0;
  a.convert = 0.25;
  a.complete = 0.5;
  sdp::PhaseTimes b;
  b.convert = 0.75;
  b.eig = 2.0;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.convert, 1.0);
  EXPECT_DOUBLE_EQ(a.complete, 0.5);
  EXPECT_DOUBLE_EQ(a.total(), 1.0 + 2.0 + 1.0 + 0.5);
}

}  // namespace
}  // namespace soslock
