// Tests for the declarative resilience layer (sdp/resilience) and the sweep
// checkpoint/resume machinery — the behaviors that hold in Release builds
// with SOSLOCK_FAULTS compiled out:
//
//   * policy semantics: a stalled primary escalates down the fallback chain
//     with RecoveryRecords, enabled=false returns the raw failure, an
//     Interrupted solve is never retried, and recovery is deterministic
//     (two runs agree bitwise);
//   * the "auto" meta-backend routes through the same policy (the hard-coded
//     ADMM → IPM rescue it replaced);
//   * cancellation mid-lowering-pass (fault-callback trigger, Debug builds)
//     and mid-consensus-round leave caches and partial Solutions consistent;
//   * sweep checkpoints: save/load round-trip, corrupt-file fail-soft, and
//     the kill-and-resume sweep is verdict-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "pll/params.hpp"
#include "sdp/admm.hpp"
#include "sdp/lowering.hpp"
#include "sdp/resilience.hpp"
#include "sdp/solver.hpp"
#include "sos/program.hpp"
#include "sweep/checkpoint.hpp"
#include "sweep/grid.hpp"
#include "sweep/query.hpp"
#include "sweep/service.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace soslock {
namespace {

using linalg::Matrix;
using sdp::Problem;
using sdp::Solution;
using sdp::SolveStatus;

#if defined(SOSLOCK_FAULTS)
constexpr bool kFaultsCompiled = true;
#else
constexpr bool kFaultsCompiled = false;
#endif

/// Random feasible min-trace SDP (b = A(X*) for a random PSD X*).
Problem random_feasible_sdp(std::uint64_t seed, std::size_t n = 5, std::size_t m = 4) {
  util::Rng rng(seed);
  Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1.0, 1.0);
  const Matrix xstar = linalg::transposed_times(g, g);

  Problem p;
  const std::size_t b = p.add_block(n);
  p.set_block_objective(b, Matrix::identity(n));
  for (std::size_t i = 0; i < m; ++i) {
    sdp::Row row;
    sdp::SparseSym a;
    for (int k = 0; k < 4; ++k) {
      const std::size_t r = rng.index(n);
      const std::size_t c = rng.index(n);
      a.add(std::min(r, c), std::max(r, c), rng.uniform(-1.0, 1.0));
    }
    if (a.empty()) a.add(0, 0, 1.0);
    Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[b] = a;
    p.add_row(std::move(row));
  }
  return p;
}

/// Feasible banded min-trace SDP (chordal-decomposable chain).
Problem banded_sdp(std::size_t n) {
  Problem p;
  const std::size_t blk = p.add_block(n);
  p.set_block_objective(blk, Matrix::identity(n));
  Matrix xstar(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    xstar(i, i) = 2.0 + 0.1 * static_cast<double>(i % 3);
    if (i + 1 < n) {
      xstar(i, i + 1) = 0.7;
      xstar(i + 1, i) = 0.7;
    }
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    sdp::Row row;
    sdp::SparseSym a;
    a.add(i, i, 1.0);
    a.add(i, i + 1, 0.5 + 0.1 * static_cast<double>(i % 2));
    a.add(i + 1, i + 1, -0.3);
    Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[blk] = std::move(a);
    p.add_row(std::move(row));
  }
  return p;
}

/// A config whose ADMM is starved of iterations, so the primary attempt
/// comes back MaxIterations with bad residuals — unusable but deterministic
/// (and too starved for even a warm-started same-backend fallback to finish).
sdp::SolverConfig starved_admm_config() {
  sdp::SolverConfig config;
  config.backend = "admm";
  config.admm.max_iterations = 5;
  config.threads = 1;
  return config;
}

TEST(ResiliencePolicy, StalledPrimaryFallsBackDownTheChain) {
  sdp::SolveContext context;
  const Solution sol =
      sdp::resilient_solve(random_feasible_sdp(5), context, starved_admm_config());
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_EQ(sol.backend, "ipm");
  ASSERT_EQ(sol.recoveries.size(), 1u);  // deterministic stall: no retry first
  EXPECT_EQ(sol.recoveries[0].action, "fallback");
  EXPECT_EQ(sol.recoveries[0].from, "admm");
  EXPECT_EQ(sol.recoveries[0].to, "ipm");
  EXPECT_NE(sol.recoveries[0].reason.find("MaxIterations"), std::string::npos);
  // Telemetry is cumulative across the chain: the failed ADMM attempt's
  // iterations ride along with the rescuing IPM's.
  sdp::SolveContext raw_context;
  sdp::SolverConfig raw = starved_admm_config();
  raw.resilience.enabled = false;
  const Solution failed = sdp::resilient_solve(random_feasible_sdp(5), raw_context, raw);
  EXPECT_GT(sol.iterations, failed.iterations);
}

TEST(ResiliencePolicy, RecoveryIsDeterministic) {
  sdp::SolveContext ca, cb;
  const sdp::SolverConfig config = starved_admm_config();
  const Solution a = sdp::resilient_solve(random_feasible_sdp(6), ca, config);
  const Solution b = sdp::resilient_solve(random_feasible_sdp(6), cb, config);
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.primal_objective, b.primal_objective);  // bitwise on purpose
  ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
  for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
    EXPECT_EQ(a.recoveries[i].reason, b.recoveries[i].reason);
  }
}

TEST(ResiliencePolicy, DisabledPolicyReturnsTheRawFailure) {
  sdp::SolverConfig config = starved_admm_config();
  config.resilience.enabled = false;
  sdp::SolveContext context;
  const Solution sol = sdp::resilient_solve(random_feasible_sdp(5), context, config);
  EXPECT_EQ(sol.status, SolveStatus::MaxIterations);
  EXPECT_TRUE(sol.recoveries.empty());
}

TEST(ResiliencePolicy, CustomFallbackChainIsFollowedInOrder) {
  sdp::SolverConfig config = starved_admm_config();
  config.resilience.fallback_chain = {"admm", "ipm"};
  sdp::SolveContext context;
  const Solution sol = sdp::resilient_solve(random_feasible_sdp(5), context, config);
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
  ASSERT_EQ(sol.recoveries.size(), 2u);
  EXPECT_EQ(sol.recoveries[0].to, "admm");
  EXPECT_EQ(sol.recoveries[1].to, "ipm");
  EXPECT_EQ(sol.recoveries[1].attempt, 2);
}

TEST(ResiliencePolicy, InterruptedSolveIsNeverRetried) {
  std::atomic<bool> cancel{true};  // cancelled before the first iteration
  sdp::SolveContext context;
  context.cancel = &cancel;
  const Solution sol =
      sdp::resilient_solve(random_feasible_sdp(5), context, starved_admm_config());
  EXPECT_EQ(sol.status, SolveStatus::Interrupted);
  EXPECT_TRUE(sol.recoveries.empty());
}

TEST(ResiliencePolicy, UnknownBackendNamesStillThrowConfigErrors) {
  sdp::SolverConfig config;
  config.backend = "no-such-backend";
  sdp::SolveContext context;
  EXPECT_THROW(sdp::resilient_solve(random_feasible_sdp(5), context, config),
               std::invalid_argument);
}

TEST(ResiliencePolicy, AutoBackendRoutesThroughTheSamePolicy) {
  // Force the auto heuristic to the starved ADMM so the old hard-coded
  // ADMM → IPM rescue path now runs through resilient_solve.
  sdp::SolverConfig config = starved_admm_config();
  config.backend = "auto";
  config.auto_block_threshold = 1;
  const auto solver = sdp::make_solver(config);
  sdp::SolveContext context;
  const Solution sol = solver->solve(random_feasible_sdp(5), context);
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
  ASSERT_FALSE(sol.recoveries.empty());
  EXPECT_EQ(sol.recoveries.back().to, "ipm");
}

TEST(ResiliencePolicy, InjectedFp32FactorFailureFallsBackInSolve) {
  if (!kFaultsCompiled) GTEST_SKIP() << "needs fault injection (Debug)";
  util::FaultInjector::reset();
  // The FP32 Schur factorization dies on its very first attempt. The
  // mixed-precision solver must absorb that inside the solve — finish on the
  // FP64 factor with a recovery record — rather than fail out to the retry
  // machinery.
  util::FaultInjector::arm(util::fault_site::kIpmFp32Factor);
  sdp::SolverConfig config;
  config.backend = "ipm";
  config.ipm.mixed_precision = true;
  sdp::SolveContext context;
  const Solution sol = sdp::resilient_solve(random_feasible_sdp(7), context, config);
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_EQ(util::FaultInjector::fired(util::fault_site::kIpmFp32Factor), 1);
  EXPECT_TRUE(sol.mixed.enabled);
  EXPECT_GE(sol.mixed.fp64_fallbacks, 1);
  ASSERT_FALSE(sol.recoveries.empty());
  EXPECT_EQ(sol.recoveries[0].action, "fp32-fallback");
  EXPECT_EQ(sol.recoveries[0].from, "ipm-fp32-schur");
  EXPECT_EQ(sol.recoveries[0].to, "ipm-fp64-schur");
  // The fallback is sticky for the rest of the solve: the armed site was
  // traversed exactly once.
  EXPECT_EQ(util::FaultInjector::traversals(util::fault_site::kIpmFp32Factor), 1);
  util::FaultInjector::reset();
}

TEST(Cancellation, MidLoweringPassLeavesCachesConsistent) {
  if (!kFaultsCompiled) GTEST_SKIP() << "needs the fault-callback trigger (Debug)";
  util::FaultInjector::reset();
  std::atomic<bool> cancel{false};
  // The callback arms cancellation from *inside* the lowering pipeline —
  // between the analyze and decompose passes — without failing the pass.
  util::FaultInjector::arm_callback(util::fault_site::kLoweringPass,
                                    [&cancel] { cancel.store(true); });

  const sweep::CertificationQuery query = sweep::lyapunov_query();
  const sos::SosProgram program = query.build(pll::Params::paper_third_order());
  sdp::SolverConfig config;
  config.backend = "ipm";
  const auto backend = sdp::make_solver(config);
  sdp::LoweringCache cache;

  sdp::SolveContext context;
  context.cancel = &cancel;
  const sos::SolveResult first = program.solve(*backend, context, cache);
  EXPECT_EQ(first.status, SolveStatus::Interrupted);
  EXPECT_EQ(util::FaultInjector::fired(util::fault_site::kLoweringPass), 1);
  EXPECT_EQ(cache.full_lowerings(), 1u);  // the lowering itself completed

  // The caches survived the cancelled solve: the re-solve takes the
  // in-place update path and certifies.
  cancel.store(false);
  sdp::SolveContext retry_context;
  const sos::SolveResult second = program.solve(*backend, retry_context, cache);
  EXPECT_EQ(second.status, SolveStatus::Optimal);
  EXPECT_TRUE(second.feasible);
  EXPECT_EQ(cache.full_lowerings(), 1u);
  EXPECT_EQ(cache.updates(), 1u);
  util::FaultInjector::reset();
}

TEST(Cancellation, MidConsensusRoundLeavesPartialSolutionConsistent) {
  sdp::LoweringOptions lopt;
  lopt.sparsity = sdp::SparsityOptions::Chordal;
  lopt.chordal.min_block_size = 8;
  const sdp::Lowering low = sdp::lower(banded_sdp(30), lopt);
  ASSERT_TRUE(low.decomposed());

  sdp::AdmmOptions opt;
  opt.threads = 1;
  opt.async = true;
  opt.workers = 2;
  opt.max_staleness = 1;
  std::atomic<bool> cancel{false};
  sdp::SolveContext context;
  context.cancel = &cancel;
  int rounds = 0;
  context.on_iteration = [&](const sdp::IterationInfo&) {
    if (++rounds == 3) cancel.store(true, std::memory_order_relaxed);
  };
  const Solution sol = sdp::AdmmSolver(opt).solve(low.problem, context);
  EXPECT_EQ(sol.status, SolveStatus::Interrupted);
  EXPECT_TRUE(sol.recoveries.empty());  // cancellation is not a failure

  // The partial Solution is a consistent iterate: full block set, finite
  // entries, populated multipliers.
  ASSERT_EQ(sol.x.size(), low.problem.num_blocks());
  double acc = 0.0;
  for (const Matrix& xj : sol.x)
    for (std::size_t r = 0; r < xj.rows(); ++r)
      for (std::size_t c = 0; c < xj.cols(); ++c) acc += xj(r, c);
  for (const double v : sol.y) acc += v;
  EXPECT_TRUE(std::isfinite(acc));

  // The same engine solves clean immediately afterwards.
  cancel.store(false);
  sdp::SolveContext clean;
  EXPECT_EQ(sdp::AdmmSolver(opt).solve(low.problem, clean).status, SolveStatus::Optimal);
}

TEST(SweepCheckpoint, SaveLoadRoundTripIsExact) {
  const char* path = "resilience_ckpt_roundtrip.txt";
  sweep::SweepCheckpoint cp;
  cp.grid_points = 6;
  cp.lanes = 1;
  sweep::PointRecord rec;
  rec.index = 2;
  rec.certified = true;
  rec.status = SolveStatus::Optimal;
  rec.iterations = 7;
  rec.warm_hit = true;
  rec.solve_seconds = 0.25;
  rec.audit_residual = 1.25e-9;
  rec.objective = 3.0625;
  cp.completed.push_back(rec);
  sdp::WarmStart chain;
  chain.fingerprint = 42;
  chain.x = {Matrix::identity(2)};
  chain.z = {Matrix::identity(2)};
  chain.x[0](0, 1) = -0.125;
  chain.y = {1.0, -0.5, 1.0 / 3.0};
  cp.lane_chains = {chain};

  ASSERT_TRUE(sweep::save_checkpoint(path, cp));
  const sweep::SweepCheckpoint loaded = sweep::load_checkpoint(path);
  std::remove(path);
  EXPECT_EQ(loaded.grid_points, 6u);
  EXPECT_EQ(loaded.lanes, 1u);
  ASSERT_EQ(loaded.completed.size(), 1u);
  EXPECT_EQ(loaded.completed[0].index, 2u);
  EXPECT_TRUE(loaded.completed[0].certified);
  EXPECT_EQ(loaded.completed[0].status, SolveStatus::Optimal);
  EXPECT_EQ(loaded.completed[0].iterations, 7);
  EXPECT_EQ(loaded.completed[0].solve_seconds, 0.25);
  EXPECT_EQ(loaded.completed[0].audit_residual, 1.25e-9);
  ASSERT_EQ(loaded.lane_chains.size(), 1u);
  EXPECT_EQ(loaded.lane_chains[0].fingerprint, 42u);
  ASSERT_EQ(loaded.lane_chains[0].x.size(), 1u);
  EXPECT_EQ(loaded.lane_chains[0].x[0](0, 1), -0.125);
  ASSERT_EQ(loaded.lane_chains[0].y.size(), 3u);
  EXPECT_EQ(loaded.lane_chains[0].y[2], 1.0 / 3.0);  // %.17g round-trips bitwise
}

TEST(SweepCheckpoint, MissingOrCorruptFilesFailSoft) {
  EXPECT_TRUE(sweep::load_checkpoint("no_such_checkpoint_file.txt").empty());

  const char* path = "resilience_ckpt_corrupt.txt";
  std::FILE* f = std::fopen(path, "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "soslock-sweep-checkpoint v1\ngrid 6 1\npoint 2 1 truncated");
  std::fclose(f);
  EXPECT_TRUE(sweep::load_checkpoint(path).empty());
  std::remove(path);
}

TEST(SweepCheckpoint, KillAndResumeIsVerdictIdentical) {
  const sweep::Grid grid(pll::Params::paper_third_order(),
                         {{sweep::Axis::Ip, 3, 400e-6, 600e-6, 5e-6},
                          {sweep::Axis::Kv, 2, 160.0, 240.0, 2.0}});
  const sweep::CertificationQuery query = sweep::lyapunov_query();
  sweep::SweepOptions options;
  options.solver.backend = "ipm";
  options.threads = 1;

  const sweep::SweepReport full = sweep::run_sweep(grid, query, options);
  ASSERT_EQ(full.skipped, 0u);

  const char* path = "resilience_ckpt_sweep.txt";
  sweep::SweepOptions kill = options;
  kill.checkpoint_path = path;
  kill.max_points = 3;
  const sweep::SweepReport killed = sweep::run_sweep(grid, query, kill);
  EXPECT_TRUE(killed.interrupted);
  EXPECT_EQ(killed.skipped, grid.size() - 3);

  sweep::SweepOptions resume = options;
  resume.resume_from = path;
  const sweep::SweepReport resumed = sweep::run_sweep(grid, query, resume);
  std::remove(path);
  EXPECT_EQ(resumed.resumed_points, 3u);
  EXPECT_EQ(resumed.skipped, 0u);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.certified, full.certified);
  // Verdict-identical per point, and the replayed warm chain makes the
  // re-solved tail spend exactly the iterations the uninterrupted run did.
  ASSERT_EQ(resumed.points.size(), full.points.size());
  for (std::size_t i = 0; i < full.points.size(); ++i) {
    EXPECT_EQ(resumed.points[i].certified, full.points[i].certified) << "point " << i;
    EXPECT_EQ(resumed.points[i].iterations, full.points[i].iterations) << "point " << i;
  }
  EXPECT_EQ(resumed.total_iterations, full.total_iterations);
}

}  // namespace
}  // namespace soslock
