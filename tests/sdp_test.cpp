// Tests for the interior-point SDP solver on problems with known solutions.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen_sym.hpp"
#include "sdp/ipm.hpp"
#include "sdp/problem.hpp"
#include "sdp/scaling.hpp"
#include "util/rng.hpp"

namespace soslock::sdp {
namespace {

using linalg::Matrix;

IpmOptions quiet() {
  IpmOptions o;
  o.tolerance = 1e-8;
  return o;
}

TEST(SparseSym, DotCountsOffDiagonalTwice) {
  SparseSym a;
  a.add(0, 1, 2.0);
  a.add(1, 1, 3.0);
  Matrix x = Matrix::from_rows({{1.0, 4.0}, {4.0, 5.0}});
  // <A, X> = 2*2*4 + 3*5 = 31.
  EXPECT_DOUBLE_EQ(a.dot(x), 31.0);
}

TEST(SparseSym, AddMergesDuplicates) {
  SparseSym a;
  a.add(0, 1, 2.0);
  a.add(1, 0, 3.0);  // same slot, transposed order
  EXPECT_EQ(a.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(a.entries[0].v, 5.0);
}

TEST(SparseSym, TimesDenseMatchesExplicit) {
  util::Rng rng(3);
  SparseSym a;
  a.add(0, 0, 1.5);
  a.add(0, 2, -2.0);
  a.add(1, 2, 0.7);
  Matrix dense(3, 3);
  a.add_to(dense);
  Matrix x(3, 3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) x(r, c) = rng.uniform(-1.0, 1.0);
  Matrix out(3, 3);
  a.times_dense(x, out);
  EXPECT_LT(linalg::norm_inf(out - dense * x), 1e-12);
}

// min x11 + x22 subject to x12 = 1, X PSD (2x2).
// Optimum: X = [[1,1],[1,1]] with objective 2 (since x11*x22 >= x12^2).
TEST(Ipm, TinyAnalyticSdp) {
  Problem p;
  const std::size_t b = p.add_block(2);
  Matrix c = Matrix::identity(2);
  p.set_block_objective(b, c);
  Row row;
  SparseSym a;
  a.add(0, 1, 0.5);  // <A, X> = x12 with the half convention
  row.blocks[b] = a;
  row.rhs = 1.0;
  p.add_row(std::move(row));

  const Solution sol = IpmSolver(quiet()).solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.primal_objective, 2.0, 1e-5);
  EXPECT_NEAR(sol.x[0](0, 1), 1.0, 1e-5);
  EXPECT_NEAR(sol.x[0](0, 0) * sol.x[0](1, 1), 1.0, 1e-4);
}

// Linear programming as diagonal SDP: min -x1 - 2 x2 s.t. x1 + x2 = 1, x >= 0.
// Optimum x = (0, 1), objective -2.
TEST(Ipm, DiagonalLp) {
  Problem p;
  const std::size_t b1 = p.add_block(1);
  const std::size_t b2 = p.add_block(1);
  Matrix c1(1, 1), c2(1, 1);
  c1(0, 0) = -1.0;
  c2(0, 0) = -2.0;
  p.set_block_objective(b1, c1);
  p.set_block_objective(b2, c2);
  Row row;
  SparseSym a1, a2;
  a1.add(0, 0, 1.0);
  a2.add(0, 0, 1.0);
  row.blocks[b1] = a1;
  row.blocks[b2] = a2;
  row.rhs = 1.0;
  p.add_row(std::move(row));

  const Solution sol = IpmSolver(quiet()).solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.primal_objective, -2.0, 1e-5);
  EXPECT_NEAR(sol.x[0](0, 0), 0.0, 1e-5);
  EXPECT_NEAR(sol.x[1](0, 0), 1.0, 1e-5);
}

// Free variables: min w s.t. w - x11 = 0, x11 = 2  =>  w = 2.
TEST(Ipm, FreeVariableEquality) {
  Problem p;
  const std::size_t b = p.add_block(1);
  const std::size_t w = p.add_free(1.0);
  {
    Row row;
    SparseSym a;
    a.add(0, 0, -1.0);
    row.blocks[b] = a;
    row.free_coeffs[w] = 1.0;
    row.rhs = 0.0;
    p.add_row(std::move(row));
  }
  {
    Row row;
    SparseSym a;
    a.add(0, 0, 1.0);
    row.blocks[b] = a;
    row.rhs = 2.0;
    p.add_row(std::move(row));
  }
  const Solution sol = IpmSolver(quiet()).solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.w[0], 2.0, 1e-5);
}

// Max eigenvalue bound: the SDP  min t  s.t.  t*I - A = Z >= 0  is expressed
// in primal form as: min <0,X>... here we instead test: max <A, X> s.t.
// tr X = 1, X >= 0 whose optimum is lambda_max(A).
TEST(Ipm, LambdaMaxViaTraceOne) {
  Matrix a = Matrix::from_rows({{2.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}});
  Problem p;
  const std::size_t b = p.add_block(3);
  Matrix c = a;
  c.scale(-1.0);  // maximize <A,X> == minimize <-A,X>
  p.set_block_objective(b, c);
  Row row;
  SparseSym tr;
  for (std::size_t i = 0; i < 3; ++i) tr.add(i, i, 1.0);
  row.blocks[b] = tr;
  row.rhs = 1.0;
  p.add_row(std::move(row));

  const Solution sol = IpmSolver(quiet()).solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  const double lambda_max = linalg::eigen_sym(a).values.back();
  EXPECT_NEAR(-sol.primal_objective, lambda_max, 1e-5);
}

// Infeasible: x11 = 1 and x11 = -1 cannot both hold with X >= 0.
TEST(Ipm, DetectsPrimalInfeasible) {
  Problem p;
  const std::size_t b = p.add_block(1);
  {
    Row row;
    SparseSym a;
    a.add(0, 0, 1.0);
    row.blocks[b] = a;
    row.rhs = -1.0;  // x11 = -1 impossible for PSD
    p.add_row(std::move(row));
  }
  IpmOptions o = quiet();
  o.max_iterations = 80;
  const Solution sol = IpmSolver(o).solve(p);
  EXPECT_NE(sol.status, SolveStatus::Optimal);
}

// Multi-block coupling: two blocks sharing a constraint.
TEST(Ipm, MultiBlockCoupled) {
  // min tr(X1) + tr(X2) s.t. x1_11 + x2_11 = 4, x2_12 = 1.
  Problem p;
  const std::size_t b1 = p.add_block(1);
  const std::size_t b2 = p.add_block(2);
  p.set_block_objective(b1, Matrix::identity(1));
  p.set_block_objective(b2, Matrix::identity(2));
  {
    Row row;
    SparseSym a1, a2;
    a1.add(0, 0, 1.0);
    a2.add(0, 0, 1.0);
    row.blocks[b1] = a1;
    row.blocks[b2] = a2;
    row.rhs = 4.0;
    p.add_row(std::move(row));
  }
  {
    Row row;
    SparseSym a2;
    a2.add(0, 1, 0.5);
    row.blocks[b2] = a2;
    row.rhs = 1.0;
    p.add_row(std::move(row));
  }
  const Solution sol = IpmSolver(quiet()).solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  // Objective = x1_11 + x2_11 + x2_22 = (4 - a) + a + c = 4 + c with
  // a*c >= x2_12^2 = 1 and a <= 4, so c* = 1/4 at a = 4: optimum 4.25.
  EXPECT_NEAR(sol.x[1](0, 1), 1.0, 1e-5);
  EXPECT_NEAR(sol.primal_objective, 4.25, 1e-4);
  EXPECT_NEAR(sol.x[1](0, 0), 4.0, 1e-3);
}

class RandomFeasibility : public ::testing::TestWithParam<std::uint64_t> {};

// Random feasible equality systems: generate a random PSD X*, random
// constraint matrices, set b = A(X*). The solver must find some feasible X
// with small residual and the duality gap must vanish for min-trace.
TEST_P(RandomFeasibility, SolvesToTolerance) {
  util::Rng rng(GetParam());
  const std::size_t n = 4 + rng.index(4);
  const std::size_t m = 3 + rng.index(5);
  Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1.0, 1.0);
  Matrix xstar = linalg::transposed_times(g, g);

  Problem p;
  const std::size_t b = p.add_block(n);
  p.set_block_objective(b, Matrix::identity(n));
  for (std::size_t i = 0; i < m; ++i) {
    Row row;
    SparseSym a;
    for (int k = 0; k < 4; ++k) {
      const std::size_t r = rng.index(n);
      const std::size_t c = rng.index(n);
      a.add(std::min(r, c), std::max(r, c), rng.uniform(-1.0, 1.0));
    }
    if (a.empty()) a.add(0, 0, 1.0);
    Matrix dense(n, n);
    a.add_to(dense);
    row.rhs = linalg::dot(dense, xstar);
    row.blocks[b] = a;
    p.add_row(std::move(row));
  }
  const Solution sol = IpmSolver(quiet()).solve(p);
  ASSERT_TRUE(sol.status == SolveStatus::Optimal) << to_string(sol.status);
  EXPECT_LT(sol.primal_residual, 1e-6);
  EXPECT_LT(sol.gap, 1e-6);
  // Returned X must be PSD.
  EXPECT_GT(linalg::min_eigenvalue(sol.x[0]), -1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFeasibility, ::testing::Range<std::uint64_t>(1, 9));

TEST(Scaling, RowsNormalizedToUnitInfNorm) {
  Problem p;
  const std::size_t b = p.add_block(2);
  Row row;
  SparseSym a;
  a.add(0, 0, 1000.0);
  row.blocks[b] = a;
  row.rhs = 500.0;
  p.add_row(std::move(row));
  const Scaling s = equilibrate_rows(p);
  EXPECT_DOUBLE_EQ(s.row_scale[0], 1000.0);
  EXPECT_DOUBLE_EQ(p.rows()[0].blocks.at(b).entries[0].v, 1.0);
  EXPECT_DOUBLE_EQ(p.rows()[0].rhs, 0.5);
}

TEST(Scaling, ZeroRowLeftAlone) {
  Problem p;
  p.add_block(1);
  Row row;  // completely empty row with rhs 0
  p.add_row(std::move(row));
  const Scaling s = equilibrate_rows(p);
  EXPECT_DOUBLE_EQ(s.row_scale[0], 1.0);
}

TEST(Scaling, NearZeroRowLeftAloneSoDualRescaleStaysFinite) {
  // A degenerate constraint whose coefficients an aggressive Gram prune
  // cancelled down to roundoff (or a denormal) must not be equilibrated:
  // 1/norm would amplify the noise to O(1) — and overflow to inf for
  // denormal norms — which then poisons y_orig = y / row_scale with
  // inf/NaN in the warm-start dual rescale.
  Problem p;
  const std::size_t b = p.add_block(1);
  {
    Row row;
    SparseSym a;
    a.add(0, 0, 1e-300);  // far below kMinRowNorm, 1/x still finite
    row.blocks[b] = a;
    row.rhs = 1e-320;  // denormal: 1/x overflows to inf
    p.add_row(std::move(row));
  }
  {
    Row row;
    SparseSym a;
    a.add(0, 0, 1e-13);  // roundoff-level residual coefficients
    row.blocks[b] = a;
    p.add_row(std::move(row));
  }
  const Scaling s = equilibrate_rows(p);
  for (std::size_t i = 0; i < p.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(s.row_scale[i], 1.0) << "row " << i;
    ASSERT_TRUE(std::isfinite(s.row_scale[i]));
    // The (un)rescale of warm-start duals across this scaling stays finite.
    const double y = 3.5;
    EXPECT_TRUE(std::isfinite(y * s.row_scale[i]));
    EXPECT_TRUE(std::isfinite(y / s.row_scale[i]));
  }
  for (const Row& row : p.rows())
    for (const auto& [j, a] : row.blocks)
      for (const auto& t : a.entries) EXPECT_TRUE(std::isfinite(t.v));
}

TEST(Scaling, BarelyAboveThresholdStillScales) {
  Problem p;
  const std::size_t b = p.add_block(1);
  Row row;
  SparseSym a;
  a.add(0, 0, 1e-9);  // tiny but meaningful: still normalized
  row.blocks[b] = a;
  p.add_row(std::move(row));
  const Scaling s = equilibrate_rows(p);
  EXPECT_DOUBLE_EQ(s.row_scale[0], 1e-9);
  EXPECT_DOUBLE_EQ(p.rows()[0].blocks.at(b).entries[0].v, 1.0);
}

TEST(Problem, StatsString) {
  Problem p;
  p.add_block(3);
  p.add_free(0.0);
  Row row;
  SparseSym a;
  a.add(0, 0, 1.0);
  row.blocks[0] = a;
  p.add_row(std::move(row));
  const std::string s = p.stats();
  EXPECT_NE(s.find("1 rows"), std::string::npos);
  EXPECT_NE(s.find("1 free"), std::string::npos);
}

// The returned dual (y, Z) must itself certify the optimum: Z = C - sum y_i A_i
// must be PSD and b'y must equal the primal objective at tolerance. This makes
// the solver's answer independently checkable, like the SOS-level audit.
TEST(Ipm, DualCertificateVerifiable) {
  Problem p;
  const std::size_t b = p.add_block(2);
  p.set_block_objective(b, Matrix::identity(2));
  Row row;
  SparseSym a;
  a.add(0, 1, 0.5);
  row.blocks[b] = a;
  row.rhs = 1.0;
  p.add_row(std::move(row));

  const Solution sol = IpmSolver(quiet()).solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  // Rebuild Z from scratch out of the returned multipliers.
  Matrix z = Matrix::identity(2);
  Matrix a_dense(2, 2);
  a.add_to(a_dense);
  z.axpy(-sol.y[0], a_dense);
  EXPECT_GT(linalg::min_eigenvalue(z), -1e-7);
  EXPECT_NEAR(sol.y[0] * 1.0, sol.primal_objective, 1e-5);
  // Complementarity: <X, Z> ~ 0.
  EXPECT_NEAR(linalg::dot(sol.x[0], z), 0.0, 1e-5);
}

TEST(Ipm, SolutionInvariantUnderRowScaling) {
  // Multiplying a constraint row (and its rhs) by a large factor must not
  // change the primal solution (the equilibration undoes it).
  auto build = [](double scale) {
    Problem p;
    const std::size_t b = p.add_block(2);
    p.set_block_objective(b, Matrix::identity(2));
    Row row;
    SparseSym a;
    a.add(0, 1, 0.5 * scale);
    row.blocks[b] = a;
    row.rhs = 1.0 * scale;
    p.add_row(std::move(row));
    return p;
  };
  const Solution s1 = IpmSolver(quiet()).solve(build(1.0));
  const Solution s2 = IpmSolver(quiet()).solve(build(1e6));
  ASSERT_EQ(s1.status, SolveStatus::Optimal);
  ASSERT_EQ(s2.status, SolveStatus::Optimal);
  EXPECT_NEAR(s1.primal_objective, s2.primal_objective, 1e-5);
  EXPECT_NEAR(s1.x[0](0, 1), s2.x[0](0, 1), 1e-5);
  // Dual multipliers differ by exactly the row scale.
  EXPECT_NEAR(s1.y[0], s2.y[0] * 1e6, 1e-4);
}

TEST(Ipm, EmptyProblemTrivial) {
  Problem p;
  p.add_block(1);
  const Solution sol = IpmSolver(quiet()).solve(p);
  EXPECT_TRUE(sol.feasible());
}

// No predictor-corrector (pure centering path) must still converge.
TEST(Ipm, PlainCenteringConverges) {
  Problem p;
  const std::size_t b = p.add_block(2);
  p.set_block_objective(b, Matrix::identity(2));
  Row row;
  SparseSym a;
  a.add(0, 1, 0.5);
  row.blocks[b] = a;
  row.rhs = 1.0;
  p.add_row(std::move(row));
  IpmOptions o = quiet();
  o.predictor_corrector = false;
  o.max_iterations = 200;
  const Solution sol = IpmSolver(o).solve(p);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.primal_objective, 2.0, 1e-4);
}

}  // namespace
}  // namespace soslock::sdp
