// Quickstart: the three layers of soslock in ~60 lines.
//   1. Prove a polynomial nonnegative by SOS decomposition.
//   2. Bound the minimum of a polynomial on an interval (S-procedure).
//   3. Synthesize a Lyapunov certificate for a dynamical system and verify
//      an attractive sublevel set.
#include <cstdio>

#include "core/level_set.hpp"
#include "core/lyapunov.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"

using namespace soslock;
using poly::LinExpr;
using poly::Monomial;
using poly::Polynomial;
using poly::PolyLin;

int main() {
  // --- 1. Is p = 2x^2 + 2xy + y^2 + 1 a sum of squares? ---------------------
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  const Polynomial p = 2.0 * x * x + 2.0 * x * y + y * y + 1.0;
  std::printf("p = %s\n", p.str({"x", "y"}).c_str());
  std::printf("p is SOS: %s\n\n", sos::is_sos_numeric(p) ? "yes" : "no");

  // --- 2. Certified lower bound of q(x) = x^4 - 3x^2 + 2 --------------------
  // maximize g s.t. q - g in SOS; exact for univariate polynomials.
  const Polynomial t = Polynomial::variable(1, 0);
  const Polynomial q = t.pow(4) - 3.0 * t.pow(2) + 2.0;
  sos::SosProgram bound(1);
  const LinExpr g = bound.add_scalar("gamma");
  PolyLin expr(q);
  PolyLin g_term(1);
  g_term.add_term(Monomial(1), g);
  expr -= g_term;
  bound.add_sos_constraint(expr, "q - gamma");
  bound.maximize(g);
  const sos::SolveResult r = bound.solve();
  std::printf("min over R of %s  >=  %.6f (true: -0.25)\n\n", q.str({"x"}).c_str(),
              r.objective);

  // --- 3. Lyapunov certificate for x' = -x + y, y' = -x - y -----------------
  hybrid::HybridSystem sys(2, 0);
  hybrid::Mode mode;
  mode.flow = {-1.0 * x + y, -1.0 * x - y};
  mode.domain = hybrid::SemialgebraicSet(2);
  mode.domain.add_interval(0, -2.0, 2.0);
  mode.domain.add_interval(1, -2.0, 2.0);
  mode.contains_equilibrium = true;
  sys.add_mode(std::move(mode));

  core::LyapunovOptions opt;
  opt.certificate_degree = 2;
  opt.flow_decrease = core::FlowDecrease::Strict;
  const core::LyapunovResult lyap = core::LyapunovSynthesizer(opt).synthesize(sys);
  if (!lyap.success) {
    std::printf("Lyapunov synthesis failed: %s\n", lyap.message.c_str());
    return 1;
  }
  std::printf("V(x,y) = %s\n", lyap.certificates.front().str({"x", "y"}).c_str());
  std::printf("certificate audit: %s (worst Gram eigenvalue %.2e)\n",
              lyap.audit.ok ? "passed" : "FAILED", lyap.audit.worst_eigenvalue);

  const core::LevelSetResult level =
      core::LevelSetMaximizer().maximize_one(lyap.certificates.front(),
                                             sys.modes().front().domain);
  std::printf("largest invariant sublevel set inside the box: {V <= %.4f}\n",
              level.levels.front());
  return 0;
}
