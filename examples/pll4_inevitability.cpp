// Fourth-order CP PLL inevitability: the harder case of the paper, where
// bounded advection alone is inconclusive and deductive escape certificates
// (Proposition 1) close the argument — Algorithm 1's full path.
#include <cstdio>

#include "core/escape.hpp"
#include "core/pipeline.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"

using namespace soslock;

int main() {
  const pll::Params params = pll::Params::paper_fourth_order();
  std::printf("Fourth-order CP PLL (Table 1 parameters)\n%s\n\n", params.str().c_str());
  const pll::ReducedModel model = pll::make_averaged(params);
  const std::size_t nvars = model.system.nvars();

  core::PipelineOptions opt;
  opt.lyapunov.certificate_degree = 2;
  opt.lyapunov.flow_decrease = core::FlowDecrease::Strict;
  opt.lyapunov.strict_margin = 1e-5;
  opt.lyapunov.maximize_region = true;
  opt.advection.h = 0.004;
  opt.advection.gamma = 0.01;
  opt.advection.eps = 0.3;
  opt.max_advection_iterations = 3;  // keep the example brisk; bench uses 7
  opt.escape.certificate_degree = 4; // the paper's degree-4 escape functions

  poly::Polynomial b_init(nvars);
  const double axes[4] = {6.0, 6.0, 6.0, 0.9};
  for (std::size_t i = 0; i < 4; ++i) {
    const poly::Polynomial xi = poly::Polynomial::variable(nvars, i);
    b_init += (1.0 / (axes[i] * axes[i])) * xi * xi;
  }
  b_init -= poly::Polynomial::constant(nvars, 1.0);
  b_init *= 0.5;

  const core::PipelineReport report =
      core::InevitabilityVerifier(opt).verify(model.system, b_init);
  std::printf("%s\n", report.summary().c_str());

  switch (report.verdict) {
    case core::Verdict::VerifiedByAdvection:
      std::printf("==> inevitable (advection immersed without needing escape)\n");
      return 0;
    case core::Verdict::VerifiedWithEscape:
      std::printf("==> inevitable (advection + %d escape certificate(s), as in the "
                  "paper's Fig. 5)\n",
                  report.escape.num_certificates);
      for (std::size_t i = 0; i < report.escape.certificates.size(); ++i) {
        std::printf("    escape rate rho_%zu = %.4g\n", i, report.escape.rates[i]);
      }
      return 0;
    default:
      std::printf("==> inconclusive: %s\n", report.message.c_str());
      return 1;
  }
}
