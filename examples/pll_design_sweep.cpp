// Design-space exploration with the certification sweep service (src/sweep):
//
//   1. Sweep the paper's third-order charge-pump design over an ip × kv grid
//      and certify lock (a Lyapunov certificate for the averaged loop) at
//      every point. The whole grid compiles to one SDP structure, so after
//      the first point every solve reuses the cached lowering through the
//      in-place coefficient-update pass and warm-starts from its certified
//      grid neighbor.
//   2. Sweep the pump current through zero — an inverted-polarity pump turns
//      the loop into positive feedback — to draw a stability map with a real
//      verdict boundary, exercising the chain-breaking cold restarts.
//
// Usage: example_pll_design_sweep [ip_points kv_points]   (default 5 x 4)
#include <cstdio>
#include <cstdlib>

#include "sweep/grid.hpp"
#include "sweep/query.hpp"
#include "sweep/service.hpp"

using namespace soslock;

int main(int argc, char** argv) {
  std::size_t ip_points = 5, kv_points = 4;
  if (argc > 2) {
    ip_points = static_cast<std::size_t>(std::atoi(argv[1]));
    kv_points = static_cast<std::size_t>(std::atoi(argv[2]));
  }
  if (ip_points < 2) ip_points = 2;
  if (kv_points < 2) kv_points = 2;

  const pll::Params base = pll::Params::paper_third_order();
  const sweep::CertificationQuery query = sweep::lyapunov_query();
  sweep::SweepOptions options;
  options.solver.backend = "ipm";

  // --- 1. the paper neighborhood: ip x kv around Table 1 -------------------
  {
    const sweep::Grid grid(base, {
        {sweep::Axis::Ip, ip_points, 300e-6, 700e-6, 5e-6},
        {sweep::Axis::Kv, kv_points, 120.0, 280.0, 2.0},
    });
    std::printf("=== paper neighborhood: %zu x %zu = %zu design points ===\n", ip_points,
                kv_points, grid.size());
    const sweep::SweepReport report = sweep::run_sweep(grid, query, options);
    std::printf("%s\n\n", report.summary().c_str());
    const util::CsvWriter csv = report.csv(grid);
    if (csv.write("pll_design_sweep.csv"))
      std::printf("wrote pll_design_sweep.csv (%zu rows)\n\n", csv.rows());
  }

  // --- 2. pump polarity boundary: a map with a real infeasible region ------
  {
    const sweep::Grid grid(base, {
        {sweep::Axis::Ip, 8, -500e-6, 550e-6, 0.0},
        {sweep::Axis::Kv, kv_points, 120.0, 280.0, 0.0},
    });
    std::printf("=== pump polarity boundary: ip in [-500u, 550u] ===\n");
    const sweep::SweepReport report = sweep::run_sweep(grid, query, options);
    std::printf("%s\n%s\n", report.summary().c_str(),
                report.stability_map(grid).c_str());
  }
  return 0;
}
