// Asynchronous clique-parallel ADMM on a K = 64 clock-tree coupling SDP.
//
//   1. Build a 64-loop clock tree (129 states) with clustered leaf
//      crosstalk: the leaves split into fully-coupled 8-loop clusters whose
//      only tie to each other is the shared distribution rail — a genuinely
//      decomposable SDP with one large chordal clique per cluster and
//      one-entry separators.
//   2. Lower it natively (sdp::DecomposedCone) with the subtree-partition
//      pass assigning clique blocks to 4 workers by estimated eigensplit
//      flops, provenance-recorded like every other lowering pass.
//   3. Solve synchronously, then asynchronously at staleness bounds 0 and 2.
//      max_staleness = 0 is the lockstep schedule — bit-identical to the
//      synchronous loop — while staleness 2 lets the resident per-clique
//      workers run ahead of the consensus thread and overlap their
//      eigensplits with the serial normal solve.
//
// Usage: example_clock_tree_async [num_loops]   (default 64)
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "pll/models.hpp"
#include "pll/params.hpp"
#include "sdp/admm.hpp"
#include "sdp/lowering.hpp"
#include "sdp/solver.hpp"
#include "util/timer.hpp"

using namespace soslock;

int main(int argc, char** argv) {
  pll::ClockTreeOptions tree;
  tree.loops = 64;
  if (argc > 1) tree.loops = static_cast<std::size_t>(std::atoi(argv[1]));
  if (tree.loops < 2 || tree.loops > 512) tree.loops = 64;
  tree.neighbor_coupling = 0.05;
  tree.cluster = 8;
  tree.neighbor_hops = tree.cluster - 1;
  const pll::ClockTreeModel model =
      pll::make_clock_tree(pll::Params::paper_third_order(), tree);
  const sdp::Problem original = pll::clock_tree_coupling_sdp(model.constants, tree);
  std::printf("=== clock tree: %zu loops, %zu states, coupling SDP with %zu rows ===\n\n",
              model.loops, model.system.nstates(), original.num_rows());

  sdp::LoweringOptions low;
  low.sparsity = sdp::SparsityOptions::Chordal;
  low.chordal.min_block_size = 4;
  low.partition_workers = 4;
  const sdp::Lowering lowering = sdp::lower(original, low);
  std::printf("lowered: %zu clique blocks, %zu overlap couplings\n",
              lowering.problem.num_blocks(), lowering.problem.num_overlaps());
  for (const sdp::PassRecord& pass : lowering.passes)
    std::printf("  pass %-12s %s\n", pass.name.c_str(), pass.detail.c_str());
  std::printf("\n%-30s %10s %8s %9s %s\n", "driver", "wall", "iters", "status", "telemetry");

  double sync_objective = 0.0;
  for (const int staleness : {-1, 0, 2}) {  // -1 = the synchronous loop
    sdp::AdmmOptions opt;
    opt.threads = 1;
    opt.tolerance = 1e-5;  // demo run; the coarse row space stalls below this
    if (staleness >= 0) {
      opt.async = true;
      opt.workers = 4;
      opt.max_staleness = staleness;
    }
    const util::Timer wall;
    sdp::SolveContext context;
    const sdp::Solution sol = sdp::AdmmSolver(opt).solve(lowering.problem, context);
    const sdp::Solution recovered = sdp::recover(sol, lowering);
    char label[64], telemetry[128];
    if (staleness < 0) {
      std::snprintf(label, sizeof(label), "synchronous");
      std::snprintf(telemetry, sizeof(telemetry), "-");
      sync_objective = recovered.primal_objective;
    } else {
      std::snprintf(label, sizeof(label), "async, staleness <= %d", staleness);
      std::snprintf(telemetry, sizeof(telemetry),
                    "%zu workers, staleness seen %d, overlap res %.1e",
                    sol.worker_iterations.size(), sol.max_staleness_seen,
                    sol.consensus_residual);
      const double drift = std::fabs(recovered.primal_objective - sync_objective);
      if (drift > 1e-3 * (1.0 + std::fabs(sync_objective))) {
        std::printf("objective drifted %.2e from the synchronous solve\n", drift);
        return 1;
      }
    }
    std::printf("%-30s %9.3fs %8d %9s %s\n", label, wall.seconds(), sol.iterations,
                sdp::to_string(recovered.status).c_str(), telemetry);
  }
  std::printf("\n(staleness 0 replays the synchronous iteration sequence exactly; the\n"
              " bounded-staleness mailboxes only change the schedule, never the audit)\n");
  return 0;
}
