// End-to-end reproduction of the paper's headline result for the third-order
// CP PLL: verify that phase lock is inevitable from a large initial region,
// using multiple Lyapunov certificates (P1) + bounded level-set advection
// (P2), exactly the Sec. 3 methodology.
//
// Run with SOSLOCK_BACKEND=ipm|admm|auto to route every SOS query through a
// different SDP solver backend (the timing table records which one ran).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"

using namespace soslock;

int main() {
  const pll::Params params = pll::Params::paper_third_order();
  std::printf("Third-order CP PLL (Table 1 parameters)\n%s\n\n", params.str().c_str());

  // The certified model: continuized pump with the Ip interval as an
  // uncertain parameter (see DESIGN.md for why the fat-guard 3-mode
  // reduction cannot carry a polynomial certificate).
  const pll::ReducedModel model = pll::make_averaged(params);
  std::printf("normalized loop constants: a=%.3f rho=%.3f kappa=%.3f (T=%.3g s)\n\n",
              model.constants.a, model.constants.rho, model.constants.kappa,
              model.constants.t_scale);

  core::PipelineOptions opt;
  opt.lyapunov.certificate_degree = 2;
  opt.lyapunov.flow_decrease = core::FlowDecrease::Strict;
  opt.lyapunov.strict_margin = 1e-4;
  opt.lyapunov.maximize_region = true;
  opt.advection.h = 0.01;
  opt.advection.gamma = 0.008;
  opt.advection.eps = 0.3;
  opt.max_advection_iterations = 14;
  if (const char* backend = std::getenv("SOSLOCK_BACKEND")) {
    const std::vector<std::string> known = sdp::registered_backends();
    if (std::find(known.begin(), known.end(), backend) == known.end()) {
      std::fprintf(stderr, "unknown SOSLOCK_BACKEND '%s'; registered:", backend);
      for (const std::string& name : known) std::fprintf(stderr, " %s", name.c_str());
      std::fprintf(stderr, "\n");
      return 2;
    }
    opt.use_backend(backend);
    std::printf("solver backend: %s\n\n", backend);
  }

  // Initial region: |v| up to ~5 V around the lock voltage, phase error up
  // to 0.9 cycles — the start-up states of the paper's introduction.
  const std::size_t nvars = model.system.nvars();
  poly::Polynomial b_init(nvars);
  const double axes[3] = {5.0, 4.2, 0.9};
  for (std::size_t i = 0; i < 3; ++i) {
    const poly::Polynomial xi = poly::Polynomial::variable(nvars, i);
    b_init += (1.0 / (axes[i] * axes[i])) * xi * xi;
  }
  b_init -= poly::Polynomial::constant(nvars, 1.0);
  b_init *= 0.5;

  const core::PipelineReport report =
      core::InevitabilityVerifier(opt).verify(model.system, b_init);
  std::printf("%s\n", report.summary().c_str());

  if (report.verdict == core::Verdict::VerifiedByAdvection ||
      report.verdict == core::Verdict::VerifiedWithEscape) {
    std::printf("==> phase-locking is INEVITABLE from the initial region\n");
    std::printf("    (Lyapunov certificate audited: %zu Gram identities checked)\n",
                report.lyapunov.audit.checked);
    return 0;
  }
  std::printf("==> verification inconclusive\n");
  return 1;
}
