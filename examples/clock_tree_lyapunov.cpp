// Multi-loop PLL cascade / clock-tree demo: the first in-tree model whose
// Lyapunov correlative-sparsity graph is genuinely non-complete.
//
//   1. Build the clock tree: K averaged pump-vertex loops (v_i, e_i) coupled
//      only through one shared distribution rail s.
//   2. Synthesize a Lyapunov certificate twice — dense template vs the
//      clique-structured sparse template + correlative Gram splitting — and
//      compare the largest PSD cone each compile hands the backend.
//   3. Solve the directly-built clock-tree coupling SDP with the chordal
//      decomposition lowered natively (sdp::DecomposedCone, overlap
//      couplings as block-eliminated multipliers) vs at the seam (overlap
//      equality rows), and show the Schur-complement geometry shrink.
//
// Usage: example_clock_tree_lyapunov [num_loops]   (default 4)
#include <cstdio>
#include <cstdlib>

#include "core/lyapunov.hpp"
#include "pll/models.hpp"
#include "pll/params.hpp"
#include "poly/sparsity.hpp"
#include "sdp/lowering.hpp"
#include "sdp/solver.hpp"

using namespace soslock;

int main(int argc, char** argv) {
  pll::ClockTreeOptions tree_options;
  if (argc > 1) tree_options.loops = static_cast<std::size_t>(std::atoi(argv[1]));
  if (tree_options.loops < 1 || tree_options.loops > 64) tree_options.loops = 4;
  const pll::ClockTreeModel model =
      pll::make_clock_tree(pll::Params::paper_third_order(), tree_options);
  const std::size_t nstates = model.system.nstates();
  std::printf("=== clock tree: %zu loops, %zu states [s", model.loops, nstates);
  for (std::size_t i = 0; i < model.loops; ++i) std::printf(", v%zu, e%zu", i + 1, i + 1);
  std::printf("] ===\n\n");

  // --- Lyapunov synthesis: dense vs clique-structured template -------------
  auto synthesize = [&](bool sparse) {
    core::LyapunovOptions opt;
    opt.certificate_degree = 2;
    opt.flow_decrease = core::FlowDecrease::Strict;
    opt.strict_margin = 1e-5;
    opt.sparse_template = sparse;
    opt.solver.sparsity =
        sparse ? sdp::SparsityOptions::Correlative : sdp::SparsityOptions::Off;
    return core::LyapunovSynthesizer(opt).synthesize(model.system);
  };
  const core::LyapunovResult dense = synthesize(false);
  const core::LyapunovResult sparse = synthesize(true);
  std::printf("dense template:  success=%s audit=%s max cone=%zu  %s\n",
              dense.success ? "yes" : "no", dense.audit.ok ? "ok" : "FAIL",
              dense.solver.max_cone, dense.solver.str().c_str());
  std::printf("sparse template: success=%s audit=%s max cone=%zu  %s\n",
              sparse.success ? "yes" : "no", sparse.audit.ok ? "ok" : "FAIL",
              sparse.solver.max_cone, sparse.solver.str().c_str());
  if (sparse.success && !sparse.certificates.empty()) {
    const poly::Polynomial& v = sparse.certificates.front();
    const auto cliques = poly::support_cliques(v.nvars(), poly::support_info(v).support);
    std::printf("certificate csp cliques: %zu (largest ", cliques.size());
    std::size_t mx = 0;
    for (const auto& c : cliques) mx = std::max(mx, c.size());
    std::printf("%zu of %zu states)\n", mx, nstates);
  }

  // --- native vs seam decomposed-cone lowering on the coupling SDP ---------
  std::printf("\n=== coupling SDP: native DecomposedCone vs seam overlap rows ===\n");
  sdp::LoweringOptions low;
  low.sparsity = sdp::SparsityOptions::Chordal;
  low.chordal.min_block_size = 4;  // the tree cliques are pairs; let them split
  for (const bool at_seam : {false, true}) {
    low.chordal.at_seam = at_seam;
    const sdp::Lowering lowering =
        sdp::lower(pll::clock_tree_coupling_sdp(model.constants, tree_options), low);
    sdp::SolveContext context;
    const sdp::Solution sol =
        sdp::make_solver("ipm", {})->solve(lowering.problem, context);
    const sdp::Solution recovered = sdp::recover(sol, lowering);
    std::printf("%-7s rows=%zu overlaps=%zu schur_rows=%zu iters=%d status=%s "
                "obj=%.6f\n",
                at_seam ? "seam" : "native", lowering.problem.num_rows(),
                lowering.problem.num_overlaps(), sol.schur_rows, sol.iterations,
                sdp::to_string(recovered.status).c_str(), recovered.primal_objective);
    for (const sdp::PassRecord& pass : lowering.passes)
      std::printf("        pass %-12s %s\n", pass.name.c_str(), pass.detail.c_str());
  }
  std::printf("\n(native keeps the factored Schur complement at the original row "
              "count; the seam pays one extra row per overlap entry)\n");
  return 0;
}
