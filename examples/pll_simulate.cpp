// Simulate the full event-driven CP PLL (explicit reference/VCO phases and a
// tri-state PFD) and print the lock transient plus a Monte-Carlo lock study.
// This is the validation companion to the formal pipeline: the certified
// claim ("all initial states lock") is checked empirically against the
// mechanism the reduced models abstract.
#include <cstdio>

#include "pll/full_model.hpp"
#include "pll/params.hpp"
#include "sim/monte_carlo.hpp"
#include "util/ascii_plot.hpp"

using namespace soslock;

int main() {
  const pll::Params params = pll::Params::paper_third_order();
  const pll::FullPllModel model(params);
  std::printf("Third-order CP PLL, event-driven behavioural model\n%s\n\n",
              params.str().c_str());

  // One transient from a start-up corner: v = (2, -1) V off lock, e = 0.6.
  pll::FullSimOptions opt;
  opt.tau_max = 600.0;
  opt.record_stride = 8;
  const pll::FullSimResult run = model.simulate({2.0, -1.0}, 0.6, opt);
  std::printf("locked: %s, lock time %.1f (units of R*C2 = %.3g s), cycle slips: %d\n",
              run.locked ? "yes" : "no", run.lock_time,
              model.constants().t_scale, run.cycle_slips);

  // Phase-error transient as an ASCII strip chart.
  util::AsciiPlot plot(0.0, run.trace.back().tau, -1.0, 1.0, 72, 20);
  util::Series e_series{"phase error e(tau)", '*', {}};
  util::Series v_series{"control voltage v2(tau)/4", '+', {}};
  for (const pll::FullTracePoint& pt : run.trace) {
    e_series.points.emplace_back(pt.tau, pt.e);
    v_series.points.emplace_back(pt.tau, pt.v[1] / 4.0);
  }
  plot.add(e_series);
  plot.add(v_series);
  std::printf("%s\n", plot.str("lock transient", "tau", "e / v2").c_str());

  // Monte-Carlo inevitability check.
  sim::LockStudyOptions mc;
  mc.trials = 50;
  mc.v_range = 2.0;
  mc.e_range = 0.8;
  mc.sim.tau_max = 800.0;
  const sim::LockStudyResult study = sim::lock_study(model, mc);
  std::printf("Monte-Carlo: %zu/%zu random initial states locked "
              "(mean lock time %.1f, max %.1f, %zu trials slipped cycles)\n",
              study.locked, study.total, study.mean_lock_time, study.max_lock_time,
              study.trials_with_cycle_slip);
  return study.locked == study.total ? 0 : 1;
}
