// Level-set advection on a 2-D nonlinear system: watch a polynomial sublevel
// set transported by the flow (the Wang-Lall-West machinery the paper's P2
// stage builds on), independently of any PLL.
//
// System: a damped polynomial oscillator x' = y, y' = -x - y - 0.05 x^3.
#include <cmath>
#include <cstdio>

#include "core/advection.hpp"
#include "core/inclusion.hpp"
#include "util/ascii_plot.hpp"

using namespace soslock;
using poly::Polynomial;

namespace {

std::vector<std::pair<double, double>> boundary(const Polynomial& b, int rays = 160) {
  std::vector<std::pair<double, double>> pts;
  linalg::Vector x(2, 0.0);
  for (int k = 0; k < rays; ++k) {
    const double th = 2.0 * M_PI * k / rays;
    double lo = 0.0, hi = 6.0;
    for (int it = 0; it < 50; ++it) {
      const double mid = 0.5 * (lo + hi);
      x[0] = mid * std::cos(th);
      x[1] = mid * std::sin(th);
      (b.eval(x) <= 0.0 ? lo : hi) = mid;
    }
    pts.emplace_back(lo * std::cos(th), lo * std::sin(th));
  }
  return pts;
}

}  // namespace

int main() {
  hybrid::HybridSystem sys(2, 0);
  const Polynomial x = Polynomial::variable(2, 0);
  const Polynomial y = Polynomial::variable(2, 1);
  hybrid::Mode mode;
  mode.flow = {y, -1.0 * x - y - 0.05 * x.pow(3)};
  mode.domain = hybrid::SemialgebraicSet(2);
  mode.domain.add_interval(0, -4.0, 4.0);
  mode.domain.add_interval(1, -4.0, 4.0);
  mode.contains_equilibrium = true;
  sys.add_mode(std::move(mode));

  core::AdvectionOptions opt;
  opt.h = 0.02;
  opt.gamma = 0.004;
  opt.eps = 0.4;
  opt.set_degree = 2;
  opt.multiplier_degree = 4;  // the cubic flow needs richer S-procedure terms
  const core::AdvectionEngine engine(sys, opt);

  Polynomial b = 0.5 * ((1.0 / 9.0) * (x * x + y * y) - Polynomial::constant(2, 1.0));
  const Polynomial target = x * x + y * y - 6.25;  // disk of radius 2.5
  const core::InclusionChecker inclusion;

  util::AsciiPlot plot(-4.0, 4.0, -4.0, 4.0, 72, 30);
  plot.add({"initial set (radius 3)", '#', boundary(b)});
  std::printf("advecting the disk of radius 3 under x'=y, y'=-x-y-0.05x^3 ...\n");

  int iterations = 0;
  bool immersed = false;
  for (; iterations < 150 && !immersed; ++iterations) {
    immersed = inclusion.subset(b, target).included;
    if (immersed) break;
    const core::AdvectionStepResult step = engine.step(b);
    if (!step.success) {
      std::printf("step %d infeasible: %s\n", iterations, step.message.c_str());
      return 1;
    }
    b = step.next;
    if (iterations % 30 == 29) plot.add({"iterate " + std::to_string(iterations + 1), '.',
                                       boundary(b)});
  }
  plot.add({"final set", 'o', boundary(b)});
  plot.add({"target disk (radius 2.5)", '*',
            boundary(x * x + y * y - 6.25)});
  std::printf("%s\n", plot.str("advected level sets", "x", "y").c_str());
  if (immersed) {
    std::printf("certified immersed into {x^2+y^2 <= 6.25} after %d advection steps\n",
                iterations);
  } else {
    std::printf("not immersed within %d steps (final set shown above)\n", iterations);
  }
  return immersed ? 0 : 1;
}
