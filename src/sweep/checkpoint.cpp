#include "sweep/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "util/log.hpp"

namespace soslock::sweep {
namespace {

constexpr const char* kHeader = "soslock-sweep-checkpoint v1";

void write_vector(std::FILE* f, const char* tag, const linalg::Vector& v) {
  std::fprintf(f, "%s %zu", tag, v.size());
  for (const double value : v) std::fprintf(f, " %.17g", value);
  std::fprintf(f, "\n");
}

void write_matrix(std::FILE* f, const linalg::Matrix& m) {
  std::fprintf(f, "m %zu %zu", m.rows(), m.cols());
  const std::size_t n = m.rows() * m.cols();
  for (std::size_t i = 0; i < n; ++i) std::fprintf(f, " %.17g", m.data()[i]);
  std::fprintf(f, "\n");
}

bool read_vector(std::FILE* f, const char* tag, linalg::Vector& v) {
  char seen[8] = {0};
  std::uint64_t n = 0;
  if (std::fscanf(f, "%7s %" SCNu64, seen, &n) != 2) return false;
  if (std::string(seen) != tag || n > (1u << 26)) return false;
  v.assign(n, 0.0);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (std::fscanf(f, "%lg", &v[i]) != 1) return false;
  }
  return true;
}

bool read_matrix(std::FILE* f, linalg::Matrix& m) {
  char seen[8] = {0};
  std::uint64_t rows = 0, cols = 0;
  if (std::fscanf(f, "%7s %" SCNu64 " %" SCNu64, seen, &rows, &cols) != 3) return false;
  if (std::string(seen) != "m" || rows > (1u << 16) || cols > (1u << 16)) return false;
  m = linalg::Matrix(rows, cols);
  const std::uint64_t n = rows * cols;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (std::fscanf(f, "%lg", &m.data()[i]) != 1) return false;
  }
  return true;
}

bool read_blocks(std::FILE* f, const char* tag, std::vector<linalg::Matrix>& out) {
  char seen[8] = {0};
  std::uint64_t count = 0;
  if (std::fscanf(f, "%7s %" SCNu64, seen, &count) != 2) return false;
  if (std::string(seen) != tag || count > (1u << 20)) return false;
  out.resize(count);
  for (std::uint64_t j = 0; j < count; ++j) {
    if (!read_matrix(f, out[j])) return false;
  }
  return true;
}

}  // namespace

bool save_checkpoint(const std::string& path, const SweepCheckpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    util::log_info("sweep checkpoint: cannot open ", tmp, " for writing");
    return false;
  }
  std::fprintf(f, "%s\n", kHeader);
  std::fprintf(f, "grid %" PRIu64 " %" PRIu64 "\n", checkpoint.grid_points,
               checkpoint.lanes);
  for (const PointRecord& rec : checkpoint.completed) {
    std::fprintf(f, "point %zu %d %d %d %d %d %.17g %.17g %.17g\n", rec.index,
                 rec.certified ? 1 : 0, static_cast<int>(rec.status), rec.iterations,
                 rec.warm_hit ? 1 : 0, rec.cold_restart ? 1 : 0, rec.solve_seconds,
                 rec.audit_residual, rec.objective);
  }
  for (std::size_t lane = 0; lane < checkpoint.lane_chains.size(); ++lane) {
    const sdp::WarmStart& chain = checkpoint.lane_chains[lane];
    std::fprintf(f, "lane %zu %d %" PRIu64 "\n", lane, chain.empty() ? 0 : 1,
                 chain.fingerprint);
    if (chain.empty()) continue;
    std::fprintf(f, "x %zu\n", chain.x.size());
    for (const linalg::Matrix& m : chain.x) write_matrix(f, m);
    std::fprintf(f, "z %zu\n", chain.z.size());
    for (const linalg::Matrix& m : chain.z) write_matrix(f, m);
    write_vector(f, "y", chain.y);
    write_vector(f, "w", chain.w);
  }
  const bool io_ok = std::fflush(f) == 0 && std::ferror(f) == 0;
  std::fclose(f);
  if (!io_ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    util::log_info("sweep checkpoint: failed to publish ", path);
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

SweepCheckpoint load_checkpoint(const std::string& path) {
  SweepCheckpoint cp;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return cp;
  bool ok = true;
  {
    char header[64] = {0};
    // The header is the only line read wholesale; everything after is
    // whitespace-token scanf, so line breaks are purely cosmetic.
    ok = std::fgets(header, sizeof(header), f) != nullptr &&
         std::string(header) == std::string(kHeader) + "\n";
  }
  char tag[16] = {0};
  if (ok) {
    ok = std::fscanf(f, "%15s %" SCNu64 " %" SCNu64, tag, &cp.grid_points, &cp.lanes) ==
             3 &&
         std::string(tag) == "grid" && cp.lanes <= (1u << 16);
  }
  while (ok && std::fscanf(f, "%15s", tag) == 1) {
    if (std::string(tag) == "point") {
      PointRecord rec;
      int certified = 0, status = 0, warm_hit = 0, cold_restart = 0;
      ok = std::fscanf(f, "%zu %d %d %d %d %d %lg %lg %lg", &rec.index, &certified,
                       &status, &rec.iterations, &warm_hit, &cold_restart,
                       &rec.solve_seconds, &rec.audit_residual, &rec.objective) == 9 &&
           rec.index < cp.grid_points && status >= 0 &&
           status <= static_cast<int>(sdp::SolveStatus::Faulted);
      if (!ok) break;
      rec.certified = certified != 0;
      rec.warm_hit = warm_hit != 0;
      rec.cold_restart = cold_restart != 0;
      rec.status = static_cast<sdp::SolveStatus>(status);
      cp.completed.push_back(std::move(rec));
    } else if (std::string(tag) == "lane") {
      std::uint64_t lane = 0;
      int nonempty = 0;
      sdp::WarmStart chain;
      ok = std::fscanf(f, "%" SCNu64 " %d %" SCNu64, &lane, &nonempty,
                       &chain.fingerprint) == 3 &&
           lane < cp.lanes;
      if (!ok) break;
      if (nonempty != 0) {
        ok = read_blocks(f, "x", chain.x) && read_blocks(f, "z", chain.z) &&
             read_vector(f, "y", chain.y) && read_vector(f, "w", chain.w);
        if (!ok) break;
      }
      cp.lane_chains.resize(cp.lanes);
      cp.lane_chains[lane] = std::move(chain);
    } else {
      ok = false;
    }
  }
  std::fclose(f);
  if (!ok) {
    util::log_info("sweep checkpoint: ", path, " is corrupt or mismatched; ignoring");
    return SweepCheckpoint{};
  }
  if (cp.lane_chains.empty()) cp.lane_chains.resize(cp.lanes);
  return cp;
}

}  // namespace soslock::sweep
