#pragma once
// The certification sweep service: design-space exploration over pll::Params
// grids with a recompile-free hot path. One request = one Grid × one
// CertificationQuery; the engine partitions the grid into lanes (contiguous
// strips of axis-0 rows), fans the lanes out over sos::BatchSolver workers,
// and walks each lane serpentine so consecutive points are grid neighbors.
// Per lane it keeps
//   - an sdp::LoweringCache: from the second point on, the structurally
//     identical compile takes the in-place coefficient-update pass instead
//     of re-running analyze → decompose → lower (PassRecord provenance
//     ["update", "equilibrate"]; full_lowerings()/updates() are the
//     recompile telemetry the bench gate asserts on);
//   - a warm-start chain: the last *certified* point's base-space blob seeds
//     the next neighbor (homotopy continuation of the certificate along the
//     grid). Uncertified points never donate — and a warm attempt that comes
//     back uncertified while its donor certified is re-solved cold before
//     the verdict stands, so a stale certificate can never drag a feasible
//     region's boundary across the grid (PointRecord::cold_restart).
// Requests carry a wall-clock budget and a cooperative cancel flag; points
// that never ran are reported skipped, not absent.
#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "sdp/problem.hpp"
#include "sdp/solver.hpp"
#include "sdp/structure.hpp"
#include "sweep/grid.hpp"
#include "sweep/query.hpp"
#include "util/csv.hpp"

namespace soslock::sweep {

struct SweepOptions {
  /// Solver + sparsity configuration for every point (solver.warm_start off
  /// disables chaining too — the A/B switch the throughput bench flips).
  sdp::SolverConfig solver;
  /// Sweep lanes (BatchSolver workers); 0 = hardware count. Lanes are
  /// independent: each has its own backend, lowering cache and warm chain.
  std::size_t threads = 1;
  /// Wall-clock budget for the whole request; 0 = none. Points that the
  /// budget cuts off are marked skipped.
  double time_budget_seconds = 0.0;
  /// Per-point solve budget; 0 = none. Capped by the remaining request
  /// budget either way.
  double point_budget_seconds = 0.0;
  /// Cooperative cancellation (caller-owned, may be null): checked between
  /// points and threaded into every solve's SolveContext.
  std::atomic<bool>* cancel = nullptr;
  /// Chain warm starts along each lane (requires solver.warm_start).
  bool warm_chaining = true;
  /// When > 0, bound the process-wide StructureCache to this many entries
  /// for the request (satellite of the sweep service: long sweeps must not
  /// grow the cache one pattern per shape ever solved).
  std::size_t structure_cache_capacity = 0;
  /// Non-empty: periodically serialize completed points + lane warm chains
  /// to this file (atomic tmp+rename), so a killed sweep can resume.
  std::string checkpoint_path;
  /// Rewrite the checkpoint after this many newly completed points (>= 1).
  std::size_t checkpoint_every = 1;
  /// Non-empty: load this checkpoint and skip its already-completed points,
  /// replaying the lane warm chains. A missing/corrupt/mismatched file is
  /// ignored (cold sweep) — resume can never change a verdict.
  std::string resume_from;
  /// When > 0, stop after this many solved points and mark the rest skipped
  /// (deterministic interruption — the kill half of the kill-and-resume
  /// bench gate). Resumed points do not count against the cap.
  std::size_t max_points = 0;
};

/// Per-point result and telemetry, in grid order.
struct PointRecord {
  std::size_t index = 0;
  std::vector<std::size_t> coords;  // mixed-radix grid coordinates
  std::vector<double> values;       // swept axis midpoints at this point
  bool certified = false;           // solved + independently audited
  bool skipped = false;             // budget/cancel hit before this point ran
  sdp::SolveStatus status = sdp::SolveStatus::NumericalProblem;
  int iterations = 0;               // IPM/ADMM iterations (both solves when cold_restart)
  double solve_seconds = 0.0;       // wall clock for this point (incl. audit)
  bool warm_hit = false;            // final verdict came from a chained warm solve
  bool cold_restart = false;        // warm attempt flipped verdict; re-solved cold
  bool resumed = false;             // restored from a checkpoint, not re-solved
  double audit_residual = 0.0;      // worst identity residual of the audit
  double objective = 0.0;
};

struct SweepReport {
  std::vector<PointRecord> points;  // grid order
  std::size_t certified = 0;
  std::size_t uncertified = 0;
  std::size_t skipped = 0;
  std::size_t warm_hits = 0;
  std::size_t cold_restarts = 0;
  std::size_t resumed_points = 0;   // restored from SweepOptions::resume_from
  int total_iterations = 0;
  double seconds = 0.0;             // whole request wall clock
  /// Lowering-cache telemetry summed over lanes: a healthy sweep shows
  /// full_lowerings == lanes and updates == solves - lanes (recompile-free
  /// after each lane's first point).
  std::size_t full_lowerings = 0;
  std::size_t updates = 0;
  /// Global StructureCache counter *deltas* over the request (entries and
  /// capacity are end-of-request absolutes).
  sdp::StructureCacheTelemetry structure_cache;
  bool interrupted = false;         // budget or cancel cut the request short

  double warm_hit_rate() const;            // warm_hits / solved points
  double certificates_per_second() const;  // certified / seconds
  /// One-paragraph human summary (verdict counts, throughput, cache telemetry).
  std::string summary() const;
  /// Per-point table: index, axis values, verdict, iterations, telemetry.
  util::CsvWriter csv(const Grid& grid) const;
  /// ASCII stability map over the first two axes ('#' certified,
  /// '.' uncertified, '?' skipped).
  std::string stability_map(const Grid& grid) const;
};

/// Run one sweep request to completion (or budget/cancel).
SweepReport run_sweep(const Grid& grid, const CertificationQuery& query,
                      const SweepOptions& options = {});

}  // namespace soslock::sweep
