#pragma once
// Certification queries: what question the sweep asks at every design point.
// A query maps a concrete pll::Params to the SOS program whose feasibility
// (plus independent audit) is that point's verdict. The stock query is the
// paper's Lyapunov lock certification over the averaged model, built through
// core::build_lyapunov_program so the sweep certifies with exactly the
// certifier's program shape — which is also what makes the sweep hot path
// work: every grid point compiles to a structurally identical SDP, so the
// lowering cache's in-place coefficient-update pass (sdp::LoweringCache)
// replaces the full pipeline from the second point on.
#include <functional>
#include <string>

#include "core/lyapunov.hpp"
#include "pll/models.hpp"
#include "sos/program.hpp"

namespace soslock::sweep {

/// One design-point certification question. `build` must be thread-safe
/// (sweep lanes call it concurrently) and should produce structurally
/// identical programs across the grid — values may differ freely.
struct CertificationQuery {
  std::string name;
  std::function<sos::SosProgram(const pll::Params&)> build;
};

/// Tuning of the stock Lyapunov lock query. Defaults favor sweep throughput
/// over certificate quality: a degree-2 common certificate on the nominal
/// averaged model (the swept axes carry the design variation; the pump
/// interval is not additionally lifted into an uncertain parameter).
struct LyapunovQueryOptions {
  pll::ModelOptions model;
  core::LyapunovOptions lyapunov;
  /// Use make_averaged_vertices (one mode per extreme pump value) instead of
  /// the single-mode averaged model.
  bool vertices = false;

  LyapunovQueryOptions() {
    model.uncertain_pump = false;
    lyapunov.certificate_degree = 2;
    lyapunov.common_certificate = true;
  }
};

/// The stock query: does a Lyapunov certificate exist for the averaged PLL
/// at this design point? Callers that sweep with a sparsity-enabled solver
/// config should set options.lyapunov.solver to the same config so the
/// compiled Gram structure matches what the sweep solves.
CertificationQuery lyapunov_query(const LyapunovQueryOptions& options = {});

}  // namespace soslock::sweep
