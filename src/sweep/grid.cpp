#include "sweep/grid.hpp"

#include <stdexcept>

namespace soslock::sweep {

std::string to_string(Axis axis) {
  switch (axis) {
    case Axis::Ip: return "ip";
    case Axis::Kv: return "kv";
    case Axis::R: return "r";
    case Axis::C1: return "c1";
    case Axis::C2: return "c2";
    case Axis::C3: return "c3";
    case Axis::R2: return "r2";
  }
  return "?";
}

Grid::Grid(pll::Params base, std::vector<AxisSpec> axes)
    : base_(std::move(base)), axes_(std::move(axes)) {
  for (const AxisSpec& spec : axes_) {
    if (spec.count == 0) throw std::invalid_argument("sweep::Grid: axis count must be >= 1");
    size_ *= spec.count;
  }
}

std::vector<std::size_t> Grid::coords(std::size_t index) const {
  std::vector<std::size_t> c(axes_.size(), 0);
  for (std::size_t d = 0; d < axes_.size(); ++d) {
    c[d] = index % axes_[d].count;
    index /= axes_[d].count;
  }
  return c;
}

std::size_t Grid::index(const std::vector<std::size_t>& coords) const {
  std::size_t idx = 0, stride = 1;
  for (std::size_t d = 0; d < axes_.size(); ++d) {
    idx += coords[d] * stride;
    stride *= axes_[d].count;
  }
  return idx;
}

double Grid::axis_value(std::size_t d, std::size_t k) const {
  const AxisSpec& spec = axes_[d];
  if (spec.count == 1) return 0.5 * (spec.lo + spec.hi);
  return spec.lo + (spec.hi - spec.lo) * static_cast<double>(k) /
                       static_cast<double>(spec.count - 1);
}

pll::Params Grid::params(std::size_t idx) const {
  pll::Params p = base_;
  const std::vector<std::size_t> c = coords(idx);
  for (std::size_t d = 0; d < axes_.size(); ++d) {
    const double v = axis_value(d, c[d]);
    const pll::Interval interval{v - axes_[d].half_width, v + axes_[d].half_width};
    switch (axes_[d].axis) {
      case Axis::Ip: p.ip = interval; break;
      case Axis::Kv: p.kv = interval; break;
      case Axis::R: p.r = interval; break;
      case Axis::C1: p.c1 = interval; break;
      case Axis::C2: p.c2 = interval; break;
      case Axis::C3: p.c3 = interval; break;
      case Axis::R2: p.r2 = interval; break;
    }
  }
  return p;
}

}  // namespace soslock::sweep
