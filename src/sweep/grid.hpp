#pragma once
// Dense design-space grids over pll::Params. A sweep request names a subset
// of circuit axes (pump current, VCO gain, loop filter R/C values), a point
// count and a midpoint range per axis; the grid enumerates the Cartesian
// product in mixed-radix order with axis 0 fastest — the direction the sweep
// service chains warm starts along (src/sweep/service.hpp). Every grid point
// is a full Params: the base design with the swept intervals replaced by
// [v - half_width, v + half_width] around that point's midpoints, so a sweep
// can cover nominal designs (half_width 0) or per-point robustness boxes
// with one spec.
#include <cstddef>
#include <string>
#include <vector>

#include "pll/params.hpp"

namespace soslock::sweep {

/// A sweepable circuit parameter of pll::Params.
enum class Axis { Ip, Kv, R, C1, C2, C3, R2 };

std::string to_string(Axis axis);

/// One grid dimension: `count` midpoints evenly spaced over [lo, hi]
/// (count == 1 pins the midpoint of [lo, hi]), each carried as the interval
/// [v - half_width, v + half_width] into the model.
struct AxisSpec {
  Axis axis = Axis::Ip;
  std::size_t count = 1;
  double lo = 0.0;
  double hi = 0.0;
  double half_width = 0.0;
};

/// Cartesian grid over a base design. Index order is mixed-radix with axis 0
/// as the fastest-varying digit, so consecutive indices are grid neighbors
/// along axis 0 — the property the sweep service's serpentine lanes exploit.
class Grid {
 public:
  Grid(pll::Params base, std::vector<AxisSpec> axes);

  /// Product of the axis counts (1 for an axis-free grid: the base design).
  std::size_t size() const { return size_; }
  std::size_t dims() const { return axes_.size(); }
  const std::vector<AxisSpec>& axes() const { return axes_; }
  const pll::Params& base() const { return base_; }

  /// Mixed-radix digits of `index` (axis 0 first).
  std::vector<std::size_t> coords(std::size_t index) const;
  std::size_t index(const std::vector<std::size_t>& coords) const;

  /// Midpoint value of axis `d` at step `k`.
  double axis_value(std::size_t d, std::size_t k) const;

  /// The full design at `index`: base params with each swept interval
  /// replaced by [v - half_width, v + half_width].
  pll::Params params(std::size_t index) const;

 private:
  pll::Params base_;
  std::vector<AxisSpec> axes_;
  std::size_t size_ = 1;
};

}  // namespace soslock::sweep
