#include "sweep/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "sdp/lowering.hpp"
#include "sos/batch.hpp"
#include "sos/checker.hpp"
#include "sweep/checkpoint.hpp"
#include "util/ascii_plot.hpp"
#include "util/log.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace soslock::sweep {

double SweepReport::warm_hit_rate() const {
  const std::size_t solved = certified + uncertified;
  return solved == 0 ? 0.0 : static_cast<double>(warm_hits) / static_cast<double>(solved);
}

double SweepReport::certificates_per_second() const {
  return seconds <= 0.0 ? 0.0 : static_cast<double>(certified) / seconds;
}

std::string SweepReport::summary() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "sweep: %zu point(s): %zu certified, %zu uncertified, %zu skipped%s\n"
                "  %.2fs wall, %.2f certificates/s, %d total iterations\n"
                "  warm chaining: %zu warm hit(s) (%.0f%%), %zu cold restart(s)\n"
                "  lowering: %zu full pipeline run(s), %zu in-place update(s)\n"
                "  structure cache: +%zu hit(s), +%zu miss(es), +%zu eviction(s), "
                "%zu/%zu entries",
                points.size(), certified, uncertified, skipped,
                interrupted ? " (interrupted)" : "", seconds, certificates_per_second(),
                total_iterations, warm_hits, 100.0 * warm_hit_rate(), cold_restarts,
                full_lowerings, updates, structure_cache.hits, structure_cache.misses,
                structure_cache.evictions, structure_cache.entries,
                structure_cache.capacity);
  return buf;
}

util::CsvWriter SweepReport::csv(const Grid& grid) const {
  std::vector<std::string> header = {"index"};
  for (const AxisSpec& spec : grid.axes()) header.push_back(to_string(spec.axis));
  for (const char* col : {"certified", "skipped", "status", "iterations", "warm_hit",
                          "cold_restart", "solve_seconds", "objective", "audit_residual"})
    header.push_back(col);
  util::CsvWriter csv(std::move(header));
  for (const PointRecord& rec : points) {
    std::vector<std::string> row = {std::to_string(rec.index)};
    for (const double v : rec.values) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.9g", v);
      row.push_back(buf);
    }
    row.push_back(rec.certified ? "1" : "0");
    row.push_back(rec.skipped ? "1" : "0");
    row.push_back(rec.skipped ? "skipped" : sdp::to_string(rec.status));
    row.push_back(std::to_string(rec.iterations));
    row.push_back(rec.warm_hit ? "1" : "0");
    row.push_back(rec.cold_restart ? "1" : "0");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", rec.solve_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.9g", rec.objective);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3g", rec.audit_residual);
    row.push_back(buf);
    csv.add_row(row);
  }
  return csv;
}

std::string SweepReport::stability_map(const Grid& grid) const {
  if (grid.dims() == 0 || points.empty()) return "(no swept axes)\n";
  // Project on the first two axes (a 1-D sweep plots along y = 0).
  auto extent = [&](std::size_t d) {
    double lo = grid.axis_value(d, 0);
    double hi = grid.axis_value(d, grid.axes()[d].count - 1);
    if (lo > hi) std::swap(lo, hi);
    const double pad = std::max(1e-12, 0.05 * std::max(hi - lo, std::fabs(hi)));
    return std::pair<double, double>{lo - pad, hi + pad};
  };
  const auto [xmin, xmax] = extent(0);
  const auto [ymin, ymax] = grid.dims() > 1 ? extent(1) : std::pair<double, double>{-1.0, 1.0};
  util::AsciiPlot plot(xmin, xmax, ymin, ymax);
  util::Series ok{"certified", '#', {}}, bad{"uncertified", '.', {}}, skip{"skipped", '?', {}};
  for (const PointRecord& rec : points) {
    const double x = rec.values.empty() ? 0.0 : rec.values[0];
    const double y = rec.values.size() > 1 ? rec.values[1] : 0.0;
    (rec.skipped ? skip : rec.certified ? ok : bad).points.push_back({x, y});
  }
  plot.add(ok);
  plot.add(bad);
  plot.add(skip);
  return plot.str("stability map", to_string(grid.axes()[0].axis),
                  grid.dims() > 1 ? to_string(grid.axes()[1].axis) : "");
}

namespace {

/// Per-lane tallies, merged after the fan-out joins.
struct LaneStats {
  std::size_t full_lowerings = 0;
  std::size_t updates = 0;
  bool interrupted = false;
};

}  // namespace

SweepReport run_sweep(const Grid& grid, const CertificationQuery& query,
                      const SweepOptions& options) {
  SweepReport report;
  const std::size_t total = grid.size();
  report.points.resize(total);
  if (total == 0) return report;

  const util::Timer request_timer;
  const sdp::StructureCacheTelemetry cache_before = sdp::StructureCache::global().telemetry();
  if (options.structure_cache_capacity > 0)
    sdp::StructureCache::global().set_capacity(options.structure_cache_capacity);

  // Axis-0 rows are the warm-chaining direction; lanes take contiguous row
  // chunks and walk them serpentine, so consecutive solves within a lane are
  // always grid neighbors.
  const std::size_t row_len = grid.dims() == 0 ? 1 : grid.axes()[0].count;
  const std::size_t rows = total / row_len;
  const sos::BatchSolver batch(options.threads);
  const std::size_t lanes = std::max<std::size_t>(1, std::min(batch.threads(), rows));
  const sdp::SolverConfig lane_config = batch.effective_config(options.solver, lanes);
  std::vector<LaneStats> lane_stats(lanes);
  std::atomic<bool> out_of_budget{false};

  // Checkpoint/resume state. Everything lives under one mutex — the shared
  // lane chains, the completed bitmap, and the file rewrites; checkpointing
  // is rare and cheap relative to a solve, and the single lock is what makes
  // the writer's cross-lane record reads well-ordered under TSan.
  SweepCheckpoint resume;
  if (!options.resume_from.empty()) {
    resume = load_checkpoint(options.resume_from);
    if (!resume.empty() && resume.grid_points != total) {
      util::log_info("sweep: checkpoint covers ", resume.grid_points,
                     " point(s), grid has ", total, "; running cold");
      resume = SweepCheckpoint{};
    } else if (resume.lanes != lanes) {
      // Records stay valid (they are grid-indexed), but the chains belong to
      // a different partition of the grid and cannot be replayed.
      resume.lane_chains.assign(lanes, sdp::WarmStart{});
    }
  }
  std::vector<const PointRecord*> resumed_at(total, nullptr);
  for (const PointRecord& rec : resume.completed) resumed_at[rec.index] = &rec;

  const bool checkpointing = !options.checkpoint_path.empty();
  const std::size_t ckpt_every = std::max<std::size_t>(1, options.checkpoint_every);
  util::Mutex ckpt_mutex;
  std::vector<char> completed(total, 0);
  std::vector<sdp::WarmStart> lane_chains(resume.lane_chains);
  lane_chains.resize(lanes);
  std::size_t completed_since = 0;
  std::atomic<std::size_t> solved_points{0};
  for (const PointRecord& rec : resume.completed) completed[rec.index] = 1;
  auto write_checkpoint_locked = [&] {
    SweepCheckpoint cp;
    cp.grid_points = total;
    cp.lanes = lanes;
    cp.lane_chains = lane_chains;
    for (std::size_t i = 0; i < total; ++i) {
      if (completed[i] != 0) cp.completed.push_back(report.points[i]);
    }
    save_checkpoint(options.checkpoint_path, cp);
  };

  auto run_lane = [&](std::size_t lane) {
    const std::size_t row_begin = lane * rows / lanes;
    const std::size_t row_end = (lane + 1) * rows / lanes;
    const std::unique_ptr<sdp::SolverBackend> backend = sdp::make_solver(lane_config);
    sdp::LoweringCache cache;
    sdp::WarmStart chain;  // last certified point's base-space blob
    {
      const util::MutexLock lock(ckpt_mutex);
      chain = lane_chains[lane];  // replay the checkpointed chain, if any
    }

    for (std::size_t rr = row_begin; rr < row_end; ++rr) {
      const bool reverse = ((rr - row_begin) % 2) == 1;  // serpentine
      for (std::size_t s = 0; s < row_len; ++s) {
        const std::size_t col = reverse ? row_len - 1 - s : s;
        const std::size_t index = rr * row_len + col;
        PointRecord& rec = report.points[index];
        rec.index = index;
        rec.coords = grid.coords(index);
        rec.values.reserve(grid.dims());
        for (std::size_t d = 0; d < grid.dims(); ++d)
          rec.values.push_back(grid.axis_value(d, rec.coords[d]));

        if (const PointRecord* prev = resumed_at[index]; prev != nullptr) {
          // Restored verbatim from the checkpoint: verdict and per-point
          // telemetry are those of the original solve; only the grid-derived
          // coords/values above are recomputed.
          rec.certified = prev->certified;
          rec.status = prev->status;
          rec.iterations = prev->iterations;
          rec.solve_seconds = prev->solve_seconds;
          rec.warm_hit = prev->warm_hit;
          rec.cold_restart = prev->cold_restart;
          rec.audit_residual = prev->audit_residual;
          rec.objective = prev->objective;
          rec.resumed = true;
          continue;
        }

        const bool cancelled = options.cancel != nullptr &&
                               options.cancel->load(std::memory_order_relaxed);
        if (cancelled || out_of_budget.load(std::memory_order_relaxed)) {
          rec.skipped = true;
          lane_stats[lane].interrupted = true;
          continue;
        }
        if (options.max_points > 0 &&
            solved_points.load(std::memory_order_relaxed) >= options.max_points) {
          // Deterministic interruption: the kill half of the checkpoint
          // kill-and-resume gate.
          rec.skipped = true;
          lane_stats[lane].interrupted = true;
          continue;
        }
        double remaining = 0.0;
        if (options.time_budget_seconds > 0.0) {
          remaining = options.time_budget_seconds - request_timer.seconds();
          if (remaining <= 0.0) {
            out_of_budget.store(true, std::memory_order_relaxed);
            rec.skipped = true;
            lane_stats[lane].interrupted = true;
            continue;
          }
        }

        const util::Timer point_timer;
        const sos::SosProgram program = query.build(grid.params(index));
        auto solve_once = [&](const sdp::WarmStart* warm) {
          sdp::SolveContext context;
          context.cancel = options.cancel;
          double budget = options.point_budget_seconds;
          if (remaining > 0.0) budget = budget > 0.0 ? std::min(budget, remaining) : remaining;
          context.time_budget_seconds = budget;
          context.warm_start = warm;
          return program.solve(*backend, context, cache);
        };
        auto verdict = [&](const sos::SolveResult& solved, double* residual) {
          if (sos::solve_hard_failed(solved)) return false;
          const sos::AuditReport audit = sos::audit(program, solved);
          *residual = audit.worst_residual;
          return audit.ok;
        };

        const bool warm_available = options.warm_chaining && options.solver.warm_start &&
                                    !chain.empty();
        sos::SolveResult solved = solve_once(warm_available ? &chain : nullptr);
        rec.iterations = solved.sdp.iterations;
        bool certified = verdict(solved, &rec.audit_residual);
        // Verdict-boundary guard: a chained certificate that fails where its
        // donor succeeded may be a genuine infeasibility *or* a poisoned
        // start across the feasibility boundary — only a cold solve can tell
        // them apart. (An Interrupted iterate is budget noise, not a
        // boundary; it stays as-is.)
        if (warm_available && !certified &&
            solved.status != sdp::SolveStatus::Interrupted &&
            !out_of_budget.load(std::memory_order_relaxed)) {
          sos::SolveResult cold = solve_once(nullptr);
          rec.iterations += cold.sdp.iterations;
          rec.cold_restart = true;
          solved = std::move(cold);
          certified = verdict(solved, &rec.audit_residual);
        }
        rec.warm_hit = warm_available && !rec.cold_restart;
        rec.certified = certified;
        rec.status = solved.status;
        rec.objective = solved.objective;
        rec.solve_seconds = point_timer.seconds();
        if (solved.status == sdp::SolveStatus::Interrupted)
          lane_stats[lane].interrupted = true;
        // Chain maintenance: only certified points donate; an uncertified
        // point breaks the chain so the next neighbor starts cold rather
        // than from the far side of a verdict boundary.
        if (certified && !solved.warm.empty()) {
          chain = std::move(solved.warm);
        } else {
          chain = sdp::WarmStart{};
        }
        solved_points.fetch_add(1, std::memory_order_relaxed);
        if (checkpointing) {
          const util::MutexLock lock(ckpt_mutex);
          lane_chains[lane] = chain;
          completed[index] = 1;
          if (++completed_since >= ckpt_every) {
            completed_since = 0;
            write_checkpoint_locked();
          }
        }
      }
    }
    lane_stats[lane].full_lowerings = cache.full_lowerings();
    lane_stats[lane].updates = cache.updates();
  };
  batch.run_all(lanes, run_lane);
  if (checkpointing) {
    const util::MutexLock lock(ckpt_mutex);
    write_checkpoint_locked();
  }

  for (const LaneStats& stats : lane_stats) {
    report.full_lowerings += stats.full_lowerings;
    report.updates += stats.updates;
    report.interrupted = report.interrupted || stats.interrupted;
  }
  for (const PointRecord& rec : report.points) {
    if (rec.skipped) {
      ++report.skipped;
      continue;
    }
    if (rec.certified) {
      ++report.certified;
    } else {
      ++report.uncertified;
    }
    report.warm_hits += rec.warm_hit ? 1 : 0;
    report.cold_restarts += rec.cold_restart ? 1 : 0;
    report.resumed_points += rec.resumed ? 1 : 0;
    report.total_iterations += rec.iterations;
  }
  report.seconds = request_timer.seconds();

  const sdp::StructureCacheTelemetry cache_after = sdp::StructureCache::global().telemetry();
  report.structure_cache.hits = cache_after.hits - cache_before.hits;
  report.structure_cache.misses = cache_after.misses - cache_before.misses;
  report.structure_cache.evictions = cache_after.evictions - cache_before.evictions;
  report.structure_cache.entries = cache_after.entries;
  report.structure_cache.capacity = cache_after.capacity;

  util::log_info("sweep[", query.name, "]: ", report.certified, "/", total, " certified in ",
                 report.seconds, "s (", report.updates, " recompile-free update(s))");
  return report;
}

}  // namespace soslock::sweep
