#pragma once
// Sweep checkpoint/resume: run_sweep periodically serializes the completed
// PointRecords plus each lane's warm-chain blob (keyed by its base-space
// fingerprint) to a plain-text file, and a later request pointed at that file
// skips the already-certified points and replays the warm chains — the
// resumed report is verdict-identical to an uninterrupted run with strictly
// fewer solves (the kill-and-resume bench gate).
//
// The format is a line-oriented text dump ("soslock-sweep-checkpoint v1"),
// floats at %.17g so a round-trip is bit-exact. Writes go through a .tmp
// sibling + std::rename, so a crash mid-write leaves the previous checkpoint
// intact. Loading is fail-soft by construction: a missing, truncated, or
// mismatched file yields an empty checkpoint and the sweep simply runs cold —
// a corrupt checkpoint can slow a resume down but never change a verdict.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sdp/solver.hpp"
#include "sweep/service.hpp"

namespace soslock::sweep {

struct SweepCheckpoint {
  /// Grid size the records belong to; a resume against a different grid
  /// discards the checkpoint (indices would alias other points).
  std::uint64_t grid_points = 0;
  /// Lane count of the writing sweep; warm chains are only replayed when the
  /// resuming sweep partitions the grid identically.
  std::uint64_t lanes = 0;
  /// Completed (solved, non-skipped) points. Grid coordinates and axis
  /// values are recomputed from the grid on resume, not stored.
  std::vector<PointRecord> completed;
  /// Per-lane warm-chain blob at checkpoint time (possibly empty for a lane
  /// whose last point was uncertified — the chain break is preserved).
  std::vector<sdp::WarmStart> lane_chains;

  bool empty() const { return completed.empty(); }
};

/// Atomically write `checkpoint` to `path` (via path + ".tmp" + rename).
/// Returns false on I/O failure; the sweep treats that as non-fatal.
bool save_checkpoint(const std::string& path, const SweepCheckpoint& checkpoint);

/// Parse `path`; any failure (absent file, bad header, truncation) returns an
/// empty checkpoint so the caller falls back to a cold sweep.
SweepCheckpoint load_checkpoint(const std::string& path);

}  // namespace soslock::sweep
