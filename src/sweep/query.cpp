#include "sweep/query.hpp"

namespace soslock::sweep {

CertificationQuery lyapunov_query(const LyapunovQueryOptions& options) {
  CertificationQuery query;
  query.name = options.vertices ? "lyapunov.averaged_vertices" : "lyapunov.averaged";
  query.build = [options](const pll::Params& params) {
    const pll::ReducedModel model = options.vertices
                                        ? pll::make_averaged_vertices(params, options.model)
                                        : pll::make_averaged(params, options.model);
    core::LyapunovProgram lp = core::build_lyapunov_program(model.system, options.lyapunov);
    return std::move(lp.program);
  };
  return query;
}

}  // namespace soslock::sweep
