#include "pll/full_model.hpp"

#include <cassert>
#include <cmath>

#include "pll/models.hpp"

namespace soslock::pll {

FullPllModel::FullPllModel(const Params& params, double gain_scale)
    : constants_(derive_constants(params, resolve_gain_scale(params.order, gain_scale))),
      nv_(params.order == 3 ? 2 : 3),
      n_ref_(params.f_ref * constants_.t_scale) {
  // Guard against a degenerate reference rate (the event machinery needs
  // edges to arrive within the simulation horizon).
  if (n_ref_ <= 0.0) n_ref_ = 1.0;
}

namespace {

/// Loop-filter voltage derivatives with pump current sign s in {-1,0,1}.
void filter_rhs(const LoopConstants& k, int s, const std::vector<double>& v,
                std::vector<double>& dv) {
  if (k.order == 3) {
    dv[0] = k.a * (v[1] - v[0]);
    dv[1] = (v[0] - v[1]) + k.rho * static_cast<double>(s);
  } else {
    dv[0] = k.a * (v[1] - v[0]);
    dv[1] = (v[0] - v[1]) + k.beta * (v[2] - v[1]) + k.rho * static_cast<double>(s);
    dv[2] = k.gamma * (v[1] - v[2]);
  }
}

}  // namespace

FullSimResult FullPllModel::simulate(const std::vector<double>& v0, double e0,
                                     const FullSimOptions& options) const {
  assert(v0.size() == nv_);
  FullSimResult result;

  std::vector<double> v = v0;
  // Split the initial phase error across the two oscillator phases.
  double theta_ref = e0 > 0.0 ? std::fmod(e0, 1.0) : 0.0;
  double theta_vco = e0 < 0.0 ? std::fmod(-e0, 1.0) : 0.0;
  double e = e0;
  PfdState pfd = PfdState::Idle;
  int edges = 0;
  int slips = 0;
  double tau = 0.0;
  double hold_start = -1.0;
  int step_count = 0;

  const std::size_t ctl = nv_ - 1;  // VCO control voltage index (v2 or v3)
  std::vector<double> dv(nv_), k1(nv_), k2(nv_), k3(nv_), k4(nv_), tmp(nv_);

  auto record = [&]() {
    result.trace.push_back({tau, v, e, pfd, edges});
  };
  record();

  while (tau < options.tau_max) {
    const int s = static_cast<int>(pfd);
    // RK4 for the voltages (the pump state is constant within a step; edge
    // events are localized to step boundaries, adequate at dt << period).
    filter_rhs(constants_, s, v, k1);
    for (std::size_t i = 0; i < nv_; ++i) tmp[i] = v[i] + 0.5 * options.dt * k1[i];
    filter_rhs(constants_, s, tmp, k2);
    for (std::size_t i = 0; i < nv_; ++i) tmp[i] = v[i] + 0.5 * options.dt * k2[i];
    filter_rhs(constants_, s, tmp, k3);
    for (std::size_t i = 0; i < nv_; ++i) tmp[i] = v[i] + options.dt * k3[i];
    filter_rhs(constants_, s, tmp, k4);

    const double n_vco = n_ref_ + constants_.kappa * v[ctl];  // cycles / unit time

    for (std::size_t i = 0; i < nv_; ++i)
      v[i] += options.dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    const double e_prev = e;
    theta_ref += n_ref_ * options.dt;
    theta_vco += n_vco * options.dt;
    e += (n_ref_ - n_vco) * options.dt;
    tau += options.dt;

    if (std::floor(e_prev) != std::floor(e)) {
      // Crossing an integer boundary away from 0 is a cycle slip.
      if (std::fabs(e) > 1.0) ++slips;
    }

    // Edge events (order within one tiny step is immaterial).
    if (theta_ref >= 1.0) {
      theta_ref -= 1.0;
      ++edges;
      if (pfd == PfdState::Idle) {
        pfd = PfdState::Up;
      } else if (pfd == PfdState::Down) {
        pfd = PfdState::Idle;
      }
      // Up stays Up: no cycle-slip accumulation in the tri-state model.
    }
    if (theta_vco >= 1.0) {
      theta_vco -= 1.0;
      ++edges;
      if (pfd == PfdState::Idle) {
        pfd = PfdState::Down;
      } else if (pfd == PfdState::Up) {
        pfd = PfdState::Idle;
      }
    }

    // Lock detection with a hold window.
    if (std::fabs(e) < options.e_tol && std::fabs(v[ctl]) < options.v_tol) {
      if (hold_start < 0.0) hold_start = tau;
      if (tau - hold_start >= options.hold) {
        result.locked = true;
        result.lock_time = hold_start;
        record();
        break;
      }
    } else {
      hold_start = -1.0;
    }

    if (++step_count % options.record_stride == 0) record();
  }
  if (result.trace.back().tau != tau) record();
  result.cycle_slips = slips;
  return result;
}

}  // namespace soslock::pll
