#include "pll/params.hpp"

#include <cstdio>

namespace soslock::pll {

Params Params::paper_third_order() {
  Params p;
  p.order = 3;
  p.c1 = {1.98e-12, 2.2e-12};
  p.c2 = {6.1e-12, 6.4e-12};
  p.r = {7.8e3, 8.2e3};
  p.ip = {495e-6, 505e-6};
  p.kv = {198.0, 202.0};
  p.f_ref = 27e6;
  p.f_c = 27e9;  // with the /1000 divider folded into kv and f_c/N = 27 MHz
  return p;
}

Params Params::paper_fourth_order() {
  Params p;
  p.order = 4;
  p.c1 = {29e-12, 31e-12};
  p.c2 = {3.2e-12, 3.4e-12};
  p.c3 = {1.8e-12, 2.2e-12};
  p.r = {48e3, 52e3};
  p.r2 = {7e3, 9e3};
  p.ip = {395e-6, 405e-6};
  p.kv = {495.0, 502.0};
  p.f_ref = 5e6;
  p.f_c = 5e6;
  return p;
}

std::string Params::str() const {
  char buf[512];
  if (order == 3) {
    std::snprintf(buf, sizeof(buf),
                  "order-3 CP PLL: C1=[%.3g,%.3g]F C2=[%.3g,%.3g]F R=[%.3g,%.3g]Ohm "
                  "Ip=[%.3g,%.3g]A Kv=[%.4g,%.4g]MHz/V fref=%.3gHz",
                  c1.lo, c1.hi, c2.lo, c2.hi, r.lo, r.hi, ip.lo, ip.hi, kv.lo, kv.hi, f_ref);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "order-4 CP PLL: C1=[%.3g,%.3g]F C2=[%.3g,%.3g]F C3=[%.3g,%.3g]F "
                  "R=[%.3g,%.3g]Ohm R2=[%.3g,%.3g]Ohm Ip=[%.3g,%.3g]A Kv=[%.4g,%.4g]MHz/V "
                  "fref=%.3gHz",
                  c1.lo, c1.hi, c2.lo, c2.hi, c3.lo, c3.hi, r.lo, r.hi, r2.lo, r2.hi, ip.lo,
                  ip.hi, kv.lo, kv.hi, f_ref);
  }
  return buf;
}

LoopConstants derive_constants(const Params& p, double gain_scale) {
  LoopConstants k;
  k.order = p.order;
  const double r = p.r.mid();
  const double c2 = p.c2.mid();
  k.t_scale = r * c2;
  k.a = c2 / p.c1.mid();
  k.rho = p.ip.mid() * r;
  k.rho_lo = p.ip.lo * r;
  k.rho_hi = p.ip.hi * r;
  k.kappa = p.kv.mid() * 1e6 * k.t_scale * gain_scale;
  if (p.order == 4) {
    k.beta = r / p.r2.mid();
    k.gamma = k.t_scale / (p.r2.mid() * p.c3.mid());
  }
  return k;
}

}  // namespace soslock::pll
