#pragma once
// Faithful (non-reduced) behavioural CP PLL simulator: explicit reference and
// VCO phases in [0,1) with a tri-state PFD driven by rising-edge events,
// exactly the mechanism the paper's Eq. 2 abstracts. The reduced hybrid model
// is what gets *certified*; this model is what gets *simulated* to validate
// that the certified statements hold for the real event-driven circuit.
#include <functional>
#include <string>
#include <vector>

#include "pll/params.hpp"

namespace soslock::pll {

/// Tri-state phase-frequency detector state.
enum class PfdState { Down = -1, Idle = 0, Up = 1 };

struct FullTracePoint {
  double tau = 0.0;          // normalized time (units of R*C2)
  std::vector<double> v;     // loop filter voltages (shifted, v~ = v - v2*)
  double e = 0.0;            // accumulated phase error in cycles
  PfdState pfd = PfdState::Idle;
  int edges = 0;             // total number of PFD edge events so far
};

struct FullSimOptions {
  double dt = 5e-4;          // integration step (normalized time)
  double tau_max = 200.0;
  /// Lock detection: |e| < e_tol and |v_ctl| < v_tol persistently for
  /// `hold` normalized time units.
  double e_tol = 0.02;
  double v_tol = 0.05;
  double hold = 5.0;
  int record_stride = 16;
};

struct FullSimResult {
  std::vector<FullTracePoint> trace;
  bool locked = false;
  double lock_time = -1.0;   // normalized time when the hold window started
  int cycle_slips = 0;       // |e| crossed an integer boundary
};

class FullPllModel {
 public:
  /// `gain_scale` must match the reduced model for comparable trajectories
  /// (0 = the same auto default as pll::ModelOptions).
  explicit FullPllModel(const Params& params, double gain_scale = 0.0);

  const LoopConstants& constants() const { return constants_; }
  std::size_t num_voltages() const { return nv_; }

  /// Simulate from shifted voltages v0 (size = num_voltages) and initial
  /// phase error e0 (cycles; fractional part splits into the two phases).
  FullSimResult simulate(const std::vector<double>& v0, double e0,
                         const FullSimOptions& options = {}) const;

 private:
  LoopConstants constants_;
  std::size_t nv_;
  double n_ref_;  // reference phase rate in cycles per normalized time unit
};

}  // namespace soslock::pll
