#include "pll/models.hpp"

#include <cassert>
#include <cmath>

namespace soslock::pll {

using hybrid::HybridSystem;
using hybrid::Jump;
using hybrid::Mode;
using hybrid::SemialgebraicSet;
using poly::Polynomial;

namespace {

/// Flow field of the loop filter + VCO with pump term `pump` (a polynomial in
/// the shared variable space: 0, +u, -u, +rho*e, ...).
std::vector<Polynomial> loop_flow(const LoopConstants& k, std::size_t nvars,
                                  const Polynomial& pump) {
  std::vector<Polynomial> f;
  const auto var = [nvars](std::size_t i) { return Polynomial::variable(nvars, i); };
  if (k.order == 3) {
    // x = (v1, v2, e)
    f.push_back(k.a * (var(1) - var(0)));
    f.push_back((var(0) - var(1)) + pump);
    f.push_back(-k.kappa * var(1));
  } else {
    // x = (v1, v2, v3, e); VCO driven from the extra RC node v3.
    f.push_back(k.a * (var(1) - var(0)));
    f.push_back((var(0) - var(1)) + k.beta * (var(2) - var(1)) + pump);
    f.push_back(k.gamma * (var(1) - var(2)));
    f.push_back(-k.kappa * var(2));
  }
  return f;
}

SemialgebraicSet voltage_box(std::size_t nvars, std::size_t nv, double v_box) {
  SemialgebraicSet s(nvars);
  for (std::size_t i = 0; i < nv; ++i) s.add_interval(i, -v_box, v_box);
  return s;
}

}  // namespace

double resolve_gain_scale(int order, double gain_scale) {
  if (gain_scale > 0.0) return gain_scale;
  // Defaults chosen so (i) the averaged loop is Hurwitz-stable and (ii) the
  // event-driven loop respects Gardner's limit: the per-reference-period
  // phase correction kappa*rho*T_ref^2 stays below ~0.5, otherwise the
  // sampled bang-bang loop cycle-slips even though the continuized model is
  // stable. See DESIGN.md ("substitutions") for the unit-interpretation
  // discussion.
  return order == 3 ? 0.02 : 3e-4;
}

ReducedModel make_reduced(const Params& params, const ModelOptions& options) {
  ReducedModel model;
  model.order = params.order;
  model.constants =
      derive_constants(params, resolve_gain_scale(params.order, options.gain_scale));
  model.options = options;
  const LoopConstants& k = model.constants;

  const std::size_t nstates = params.order == 3 ? 3 : 4;
  const std::size_t nparams = options.uncertain_pump ? 1 : 0;
  const std::size_t nvars = nstates + nparams;
  const std::size_t nv = nstates - 1;  // number of voltage states
  model.e_index = nstates - 1;

  HybridSystem sys(nstates, nparams);
  {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < nv; ++i) names.push_back("v" + std::to_string(i + 1));
    names.push_back("e");
    if (nparams > 0) names.push_back("u_pump");
    sys.set_state_names(names);
  }

  const Polynomial zero(nvars);
  // Normalized uncertainty: pump magnitude rho_nom + rho_rad * u with
  // u in [-1, 1] (centering/scaling keeps the SDP data well conditioned).
  const double rho_rad = 0.5 * (k.rho_hi - k.rho_lo);
  const Polynomial pump_mag =
      options.uncertain_pump
          ? Polynomial::constant(nvars, k.rho) +
                rho_rad * Polynomial::variable(nvars, nstates)
          : Polynomial::constant(nvars, k.rho);

  // Mode domains: C_idle = {|e| <= e_box}, C_up = {0 <= e <= e_pump_max},
  // C_down = {-e_pump_max <= e <= 0}; all within the voltage box.
  const SemialgebraicSet vbox = voltage_box(nvars, nv, options.v_box);

  Mode idle;
  idle.name = "idle";
  idle.flow = loop_flow(k, nvars, zero);
  idle.domain = vbox;
  idle.domain.add_interval(model.e_index, -options.e_box, options.e_box);
  idle.contains_equilibrium = true;
  model.mode_idle = sys.add_mode(std::move(idle));

  Mode up;
  up.name = "up";
  up.flow = loop_flow(k, nvars, pump_mag);
  up.domain = vbox;
  up.domain.add_interval(model.e_index, 0.0, options.e_pump_max);
  model.mode_up = sys.add_mode(std::move(up));

  Mode down;
  down.name = "down";
  down.flow = loop_flow(k, nvars, -1.0 * pump_mag);
  down.domain = vbox;
  down.domain.add_interval(model.e_index, -options.e_pump_max, 0.0);
  model.mode_down = sys.add_mode(std::move(down));

  // Jumps (identity resets, Remark 1). Guards: the reference (resp. VCO)
  // wrap can occur anywhere with the corresponding sign of e, within one
  // period of lock.
  auto guard_on_e = [&](double lo, double hi) {
    SemialgebraicSet g = vbox;
    g.add_interval(model.e_index, lo, hi);
    return g;
  };
  sys.add_jump({model.mode_idle, model.mode_up, guard_on_e(0.0, options.e_box), {},
                "ref-wrap(idle->up)"});
  sys.add_jump({model.mode_up, model.mode_idle, guard_on_e(0.0, options.e_box), {},
                "vco-wrap(up->idle)"});
  sys.add_jump({model.mode_idle, model.mode_down, guard_on_e(-options.e_box, 0.0), {},
                "vco-wrap(idle->down)"});
  sys.add_jump({model.mode_down, model.mode_idle, guard_on_e(-options.e_box, 0.0), {},
                "ref-wrap(down->idle)"});

  if (options.uncertain_pump) {
    SemialgebraicSet pset(nvars);
    pset.add_interval(nstates, -1.0, 1.0);
    sys.set_parameter_set(std::move(pset));
    sys.set_nominal_parameters({0.0});
  }

  model.system = std::move(sys);
  assert(model.system.validate().empty());
  return model;
}

ReducedModel make_averaged(const Params& params, const ModelOptions& options) {
  ReducedModel model;
  model.order = params.order;
  model.constants =
      derive_constants(params, resolve_gain_scale(params.order, options.gain_scale));
  model.options = options;
  const LoopConstants& k = model.constants;

  const std::size_t nstates = params.order == 3 ? 3 : 4;
  const bool has_ripple = options.ripple_bound > 0.0;
  const std::size_t nparams =
      (options.uncertain_pump ? 1u : 0u) + (has_ripple ? 1u : 0u);
  const std::size_t nvars = nstates + nparams;
  const std::size_t nv = nstates - 1;
  model.e_index = nstates - 1;
  const std::size_t pump_var = nstates;                              // if uncertain
  const std::size_t ripple_var = nstates + (options.uncertain_pump ? 1 : 0);

  HybridSystem sys(nstates, nparams);
  {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < nv; ++i) names.push_back("v" + std::to_string(i + 1));
    names.push_back("e");
    if (options.uncertain_pump) names.push_back("u_pump");
    if (has_ripple) names.push_back("w");
    sys.set_state_names(names);
  }

  // Average pump current over one reference period: duty cycle |e| with the
  // sign of e, i.e. pump = rho * e (valid for |e| <= 1), plus the bounded
  // continuization ripple w. Uncertainties are normalized to [-1, 1].
  const Polynomial e_poly = Polynomial::variable(nvars, model.e_index);
  const double rho_rad = 0.5 * (k.rho_hi - k.rho_lo);
  Polynomial pump =
      options.uncertain_pump
          ? (Polynomial::constant(nvars, k.rho) +
             rho_rad * Polynomial::variable(nvars, pump_var)) *
                e_poly
          : k.rho * e_poly;
  if (has_ripple) pump += options.ripple_bound * Polynomial::variable(nvars, ripple_var);

  Mode avg;
  avg.name = "averaged";
  avg.flow = loop_flow(k, nvars, pump);
  avg.domain = voltage_box(nvars, nv, options.v_box);
  avg.domain.add_interval(model.e_index, -options.e_box, options.e_box);
  avg.contains_equilibrium = true;
  model.mode_idle = model.mode_up = model.mode_down = sys.add_mode(std::move(avg));

  if (nparams > 0) {
    SemialgebraicSet pset(nvars);
    linalg::Vector nominal;
    if (options.uncertain_pump) {
      pset.add_interval(pump_var, -1.0, 1.0);
      nominal.push_back(0.0);
    }
    if (has_ripple) {
      pset.add_interval(ripple_var, -1.0, 1.0);
      nominal.push_back(0.0);
    }
    sys.set_parameter_set(std::move(pset));
    sys.set_nominal_parameters(std::move(nominal));
  }

  model.system = std::move(sys);
  assert(model.system.validate().empty());
  return model;
}

ReducedModel make_averaged_vertices(const Params& params, const ModelOptions& options) {
  ModelOptions nominal = options;
  nominal.uncertain_pump = false;
  nominal.ripple_bound = 0.0;
  ReducedModel model = make_averaged(params, nominal);
  const LoopConstants& k = model.constants;
  const std::size_t nvars = model.system.nvars();
  const Polynomial e_poly = Polynomial::variable(nvars, model.e_index);

  // Rebuild as a two-mode system: one vertex of the Ip interval per mode.
  HybridSystem sys(model.system.nstates(), 0);
  sys.set_state_names(model.system.state_names());
  for (const double rho : {k.rho_lo, k.rho_hi}) {
    Mode m;
    m.name = rho == k.rho_lo ? "pump-lo" : "pump-hi";
    m.flow = loop_flow(k, nvars, rho * e_poly);
    m.domain = model.system.modes().front().domain;
    m.contains_equilibrium = true;
    sys.add_mode(std::move(m));
  }
  // The "switching" between vertices is arbitrary (the true Ip is fixed but
  // unknown): identity jumps over the shared domain in both directions.
  const hybrid::SemialgebraicSet guard = sys.modes().front().domain;
  sys.add_jump({0, 1, guard, {}, "vertex-lo->hi"});
  sys.add_jump({1, 0, guard, {}, "vertex-hi->lo"});
  model.system = std::move(sys);
  model.mode_idle = model.mode_up = model.mode_down = 0;
  assert(model.system.validate().empty());
  return model;
}

ClockTreeModel make_clock_tree(const Params& params, const ClockTreeOptions& options) {
  ClockTreeModel model;
  model.loops = options.loops;
  model.options = options;
  model.constants = derive_constants(params, resolve_gain_scale(3, options.gain_scale));
  const LoopConstants& k = model.constants;
  assert(options.loops >= 1);

  const std::size_t nstates = 1 + 2 * options.loops;
  const std::size_t nvars = nstates;  // no uncertain parameters
  const double c = options.coupling;
  const double per_loop = c / static_cast<double>(options.loops);

  HybridSystem sys(nstates, 0);
  {
    std::vector<std::string> names = {"s"};
    for (std::size_t i = 0; i < options.loops; ++i) {
      names.push_back("v" + std::to_string(i + 1));
      names.push_back("e" + std::to_string(i + 1));
    }
    sys.set_state_names(names);
  }

  // Rail: leaks to ground and averages the leaf filter nodes. Each leaf
  // filter node v_i relaxes, takes the duty-cycle-averaged pump rho*e_i, and
  // couples to the rail; each phase error e_i integrates -kappa*v_i. Leaves
  // talk to each other only through s unless neighbor_coupling adds the
  // banded crosstalk terms. Every flow row is affine, so each is built from
  // one coefficient vector instead of merged variable polynomials — the
  // shared-rail row used to be re-merged K times, which made K-in-the-
  // hundreds trees quadratically slow to even construct.
  Mode avg;
  avg.name = "clock-tree";
  std::vector<Polynomial> flow;
  flow.reserve(nstates);
  linalg::Vector lin(nstates, 0.0);
  lin[model.rail_index] = -options.rail_leak - c;
  for (std::size_t i = 0; i < options.loops; ++i) lin[model.v_index(i)] = per_loop;
  flow.push_back(Polynomial::affine(nvars, lin, 0.0));
  const double nc = options.neighbor_coupling;
  const std::size_t hops = nc != 0.0 ? options.neighbor_hops : 0;
  const auto same_cluster = [&options](std::size_t i, std::size_t j) {
    return options.cluster == 0 || i / options.cluster == j / options.cluster;
  };
  for (std::size_t i = 0; i < options.loops; ++i) {
    lin.assign(nstates, 0.0);
    lin[model.rail_index] = c;
    lin[model.e_index(i)] = k.rho;
    double self = -1.0 - c;
    for (std::size_t h = 1; h <= hops; ++h) {
      if (i >= h && same_cluster(i, i - h)) {
        lin[model.v_index(i - h)] += nc;
        self -= nc;
      }
      if (i + h < options.loops && same_cluster(i, i + h)) {
        lin[model.v_index(i + h)] += nc;
        self -= nc;
      }
    }
    lin[model.v_index(i)] = self;
    flow.push_back(Polynomial::affine(nvars, lin, 0.0));
    lin.assign(nstates, 0.0);
    lin[model.v_index(i)] = -k.kappa;
    flow.push_back(Polynomial::affine(nvars, lin, 0.0));
  }
  avg.flow = std::move(flow);

  SemialgebraicSet domain(nvars);
  domain.add_interval(model.rail_index, -options.v_box, options.v_box);
  for (std::size_t i = 0; i < options.loops; ++i) {
    domain.add_interval(model.v_index(i), -options.v_box, options.v_box);
    domain.add_interval(model.e_index(i), -options.e_box, options.e_box);
  }
  avg.domain = std::move(domain);
  avg.contains_equilibrium = true;
  sys.add_mode(std::move(avg));

  model.system = std::move(sys);
  assert(model.system.validate().empty());
  return model;
}

linalg::Matrix clock_tree_state_matrix(const LoopConstants& k,
                                       const ClockTreeOptions& options) {
  const std::size_t kk = options.loops;
  const std::size_t n = 1 + 2 * kk;
  const double c = options.coupling;
  const double per_loop = c / static_cast<double>(kk);
  const double nc = options.neighbor_coupling;
  const std::size_t hops = nc != 0.0 ? options.neighbor_hops : 0;
  const auto same_cluster = [&options](std::size_t i, std::size_t j) {
    return options.cluster == 0 || i / options.cluster == j / options.cluster;
  };
  linalg::Matrix a(n, n);
  a(0, 0) = -options.rail_leak - c;
  for (std::size_t i = 0; i < kk; ++i) {
    const std::size_t v = 1 + 2 * i, e = 2 + 2 * i;
    a(0, v) = per_loop;
    a(v, 0) = c;
    double self = -1.0 - c;
    for (std::size_t h = 1; h <= hops; ++h) {
      if (i >= h && same_cluster(i, i - h)) {
        a(v, 1 + 2 * (i - h)) += nc;
        self -= nc;
      }
      if (i + h < kk && same_cluster(i, i + h)) {
        a(v, 1 + 2 * (i + h)) += nc;
        self -= nc;
      }
    }
    a(v, v) = self;
    a(v, e) = k.rho;
    a(e, v) = -k.kappa;
  }
  return a;
}

sdp::Problem clock_tree_coupling_sdp(const LoopConstants& k,
                                     const ClockTreeOptions& options) {
  const linalg::Matrix a = clock_tree_state_matrix(k, options);
  const std::size_t n = a.rows();

  // PSD witness with the coupling pattern: diagonally dominant, off-diagonal
  // mass on the coupling edges only.
  linalg::Matrix xstar(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r + 1; c < n; ++c)
      if (a(r, c) != 0.0 || a(c, r) != 0.0) {
        const double v = 0.4 + 0.1 * static_cast<double>((r + c) % 3);
        xstar(r, c) = v;
        xstar(c, r) = v;
      }
  for (std::size_t r = 0; r < n; ++r) {
    double off = 0.0;
    for (std::size_t c = 0; c < n; ++c) off += r == c ? 0.0 : std::fabs(xstar(r, c));
    xstar(r, r) = 1.0 + off + 0.05 * static_cast<double>(r % 4);
  }

  sdp::Problem p;
  const std::size_t blk = p.add_block(n);
  p.set_block_objective(blk, linalg::Matrix::identity(n));
  // Clustered trees coarsen the measurement rows: instead of one row per
  // coupling edge (m grows with the g^2/2 crosstalk pairs of each
  // g-loop cluster, and the dense normal/Schur systems with m^2), the three
  // edge families — rail tap, crosstalk, leaf dynamics — each contribute ONE
  // aggregate observable row per cluster. The entry pattern (hence the
  // correlative-sparsity graph and the chordal cliques) is identical; only
  // the row space is coarser, which is what keeps the consensus-side normal
  // solve near-constant while the per-clique eigenwork scales cubically —
  // the regime the clique-parallel backends are built for.
  const std::size_t g = options.cluster;
  const std::size_t nclusters = g == 0 ? 0 : (options.loops + g - 1) / g;
  enum Family { kRail = 0, kCross = 1, kLeaf = 2 };
  const char* family_name[] = {"rail", "cross", "leaf"};
  std::vector<sdp::SparseSym> agg(3 * nclusters);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r + 1; c < n; ++c) {
      if (a(r, c) == 0.0 && a(c, r) == 0.0) continue;
      sdp::SparseSym coeff;
      coeff.add(r, r, 1.0);
      coeff.add(r, c, 0.5 + 0.1 * static_cast<double>((r + c) % 2));
      coeff.add(c, c, -0.3);
      if (g > 0) {
        // State layout [s, v_1, e_1, ...]: r < c, so r == 0 is the rail tap,
        // odd r/odd c is v-v crosstalk, and odd r/even c is a v_i-e_i pair.
        const Family fam = r == 0 ? kRail : (c % 2 == 1 ? kCross : kLeaf);
        const std::size_t cl = (c - 1) / 2 / g;
        sdp::SparseSym& bucket = agg[3 * cl + fam];
        for (const sdp::Triplet& t : coeff.entries) bucket.add(t.r, t.c, t.v);
        continue;
      }
      sdp::Row row;
      // Sparse <A, X*> directly: densifying each 3-entry coefficient into an
      // n x n scratch made assembly cubic in the tree size, which dominated
      // the solve itself from K ~ 64 up.
      row.rhs = coeff.dot(xstar);
      row.label = "edge." + std::to_string(r) + "." + std::to_string(c);
      row.blocks[blk] = std::move(coeff);
      p.add_row(std::move(row));
    }
  }
  for (std::size_t cl = 0; cl < nclusters; ++cl) {
    for (int fam = 0; fam < 3; ++fam) {
      sdp::SparseSym& coeff = agg[3 * cl + fam];
      if (coeff.empty()) continue;
      sdp::Row row;
      row.rhs = coeff.dot(xstar);
      row.label = std::string("cluster.") + std::to_string(cl) + "." + family_name[fam];
      row.blocks[blk] = std::move(coeff);
      p.add_row(std::move(row));
    }
  }
  return p;
}

linalg::Matrix averaged_state_matrix(const LoopConstants& k) {
  if (k.order == 3) {
    return linalg::Matrix::from_rows({{-k.a, k.a, 0.0},
                                      {1.0, -1.0, k.rho},
                                      {0.0, -k.kappa, 0.0}});
  }
  return linalg::Matrix::from_rows({{-k.a, k.a, 0.0, 0.0},
                                    {1.0, -(1.0 + k.beta), k.beta, k.rho},
                                    {0.0, k.gamma, -k.gamma, 0.0},
                                    {0.0, 0.0, -k.kappa, 0.0}});
}

}  // namespace soslock::pll
