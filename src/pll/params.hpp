#pragma once
// Charge-pump PLL circuit parameters (the paper's Table 1) and the derived
// nondimensional loop constants used by every model in this library.
#include <string>

namespace soslock::pll {

struct Interval {
  double lo = 0.0, hi = 0.0;
  double mid() const { return 0.5 * (lo + hi); }
  double radius() const { return 0.5 * (hi - lo); }
  bool contains(double v) const { return v >= lo && v <= hi; }
};

/// Raw circuit parameters in SI units. `kv` is the *effective* VCO gain seen
/// by the phase detector (Hz per volt on the feedback path; any divider is
/// folded in — the paper's Table 1 lists Kv without units, we interpret the
/// listed numbers as MHz/V, see DESIGN.md).
struct Params {
  int order = 3;          // 3 or 4
  Interval c1, c2, c3;    // farads (c3 used only for order 4)
  Interval r, r2;         // ohms   (r2 used only for order 4)
  Interval ip;            // amperes (charge pump current)
  Interval kv;            // MHz per volt (Table 1 numbers)
  double f_ref = 0.0;     // Hz, reference frequency
  double f_c = 0.0;       // Hz, VCO free-running frequency (feedback path)

  /// Table 1, third-order column.
  static Params paper_third_order();
  /// Table 1, fourth-order column.
  static Params paper_fourth_order();

  std::string str() const;
};

/// Nondimensional loop constants. Time unit T = R*C2 (nominal); voltages stay
/// in volts; phases in cycles (normalized by 2*pi as in the paper).
struct LoopConstants {
  double t_scale = 0.0;  // seconds per normalized time unit (R*C2)
  double a = 0.0;        // C2/C1          (v1 relaxation)
  double beta = 0.0;     // R/R2           (order 4 only, else 0)
  double gamma = 0.0;    // R*C2/(R2*C3)   (order 4 only, else 0)
  double rho = 0.0;      // Ip*R           (pump step, volts per unit time)
  double rho_lo = 0.0, rho_hi = 0.0;  // from the Ip interval
  double kappa = 0.0;    // Kv*T           (cycles per volt per unit time)
  int order = 3;
};

/// Derive nominal (midpoint) loop constants; `gain_scale` multiplies kappa
/// (units-interpretation knob, documented in DESIGN.md).
LoopConstants derive_constants(const Params& p, double gain_scale = 1.0);

}  // namespace soslock::pll
