#pragma once
// Reduced-coordinate hybrid models of the CP PLL (the paper's Eq. 2/3 after
// the Remark-1 change of variables), plus the averaged (continuized) variant.
//
// States (shifted so the lock point is the origin, time normalized by R*C2):
//   order 3:  x = (v1~, v2~, e)          e = (phi_ref - phi_vco)/2pi
//   order 4:  x = (v1~, v2~, v3~, e)
// Modes: idle (pump off), up (pump +Ip), down (pump -Ip); all jumps carry
// identity resets (Remark 1).
#include "hybrid/system.hpp"
#include "pll/params.hpp"

namespace soslock::pll {

struct ModelOptions {
  double v_box = 8.0;        // voltage box |v_i~| <= v_box (volts)
  double e_box = 1.0;        // idle-mode |e| bound (cycles; one period)
  double e_pump_max = 2.0;   // pump-mode outer |e| bound (no cycle slip)
  bool uncertain_pump = true;   // model the Ip interval as a parameter u0
  /// Averaged model only: bound on the continuization (ripple) disturbance w
  /// added to v2' (|w| <= ripple_bound, a second uncertain parameter). This
  /// soundly covers the gap between the instantaneous bang-bang pump and its
  /// duty-cycle average; 0 disables it.
  double ripple_bound = 0.0;
  /// Multiplies kappa. 0 = auto (0.02 for order 3, 3e-4 for order 4): the
  /// raw Table-1 MHz/V reading puts the loop bandwidth at/above f_ref
  /// (violating Gardner's limit, so the event-driven loop cycle-slips) and,
  /// for order 4, also above the extra RC pole (unstable even averaged). The
  /// paper does not print its 4th-order A matrix or Kv units; see DESIGN.md.
  double gain_scale = 0.0;
};

/// The effective gain scale after resolving the auto (0) default.
double resolve_gain_scale(int order, double gain_scale);

/// A built reduced model with its metadata.
struct ReducedModel {
  hybrid::HybridSystem system;
  std::size_t mode_idle = 0, mode_up = 1, mode_down = 2;
  LoopConstants constants;
  ModelOptions options;
  int order = 3;
  /// Index of the phase-error state e within the state vector.
  std::size_t e_index = 0;
};

/// Build the 3-mode reduced hybrid model (order taken from `params`).
ReducedModel make_reduced(const Params& params, const ModelOptions& options = {});

/// Averaged (continuized) single-mode model: the pump current is replaced by
/// its duty-cycle average Ip*e. Linear flow; used as the strictly
/// asymptotically stable companion model (see the DESIGN.md rigor note).
ReducedModel make_averaged(const Params& params, const ModelOptions& options = {});

/// Vertex-enumeration robust variant of the averaged model: instead of an
/// uncertain parameter boxed by the S-procedure, one mode per extreme pump
/// value {Ip_lo, Ip_hi} sharing the domain. A common certificate over both
/// modes is equivalent to interval robustness because the flow is affine in
/// Ip (ablation of the S-procedure parameter handling).
ReducedModel make_averaged_vertices(const Params& params, const ModelOptions& options = {});

/// The closed-loop averaged state matrix (for analysis and tests).
linalg::Matrix averaged_state_matrix(const LoopConstants& k);

}  // namespace soslock::pll
