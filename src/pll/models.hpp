#pragma once
// Reduced-coordinate hybrid models of the CP PLL (the paper's Eq. 2/3 after
// the Remark-1 change of variables), plus the averaged (continuized) variant.
//
// States (shifted so the lock point is the origin, time normalized by R*C2):
//   order 3:  x = (v1~, v2~, e)          e = (phi_ref - phi_vco)/2pi
//   order 4:  x = (v1~, v2~, v3~, e)
// Modes: idle (pump off), up (pump +Ip), down (pump -Ip); all jumps carry
// identity resets (Remark 1).
#include "hybrid/system.hpp"
#include "pll/params.hpp"
#include "sdp/problem.hpp"

namespace soslock::pll {

struct ModelOptions {
  double v_box = 8.0;        // voltage box |v_i~| <= v_box (volts)
  double e_box = 1.0;        // idle-mode |e| bound (cycles; one period)
  double e_pump_max = 2.0;   // pump-mode outer |e| bound (no cycle slip)
  bool uncertain_pump = true;   // model the Ip interval as a parameter u0
  /// Averaged model only: bound on the continuization (ripple) disturbance w
  /// added to v2' (|w| <= ripple_bound, a second uncertain parameter). This
  /// soundly covers the gap between the instantaneous bang-bang pump and its
  /// duty-cycle average; 0 disables it.
  double ripple_bound = 0.0;
  /// Multiplies kappa. 0 = auto (0.02 for order 3, 3e-4 for order 4): the
  /// raw Table-1 MHz/V reading puts the loop bandwidth at/above f_ref
  /// (violating Gardner's limit, so the event-driven loop cycle-slips) and,
  /// for order 4, also above the extra RC pole (unstable even averaged). The
  /// paper does not print its 4th-order A matrix or Kv units; see DESIGN.md.
  double gain_scale = 0.0;
};

/// The effective gain scale after resolving the auto (0) default.
double resolve_gain_scale(int order, double gain_scale);

/// A built reduced model with its metadata.
struct ReducedModel {
  hybrid::HybridSystem system;
  std::size_t mode_idle = 0, mode_up = 1, mode_down = 2;
  LoopConstants constants;
  ModelOptions options;
  int order = 3;
  /// Index of the phase-error state e within the state vector.
  std::size_t e_index = 0;
};

/// Build the 3-mode reduced hybrid model (order taken from `params`).
ReducedModel make_reduced(const Params& params, const ModelOptions& options = {});

/// Averaged (continuized) single-mode model: the pump current is replaced by
/// its duty-cycle average Ip*e. Linear flow; used as the strictly
/// asymptotically stable companion model (see the DESIGN.md rigor note).
ReducedModel make_averaged(const Params& params, const ModelOptions& options = {});

/// Vertex-enumeration robust variant of the averaged model: instead of an
/// uncertain parameter boxed by the S-procedure, one mode per extreme pump
/// value {Ip_lo, Ip_hi} sharing the domain. A common certificate over both
/// modes is equivalent to interval robustness because the flow is affine in
/// Ip (ablation of the S-procedure parameter handling).
ReducedModel make_averaged_vertices(const Params& params, const ModelOptions& options = {});

/// The closed-loop averaged state matrix (for analysis and tests).
linalg::Matrix averaged_state_matrix(const LoopConstants& k);

// --- multi-loop PLL cascade / clock tree -----------------------------------
// A clock-distribution tree: `loops` averaged pump-vertex loops, each a
// (v_i, e_i) filter+phase pair, all coupled through one shared distribution
// rail s and through nothing else. States: [s, v_1, e_1, ..., v_K, e_K].
// The flow couples s <-> v_i and v_i <-> e_i only, so the model is the first
// in-tree input whose Lyapunov correlative-sparsity graph is genuinely
// non-complete (ROADMAP "Sparse-model workloads"): a clique-structured
// certificate template splits the Gram blocks, and the coupling pattern
// drives the native decomposed-cone benches.
struct ClockTreeOptions {
  std::size_t loops = 3;
  double coupling = 0.3;    // leaf <-> rail coupling strength
  double rail_leak = 1.0;   // rail self-stabilization rate
  double v_box = 8.0;       // |s|, |v_i| <= v_box
  double e_box = 1.0;       // |e_i| <= e_box
  double gain_scale = 0.0;  // multiplies kappa; 0 = auto (order-3 default)
  /// Optional nearest-neighbor leaf <-> leaf filter coupling (crosstalk
  /// between adjacent distribution branches): v_i additionally relaxes
  /// toward v_{i +- h} for h = 1..neighbor_hops with strength
  /// neighbor_coupling each. 0 keeps the pure star topology. With it on,
  /// the aggregate sparsity is a banded chain plus the rail hub, so the
  /// chordal cliques grow to ~2*neighbor_hops+2 vertices — the knob the
  /// async-ADMM bench uses to make per-clique eigenwork dominate.
  double neighbor_coupling = 0.0;
  std::size_t neighbor_hops = 1;
  /// Confine the crosstalk to disjoint clusters of this many consecutive
  /// loops (0 = one unbroken chain). Leaves i and j couple only when they
  /// sit in the same cluster, so with neighbor_hops >= cluster - 1 each
  /// cluster's filter nodes form a complete subgraph whose only tie to the
  /// rest of the tree is the rail. That shape matters for the decomposed
  /// solvers: a chain's consecutive cliques share all but one vertex
  /// (separator size ~2*hops+1, overlap couplings quadratic in the clique
  /// size), while clusters share exactly the rail (one overlap entry per
  /// clique-tree edge) — large per-clique eigenwork, near-constant
  /// consensus cost, the regime where clique-parallel ADMM actually wins.
  std::size_t cluster = 0;
};

struct ClockTreeModel {
  hybrid::HybridSystem system;
  LoopConstants constants;
  ClockTreeOptions options;
  std::size_t loops = 0;
  std::size_t rail_index = 0;  // the shared rail s
  std::size_t v_index(std::size_t i) const { return 1 + 2 * i; }
  std::size_t e_index(std::size_t i) const { return 2 + 2 * i; }
};

/// Build the single-mode averaged clock-tree model (loop constants from the
/// third-order column of `params`). Flow rows are assembled from precomputed
/// affine coefficient vectors (the shared-rail row in particular is built
/// once, not re-merged per loop), so trees with K in the hundreds construct
/// in milliseconds — the scale the async-ADMM bench and examples run at.
ClockTreeModel make_clock_tree(const Params& params, const ClockTreeOptions& options = {});

/// Closed-loop clock-tree state matrix A (x' = A x). Its off-diagonal
/// pattern is the star-of-loops coupling graph; analysis, tests and the
/// directly-built coupling SDPs of the native-vs-seam benches key on it.
linalg::Matrix clock_tree_state_matrix(const LoopConstants& k,
                                       const ClockTreeOptions& options);

/// Feasible min-trace SDP whose aggregate sparsity IS the clock-tree
/// coupling graph: one PSD block over all states, one equality row per
/// coupling edge, rhs taken from a known diagonally-dominant PSD witness
/// with that pattern. This is the workload of the native-vs-seam
/// decomposed-cone tests and the bench gate: its chordal cliques are the
/// loop pairs, so the conversion genuinely fires (unlike SOS-compiled Gram
/// blocks, whose aggregate patterns are complete). With
/// ClockTreeOptions::cluster set, the per-edge rows of each coupling family
/// are coarsened into one aggregate observable row per cluster — same
/// sparsity pattern and cliques, much smaller row space — so clique
/// eigenwork can dominate the consensus-side normal solve (the async-ADMM
/// bench regime).
sdp::Problem clock_tree_coupling_sdp(const LoopConstants& k,
                                     const ClockTreeOptions& options);

}  // namespace soslock::pll
