#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "util/fault.hpp"
#include "util/thread_annotations.hpp"

namespace soslock::util {

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads) {
  if (threads_ == 0) threads_ = hardware_threads();
}

std::size_t ThreadPool::hardware_threads() {
  if (const char* env = std::getenv("SOSLOCK_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::run_all_indexed(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& task) const {
  if (count == 0) return;
  const std::size_t workers = std::min(threads_, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) task(0, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  Mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&](std::size_t worker_id) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(worker_id, i);
      } catch (...) {
        const MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(worker, t);
  worker(0);  // the calling thread participates
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::run_all(std::size_t count,
                         const std::function<void(std::size_t)>& task) const {
  run_all_indexed(count, [&task](std::size_t, std::size_t i) { task(i); });
}

std::size_t ThreadPool::run_all_until_failure(
    std::size_t count, const std::function<bool(std::size_t)>& task) const {
  std::atomic<bool> abort_rest{false};
  std::atomic<std::size_t> first_failed{count};
  run_all(count, [&](std::size_t i) {
    if (abort_rest.load(std::memory_order_relaxed)) return;
    if (task(i)) return;
    abort_rest.store(true, std::memory_order_relaxed);
    std::size_t prev = first_failed.load();
    while (i < prev && !first_failed.compare_exchange_weak(prev, i)) {
    }
  });
  return first_failed.load();
}

ResidentPool::ResidentPool(std::size_t count)
    : count_(count == 0 ? ThreadPool::hardware_threads() : count) {
  threads_.reserve(count_);
  dead_.assign(count_, 0);
  for (std::size_t id = 0; id < count_; ++id) {
    threads_.emplace_back([this, id] { thread_main(id); });
  }
}

ResidentPool::~ResidentPool() {
  {
    const MutexLock lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ResidentPool::start(std::function<void(std::size_t)> body) {
  {
    const MutexLock lock(mutex_);
    // Self-healing: reap and respawn any thread that died in an earlier
    // round, so a single thread death never shrinks the pool for the rest
    // of the process. The dead thread has already exited thread_main, so
    // the join below returns immediately; the replacement blocks on the
    // mutex until this dispatch is published and then claims it.
    for (std::size_t id = 0; id < count_; ++id) {
      if (!dead_[id]) continue;
      threads_[id].join();
      dead_[id] = 0;
      respawns_.fetch_add(1, std::memory_order_relaxed);
      threads_[id] = std::thread([this, id] { thread_main(id); });
    }
    body_ = std::move(body);
    ++generation_;
    running_ = count_;
    error_ = nullptr;
  }
  cv_.notify_all();
}

void ResidentPool::join() {
  std::exception_ptr err;
  {
    CondLock lock(mutex_);
    while (running_ != 0) lock.wait(cv_);
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ResidentPool::abandon_round(std::size_t id) {
  {
    const MutexLock lock(mutex_);
    dead_[id] = 1;
    --running_;
    if (!error_) error_ = std::make_exception_ptr(WorkerDeath(id));
  }
  cv_.notify_all();
}

void ResidentPool::thread_main(std::size_t id) {
  // A respawned thread starts at seen = 0 with generation_ already high, so
  // it immediately claims the round being dispatched — exactly the intent.
  std::uint64_t seen = 0;
  for (;;) {
    std::function<void(std::size_t)> body;
    {
      CondLock lock(mutex_);
      while (!shutdown_ && generation_ == seen) lock.wait(cv_);
      if (shutdown_) return;
      seen = generation_;
      body = body_;
    }
    // Injected thread death: exit thread_main outright without running the
    // body — the hard failure mode a worker crash would produce.
    SOSLOCK_FAULT_HOOK(fault_site::kPoolWorkerDeath, {
      abandon_round(id);
      return;
    });
    try {
      body(id);
    } catch (...) {
      const MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      const MutexLock lock(mutex_);
      --running_;
    }
    cv_.notify_all();
  }
}

}  // namespace soslock::util
