#include "util/chordal.hpp"

#include <algorithm>
#include <cassert>

namespace soslock::util {

std::size_t CliqueForest::max_clique_size() const {
  std::size_t mx = 0;
  for (const auto& c : cliques) mx = std::max(mx, c.size());
  return mx;
}

std::size_t CliqueForest::total_size() const {
  std::size_t total = 0;
  for (const auto& c : cliques) total += c.size();
  return total;
}

bool CliqueForest::covers(std::size_t n) const {
  std::vector<bool> seen(n, false);
  for (const auto& c : cliques)
    for (const std::size_t v : c)
      if (v < n) seen[v] = true;
  for (std::size_t v = 0; v < n; ++v)
    if (!seen[v]) return false;
  return true;
}

CliqueForest chordal_cliques(std::size_t n, const Adjacency& adj) {
  CliqueForest forest;
  if (n == 0) return forest;

  // Symmetrized working copy (diagonal cleared); fill-in is added here.
  std::vector<std::vector<bool>> g(n, std::vector<bool>(n, false));
  for (std::size_t r = 0; r < n && r < adj.size(); ++r) {
    for (std::size_t c = 0; c < n && c < adj[r].size(); ++c) {
      if (r != c && adj[r][c]) {
        g[r][c] = true;
        g[c][r] = true;
      }
    }
  }

  // Greedy minimum-degree elimination; each eliminated vertex records its
  // elimination clique {v} ∪ N(v) and completes N(v) (the fill-in). Ties
  // break on the lowest vertex index so the extension — and everything
  // derived from it, structure fingerprints included — is deterministic.
  std::vector<bool> eliminated(n, false);
  std::vector<std::vector<std::size_t>> candidates;
  candidates.reserve(n);
  for (std::size_t round = 0; round < n; ++round) {
    std::size_t best = n, best_deg = n + 1;
    for (std::size_t v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      std::size_t deg = 0;
      for (std::size_t u = 0; u < n; ++u)
        if (!eliminated[u] && g[v][u]) ++deg;
      if (deg < best_deg) {
        best = v;
        best_deg = deg;
      }
    }
    assert(best < n);
    std::vector<std::size_t> clique;
    clique.reserve(best_deg + 1);
    clique.push_back(best);
    for (std::size_t u = 0; u < n; ++u)
      if (!eliminated[u] && u != best && g[best][u]) clique.push_back(u);
    for (std::size_t a = 1; a < clique.size(); ++a) {
      for (std::size_t b = a + 1; b < clique.size(); ++b) {
        g[clique[a]][clique[b]] = true;
        g[clique[b]][clique[a]] = true;
      }
    }
    std::sort(clique.begin(), clique.end());
    candidates.push_back(std::move(clique));
    eliminated[best] = true;
  }

  // Keep the maximal candidates only (an elimination clique may be contained
  // in an earlier vertex's clique). Subset tests over membership bitmaps.
  std::vector<std::vector<bool>> member(candidates.size(), std::vector<bool>(n, false));
  for (std::size_t k = 0; k < candidates.size(); ++k)
    for (const std::size_t v : candidates[k]) member[k][v] = true;
  std::vector<std::vector<std::size_t>> maximal;
  std::vector<std::vector<bool>> maximal_member;
  // Larger cliques first so a containing clique is always kept before any of
  // its subsets is examined.
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return candidates[a].size() > candidates[b].size();
  });
  for (const std::size_t k : order) {
    bool contained = false;
    for (const auto& kept : maximal_member) {
      bool subset = true;
      for (const std::size_t v : candidates[k]) {
        if (!kept[v]) {
          subset = false;
          break;
        }
      }
      if (subset) {
        contained = true;
        break;
      }
    }
    if (!contained) {
      maximal.push_back(candidates[k]);
      maximal_member.push_back(member[k]);
    }
  }

  // Clique forest: Prim over the complete clique graph with weights
  // |C_i ∩ C_j|. For a chordal graph a maximum-weight spanning tree is a
  // junction tree, and Prim's emission order adds every clique attached to an
  // already-emitted one, so the emitted order is a forest preorder and the
  // attachment edge realizes the running-intersection property. Zero-weight
  // edges only bridge graph components (empty separators), which is harmless.
  const std::size_t nc = maximal.size();
  std::vector<bool> placed(nc, false);
  std::vector<std::size_t> out_index(nc, 0);
  forest.cliques.reserve(nc);
  forest.parent.reserve(nc);
  for (std::size_t emitted = 0; emitted < nc; ++emitted) {
    std::size_t best = nc, best_attach = nc;
    long best_weight = -1;
    for (std::size_t k = 0; k < nc; ++k) {
      if (placed[k]) continue;
      long weight = 0;
      std::size_t attach = nc;
      for (std::size_t j = 0; j < nc; ++j) {
        if (!placed[j]) continue;
        long inter = 0;
        for (const std::size_t v : maximal[k])
          if (maximal_member[j][v]) ++inter;
        if (attach == nc || inter > weight) {
          weight = inter;
          attach = j;
        }
      }
      if (best == nc || weight > best_weight) {
        best = k;
        best_weight = weight;
        best_attach = attach;
      }
    }
    placed[best] = true;
    out_index[best] = forest.cliques.size();
    forest.parent.push_back(best_attach == nc ? forest.cliques.size()
                                              : out_index[best_attach]);
    forest.cliques.push_back(maximal[best]);
  }
  return forest;
}

}  // namespace soslock::util
