#include "util/csv.hpp"

#include <cstdio>
#include <fstream>

#include "util/log.hpp"

namespace soslock::util {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::add_row(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  char buf[64];
  for (double v : row) {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    cells.emplace_back(buf);
  }
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(const std::vector<std::string>& row) { rows_.push_back(row); }

std::string CsvWriter::str() const {
  std::string out;
  auto join = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ',';
      out += cells[i];
    }
    out += '\n';
  };
  join(header_);
  for (const auto& row : rows_) join(row);
  return out;
}

bool CsvWriter::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    log_warn("CsvWriter: cannot open ", path);
    return false;
  }
  os << str();
  return static_cast<bool>(os);
}

}  // namespace soslock::util
