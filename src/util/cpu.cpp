#include "util/cpu.hpp"

#include <cstdlib>

#include "util/log.hpp"

namespace soslock::util {

const char* isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::Scalar: return "scalar";
    case SimdIsa::Neon: return "neon";
    case SimdIsa::Avx2: return "avx2";
    case SimdIsa::Avx512: return "avx512";
  }
  return "scalar";
}

bool parse_isa(const std::string& token, SimdIsa& out) {
  if (token == "scalar") {
    out = SimdIsa::Scalar;
  } else if (token == "neon") {
    out = SimdIsa::Neon;
  } else if (token == "avx2") {
    out = SimdIsa::Avx2;
  } else if (token == "avx512") {
    out = SimdIsa::Avx512;
  } else {
    return false;
  }
  return true;
}

bool cpu_supports(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::Scalar:
      return true;
    case SimdIsa::Neon:
#if defined(__aarch64__) || defined(__ARM_NEON)
      return true;
#else
      return false;
#endif
    case SimdIsa::Avx2:
#if defined(__x86_64__) || defined(_M_X64)
      // The builtins consult cpuid *and* xgetbv, so an OS that does not
      // save the wide registers correctly reports unsupported.
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case SimdIsa::Avx512:
#if defined(__x86_64__) || defined(_M_X64)
      // F + VL + DQ is what the kernels emit (512-bit FMA plus the 256/128
      // tails and double-precision conversions).
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
  }
  return false;
}

SimdIsa detected_isa() {
  for (SimdIsa isa : {SimdIsa::Avx512, SimdIsa::Avx2, SimdIsa::Neon}) {
    if (cpu_supports(isa)) return isa;
  }
  return SimdIsa::Scalar;
}

bool simd_override(SimdIsa& out) {
  const char* env = std::getenv("SOSLOCK_SIMD");
  if (env == nullptr || env[0] == '\0') return false;
  if (!parse_isa(env, out)) {
    log_warn("SOSLOCK_SIMD=", env, " not recognized (scalar|avx2|avx512|neon); ignoring");
    return false;
  }
  return true;
}

}  // namespace soslock::util
