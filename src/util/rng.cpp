#include "util/rng.hpp"

#include <cmath>

namespace soslock::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

std::size_t Rng::index(std::size_t n) {
  return n == 0 ? 0 : static_cast<std::size_t>(next_u64() % n);
}

std::vector<double> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = uniform(lo, hi);
  return v;
}

}  // namespace soslock::util
