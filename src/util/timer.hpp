#pragma once
// Wall-clock timing helpers used by the pipeline to regenerate the paper's
// Table 2 (per-step verification times).
#include <chrono>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace soslock::util {

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named timing entries (one row per verification step).
/// Accumulation is thread-safe so concurrent batch solves can report into
/// one shared table; readers get snapshots.
class TimingTable {
 public:
  struct Entry {
    std::string name;
    double seconds = 0.0;
    std::string note;
  };

  TimingTable() = default;
  TimingTable(const TimingTable& other) : entries_(other.entries()) {}
  TimingTable& operator=(const TimingTable& other);

  void add(std::string name, double seconds, std::string note = {});
  /// Snapshot of the rows added so far.
  std::vector<Entry> entries() const;
  double total_seconds() const;
  /// Render as an aligned text table.
  std::string str(const std::string& title) const;

 private:
  mutable Mutex mutex_;
  std::vector<Entry> entries_ SOSLOCK_GUARDED_BY(mutex_);
};

}  // namespace soslock::util
