#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace soslock::util {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("SOSLOCK_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "trace") == 0) return LogLevel::Trace;
  return LogLevel::Warn;
}

std::atomic<LogLevel> g_level{level_from_env()};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Trace: return "TRACE";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  // One fprintf call per line: atomic enough for interleaved worker output.
  std::fprintf(stderr, "[soslock %s] %s\n", tag(level), msg.c_str());
}

}  // namespace soslock::util
