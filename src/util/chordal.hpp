#pragma once
// Chordal-graph machinery shared by the sparsity exploits of the poly and sdp
// layers: greedy minimum-degree chordal extension of an undirected graph and
// the maximal cliques of that extension, arranged as a clique forest whose
// preorder satisfies the running-intersection property (RIP),
//
//   C_k ∩ (C_1 ∪ ... ∪ C_{k-1})  ⊆  C_parent(k)   for every k > 0,
//
// which is exactly what both consumers need: the correlative-sparsity Gram
// split (poly/sparsity) and the clique-tree PSD conversion/completion of
// large SDP blocks (sdp/chordal).
#include <cstddef>
#include <vector>

namespace soslock::util {

/// Symmetric adjacency on n vertices (diagonal ignored).
using Adjacency = std::vector<std::vector<bool>>;

/// Maximal cliques of a chordal extension of a graph, in an order whose
/// parents realize the running-intersection property.
struct CliqueForest {
  /// Maximal cliques (each sorted ascending), preordered along the forest so
  /// that cliques[k] ∩ (cliques[0] ∪ .. ∪ cliques[k-1]) ⊆ cliques[parent[k]].
  std::vector<std::vector<std::size_t>> cliques;
  /// Parent clique index in the forest; parent[k] == k for roots.
  std::vector<std::size_t> parent;

  std::size_t max_clique_size() const;
  /// Sum of clique sizes (total decomposed dimension; >= n on overlaps).
  std::size_t total_size() const;
  /// Every vertex of [0, n) appears in at least one clique (isolated vertices
  /// become singleton cliques), so this is a cover of the vertex set.
  bool covers(std::size_t n) const;
};

/// Chordal extension of `adj` by greedy minimum-degree elimination (fill-in
/// added as vertices are eliminated), then the maximal cliques of the
/// extension in a RIP preorder. Isolated vertices yield singleton cliques; a
/// complete graph yields the single clique {0..n-1}.
CliqueForest chordal_cliques(std::size_t n, const Adjacency& adj);

}  // namespace soslock::util
