#pragma once
// Deterministic random number generation for tests, Monte-Carlo validation
// and workload generators. Wraps a fixed-algorithm engine so results are
// reproducible across standard library implementations.
#include <cstdint>
#include <vector>

namespace soslock::util {

/// xoshiro256** — small, fast, reproducible PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();
  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box-Muller.
  double normal();
  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n);
  /// Vector of uniforms in [lo, hi).
  std::vector<double> uniform_vector(std::size_t n, double lo, double hi);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace soslock::util
