#include "util/fault.hpp"

#include <map>
#include <utility>

#include "util/thread_annotations.hpp"

namespace soslock::util {
namespace {

struct SiteState {
  bool armed = false;
  int fire_after = 0;  // traversals to skip before the first fire
  int remaining = 0;   // fires left once due
  int traversals = 0;
  int fired = 0;
  std::function<void()> callback;  // replaces the default effect when set
};

struct Registry {
  Mutex mutex;
  std::map<std::string, SiteState> sites SOSLOCK_GUARDED_BY(mutex);
};

// Leaked singleton: sites can fire from detached-ish worker threads during
// static destruction, so the registry must outlive everything.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

}  // namespace

void FaultInjector::arm(const std::string& site, int fire_after, int times) {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  SiteState& st = reg.sites[site];
  st = SiteState{};
  st.armed = true;
  st.fire_after = fire_after;
  st.remaining = times;
}

void FaultInjector::arm_callback(const std::string& site,
                                 std::function<void()> callback) {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  SiteState& st = reg.sites[site];
  st = SiteState{};
  st.armed = true;
  st.remaining = 1;
  st.callback = std::move(callback);
}

void FaultInjector::disarm(const std::string& site) {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  const auto it = reg.sites.find(site);
  if (it != reg.sites.end()) it->second.armed = false;
}

void FaultInjector::reset() {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  reg.sites.clear();
}

int FaultInjector::traversals(const std::string& site) {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.traversals;
}

int FaultInjector::fired(const std::string& site) {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fired;
}

bool FaultInjector::should_fire(const char* site) {
  std::function<void()> callback;
  {
    Registry& reg = registry();
    const MutexLock lock(reg.mutex);
    const auto it = reg.sites.find(site);
    if (it == reg.sites.end()) return false;
    SiteState& st = it->second;
    const int seen = st.traversals++;
    if (!st.armed || st.remaining <= 0 || seen < st.fire_after) return false;
    --st.remaining;
    ++st.fired;
    if (!st.callback) return true;
    callback = st.callback;
  }
  // Run test callbacks outside the registry lock: they may re-enter the
  // injector or take solver locks of their own.
  callback();
  return false;
}

std::vector<std::string> FaultInjector::known_sites() {
  return {fault_site::kIpmFactorization,  fault_site::kIpmFp32Factor,
          fault_site::kIterateNan,        fault_site::kPoolWorkerDeath,
          fault_site::kAdmmWorkerExit,    fault_site::kAdmmMailboxCorrupt,
          fault_site::kLoweringPass,      fault_site::kCacheEvict};
}

}  // namespace soslock::util
