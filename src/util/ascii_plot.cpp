#include "util/ascii_plot.hpp"

#include <cmath>
#include <cstdio>

namespace soslock::util {

AsciiPlot::AsciiPlot(double xmin, double xmax, double ymin, double ymax, int cols, int rows)
    : xmin_(xmin), xmax_(xmax), ymin_(ymin), ymax_(ymax), cols_(cols), rows_(rows),
      grid_(static_cast<std::size_t>(rows), std::string(static_cast<std::size_t>(cols), ' ')) {}

void AsciiPlot::add_point(double x, double y, char glyph) {
  if (!(x >= xmin_ && x <= xmax_ && y >= ymin_ && y <= ymax_)) return;
  const int col = static_cast<int>(std::lround((x - xmin_) / (xmax_ - xmin_) * (cols_ - 1)));
  const int row = static_cast<int>(std::lround((ymax_ - y) / (ymax_ - ymin_) * (rows_ - 1)));
  if (col < 0 || col >= cols_ || row < 0 || row >= rows_) return;
  grid_[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = glyph;
}

void AsciiPlot::add(const Series& series) {
  legend_.emplace_back(series.glyph, series.name);
  for (const auto& [x, y] : series.points) add_point(x, y, series.glyph);
}

std::string AsciiPlot::str(const std::string& title, const std::string& xlabel,
                           const std::string& ylabel) const {
  std::string out = title + "   (y: " + ylabel + ", x: " + xlabel + ")\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%9.3f ", ymax_);
  out += std::string(buf) + "+" + std::string(static_cast<std::size_t>(cols_), '-') + "+\n";
  for (int r = 0; r < rows_; ++r) {
    out += "          |" + grid_[static_cast<std::size_t>(r)] + "|\n";
  }
  std::snprintf(buf, sizeof(buf), "%9.3f ", ymin_);
  out += std::string(buf) + "+" + std::string(static_cast<std::size_t>(cols_), '-') + "+\n";
  std::snprintf(buf, sizeof(buf), "          %-10.3f", xmin_);
  out += std::string(buf);
  std::snprintf(buf, sizeof(buf), "%*.3f\n", cols_ - 10, xmax_);
  out += std::string(buf);
  for (const auto& [glyph, name] : legend_) {
    out += "    ";
    out += glyph;
    out += "  " + name + "\n";
  }
  return out;
}

}  // namespace soslock::util
