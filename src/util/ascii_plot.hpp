#pragma once
// Terminal scatter/contour plotting used by the figure-reproduction benches:
// the paper's Figures 2-5 are 2-D projections of level sets; we render the
// same projections as ASCII plots plus CSV point dumps.
#include <string>
#include <vector>

namespace soslock::util {

/// One named point series (e.g. one advection iterate's boundary).
struct Series {
  std::string name;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;
};

/// Fixed-extent ASCII scatter plot.
class AsciiPlot {
 public:
  AsciiPlot(double xmin, double xmax, double ymin, double ymax, int cols = 72, int rows = 28);

  void add(const Series& series);
  void add_point(double x, double y, char glyph);
  /// Render with axis labels; `xlabel`/`ylabel` appear in the frame.
  std::string str(const std::string& title, const std::string& xlabel,
                  const std::string& ylabel) const;

 private:
  double xmin_, xmax_, ymin_, ymax_;
  int cols_, rows_;
  std::vector<std::string> grid_;
  std::vector<std::pair<char, std::string>> legend_;
};

}  // namespace soslock::util
