#pragma once
// Shared fork-join worker pool used by the batched SOS driver
// (sos::BatchSolver) and by the SDP backends' intra-solve parallelism (IPM
// Schur assembly, ADMM per-block PSD projections). Living in util keeps the
// layering clean: sdp must not depend on sos just to borrow its threads.
//
// Design notes:
//  * Fork-join per call, not a persistent task queue: every run_all spawns
//    its workers and joins them before returning. That makes nested
//    submission trivially safe (an inner run_all owns its own threads; no
//    shared queue to deadlock on) at the cost of thread-spawn overhead that
//    is negligible next to the O(n^3) work items this pool carries.
//  * A pool capped at 1 thread (or a single-item call) runs inline on the
//    caller's thread — zero overhead, exact sequential semantics. This is
//    the deterministic baseline the multi-threaded paths are tested against.
//  * Work is claimed via an atomic counter (dynamic load balancing); the
//    first task exception is captured and rethrown on the calling thread
//    after the join.
#include <cstddef>
#include <functional>

namespace soslock::util {

class ThreadPool {
 public:
  /// `threads` = worker cap; 0 resolves to hardware_threads().
  explicit ThreadPool(std::size_t threads = 0);

  /// Worker cap after resolving 0 to the hardware count.
  std::size_t threads() const { return threads_; }

  /// std::thread::hardware_concurrency() with the 0-means-unknown case
  /// resolved to 1. Overridable via the SOSLOCK_THREADS environment variable
  /// (a positive integer) — the sanitizer CI pins the fan-out to 4 with it
  /// so TSan sees the parallel paths regardless of runner core count.
  static std::size_t hardware_threads();

  /// Run `count` independent tasks, task(i) for i in [0, count); blocks until
  /// all complete. Tasks run on up to threads() workers (inline when the cap
  /// or count is 1). The first task exception, if any, is rethrown here.
  void run_all(std::size_t count, const std::function<void(std::size_t)>& task) const;

  /// run_all with the worker id (in [0, workers)) passed alongside the task
  /// index, so tasks can address per-worker scratch buffers without locking.
  /// The inline path uses worker id 0.
  void run_all_indexed(
      std::size_t count,
      const std::function<void(std::size_t worker, std::size_t index)>& task) const;

  /// run_all with early abort: a task returning false skips every task that
  /// has not yet started (in-flight tasks complete), keeping failure paths as
  /// cheap as a sequential early exit. Returns the lowest failed index, or
  /// `count` when every executed task succeeded.
  std::size_t run_all_until_failure(std::size_t count,
                                    const std::function<bool(std::size_t)>& task) const;

 private:
  std::size_t threads_;
};

}  // namespace soslock::util
