#pragma once
// Shared fork-join worker pool used by the batched SOS driver
// (sos::BatchSolver) and by the SDP backends' intra-solve parallelism (IPM
// Schur assembly, ADMM per-block PSD projections). Living in util keeps the
// layering clean: sdp must not depend on sos just to borrow its threads.
//
// Design notes:
//  * Fork-join per call, not a persistent task queue: every run_all spawns
//    its workers and joins them before returning. That makes nested
//    submission trivially safe (an inner run_all owns its own threads; no
//    shared queue to deadlock on) at the cost of thread-spawn overhead that
//    is negligible next to the O(n^3) work items this pool carries.
//  * A pool capped at 1 thread (or a single-item call) runs inline on the
//    caller's thread — zero overhead, exact sequential semantics. This is
//    the deterministic baseline the multi-threaded paths are tested against.
//  * Work is claimed via an atomic counter (dynamic load balancing); the
//    first task exception is captured and rethrown on the calling thread
//    after the join.
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace soslock::util {

/// Typed error surfaced by ResidentPool::join() when a resident thread died
/// (exited thread_main) instead of returning from its dispatched body — the
/// caller gets a classifiable failure, never a hang on a round counter that
/// will not reach zero. The pool respawns the thread on the next start().
class WorkerDeath : public std::runtime_error {
 public:
  explicit WorkerDeath(std::size_t worker)
      : std::runtime_error("resident worker " + std::to_string(worker) +
                           " died without completing its round"),
        worker_(worker) {}
  std::size_t worker() const { return worker_; }

 private:
  std::size_t worker_;
};

class ThreadPool {
 public:
  /// `threads` = worker cap; 0 resolves to hardware_threads().
  explicit ThreadPool(std::size_t threads = 0);

  /// Worker cap after resolving 0 to the hardware count.
  std::size_t threads() const { return threads_; }

  /// std::thread::hardware_concurrency() with the 0-means-unknown case
  /// resolved to 1. Overridable via the SOSLOCK_THREADS environment variable
  /// (a positive integer) — the sanitizer CI pins the fan-out to 4 with it
  /// so TSan sees the parallel paths regardless of runner core count.
  static std::size_t hardware_threads();

  /// Run `count` independent tasks, task(i) for i in [0, count); blocks until
  /// all complete. Tasks run on up to threads() workers (inline when the cap
  /// or count is 1). The first task exception, if any, is rethrown here.
  void run_all(std::size_t count, const std::function<void(std::size_t)>& task) const;

  /// run_all with the worker id (in [0, workers)) passed alongside the task
  /// index, so tasks can address per-worker scratch buffers without locking.
  /// The inline path uses worker id 0.
  void run_all_indexed(
      std::size_t count,
      const std::function<void(std::size_t worker, std::size_t index)>& task) const;

  /// run_all with early abort: a task returning false skips every task that
  /// has not yet started (in-flight tasks complete), keeping failure paths as
  /// cheap as a sequential early exit. Returns the lowest failed index, or
  /// `count` when every executed task succeeded.
  std::size_t run_all_until_failure(std::size_t count,
                                    const std::function<bool(std::size_t)>& task) const;

 private:
  std::size_t threads_;
};

/// Persistent resident worker pool for long-lived cooperating loops — the
/// asynchronous clique-parallel ADMM driver parks one clique-subtree worker
/// on each thread for the whole solve. Unlike the fork-join ThreadPool above
/// (which spawns and joins per call), the threads are created once in the
/// constructor and re-dispatched across start()/join() rounds, so a solve
/// with thousands of iterations pays the thread-spawn cost once instead of
/// per iteration; the worker bodies coordinate among themselves (condition
/// variables, mailboxes) rather than through a per-call barrier.
class ResidentPool {
 public:
  /// Spawns `count` resident threads immediately; 0 resolves to
  /// ThreadPool::hardware_threads().
  explicit ResidentPool(std::size_t count);
  ~ResidentPool();

  ResidentPool(const ResidentPool&) = delete;
  ResidentPool& operator=(const ResidentPool&) = delete;

  std::size_t count() const { return count_; }

  /// Dispatch body(worker_id) on every resident thread, worker_id in
  /// [0, count()). Requires the previous round (if any) to have been
  /// join()ed. Returns immediately; the body runs until it returns on its
  /// own — long-lived loops arrange their own shutdown signal before join().
  void start(std::function<void(std::size_t)> body);

  /// Block until every worker has returned from the current body, then
  /// rethrow the first worker exception, if any. A thread that died outright
  /// still decrements the round counter on its way out, so join() terminates
  /// and rethrows a typed WorkerDeath instead of waiting forever.
  void join();

  /// Resident threads respawned after a death, over the pool's lifetime.
  std::size_t respawns() const { return respawns_.load(std::memory_order_relaxed); }

 private:
  void thread_main(std::size_t id);
  /// Account for thread `id` exiting mid-round (fault-injected or a real
  /// crash-to-exit path): mark it dead, release the round, surface a typed
  /// WorkerDeath to join().
  void abandon_round(std::size_t id);

  std::size_t count_;
  std::vector<std::thread> threads_;
  Mutex mutex_;
  std::condition_variable_any cv_;
  std::function<void(std::size_t)> body_ SOSLOCK_GUARDED_BY(mutex_);
  std::uint64_t generation_ SOSLOCK_GUARDED_BY(mutex_) = 0;
  std::size_t running_ SOSLOCK_GUARDED_BY(mutex_) = 0;
  bool shutdown_ SOSLOCK_GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ SOSLOCK_GUARDED_BY(mutex_);
  std::vector<char> dead_ SOSLOCK_GUARDED_BY(mutex_);
  std::atomic<std::size_t> respawns_{0};
};

}  // namespace soslock::util
