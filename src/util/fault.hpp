#pragma once
// Compile-time-gated fault-injection registry. Hot paths declare named
// injection sites with the SOSLOCK_FAULT_POINT / SOSLOCK_FAULT_HOOK macros;
// tests arm a site by id + fire-count and the site fires deterministically
// on the chosen traversal. Without SOSLOCK_FAULTS (the Release default) the
// macros compile to ((void)0), exactly like the SDP_VERIFY pass hooks, so
// the framework costs nothing where the bench gates run.
//
// Adding a site: pick a stable id in fault_site (also add it to
// known_sites() in fault.cpp and the README fault table), then drop a macro
// at the point of failure. SOSLOCK_FAULT_POINT throws FaultInjectedError;
// SOSLOCK_FAULT_HOOK runs a statement in the enclosing scope instead, for
// faults that must corrupt local state (poison an iterate, kill a thread,
// return early) rather than throw.
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace soslock::util {

namespace fault_site {
// Stable site ids. Keep in sync with known_sites() and the README table.
inline constexpr const char* kIpmFactorization = "sdp.ipm.factorization";
inline constexpr const char* kIpmFp32Factor = "sdp.ipm.fp32-factorization";
inline constexpr const char* kIterateNan = "sdp.iterate-nan";
inline constexpr const char* kPoolWorkerDeath = "util.pool.worker-death";
inline constexpr const char* kAdmmWorkerExit = "sdp.admm.worker-silent-exit";
inline constexpr const char* kAdmmMailboxCorrupt = "sdp.admm.mailbox-corrupt";
inline constexpr const char* kLoweringPass = "sdp.lowering.pass";
inline constexpr const char* kCacheEvict = "sdp.structure-cache.evict";
}  // namespace fault_site

/// Thrown by a fired SOSLOCK_FAULT_POINT site.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Process-wide registry of armed fault sites. All entry points are
/// thread-safe: sites fire from worker threads while tests arm/inspect from
/// the main thread, and concurrent traversals of one site serialize so a
/// "fire once" arm fires exactly once even under a racing pool.
class FaultInjector {
 public:
  /// Arm `site`: skip the first `fire_after` traversals after arming, then
  /// fire on the next `times` traversals. Re-arming resets the counters.
  static void arm(const std::string& site, int fire_after = 0, int times = 1);
  /// Replace the default effect of `site` while armed: instead of
  /// firing (throw / run the hook statement), a due traversal invokes
  /// `callback` and reports "not fired" to the site. This turns any site
  /// into a deterministic test hook — e.g. flip a cancellation flag
  /// mid-lowering-pass without aborting the pass.
  static void arm_callback(const std::string& site, std::function<void()> callback);
  static void disarm(const std::string& site);
  /// Disarm every site and zero all counters (test fixture teardown).
  static void reset();
  /// Traversals of `site` since it was last armed (0 if never armed).
  static int traversals(const std::string& site);
  /// Times `site` fired (or ran its callback) since it was last armed.
  static int fired(const std::string& site);
  /// Decide-and-count, called by the macros on every traversal of an armed
  /// site. Returns true when the site is due and has no callback.
  static bool should_fire(const char* site);
  /// Every registered site id (the README fault table; tests sync on it).
  static std::vector<std::string> known_sites();
};

}  // namespace soslock::util

#if defined(SOSLOCK_FAULTS)
#define SOSLOCK_FAULT_POINT(site)                                  \
  do {                                                             \
    if (::soslock::util::FaultInjector::should_fire(site)) {       \
      throw ::soslock::util::FaultInjectedError(site);             \
    }                                                              \
  } while (0)
#define SOSLOCK_FAULT_HOOK(site, stmt)                             \
  do {                                                             \
    if (::soslock::util::FaultInjector::should_fire(site)) {       \
      stmt;                                                        \
    }                                                              \
  } while (0)
#else
#define SOSLOCK_FAULT_POINT(site) ((void)0)
#define SOSLOCK_FAULT_HOOK(site, stmt) ((void)0)
#endif
