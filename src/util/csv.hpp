#pragma once
// Tiny CSV writer: the figure benches dump the level-set boundary samples so
// the paper's plots can be regenerated with any external plotting tool.
#include <string>
#include <vector>

namespace soslock::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<double>& row);
  void add_row(const std::vector<std::string>& row);
  /// Serialize the whole table.
  std::string str() const;
  /// Write to `path`; returns false (and logs) on I/O failure.
  bool write(const std::string& path) const;
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace soslock::util
