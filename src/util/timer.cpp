#include "util/timer.hpp"

#include <cstdio>

namespace soslock::util {

double TimingTable::total_seconds() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.seconds;
  return total;
}

std::string TimingTable::str(const std::string& title) const {
  std::string out = title + "\n";
  std::size_t width = 24;
  for (const Entry& e : entries_) width = std::max(width, e.name.size() + 2);
  char line[256];
  for (const Entry& e : entries_) {
    std::snprintf(line, sizeof(line), "  %-*s %10.3f s   %s\n", static_cast<int>(width),
                  e.name.c_str(), e.seconds, e.note.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-*s %10.3f s\n", static_cast<int>(width), "TOTAL",
                total_seconds());
  out += line;
  return out;
}

}  // namespace soslock::util
