#include "util/timer.hpp"

#include <cstdio>

namespace soslock::util {

TimingTable& TimingTable::operator=(const TimingTable& other) {
  if (this == &other) return *this;
  std::vector<Entry> snapshot = other.entries();
  const MutexLock lock(mutex_);
  entries_ = std::move(snapshot);
  return *this;
}

void TimingTable::add(std::string name, double seconds, std::string note) {
  const MutexLock lock(mutex_);
  entries_.push_back({std::move(name), seconds, std::move(note)});
}

std::vector<TimingTable::Entry> TimingTable::entries() const {
  const MutexLock lock(mutex_);
  return entries_;
}

double TimingTable::total_seconds() const {
  const MutexLock lock(mutex_);
  double total = 0.0;
  for (const Entry& e : entries_) total += e.seconds;
  return total;
}

std::string TimingTable::str(const std::string& title) const {
  const std::vector<Entry> rows = entries();
  std::string out = title + "\n";
  std::size_t width = 24;
  for (const Entry& e : rows) width = std::max(width, e.name.size() + 2);
  char line[256];
  double total = 0.0;
  for (const Entry& e : rows) {
    total += e.seconds;
    std::snprintf(line, sizeof(line), "  %-*s %10.3f s   %s\n", static_cast<int>(width),
                  e.name.c_str(), e.seconds, e.note.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-*s %10.3f s\n", static_cast<int>(width), "TOTAL",
                total);
  out += line;
  return out;
}

}  // namespace soslock::util
