#pragma once
// Minimal leveled logger. Controlled at runtime via soslock::util::set_log_level
// or the SOSLOCK_LOG environment variable (error|warn|info|debug|trace).
#include <sstream>
#include <string>

namespace soslock::util {

enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3, Trace = 4 };

/// Set the global log threshold; messages above it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (safe to call from batch-solver worker threads).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Ts>
std::string concat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

template <typename... Ts>
void log_error(const Ts&... parts) {
  if (log_level() >= LogLevel::Error) log_line(LogLevel::Error, detail::concat(parts...));
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  if (log_level() >= LogLevel::Warn) log_line(LogLevel::Warn, detail::concat(parts...));
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  if (log_level() >= LogLevel::Info) log_line(LogLevel::Info, detail::concat(parts...));
}
template <typename... Ts>
void log_debug(const Ts&... parts) {
  if (log_level() >= LogLevel::Debug) log_line(LogLevel::Debug, detail::concat(parts...));
}
template <typename... Ts>
void log_trace(const Ts&... parts) {
  if (log_level() >= LogLevel::Trace) log_line(LogLevel::Trace, detail::concat(parts...));
}

}  // namespace soslock::util
