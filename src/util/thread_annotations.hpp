#pragma once
// Clang thread-safety-analysis annotations (-Wthread-safety) plus an
// annotated mutex wrapper, so every lock-guarded member in the tree can
// declare its lock statically:
//
//   util::Mutex mutex_;
//   int counter_ SOSLOCK_GUARDED_BY(mutex_);
//   void drain_locked() SOSLOCK_REQUIRES(mutex_);
//
// The annotations compile to nothing outside clang (GCC builds them away),
// and the wrapper exists because libstdc++'s std::mutex carries no capability
// attributes — annotating members with GUARDED_BY(std::mutex) would make
// every correctly locked access a false positive. util::Mutex/MutexLock are
// drop-in replacements for std::mutex/std::lock_guard with the capability
// attributes attached; the CI clang job builds with -Wthread-safety -Werror,
// so a member access outside its declared lock fails the build instead of
// surfacing as a TSan race (or worse, a wrong certificate) later.
#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define SOSLOCK_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SOSLOCK_THREAD_ANNOTATION_(x)
#endif

#define SOSLOCK_CAPABILITY(x) SOSLOCK_THREAD_ANNOTATION_(capability(x))
#define SOSLOCK_SCOPED_CAPABILITY SOSLOCK_THREAD_ANNOTATION_(scoped_lockable)
#define SOSLOCK_GUARDED_BY(x) SOSLOCK_THREAD_ANNOTATION_(guarded_by(x))
#define SOSLOCK_PT_GUARDED_BY(x) SOSLOCK_THREAD_ANNOTATION_(pt_guarded_by(x))
#define SOSLOCK_ACQUIRE(...) SOSLOCK_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SOSLOCK_RELEASE(...) SOSLOCK_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SOSLOCK_TRY_ACQUIRE(...) \
  SOSLOCK_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define SOSLOCK_REQUIRES(...) SOSLOCK_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SOSLOCK_EXCLUDES(...) SOSLOCK_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define SOSLOCK_RETURN_CAPABILITY(x) SOSLOCK_THREAD_ANNOTATION_(lock_returned(x))
#define SOSLOCK_NO_THREAD_SAFETY_ANALYSIS \
  SOSLOCK_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace soslock::util {

/// std::mutex with the clang capability attribute attached.
class SOSLOCK_CAPABILITY("mutex") Mutex {
 public:
  void lock() SOSLOCK_ACQUIRE() { m_.lock(); }
  void unlock() SOSLOCK_RELEASE() { m_.unlock(); }
  bool try_lock() SOSLOCK_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// std::lock_guard over util::Mutex, visible to the analysis as a scoped
/// capability: members GUARDED_BY the mutex are accessible for the lifetime
/// of the guard and inaccessible outside it.
class SOSLOCK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SOSLOCK_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SOSLOCK_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped lock over util::Mutex that can additionally sleep on a
/// std::condition_variable_any (which accepts any BasicLockable, so no
/// std::unique_lock shim is needed). As far as the analysis is concerned the
/// capability is held for the object's whole lifetime; wait() releases and
/// re-acquires the underlying mutex atomically inside the condition variable
/// but is opaque to the analysis — the mutex is held again by the time it
/// returns (also on exception; the cv re-locks before propagating), so call
/// sites remain sound. Callers loop on their predicate with the lock held:
///
///   CondLock lock(mutex_);
///   while (!ready_) lock.wait(cv_);
class SOSLOCK_SCOPED_CAPABILITY CondLock {
 public:
  explicit CondLock(Mutex& mutex) SOSLOCK_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~CondLock() SOSLOCK_RELEASE() { mutex_.unlock(); }

  CondLock(const CondLock&) = delete;
  CondLock& operator=(const CondLock&) = delete;

  /// Atomically release the mutex and block until notified; the mutex is
  /// re-acquired before returning.
  void wait(std::condition_variable_any& cv) SOSLOCK_NO_THREAD_SAFETY_ANALYSIS {
    cv.wait(mutex_);
  }

  /// wait() with a timeout. Returns false when the wait timed out without a
  /// notification; either way the mutex is held again and the caller must
  /// re-check its predicate. The resilience layer uses this to bound waits
  /// on worker progress that may never arrive (a dead or wedged worker).
  bool wait_for(std::condition_variable_any& cv,
                double seconds) SOSLOCK_NO_THREAD_SAFETY_ANALYSIS {
    return cv.wait_for(mutex_, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }

 private:
  Mutex& mutex_;
};

}  // namespace soslock::util
