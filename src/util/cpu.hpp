#pragma once
// CPU SIMD feature probe behind the linalg kernel dispatch (linalg/kernels).
// The instruction set is resolved once at startup: the hardware is probed
// (cpuid-backed builtins on x86-64, architecture macros on ARM) and the
// SOSLOCK_SIMD environment override — scalar|avx2|avx512|neon — is applied
// on top, so tests and CI can pin a path without rebuilding. An override
// naming an ISA the hardware (or the build) cannot run is ignored with a
// warning rather than crashing on an illegal instruction.
#include <string>

namespace soslock::util {

/// Instruction sets the kernel layer can dispatch to, weakest first. The
/// numeric order is meaningful: dispatch walks downward from the strongest
/// available ISA, and the bench JSON records the enum value as
/// "simd_isa_code" (0 = scalar, 1 = neon, 2 = avx2, 3 = avx512).
enum class SimdIsa : int {
  Scalar = 0,
  Neon = 1,
  Avx2 = 2,
  Avx512 = 3,
};

/// Display/override-token name: "scalar", "neon", "avx2", "avx512".
const char* isa_name(SimdIsa isa);

/// Parse an override token (the SOSLOCK_SIMD grammar). Returns true and sets
/// `out` on a recognized name; false (out untouched) otherwise.
bool parse_isa(const std::string& token, SimdIsa& out);

/// Does the *hardware this process runs on* support `isa`? (Scalar: always.
/// x86 features via cpuid-backed compiler builtins, so OS XSAVE support is
/// included; NEON is baseline on aarch64 and absent elsewhere.)
bool cpu_supports(SimdIsa isa);

/// Strongest ISA the hardware supports (ignores the env override and what
/// the build compiled in — the kernel layer intersects those).
SimdIsa detected_isa();

/// The SOSLOCK_SIMD override, if set to a recognized token; Scalar-or-better
/// requested ISAs that the hardware cannot run are reported as-is here (the
/// kernel dispatch clamps and warns). Returns false when unset/unrecognized.
bool simd_override(SimdIsa& out);

}  // namespace soslock::util
