#pragma once
// Basic semialgebraic sets {x : g_1(x) >= 0, ..., g_k(x) >= 0}. Mode domains,
// guard sets and parameter boxes of the hybrid system are all of this form;
// the S-procedure multiplies one SOS multiplier per inequality.
#include <string>
#include <vector>

#include "poly/polynomial.hpp"

namespace soslock::hybrid {

class SemialgebraicSet {
 public:
  SemialgebraicSet() = default;
  explicit SemialgebraicSet(std::size_t nvars) : nvars_(nvars) {}
  explicit SemialgebraicSet(std::vector<poly::Polynomial> constraints);

  /// Box |x_var - center| <= radius as two affine constraints, added to *this.
  void add_interval(std::size_t var, double lo, double hi);
  /// radius^2 - sum_{i in vars} x_i^2 >= 0.
  void add_ball(const std::vector<std::size_t>& vars, double radius);
  void add_constraint(poly::Polynomial g);

  std::size_t nvars() const { return nvars_; }
  std::size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }
  const std::vector<poly::Polynomial>& constraints() const { return constraints_; }

  /// Pointwise membership with slack tolerance (g_i(x) >= -tol for all i).
  bool contains(const linalg::Vector& x, double tol = 0.0) const;

  /// Set with the union of both constraint lists (geometric intersection).
  SemialgebraicSet intersect(const SemialgebraicSet& other) const;

  /// Remap into a larger variable space (see poly::Polynomial::remap).
  SemialgebraicSet remap(std::size_t new_nvars, const std::vector<std::size_t>& map) const;

  std::string str(const std::vector<std::string>& names = {}) const;

 private:
  std::size_t nvars_ = 0;
  std::vector<poly::Polynomial> constraints_;
};

/// Axis-aligned box as a semialgebraic set over `nvars` variables; bounds are
/// given for the first bounds.size() variables.
SemialgebraicSet box_set(std::size_t nvars, const std::vector<std::pair<double, double>>& bounds);

}  // namespace soslock::hybrid
