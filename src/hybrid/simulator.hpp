#pragma once
// Numerical execution of hybrid systems: RK4 flow inside the current mode's
// domain, bisection localisation of domain exit, then a guard-enabled jump.
// Semantics follow the flow/jump-set convention: flow while x in C_q, jump
// when the flow leaves C_q and some guard D_l (from the current mode) holds.
//
// Used to validate certificates empirically (Monte-Carlo lock checks, level
// set advection cross-checks) — never as part of a proof.
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hybrid/system.hpp"

namespace soslock::hybrid {

struct TracePoint {
  double t = 0.0;       // continuous time
  int jumps = 0;        // discrete time j
  std::size_t mode = 0;
  linalg::Vector x;
};

struct SimOptions {
  double dt = 1e-3;
  double t_max = 50.0;
  int max_jumps = 100000;
  double domain_tol = 1e-9;   // slack when testing domain membership
  int bisection_iters = 40;   // localisation of the domain-exit time
  /// Record every k-th accepted step (1 = all).
  int record_stride = 1;
  /// Optional early-stop predicate (e.g. "locked"): stop when true.
  std::function<bool(const TracePoint&)> stop_when;
};

struct SimResult {
  std::vector<TracePoint> trace;
  std::string stop_reason;    // "t_max" | "stop_when" | "max_jumps" | "stuck"
  bool stuck() const { return stop_reason == "stuck"; }
  const TracePoint& final() const { return trace.back(); }
};

class Simulator {
 public:
  /// Simulate with explicit parameter values (defaults to nominal).
  explicit Simulator(const HybridSystem& system);
  Simulator(const HybridSystem& system, linalg::Vector params);

  SimResult run(std::size_t initial_mode, linalg::Vector x0, const SimOptions& options) const;

 private:
  linalg::Vector rk4_step(std::size_t mode, const linalg::Vector& x, double dt) const;
  bool in_domain(std::size_t mode, const linalg::Vector& x, double tol) const;
  std::optional<std::size_t> enabled_jump(std::size_t mode, const linalg::Vector& x,
                                          double tol) const;

  const HybridSystem& system_;
  linalg::Vector params_;
};

}  // namespace soslock::hybrid
