#include "hybrid/simulator.hpp"

#include <cassert>

namespace soslock::hybrid {

Simulator::Simulator(const HybridSystem& system)
    : Simulator(system, system.nominal_parameters()) {}

Simulator::Simulator(const HybridSystem& system, linalg::Vector params)
    : system_(system), params_(std::move(params)) {
  if (params_.empty()) params_.assign(system_.nparams(), 0.0);
  assert(params_.size() == system_.nparams());
}

linalg::Vector Simulator::rk4_step(std::size_t mode, const linalg::Vector& x, double dt) const {
  using linalg::Vector;
  const Vector k1 = system_.eval_flow(mode, x, params_);
  Vector x2 = x;
  linalg::axpy(0.5 * dt, k1, x2);
  const Vector k2 = system_.eval_flow(mode, x2, params_);
  Vector x3 = x;
  linalg::axpy(0.5 * dt, k2, x3);
  const Vector k3 = system_.eval_flow(mode, x3, params_);
  Vector x4 = x;
  linalg::axpy(dt, k3, x4);
  const Vector k4 = system_.eval_flow(mode, x4, params_);
  Vector out = x;
  const double w = dt / 6.0;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] += w * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  return out;
}

bool Simulator::in_domain(std::size_t mode, const linalg::Vector& x, double tol) const {
  const SemialgebraicSet& dom = system_.mode(mode).domain;
  if (dom.empty()) return true;
  linalg::Vector full(system_.nvars(), 0.0);
  std::copy(x.begin(), x.end(), full.begin());
  std::copy(params_.begin(), params_.end(),
            full.begin() + static_cast<std::ptrdiff_t>(system_.nstates()));
  return dom.contains(full, tol);
}

std::optional<std::size_t> Simulator::enabled_jump(std::size_t mode, const linalg::Vector& x,
                                                   double tol) const {
  linalg::Vector full(system_.nvars(), 0.0);
  std::copy(x.begin(), x.end(), full.begin());
  std::copy(params_.begin(), params_.end(),
            full.begin() + static_cast<std::ptrdiff_t>(system_.nstates()));
  for (std::size_t l = 0; l < system_.jumps().size(); ++l) {
    const Jump& jump = system_.jumps()[l];
    if (jump.from != mode) continue;
    if (jump.guard.empty() || jump.guard.contains(full, tol)) return l;
  }
  return std::nullopt;
}

SimResult Simulator::run(std::size_t initial_mode, linalg::Vector x0,
                         const SimOptions& options) const {
  SimResult result;
  TracePoint point{0.0, 0, initial_mode, std::move(x0)};
  result.trace.push_back(point);
  int steps = 0;

  while (point.t < options.t_max) {
    if (options.stop_when && options.stop_when(point)) {
      result.stop_reason = "stop_when";
      return result;
    }
    const double dt = std::min(options.dt, options.t_max - point.t);
    linalg::Vector next = rk4_step(point.mode, point.x, dt);

    if (in_domain(point.mode, next, options.domain_tol)) {
      point.x = std::move(next);
      point.t += dt;
      if (++steps % options.record_stride == 0) result.trace.push_back(point);
      continue;
    }

    // Left the domain: bisect [0, dt] to localize the exit time, so that the
    // jump fires (approximately) on the domain boundary.
    double lo = 0.0, hi = dt;
    for (int it = 0; it < options.bisection_iters; ++it) {
      const double mid = 0.5 * (lo + hi);
      const linalg::Vector xm = rk4_step(point.mode, point.x, mid);
      if (in_domain(point.mode, xm, options.domain_tol)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const linalg::Vector boundary = rk4_step(point.mode, point.x, hi);
    const auto jump_index = enabled_jump(point.mode, boundary, 1e-6);
    if (!jump_index) {
      point.x = boundary;
      point.t += hi;
      result.trace.push_back(point);
      result.stop_reason = "stuck";
      return result;
    }
    const Jump& jump = system_.jumps()[*jump_index];
    point.x = system_.apply_reset(*jump_index, boundary);
    point.t += hi;
    point.mode = jump.to;
    ++point.jumps;
    result.trace.push_back(point);
    if (point.jumps >= options.max_jumps) {
      result.stop_reason = "max_jumps";
      return result;
    }
  }
  result.stop_reason = "t_max";
  result.trace.push_back(point);
  return result;
}

}  // namespace soslock::hybrid
