#pragma once
// Hybrid dynamical systems in the Goebel-Sanfelice-Teel style used by the
// paper (Sec. 2.1): a finite set of modes with polynomial flow maps f_q(x,u)
// on flow-set domains C_q, and jumps with guard sets and polynomial resets.
//
// Variable-space convention: one shared polynomial variable space of size
// nstates + nparams. Indices [0, nstates) are the continuous states x,
// indices [nstates, nstates+nparams) are the uncertain parameters u.
#include <string>
#include <vector>

#include "hybrid/semialgebraic.hpp"
#include "poly/polynomial.hpp"

namespace soslock::hybrid {

struct Mode {
  std::string name;
  /// dx_i/dt = flow[i](x, u); size nstates, over the full variable space.
  std::vector<poly::Polynomial> flow;
  /// Flow set C_q (constraints typically involve only states).
  SemialgebraicSet domain;
  /// Mode belongs to I_0 (contains the equilibrium) in the sense of Th. 1.
  bool contains_equilibrium = false;
};

struct Jump {
  std::size_t from = 0, to = 0;
  /// Guard set D_l; the jump may fire when the state is in it.
  SemialgebraicSet guard;
  /// x+ = reset[i](x); size nstates (identity if empty).
  std::vector<poly::Polynomial> reset;
  std::string name;

  bool is_identity_reset() const { return reset.empty(); }
};

class HybridSystem {
 public:
  HybridSystem() : HybridSystem(0, 0) {}
  HybridSystem(std::size_t nstates, std::size_t nparams);

  std::size_t nstates() const { return nstates_; }
  std::size_t nparams() const { return nparams_; }
  /// Size of the shared polynomial variable space.
  std::size_t nvars() const { return nstates_ + nparams_; }

  std::size_t add_mode(Mode mode);
  std::size_t add_jump(Jump jump);

  const std::vector<Mode>& modes() const { return modes_; }
  const std::vector<Jump>& jumps() const { return jumps_; }
  Mode& mode(std::size_t q) { return modes_[q]; }
  const Mode& mode(std::size_t q) const { return modes_[q]; }

  /// Parameter constraint set {g(u) >= 0} over the full variable space.
  void set_parameter_set(SemialgebraicSet set) { params_ = std::move(set); }
  const SemialgebraicSet& parameter_set() const { return params_; }
  /// Nominal parameter values (used by the simulator); length nparams.
  void set_nominal_parameters(linalg::Vector u) { nominal_params_ = std::move(u); }
  const linalg::Vector& nominal_parameters() const { return nominal_params_; }

  void set_state_names(std::vector<std::string> names) { state_names_ = std::move(names); }
  const std::vector<std::string>& state_names() const { return state_names_; }

  /// Evaluate mode q's vector field at state x with parameters u.
  linalg::Vector eval_flow(std::size_t q, const linalg::Vector& x,
                           const linalg::Vector& u) const;
  /// Apply jump l's reset to state x.
  linalg::Vector apply_reset(std::size_t l, const linalg::Vector& x) const;

    /// Check the structural invariants (sizes, variable spaces); returns a
  /// human-readable problem description or empty string when consistent.
  std::string validate() const;

 private:
  std::size_t nstates_, nparams_;
  std::vector<Mode> modes_;
  std::vector<Jump> jumps_;
  SemialgebraicSet params_;
  linalg::Vector nominal_params_;
  std::vector<std::string> state_names_;
};

/// Per-variable interval bounds extracted from the affine constraints of a
/// single semialgebraic set (unbounded directions default to [-1, 1]).
std::vector<std::pair<double, double>> estimate_box(const SemialgebraicSet& set,
                                                    std::size_t nvars);

/// Per-state interval bounds extracted from affine mode-domain constraints
/// (union over modes; unbounded directions default to [-1, 1]). Used as the
/// integration box of volume-proxy objectives.
std::vector<std::pair<double, double>> estimate_state_box(const HybridSystem& system);

}  // namespace soslock::hybrid
