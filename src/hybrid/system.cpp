#include "hybrid/system.hpp"

#include <cassert>
#include <cstdio>

namespace soslock::hybrid {

HybridSystem::HybridSystem(std::size_t nstates, std::size_t nparams)
    : nstates_(nstates), nparams_(nparams), params_(nstates + nparams) {}

std::size_t HybridSystem::add_mode(Mode mode) {
  assert(mode.flow.size() == nstates_);
  modes_.push_back(std::move(mode));
  return modes_.size() - 1;
}

std::size_t HybridSystem::add_jump(Jump jump) {
  assert(jump.from < modes_.size() && jump.to < modes_.size());
  jumps_.push_back(std::move(jump));
  return jumps_.size() - 1;
}

linalg::Vector HybridSystem::eval_flow(std::size_t q, const linalg::Vector& x,
                                       const linalg::Vector& u) const {
  assert(q < modes_.size());
  assert(x.size() == nstates_ && u.size() == nparams_);
  linalg::Vector full(nvars());
  std::copy(x.begin(), x.end(), full.begin());
  std::copy(u.begin(), u.end(), full.begin() + static_cast<std::ptrdiff_t>(nstates_));
  linalg::Vector dx(nstates_);
  for (std::size_t i = 0; i < nstates_; ++i) dx[i] = modes_[q].flow[i].eval(full);
  return dx;
}

linalg::Vector HybridSystem::apply_reset(std::size_t l, const linalg::Vector& x) const {
  assert(l < jumps_.size());
  const Jump& jump = jumps_[l];
  if (jump.is_identity_reset()) return x;
  linalg::Vector full(nvars(), 0.0);
  std::copy(x.begin(), x.end(), full.begin());
  linalg::Vector out(nstates_);
  for (std::size_t i = 0; i < nstates_; ++i) out[i] = jump.reset[i].eval(full);
  return out;
}

std::string HybridSystem::validate() const {
  char buf[160];
  if (modes_.empty()) return "no modes";
  for (std::size_t q = 0; q < modes_.size(); ++q) {
    const Mode& m = modes_[q];
    if (m.flow.size() != nstates_) {
      std::snprintf(buf, sizeof(buf), "mode %zu: flow has %zu components, expected %zu", q,
                    m.flow.size(), nstates_);
      return buf;
    }
    for (const poly::Polynomial& f : m.flow) {
      if (!f.is_zero() && f.nvars() != nvars()) {
        std::snprintf(buf, sizeof(buf), "mode %zu: flow over %zu vars, expected %zu", q,
                      f.nvars(), nvars());
        return buf;
      }
    }
    if (!m.domain.empty() && m.domain.nvars() != nvars()) {
      std::snprintf(buf, sizeof(buf), "mode %zu: domain over %zu vars, expected %zu", q,
                    m.domain.nvars(), nvars());
      return buf;
    }
  }
  for (std::size_t l = 0; l < jumps_.size(); ++l) {
    const Jump& jump = jumps_[l];
    if (jump.from >= modes_.size() || jump.to >= modes_.size()) {
      std::snprintf(buf, sizeof(buf), "jump %zu: mode index out of range", l);
      return buf;
    }
    if (!jump.is_identity_reset() && jump.reset.size() != nstates_) {
      std::snprintf(buf, sizeof(buf), "jump %zu: reset has %zu components, expected %zu", l,
                    jump.reset.size(), nstates_);
      return buf;
    }
  }
  if (!nominal_params_.empty() && nominal_params_.size() != nparams_)
    return "nominal parameter vector has wrong length";
  return {};
}

namespace {

void accumulate_box(const SemialgebraicSet& set, std::size_t nvars,
                    std::vector<std::pair<double, double>>& box, std::vector<bool>& have_lo,
                    std::vector<bool>& have_hi) {
  for (const poly::Polynomial& g : set.constraints()) {
    if (g.degree() != 1 || g.term_count() > 2) continue;
    // Affine single-variable pattern g = c * x_i + d >= 0.
    std::size_t var = nvars;
    double c = 0.0;
    bool single = true;
    for (const auto& [m, coeff] : g.terms()) {
      if (m.is_constant()) continue;
      for (std::size_t i = 0; i < g.nvars(); ++i) {
        if (m.exponent(i) > 0) {
          if (var != nvars || i >= nvars) single = false;
          var = i;
          c = coeff;
        }
      }
    }
    if (!single || var >= nvars || c == 0.0) continue;
    const double d = g.coefficient(poly::Monomial(g.nvars()));
    const double bound = -d / c;
    if (c > 0.0) {  // x >= bound
      box[var].first = have_lo[var] ? std::min(box[var].first, bound) : bound;
      have_lo[var] = true;
    } else {  // x <= bound
      box[var].second = have_hi[var] ? std::max(box[var].second, bound) : bound;
      have_hi[var] = true;
    }
  }
}

}  // namespace

std::vector<std::pair<double, double>> estimate_box(const SemialgebraicSet& set,
                                                    std::size_t nvars) {
  std::vector<std::pair<double, double>> box(nvars, {-1.0, 1.0});
  std::vector<bool> have_lo(nvars, false), have_hi(nvars, false);
  accumulate_box(set, nvars, box, have_lo, have_hi);
  return box;
}

std::vector<std::pair<double, double>> estimate_state_box(const HybridSystem& system) {
  const std::size_t nstates = system.nstates();
  std::vector<std::pair<double, double>> box(nstates, {-1.0, 1.0});
  std::vector<bool> have_lo(nstates, false), have_hi(nstates, false);
  for (const auto& mode : system.modes())
    accumulate_box(mode.domain, nstates, box, have_lo, have_hi);
  return box;
}

}  // namespace soslock::hybrid
