#include "hybrid/semialgebraic.hpp"

#include <cassert>

namespace soslock::hybrid {

using poly::Polynomial;

SemialgebraicSet::SemialgebraicSet(std::vector<Polynomial> constraints)
    : constraints_(std::move(constraints)) {
  if (!constraints_.empty()) nvars_ = constraints_.front().nvars();
  for (const Polynomial& g : constraints_) {
    assert(g.nvars() == nvars_);
    (void)g;
  }
}

void SemialgebraicSet::add_interval(std::size_t var, double lo, double hi) {
  assert(var < nvars_);
  // x - lo >= 0 and hi - x >= 0.
  constraints_.push_back(Polynomial::variable(nvars_, var) - lo);
  constraints_.push_back(Polynomial::constant(nvars_, hi) - Polynomial::variable(nvars_, var));
}

void SemialgebraicSet::add_ball(const std::vector<std::size_t>& vars, double radius) {
  Polynomial g = Polynomial::constant(nvars_, radius * radius);
  for (std::size_t v : vars) {
    assert(v < nvars_);
    g -= Polynomial::variable(nvars_, v) * Polynomial::variable(nvars_, v);
  }
  constraints_.push_back(std::move(g));
}

void SemialgebraicSet::add_constraint(Polynomial g) {
  if (constraints_.empty() && nvars_ == 0) nvars_ = g.nvars();
  assert(g.nvars() == nvars_);
  constraints_.push_back(std::move(g));
}

bool SemialgebraicSet::contains(const linalg::Vector& x, double tol) const {
  for (const Polynomial& g : constraints_) {
    if (g.eval(x) < -tol) return false;
  }
  return true;
}

SemialgebraicSet SemialgebraicSet::intersect(const SemialgebraicSet& other) const {
  SemialgebraicSet out(*this);
  if (out.nvars_ == 0) out.nvars_ = other.nvars_;
  assert(other.nvars_ == out.nvars_ || other.empty());
  for (const Polynomial& g : other.constraints_) out.constraints_.push_back(g);
  return out;
}

SemialgebraicSet SemialgebraicSet::remap(std::size_t new_nvars,
                                         const std::vector<std::size_t>& map) const {
  SemialgebraicSet out(new_nvars);
  for (const Polynomial& g : constraints_) out.constraints_.push_back(g.remap(new_nvars, map));
  return out;
}

std::string SemialgebraicSet::str(const std::vector<std::string>& names) const {
  std::string out = "{";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i > 0) out += ", ";
    out += constraints_[i].str(names) + " >= 0";
  }
  return out + "}";
}

SemialgebraicSet box_set(std::size_t nvars,
                         const std::vector<std::pair<double, double>>& bounds) {
  SemialgebraicSet s(nvars);
  for (std::size_t i = 0; i < bounds.size(); ++i) s.add_interval(i, bounds[i].first, bounds[i].second);
  return s;
}

}  // namespace soslock::hybrid
