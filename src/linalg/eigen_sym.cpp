#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace soslock::linalg {

EigenSym eigen_sym(const Matrix& a, double tol, int max_sweeps) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  auto off_norm = [&d, n]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += d(i, j) * d(i, j);
    return std::sqrt(2.0 * s);
  };

  const double scale = std::max(frobenius_norm(d), 1e-300);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tol * scale) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = d(p, p), aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation J(p,q,theta) on both sides of D and accumulate in V.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p), dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k), dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenvalues ascending, permute eigenvectors to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&d](std::size_t i, std::size_t j) { return d(i, i) < d(j, j); });

  EigenSym out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

double min_eigenvalue(const Matrix& a) {
  if (a.rows() == 0) return 0.0;
  if (a.rows() == 1) return a(0, 0);
  return eigen_sym(a).values.front();
}

Matrix sqrt_psd(const Matrix& a) {
  const EigenSym es = eigen_sym(a);
  const std::size_t n = a.rows();
  Matrix sqrt_d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    sqrt_d(i, i) = es.values[i] > 0.0 ? std::sqrt(es.values[i]) : 0.0;
  return es.vectors * sqrt_d * es.vectors.transposed();
}

}  // namespace soslock::linalg
