#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/kernels.hpp"

namespace soslock::linalg {
namespace {

/// Householder reduction of the symmetric matrix held in `z` to tridiagonal
/// form (EISPACK tred2 lineage): on return d holds the diagonal, e the
/// subdiagonal (e[0] unused), and — when `want_vectors` — z the accumulated
/// orthogonal transformation Q with A = Q T Q^T. Without vectors, z is
/// scratch and only d/e are meaningful.
void tridiagonalize(Matrix& z, Vector& d, Vector& e, bool want_vectors) {
  const int n = static_cast<int>(z.rows());
  for (int i = n - 1; i > 0; --i) {
    const int l = i - 1;
    double h = 0.0, scale = 0.0;
    if (l > 0) {
      for (int k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (int k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        const Kernels& kern = active_kernels();
        const double* zi = z.row_ptr(static_cast<std::size_t>(i));
        for (int j = 0; j <= l; ++j) {
          if (want_vectors) z(j, i) = z(i, j) / h;
          // Row j is contiguous up to its diagonal; the strided tail walks
          // column j below it.
          g = kern.dot(z.row_ptr(static_cast<std::size_t>(j)), zi,
                       static_cast<std::size_t>(j) + 1);
          for (int k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (int j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          kern.sub_scaled2(f, e.data(), g, zi, z.row_ptr(static_cast<std::size_t>(j)),
                           static_cast<std::size_t>(j) + 1);
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  if (want_vectors) d[0] = 0.0;
  e[0] = 0.0;
  for (int i = 0; i < n; ++i) {
    if (want_vectors) {
      if (d[i] != 0.0) {
        for (int j = 0; j < i; ++j) {
          double g = 0.0;
          for (int k = 0; k < i; ++k) g += z(i, k) * z(k, j);
          for (int k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
        }
      }
      d[i] = z(i, i);
      z(i, i) = 1.0;
      for (int j = 0; j < i; ++j) {
        z(j, i) = 0.0;
        z(i, j) = 0.0;
      }
    } else {
      d[i] = z(i, i);
    }
  }
}

/// Implicit-shift QL on the tridiagonal (d, e) (EISPACK tql2/tql1 lineage).
/// Rotations are accumulated into *z when non-null. Returns false if any
/// eigenvalue fails to converge within 50 shifts (caller falls back to the
/// Jacobi reference).
bool ql_implicit_shift(Vector& d, Vector& e, Matrix* z) {
  const int n = static_cast<int>(d.size());
  if (n <= 1) return true;
  for (int i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m;
    do {
      for (m = l; m < n - 1; ++m) {
        // Machine-epsilon-relative deflation test (NR's "e + dd == dd"): a
        // tolerance tighter than eps could never be met by an off-diagonal
        // resting at the rounding floor and would burn the full iteration
        // budget before falling back to Jacobi.
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) break;
      }
      if (m != l) {
        if (iter++ == 50) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        int i = m - 1;
        for (; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            // Deflation mid-sweep: the split is below i; undo the shift on
            // d[i+1] and restart the scan for this l.
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            const int nn = n;
            for (int k = 0; k < nn; ++k) {
              f = (*z)(k, i + 1);
              (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
              (*z)(k, i) = c * (*z)(k, i) - s * f;
            }
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

/// Sort eigenvalues ascending, permuting eigenvector columns to match.
EigenSym sorted_result(Vector d, Matrix z) {
  const std::size_t n = d.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&d](std::size_t i, std::size_t j) { return d[i] < d[j]; });
  EigenSym out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = z(i, order[j]);
  }
  return out;
}

}  // namespace

EigenSym eigen_sym_jacobi(const Matrix& a, double tol, int max_sweeps) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  auto off_norm = [&d, n]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += d(i, j) * d(i, j);
    return std::sqrt(2.0 * s);
  };

  const double scale = std::max(frobenius_norm(d), 1e-300);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tol * scale) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = d(p, p), aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation J(p,q,theta) on both sides of D and accumulate in V.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p), dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k), dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  Vector values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = d(i, i);
  return sorted_result(std::move(values), std::move(v));
}

EigenSym eigen_sym(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  if (n == 0) return {};
  if (n == 1) {
    EigenSym out;
    out.values = {a(0, 0)};
    out.vectors = Matrix::identity(1);
    return out;
  }
  Matrix z = a;
  Vector d(n), e(n);
  tridiagonalize(z, d, e, /*want_vectors=*/true);
  if (!ql_implicit_shift(d, e, &z)) return eigen_sym_jacobi(a);
  return sorted_result(std::move(d), std::move(z));
}

Vector eigen_values_sym(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  if (n == 0) return {};
  if (n == 1) return {a(0, 0)};
  Matrix z = a;
  Vector d(n), e(n);
  tridiagonalize(z, d, e, /*want_vectors=*/false);
  if (!ql_implicit_shift(d, e, nullptr)) return eigen_sym_jacobi(a).values;
  std::sort(d.begin(), d.end());
  return d;
}

double min_eigenvalue(const Matrix& a) {
  if (a.rows() == 0) return 0.0;
  if (a.rows() == 1) return a(0, 0);
  return eigen_values_sym(a).front();
}

Matrix sqrt_psd(const Matrix& a) {
  const EigenSym es = eigen_sym(a);
  const std::size_t n = a.rows();
  Matrix sqrt_d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    sqrt_d(i, i) = es.values[i] > 0.0 ? std::sqrt(es.values[i]) : 0.0;
  return es.vectors * sqrt_d * es.vectors.transposed();
}

}  // namespace soslock::linalg
