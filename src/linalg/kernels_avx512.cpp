// AVX-512 kernel table (F + VL + DQ): 512-bit FMA lanes. This TU is the only
// place compiled with the -mavx512* flags (set per-source in CMake); it
// self-gates on the macros so flagless builds still link and dispatch walks
// down to AVX2 or scalar.
#include "linalg/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512VL__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include "linalg/kernels_simd.hpp"

namespace soslock::linalg {
namespace {

struct VecAvx512D {
  static constexpr std::size_t W = 8;
  using elem = double;
  using vec = __m512d;
  static vec zero() { return _mm512_setzero_pd(); }
  static vec set1(double x) { return _mm512_set1_pd(x); }
  static vec loadu(const double* p) { return _mm512_loadu_pd(p); }
  static void storeu(double* p, vec v) { _mm512_storeu_pd(p, v); }
  static vec add(vec a, vec b) { return _mm512_add_pd(a, b); }
  static vec mul(vec a, vec b) { return _mm512_mul_pd(a, b); }
  static vec fmadd(vec a, vec b, vec c) { return _mm512_fmadd_pd(a, b, c); }
  static vec fnmadd(vec a, vec b, vec c) { return _mm512_fnmadd_pd(a, b, c); }
  static double reduce_add(vec v) {
    double t[8];
    _mm512_storeu_pd(t, v);
    return ((t[0] + t[1]) + (t[2] + t[3])) + ((t[4] + t[5]) + (t[6] + t[7]));
  }
};

struct VecAvx512S {
  static constexpr std::size_t W = 16;
  using elem = float;
  using vec = __m512;
  static vec zero() { return _mm512_setzero_ps(); }
  static vec set1(float x) { return _mm512_set1_ps(x); }
  static vec loadu(const float* p) { return _mm512_loadu_ps(p); }
  static void storeu(float* p, vec v) { _mm512_storeu_ps(p, v); }
  static vec add(vec a, vec b) { return _mm512_add_ps(a, b); }
  static vec mul(vec a, vec b) { return _mm512_mul_ps(a, b); }
  static vec fmadd(vec a, vec b, vec c) { return _mm512_fmadd_ps(a, b, c); }
  static vec fnmadd(vec a, vec b, vec c) { return _mm512_fnmadd_ps(a, b, c); }
  static float reduce_add(vec v) {
    float t[16];
    _mm512_storeu_ps(t, v);
    float s = 0.0f;
    for (int i = 0; i < 16; i += 4) s += ((t[i] + t[i + 1]) + (t[i + 2] + t[i + 3]));
    return s;
  }
};

}  // namespace

const Kernels* kernels_avx512() {
  static const Kernels k =
      simd_detail::make_table<VecAvx512D, VecAvx512S>(util::SimdIsa::Avx512);
  return &k;
}

}  // namespace soslock::linalg

#else

namespace soslock::linalg {
const Kernels* kernels_avx512() { return nullptr; }
}  // namespace soslock::linalg

#endif
