// AVX2+FMA kernel table. This TU is the only place compiled with
// -mavx2 -mfma (set per-source in CMake, never globally), and it gates
// itself on the resulting macros so a build without the flags still links —
// the exporter then returns nullptr and dispatch walks down.
#include "linalg/kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "linalg/kernels_simd.hpp"

namespace soslock::linalg {
namespace {

struct VecAvx2D {
  static constexpr std::size_t W = 4;
  using elem = double;
  using vec = __m256d;
  static vec zero() { return _mm256_setzero_pd(); }
  static vec set1(double x) { return _mm256_set1_pd(x); }
  static vec loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, vec v) { _mm256_storeu_pd(p, v); }
  static vec add(vec a, vec b) { return _mm256_add_pd(a, b); }
  static vec mul(vec a, vec b) { return _mm256_mul_pd(a, b); }
  static vec fmadd(vec a, vec b, vec c) { return _mm256_fmadd_pd(a, b, c); }
  static vec fnmadd(vec a, vec b, vec c) { return _mm256_fnmadd_pd(a, b, c); }
  static double reduce_add(vec v) {
    double t[4];
    _mm256_storeu_pd(t, v);
    return (t[0] + t[1]) + (t[2] + t[3]);
  }
};

struct VecAvx2S {
  static constexpr std::size_t W = 8;
  using elem = float;
  using vec = __m256;
  static vec zero() { return _mm256_setzero_ps(); }
  static vec set1(float x) { return _mm256_set1_ps(x); }
  static vec loadu(const float* p) { return _mm256_loadu_ps(p); }
  static void storeu(float* p, vec v) { _mm256_storeu_ps(p, v); }
  static vec add(vec a, vec b) { return _mm256_add_ps(a, b); }
  static vec mul(vec a, vec b) { return _mm256_mul_ps(a, b); }
  static vec fmadd(vec a, vec b, vec c) { return _mm256_fmadd_ps(a, b, c); }
  static vec fnmadd(vec a, vec b, vec c) { return _mm256_fnmadd_ps(a, b, c); }
  static float reduce_add(vec v) {
    float t[8];
    _mm256_storeu_ps(t, v);
    return ((t[0] + t[1]) + (t[2] + t[3])) + ((t[4] + t[5]) + (t[6] + t[7]));
  }
};

}  // namespace

const Kernels* kernels_avx2() {
  static const Kernels k = simd_detail::make_table<VecAvx2D, VecAvx2S>(util::SimdIsa::Avx2);
  return &k;
}

}  // namespace soslock::linalg

#else

namespace soslock::linalg {
const Kernels* kernels_avx2() { return nullptr; }
}  // namespace soslock::linalg

#endif
