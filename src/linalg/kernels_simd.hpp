#pragma once
// Generic SIMD kernel bodies shared by the per-ISA translation units
// (kernels_avx2/avx512/neon.cpp). Each ISA supplies two vector traits — one
// for double, one for float — and instantiates make_table<>; this header
// never touches intrinsics itself, so it compiles in every TU regardless of
// the enabled instruction set.
//
// A trait V provides:
//   V::W            lane count (std::size_t)
//   V::elem         element type (double or float)
//   V::vec          the register type
//   V::zero()                       all-zero register
//   V::set1(e)                      broadcast
//   V::loadu(p) / V::storeu(p, v)   unaligned load/store
//   V::add(a, b), V::mul(a, b)
//   V::fmadd(a, b, c)  = a * b + c  (fused)
//   V::fnmadd(a, b, c) = c - a * b  (fused)
//   V::reduce_add(v)                lane sum
//
// Parity contract with the scalar reference (see kernels.hpp): the
// elementwise kernels (gemm, syrk, axpy, sub_scaled2, split_recombine) keep
// the scalar per-element k-order and differ only by FMA fusing, so their
// remainder lanes must use std::fma to stay exactly reproducible by a fused
// sequential reference. The reduction kernels (dot, dot_sub, trsv) split
// sums across lanes and are only ulp-bounded against scalar.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "linalg/kernels.hpp"

namespace soslock::linalg::simd_detail {

template <class V>
inline typename V::elem vdot(const typename V::elem* a, const typename V::elem* b,
                             std::size_t n) {
  constexpr std::size_t W = V::W;
  typename V::vec acc0 = V::zero();
  typename V::vec acc1 = V::zero();
  std::size_t i = 0;
  for (; i + 2 * W <= n; i += 2 * W) {
    acc0 = V::fmadd(V::loadu(a + i), V::loadu(b + i), acc0);
    acc1 = V::fmadd(V::loadu(a + i + W), V::loadu(b + i + W), acc1);
  }
  for (; i + W <= n; i += W) acc0 = V::fmadd(V::loadu(a + i), V::loadu(b + i), acc0);
  typename V::elem s = V::reduce_add(V::add(acc0, acc1));
  for (; i < n; ++i) s = std::fma(a[i], b[i], s);
  return s;
}

template <class V>
inline typename V::elem vdot_sub(typename V::elem s, const typename V::elem* a,
                                 const typename V::elem* b, std::size_t n) {
  return s - vdot<V>(a, b, n);
}

/// Four simultaneous dots against a shared x: each x load is reused by all
/// four rows and the horizontal reductions amortize over four rows' worth of
/// vector work — this is what makes the short (panel-width) dots of the
/// blocked Cholesky profitable to vectorize at all.
template <class V>
inline void vdot4(const double* r0, const double* r1, const double* r2, const double* r3,
                  const double* x, std::size_t n, double* s) {
  constexpr std::size_t W = V::W;
  using vec = typename V::vec;
  vec acc0 = V::zero(), acc1 = V::zero(), acc2 = V::zero(), acc3 = V::zero();
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const vec xv = V::loadu(x + i);
    acc0 = V::fmadd(V::loadu(r0 + i), xv, acc0);
    acc1 = V::fmadd(V::loadu(r1 + i), xv, acc1);
    acc2 = V::fmadd(V::loadu(r2 + i), xv, acc2);
    acc3 = V::fmadd(V::loadu(r3 + i), xv, acc3);
  }
  s[0] = V::reduce_add(acc0);
  s[1] = V::reduce_add(acc1);
  s[2] = V::reduce_add(acc2);
  s[3] = V::reduce_add(acc3);
  for (; i < n; ++i) {
    const double xi = x[i];
    s[0] = std::fma(r0[i], xi, s[0]);
    s[1] = std::fma(r1[i], xi, s[1]);
    s[2] = std::fma(r2[i], xi, s[2]);
    s[3] = std::fma(r3[i], xi, s[3]);
  }
}

template <class V>
inline bool vchol_factor_panel(std::size_t kb, std::size_t nrows, double* block,
                               std::size_t ldb) {
  // Same recurrence as the scalar kernel; the row loops below each pivot
  // column run in 4-row groups sharing the pivot-row loads, and the trailing
  // solve walks columns outer so every group's dots reuse the cached block.
  for (std::size_t j = 0; j < kb; ++j) {
    double* lj = block + j * ldb;
    const double d = lj[j] - vdot<V>(lj, lj, j);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    lj[j] = ljj;
    const double inv = 1.0 / ljj;
    std::size_t i = j + 1;
    for (; i + 4 <= kb; i += 4) {
      double* l0 = block + i * ldb;
      double* l1 = l0 + ldb;
      double* l2 = l1 + ldb;
      double* l3 = l2 + ldb;
      double s[4];
      vdot4<V>(l0, l1, l2, l3, lj, j, s);
      l0[j] = (l0[j] - s[0]) * inv;
      l1[j] = (l1[j] - s[1]) * inv;
      l2[j] = (l2[j] - s[2]) * inv;
      l3[j] = (l3[j] - s[3]) * inv;
    }
    for (; i < kb; ++i) {
      double* li = block + i * ldb;
      li[j] = (li[j] - vdot<V>(li, lj, j)) * inv;
    }
  }
  const std::size_t rend = kb + nrows;
  std::size_t r = kb;
  for (; r + 4 <= rend; r += 4) {
    double* r0 = block + r * ldb;
    double* r1 = r0 + ldb;
    double* r2 = r1 + ldb;
    double* r3 = r2 + ldb;
    for (std::size_t j = 0; j < kb; ++j) {
      const double* lj = block + j * ldb;
      double s[4];
      vdot4<V>(r0, r1, r2, r3, lj, j, s);
      const double d = lj[j];
      r0[j] = (r0[j] - s[0]) / d;
      r1[j] = (r1[j] - s[1]) / d;
      r2[j] = (r2[j] - s[2]) / d;
      r3[j] = (r3[j] - s[3]) / d;
    }
  }
  for (; r < rend; ++r) {
    double* ri = block + r * ldb;
    for (std::size_t j = 0; j < kb; ++j) {
      const double* lj = block + j * ldb;
      ri[j] = (ri[j] - vdot<V>(ri, lj, j)) / lj[j];
    }
  }
  return true;
}

template <class V>
inline void vaxpy(typename V::elem f, const typename V::elem* x, typename V::elem* y,
                  std::size_t n) {
  constexpr std::size_t W = V::W;
  const typename V::vec fv = V::set1(f);
  std::size_t i = 0;
  for (; i + W <= n; i += W) V::storeu(y + i, V::fmadd(fv, V::loadu(x + i), V::loadu(y + i)));
  for (; i < n; ++i) y[i] = std::fma(f, x[i], y[i]);
}

template <class V>
inline void vsub_scaled2(double f, const double* a, double g, const double* b, double* y,
                         std::size_t n) {
  constexpr std::size_t W = V::W;
  const typename V::vec fv = V::set1(f);
  const typename V::vec gv = V::set1(g);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const typename V::vec t = V::fnmadd(fv, V::loadu(a + i), V::loadu(y + i));
    V::storeu(y + i, V::fnmadd(gv, V::loadu(b + i), t));
  }
  for (; i < n; ++i) y[i] = std::fma(-g, b[i], std::fma(-f, a[i], y[i]));
}

template <class V>
inline void vsplit_recombine(const double* neg, const double* u, double rho, double* splus,
                             double* xnew, std::size_t n) {
  constexpr std::size_t W = V::W;
  const typename V::vec rv = V::set1(rho);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const typename V::vec nv = V::loadu(neg + i);
    V::storeu(splus + i, V::add(nv, V::loadu(u + i)));
    V::storeu(xnew + i, V::mul(rv, nv));
  }
  for (; i < n; ++i) {
    splus[i] = neg[i] + u[i];
    xnew[i] = rho * neg[i];
  }
}

template <class V>
inline void vsyrk_sub_upper(std::size_t n, std::size_t k, const double* w, std::size_t ldw,
                            double* c, std::size_t ldc) {
  constexpr std::size_t W = V::W;
  for (std::size_t a = 0; a < k; ++a) {
    const double* wr = w + a * ldw;
    for (std::size_t i = 0; i < n; ++i) {
      const double f = wr[i];
      if (f == 0.0) continue;
      double* ci = c + i * ldc;
      const typename V::vec fv = V::set1(f);
      std::size_t j = i;
      for (; j + W <= n; j += W)
        V::storeu(ci + j, V::fnmadd(fv, V::loadu(wr + j), V::loadu(ci + j)));
      for (; j < n; ++j) ci[j] = std::fma(-f, wr[j], ci[j]);
    }
  }
}

template <class V>
inline void vgemm_acc(std::size_t m, std::size_t n, std::size_t kk, const double* a,
                      std::size_t lda, const double* b, std::size_t ldb, double* c,
                      std::size_t ldc) {
  constexpr std::size_t W = V::W;
  constexpr std::size_t kNr = 2 * W;  // C tile: 4 rows x two registers
  using vec = typename V::vec;
  std::size_t j0 = 0;
  for (; j0 + kNr <= n; j0 += kNr) {
    std::size_t i0 = 0;
    for (; i0 + 4 <= m; i0 += 4) {
      vec acc00 = V::zero(), acc01 = V::zero();
      vec acc10 = V::zero(), acc11 = V::zero();
      vec acc20 = V::zero(), acc21 = V::zero();
      vec acc30 = V::zero(), acc31 = V::zero();
      const double* a0 = a + i0 * lda;
      const double* a1 = a0 + lda;
      const double* a2 = a1 + lda;
      const double* a3 = a2 + lda;
      const double* bk = b + j0;
      for (std::size_t k = 0; k < kk; ++k, bk += ldb) {
        const vec b0 = V::loadu(bk);
        const vec b1 = V::loadu(bk + W);
        vec f = V::set1(a0[k]);
        acc00 = V::fmadd(f, b0, acc00);
        acc01 = V::fmadd(f, b1, acc01);
        f = V::set1(a1[k]);
        acc10 = V::fmadd(f, b0, acc10);
        acc11 = V::fmadd(f, b1, acc11);
        f = V::set1(a2[k]);
        acc20 = V::fmadd(f, b0, acc20);
        acc21 = V::fmadd(f, b1, acc21);
        f = V::set1(a3[k]);
        acc30 = V::fmadd(f, b0, acc30);
        acc31 = V::fmadd(f, b1, acc31);
      }
      double* c0 = c + i0 * ldc + j0;
      double* c1 = c0 + ldc;
      double* c2 = c1 + ldc;
      double* c3 = c2 + ldc;
      V::storeu(c0, V::add(V::loadu(c0), acc00));
      V::storeu(c0 + W, V::add(V::loadu(c0 + W), acc01));
      V::storeu(c1, V::add(V::loadu(c1), acc10));
      V::storeu(c1 + W, V::add(V::loadu(c1 + W), acc11));
      V::storeu(c2, V::add(V::loadu(c2), acc20));
      V::storeu(c2 + W, V::add(V::loadu(c2 + W), acc21));
      V::storeu(c3, V::add(V::loadu(c3), acc30));
      V::storeu(c3 + W, V::add(V::loadu(c3 + W), acc31));
    }
    for (; i0 < m; ++i0) {  // remainder rows, full-width tile
      vec acc0 = V::zero(), acc1 = V::zero();
      const double* ai = a + i0 * lda;
      const double* bk = b + j0;
      for (std::size_t k = 0; k < kk; ++k, bk += ldb) {
        const vec f = V::set1(ai[k]);
        acc0 = V::fmadd(f, V::loadu(bk), acc0);
        acc1 = V::fmadd(f, V::loadu(bk + W), acc1);
      }
      double* cr = c + i0 * ldc + j0;
      V::storeu(cr, V::add(V::loadu(cr), acc0));
      V::storeu(cr + W, V::add(V::loadu(cr + W), acc1));
    }
  }
  if (j0 < n) {  // remainder columns (< 2W wide): sequential, fused
    const std::size_t nr = n - j0;
    for (std::size_t i = 0; i < m; ++i) {
      double acc[2 * V::W] = {};
      const double* ai = a + i * lda;
      for (std::size_t k = 0; k < kk; ++k) {
        const double* bk = b + k * ldb + j0;
        const double f = ai[k];
        for (std::size_t jj = 0; jj < nr; ++jj) acc[jj] = std::fma(f, bk[jj], acc[jj]);
      }
      double* cr = c + i * ldc + j0;
      for (std::size_t jj = 0; jj < nr; ++jj) cr[jj] += acc[jj];
    }
  }
}

template <class V>
inline void vchol_trailing_update(std::size_t ntrail, std::size_t kb, double* base,
                                  std::size_t ld) {
  if (ntrail == 0) return;
  // Negate-and-transpose L21 into a dense kb x ntrail panel, then the
  // trailing update is C += L21 * (-L21^T) — a plain register-tiled GEMM
  // with no horizontal reductions, which is where the scalar row-dot
  // formulation loses on short panel widths. Row blocks keep each GEMM
  // rectangle inside (or just above) the lower triangle; the spill-over
  // cells are strictly upper and contractually dead.
  std::vector<double> w(kb * ntrail);
  for (std::size_t t = 0; t < ntrail; ++t) {
    const double* pt = base + t * ld;
    for (std::size_t a = 0; a < kb; ++a) w[a * ntrail + t] = -pt[a];
  }
  double* c = base + kb;
  constexpr std::size_t kRb = 64;
  for (std::size_t r0 = 0; r0 < ntrail; r0 += kRb) {
    const std::size_t nb = std::min(kRb, ntrail - r0);
    vgemm_acc<V>(nb, r0 + nb, kb, base + r0 * ld, ld, w.data(), ntrail, c + r0 * ld, ld);
  }
}

template <class V>
inline void vtrsv_lower(std::size_t n, const double* l, std::size_t ldl, double* x) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l + i * ldl;
    x[i] = (x[i] - vdot<V>(li, x, i)) / li[i];
  }
}

/// Build the full table for one ISA from the double trait VD and the float
/// trait VS. The strided back substitution stays on the scalar kernel (its
/// column walk defeats contiguous vector loads and it is O(n^2) against the
/// O(n^3) neighbours).
template <class VD, class VS>
inline Kernels make_table(util::SimdIsa isa) {
  Kernels k;
  k.isa = isa;
  k.gemm_acc = &vgemm_acc<VD>;
  k.syrk_sub_upper = &vsyrk_sub_upper<VD>;
  k.axpy = &vaxpy<VD>;
  k.sub_scaled2 = &vsub_scaled2<VD>;
  k.split_recombine = &vsplit_recombine<VD>;
  k.dot = &vdot<VD>;
  k.dot_sub = &vdot_sub<VD>;
  k.chol_trailing_update = &vchol_trailing_update<VD>;
  k.chol_factor_panel = &vchol_factor_panel<VD>;
  k.trsv_lower = &vtrsv_lower<VD>;
  k.trsv_lower_t = scalar_kernels().trsv_lower_t;
  k.dot_f32 = &vdot<VS>;
  k.dot_sub_f32 = &vdot_sub<VS>;
  k.axpy_f32 = &vaxpy<VS>;
  return k;
}

}  // namespace soslock::linalg::simd_detail
