#pragma once
// Householder QR used for least-squares solves (certificate fitting audits)
// and rank estimation of SOS coefficient-matching systems.
#include "linalg/matrix.hpp"

namespace soslock::linalg {

class Qr {
 public:
  /// Factor a (rows >= cols) as A = Q R.
  static Qr factor(const Matrix& a);

  /// Minimum-norm least-squares solution of min ||A x - b||_2.
  Vector solve_least_squares(const Vector& b) const;
  /// Numerical rank with relative tolerance on |R_ii|.
  std::size_t rank(double rel_tol = 1e-10) const;
  /// The upper-triangular factor (cols x cols).
  Matrix r() const;
  /// Apply Q^T to a vector of length rows().
  Vector q_transpose_times(const Vector& b) const;

 private:
  Matrix qr_;          // Householder vectors below the diagonal, R on/above
  Vector tau_;         // Householder scalars
};

}  // namespace soslock::linalg
