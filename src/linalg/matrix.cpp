#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace soslock::linalg {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols());
    std::copy(rows[r].begin(), rows[r].end(), m.row_ptr(r));
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

void Matrix::symmetrize() {
  assert(rows_ == cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
}

void Matrix::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::scale(double s) {
  for (double& x : data_) x *= s;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

void Matrix::axpy(double s, const Matrix& b) {
  assert(rows_ == b.rows_ && cols_ == b.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * b.data_[i];
}

std::string Matrix::str(int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    out += "[ ";
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "% .*g ", precision, (*this)(r, c));
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(double s, Matrix a) {
  a.scale(s);
  return a;
}

namespace {

// Register-tiled GEMM micro-kernel: C += A * B, row-major, no aliasing.
// Tiles of kMr x kNr elements of C are held in local accumulators across the
// whole k loop, so each C element is written once and the inner loop is a
// contiguous kNr-wide fused multiply-add on one row of B — the compiler
// vectorizes it without needing to prove anything about aliasing. Edge rows
// and columns fall through to narrower variants of the same loop. All dense
// products (operator*, transposed_times, times_transposed) ride on this one
// kernel; the transposed variants pay an O(n^2) explicit transpose to get
// the O(n^3) work onto the contiguous fast path.
constexpr std::size_t kMr = 4;  // C tile rows
constexpr std::size_t kNr = 8;  // C tile cols

void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  std::size_t j0 = 0;
  for (; j0 + kNr <= n; j0 += kNr) {
    std::size_t i0 = 0;
    for (; i0 + kMr <= m; i0 += kMr) {
      double acc[kMr][kNr] = {};
      const double* a0 = a.row_ptr(i0);
      const double* a1 = a.row_ptr(i0 + 1);
      const double* a2 = a.row_ptr(i0 + 2);
      const double* a3 = a.row_ptr(i0 + 3);
      for (std::size_t k = 0; k < kk; ++k) {
        const double* bk = b.row_ptr(k) + j0;
        const double f0 = a0[k], f1 = a1[k], f2 = a2[k], f3 = a3[k];
        for (std::size_t jj = 0; jj < kNr; ++jj) {
          const double bj = bk[jj];
          acc[0][jj] += f0 * bj;
          acc[1][jj] += f1 * bj;
          acc[2][jj] += f2 * bj;
          acc[3][jj] += f3 * bj;
        }
      }
      for (std::size_t r = 0; r < kMr; ++r) {
        double* cr = c.row_ptr(i0 + r) + j0;
        for (std::size_t jj = 0; jj < kNr; ++jj) cr[jj] += acc[r][jj];
      }
    }
    for (; i0 < m; ++i0) {  // remainder rows, full-width tile
      double acc[kNr] = {};
      const double* ai = a.row_ptr(i0);
      for (std::size_t k = 0; k < kk; ++k) {
        const double* bk = b.row_ptr(k) + j0;
        const double f = ai[k];
        for (std::size_t jj = 0; jj < kNr; ++jj) acc[jj] += f * bk[jj];
      }
      double* cr = c.row_ptr(i0) + j0;
      for (std::size_t jj = 0; jj < kNr; ++jj) cr[jj] += acc[jj];
    }
  }
  if (j0 < n) {  // remainder columns (< kNr wide)
    const std::size_t nr = n - j0;
    for (std::size_t i = 0; i < m; ++i) {
      double acc[kNr] = {};
      const double* ai = a.row_ptr(i);
      for (std::size_t k = 0; k < kk; ++k) {
        const double* bk = b.row_ptr(k) + j0;
        const double f = ai[k];
        for (std::size_t jj = 0; jj < nr; ++jj) acc[jj] += f * bk[jj];
      }
      double* cr = c.row_ptr(i) + j0;
      for (std::size_t jj = 0; jj < nr; ++jj) cr[jj] += acc[jj];
    }
  }
}

}  // namespace

Matrix operator*(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  gemm_acc(a, b, c);
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  assert(a.cols() == x.size());
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row_ptr(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

Vector transposed_times(const Matrix& a, const Vector& x) {
  assert(a.rows() == x.size());
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* row = a.row_ptr(i);
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

Matrix transposed_times(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  const Matrix at = a.transposed();
  gemm_acc(at, b, c);
  return c;
}

Matrix times_transposed(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  const Matrix bt = b.transposed();
  gemm_acc(a, bt, c);
  return c;
}

void subtract_gram(Matrix& c, const Matrix& w) {
  const std::size_t n = c.rows();
  assert(c.cols() == n && w.cols() == n);
  // Rank-1 accumulation over the rows of W, upper triangle only; W's rows
  // are contiguous, so both factor reads stream.
  for (std::size_t a = 0; a < w.rows(); ++a) {
    const double* wr = w.row_ptr(a);
    for (std::size_t i = 0; i < n; ++i) {
      const double f = wr[i];
      if (f == 0.0) continue;
      double* ci = c.row_ptr(i);
      for (std::size_t j = i; j < n; ++j) ci[j] -= f * wr[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double* ci = c.row_ptr(i);
    for (std::size_t j = i + 1; j < n; ++j) c(j, i) = ci[j];
  }
}

double dot(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double acc = 0.0;
  for (std::size_t i = 0, n = a.rows() * a.cols(); i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double frobenius_norm(const Matrix& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Matrix& a) {
  double m = 0.0;
  const double* p = a.data();
  for (std::size_t i = 0, n = a.rows() * a.cols(); i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

Vector operator+(Vector a, const Vector& b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
  return a;
}

Vector operator-(Vector a, const Vector& b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] -= b[i];
  return a;
}

Vector operator*(double s, Vector a) {
  for (double& x : a) x *= s;
  return a;
}

void axpy(double s, const Vector& x, Vector& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += s * x[i];
}

double max_abs_diff(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace soslock::linalg
