#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "linalg/kernels.hpp"

namespace soslock::linalg {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols());
    std::copy(rows[r].begin(), rows[r].end(), m.row_ptr(r));
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

void Matrix::symmetrize() {
  assert(rows_ == cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
}

void Matrix::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::scale(double s) {
  for (double& x : data_) x *= s;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

void Matrix::axpy(double s, const Matrix& b) {
  assert(rows_ == b.rows_ && cols_ == b.cols_);
  active_kernels().axpy(s, b.data_.data(), data_.data(), data_.size());
}

std::string Matrix::str(int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    out += "[ ";
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "% .*g ", precision, (*this)(r, c));
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(double s, Matrix a) {
  a.scale(s);
  return a;
}

namespace {

// Register-tiled GEMM: C += A * B, row-major, no aliasing. The micro-kernel
// itself lives behind the ISA dispatch seam (linalg/kernels) — scalar builds
// get the historical tiled loop bit for bit, vector builds get the FMA-lane
// version of the same per-element accumulation order. All dense products
// (operator*, transposed_times, times_transposed) ride on this one kernel;
// the transposed variants pay an O(n^2) explicit transpose to get the O(n^3)
// work onto the contiguous fast path.
void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  active_kernels().gemm_acc(a.rows(), b.cols(), a.cols(), a.data(), a.cols(), b.data(),
                            b.cols(), c.data(), c.cols());
}

}  // namespace

Matrix operator*(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  gemm_acc(a, b, c);
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  assert(a.cols() == x.size());
  const Kernels& kern = active_kernels();
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = kern.dot(a.row_ptr(i), x.data(), a.cols());
  return y;
}

Vector transposed_times(const Matrix& a, const Vector& x) {
  assert(a.rows() == x.size());
  const Kernels& kern = active_kernels();
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    kern.axpy(xi, a.row_ptr(i), y.data(), a.cols());
  }
  return y;
}

Matrix transposed_times(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  const Matrix at = a.transposed();
  gemm_acc(at, b, c);
  return c;
}

Matrix times_transposed(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  const Matrix bt = b.transposed();
  gemm_acc(a, bt, c);
  return c;
}

void subtract_gram(Matrix& c, const Matrix& w) {
  const std::size_t n = c.rows();
  assert(c.cols() == n && w.cols() == n);
  // Rank-1 accumulation over the rows of W, upper triangle only (the syrk
  // micro-kernel); the mirror pass completes the symmetric result.
  active_kernels().syrk_sub_upper(n, w.rows(), w.data(), w.cols(), c.data(), c.cols());
  for (std::size_t i = 0; i < n; ++i) {
    const double* ci = c.row_ptr(i);
    for (std::size_t j = i + 1; j < n; ++j) c(j, i) = ci[j];
  }
}

double dot(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  return active_kernels().dot(a.data(), b.data(), a.rows() * a.cols());
}

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  return active_kernels().dot(a.data(), b.data(), a.size());
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double frobenius_norm(const Matrix& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Matrix& a) {
  double m = 0.0;
  const double* p = a.data();
  for (std::size_t i = 0, n = a.rows() * a.cols(); i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

Vector operator+(Vector a, const Vector& b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
  return a;
}

Vector operator-(Vector a, const Vector& b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] -= b[i];
  return a;
}

Vector operator*(double s, Vector a) {
  for (double& x : a) x *= s;
  return a;
}

void axpy(double s, const Vector& x, Vector& y) {
  assert(x.size() == y.size());
  active_kernels().axpy(s, x.data(), y.data(), x.size());
}

double max_abs_diff(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace soslock::linalg
