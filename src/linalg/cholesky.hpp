#pragma once
// Cholesky factorization of symmetric positive definite matrices, plus a
// shifted variant used by the IPM when the Schur complement is nearly
// singular at the end of the central path.
#include <optional>

#include "linalg/matrix.hpp"

namespace soslock::linalg {

/// Lower-triangular Cholesky factor; A = L L^T.
class Cholesky {
 public:
  /// Factor `a` (must be symmetric). Returns nullopt if not numerically PD.
  static std::optional<Cholesky> factor(const Matrix& a);

  /// Factor with adaptive diagonal shift: tries shifts 0, eps, 10*eps, ...
  /// relative to the diagonal magnitude until the factorization succeeds.
  /// Records the shift actually applied.
  static Cholesky factor_shifted(const Matrix& a, double initial_rel_shift = 0.0);

  /// Solve A x = b.
  Vector solve(const Vector& b) const;
  /// Solve A X = B column-wise.
  Matrix solve(const Matrix& b) const;
  /// Solve L y = b (forward substitution).
  Vector solve_lower(const Vector& b) const;
  /// Solve L^T x = y (back substitution).
  Vector solve_lower_transposed(const Vector& y) const;

  /// Explicit (A + shift I)^{-1} = L^{-T} L^{-1}, symmetrized. Cheaper than
  /// n right-hand-side solves and turns repeated A^{-1} S applications into
  /// GEMMs (the IPM computes it once per block per iteration).
  Matrix inverse() const;

  const Matrix& lower() const { return l_; }
  double shift() const { return shift_; }
  /// log(det A) = 2 * sum log L_ii.
  double log_det() const;

 private:
  Matrix l_;
  double shift_ = 0.0;
};

/// Convenience: is the symmetric matrix numerically positive definite
/// (allowing diagonal shift `tol * max|diag|`)?
bool is_positive_definite(const Matrix& a, double tol = 0.0);

/// Single-precision Cholesky factor of an FP64 symmetric matrix — the
/// mixed-precision IPM path: the Schur complement is downconverted and
/// factored in FP32 (twice the SIMD lanes, half the factor memory) and the
/// lost digits are recovered by FP64 iterative refinement against the FP64
/// matrix. Unlike Cholesky::factor_shifted there is no retry ladder: an FP32
/// breakdown is a signal to fall back to the FP64 factorization, not to
/// shift harder.
class Cholesky32 {
 public:
  /// Downconvert `a` (+ shift on the diagonal) and factor. Returns false on
  /// a non-positive (or non-finite) pivot; the factor is unusable then.
  bool factor(const Matrix& a, double shift = 0.0);

  /// Solve A x ~= b through the FP32 factor: b is rounded to FP32, both
  /// triangular solves run in FP32, the result is widened to FP64. The
  /// caller owns refinement.
  Vector solve(const Vector& b) const;

  std::size_t size() const { return n_; }

 private:
  std::vector<float, AlignedAlloc<float>> l_;  // row-major n x n, lower
  std::size_t n_ = 0;
};

}  // namespace soslock::linalg
