#include "linalg/lu.hpp"

#include <cmath>
#include <stdexcept>

namespace soslock::linalg {

std::optional<Lu> Lu::factor(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Lu f;
  f.lu_ = a;
  f.perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) f.perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t piv = k;
    double best = std::fabs(f.lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(f.lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (!(best > 0.0) || !std::isfinite(best)) return std::nullopt;
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(f.lu_(k, j), f.lu_(piv, j));
      std::swap(f.perm_[k], f.perm_[piv]);
      f.sign_ = -f.sign_;
    }
    const double pivot = f.lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = f.lu_(i, k) / pivot;
      f.lu_(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) f.lu_(i, j) -= m * f.lu_(k, j);
    }
  }
  return f;
}

Vector Lu::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  assert(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) s -= lu_(i, k) * y[k];
    y[i] = s;
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= lu_(ii, k) * x[k];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const Vector sol = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

double Lu::det() const {
  double d = static_cast<double>(sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

Vector solve(const Matrix& a, const Vector& b) {
  auto f = Lu::factor(a);
  if (!f) throw std::runtime_error("linalg::solve: singular matrix");
  return f->solve(b);
}

Matrix inverse(const Matrix& a) {
  auto f = Lu::factor(a);
  if (!f) throw std::runtime_error("linalg::inverse: singular matrix");
  return f->solve(Matrix::identity(a.rows()));
}

}  // namespace soslock::linalg
