#include "linalg/cholesky.hpp"

#include <cmath>

#include "util/log.hpp"

namespace soslock::linalg {
namespace {

/// In-place attempt; returns false when a non-positive pivot appears.
bool try_factor(const Matrix& a, double shift, Matrix& l) {
  const std::size_t n = a.rows();
  l = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j) + shift;
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      const double* li = l.row_ptr(i);
      const double* lj = l.row_ptr(j);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      l(i, j) = s / ljj;
    }
  }
  return true;
}

double diag_scale(const Matrix& a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) m = std::max(m, std::fabs(a(i, i)));
  return m > 0.0 ? m : 1.0;
}

}  // namespace

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  assert(a.rows() == a.cols());
  Cholesky c;
  if (!try_factor(a, 0.0, c.l_)) return std::nullopt;
  return c;
}

Cholesky Cholesky::factor_shifted(const Matrix& a, double initial_rel_shift) {
  assert(a.rows() == a.cols());
  const double scale = diag_scale(a);
  Cholesky c;
  double rel = initial_rel_shift;
  if (try_factor(a, rel * scale, c.l_)) {
    c.shift_ = rel * scale;
    return c;
  }
  rel = rel > 0.0 ? rel * 10.0 : 1e-14;
  while (rel < 1e6) {
    if (try_factor(a, rel * scale, c.l_)) {
      c.shift_ = rel * scale;
      util::log_trace("Cholesky: applied diagonal shift ", c.shift_);
      return c;
    }
    rel *= 10.0;
  }
  // Degenerate input (e.g. all-NaN): fall back to identity to avoid UB; the
  // caller's residual checks will expose the failure.
  util::log_warn("Cholesky: factorization failed even with large shift");
  c.l_ = Matrix::identity(a.rows());
  c.shift_ = rel * scale;
  return c;
}

Vector Cholesky::solve_lower(const Vector& b) const {
  const std::size_t n = l_.rows();
  assert(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* li = l_.row_ptr(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * y[k];
    y[i] = s / li[i];
  }
  return y;
}

Vector Cholesky::solve_lower_transposed(const Vector& y) const {
  const std::size_t n = l_.rows();
  assert(y.size() == n);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector Cholesky::solve(const Vector& b) const { return solve_lower_transposed(solve_lower(b)); }

Matrix Cholesky::solve(const Matrix& b) const {
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const Vector sol = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

bool is_positive_definite(const Matrix& a, double tol) {
  Matrix l;
  const double shift = tol * diag_scale(a);
  return try_factor(a, shift, l);
}

}  // namespace soslock::linalg
