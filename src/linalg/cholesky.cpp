#include "linalg/cholesky.hpp"

#include <cmath>

#include "util/log.hpp"

namespace soslock::linalg {
namespace {

/// Panel width of the blocked factorization. Each round factors a kB x kB
/// diagonal block, solves the panel below it, and applies one syrk-style
/// rank-kB update to the trailing matrix — the update runs on contiguous
/// row segments, so the working set per round stays cache-resident instead
/// of streaming the whole matrix per column as the unblocked loop does.
constexpr std::size_t kPanel = 48;

/// In-place attempt; returns false when a non-positive pivot appears.
/// Blocked right-looking factorization: the factor is built in the lower
/// triangle of a working copy of `a` (plus `shift` on the diagonal); the
/// strictly-upper part is zeroed on success.
bool try_factor(const Matrix& a, double shift, Matrix& l) {
  const std::size_t n = a.rows();
  l = a;
  if (shift != 0.0) {
    for (std::size_t i = 0; i < n; ++i) l(i, i) += shift;
  }
  for (std::size_t k0 = 0; k0 < n; k0 += kPanel) {
    const std::size_t kb = std::min(kPanel, n - k0);
    const std::size_t t0 = k0 + kb;  // first trailing row
    // 1. Unblocked factor of the diagonal block (columns < k0 were already
    //    folded in by the trailing updates of previous rounds).
    for (std::size_t j = k0; j < t0; ++j) {
      const double* lj = l.row_ptr(j);
      double d = lj[j];
      for (std::size_t k = k0; k < j; ++k) d -= lj[k] * lj[k];
      if (!(d > 0.0) || !std::isfinite(d)) return false;
      const double ljj = std::sqrt(d);
      l(j, j) = ljj;
      const double inv = 1.0 / ljj;
      for (std::size_t i = j + 1; i < t0; ++i) {
        double* li = l.row_ptr(i);
        double s = li[j];
        for (std::size_t k = k0; k < j; ++k) s -= li[k] * lj[k];
        li[j] = s * inv;
      }
    }
    // 2. Panel solve: L21 = A21 * L11^{-T} row by row.
    for (std::size_t i = t0; i < n; ++i) {
      double* li = l.row_ptr(i);
      for (std::size_t j = k0; j < t0; ++j) {
        const double* lj = l.row_ptr(j);
        double s = li[j];
        for (std::size_t k = k0; k < j; ++k) s -= li[k] * lj[k];
        li[j] = s / lj[j];
      }
    }
    // 3. Trailing syrk update A22 -= L21 * L21^T, lower triangle only.
    //    Row pairs are contiguous length-kb segments starting at column k0.
    for (std::size_t i = t0; i < n; ++i) {
      const double* pi = l.row_ptr(i) + k0;
      double* li = l.row_ptr(i);
      for (std::size_t j = t0; j <= i; ++j) {
        const double* pj = l.row_ptr(j) + k0;
        double s = 0.0;
        for (std::size_t k = 0; k < kb; ++k) s += pi[k] * pj[k];
        li[j] -= s;
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    double* lr = l.row_ptr(r);
    for (std::size_t c = r + 1; c < n; ++c) lr[c] = 0.0;
  }
  return true;
}

double diag_scale(const Matrix& a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) m = std::max(m, std::fabs(a(i, i)));
  return m > 0.0 ? m : 1.0;
}

}  // namespace

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  assert(a.rows() == a.cols());
  Cholesky c;
  if (!try_factor(a, 0.0, c.l_)) return std::nullopt;
  return c;
}

Cholesky Cholesky::factor_shifted(const Matrix& a, double initial_rel_shift) {
  assert(a.rows() == a.cols());
  const double scale = diag_scale(a);
  Cholesky c;
  double rel = initial_rel_shift;
  if (try_factor(a, rel * scale, c.l_)) {
    c.shift_ = rel * scale;
    return c;
  }
  rel = rel > 0.0 ? rel * 10.0 : 1e-14;
  while (rel < 1e6) {
    if (try_factor(a, rel * scale, c.l_)) {
      c.shift_ = rel * scale;
      util::log_trace("Cholesky: applied diagonal shift ", c.shift_);
      return c;
    }
    rel *= 10.0;
  }
  // Degenerate input (e.g. all-NaN): fall back to identity to avoid UB; the
  // caller's residual checks will expose the failure.
  util::log_warn("Cholesky: factorization failed even with large shift");
  c.l_ = Matrix::identity(a.rows());
  c.shift_ = rel * scale;
  return c;
}

Vector Cholesky::solve_lower(const Vector& b) const {
  const std::size_t n = l_.rows();
  assert(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* li = l_.row_ptr(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * y[k];
    y[i] = s / li[i];
  }
  return y;
}

Vector Cholesky::solve_lower_transposed(const Vector& y) const {
  const std::size_t n = l_.rows();
  assert(y.size() == n);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector Cholesky::solve(const Vector& b) const { return solve_lower_transposed(solve_lower(b)); }

Matrix Cholesky::solve(const Matrix& b) const {
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const Vector sol = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

Matrix Cholesky::inverse() const {
  // A^{-1} = L^{-T} L^{-1}. First J = L^{-1} by forward substitution per
  // column (the identity right-hand side is sparse: column j starts at row
  // j, so the forward pass is triangular in cost); then X = L^{-T} J by back
  // substitution. Work runs on whole rows of the output, not per-column
  // vector copies.
  const std::size_t n = l_.rows();
  Matrix x(n, n);
  // Forward: J(i, j) for i >= j, built column-major logically but stored
  // row-major; iterate rows outer so writes stay contiguous.
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l_.row_ptr(i);
    double* xi = x.row_ptr(i);
    const double inv = 1.0 / li[i];
    for (std::size_t j = 0; j <= i; ++j) {
      double s = (i == j) ? 1.0 : 0.0;
      for (std::size_t k = j; k < i; ++k) s -= li[k] * x(k, j);
      xi[j] = s * inv;
    }
  }
  // Backward: X <- L^{-T} X, rows from the bottom; row i of the result needs
  // rows > i of the intermediate, so in-place back substitution is safe.
  for (std::size_t ii = n; ii-- > 0;) {
    double* xi = x.row_ptr(ii);
    const double inv = 1.0 / l_(ii, ii);
    for (std::size_t j = 0; j < n; ++j) {
      double s = xi[j];
      for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x(k, j);
      xi[j] = s * inv;
    }
  }
  // Clean up roundoff asymmetry so downstream symmetric kernels see an
  // exactly symmetric inverse.
  x.symmetrize();
  return x;
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

bool is_positive_definite(const Matrix& a, double tol) {
  Matrix l;
  const double shift = tol * diag_scale(a);
  return try_factor(a, shift, l);
}

}  // namespace soslock::linalg
