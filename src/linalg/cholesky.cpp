#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"
#include "util/log.hpp"

namespace soslock::linalg {
namespace {

/// Panel width of the blocked factorization. Each round factors a kB x kB
/// diagonal block, solves the panel below it, and applies one syrk-style
/// rank-kB update to the trailing matrix — the update runs on contiguous
/// row segments, so the working set per round stays cache-resident instead
/// of streaming the whole matrix per column as the unblocked loop does.
constexpr std::size_t kPanel = 48;

/// In-place attempt; returns false when a non-positive pivot appears.
/// Blocked right-looking factorization: the factor is built in the lower
/// triangle of a working copy of `a` (plus `shift` on the diagonal); the
/// strictly-upper part is zeroed on success.
bool try_factor(const Matrix& a, double shift, Matrix& l) {
  const std::size_t n = a.rows();
  const Kernels& kern = active_kernels();
  l = a;
  if (shift != 0.0) {
    for (std::size_t i = 0; i < n; ++i) l(i, i) += shift;
  }
  for (std::size_t k0 = 0; k0 < n; k0 += kPanel) {
    const std::size_t kb = std::min(kPanel, n - k0);
    const std::size_t t0 = k0 + kb;  // first trailing row
    // 1+2. Factor the kb x kb diagonal block and solve the panel below it
    //    (L21 = A21 * L11^{-T}) in one kernel call — columns < k0 were
    //    already folded in by the trailing updates of previous rounds, so
    //    the whole column panel is self-contained from column k0 on.
    if (!kern.chol_factor_panel(kb, n - t0, l.row_ptr(k0) + k0, l.cols())) return false;
    // 3. Trailing syrk update A22 -= L21 * L21^T, lower triangle only.
    //    Vector tables may scribble on the dead strictly-upper cells of the
    //    trailing block; the zeroing pass below reclaims them.
    kern.chol_trailing_update(n - t0, kb, l.row_ptr(t0) + k0, l.cols());
  }
  for (std::size_t r = 0; r < n; ++r) {
    double* lr = l.row_ptr(r);
    for (std::size_t c = r + 1; c < n; ++c) lr[c] = 0.0;
  }
  return true;
}

double diag_scale(const Matrix& a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) m = std::max(m, std::fabs(a(i, i)));
  return m > 0.0 ? m : 1.0;
}

}  // namespace

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  assert(a.rows() == a.cols());
  Cholesky c;
  if (!try_factor(a, 0.0, c.l_)) return std::nullopt;
  return c;
}

Cholesky Cholesky::factor_shifted(const Matrix& a, double initial_rel_shift) {
  assert(a.rows() == a.cols());
  const double scale = diag_scale(a);
  Cholesky c;
  double rel = initial_rel_shift;
  if (try_factor(a, rel * scale, c.l_)) {
    c.shift_ = rel * scale;
    return c;
  }
  rel = rel > 0.0 ? rel * 10.0 : 1e-14;
  while (rel < 1e6) {
    if (try_factor(a, rel * scale, c.l_)) {
      c.shift_ = rel * scale;
      util::log_trace("Cholesky: applied diagonal shift ", c.shift_);
      return c;
    }
    rel *= 10.0;
  }
  // Degenerate input (e.g. all-NaN): fall back to identity to avoid UB; the
  // caller's residual checks will expose the failure.
  util::log_warn("Cholesky: factorization failed even with large shift");
  c.l_ = Matrix::identity(a.rows());
  c.shift_ = rel * scale;
  return c;
}

Vector Cholesky::solve_lower(const Vector& b) const {
  const std::size_t n = l_.rows();
  assert(b.size() == n);
  Vector y = b;
  active_kernels().trsv_lower(n, l_.data(), l_.cols(), y.data());
  return y;
}

Vector Cholesky::solve_lower_transposed(const Vector& y) const {
  const std::size_t n = l_.rows();
  assert(y.size() == n);
  Vector x = y;
  active_kernels().trsv_lower_t(n, l_.data(), l_.cols(), x.data());
  return x;
}

Vector Cholesky::solve(const Vector& b) const { return solve_lower_transposed(solve_lower(b)); }

Matrix Cholesky::solve(const Matrix& b) const {
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const Vector sol = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

Matrix Cholesky::inverse() const {
  // A^{-1} = L^{-T} L^{-1}. First J = L^{-1} by forward substitution per
  // column (the identity right-hand side is sparse: column j starts at row
  // j, so the forward pass is triangular in cost); then X = L^{-T} J by back
  // substitution. Work runs on whole rows of the output, not per-column
  // vector copies.
  const std::size_t n = l_.rows();
  Matrix x(n, n);
  // Forward: J(i, j) for i >= j, built column-major logically but stored
  // row-major; iterate rows outer so writes stay contiguous.
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l_.row_ptr(i);
    double* xi = x.row_ptr(i);
    const double inv = 1.0 / li[i];
    for (std::size_t j = 0; j <= i; ++j) {
      double s = (i == j) ? 1.0 : 0.0;
      for (std::size_t k = j; k < i; ++k) s -= li[k] * x(k, j);
      xi[j] = s * inv;
    }
  }
  // Backward: X <- L^{-T} X, rows from the bottom; row i of the result needs
  // rows > i of the intermediate, so in-place back substitution is safe.
  for (std::size_t ii = n; ii-- > 0;) {
    double* xi = x.row_ptr(ii);
    const double inv = 1.0 / l_(ii, ii);
    for (std::size_t j = 0; j < n; ++j) {
      double s = xi[j];
      for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x(k, j);
      xi[j] = s * inv;
    }
  }
  // Clean up roundoff asymmetry so downstream symmetric kernels see an
  // exactly symmetric inverse.
  x.symmetrize();
  return x;
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

bool is_positive_definite(const Matrix& a, double tol) {
  Matrix l;
  const double shift = tol * diag_scale(a);
  return try_factor(a, shift, l);
}

bool Cholesky32::factor(const Matrix& a, double shift) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  const Kernels& kern = active_kernels();
  n_ = n;
  l_.assign(n * n, 0.0f);
  // Downconvert once; magnitudes past FP32 range poison the factor, so any
  // non-finite converted entry fails the factorization up front.
  for (std::size_t i = 0; i < n; ++i) {
    const double* ar = a.row_ptr(i);
    float* lr = l_.data() + i * n;
    for (std::size_t j = 0; j <= i; ++j) lr[j] = static_cast<float>(ar[j]);
    lr[i] = static_cast<float>(ar[i] + shift);
    for (std::size_t j = 0; j <= i; ++j) {
      if (!std::isfinite(lr[j])) return false;
    }
  }
  // Same blocked right-looking shape as the FP64 try_factor, on the FP32
  // kernel set (twice the lanes per register).
  for (std::size_t k0 = 0; k0 < n; k0 += kPanel) {
    const std::size_t kb = std::min(kPanel, n - k0);
    const std::size_t t0 = k0 + kb;
    for (std::size_t j = k0; j < t0; ++j) {
      float* lj = l_.data() + j * n;
      const float d = kern.dot_sub_f32(lj[j], lj + k0, lj + k0, j - k0);
      if (!(d > 0.0f) || !std::isfinite(d)) return false;
      const float ljj = std::sqrt(d);
      lj[j] = ljj;
      const float inv = 1.0f / ljj;
      for (std::size_t i = j + 1; i < t0; ++i) {
        float* li = l_.data() + i * n;
        li[j] = kern.dot_sub_f32(li[j], li + k0, lj + k0, j - k0) * inv;
      }
    }
    for (std::size_t i = t0; i < n; ++i) {
      float* li = l_.data() + i * n;
      for (std::size_t j = k0; j < t0; ++j) {
        const float* lj = l_.data() + j * n;
        li[j] = kern.dot_sub_f32(li[j], li + k0, lj + k0, j - k0) / lj[j];
      }
    }
    for (std::size_t i = t0; i < n; ++i) {
      float* li = l_.data() + i * n;
      for (std::size_t j = t0; j <= i; ++j) {
        li[j] -= kern.dot_f32(li + k0, l_.data() + j * n + k0, kb);
      }
    }
  }
  return true;
}

Vector Cholesky32::solve(const Vector& b) const {
  assert(b.size() == n_);
  const Kernels& kern = active_kernels();
  std::vector<float, AlignedAlloc<float>> y(n_);
  for (std::size_t i = 0; i < n_; ++i) y[i] = static_cast<float>(b[i]);
  // Forward then back substitution, both FP32.
  for (std::size_t i = 0; i < n_; ++i) {
    const float* li = l_.data() + i * n_;
    y[i] = kern.dot_sub_f32(y[i], li, y.data(), i) / li[i];
  }
  for (std::size_t ii = n_; ii-- > 0;) {
    float s = y[ii];
    for (std::size_t k = ii + 1; k < n_; ++k) s -= l_[k * n_ + ii] * y[k];
    y[ii] = s / l_[ii * n_ + ii];
  }
  Vector x(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] = static_cast<double>(y[i]);
  return x;
}

}  // namespace soslock::linalg
