#pragma once
// ISA-dispatched dense micro-kernels behind the linalg hot paths (GEMM,
// Cholesky, the QL eigensolver's Householder stage, ADMM eigensplit
// reconstruction, Schur syrk updates). One Kernels table per instruction
// set; the active table is resolved once at startup from the CPU probe
// (util/cpu) intersected with what the build compiled in, overridable with
// SOSLOCK_SIMD=scalar|avx2|avx512|neon.
//
// Contract conventions:
//   - All pointers are raw row-major panels with explicit leading
//     dimensions; callers guarantee no aliasing between inputs and outputs
//     unless a kernel documents in-place operation.
//   - The scalar table reproduces the pre-SIMD loop nests *operation for
//     operation* (same accumulation order, no FMA contraction), so
//     SOSLOCK_SIMD=scalar is bit-identical to the historical results. This
//     is the always-correct reference path the parity suite tests every
//     other ISA against.
//   - Vector tables keep the per-element accumulation *order* of the scalar
//     path for the elementwise kernels (gemm_acc, syrk_sub_upper, axpy,
//     sub_scaled2, split_recombine) — they differ only by FMA contraction,
//     so parity there is a fused-multiply-add question, not a reduction-
//     order question. The reduction kernels (dot, dot_sub, the triangular
//     solves built on them, and the f32 variants) split sums across lanes
//     and are parity-tested to ulp-scaled bounds instead.
#include <cstddef>

#include "util/cpu.hpp"

namespace soslock::linalg {

struct Kernels {
  util::SimdIsa isa = util::SimdIsa::Scalar;

  /// C += A * B. A is m x kk (lda), B kk x n (ldb), C m x n (ldc).
  /// Register-tiled panel micro-kernel; per-element accumulation runs in k
  /// order, so results are reduction-order-identical across ISAs.
  void (*gemm_acc)(std::size_t m, std::size_t n, std::size_t kk, const double* a,
                   std::size_t lda, const double* b, std::size_t ldb, double* c,
                   std::size_t ldc);

  /// Upper triangle of C -= W^T W. W is k x n (ldw), C n x n (ldc). The
  /// caller mirrors the triangle if it needs the full matrix (Schur overlap
  /// elimination / decomposed-cone syrk shape).
  void (*syrk_sub_upper)(std::size_t n, std::size_t k, const double* w, std::size_t ldw,
                         double* c, std::size_t ldc);

  /// y[0..n) += f * x[0..n) — the fused scale-and-accumulate every rank-1
  /// row update rides on (Schur panels, Cholesky inverse, axpy).
  void (*axpy)(double f, const double* x, double* y, std::size_t n);

  /// y[0..n) -= f * a[0..n) + g * b[0..n) — the Householder two-sided
  /// rank-2 row update of the tridiagonalization.
  void (*sub_scaled2)(double f, const double* a, double g, const double* b, double* y,
                      std::size_t n);

  /// ADMM eigensplit reconstruction: splus = neg + u, xnew = rho * neg in
  /// one streaming pass over the block.
  void (*split_recombine)(const double* neg, const double* u, double rho, double* splus,
                          double* xnew, std::size_t n);

  /// Plain dot product (pure-sum reduction sites: Cholesky trailing syrk,
  /// Householder column norms, Frobenius inner products, gemv rows).
  double (*dot)(const double* a, const double* b, std::size_t n);

  /// s - sum_k a[k] * b[k]. Kept separate from dot because the scalar
  /// implementation must *alternate* subtractions (s -= a*b per term, the
  /// historical substitution order) to stay bit-identical, while vector
  /// implementations subtract one lane-reduced sum.
  double (*dot_sub)(double s, const double* a, const double* b, std::size_t n);

  /// Blocked-Cholesky trailing update A22 -= L21 * L21^T over the lower
  /// triangle. `base` points at the first trailing row's panel segment
  /// (= &l(t0, k0)): row r's multipliers are base[r*ld .. +kb) and its
  /// destination cells base[r*ld + kb + j] for j in [0, r]. Scalar is the
  /// historical per-element plain dot, subtracted once, bit for bit. Vector
  /// implementations may restructure freely (transpose + register-tiled
  /// GEMM) and MAY overwrite the dead strictly-upper cells (j > r) of the
  /// trailing block with unspecified values — the factorization zeroes the
  /// strict upper triangle on success, so only the lower triangle is
  /// contractual.
  void (*chol_trailing_update)(std::size_t ntrail, std::size_t kb, double* base,
                               std::size_t ld);

  /// One blocked-Cholesky panel round minus the trailing update: factor the
  /// kb x kb diagonal block in place (rows 0..kb of `block`, stride ldb,
  /// dots over the leading [0, j) columns), then solve the nrows trailing
  /// rows (rows kb..kb+nrows of the same panel) against it. Returns false on
  /// a non-positive or non-finite pivot. Scalar preserves the historical
  /// element order (alternating dot_sub, *inv inside the block, /pivot in
  /// the trailing solve) bit for bit; vector implementations walk columns
  /// outer and batch rows so the short panel-width reductions share loads
  /// and pay one dispatch per panel instead of one per element.
  bool (*chol_factor_panel)(std::size_t kb, std::size_t nrows, double* block,
                            std::size_t ldb);

  /// In-place forward substitution: solve L x = b for lower-triangular L
  /// (n x n, ldl), x = b on entry.
  void (*trsv_lower)(std::size_t n, const double* l, std::size_t ldl, double* x);

  /// In-place back substitution: solve L^T x = b, x = b on entry.
  void (*trsv_lower_t)(std::size_t n, const double* l, std::size_t ldl, double* x);

  // --- FP32 variants (mixed-precision Schur factorization: twice the
  // lanes; accuracy is recovered by FP64 iterative refinement in the IPM).
  float (*dot_f32)(const float* a, const float* b, std::size_t n);
  float (*dot_sub_f32)(float s, const float* a, const float* b, std::size_t n);
  void (*axpy_f32)(float f, const float* x, float* y, std::size_t n);
};

/// The always-compiled scalar reference table.
const Kernels& scalar_kernels();

/// Table for `isa`, or nullptr when the build did not compile it in or the
/// hardware cannot run it. scalar always resolves.
const Kernels* kernels_for(util::SimdIsa isa);

/// The table resolved at startup: strongest ISA that is compiled in AND
/// hardware-supported, clamped by the SOSLOCK_SIMD override.
const Kernels& active_kernels();
util::SimdIsa active_isa();

/// Swap the dispatched table (tests and the scalar-vs-SIMD bench A/B). Not
/// thread-safe: call only while no solver threads are running. Returns the
/// previously active ISA; requesting an unavailable ISA is a no-op.
util::SimdIsa set_active_isa(util::SimdIsa isa);

// Per-ISA table exporters. Each TU is compiled with (only) its own ISA
// flags and returns nullptr when the build lacks them (e.g. the NEON TU on
// x86), so dispatch never needs build-system knowledge beyond the file
// list. Exposed for the dispatcher and the parity suite, not for callers.
const Kernels* kernels_avx2();
const Kernels* kernels_avx512();
const Kernels* kernels_neon();

}  // namespace soslock::linalg
