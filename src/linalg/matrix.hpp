#pragma once
// Dense linear algebra kernel used by the interior-point SDP solver.
// Row-major double matrices; sizes in this library are small-to-medium
// (Gram blocks up to a few hundred, Schur complements up to a few thousand),
// so a straightforward dense implementation is appropriate.
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

namespace soslock::linalg {

using Vector = std::vector<double>;

/// Minimal 64-byte-aligned allocator for matrix storage: one cache line and
/// the widest vector register (AVX-512) share that bound, so the SIMD
/// kernels' loads never split cache lines and aligned stores are legal on
/// row 0 regardless of what the default allocator felt like returning.
template <class T>
struct AlignedAlloc {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAlloc() = default;
  template <class U>
  AlignedAlloc(const AlignedAlloc<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(kAlignment)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(kAlignment));
  }
  template <class U>
  bool operator==(const AlignedAlloc<U>&) const {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAlloc<U>&) const {
    return false;
  }
};

/// Contiguous 64-byte-aligned double storage (Matrix backing store; also the
/// FP32 Cholesky factor uses the float instantiation).
using AlignedVector = std::vector<double, AlignedAlloc<double>>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    assert(data_.empty() ||
           reinterpret_cast<std::uintptr_t>(data_.data()) % AlignedAlloc<double>::kAlignment == 0);
  }

  static Matrix identity(std::size_t n);
  /// Diagonal matrix from vector.
  static Matrix diag(const Vector& d);
  /// Build from an initializer-style nested vector (row-major).
  static Matrix from_rows(const std::vector<Vector>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  Matrix transposed() const;
  /// Symmetrize in place: A <- (A + A^T)/2. Requires square.
  void symmetrize();
  void fill(double value);
  void scale(double s);

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);

  /// A += s * B
  void axpy(double s, const Matrix& b);

  std::string str(int precision = 4) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  AlignedVector data_;
};

// --- Matrix/vector algebra -------------------------------------------------

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(double s, Matrix a);
Matrix operator*(const Matrix& a, const Matrix& b);
Vector operator*(const Matrix& a, const Vector& x);

/// y = A^T x
Vector transposed_times(const Matrix& a, const Vector& x);
/// C = A^T * B
Matrix transposed_times(const Matrix& a, const Matrix& b);
/// C = A * B^T
Matrix times_transposed(const Matrix& a, const Matrix& b);
/// C -= W^T W for W (k x n), C (n x n) symmetric: computes the upper
/// triangle only and mirrors — the syrk shape (half the GEMM flops) that
/// keeps the backends' overlap-multiplier block elimination flop-neutral
/// with factoring the extended system.
void subtract_gram(Matrix& c, const Matrix& w);

/// Frobenius inner product <A, B> = sum_ij A_ij B_ij.
double dot(const Matrix& a, const Matrix& b);
double dot(const Vector& a, const Vector& b);

double norm2(const Vector& v);
double norm_inf(const Vector& v);
double frobenius_norm(const Matrix& a);
/// max_ij |A_ij|
double norm_inf(const Matrix& a);

Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(double s, Vector a);
/// y += s * x
void axpy(double s, const Vector& x, Vector& y);

/// Maximum |a_i - b_i|; vectors must be the same length.
double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace soslock::linalg
