#include "linalg/qr.hpp"

#include <cmath>

namespace soslock::linalg {

Qr Qr::factor(const Matrix& a) {
  assert(a.rows() >= a.cols());
  Qr f;
  f.qr_ = a;
  const std::size_t m = a.rows(), n = a.cols();
  f.tau_.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += f.qr_(i, k) * f.qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    const double alpha = f.qr_(k, k) >= 0.0 ? -norm : norm;
    // v = x - alpha e1, normalized so v[k] = 1.
    const double vk = f.qr_(k, k) - alpha;
    if (vk == 0.0) {
      f.qr_(k, k) = alpha;
      continue;
    }
    for (std::size_t i = k + 1; i < m; ++i) f.qr_(i, k) /= vk;
    f.tau_[k] = -vk / alpha;  // tau = 2 / (v^T v) with this normalization
    f.qr_(k, k) = alpha;
    // Apply reflector to remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = f.qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += f.qr_(i, k) * f.qr_(i, j);
      s *= f.tau_[k];
      f.qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) f.qr_(i, j) -= f.qr_(i, k) * s;
    }
  }
  return f;
}

Vector Qr::q_transpose_times(const Vector& b) const {
  const std::size_t m = qr_.rows(), n = qr_.cols();
  assert(b.size() == m);
  Vector y = b;
  for (std::size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= tau_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= qr_(i, k) * s;
  }
  return y;
}

Vector Qr::solve_least_squares(const Vector& b) const {
  const std::size_t n = qr_.cols();
  Vector y = q_transpose_times(b);
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= qr_(ii, k) * x[k];
    const double r = qr_(ii, ii);
    x[ii] = std::fabs(r) > 1e-300 ? s / r : 0.0;
  }
  return x;
}

std::size_t Qr::rank(double rel_tol) const {
  const std::size_t n = qr_.cols();
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) max_diag = std::max(max_diag, std::fabs(qr_(i, i)));
  if (max_diag == 0.0) return 0;
  std::size_t r = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (std::fabs(qr_(i, i)) > rel_tol * max_diag) ++r;
  return r;
}

Matrix Qr::r() const {
  const std::size_t n = qr_.cols();
  Matrix r(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) r(i, j) = qr_(i, j);
  return r;
}

}  // namespace soslock::linalg
