#include "linalg/kernels.hpp"

#include <cmath>

#include "util/log.hpp"

namespace soslock::linalg {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are the pre-dispatch loop nests moved
// behind the seam verbatim — same tiling, same accumulation order, no FMA —
// so the scalar table is bit-identical to the historical results and serves
// as the reference the parity suite checks every vector table against.
// ---------------------------------------------------------------------------

constexpr std::size_t kMr = 4;  // C tile rows
constexpr std::size_t kNr = 8;  // C tile cols

void s_gemm_acc(std::size_t m, std::size_t n, std::size_t kk, const double* a,
                std::size_t lda, const double* b, std::size_t ldb, double* c,
                std::size_t ldc) {
  std::size_t j0 = 0;
  for (; j0 + kNr <= n; j0 += kNr) {
    std::size_t i0 = 0;
    for (; i0 + kMr <= m; i0 += kMr) {
      double acc[kMr][kNr] = {};
      const double* a0 = a + i0 * lda;
      const double* a1 = a0 + lda;
      const double* a2 = a1 + lda;
      const double* a3 = a2 + lda;
      for (std::size_t k = 0; k < kk; ++k) {
        const double* bk = b + k * ldb + j0;
        const double f0 = a0[k], f1 = a1[k], f2 = a2[k], f3 = a3[k];
        for (std::size_t jj = 0; jj < kNr; ++jj) {
          const double bj = bk[jj];
          acc[0][jj] += f0 * bj;
          acc[1][jj] += f1 * bj;
          acc[2][jj] += f2 * bj;
          acc[3][jj] += f3 * bj;
        }
      }
      for (std::size_t r = 0; r < kMr; ++r) {
        double* cr = c + (i0 + r) * ldc + j0;
        for (std::size_t jj = 0; jj < kNr; ++jj) cr[jj] += acc[r][jj];
      }
    }
    for (; i0 < m; ++i0) {  // remainder rows, full-width tile
      double acc[kNr] = {};
      const double* ai = a + i0 * lda;
      for (std::size_t k = 0; k < kk; ++k) {
        const double* bk = b + k * ldb + j0;
        const double f = ai[k];
        for (std::size_t jj = 0; jj < kNr; ++jj) acc[jj] += f * bk[jj];
      }
      double* cr = c + i0 * ldc + j0;
      for (std::size_t jj = 0; jj < kNr; ++jj) cr[jj] += acc[jj];
    }
  }
  if (j0 < n) {  // remainder columns (< kNr wide)
    const std::size_t nr = n - j0;
    for (std::size_t i = 0; i < m; ++i) {
      double acc[kNr] = {};
      const double* ai = a + i * lda;
      for (std::size_t k = 0; k < kk; ++k) {
        const double* bk = b + k * ldb + j0;
        const double f = ai[k];
        for (std::size_t jj = 0; jj < nr; ++jj) acc[jj] += f * bk[jj];
      }
      double* cr = c + i * ldc + j0;
      for (std::size_t jj = 0; jj < nr; ++jj) cr[jj] += acc[jj];
    }
  }
}

void s_syrk_sub_upper(std::size_t n, std::size_t k, const double* w, std::size_t ldw,
                      double* c, std::size_t ldc) {
  // Rank-1 accumulation over the rows of W, upper triangle only; the
  // zero-skip matches the historical subtract_gram (sparse coefficient rows
  // are common in the Schur overlap panels).
  for (std::size_t a = 0; a < k; ++a) {
    const double* wr = w + a * ldw;
    for (std::size_t i = 0; i < n; ++i) {
      const double f = wr[i];
      if (f == 0.0) continue;
      double* ci = c + i * ldc;
      for (std::size_t j = i; j < n; ++j) ci[j] -= f * wr[j];
    }
  }
}

void s_axpy(double f, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += f * x[i];
}

void s_sub_scaled2(double f, const double* a, double g, const double* b, double* y,
                   std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) y[k] -= f * a[k] + g * b[k];
}

void s_split_recombine(const double* neg, const double* u, double rho, double* splus,
                       double* xnew, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    splus[i] = neg[i] + u[i];
    xnew[i] = rho * neg[i];
  }
}

double s_dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double s_dot_sub(double s, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) s -= a[i] * b[i];
  return s;
}

void s_chol_trailing_update(std::size_t ntrail, std::size_t kb, double* base,
                            std::size_t ld) {
  // One plain dot per lower-triangle element, subtracted once — the
  // historical trailing-syrk loop verbatim. Touches nothing above the
  // diagonal of the trailing block.
  for (std::size_t r = 0; r < ntrail; ++r) {
    const double* pr = base + r * ld;
    double* dr = base + r * ld + kb;
    for (std::size_t j = 0; j <= r; ++j) dr[j] -= s_dot(pr, base + j * ld, kb);
  }
}

bool s_chol_factor_panel(std::size_t kb, std::size_t nrows, double* block,
                         std::size_t ldb) {
  // Unblocked diagonal-block factor, then the row-by-row panel solve — the
  // historical loops verbatim (alternating dot_sub order, *inv in the block,
  // /pivot in the trailing rows).
  for (std::size_t j = 0; j < kb; ++j) {
    double* lj = block + j * ldb;
    const double d = s_dot_sub(lj[j], lj, lj, j);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    lj[j] = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < kb; ++i) {
      double* li = block + i * ldb;
      li[j] = s_dot_sub(li[j], li, lj, j) * inv;
    }
  }
  for (std::size_t r = kb; r < kb + nrows; ++r) {
    double* ri = block + r * ldb;
    for (std::size_t j = 0; j < kb; ++j) {
      const double* lj = block + j * ldb;
      ri[j] = s_dot_sub(ri[j], ri, lj, j) / lj[j];
    }
  }
  return true;
}

void s_trsv_lower(std::size_t n, const double* l, std::size_t ldl, double* x) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l + i * ldl;
    double s = x[i];
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * x[k];
    x[i] = s / li[i];
  }
}

void s_trsv_lower_t(std::size_t n, const double* l, std::size_t ldl, double* x) {
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l[k * ldl + ii] * x[k];
    x[ii] = s / l[ii * ldl + ii];
  }
}

float s_dot_f32(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float s_dot_sub_f32(float s, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) s -= a[i] * b[i];
  return s;
}

void s_axpy_f32(float f, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += f * x[i];
}

Kernels make_scalar() {
  Kernels k;
  k.isa = util::SimdIsa::Scalar;
  k.gemm_acc = &s_gemm_acc;
  k.syrk_sub_upper = &s_syrk_sub_upper;
  k.axpy = &s_axpy;
  k.sub_scaled2 = &s_sub_scaled2;
  k.split_recombine = &s_split_recombine;
  k.dot = &s_dot;
  k.dot_sub = &s_dot_sub;
  k.chol_trailing_update = &s_chol_trailing_update;
  k.chol_factor_panel = &s_chol_factor_panel;
  k.trsv_lower = &s_trsv_lower;
  k.trsv_lower_t = &s_trsv_lower_t;
  k.dot_f32 = &s_dot_f32;
  k.dot_sub_f32 = &s_dot_sub_f32;
  k.axpy_f32 = &s_axpy_f32;
  return k;
}

// ---------------------------------------------------------------------------
// Dispatch: strongest compiled-in + hardware-supported ISA, clamped by the
// SOSLOCK_SIMD override, resolved once on first use.
// ---------------------------------------------------------------------------

const Kernels* startup_table() {
  util::SimdIsa want;
  const bool overridden = util::simd_override(want);
  if (!overridden) want = util::detected_isa();
  for (int i = static_cast<int>(want); i > 0; --i) {
    if (const Kernels* t = kernels_for(static_cast<util::SimdIsa>(i))) {
      if (overridden && t->isa != want) {
        util::log_warn("SOSLOCK_SIMD=", util::isa_name(want),
                       " unavailable on this build/CPU; using ", util::isa_name(t->isa));
      }
      return t;
    }
  }
  if (overridden && want != util::SimdIsa::Scalar) {
    util::log_warn("SOSLOCK_SIMD=", util::isa_name(want),
                   " unavailable on this build/CPU; using scalar");
  }
  return &scalar_kernels();
}

const Kernels*& active_slot() {
  static const Kernels* slot = startup_table();
  return slot;
}

}  // namespace

const Kernels& scalar_kernels() {
  static const Kernels k = make_scalar();
  return k;
}

const Kernels* kernels_for(util::SimdIsa isa) {
  switch (isa) {
    case util::SimdIsa::Scalar:
      return &scalar_kernels();
    case util::SimdIsa::Neon: {
      const Kernels* t = kernels_neon();
      return (t != nullptr && util::cpu_supports(isa)) ? t : nullptr;
    }
    case util::SimdIsa::Avx2: {
      const Kernels* t = kernels_avx2();
      return (t != nullptr && util::cpu_supports(isa)) ? t : nullptr;
    }
    case util::SimdIsa::Avx512: {
      const Kernels* t = kernels_avx512();
      return (t != nullptr && util::cpu_supports(isa)) ? t : nullptr;
    }
  }
  return nullptr;
}

const Kernels& active_kernels() { return *active_slot(); }

util::SimdIsa active_isa() { return active_slot()->isa; }

util::SimdIsa set_active_isa(util::SimdIsa isa) {
  const util::SimdIsa prev = active_slot()->isa;
  if (const Kernels* t = kernels_for(isa)) active_slot() = t;
  return prev;
}

}  // namespace soslock::linalg
