// NEON kernel table. Double-precision NEON (float64x2_t) is baseline on
// aarch64, so this TU needs no special compile flags there; on every other
// architecture it compiles to the nullptr exporter and dispatch falls back
// to scalar.
#include "linalg/kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "linalg/kernels_simd.hpp"

namespace soslock::linalg {
namespace {

struct VecNeonD {
  static constexpr std::size_t W = 2;
  using elem = double;
  using vec = float64x2_t;
  static vec zero() { return vdupq_n_f64(0.0); }
  static vec set1(double x) { return vdupq_n_f64(x); }
  static vec loadu(const double* p) { return vld1q_f64(p); }
  static void storeu(double* p, vec v) { vst1q_f64(p, v); }
  static vec add(vec a, vec b) { return vaddq_f64(a, b); }
  static vec mul(vec a, vec b) { return vmulq_f64(a, b); }
  // vfmaq_f64(c, a, b) = c + a * b (fused); vfmsq is the fused c - a * b.
  static vec fmadd(vec a, vec b, vec c) { return vfmaq_f64(c, a, b); }
  static vec fnmadd(vec a, vec b, vec c) { return vfmsq_f64(c, a, b); }
  static double reduce_add(vec v) { return vaddvq_f64(v); }
};

struct VecNeonS {
  static constexpr std::size_t W = 4;
  using elem = float;
  using vec = float32x4_t;
  static vec zero() { return vdupq_n_f32(0.0f); }
  static vec set1(float x) { return vdupq_n_f32(x); }
  static vec loadu(const float* p) { return vld1q_f32(p); }
  static void storeu(float* p, vec v) { vst1q_f32(p, v); }
  static vec add(vec a, vec b) { return vaddq_f32(a, b); }
  static vec mul(vec a, vec b) { return vmulq_f32(a, b); }
  static vec fmadd(vec a, vec b, vec c) { return vfmaq_f32(c, a, b); }
  static vec fnmadd(vec a, vec b, vec c) { return vfmsq_f32(c, a, b); }
  static float reduce_add(vec v) { return vaddvq_f32(v); }
};

}  // namespace

const Kernels* kernels_neon() {
  static const Kernels k = simd_detail::make_table<VecNeonD, VecNeonS>(util::SimdIsa::Neon);
  return &k;
}

}  // namespace soslock::linalg

#else

namespace soslock::linalg {
const Kernels* kernels_neon() { return nullptr; }
}  // namespace soslock::linalg

#endif
