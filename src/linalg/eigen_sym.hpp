#pragma once
// Symmetric eigensolvers. Used for:
//  * exact maximum step length to the PSD cone boundary in the IPM,
//  * the ADMM's per-block projection onto the PSD cone (dominant cost of
//    first-order solves on large Gram blocks),
//  * Gram-matrix PSD margins in the independent certificate checker,
//  * extracting SOS decompositions (square roots of Gram matrices).
//
// The production path (eigen_sym / eigen_values_sym) is Householder
// tridiagonalization followed by implicit-shift QL: one O(n^3)
// tridiagonalization plus an O(n^2)-per-eigenvalue QL sweep, an order of
// magnitude faster than cyclic Jacobi (O(n^3) *per sweep*, many sweeps) at
// the block sizes the ADMM sees. The Jacobi path is kept as a reference
// implementation (eigen_sym_jacobi), selectable for parity tests and as the
// fallback on the (never observed) QL non-convergence path.
#include "linalg/matrix.hpp"

namespace soslock::linalg {

struct EigenSym {
  Vector values;   // ascending
  Matrix vectors;  // columns are eigenvectors, A = V diag(values) V^T
};

/// Full symmetric eigendecomposition: Householder tridiagonalization +
/// implicit-shift QL. Falls back to the Jacobi reference if QL fails to
/// converge (50 implicit shifts per eigenvalue, which does not happen on
/// finite input).
EigenSym eigen_sym(const Matrix& a);

/// Eigenvalues only (ascending): skips the eigenvector accumulation, which
/// is most of the work of eigen_sym. The fast path behind min_eigenvalue.
Vector eigen_values_sym(const Matrix& a);

/// Reference implementation via cyclic Jacobi rotations. Slow; kept for
/// parity tests and as the eigen_sym fallback.
EigenSym eigen_sym_jacobi(const Matrix& a, double tol = 1e-12, int max_sweeps = 64);

/// Smallest eigenvalue only (values-only tridiagonal QL; no vectors).
double min_eigenvalue(const Matrix& a);

/// Symmetric square root A^{1/2} (clamps tiny negative eigenvalues to 0).
Matrix sqrt_psd(const Matrix& a);

}  // namespace soslock::linalg
