#pragma once
// Symmetric eigensolver (cyclic Jacobi). Used for:
//  * exact maximum step length to the PSD cone boundary in the IPM,
//  * Gram-matrix PSD margins in the independent certificate checker,
//  * extracting SOS decompositions (square roots of Gram matrices).
#include "linalg/matrix.hpp"

namespace soslock::linalg {

struct EigenSym {
  Vector values;   // ascending
  Matrix vectors;  // columns are eigenvectors, A = V diag(values) V^T
};

/// Full symmetric eigendecomposition via cyclic Jacobi rotations.
EigenSym eigen_sym(const Matrix& a, double tol = 1e-12, int max_sweeps = 64);

/// Smallest eigenvalue only (still runs Jacobi; convenience wrapper).
double min_eigenvalue(const Matrix& a);

/// Symmetric square root A^{1/2} (clamps tiny negative eigenvalues to 0).
Matrix sqrt_psd(const Matrix& a);

}  // namespace soslock::linalg
