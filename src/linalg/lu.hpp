#pragma once
// LU factorization with partial pivoting, for general square solves
// (jump-map composition, equilibrium computation, least-squares normal
// equations fallback).
#include <optional>

#include "linalg/matrix.hpp"

namespace soslock::linalg {

class Lu {
 public:
  /// Factor PA = LU. Returns nullopt when the matrix is numerically singular.
  static std::optional<Lu> factor(const Matrix& a);

  Vector solve(const Vector& b) const;
  Matrix solve(const Matrix& b) const;
  /// |det A|; sign tracked through the permutation parity.
  double det() const;

 private:
  Matrix lu_;                  // packed L (unit diag, below) and U (on/above)
  std::vector<std::size_t> perm_;
  int sign_ = 1;
};

/// Solve A x = b, throwing std::runtime_error on singular input.
Vector solve(const Matrix& a, const Vector& b);
/// Inverse via LU; intended for small matrices only.
Matrix inverse(const Matrix& a);

}  // namespace soslock::linalg
