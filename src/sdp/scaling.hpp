#pragma once
// Row equilibration for SDP data. SOS coefficient-matching rows mix monomial
// scales that can span many orders of magnitude; normalizing each row to unit
// infinity-norm keeps the Schur complement well conditioned.
#include "sdp/problem.hpp"

namespace soslock::sdp {

/// Per-row scale factors applied to a problem (rows divided by `row_scale`).
struct Scaling {
  linalg::Vector row_scale;  // original_row = row_scale[i] * scaled_row
};

/// Scale rows of `p` in place to unit infinity norm; returns the scaling
/// applied. Dual variables y of the scaled problem relate to the original by
/// y_orig = y_scaled / row_scale (the primal solution is unchanged).
Scaling equilibrate_rows(Problem& p);

}  // namespace soslock::sdp
