#pragma once
// Row equilibration for SDP data. SOS coefficient-matching rows mix monomial
// scales that can span many orders of magnitude; normalizing each row to unit
// infinity-norm keeps the Schur complement well conditioned.
#include "sdp/problem.hpp"

namespace soslock::sdp {

/// Per-row scale factors applied to a problem (rows divided by `row_scale`).
struct Scaling {
  linalg::Vector row_scale;  // original_row = row_scale[i] * scaled_row
};

/// Rows whose infinity norm is at or below this are treated as degenerate
/// (all-zero up to roundoff, e.g. after aggressive Gram pruning) and left
/// unscaled — normalizing them would amplify noise to O(1) and can produce
/// inf/NaN scale factors that poison the warm-start dual rescale.
inline constexpr double kMinRowNorm = 1e-12;

/// Scale rows of `p` in place to unit infinity norm; returns the scaling
/// applied. Dual variables y of the scaled problem relate to the original by
/// y_orig = y_scaled / row_scale (the primal solution is unchanged).
/// Degenerate rows (norm <= kMinRowNorm) keep scale 1.
Scaling equilibrate_rows(Problem& p);

}  // namespace soslock::sdp
