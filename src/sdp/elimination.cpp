#include "sdp/elimination.hpp"

#include <cassert>

namespace soslock::sdp {

using linalg::Cholesky;
using linalg::Matrix;
using linalg::Vector;

Matrix OverlapElimination::reduce(const Matrix& full, std::size_t m, std::size_t q,
                                  double corner_shift) {
  assert(full.rows() == m + q && full.cols() == m + q);
  m_ = m;
  q_ = q;
  Matrix qmat(q, q);
  for (std::size_t a = 0; a < q; ++a)
    for (std::size_t b = 0; b < q; ++b) qmat(a, b) = full(m + a, m + b);
  chol_q_ = Cholesky::factor_shifted(qmat, corner_shift);
  w_ = Matrix(q, m);
  Vector col(q);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t a = 0; a < q; ++a) col[a] = full(i, m + a);
    const Vector sol = chol_q_.solve_lower(col);
    for (std::size_t a = 0; a < q; ++a) w_(a, i) = sol[a];
  }
  Matrix reduced(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t k = 0; k < m; ++k) reduced(i, k) = full(i, k);
  linalg::subtract_gram(reduced, w_);
  return reduced;
}

Vector OverlapElimination::fold_rhs(const Vector& rb, Vector& ra) const {
  assert(rb.size() == q_ && ra.size() == m_);
  const Vector t = chol_q_.solve_lower(rb);
  for (std::size_t o = 0; o < q_; ++o) {
    const double f = t[o];
    if (f == 0.0) continue;
    const double* wr = w_.row_ptr(o);
    for (std::size_t i = 0; i < m_; ++i) ra[i] -= f * wr[i];
  }
  return t;
}

Vector OverlapElimination::multipliers(const Vector& t, const Vector& y) const {
  assert(t.size() == q_ && y.size() >= m_);
  Vector u = t;
  for (std::size_t o = 0; o < q_; ++o) {
    const double* wr = w_.row_ptr(o);
    double acc = 0.0;
    for (std::size_t i = 0; i < m_; ++i) acc += wr[i] * y[i];
    u[o] -= acc;
  }
  return chol_q_.solve_lower_transposed(u);
}

}  // namespace soslock::sdp
