#pragma once
// Subtree partitioner for the asynchronous clique-parallel ADMM driver: maps
// every PSD block of a lowered problem to a worker id so each worker owns a
// contiguous run of clique-tree subtrees (plus a share of the undecomposed
// blocks) balanced by estimated projection flops. The assignment is computed
// once per structure by the lowering pipeline's "partition" pass (recorded in
// PassRecord provenance and cached on ProblemStructure), or on the fly by the
// driver when the lowering did not run the pass.
//
// Invariants (checked by sdp::verify's "partition-range"/"partition-order"):
//  * block_worker has one entry per problem block, each < workers;
//  * along each decomposed cone's clique order (a clique-tree preorder by
//    construction, see sdp/chordal), worker ids are non-decreasing — each
//    worker's share of a cone is one contiguous preorder segment, so the
//    separator mailboxes a worker needs touch at most two neighbors per cone.
#include <cstddef>
#include <string>
#include <vector>

#include "sdp/problem.hpp"

namespace soslock::sdp {

/// Result of partition_subtrees: a worker id per problem block.
struct SubtreePartition {
  std::size_t workers = 0;
  /// block index -> worker id in [0, workers). Every block gets an id, also
  /// blocks of size 0 and blocks outside any decomposed cone.
  std::vector<std::size_t> block_worker;
  /// Human-readable summary for PassRecord::detail.
  std::string detail;

  bool empty() const { return block_worker.empty(); }
};

/// Assign blocks to `workers` workers (>= 1; counts are not resolved here —
/// pass an explicit worker count). Decomposed cones are cut along their
/// clique preorder into flops-balanced contiguous segments; blocks outside
/// any cone are spread greedily onto the least-loaded workers. Cost model:
/// the per-iteration eigendecomposition of an n x n block, ~n^3.
SubtreePartition partition_subtrees(const Problem& problem, std::size_t workers);

}  // namespace soslock::sdp
