#include "sdp/ipm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "sdp/elimination.hpp"
#include "sdp/structure.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace soslock::sdp {
namespace {

using linalg::Cholesky;
using linalg::Matrix;
using linalg::Vector;

/// Per-iteration state of the IPM. With native decomposed cones, y is
/// extended: entries [0, m) are the equality-row multipliers and entries
/// [m, m+q) are the overlap-coupling multipliers (ALM-style: they accumulate
/// Newton corrections every iteration and are the dual price of clique-copy
/// consistency). Only the first m entries leave the solver.
struct State {
  std::vector<Matrix> x, z;  // PSD primal blocks and dual slacks
  Vector y;                  // equality + overlap multipliers (m + q)
  Vector w;                  // free variables
};

/// T = L^{-1} S L^{-T} for symmetric S given the Cholesky factor L.
Matrix congruence_inv(const Cholesky& chol, const Matrix& s) {
  const std::size_t n = s.rows();
  // First F = L^{-1} S: forward substitution applied to each column of S.
  Matrix f(n, n);
  Vector col(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = s(i, j);
    const Vector sol = chol.solve_lower(col);
    for (std::size_t i = 0; i < n; ++i) f(i, j) = sol[i];
  }
  // Then T = F L^{-T}: T^T = L^{-1} F^T.
  Matrix t(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = f(j, i);
    const Vector sol = chol.solve_lower(col);
    for (std::size_t i = 0; i < n; ++i) t(j, i) = sol[i];
  }
  t.symmetrize();
  return t;
}

/// Largest alpha in (0, cap] with X + alpha*dX PSD, given chol(X).
double max_step(const Cholesky& chol_x, const Matrix& dx, double cap) {
  if (dx.rows() == 0) return cap;
  const Matrix s = congruence_inv(chol_x, dx);
  const double lambda_min = linalg::min_eigenvalue(s);
  if (lambda_min >= -1e-13) return cap;
  return std::min(cap, -1.0 / lambda_min);
}

/// Z^{-1} * S for symmetric S using chol(Z) (not symmetric in general).
Matrix solve_all_columns(const Cholesky& chol, const Matrix& s) {
  const std::size_t n = s.rows();
  Matrix out(n, n);
  Vector col(n);
  for (std::size_t j = 0; j < s.cols(); ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = s(i, j);
    const Vector sol = chol.solve(col);
    for (std::size_t i = 0; i < n; ++i) out(i, j) = sol[i];
  }
  return out;
}

struct Residuals {
  Vector rp;                 // primal: b - A(X) - B w
  std::vector<Matrix> rd;    // dual: C - Z - sum_i y_i A_i
  Vector rf;                 // free: f - B^T y
  double rp_rel = 0.0, rd_rel = 0.0, rf_rel = 0.0;
};

/// The factored (reduced) Schur system behind the KKT solves: a plain FP64
/// Cholesky, or — under IpmOptions::mixed_precision — an FP32 factor whose
/// solves are recovered to FP64 accuracy by iterative refinement against the
/// retained FP64 matrix. When the FP32 factorization breaks down (genuinely,
/// or via the sdp.ipm.fp32-factorization fault site) or refinement fails to
/// contract within the step budget, the solve falls back to the FP64
/// factorization for the remainder of this Ipm solve — recorded as a
/// RecoveryRecord{action="fp32-fallback"} plus MixedPrecisionStats, never a
/// less accurate answer.
class SchurFactor {
 public:
  SchurFactor(const IpmOptions& opt, MixedPrecisionStats& stats,
              std::vector<RecoveryRecord>& recoveries, bool& fp32_disabled)
      : opt_(opt), stats_(stats), recoveries_(recoveries), fp32_disabled_(fp32_disabled) {}

  void factor(const Matrix& a, double initial_rel_shift) {
    if (!opt_.mixed_precision || fp32_disabled_) {
      chol_ = Cholesky::factor_shifted(a, initial_rel_shift);
      use_fp32_ = false;
      return;
    }
    mat_ = a;  // the FP64 operator the refinement residuals run against
    mat_norm_ = linalg::norm_inf(mat_);
    double scale = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) scale = std::max(scale, std::fabs(a(i, i)));
    if (scale <= 0.0) scale = 1.0;
    bool ok = false;
    try {
      SOSLOCK_FAULT_POINT(util::fault_site::kIpmFp32Factor);
      ok = chol32_.factor(mat_, initial_rel_shift * scale);
    } catch (const util::FaultInjectedError&) {
      ok = false;
    }
    if (ok) {
      use_fp32_ = true;
      ++stats_.fp32_factorizations;
    } else {
      fall_back("fp32 Schur factorization failed");
    }
  }

  Vector solve(const Vector& b) {
    if (!use_fp32_) return chol_.solve(b);
    Vector x = chol32_.solve(b);
    const double target =
        1e-13 * (mat_norm_ * linalg::norm_inf(x) + linalg::norm_inf(b) + 1.0);
    double prev = std::numeric_limits<double>::infinity();
    int steps = 0;
    while (true) {
      Vector r = b;
      linalg::axpy(-1.0, mat_ * x, r);
      const double rn = linalg::norm_inf(r);
      if (rn <= target) break;
      // Refinement with an FP32 factor contracts the residual geometrically
      // while kappa(M) stays within single-precision reach; a step that
      // stops halving it (or an exhausted budget) means the central path has
      // outrun FP32 — switch to the FP64 factor for the rest of the solve.
      if (steps >= opt_.max_refinement_steps || !(rn < 0.5 * prev)) {
        fall_back("FP64 refinement stagnated");
        return chol_.solve(b);
      }
      prev = rn;
      linalg::axpy(1.0, chol32_.solve(r), x);
      ++steps;
      ++stats_.refinement_steps;
    }
    stats_.max_refinement_steps = std::max(stats_.max_refinement_steps, steps);
    return x;
  }

  Matrix solve(const Matrix& b) {
    if (!use_fp32_) return chol_.solve(b);
    Matrix x(b.rows(), b.cols());
    Vector col(b.rows());
    for (std::size_t j = 0; j < b.cols(); ++j) {
      for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
      const Vector sol = solve(col);
      for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
    }
    return x;
  }

 private:
  void fall_back(const char* reason) {
    // Sticky for the remainder of this Ipm solve: once the iterate is too
    // ill-conditioned for FP32, later iterations only get worse, and
    // re-attempting would pay both factorizations every step.
    fp32_disabled_ = true;
    use_fp32_ = false;
    ++stats_.fp64_fallbacks;
    recoveries_.push_back(RecoveryRecord{"fp32-fallback", "ipm-fp32-schur",
                                         "ipm-fp64-schur", reason,
                                         stats_.fp64_fallbacks});
    util::log_debug("ipm: mixed precision off for this solve (", reason, ")");
    chol_ = Cholesky::factor_shifted(mat_, 1e-13);
  }

  const IpmOptions& opt_;
  MixedPrecisionStats& stats_;
  std::vector<RecoveryRecord>& recoveries_;
  bool& fp32_disabled_;
  Cholesky chol_;
  linalg::Cholesky32 chol32_;
  Matrix mat_;  // FP64 reduced Schur matrix; only kept on the FP32 path
  double mat_norm_ = 0.0;
  bool use_fp32_ = false;
};

class Ipm {
 public:
  Ipm(const Problem& p, const IpmOptions& opt, SolveContext& ctx,
      std::shared_ptr<const ProblemStructure> structure)
      : p_(p), opt_(opt), ctx_(ctx), structure_(std::move(structure)),
        pool_(opt.threads) {
    m_ = p_.num_rows();
    nf_ = p_.num_free();
    nblocks_ = p_.num_blocks();
    total_dim_ = p_.total_psd_dim();
    // Row -> block incidence comes from the (possibly cached) structure; the
    // flat per-row coefficient views are rebuilt per solve (they point into
    // this problem instance) but reuse the cached pattern, so the hot loops
    // below never consult the per-row std::map.
    views_ = build_block_row_views(p_, *structure_);
    // Native decomposed cones: their overlap couplings enter the iteration
    // as *virtual rows* with indices [m, m+q) — they share all the residual
    // and Schur-panel machinery of real rows — but they are never part of
    // the factored Schur complement: step() block-eliminates their (q x q)
    // corner, so the dense factor stays m x m and their multipliers update
    // ALM-style alongside the Newton step.
    overlap_rows_ = append_overlap_views(p_, views_);
    q_ = overlap_rows_.size();
    mext_ = m_ + q_;
    // Schur assembly order: per block, views sorted densest-first
    // (SDPA-style). Row i at sorted position p pairs with every k at
    // position q >= p, and the O(nnz_k) inner product always reads the
    // *later* (sparser) row's triplets, so the dense rows' triplet loops run
    // as rarely as possible. Stable tie-break keeps the order deterministic.
    schur_order_.resize(nblocks_);
    for (std::size_t j = 0; j < nblocks_; ++j) {
      auto& order = schur_order_[j];
      order.resize(views_[j].size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      const auto& touching = views_[j];
      std::stable_sort(order.begin(), order.end(),
                       [&touching](std::size_t a, std::size_t b) {
                         return touching[a].coeff->entries.size() >
                                touching[b].coeff->entries.size();
                       });
    }
    panel_scratch_.resize(std::max<std::size_t>(1, pool_.threads()));
    data_norm_ = 1.0;
    for (std::size_t i = 0; i < m_; ++i) data_norm_ = std::max(data_norm_, std::fabs(p_.rhs(i)));
    c_norm_ = 1.0;
    for (std::size_t j = 0; j < nblocks_; ++j)
      c_norm_ = std::max(c_norm_, linalg::norm_inf(p_.block_objective(j)));
    for (double fi : p_.free_objective()) c_norm_ = std::max(c_norm_, std::fabs(fi));
    // Free-variable coupling B (m x nf) is iteration-invariant: build it once
    // here instead of on every predictor-corrector step.
    bmat_ = Matrix(m_, std::max<std::size_t>(nf_, 1));
    if (nf_ > 0) {
      for (std::size_t i = 0; i < m_; ++i)
        for (const auto& [v, c] : p_.rows()[i].free_coeffs) bmat_(i, v) = c;
    }
  }

  Solution run() {
    mixed_.enabled = opt_.mixed_precision;
    Solution sol = run_inner();
    sol.phase = phase_;
    sol.mixed = mixed_;
    sol.recoveries.insert(sol.recoveries.end(), recoveries_.begin(),
                          recoveries_.end());
    // The dense Schur factor never contains overlap couplings: m rows, with
    // or without decomposed cones. (Seam conversions pay for their overlap
    // rows here — that is the geometry this telemetry exists to compare.)
    sol.schur_rows = m_;
    return sol;
  }

 private:
  Solution run_inner() {
    State s = initial_state();
    Solution best;
    double best_merit = std::numeric_limits<double>::infinity();
    int stagnant_iterations = 0;

    for (int iter = 0; iter < opt_.max_iterations; ++iter) {
      // Injected iterate poisoning: the NaN-leak failure mode the watchdog
      // below must catch.
      SOSLOCK_FAULT_HOOK(util::fault_site::kIterateNan, {
        if (!s.y.empty()) {
          s.y[0] = std::numeric_limits<double>::quiet_NaN();
        } else if (!s.x.empty() && s.x[0].rows() > 0) {
          s.x[0](0, 0) = std::numeric_limits<double>::quiet_NaN();
        }
      });
      const Residuals res = residuals(s);
      const double mu = complementarity(s);
      const double gap = relative_gap(s);

      // Watchdog: bail on the first non-finite quantity with the offending
      // phase named, instead of iterating on poisoned state until the
      // budget burns out (the max-reductions in the residual norms silently
      // drop NaNs, so the merit test alone never fires). The overflow guard
      // catches a genuinely divergent iterate before it turns into Inf-Inf.
      if (const char* phase = divergence_phase(s, res, mu, gap)) {
        if (best.x.empty()) fill_solution(s, res, gap, mu, iter, best);
        best.status = SolveStatus::Diverged;
        best.faulted_phase = phase;
        util::log_info("ipm: diverged at iteration ", iter, " (", phase, ")");
        return best;
      }

      IterationInfo info;
      info.iteration = iter;
      info.mu = mu;
      info.primal_residual = res.rp_rel;
      info.dual_residual = std::max(res.rd_rel, res.rf_rel);
      info.gap = gap;
      ctx_.notify(info);

      if (opt_.verbose) {
        std::fprintf(stderr, "  ipm %3d  mu=%9.2e  rp=%9.2e  rd=%9.2e  rf=%9.2e  gap=%9.2e\n",
                     iter, mu, res.rp_rel, res.rd_rel, res.rf_rel, gap);
      }

      const double merit = res.rp_rel + res.rd_rel + res.rf_rel + gap;
      if (merit < 0.99 * best_merit) {
        stagnant_iterations = 0;
      } else if (++stagnant_iterations > 25) {
        // No meaningful progress for a long stretch: return the best iterate
        // instead of burning the remaining iteration budget.
        best.status = SolveStatus::MaxIterations;
        return best;
      }
      if (merit < best_merit) {
        best_merit = merit;
        fill_solution(s, res, gap, mu, iter, best);
      }

      if (res.rp_rel < opt_.tolerance && res.rd_rel < opt_.tolerance &&
          res.rf_rel < opt_.tolerance && gap < opt_.tolerance) {
        fill_solution(s, res, gap, mu, iter, best);
        best.status = SolveStatus::Optimal;
        return best;
      }

      // After the convergence test and best-iterate update, so an interrupt
      // landing on a converged iteration still reports Optimal.
      if (ctx_.interrupted()) {
        best.status = SolveStatus::Interrupted;
        return best;
      }

      if (detect_primal_infeasible(s, res)) {
        best.status = SolveStatus::PrimalInfeasible;
        return best;
      }
      if (detect_dual_infeasible(s, res)) {
        best.status = SolveStatus::DualInfeasible;
        return best;
      }

      if (!step(s, res, mu)) {
        best.status = SolveStatus::NumericalProblem;
        best.faulted_phase = "factor";
        return best;
      }
    }
    best.status = SolveStatus::MaxIterations;
    return best;
  }

  /// Name of the first non-finite (or overflowing) quantity of this
  /// iteration, or nullptr when everything is sane. The iterate scan sums
  /// every entry — NaN and Inf both propagate through addition (and
  /// Inf + -Inf is NaN), so one accumulator per matrix set suffices; it is
  /// O(n^2) per block against the O(n^3) factorization work per iteration.
  const char* divergence_phase(const State& s, const Residuals& res, double mu,
                               double gap) const {
    if (!std::isfinite(res.rp_rel)) return "primal-residual";
    if (!std::isfinite(res.rd_rel)) return "dual-residual";
    if (!std::isfinite(res.rf_rel)) return "free-residual";
    if (!std::isfinite(mu)) return "complementarity";
    if (!std::isfinite(gap)) return "gap";
    double acc = 0.0;
    for (const std::vector<Matrix>* set : {&s.x, &s.z}) {
      for (const Matrix& m : *set) {
        for (std::size_t r = 0; r < m.rows(); ++r) {
          for (std::size_t c = 0; c < m.cols(); ++c) acc += m(r, c);
        }
      }
    }
    for (const double v : s.y) acc += v;
    for (const double v : s.w) acc += v;
    if (!std::isfinite(acc)) return "iterate";
    if (std::fabs(acc) > 1e150) return "iterate-overflow";
    return nullptr;
  }

  State initial_state() const {
    if (const WarmStart* ws = ctx_.warm_start; ws != nullptr && ws->fits(p_)) {
      return restored_state(*ws);
    }
    State s;
    // SDPT3-style magnitude heuristics keep the first iterations sane.
    double xi = 10.0, eta = 10.0;
    for (std::size_t i = 0; i < m_; ++i) {
      double arow = 1.0;
      for (const auto& [j, a] : p_.rows()[i].blocks) arow = std::max(arow, a.frobenius_norm());
      xi = std::max(xi, (1.0 + std::fabs(p_.rhs(i))) / arow);
    }
    eta = std::max(eta, 1.0 + c_norm_);
    s.x.reserve(nblocks_);
    s.z.reserve(nblocks_);
    for (std::size_t j = 0; j < nblocks_; ++j) {
      const std::size_t n = p_.block_size(j);
      Matrix xj = Matrix::identity(n);
      xj.scale(xi);
      Matrix zj = Matrix::identity(n);
      zj.scale(eta);
      s.x.push_back(std::move(xj));
      s.z.push_back(std::move(zj));
    }
    s.y.assign(mext_, 0.0);
    s.w.assign(nf_, 0.0);
    return s;
  }

  /// Shifted-feasible restore of a warm start: an interior-point iterate must
  /// be strictly inside the cone, but a converged previous solution sits on
  /// its boundary (and the problem data may have moved, so "previous optimal"
  /// is merely near-optimal here). Pushing X and Z back into the interior by
  /// a small spectral shift re-centers the iterate just enough for the
  /// Cholesky-based steps while keeping the Newton direction short.
  State restored_state(const WarmStart& ws) const {
    State s;
    s.x = ws.x;
    s.z = ws.z;
    s.y = ws.y;  // sizes guaranteed by WarmStart::fits at the call site
    // Overlap multipliers are backend-internal state (their count depends on
    // this lowering's clique layout, which the blob deliberately does not
    // encode): restart them at zero.
    s.y.resize(mext_, 0.0);
    s.w = ws.w;
    for (std::size_t j = 0; j < nblocks_; ++j) {
      const std::size_t n = p_.block_size(j);
      if (n == 0) continue;
      for (Matrix* mat : {&s.x[j], &s.z[j]}) {
        mat->symmetrize();
        const double scale = std::max(1.0, linalg::norm_inf(*mat));
        const double lambda_min = linalg::min_eigenvalue(*mat);
        const double margin = std::max(opt_.warm_start_margin, 1e-10) * scale;
        if (lambda_min < margin) {
          const double shift = margin - lambda_min;
          for (std::size_t d = 0; d < n; ++d) (*mat)(d, d) += shift;
        }
      }
    }
    return s;
  }

  double complementarity(const State& s) const {
    if (total_dim_ == 0) return 0.0;
    double acc = 0.0;
    for (std::size_t j = 0; j < nblocks_; ++j) acc += linalg::dot(s.x[j], s.z[j]);
    return acc / static_cast<double>(total_dim_);
  }

  double primal_objective(const State& s) const {
    double obj = linalg::dot(p_.free_objective(), s.w);
    for (std::size_t j = 0; j < nblocks_; ++j) obj += linalg::dot(p_.block_objective(j), s.x[j]);
    return obj;
  }

  double dual_objective(const State& s) const {
    double obj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) obj += p_.rhs(i) * s.y[i];
    return obj;
  }

  double relative_gap(const State& s) const {
    const double pobj = primal_objective(s);
    const double dobj = dual_objective(s);
    return std::fabs(pobj - dobj) / (1.0 + std::fabs(pobj) + std::fabs(dobj));
  }

  /// Row access across the extended index space (real rows, then overlaps).
  const Row& row_at(std::size_t i) const {
    return i < m_ ? p_.rows()[i] : *overlap_rows_[i - m_];
  }
  double rhs_at(std::size_t i) const { return i < m_ ? p_.rhs(i) : 0.0; }

  Residuals residuals(const State& s) const {
    Residuals r;
    // Overlap couplings are primal feasibility too: rp's tail [m, m+q) is
    // the clique-copy consistency gap, so rp_rel only reaches tolerance
    // when the decomposed cone agrees on its separators.
    r.rp.assign(mext_, 0.0);
    for (std::size_t i = 0; i < mext_; ++i) {
      const Row& row = row_at(i);
      double ax = 0.0;
      for (const auto& [j, a] : row.blocks) ax += a.dot(s.x[j]);
      for (const auto& [v, c] : row.free_coeffs) ax += c * s.w[v];
      r.rp[i] = rhs_at(i) - ax;
    }
    r.rd.resize(nblocks_);
    double rd_norm = 0.0;
    for (std::size_t j = 0; j < nblocks_; ++j) {
      Matrix rd = p_.block_objective(j);
      rd -= s.z[j];
      for (const BlockRowView& v : views_[j]) v.coeff->add_to(rd, -s.y[v.row]);
      rd_norm = std::max(rd_norm, linalg::norm_inf(rd));
      r.rd[j] = std::move(rd);
    }
    r.rf = p_.free_objective();
    for (std::size_t i = 0; i < m_; ++i) {
      const double yi = s.y[i];
      if (yi == 0.0) continue;
      for (const auto& [v, c] : p_.rows()[i].free_coeffs) r.rf[v] -= c * yi;
    }
    r.rp_rel = linalg::norm_inf(r.rp) / (1.0 + data_norm_);
    r.rd_rel = rd_norm / (1.0 + c_norm_);
    r.rf_rel = linalg::norm_inf(r.rf) / (1.0 + c_norm_);
    return r;
  }

  bool detect_primal_infeasible(const State& s, const Residuals& res) const {
    // Heuristic Farkas-type test: the dual iterate grows without bound while
    // staying (nearly) dual feasible and improving b'y proportionally. The
    // proportionality guard avoids misfiring on ill-conditioned feasible
    // problems whose multipliers are merely large.
    const double ynorm = linalg::norm_inf(s.y);
    if (ynorm < opt_.infeasibility_threshold) return false;
    return res.rd_rel < 1e-6 && res.rf_rel < 1e-6 &&
           dual_objective(s) > 1e-8 * ynorm && dual_objective(s) > 1.0;
  }

  bool detect_dual_infeasible(const State& s, const Residuals& res) const {
    // Primal iterate grows unbounded with decreasing objective and near
    // feasibility -> dual infeasible (primal unbounded).
    double xnorm = 0.0;
    for (const Matrix& xj : s.x) xnorm = std::max(xnorm, linalg::norm_inf(xj));
    xnorm = std::max(xnorm, linalg::norm_inf(s.w));
    if (xnorm < opt_.infeasibility_threshold) return false;
    return res.rp_rel < 1e-5 && primal_objective(s) < -1.0;
  }

  /// Reference Schur assembly (pre-overhaul): both triangles, per-row
  /// triangular column solves, then symmetrize. Kept selectable
  /// (IpmOptions::reference_schur) for parity tests and as the baseline of
  /// the bench speedup gates.
  void assemble_schur_reference(const State& s, const std::vector<Cholesky>& chol_z,
                                Matrix& schur) const {
    Matrix work_ax, work_w;
    for (std::size_t j = 0; j < nblocks_; ++j) {
      const auto& touching = views_[j];
      if (touching.empty()) continue;
      const std::size_t n = p_.block_size(j);
      work_ax = Matrix(n, n);
      for (const BlockRowView& vi : touching) {
        vi.coeff->times_dense(s.x[j], work_ax);          // A_i X
        work_w = solve_all_columns(chol_z[j], work_ax);  // Z^{-1} A_i X
        for (const BlockRowView& vk : touching) {
          double acc = 0.0;
          for (const Triplet& t : vk.coeff->entries) {
            const double sym = 0.5 * (work_w(t.r, t.c) + work_w(t.c, t.r));
            acc += (t.r == t.c ? 1.0 : 2.0) * t.v * sym;
          }
          schur(vi.row, vk.row) += acc;
        }
      }
    }
    schur.symmetrize();
  }

  /// Fast Schur assembly: fill only the upper triangle — each unordered row
  /// pair is computed once (the exact-arithmetic symmetry M_ik = M_ki of the
  /// symmetrized HKM operator makes the mirror free) — over views sorted
  /// densest-first, with the Z_j^{-1} A_i X_j panel built once per row as a
  /// sum of nnz(A_i) rank-1 outer products (O(nnz n^2), not the O(n^3)
  /// column solves of the reference). Panels are independent across rows, so
  /// they fan out on the pool; every (i, k) entry is written by exactly one
  /// task and blocks are accumulated in a fixed sequential order, which
  /// makes the assembly bit-identical across thread counts.
  void assemble_schur_fast(const State& s, const std::vector<Matrix>& zinv,
                           Matrix& schur) {
    for (std::size_t j = 0; j < nblocks_; ++j) {
      const auto& touching = views_[j];
      if (touching.empty()) continue;
      const std::size_t n = p_.block_size(j);
      const Matrix& zi = zinv[j];
      const Matrix& xj = s.x[j];
      const auto& order = schur_order_[j];
      auto panel_task = [&](std::size_t w, std::size_t p) {
        Matrix& panel = panel_scratch_[w];
        if (panel.rows() != n || panel.cols() != n) {
          panel = Matrix(n, n);
        } else {
          panel.fill(0.0);
        }
        const BlockRowView& vi = touching[order[p]];
        // panel = Z^{-1} A_i X = sum over triplets v (zinv_col_r x_row_c +
        // [r != c] zinv_col_c x_row_r); zinv is symmetric, so its columns
        // are its rows and every factor is a contiguous row pointer.
        for (const Triplet& t : vi.coeff->entries) {
          add_scaled_outer(panel, t.v, zi.row_ptr(t.r), xj.row_ptr(t.c), n);
          if (t.r != t.c)
            add_scaled_outer(panel, t.v, zi.row_ptr(t.c), xj.row_ptr(t.r), n);
        }
        for (std::size_t q = p; q < order.size(); ++q) {
          const BlockRowView& vk = touching[order[q]];
          // HKM symmetrization convention (the single place it is spelled
          // out): W = Z^{-1} A_i X is not symmetric, the symmetrized HKM
          // direction uses (W + W^T)/2, so M_ik = <A_k, (W + W^T)/2>. A_k
          // is stored as upper triplets with the (c, r) mirror implicit,
          // and both mirror entries read the *same* symmetrized quantity
          // 0.5 * (W_rc + W_cr) — one fused accumulation weighted 2x for
          // off-diagonal triplets.
          double acc = 0.0;
          for (const Triplet& t : vk.coeff->entries) {
            const double sym = 0.5 * (panel(t.r, t.c) + panel(t.c, t.r));
            acc += (t.r == t.c ? 1.0 : 2.0) * t.v * sym;
          }
          std::size_t r1 = vi.row, r2 = vk.row;
          if (r1 > r2) std::swap(r1, r2);
          schur(r1, r2) += acc;
        }
      };
      // Fan out only when the block carries enough *work* to amortize the
      // fork-join — rows alone do not cut it: a 1x1 slack touched by a
      // hundred rows is still microseconds of panel work. Estimate by the
      // dominant panel cost (rows x n^2); tiny blocks run inline. Both
      // paths write the same entries in the same per-entry order.
      if (pool_.threads() > 1 && order.size() >= 8 && order.size() * n * n >= 32768) {
        pool_.run_all_indexed(order.size(), panel_task);
      } else {
        for (std::size_t p = 0; p < order.size(); ++p) panel_task(0, p);
      }
    }
    // Mirror the computed upper triangle (row indices) onto the lower.
    for (std::size_t r = 0; r < mext_; ++r) {
      const double* ur = schur.row_ptr(r);
      for (std::size_t c = r + 1; c < mext_; ++c) schur(c, r) = ur[c];
    }
  }

  static void add_scaled_outer(Matrix& out, double v, const double* u,
                               const double* w, std::size_t n) {
    for (std::size_t a = 0; a < n; ++a) {
      const double f = v * u[a];
      if (f == 0.0) continue;
      double* row = out.row_ptr(a);
      for (std::size_t b = 0; b < n; ++b) row[b] += f * w[b];
    }
  }

  /// One predictor-corrector step; returns false on numerical breakdown.
  bool step(State& s, const Residuals& res, double mu) {
    // Injected factorization failure: the step reports no progress exactly
    // as it does when the real step lengths collapse, and run_inner
    // classifies it as NumericalProblem with phase "factor".
    SOSLOCK_FAULT_HOOK(util::fault_site::kIpmFactorization, { return false; });
    util::Timer phase_timer;
    // Factor all Z and X blocks and form the explicit Z^{-1} (used by the
    // Schur panels, the RHS assembly and the direction recovery — computing
    // it once per block per iteration replaces three rounds of per-column
    // triangular solves with GEMMs). Blocks are independent: fan out.
    std::vector<Cholesky> chol_z(nblocks_), chol_x(nblocks_);
    std::vector<Matrix> zinv(nblocks_);
    pool_.run_all(nblocks_, [&](std::size_t j) {
      chol_z[j] = Cholesky::factor_shifted(s.z[j]);
      chol_x[j] = Cholesky::factor_shifted(s.x[j]);
      zinv[j] = chol_z[j].inverse();
    });
    phase_.factor += phase_timer.seconds();

    // Assemble the Schur complement M_ik = sum_j <A_ij, Z_j^{-1} A_kj X_j>
    // over the extended index space (real rows, then overlap couplings).
    phase_timer.reset();
    Matrix schur(mext_, mext_);
    if (opt_.reference_schur) {
      assemble_schur_reference(s, chol_z, schur);
    } else {
      assemble_schur_fast(s, zinv, schur);
    }
    phase_.schur += phase_timer.seconds();

    // Overlap multipliers are block-eliminated, never factored with the
    // rows (OverlapElimination): the dense Schur factor stays m x m, the
    // flop count telescopes to exactly the extended (m+q) factorization,
    // and the elimination is algebraically the full solve — native cones
    // take the same Newton step the seam rows would, at the original dense
    // Schur geometry. Q is PD whenever the iterate is interior (a
    // congruence of the PD HKM operator with the linearly independent
    // overlap difference maps).
    phase_timer.reset();
    SchurFactor chol_m(opt_, mixed_, recoveries_, fp32_disabled_);
    OverlapElimination elim;
    if (q_ == 0) {
      chol_m.factor(schur, 1e-13);
    } else {
      chol_m.factor(elim.reduce(schur, m_, q_, 1e-13), 1e-13);
    }
    phase_.factor += phase_timer.seconds();

    // Free-variable coupling B (m x nf), built once at solver setup.
    const Matrix& bmat = bmat_;
    Matrix w_free, s_free;
    std::optional<Cholesky> chol_s;
    if (nf_ > 0) {
      w_free = chol_m.solve(bmat);                        // M^{-1} B
      s_free = linalg::transposed_times(bmat, w_free);    // B^T M^{-1} B
      for (std::size_t v = 0; v < nf_; ++v) s_free(v, v) += opt_.free_var_regularization;
      chol_s = Cholesky::factor_shifted(s_free, 1e-13);
    }

    // One pass of the block-eliminated KKT solve. r1 spans the extended row
    // space [rows; overlaps]; the returned dy does too (its tail is the
    // overlap-multiplier correction dλ = Q^{-1}(rb - U^T dy_rows), via the
    // elimination's two-stage solve).
    auto solve_kkt_once = [&](const Vector& r1, const Vector& r2, Vector& dy, Vector& dw) {
      Vector ra(r1.begin(), r1.begin() + static_cast<std::ptrdiff_t>(m_));
      Vector t;
      if (q_ > 0) {
        const Vector rb(r1.begin() + static_cast<std::ptrdiff_t>(m_), r1.end());
        t = elim.fold_rhs(rb, ra);
      }
      const Vector g = chol_m.solve(ra);
      if (nf_ == 0) {
        dy = g;
        dw.assign(0, 0.0);
      } else {
        Vector rhs = linalg::transposed_times(bmat, g);
        linalg::axpy(-1.0, r2, rhs);
        dw = chol_s->solve(rhs);
        dy = g;
        linalg::axpy(-1.0, w_free * dw, dy);
      }
      if (q_ > 0) {
        const Vector dl = elim.multipliers(t, dy);
        dy.insert(dy.end(), dl.begin(), dl.end());
      }
    };

    // The Schur complement is severely ill-conditioned near the central-path
    // end; two rounds of iterative refinement recover the lost digits. The
    // residual uses the full extended operator, so the eliminated overlap
    // corner is refined along with the rows.
    auto solve_kkt = [&](const Vector& r1, const Vector& r2, Vector& dy, Vector& dw) {
      solve_kkt_once(r1, r2, dy, dw);
      for (int refine = 0; refine < 2; ++refine) {
        Vector res1 = r1;
        linalg::axpy(-1.0, schur * dy, res1);
        Vector res2(nf_, 0.0);
        if (nf_ > 0) {
          const Vector bw = bmat * dw;
          for (std::size_t i = 0; i < m_; ++i) res1[i] -= bw[i];
          res2 = r2;
          const Vector dy_rows(dy.begin(), dy.begin() + static_cast<std::ptrdiff_t>(m_));
          linalg::axpy(-1.0, linalg::transposed_times(bmat, dy_rows), res2);
        }
        Vector cy, cw;
        solve_kkt_once(res1, res2, cy, cw);
        linalg::axpy(1.0, cy, dy);
        if (nf_ > 0) linalg::axpy(1.0, cw, dw);
      }
    };

    // RHS shared pieces: for a given complementarity target nu,
    // r1_i = rp_i - sum_j <A_ij, nu Z^{-1} - X - Z^{-1} Rd X + Corr>.
    // The per-block E_j are independent GEMMs on the precomputed Z^{-1}
    // (fan out on the pool); the row accumulation runs sequentially because
    // a row may touch several blocks.
    auto build_r1 = [&](double nu, const std::vector<Matrix>* corr) {
      Vector r1 = res.rp;
      std::vector<Matrix> e(nblocks_);
      pool_.run_all(nblocks_, [&](std::size_t j) {
        if (views_[j].empty()) return;
        // E_j = nu Z^{-1} - X - Z^{-1} (Rd X + Corr).
        Matrix rdx = res.rd[j] * s.x[j];
        if (corr != nullptr) rdx += (*corr)[j];
        Matrix ej = zinv[j] * rdx;
        ej.scale(-1.0);
        ej -= s.x[j];
        if (nu != 0.0) ej.axpy(nu, zinv[j]);
        ej.symmetrize();
        e[j] = std::move(ej);
      });
      for (std::size_t j = 0; j < nblocks_; ++j) {
        if (views_[j].empty()) continue;
        for (const BlockRowView& v : views_[j]) r1[v.row] -= v.coeff->dot(e[j]);
      }
      return r1;
    };

    auto recover_dxdz = [&](const Vector& dy, double nu, const std::vector<Matrix>* corr,
                            std::vector<Matrix>& dx, std::vector<Matrix>& dz) {
      dx.resize(nblocks_);
      dz.resize(nblocks_);
      pool_.run_all(nblocks_, [&](std::size_t j) {
        Matrix dzj = res.rd[j];
        for (const BlockRowView& v : views_[j]) v.coeff->add_to(dzj, -dy[v.row]);
        // dX = nu Z^{-1} - X - Z^{-1} (dZ X + Corr), symmetrized.
        Matrix rhs = dzj * s.x[j];
        if (corr != nullptr) rhs += (*corr)[j];
        Matrix dxj = zinv[j] * rhs;
        dxj.scale(-1.0);
        dxj -= s.x[j];
        if (nu != 0.0) dxj.axpy(nu, zinv[j]);
        dxj.symmetrize();
        dx[j] = std::move(dxj);
        dz[j] = std::move(dzj);
      });
    };

    // Max PSD step lengths over all blocks (one eigendecomposition per
    // block; independent, order-insensitive min-reduction).
    auto step_lengths = [&](const std::vector<Matrix>& dx_c, const std::vector<Matrix>& dz_c,
                            double cap, double& ap_out, double& ad_out) {
      util::Timer eig_timer;
      Vector aps(nblocks_, cap), ads(nblocks_, cap);
      pool_.run_all(nblocks_, [&](std::size_t j) {
        aps[j] = max_step(chol_x[j], dx_c[j], cap);
        ads[j] = max_step(chol_z[j], dz_c[j], cap);
      });
      ap_out = cap;
      ad_out = cap;
      for (std::size_t j = 0; j < nblocks_; ++j) {
        ap_out = std::min(ap_out, aps[j]);
        ad_out = std::min(ad_out, ads[j]);
      }
      phase_.eig += eig_timer.seconds();
    };

    Vector dy, dw;
    std::vector<Matrix> dx, dz;
    double sigma = 0.2;

    util::Timer recover_timer;
    if (opt_.predictor_corrector && total_dim_ > 0) {
      // Predictor: pure Newton (nu = 0).
      const Vector r1_aff = build_r1(0.0, nullptr);
      Vector dy_aff, dw_aff;
      solve_kkt(r1_aff, res.rf, dy_aff, dw_aff);
      std::vector<Matrix> dx_aff, dz_aff;
      recover_dxdz(dy_aff, 0.0, nullptr, dx_aff, dz_aff);
      phase_.recover += recover_timer.seconds();

      double ap = 1.0, ad = 1.0;
      step_lengths(dx_aff, dz_aff, 1.0, ap, ad);
      recover_timer.reset();
      double mu_aff = 0.0;
      for (std::size_t j = 0; j < nblocks_; ++j) {
        Matrix xa = s.x[j];
        xa.axpy(ap, dx_aff[j]);
        Matrix za = s.z[j];
        za.axpy(ad, dz_aff[j]);
        mu_aff += linalg::dot(xa, za);
      }
      mu_aff /= static_cast<double>(total_dim_);
      const double ratio = mu > 0.0 ? mu_aff / mu : 0.0;
      sigma = std::clamp(ratio * ratio * ratio, 1e-6, 1.0);
      // Safeguard: while the iterate is infeasible, do not let the barrier
      // collapse far below the infeasibility level, or later steps become too
      // inaccurate to ever restore feasibility.
      const double infeas = std::max({res.rp_rel, res.rd_rel, res.rf_rel});
      if (mu < 0.1 * infeas) sigma = std::max(sigma, 0.9);

      // Corrector with second-order term dZ_aff * dX_aff.
      std::vector<Matrix> corr(nblocks_);
      pool_.run_all(nblocks_,
                    [&](std::size_t j) { corr[j] = dz_aff[j] * dx_aff[j]; });
      const Vector r1 = build_r1(sigma * mu, &corr);
      solve_kkt(r1, res.rf, dy, dw);
      recover_dxdz(dy, sigma * mu, &corr, dx, dz);
      phase_.recover += recover_timer.seconds();
    } else {
      const Vector r1 = build_r1(sigma * mu, nullptr);
      solve_kkt(r1, res.rf, dy, dw);
      recover_dxdz(dy, sigma * mu, nullptr, dx, dz);
      phase_.recover += recover_timer.seconds();
    }

    // Step lengths.
    double ap = 1.0, ad = 1.0;
    step_lengths(dx, dz, 1.0 / opt_.step_fraction, ap, ad);
    ap = std::min(opt_.step_fraction * ap, 1.0);
    ad = std::min(opt_.step_fraction * ad, 1.0);
    if (!(ap > 1e-10) || !(ad > 1e-10)) {
      util::log_debug("ipm: step collapsed (ap=", ap, ", ad=", ad, ")");
      return false;
    }

    for (std::size_t j = 0; j < nblocks_; ++j) {
      s.x[j].axpy(ap, dx[j]);
      s.z[j].axpy(ad, dz[j]);
    }
    linalg::axpy(ad, dy, s.y);
    // w is a *primal* variable: it must advance with the primal step so that
    // the primal residual contracts by (1 - ap) per iteration.
    if (nf_ > 0) linalg::axpy(ap, dw, s.w);
    return true;
  }

  void fill_solution(const State& s, const Residuals& res, double gap, double mu, int iter,
                     Solution& out) const {
    out.x = s.x;
    out.z = s.z;
    // Overlap multipliers are internal state: only the row multipliers
    // leave the solver (the blob/warm-start space has no overlap slots).
    out.y.assign(s.y.begin(), s.y.begin() + static_cast<std::ptrdiff_t>(m_));
    out.w = s.w;
    out.primal_objective = primal_objective(s);
    out.dual_objective = dual_objective(s);
    out.mu = mu;
    out.primal_residual = res.rp_rel;
    out.dual_residual = std::max(res.rd_rel, res.rf_rel);
    out.gap = gap;
    out.iterations = iter;
  }

  const Problem& p_;
  const IpmOptions& opt_;
  SolveContext& ctx_;
  std::shared_ptr<const ProblemStructure> structure_;
  std::vector<std::vector<BlockRowView>> views_;
  /// Native decomposed cones: overlap couplings as virtual rows [m, m+q).
  /// Pointers into p_.cones() (stable: the problem outlives the solve).
  std::vector<const Row*> overlap_rows_;
  /// Per block: indices into views_[j] sorted densest-first (Schur order).
  std::vector<std::vector<std::size_t>> schur_order_;
  Matrix bmat_;  // free-variable coupling B (m x nf); iteration-invariant
  util::ThreadPool pool_;
  std::vector<Matrix> panel_scratch_;  // per-worker Schur panel workspace
  PhaseTimes phase_;
  /// Mixed-precision telemetry + fallback records accumulated across
  /// iterations (each step() builds its SchurFactor on these), surfaced on
  /// the Solution by run().
  MixedPrecisionStats mixed_;
  std::vector<RecoveryRecord> recoveries_;
  bool fp32_disabled_ = false;  // sticky per-solve FP64 fallback latch
  std::size_t m_ = 0, q_ = 0, mext_ = 0, nf_ = 0, nblocks_ = 0, total_dim_ = 0;
  double data_norm_ = 1.0, c_norm_ = 1.0;
};

}  // namespace

Solution IpmSolver::solve(const Problem& problem, SolveContext& context) const {
  // Row equilibration is the caller's job (SosProgram::solve applies it to
  // every compiled program); doing it here would invalidate the warm-start
  // contract that y lives in the row space of the problem as passed in.
  const util::Timer timer;
  Ipm ipm(problem, options_, context, StructureCache::global().get(problem));
  Solution sol = ipm.run();
  sol.backend = name();
  sol.solve_seconds = timer.seconds();
  util::log_debug("ipm: ", to_string(sol.status), " after ", sol.iterations,
                  " iters, gap=", sol.gap, ", rp=", sol.primal_residual);
  return sol;
}

}  // namespace soslock::sdp
