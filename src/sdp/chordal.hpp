#pragma once
// Chordal decomposition of large PSD blocks (Vandenberghe–Andersen / the
// Fukuda–Kojima "domain-space" conversion method). A block X_j enters the
// data only through its *aggregate sparsity pattern* — the union of the
// nonzero positions of C_j and of every row coefficient A_ij. When that
// pattern (chordally extended) has maximal cliques C_1..C_K, Grone's
// completion theorem makes
//
//   X_j ⪰ 0   ⟺   X_j|C_k ⪰ 0 for all k   (+ a PSD completion off-pattern)
//
// so the conversion replaces the size-n block by K clique-sized blocks,
// re-targets every data entry at its canonical clique, and ties the copies
// of entries shared along the clique tree. The tie has two lowerings: the
// native default registers a sdp::DecomposedCone (overlap couplings become
// backend multiplier terms, block-eliminated from the factored Schur/normal
// system), while ChordalOptions::at_seam appends them as ordinary
// overlap-consistency equality rows (the PR 3 seam conversion, kept as the
// parity reference).
//
// Scope note: a Gram block emitted by the SOS compiler always has a
// *complete* aggregate pattern (every entry pair b_r*b_c is matched by a
// coefficient row), so this pass never fires on SOS-compiled blocks — the
// compile-time correlative split (poly/sparsity) is what decomposes those.
// The conversion serves directly-built sdp::Problems (banded/arrow
// structures, external workloads); complete patterns are detected and
// skipped without running the elimination.
//
// The converted problem is *equivalent* (not a relaxation or a
// restriction): recover_original maps its solution back, recombining the
// dual slacks by scatter-add (Agler) and completing the primal clique blocks
// into one dense PSD matrix by clique-tree completion, so certificate
// auditing is unchanged.
#include <string>
#include <vector>

#include "sdp/options.hpp"
#include "sdp/problem.hpp"
#include "util/chordal.hpp"

namespace soslock::sdp {

/// Decomposition plan of one original block.
struct BlockPlan {
  std::size_t original_block = 0;
  std::size_t original_size = 0;
  /// Cliques over the original block's indices (RIP preorder — see
  /// util/chordal.hpp); the completion in recover_original walks this order.
  util::CliqueForest forest;
  /// Converted-problem block index of each clique.
  std::vector<std::size_t> converted_block;
};

/// How a converted problem maps back onto the original shape.
struct ChordalMap {
  std::size_t original_rows = 0;
  std::vector<std::size_t> original_block_sizes;
  /// original block -> converted block; kNotMapped for decomposed blocks.
  static constexpr std::size_t kNotMapped = static_cast<std::size_t>(-1);
  std::vector<std::size_t> block_map;
  std::vector<BlockPlan> plans;

  bool identity() const { return plans.empty(); }
  /// Largest clique over all decomposed blocks (0 when identity).
  std::size_t max_clique_size() const;
};

/// Canonical-assignment index of one decomposed block: for every pattern
/// entry (r, c) the clique that holds its canonical copy, plus per-clique
/// global->local vertex maps. This is the layout apply_decomposition uses to
/// retarget coefficients at clique blocks; the coefficient-update pass
/// (sdp::LoweringCache) rebuilds the same index from the cached BlockPlan to
/// rewrite fresh values in place without re-running the decomposition.
struct BlockEntryIndex {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t n = 0;
  std::vector<std::size_t> entry_clique;        // n*n, kNone off-pattern
  std::vector<std::vector<std::size_t>> local;  // per clique: global -> local
};
BlockEntryIndex index_decomposed_block(const util::CliqueForest& forest, std::size_t n);

/// Analysis half of the conversion (the "analyze" + "decompose" passes of
/// the sdp/lowering pipeline): which blocks split, along which cliques.
/// Reads `p` only.
struct ConversionPlan {
  std::vector<util::CliqueForest> forests;  // per block; empty when kept
  std::vector<bool> split;                  // per block
  bool any = false;
  /// Structural summary for pass provenance, e.g. "2 block(s), max clique 4".
  std::string detail;
};
ConversionPlan plan_decomposition(const Problem& p, const ChordalOptions& options);

/// Emission half (the "lower" pass): rewrite `p` along `plan`. With
/// `at_seam` the overlap-consistency constraints are appended as ordinary
/// equality rows (the PR 3 seam conversion, kept as the parity reference);
/// otherwise they are registered as native DecomposedCone couplings and the
/// row count is unchanged. A plan with nothing to split leaves `p` untouched
/// and returns the identity map.
ChordalMap apply_decomposition(Problem& p, const ConversionPlan& plan, bool at_seam);

/// Decompose every block of `p` that is at least `options.min_block_size`
/// wide and whose chordal aggregate pattern splits into genuinely smaller
/// cliques (plan_decomposition + apply_decomposition under
/// options.at_seam). `p` is rewritten in place (original rows keep their
/// indices). When nothing qualifies, `p` is untouched and the returned map
/// is the identity.
ChordalMap chordal_decompose(Problem& p, const ChordalOptions& options);

/// Map a converted-space solution back onto the original problem shape.
/// Overlap-row multipliers are dropped from y, dual slacks scatter-add into
/// dense blocks (exactly dual-feasible, PSD as a sum of padded PSDs), and
/// primal clique blocks are completed into a dense PSD matrix along the
/// clique tree. Telemetry and residual scalars carry over unchanged.
Solution recover_original(const Solution& converted, const ChordalMap& map);

}  // namespace soslock::sdp
