#include "sdp/scaling.hpp"

#include <cmath>

namespace soslock::sdp {

Scaling equilibrate_rows(Problem& p) {
  Scaling s;
  s.row_scale.assign(p.num_rows(), 1.0);
  auto& rows = p.mutable_rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    Row& row = rows[i];
    double mx = 0.0;
    for (const auto& [j, a] : row.blocks)
      for (const Triplet& t : a.entries) mx = std::max(mx, std::fabs(t.v));
    for (const auto& [v, c] : row.free_coeffs) mx = std::max(mx, std::fabs(c));
    mx = std::max(mx, std::fabs(row.rhs));
    // Degenerate rows stay unscaled: an all-zero row has nothing to
    // normalize, and a near-zero one (e.g. a constraint whose coefficients
    // an aggressive Gram prune cancelled down to roundoff) would be blown up
    // to unit norm — amplifying noise into an O(1) constraint and, for
    // denormal norms, overflowing 1/mx to inf, which then poisons the
    // warm-start dual rescale (y_orig = y/scale) with inf/NaN.
    if (mx <= kMinRowNorm || !std::isfinite(mx)) continue;
    const double inv = 1.0 / mx;
    for (auto& [j, a] : row.blocks) a.scale(inv);
    for (auto& [v, c] : row.free_coeffs) c *= inv;
    row.rhs *= inv;
    s.row_scale[i] = mx;
  }
  return s;
}

}  // namespace soslock::sdp
