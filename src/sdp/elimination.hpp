#pragma once
// Block elimination of the overlap-multiplier corner, shared by both
// backends' native decomposed-cone paths. For the symmetric PD system
//
//   [ M0  U ] [y]   [ra]        rows      [0, m)
//   [ U^T Q ] [λ] = [rb]        overlaps  [m, m+q)
//
// factor Q, form W = L_q^{-1} U^T (half triangular solve) and reduce
// M0 -> M0 - W^T W (syrk half, linalg::subtract_gram). The flop count
// telescopes to exactly the extended (m+q) factorization, the solve is
// algebraically the full system's, and the dense factor the caller builds
// stays m x m — zero overlap rows in it. Solving is two-stage:
//
//   t  = L_q^{-1} rb;   solve the reduced system on  ra - W^T t;
//   λ  = L_q^{-T}(t - W y).
//
// Q is PD whenever the enclosing operator is (it is a congruence with the
// linearly independent overlap difference maps); corner_shift guards the
// factorization against end-of-path ill-conditioning exactly like the
// callers' own factor_shifted calls.
#include <cstddef>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace soslock::sdp {

class OverlapElimination {
 public:
  /// Factor the overlap corner of `full` and return the reduced m x m
  /// leading block M0 - W^T W, ready for the caller's factorization.
  linalg::Matrix reduce(const linalg::Matrix& full, std::size_t m, std::size_t q,
                        double corner_shift);

  /// First stage: t = L_q^{-1} rb, and ra -= W^T t (ra becomes the reduced
  /// system's right-hand side). Returns t for the back-substitution.
  linalg::Vector fold_rhs(const linalg::Vector& rb, linalg::Vector& ra) const;

  /// Back-substitution: λ = L_q^{-T}(t - W y).
  linalg::Vector multipliers(const linalg::Vector& t, const linalg::Vector& y) const;

 private:
  std::size_t m_ = 0, q_ = 0;
  linalg::Cholesky chol_q_;
  linalg::Matrix w_;  // W = L_q^{-1} U^T (q x m)
};

}  // namespace soslock::sdp
