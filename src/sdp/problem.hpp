#pragma once
// Semidefinite programming problem in primal standard form with several PSD
// blocks and unrestricted (free) scalar variables:
//
//   minimize    sum_j <C_j, X_j>  +  f' w
//   subject to  sum_j <A_ij, X_j> + B_i' w  =  b_i    (i = 1..m)
//               X_j >= 0 (PSD),  w free.
//
// This is exactly the shape produced by Gram-matrix SOS relaxations: the X_j
// are Gram matrices, the w are free polynomial coefficients, and each row is
// one monomial-coefficient matching equation.
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace soslock::sdp {

/// One entry of a sparse symmetric coefficient matrix (r <= c; the (c, r)
/// mirror entry is implicit).
struct Triplet {
  std::size_t r = 0, c = 0;
  double v = 0.0;
};

/// Sparse symmetric matrix stored as upper triplets.
struct SparseSym {
  std::vector<Triplet> entries;

  void add(std::size_t r, std::size_t c, double v);
  bool empty() const { return entries.empty(); }
  /// <this, S> with S dense symmetric.
  double dot(const linalg::Matrix& s) const;
  /// out += scale * this (dense symmetric accumulate).
  void add_to(linalg::Matrix& out, double scale = 1.0) const;
  /// out = this * X (dense), using symmetry of this.
  void times_dense(const linalg::Matrix& x, linalg::Matrix& out) const;
  double frobenius_norm() const;
  void scale(double s);
};

/// One linear equality row.
struct Row {
  /// block index -> sparse symmetric coefficient A_ij
  std::map<std::size_t, SparseSym> blocks;
  /// free variable index -> coefficient
  std::map<std::size_t, double> free_coeffs;
  double rhs = 0.0;
  std::string label;  // provenance (monomial / constraint name) for debugging
};

/// One clique of a decomposed cone: which original-cone indices it spans,
/// which problem block holds its PSD copy, and its clique-tree parent.
/// This layout makes a lowered Problem self-describing — it is mixed into
/// the structure fingerprint (so iterates can never cross decompositions)
/// and tells an external consumer how to complete the clique blocks back
/// into the original cone. The lowering pipeline's own warm-start remap and
/// recovery read the same layout through the richer ChordalMap it keeps
/// alongside (sdp/chordal.hpp).
struct CliqueInfo {
  /// Global indices of the original cone covered by this clique (ascending).
  std::vector<std::size_t> vertices;
  std::size_t block = 0;   // problem block index of this clique's PSD copy
  std::size_t parent = 0;  // clique-tree parent (index into cliques; self = root)
};

/// A family of clique blocks lowered from one original PSD cone. The cone
/// constraint is "the partial matrix assembled from the clique copies has a
/// PSD completion", which by Grone's theorem is per-clique PSD *plus*
/// agreement of the copies of every entry shared along the clique tree.
/// Those agreement constraints are materialized here as zero-rhs difference
/// couplings (child copy minus parent copy, Row-shaped so backends can reuse
/// all sparse-coefficient machinery) — but they are NOT equality rows of the
/// problem: native backends enforce them through multiplier terms folded into
/// their (block-eliminated) Schur/normal factorizations, so the dense
/// factored system keeps the original row count. The seam conversion
/// (ChordalOptions::at_seam) emits them as ordinary rows instead.
struct DecomposedCone {
  std::size_t original_size = 0;  // n of the original dense cone
  std::vector<CliqueInfo> cliques;
  /// Overlap-consistency couplings along the clique-tree edges: one zero-rhs
  /// difference per shared entry pair, weighted so <D, X> = child - parent.
  std::vector<Row> overlaps;
};

class Problem {
 public:
  /// Append a PSD block of size n; returns its index.
  std::size_t add_block(std::size_t n);
  /// Append a free scalar variable with objective coefficient; returns index.
  std::size_t add_free(double obj_coeff = 0.0);
  /// Set the objective matrix for a block (default zero).
  void set_block_objective(std::size_t block, linalg::Matrix c);
  void set_free_objective(std::size_t var, double coeff);
  /// Append an equality row; returns its index.
  std::size_t add_row(Row row);
  /// Register a decomposed cone over existing clique blocks; returns its
  /// index. Adds no rows: the cone's overlap couplings are enforced by the
  /// backends' multiplier machinery.
  std::size_t add_cone(DecomposedCone cone);

  std::size_t num_blocks() const { return block_sizes_.size(); }
  std::size_t block_size(std::size_t j) const { return block_sizes_[j]; }
  const std::vector<std::size_t>& block_sizes() const { return block_sizes_; }
  std::size_t num_free() const { return f_.size(); }
  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  const linalg::Matrix& block_objective(std::size_t j) const { return c_[j]; }
  /// In-place objective rewrite (the coefficient-update lowering pass).
  linalg::Matrix& mutable_block_objective(std::size_t j) { return c_[j]; }
  const linalg::Vector& free_objective() const { return f_; }
  double rhs(std::size_t i) const { return rows_[i].rhs; }
  const std::vector<DecomposedCone>& cones() const { return cones_; }
  /// Mutable cone access — for passes that rewrite decompositions in place
  /// and for the verifier tests that seed deliberate corruptions.
  std::vector<DecomposedCone>& mutable_cones() { return cones_; }
  /// Total overlap couplings over all decomposed cones (the q extra
  /// multipliers the native backends carry alongside the m row multipliers).
  std::size_t num_overlaps() const;

  /// Total PSD dimension sum_j n_j.
  std::size_t total_psd_dim() const;

  std::string stats() const;

 private:
  std::vector<std::size_t> block_sizes_;
  std::vector<linalg::Matrix> c_;
  linalg::Vector f_;
  std::vector<Row> rows_;
  std::vector<DecomposedCone> cones_;
};

enum class SolveStatus {
  Optimal,            // all tolerances met
  MaxIterations,      // returned best iterate
  PrimalInfeasible,   // heuristic certificate of primal infeasibility
  DualInfeasible,     // heuristic certificate of dual infeasibility / unbounded primal
  NumericalProblem,   // linear algebra failed to make progress
  Interrupted,        // stopped by cancellation or wall-clock budget
  Diverged,           // watchdog: NaN/Inf or iterate blowup mid-iteration
  Faulted,            // backend died outright (exception / injected fault)
};

std::string to_string(SolveStatus status);

/// One step the resilience layer (sdp/resilience) took to keep a solve
/// alive: a same-backend retry with perturbed options, a fallback to the
/// next backend in the policy chain, or the async ADMM driver's in-solve
/// fallback to the synchronous lockstep loop. Recorded on
/// Solution::recoveries in the order taken — the audit trail behind "this
/// certificate survived a worker death".
struct RecoveryRecord {
  std::string action;  // "retry" | "fallback" | "sync-fallback" | "fp32-fallback"
  std::string from;    // failing backend/driver
  std::string to;      // backend/driver the recovery ran on
  std::string reason;  // typed cause, e.g. "Diverged(phase=primal-residual)"
  int attempt = 0;     // 1-based recovery step within this solve
};

/// Wall-clock seconds a backend spent in each hot-path phase, summed over
/// iterations. The taxonomy is shared by both backends so benches can
/// compare like with like:
///   schur   — IPM: Schur-complement assembly; ADMM: the cached y-update
///             normal solves.
///   factor  — Cholesky factorizations (blocks + Schur/normal matrix) and
///             explicit block inverses.
///   eig     — eigendecompositions (IPM step-length bounds; ADMM PSD
///             projections, where this phase dominates).
///   recover — RHS assembly, search-direction / iterate recovery, residuals.
/// Two phases live *outside* the backends, stamped by the lowering pipeline
/// (sdp/lowering) so decomposed-vs-seam comparisons account for the full
/// round trip:
///   convert  — SOS→SDP lowering passes (csp analysis, clique decomposition,
///              block lowering, equilibration).
///   complete — mapping a lowered solution back to the original shape
///              (clique-tree PSD completion, dual scatter-add, blob remaps).
struct PhaseTimes {
  double schur = 0.0;
  double factor = 0.0;
  double eig = 0.0;
  double recover = 0.0;
  double convert = 0.0;
  double complete = 0.0;

  double total() const { return schur + factor + eig + recover + convert + complete; }
  void merge(const PhaseTimes& other) {
    schur += other.schur;
    factor += other.factor;
    eig += other.eig;
    recover += other.recover;
    convert += other.convert;
    complete += other.complete;
  }
};

/// Telemetry of the IPM's mixed-precision Schur path
/// (IpmOptions::mixed_precision): the Schur complement is factored in FP32
/// and the search direction is recovered by FP64 iterative refinement
/// against the FP64 matrix. Zero-valued when the mode is off.
struct MixedPrecisionStats {
  bool enabled = false;
  /// Successful FP32 Schur factorizations (at most one per iteration).
  int fp32_factorizations = 0;
  /// Iterations where the FP32 path was abandoned for the FP64
  /// factorization — an FP32 pivot breakdown, an injected fault at the
  /// fp32-factorization site, or refinement stagnation mid-iteration. Each
  /// is also a RecoveryRecord{action="fp32-fallback"} on the Solution.
  int fp64_fallbacks = 0;
  /// FP64 refinement steps summed over every refined triangular solve.
  long refinement_steps = 0;
  /// Largest number of refinement steps any single solve needed.
  int max_refinement_steps = 0;
};

struct Solution {
  SolveStatus status = SolveStatus::NumericalProblem;
  std::vector<linalg::Matrix> x;  // PSD blocks
  std::vector<linalg::Matrix> z;  // dual slacks
  linalg::Vector y;               // equality multipliers
  linalg::Vector w;               // free variables
  double primal_objective = 0.0;
  double dual_objective = 0.0;
  double mu = 0.0;                // final complementarity
  double primal_residual = 0.0;   // relative
  double dual_residual = 0.0;     // relative
  double gap = 0.0;               // relative duality gap
  int iterations = 0;
  std::string backend;            // name of the backend that produced this
  double solve_seconds = 0.0;     // wall-clock time inside the backend
  PhaseTimes phase;               // per-phase breakdown of solve_seconds
  /// Largest PSD cone the backend actually worked on. Set by
  /// SosProgram::solve from the compiled (and, under SparsityOptions::
  /// Chordal, converted) problem — the cone-size telemetry behind the
  /// dense-vs-clique benches; 0 when the producer did not record it.
  std::size_t max_cone = 0;
  /// Dimension of the dense Schur complement (IPM) / normal matrix (ADMM)
  /// the backend factored. With native decomposed cones this equals the
  /// problem's row count — the overlap couplings are block-eliminated
  /// multipliers, never rows of the factored system — while the seam
  /// conversion pays for its overlap rows here. 0 when not recorded.
  std::size_t schur_rows = 0;
  /// Async clique-parallel ADMM telemetry (empty/zero for every other
  /// driver). worker_iterations[w] counts projection rounds worker w
  /// completed; max_staleness_seen is the largest scheduling lag observed on
  /// either side of the mailboxes — a worker projecting with an old y, or
  /// the consensus thread evaluating an old projection round — bounded by
  /// AdmmOptions::max_staleness; consensus_rounds counts y-versions the
  /// consensus thread published; consensus_residual is the max-norm overlap
  /// (separator-consistency) residual of the returned iterate.
  std::vector<int> worker_iterations;
  int max_staleness_seen = 0;
  long consensus_rounds = 0;
  double consensus_residual = 0.0;
  /// Phase the watchdogs blamed for a Diverged/Faulted/NumericalProblem
  /// outcome ("factor", "primal-residual", "iterate", ...); empty when no
  /// failure was classified.
  std::string faulted_phase;
  /// Mixed-precision Schur telemetry (IPM only; zero-valued when the mode
  /// is off or the backend does not support it).
  MixedPrecisionStats mixed;
  /// Recovery steps the resilience layer took to produce this solution,
  /// in order. Empty for a clean first-attempt solve.
  std::vector<RecoveryRecord> recoveries;
  /// The solve ran its course and returned a best iterate. An Interrupted
  /// solve may have stopped before the first step, so it makes no such
  /// claim — check the residuals before accepting its iterate.
  bool feasible() const {
    return status == SolveStatus::Optimal || status == SolveStatus::MaxIterations;
  }
};

}  // namespace soslock::sdp
