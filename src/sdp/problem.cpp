#include "sdp/problem.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace soslock::sdp {

void SparseSym::add(std::size_t r, std::size_t c, double v) {
  if (v == 0.0) return;
  if (r > c) std::swap(r, c);
  // Merge with an existing entry if present (linear scan: rows are tiny).
  for (Triplet& t : entries) {
    if (t.r == r && t.c == c) {
      t.v += v;
      return;
    }
  }
  entries.push_back({r, c, v});
}

double SparseSym::dot(const linalg::Matrix& s) const {
  double acc = 0.0;
  for (const Triplet& t : entries) {
    acc += (t.r == t.c ? 1.0 : 2.0) * t.v * s(t.r, t.c);
  }
  return acc;
}

void SparseSym::add_to(linalg::Matrix& out, double scale) const {
  for (const Triplet& t : entries) {
    out(t.r, t.c) += scale * t.v;
    if (t.r != t.c) out(t.c, t.r) += scale * t.v;
  }
}

void SparseSym::times_dense(const linalg::Matrix& x, linalg::Matrix& out) const {
  assert(out.rows() == x.rows() && out.cols() == x.cols());
  out.fill(0.0);
  const std::size_t n = x.cols();
  for (const Triplet& t : entries) {
    const double* xr = x.row_ptr(t.c);
    double* outr = out.row_ptr(t.r);
    for (std::size_t k = 0; k < n; ++k) outr[k] += t.v * xr[k];
    if (t.r != t.c) {
      const double* xr2 = x.row_ptr(t.r);
      double* outr2 = out.row_ptr(t.c);
      for (std::size_t k = 0; k < n; ++k) outr2[k] += t.v * xr2[k];
    }
  }
}

double SparseSym::frobenius_norm() const {
  double acc = 0.0;
  for (const Triplet& t : entries) acc += (t.r == t.c ? 1.0 : 2.0) * t.v * t.v;
  return std::sqrt(acc);
}

void SparseSym::scale(double s) {
  for (Triplet& t : entries) t.v *= s;
}

std::size_t Problem::add_block(std::size_t n) {
  block_sizes_.push_back(n);
  c_.emplace_back(n, n);
  return block_sizes_.size() - 1;
}

std::size_t Problem::add_free(double obj_coeff) {
  f_.push_back(obj_coeff);
  return f_.size() - 1;
}

void Problem::set_block_objective(std::size_t block, linalg::Matrix c) {
  assert(block < c_.size());
  assert(c.rows() == block_sizes_[block] && c.cols() == block_sizes_[block]);
  c_[block] = std::move(c);
}

void Problem::set_free_objective(std::size_t var, double coeff) {
  assert(var < f_.size());
  f_[var] = coeff;
}

std::size_t Problem::add_row(Row row) {
  rows_.push_back(std::move(row));
  return rows_.size() - 1;
}

std::size_t Problem::add_cone(DecomposedCone cone) {
  assert(cone.cliques.size() >= 1);
  for (const CliqueInfo& clique : cone.cliques) {
    assert(clique.block < block_sizes_.size());
    assert(block_sizes_[clique.block] == clique.vertices.size());
    (void)clique;
  }
  cones_.push_back(std::move(cone));
  return cones_.size() - 1;
}

std::size_t Problem::num_overlaps() const {
  std::size_t q = 0;
  for (const DecomposedCone& cone : cones_) q += cone.overlaps.size();
  return q;
}

std::size_t Problem::total_psd_dim() const {
  std::size_t n = 0;
  for (std::size_t s : block_sizes_) n += s;
  return n;
}

std::string Problem::stats() const {
  std::size_t nnz = 0, max_block = 0;
  for (const Row& row : rows_)
    for (const auto& [j, a] : row.blocks) nnz += a.entries.size();
  for (std::size_t s : block_sizes_) max_block = std::max(max_block, s);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "SDP: %zu rows, %zu blocks (max %zu, total dim %zu), %zu free vars, %zu nnz",
                rows_.size(), block_sizes_.size(), max_block, total_psd_dim(), f_.size(), nnz);
  std::string out = buf;
  if (!cones_.empty()) {
    std::snprintf(buf, sizeof(buf), ", %zu decomposed cone(s) (%zu overlap couplings)",
                  cones_.size(), num_overlaps());
    out += buf;
  }
  return out;
}

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "Optimal";
    case SolveStatus::MaxIterations: return "MaxIterations";
    case SolveStatus::PrimalInfeasible: return "PrimalInfeasible";
    case SolveStatus::DualInfeasible: return "DualInfeasible";
    case SolveStatus::NumericalProblem: return "NumericalProblem";
    case SolveStatus::Interrupted: return "Interrupted";
    case SolveStatus::Diverged: return "Diverged";
    case SolveStatus::Faulted: return "Faulted";
  }
  return "?";
}

}  // namespace soslock::sdp
