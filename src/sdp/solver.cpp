#include "sdp/solver.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "sdp/admm.hpp"
#include "sdp/ipm.hpp"
#include "sdp/resilience.hpp"
#include "util/log.hpp"
#include "util/thread_annotations.hpp"

namespace soslock::sdp {
namespace {

struct Registry {
  util::Mutex mutex;
  std::map<std::string, BackendFactory> factories SOSLOCK_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    // The static-init guard already serializes this, but the analysis (and
    // the lock discipline) do not special-case it.
    const util::MutexLock lock(reg->mutex);
    reg->factories["ipm"] = [](const SolverConfig& config) -> std::unique_ptr<SolverBackend> {
      return std::make_unique<IpmSolver>(config.resolved_ipm());
    };
    reg->factories["admm"] = [](const SolverConfig& config) -> std::unique_ptr<SolverBackend> {
      return std::make_unique<AdmmSolver>(config.resolved_admm());
    };
    return reg;
  }();
  return *r;
}

/// Meta-backend: inspects the problem at solve() time and delegates to the
/// first- or second-order backend by largest PSD block size. The Schur
/// assembly of the IPM costs O(m * n^3 + m^2 n^2) per iteration against the
/// ADMM's single O(n^3) eigendecomposition, so large Gram blocks tip the
/// balance to the first-order method despite its weaker accuracy.
///
/// Recovery is delegated to sdp::resilient_solve under config.resilience:
/// with the default policy an ADMM drift-lock escalates to a warm-started
/// IPM exactly as the old hard-coded rescue did, and transient failures
/// (Diverged/Faulted/NumericalProblem) get a jittered same-backend retry
/// first. The certificate audit remains the soundness gate above all of
/// this.
class AutoSolver : public SolverBackend {
 public:
  explicit AutoSolver(SolverConfig config) : config_(std::move(config)) {}

  using SolverBackend::solve;
  Solution solve(const Problem& problem, SolveContext& context) const override {
    util::log_debug("solver auto: delegating to ", auto_backend_for(problem, config_),
                    " under the resilience policy");
    SolverConfig config = config_;
    config.backend = "auto";  // let resilient_solve resolve per problem
    return resilient_solve(problem, context, config);
  }

  std::string name() const override { return "auto"; }
  Capabilities capabilities() const override {
    // Problem-dependent: above the block threshold the delegate is the ADMM,
    // which has none of these, so nothing can be promised up front.
    return {};
  }

 private:
  SolverConfig config_;
};

}  // namespace

bool WarmStart::fits(const Problem& problem) const {
  if (x.size() != problem.num_blocks() || z.size() != problem.num_blocks()) return false;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j].rows() != problem.block_size(j) || z[j].rows() != problem.block_size(j))
      return false;
  }
  return y.size() == problem.num_rows() && w.size() == problem.num_free();
}

WarmStart make_warm_start(const Solution& solution, std::uint64_t fingerprint) {
  WarmStart ws;
  ws.fingerprint = fingerprint;
  ws.x = solution.x;
  ws.z = solution.z;
  ws.y = solution.y;
  ws.w = solution.w;
  return ws;
}

IpmOptions SolverConfig::resolved_ipm() const {
  IpmOptions out = ipm;
  if (tolerance > 0.0) out.tolerance = tolerance;
  if (max_iterations > 0) out.max_iterations = max_iterations;
  if (verbose) out.verbose = true;
  if (threads != 1) out.threads = threads;
  return out;
}

AdmmOptions SolverConfig::resolved_admm() const {
  AdmmOptions out = admm;
  if (tolerance > 0.0) out.tolerance = tolerance;
  if (max_iterations > 0) out.max_iterations = max_iterations;
  if (verbose) out.verbose = true;
  if (threads != 1) out.threads = threads;
  return out;
}

bool register_backend(const std::string& name, BackendFactory factory) {
  if (name == "auto" || !factory) return false;
  Registry& reg = registry();
  const util::MutexLock lock(reg.mutex);
  return reg.factories.emplace(name, std::move(factory)).second;
}

std::vector<std::string> registered_backends() {
  Registry& reg = registry();
  const util::MutexLock lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size() + 1);
  for (const auto& [name, factory] : reg.factories) names.push_back(name);
  names.push_back("auto");
  std::sort(names.begin(), names.end());
  return names;
}

std::unique_ptr<SolverBackend> make_solver(const std::string& name,
                                           const SolverConfig& config) {
  if (name == "auto") return std::make_unique<AutoSolver>(config);
  Registry& reg = registry();
  BackendFactory factory;
  {
    const util::MutexLock lock(reg.mutex);
    const auto it = reg.factories.find(name);
    if (it != reg.factories.end()) factory = it->second;
  }
  if (!factory) throw std::invalid_argument("unknown SDP solver backend: " + name);
  return factory(config);
}

std::unique_ptr<SolverBackend> make_solver(const SolverConfig& config) {
  return make_solver(config.backend, config);
}

std::string auto_backend_for(const Problem& problem, const SolverConfig& config) {
  std::size_t max_block = 0;
  for (std::size_t j = 0; j < problem.num_blocks(); ++j)
    max_block = std::max(max_block, problem.block_size(j));
  return max_block >= config.auto_block_threshold ? "admm" : "ipm";
}

}  // namespace soslock::sdp
