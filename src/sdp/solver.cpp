#include "sdp/solver.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "sdp/admm.hpp"
#include "sdp/ipm.hpp"
#include "util/log.hpp"

namespace soslock::sdp {
namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, BackendFactory> factories;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    reg->factories["ipm"] = [](const SolverConfig& config) -> std::unique_ptr<SolverBackend> {
      return std::make_unique<IpmSolver>(config.resolved_ipm());
    };
    reg->factories["admm"] = [](const SolverConfig& config) -> std::unique_ptr<SolverBackend> {
      return std::make_unique<AdmmSolver>(config.resolved_admm());
    };
    return reg;
  }();
  return *r;
}

/// Meta-backend: inspects the problem at solve() time and delegates to the
/// first- or second-order backend by largest PSD block size. The Schur
/// assembly of the IPM costs O(m * n^3 + m^2 n^2) per iteration against the
/// ADMM's single O(n^3) eigendecomposition, so large Gram blocks tip the
/// balance to the first-order method despite its weaker accuracy.
class AutoSolver : public SolverBackend {
 public:
  explicit AutoSolver(SolverConfig config) : config_(std::move(config)) {}

  using SolverBackend::solve;
  Solution solve(const Problem& problem, SolveContext& context) const override {
    const std::string choice = auto_backend_for(problem, config_);
    util::log_debug("solver auto: delegating to ", choice);
    return make_solver(choice, config_)->solve(problem, context);
  }

  std::string name() const override { return "auto"; }
  Capabilities capabilities() const override {
    // Problem-dependent: above the block threshold the delegate is the ADMM,
    // which has none of these, so nothing can be promised up front.
    return {};
  }

 private:
  SolverConfig config_;
};

}  // namespace

IpmOptions SolverConfig::resolved_ipm() const {
  IpmOptions out = ipm;
  if (tolerance > 0.0) out.tolerance = tolerance;
  if (max_iterations > 0) out.max_iterations = max_iterations;
  if (verbose) out.verbose = true;
  return out;
}

AdmmOptions SolverConfig::resolved_admm() const {
  AdmmOptions out = admm;
  if (tolerance > 0.0) out.tolerance = tolerance;
  if (max_iterations > 0) out.max_iterations = max_iterations;
  if (verbose) out.verbose = true;
  return out;
}

bool register_backend(const std::string& name, BackendFactory factory) {
  if (name == "auto" || !factory) return false;
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.factories.emplace(name, std::move(factory)).second;
}

std::vector<std::string> registered_backends() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size() + 1);
  for (const auto& [name, factory] : reg.factories) names.push_back(name);
  names.push_back("auto");
  std::sort(names.begin(), names.end());
  return names;
}

std::unique_ptr<SolverBackend> make_solver(const std::string& name,
                                           const SolverConfig& config) {
  if (name == "auto") return std::make_unique<AutoSolver>(config);
  Registry& reg = registry();
  BackendFactory factory;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.factories.find(name);
    if (it != reg.factories.end()) factory = it->second;
  }
  if (!factory) throw std::invalid_argument("unknown SDP solver backend: " + name);
  return factory(config);
}

std::unique_ptr<SolverBackend> make_solver(const SolverConfig& config) {
  return make_solver(config.backend, config);
}

std::string auto_backend_for(const Problem& problem, const SolverConfig& config) {
  std::size_t max_block = 0;
  for (std::size_t j = 0; j < problem.num_blocks(); ++j)
    max_block = std::max(max_block, problem.block_size(j));
  return max_block >= config.auto_block_threshold ? "admm" : "ipm";
}

}  // namespace soslock::sdp
