#include "sdp/solver.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "sdp/admm.hpp"
#include "sdp/ipm.hpp"
#include "util/log.hpp"
#include "util/thread_annotations.hpp"

namespace soslock::sdp {
namespace {

struct Registry {
  util::Mutex mutex;
  std::map<std::string, BackendFactory> factories SOSLOCK_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    // The static-init guard already serializes this, but the analysis (and
    // the lock discipline) do not special-case it.
    const util::MutexLock lock(reg->mutex);
    reg->factories["ipm"] = [](const SolverConfig& config) -> std::unique_ptr<SolverBackend> {
      return std::make_unique<IpmSolver>(config.resolved_ipm());
    };
    reg->factories["admm"] = [](const SolverConfig& config) -> std::unique_ptr<SolverBackend> {
      return std::make_unique<AdmmSolver>(config.resolved_admm());
    };
    return reg;
  }();
  return *r;
}

/// Did the backend come back with an iterate too poor for certificate
/// extraction? Mirrors the acceptance bar of SosProgram::solve: certified
/// infeasibility is a *classification* (no retry), Optimal is fine, and a
/// best-effort iterate is usable when its residuals/gap are near tolerance.
bool delegate_result_unusable(const Solution& sol) {
  switch (sol.status) {
    case SolveStatus::Optimal:
    case SolveStatus::PrimalInfeasible:
    case SolveStatus::DualInfeasible:
    case SolveStatus::Interrupted:  // budget/cancel: retrying would also be cut short
      return false;
    case SolveStatus::MaxIterations:
    case SolveStatus::NumericalProblem:
      return sol.primal_residual > 1e-5 || sol.dual_residual > 1e-4 || sol.gap > 5e-3;
  }
  return false;
}

/// Meta-backend: inspects the problem at solve() time and delegates to the
/// first- or second-order backend by largest PSD block size. The Schur
/// assembly of the IPM costs O(m * n^3 + m^2 n^2) per iteration against the
/// ADMM's single O(n^3) eigendecomposition, so large Gram blocks tip the
/// balance to the first-order method despite its weaker accuracy.
///
/// Recovery: when the chosen backend classifies the solve as stuck (e.g. the
/// ADMM's degenerate-drift lock on the maximize_region objective) instead of
/// returning a usable iterate, "auto" re-solves on the *other* backend,
/// warm-started from the failed iterate. Size-based routing therefore no
/// longer needs to route around a backend's pathologies; the certificate
/// audit remains the soundness gate above all of this.
class AutoSolver : public SolverBackend {
 public:
  explicit AutoSolver(SolverConfig config) : config_(std::move(config)) {}

  using SolverBackend::solve;
  Solution solve(const Problem& problem, SolveContext& context) const override {
    const std::string choice = auto_backend_for(problem, config_);
    util::log_debug("solver auto: delegating to ", choice);
    const std::unique_ptr<SolverBackend> delegate = make_solver(choice, config_);
    Solution sol = delegate->solve(problem, context);
    // Recovery runs only from a low-accuracy delegate toward the
    // high-accuracy one: the IPM classifies infeasibility and stalls
    // authoritatively (an ADMM second opinion is 20k iterations of little
    // credibility), while an ADMM drift-lock is exactly what a warm-started
    // IPM polishes off.
    if (delegate->capabilities().high_accuracy || !delegate_result_unusable(sol) ||
        context.interrupted()) {
      return sol;
    }
    const std::string other = "ipm";
    util::log_info("solver auto: ", choice, " returned an unusable iterate (",
                   to_string(sol.status), ", rp=", sol.primal_residual, ", gap=", sol.gap,
                   "); retrying on ", other, " warm-started from it");
    // The rescue solve honors the cold-start A/B switch: with
    // config.warm_start off every solve — including this retry — runs cold.
    // The caller's pointer is restored even if the retry throws (rescue dies
    // with this frame; the caller-owned context must not point into it).
    WarmStart rescue;
    if (config_.warm_start) rescue = make_warm_start(sol, 0);
    const WarmStart* caller_warm = context.warm_start;
    context.warm_start = rescue.empty() ? caller_warm : &rescue;
    Solution retry;
    try {
      retry = make_solver(other, config_)->solve(problem, context);
    } catch (...) {
      context.warm_start = caller_warm;
      throw;
    }
    context.warm_start = caller_warm;
    // Account for the full cost of the recovery in the telemetry. When both
    // backends came back unusable, hand over the better-quality iterate.
    retry.iterations += sol.iterations;
    retry.solve_seconds += sol.solve_seconds;
    if (delegate_result_unusable(retry) &&
        sol.primal_residual + sol.gap < retry.primal_residual + retry.gap) {
      sol.iterations = retry.iterations;
      sol.solve_seconds = retry.solve_seconds;
      return sol;
    }
    return retry;
  }

  std::string name() const override { return "auto"; }
  Capabilities capabilities() const override {
    // Problem-dependent: above the block threshold the delegate is the ADMM,
    // which has none of these, so nothing can be promised up front.
    return {};
  }

 private:
  SolverConfig config_;
};

}  // namespace

bool WarmStart::fits(const Problem& problem) const {
  if (x.size() != problem.num_blocks() || z.size() != problem.num_blocks()) return false;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j].rows() != problem.block_size(j) || z[j].rows() != problem.block_size(j))
      return false;
  }
  return y.size() == problem.num_rows() && w.size() == problem.num_free();
}

WarmStart make_warm_start(const Solution& solution, std::uint64_t fingerprint) {
  WarmStart ws;
  ws.fingerprint = fingerprint;
  ws.x = solution.x;
  ws.z = solution.z;
  ws.y = solution.y;
  ws.w = solution.w;
  return ws;
}

IpmOptions SolverConfig::resolved_ipm() const {
  IpmOptions out = ipm;
  if (tolerance > 0.0) out.tolerance = tolerance;
  if (max_iterations > 0) out.max_iterations = max_iterations;
  if (verbose) out.verbose = true;
  if (threads != 1) out.threads = threads;
  return out;
}

AdmmOptions SolverConfig::resolved_admm() const {
  AdmmOptions out = admm;
  if (tolerance > 0.0) out.tolerance = tolerance;
  if (max_iterations > 0) out.max_iterations = max_iterations;
  if (verbose) out.verbose = true;
  if (threads != 1) out.threads = threads;
  return out;
}

bool register_backend(const std::string& name, BackendFactory factory) {
  if (name == "auto" || !factory) return false;
  Registry& reg = registry();
  const util::MutexLock lock(reg.mutex);
  return reg.factories.emplace(name, std::move(factory)).second;
}

std::vector<std::string> registered_backends() {
  Registry& reg = registry();
  const util::MutexLock lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size() + 1);
  for (const auto& [name, factory] : reg.factories) names.push_back(name);
  names.push_back("auto");
  std::sort(names.begin(), names.end());
  return names;
}

std::unique_ptr<SolverBackend> make_solver(const std::string& name,
                                           const SolverConfig& config) {
  if (name == "auto") return std::make_unique<AutoSolver>(config);
  Registry& reg = registry();
  BackendFactory factory;
  {
    const util::MutexLock lock(reg.mutex);
    const auto it = reg.factories.find(name);
    if (it != reg.factories.end()) factory = it->second;
  }
  if (!factory) throw std::invalid_argument("unknown SDP solver backend: " + name);
  return factory(config);
}

std::unique_ptr<SolverBackend> make_solver(const SolverConfig& config) {
  return make_solver(config.backend, config);
}

std::string auto_backend_for(const Problem& problem, const SolverConfig& config) {
  std::size_t max_block = 0;
  for (std::size_t j = 0; j < problem.num_blocks(); ++j)
    max_block = std::max(max_block, problem.block_size(j));
  return max_block >= config.auto_block_threshold ? "admm" : "ipm";
}

}  // namespace soslock::sdp
