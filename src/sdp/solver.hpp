#pragma once
// Pluggable SDP solver-backend API. Every SOS query in the verification
// pipeline routes through this interface, so solvers can be swapped (or
// auto-selected per problem) without touching the SOS or core layers:
//
//   auto solver = sdp::make_solver("admm");       // or "ipm", "auto", ...
//   sdp::SolveContext ctx;
//   ctx.time_budget_seconds = 5.0;
//   sdp::Solution sol = solver->solve(problem, ctx);
//
// Backends register themselves in a process-wide registry under a string
// name; "auto" is a meta-backend that picks per problem by block size (large
// Gram blocks favor the first-order backend, whose per-iteration cost is an
// eigendecomposition instead of a Schur-complement assembly).
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sdp/options.hpp"
#include "sdp/problem.hpp"
#include "util/timer.hpp"

namespace soslock::sdp {

/// Exported solver state for warm-starting a structurally identical solve
/// (same structure_fingerprint — see sdp/structure.hpp; coefficient *values*
/// may differ, which is exactly the advection/level-curve retry pattern).
/// SosProgram-level blobs live in the base (pre-lowering, unequilibrated)
/// space — y is the multiplier of the rows as compiled, x/z have the
/// original cone shapes — and are re-lowered per clique by
/// sdp::remap_warm_start, so one blob replays across re-compiles with
/// different row scales or decomposition parameters. Backend-level blobs
/// (SolveContext::warm_start) are in the space of the problem as passed to
/// the backend; native decomposed-cone overlap multipliers are deliberately
/// not part of either (they restart at zero on restore).
struct WarmStart {
  std::uint64_t fingerprint = 0;   // structure_fingerprint of the source
  std::vector<linalg::Matrix> x;   // primal PSD blocks
  std::vector<linalg::Matrix> z;   // dual slacks
  linalg::Vector y;                // equality multipliers (original row space)
  linalg::Vector w;                // free variables

  bool empty() const { return x.empty() && y.empty(); }
  /// Does the blob's shape fit `problem`? (Block sizes and counts; callers
  /// that track fingerprints should also compare those.)
  bool fits(const Problem& problem) const;
};

/// Snapshot the iterate of a finished solve (any status that carries state,
/// including Interrupted and MaxIterations best iterates).
WarmStart make_warm_start(const Solution& solution, std::uint64_t fingerprint);

/// Per-iteration progress snapshot delivered to SolveContext::on_iteration.
struct IterationInfo {
  int iteration = 0;
  double mu = 0.0;               // complementarity (0 for first-order backends)
  double primal_residual = 0.0;  // relative
  double dual_residual = 0.0;    // relative
  double gap = 0.0;              // relative duality gap
};

/// Runtime controls threaded through a solve: wall-clock budget, cooperative
/// cancellation, and telemetry. Backends poll interrupted() once per
/// iteration and return their best iterate (status Interrupted) when it
/// fires. The budget clock starts at construction; call arm() to restart it
/// when reusing one context across solves.
class SolveContext {
 public:
  /// Wall-clock budget in seconds; <= 0 disables the budget.
  double time_budget_seconds = 0.0;
  /// Cooperative cancellation flag owned by the caller (may be null).
  std::atomic<bool>* cancel = nullptr;
  /// Invoked once per iteration from the solving thread (may be empty).
  std::function<void(const IterationInfo&)> on_iteration;
  /// Optional warm start (caller-owned, must outlive the solve). Backends
  /// with Capabilities::warm_startable restore it when it fits the problem;
  /// an ill-fitting blob is silently ignored (cold start). The caller is
  /// responsible for only passing blobs whose structure fingerprint matches
  /// the problem being solved.
  const WarmStart* warm_start = nullptr;

  /// Restart the budget clock.
  void arm() { timer_.reset(); }
  double elapsed_seconds() const { return timer_.seconds(); }
  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
  bool out_of_budget() const {
    return time_budget_seconds > 0.0 && timer_.seconds() > time_budget_seconds;
  }
  /// True when the backend should stop and return its best iterate.
  bool interrupted() const { return cancelled() || out_of_budget(); }
  void notify(const IterationInfo& info) const {
    if (on_iteration) on_iteration(info);
  }

 private:
  util::Timer timer_;
};

/// What a backend can do; consulted by the auto-selection heuristic and
/// by callers that need e.g. certified infeasibility detection.
struct Capabilities {
  bool detects_infeasibility = false;  // can return Primal/DualInfeasible
  bool high_accuracy = false;          // tolerances ~1e-8 are realistic
  bool cheap_large_blocks = false;     // first-order per-iteration cost
  bool warm_startable = false;         // honors SolveContext::warm_start
};

class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  /// Solve (a copy of) the problem under the given runtime context. The
  /// returned Solution carries the backend name and wall-clock telemetry.
  virtual Solution solve(const Problem& problem, SolveContext& context) const = 0;

  virtual std::string name() const = 0;
  virtual Capabilities capabilities() const = 0;

  /// Convenience: solve with a fresh default context.
  Solution solve(const Problem& problem) const {
    SolveContext context;
    return solve(problem, context);
  }
};

/// Shared solver configuration carried by every options struct in the core
/// verification layer. `backend` selects from the registry; the shared
/// tolerance/verbose fields override the per-backend ones, and
/// max_iterations = 0 keeps each backend's own default (the sensible budgets
/// differ by two orders of magnitude between second- and first-order
/// methods).
struct SolverConfig {
  std::string backend = "auto";   // "ipm" | "admm" | "auto" | registered name
  double tolerance = 0.0;         // 0 = backend default
  int max_iterations = 0;         // 0 = backend default
  bool verbose = false;
  double time_budget_seconds = 0.0;  // per-solve wall-clock budget (0 = none)
  /// Let the retry/sweep loops in the core verification steps replay the
  /// previous iterate into the next structurally identical solve (see
  /// WarmStart). Off = every solve starts cold (the bench A/B switch).
  bool warm_start = true;
  /// Worker threads for the backends' per-iteration hot paths (IPM Schur
  /// assembly / factorizations, ADMM PSD projections). 0 = hardware count;
  /// 1 (default) = serial. sos::BatchSolver::solve_all divides this across
  /// its batch workers so nested parallelism never oversubscribes. Parallel
  /// solves are deterministic: the work partition writes disjoint entries in
  /// a fixed order, so iterates are bit-identical across thread counts.
  std::size_t threads = 1;
  /// "auto": smallest max-block-size at which the first-order backend wins.
  std::size_t auto_block_threshold = 80;
  /// Sparsity exploitation of the SOS compiler / SDP conversion layer. The
  /// core certifiers forward this to SosProgram::set_sparsity before adding
  /// constraints (Gram clique splitting happens at constraint-add time).
  SparsityOptions sparsity = SparsityOptions::Off;
  ChordalOptions chordal;

  IpmOptions ipm;    // backend-specific tuning (shared fields above win)
  AdmmOptions admm;

  /// Retry/fallback policy applied by sdp::resilient_solve (and with it by
  /// the "auto" meta-backend) when a solve comes back unusable.
  ResiliencePolicy resilience;

  /// Backend options with the shared overrides applied.
  IpmOptions resolved_ipm() const;
  AdmmOptions resolved_admm() const;
};

using BackendFactory =
    std::function<std::unique_ptr<SolverBackend>(const SolverConfig&)>;

/// Register a backend factory under `name`; returns false (and leaves the
/// registry unchanged) when the name is already taken.
bool register_backend(const std::string& name, BackendFactory factory);

/// Names available to make_solver, sorted ("auto" included).
std::vector<std::string> registered_backends();

/// Build a backend by name. Throws std::invalid_argument on unknown names.
std::unique_ptr<SolverBackend> make_solver(const std::string& name,
                                           const SolverConfig& config = {});
/// Build the backend named by config.backend.
std::unique_ptr<SolverBackend> make_solver(const SolverConfig& config);

/// The backend "auto" would delegate to for this problem (exposed so the
/// heuristic itself is testable without running a solve).
std::string auto_backend_for(const Problem& problem, const SolverConfig& config);

}  // namespace soslock::sdp
