#pragma once
// Infeasible-start primal-dual interior-point method for the block SDP of
// problem.hpp. HKM (Helmberg-Kojima-Monteiro) search direction with Mehrotra
// predictor-corrector; free variables are handled exactly via block
// elimination on the Schur complement.
//
// The second-order, high-accuracy SolverBackend ("ipm" in the registry); the
// workhorse behind every SOS feasibility/optimization query in the
// verification pipeline.
#include "sdp/options.hpp"
#include "sdp/problem.hpp"
#include "sdp/solver.hpp"

namespace soslock::sdp {

class IpmSolver : public SolverBackend {
 public:
  explicit IpmSolver(IpmOptions options = {}) : options_(options) {}

  using SolverBackend::solve;
  /// Solve the problem as given (equilibrate rows first for SOS-scale data;
  /// SosProgram::solve does). A fitting SolveContext::warm_start is restored
  /// with a shifted-feasible interior push.
  Solution solve(const Problem& problem, SolveContext& context) const override;

  std::string name() const override { return "ipm"; }
  Capabilities capabilities() const override {
    Capabilities caps;
    caps.detects_infeasibility = true;
    caps.high_accuracy = true;
    caps.warm_startable = true;
    return caps;
  }

  const IpmOptions& options() const { return options_; }

 private:
  IpmOptions options_;
};

}  // namespace soslock::sdp
