#pragma once
// Infeasible-start primal-dual interior-point method for the block SDP of
// problem.hpp. HKM (Helmberg-Kojima-Monteiro) search direction with Mehrotra
// predictor-corrector; free variables are handled exactly via block
// elimination on the Schur complement.
//
// This is the workhorse behind every SOS feasibility/optimization query in
// the verification pipeline.
#include "sdp/problem.hpp"

namespace soslock::sdp {

struct IpmOptions {
  double tolerance = 1e-7;        // relative gap + feasibility target
  int max_iterations = 120;
  double step_fraction = 0.98;    // fraction of the distance to the boundary
  bool predictor_corrector = true;
  double free_var_regularization = 1e-10;  // delta on the free-var Schur block
  double infeasibility_threshold = 1e8;    // ||y|| blowup => infeasibility cert
  bool verbose = false;
};

class IpmSolver {
 public:
  explicit IpmSolver(IpmOptions options = {}) : options_(options) {}

  /// Solve (a copy of) the problem; row equilibration is applied internally.
  Solution solve(const Problem& problem) const;

  const IpmOptions& options() const { return options_; }

 private:
  IpmOptions options_;
};

}  // namespace soslock::sdp
