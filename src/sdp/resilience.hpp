#pragma once
// Declarative retry/fallback driver around the solver backends. One call:
//
//   sdp::SolverConfig config;            // config.resilience = the policy
//   sdp::Solution sol = sdp::resilient_solve(problem, context, config);
//
// resolves config.backend ("auto" included), runs it, classifies the result,
// and — under config.resilience — retries the same backend with
// deterministically jittered options, then escalates along the fallback
// chain, each attempt warm-started from the best usable iterate so far. A
// backend that throws (a deep linear-algebra std::logic_error, an injected
// fault) is converted to a typed SolveStatus::Faulted result instead of
// unwinding through the caller. Every recovery step lands on
// Solution::recoveries, so "this certificate needed two attempts" is
// auditable telemetry rather than a lost log line. The "auto" meta-backend
// routes through this, generalizing its old hard-coded ADMM -> IPM rescue.
#include "sdp/problem.hpp"
#include "sdp/solver.hpp"

namespace soslock::sdp {

/// Is this result too poor to hand to certificate extraction? Certified
/// infeasibility is a classification (not a failure), Interrupted means the
/// caller's budget — not the backend — gave out, and a best-effort iterate
/// is usable when its residuals/gap are near tolerance. Diverged/Faulted are
/// always unusable.
bool solve_unusable(const Solution& solution);

/// Solve under config.resilience (see ResiliencePolicy in sdp/options.hpp).
/// The caller's context (budget, cancellation, warm start) applies to every
/// attempt; context.warm_start is restored to the caller's pointer before
/// returning or throwing.
Solution resilient_solve(const Problem& problem, SolveContext& context,
                         const SolverConfig& config);

}  // namespace soslock::sdp
