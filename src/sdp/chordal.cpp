#include "sdp/chordal.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eigen_sym.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace soslock::sdp {
namespace {

using linalg::Matrix;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Moore–Penrose pseudo-inverse of a (nearly) PSD matrix via the symmetric
/// eigendecomposition; eigenvalues below a relative cutoff are treated as 0.
Matrix pinv_psd(const Matrix& a) {
  const std::size_t n = a.rows();
  Matrix out(n, n);
  if (n == 0) return out;
  const linalg::EigenSym eig = linalg::eigen_sym(a);
  double scale = 0.0;
  for (const double v : eig.values) scale = std::max(scale, std::fabs(v));
  const double cutoff = 1e-10 * std::max(1.0, scale);
  for (std::size_t k = 0; k < n; ++k) {
    if (eig.values[k] <= cutoff) continue;
    const double inv = 1.0 / eig.values[k];
    for (std::size_t r = 0; r < n; ++r) {
      const double vr = eig.vectors(r, k) * inv;
      if (vr == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) out(r, c) += vr * eig.vectors(c, k);
    }
  }
  return out;
}

/// Aggregate sparsity adjacency of block `j`: an edge wherever an
/// off-diagonal entry of C_j or of any A_ij is structurally nonzero.
util::Adjacency aggregate_adjacency(const Problem& p, std::size_t j) {
  const std::size_t n = p.block_size(j);
  util::Adjacency adj(n, std::vector<bool>(n, false));
  auto mark = [&](std::size_t r, std::size_t c) {
    if (r == c) return;
    adj[r][c] = true;
    adj[c][r] = true;
  };
  for (const Row& row : p.rows()) {
    const auto it = row.blocks.find(j);
    if (it == row.blocks.end()) continue;
    for (const Triplet& t : it->second.entries) mark(t.r, t.c);
  }
  const Matrix& c = p.block_objective(j);
  if (c.rows() == n) {
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t cc = r + 1; cc < n; ++cc)
        if (c(r, cc) != 0.0 || c(cc, r) != 0.0) mark(r, cc);
  }
  return adj;
}

}  // namespace

BlockEntryIndex index_decomposed_block(const util::CliqueForest& forest, std::size_t n) {
  BlockEntryIndex idx;
  idx.n = n;
  idx.entry_clique.assign(n * n, BlockEntryIndex::kNone);
  idx.local.resize(forest.cliques.size());
  for (std::size_t k = 0; k < forest.cliques.size(); ++k) {
    idx.local[k].assign(n, BlockEntryIndex::kNone);
    const auto& clique = forest.cliques[k];
    for (std::size_t a = 0; a < clique.size(); ++a) idx.local[k][clique[a]] = a;
    for (std::size_t a = 0; a < clique.size(); ++a) {
      for (std::size_t b = a; b < clique.size(); ++b) {
        const std::size_t r = clique[a], c = clique[b];
        if (idx.entry_clique[r * n + c] == BlockEntryIndex::kNone) {
          idx.entry_clique[r * n + c] = k;
          idx.entry_clique[c * n + r] = k;
        }
      }
    }
  }
  return idx;
}

std::size_t ChordalMap::max_clique_size() const {
  std::size_t mx = 0;
  for (const BlockPlan& plan : plans) mx = std::max(mx, plan.forest.max_clique_size());
  return mx;
}

ConversionPlan plan_decomposition(const Problem& p, const ChordalOptions& options) {
  ConversionPlan plan;
  plan.forests.resize(p.num_blocks());
  plan.split.assign(p.num_blocks(), false);
  std::size_t candidates = 0, max_clique = 0;
  for (std::size_t j = 0; j < p.num_blocks(); ++j) {
    const std::size_t n = p.block_size(j);
    if (n < options.min_block_size) continue;
    ++candidates;
    const util::Adjacency adj = aggregate_adjacency(p, j);
    // Complete patterns (every SOS-compiled Gram block: each entry pair has
    // a coefficient-matching row) have exactly one clique — skip the O(n^3)
    // elimination outright.
    std::size_t edges = 0;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r + 1; c < n; ++c) edges += adj[r][c] ? 1 : 0;
    if (edges == n * (n - 1) / 2) continue;
    util::CliqueForest forest = util::chordal_cliques(n, adj);
    if (forest.cliques.size() <= 1 || !forest.covers(n)) continue;
    if (static_cast<double>(forest.max_clique_size()) >
        options.max_clique_fraction * static_cast<double>(n)) {
      continue;
    }
    max_clique = std::max(max_clique, forest.max_clique_size());
    plan.forests[j] = std::move(forest);
    plan.split[j] = true;
    plan.any = true;
  }
  std::size_t splitting = 0;
  for (const bool s : plan.split) splitting += s ? 1 : 0;
  plan.detail = std::to_string(candidates) + " candidate block(s), " +
                std::to_string(splitting) + " split, max clique " + std::to_string(max_clique);
  return plan;
}

ChordalMap apply_decomposition(Problem& p, const ConversionPlan& conversion, bool at_seam) {
  ChordalMap map;
  map.original_rows = p.num_rows();
  map.original_block_sizes = p.block_sizes();
  map.block_map.assign(p.num_blocks(), ChordalMap::kNotMapped);
  const std::vector<util::CliqueForest>& forests = conversion.forests;
  const std::vector<bool>& split = conversion.split;
  if (!conversion.any) return map;

  // Converted problem: clique blocks replace split blocks in place (order of
  // kept blocks is preserved), original rows keep their indices, overlap
  // rows follow.
  Problem conv;
  std::vector<BlockEntryIndex> indices(p.num_blocks());
  for (std::size_t j = 0; j < p.num_blocks(); ++j) {
    const std::size_t n = p.block_size(j);
    if (!split[j]) {
      map.block_map[j] = conv.add_block(n);
      conv.set_block_objective(map.block_map[j], p.block_objective(j));
      continue;
    }
    BlockPlan plan;
    plan.original_block = j;
    plan.original_size = n;
    plan.forest = forests[j];
    indices[j] = index_decomposed_block(plan.forest, n);
    std::vector<Matrix> clique_obj;
    clique_obj.reserve(plan.forest.cliques.size());
    for (const auto& clique : plan.forest.cliques) {
      plan.converted_block.push_back(conv.add_block(clique.size()));
      clique_obj.emplace_back(clique.size(), clique.size());
    }
    // Objective entries land on their canonical clique.
    const Matrix& c = p.block_objective(j);
    if (c.rows() == n) {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t cc = r; cc < n; ++cc) {
          if (c(r, cc) == 0.0 && c(cc, r) == 0.0) continue;
          const std::size_t k = indices[j].entry_clique[r * n + cc];
          const std::size_t lr = indices[j].local[k][r], lc = indices[j].local[k][cc];
          clique_obj[k](lr, lc) += c(r, cc);
          if (lr != lc) clique_obj[k](lc, lr) += c(cc, r);
        }
      }
    }
    for (std::size_t k = 0; k < plan.converted_block.size(); ++k)
      conv.set_block_objective(plan.converted_block[k], std::move(clique_obj[k]));
    map.plans.push_back(std::move(plan));
  }

  for (std::size_t v = 0; v < p.num_free(); ++v) conv.add_free(p.free_objective()[v]);

  for (const Row& row : p.rows()) {
    Row nr;
    nr.rhs = row.rhs;
    nr.label = row.label;
    nr.free_coeffs = row.free_coeffs;
    for (const auto& [j, a] : row.blocks) {
      if (!split[j]) {
        nr.blocks[map.block_map[j]] = a;
        continue;
      }
      const BlockEntryIndex& idx = indices[j];
      const BlockPlan* plan = nullptr;
      for (const BlockPlan& candidate : map.plans) {
        if (candidate.original_block == j) {
          plan = &candidate;
          break;
        }
      }
      for (const Triplet& t : a.entries) {
        const std::size_t k = idx.entry_clique[t.r * idx.n + t.c];
        nr.blocks[plan->converted_block[k]].add(idx.local[k][t.r], idx.local[k][t.c], t.v);
      }
    }
    conv.add_row(std::move(nr));
  }

  // Overlap-consistency couplings: along each clique-tree edge, tie every
  // shared entry of the child to the parent's copy. The RIP guarantees
  // tree-edge ties chain every copy of an entry together. At the seam they
  // become equality rows of the converted problem; natively they ride on a
  // DecomposedCone descriptor and never enter the row set — the backends
  // enforce them with block-eliminated multiplier terms.
  std::size_t overlap_count = 0;
  for (const BlockPlan& plan : map.plans) {
    const BlockEntryIndex& idx = indices[plan.original_block];
    DecomposedCone cone;
    cone.original_size = plan.original_size;
    for (std::size_t k = 0; k < plan.forest.cliques.size(); ++k) {
      CliqueInfo info;
      info.vertices = plan.forest.cliques[k];
      info.block = plan.converted_block[k];
      info.parent = plan.forest.parent[k];
      cone.cliques.push_back(std::move(info));
    }
    for (std::size_t k = 0; k < plan.forest.cliques.size(); ++k) {
      const std::size_t parent = plan.forest.parent[k];
      if (parent == k) continue;
      std::vector<std::size_t> sep;
      for (const std::size_t v : plan.forest.cliques[k]) {
        if (idx.local[parent][v] != kNone) sep.push_back(v);
      }
      for (std::size_t a = 0; a < sep.size(); ++a) {
        for (std::size_t b = a; b < sep.size(); ++b) {
          const std::size_t r = sep[a], c = sep[b];
          // <A, X> doubles off-diagonal triplets, so 0.5 ties the entries 1:1.
          const double w = r == c ? 1.0 : 0.5;
          Row orow;
          orow.label = "chordal.ov.b" + std::to_string(plan.original_block) + ".c" +
                       std::to_string(k);
          SparseSym child;
          child.add(idx.local[k][r], idx.local[k][c], w);
          SparseSym par;
          par.add(idx.local[parent][r], idx.local[parent][c], -w);
          orow.blocks[plan.converted_block[k]] = std::move(child);
          orow.blocks[plan.converted_block[parent]] = std::move(par);
          if (at_seam) {
            conv.add_row(std::move(orow));
          } else {
            cone.overlaps.push_back(std::move(orow));
          }
          ++overlap_count;
        }
      }
    }
    if (!at_seam) conv.add_cone(std::move(cone));
  }

  util::log_debug("chordal: decomposed ", map.plans.size(), " block(s), max clique ",
                  map.max_clique_size(), ", ", overlap_count,
                  at_seam ? " overlap rows (seam)" : " native overlap couplings");
  p = std::move(conv);
  return map;
}

ChordalMap chordal_decompose(Problem& p, const ChordalOptions& options) {
  return apply_decomposition(p, plan_decomposition(p, options), options.at_seam);
}

namespace {

/// Clique-tree PSD completion (Grone et al.): walk the cliques in RIP
/// preorder; each clique contributes its own entries, and the unknown block
/// between its residual R and the previously placed vertices completes as
/// X[T,R] = X[T,S] X[S,S]^+ X[S,R] through the separator S, which keeps the
/// assembled matrix PSD (up to the solver tolerance already present in the
/// clique blocks).
Matrix complete_block(const BlockPlan& plan, const std::vector<Matrix>& converted_x) {
  const std::size_t n = plan.original_size;
  Matrix x(n, n);
  std::vector<bool> placed(n, false);
  std::vector<std::size_t> placed_list;
  for (std::size_t k = 0; k < plan.forest.cliques.size(); ++k) {
    const auto& clique = plan.forest.cliques[k];
    const std::size_t cb = plan.converted_block[k];
    if (cb >= converted_x.size() || converted_x[cb].rows() != clique.size()) continue;
    Matrix xk = converted_x[cb];
    xk.symmetrize();

    std::vector<std::size_t> sep_local, res_local;
    for (std::size_t a = 0; a < clique.size(); ++a)
      (placed[clique[a]] ? sep_local : res_local).push_back(a);

    // The clique's own entries; pairs already placed keep the earlier copy
    // (equal to the overlap-row residual tolerance anyway).
    for (std::size_t a = 0; a < clique.size(); ++a) {
      for (std::size_t b = a; b < clique.size(); ++b) {
        if (placed[clique[a]] && placed[clique[b]]) continue;
        x(clique[a], clique[b]) = xk(a, b);
        x(clique[b], clique[a]) = xk(a, b);
      }
    }

    // Completion of the block between the residual and the vertices placed
    // before this clique but outside its separator.
    std::vector<std::size_t> outside;
    for (const std::size_t g : placed_list) {
      if (std::find(clique.begin(), clique.end(), g) == clique.end()) outside.push_back(g);
    }
    if (!sep_local.empty() && !res_local.empty() && !outside.empty()) {
      const std::size_t s = sep_local.size(), r = res_local.size(), t = outside.size();
      Matrix xss(s, s);
      for (std::size_t a = 0; a < s; ++a)
        for (std::size_t b = 0; b < s; ++b)
          xss(a, b) = x(clique[sep_local[a]], clique[sep_local[b]]);
      const Matrix pinv = pinv_psd(xss);
      Matrix xts(t, s);
      for (std::size_t a = 0; a < t; ++a)
        for (std::size_t b = 0; b < s; ++b) xts(a, b) = x(outside[a], clique[sep_local[b]]);
      Matrix xsr(s, r);
      for (std::size_t a = 0; a < s; ++a)
        for (std::size_t b = 0; b < r; ++b) xsr(a, b) = xk(sep_local[a], res_local[b]);
      const Matrix fill = (xts * pinv) * xsr;
      for (std::size_t a = 0; a < t; ++a) {
        for (std::size_t b = 0; b < r; ++b) {
          x(outside[a], clique[res_local[b]]) = fill(a, b);
          x(clique[res_local[b]], outside[a]) = fill(a, b);
        }
      }
    }
    for (const std::size_t a : res_local) {
      placed[clique[a]] = true;
      placed_list.push_back(clique[a]);
    }
  }
  return x;
}

}  // namespace

Solution recover_original(const Solution& converted, const ChordalMap& map) {
  if (map.identity()) return converted;
  const util::Timer complete_timer;
  Solution out;
  out.status = converted.status;
  out.phase = converted.phase;
  out.schur_rows = converted.schur_rows;
  out.primal_objective = converted.primal_objective;
  out.dual_objective = converted.dual_objective;
  out.mu = converted.mu;
  out.primal_residual = converted.primal_residual;
  out.dual_residual = converted.dual_residual;
  out.gap = converted.gap;
  out.iterations = converted.iterations;
  out.backend = converted.backend;
  out.solve_seconds = converted.solve_seconds;
  out.max_cone = converted.max_cone;
  out.w = converted.w;
  out.y.assign(converted.y.begin(),
               converted.y.begin() +
                   static_cast<std::ptrdiff_t>(
                       std::min(map.original_rows, converted.y.size())));

  const std::size_t nblocks = map.original_block_sizes.size();
  out.x.assign(nblocks, Matrix());
  out.z.assign(nblocks, Matrix());
  for (std::size_t j = 0; j < nblocks; ++j) {
    const std::size_t cb = map.block_map[j];
    if (cb == ChordalMap::kNotMapped) continue;
    if (cb < converted.x.size()) out.x[j] = converted.x[cb];
    if (cb < converted.z.size()) out.z[j] = converted.z[cb];
  }
  for (const BlockPlan& plan : map.plans) {
    const std::size_t n = plan.original_size;
    // Primal: clique-tree PSD completion of the partial matrix.
    out.x[plan.original_block] = complete_block(plan, converted.x);
    // Dual slack: scatter-add (Agler) — the overlap-row multipliers cancel
    // in +/- pairs, so the sum satisfies C - sum_i y_i A_i = Z exactly and
    // is PSD as a sum of padded PSD blocks.
    Matrix z(n, n);
    for (std::size_t k = 0; k < plan.forest.cliques.size(); ++k) {
      const std::size_t cb = plan.converted_block[k];
      const auto& clique = plan.forest.cliques[k];
      if (cb >= converted.z.size() || converted.z[cb].rows() != clique.size()) continue;
      for (std::size_t a = 0; a < clique.size(); ++a)
        for (std::size_t b = 0; b < clique.size(); ++b)
          z(clique[a], clique[b]) += converted.z[cb](a, b);
    }
    out.z[plan.original_block] = std::move(z);
  }
  // Completion/recovery time is part of the decomposed-vs-seam trade; stamp
  // it so PhaseTimes comparisons stay honest.
  out.phase.complete += complete_timer.seconds();
  return out;
}

}  // namespace soslock::sdp
