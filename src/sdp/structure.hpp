#pragma once
// Structural identity and cached sparsity patterns for SDP problems.
//
// The verification pipeline solves long chains of SDPs that share one
// compiled *structure* (block sizes, row sparsity, free-variable incidence)
// and differ only in coefficient values (an advection eps/lambda retry, a
// level maximisation per mode, a warm-started re-solve). Two facilities
// exploit that:
//
//  - structure_fingerprint(): a 64-bit hash of everything value-independent,
//    used to decide whether a WarmStart blob or a cached pattern applies.
//  - StructureCache: a small fingerprint-keyed store for the row→block
//    incidence that both backends otherwise rediscover on every solve.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sdp/problem.hpp"
#include "util/thread_annotations.hpp"

namespace soslock::sdp {

/// Hash of the value-independent structure of `p`: block sizes, free count,
/// per row the touched blocks, triplet positions and free indices (not their
/// values), and — for native decomposed cones — the clique layout and the
/// overlap-coupling positions. Two problems with equal fingerprints accept
/// each other's solver state as a warm start and share sparsity caches.
std::uint64_t structure_fingerprint(const Problem& p);

/// Provenance of one lowering pass (sdp/lowering): what ran, the structure
/// fingerprint it left behind, and how long it took. A chain of these is the
/// audit trail from the compiled problem to what the backend factored.
struct PassRecord {
  std::string name;               // "analyze" | "decompose" | "lower" | ...
  std::uint64_t fingerprint = 0;  // structure fingerprint after the pass
  double seconds = 0.0;
  std::string detail;             // human-readable summary
};

/// Value-independent sparsity pattern shared by structurally equal problems.
struct ProblemStructure {
  std::uint64_t fingerprint = 0;
  std::size_t num_rows = 0;  // of the source problem (collision guard)
  /// For each block, the rows whose coefficient touches it (ascending).
  std::vector<std::vector<std::size_t>> rows_touching_block;
  /// Fingerprint of the pre-lowering problem this structure was lowered from
  /// (0 = not produced by the lowering pipeline). Warm-start blobs live in
  /// that base space, so this is what blob acceptance keys on — pass
  /// parameters (min_block_size, sparsity mode) can change the lowered
  /// fingerprint without invalidating base-space blobs.
  std::uint64_t base_fingerprint = 0;
  /// One record per lowering pass that produced this structure (empty when
  /// the problem reached the backend without lowering).
  std::vector<PassRecord> provenance;
  /// Subtree partition computed by the lowering "partition" pass for the
  /// async clique-parallel ADMM driver: block index -> worker id in
  /// [0, partition_workers). Empty / 0 when the pass did not run; the driver
  /// then partitions on the fly. Invariants checked by sdp::verify
  /// ("partition-range", "partition-order").
  std::vector<std::size_t> block_worker;
  std::size_t partition_workers = 0;

  /// Cheap shape check against a problem about to consume this pattern: a
  /// 64-bit fingerprint collision would otherwise hand the backends row
  /// indices into a different problem (out-of-bounds in the hot loops).
  bool compatible_with(const Problem& p) const {
    return rows_touching_block.size() == p.num_blocks() && num_rows == p.num_rows();
  }
};

/// Build the pattern from scratch (also records the fingerprint).
ProblemStructure build_structure(const Problem& p);
/// Same, with the fingerprint already computed by the caller (the lowering
/// pipeline hashes once and reuses it for pass records, blobs and here).
ProblemStructure build_structure(const Problem& p, std::uint64_t fingerprint);

/// Point-in-time counters of a StructureCache (see telemetry()). Sweep
/// drivers surface these per request: a thousand-point sweep over one
/// compiled structure should show ~1 miss and hits ~= points — a growing
/// miss/eviction count means the grid's shapes are thrashing the cap.
struct StructureCacheTelemetry {
  std::size_t hits = 0;
  std::size_t misses = 0;      // fresh builds in get() (collision drops included)
  std::size_t evictions = 0;   // entries dropped by the LRU capacity bound
  std::size_t entries = 0;     // currently cached
  std::size_t capacity = 0;
};

/// Small fingerprint-keyed LRU cache for ProblemStructure; thread-safe.
/// Both backends consult the process-wide instance (global()), so the
/// pipeline's repeated structurally equal solves skip the pattern rebuild
/// even though a fresh backend object is constructed per solve — including
/// from sos::BatchSolver worker threads, which hit it concurrently.
///
/// Concurrency contract (exercised by the warmstart_test stress test):
///  * every access to `slots_`/`hits_` happens under `mutex_` — the LRU
///    move-to-front erase/insert can never invalidate another thread's
///    iteration because no thread iterates without the lock;
///  * the expensive pattern build runs *outside* the lock; the insert
///    re-checks under the lock so two simultaneous first misses of one
///    shape keep a single slot (duplicate slots would evict live patterns);
///  * entries are returned as shared_ptr<const ...>, so an evicted pattern
///    stays alive for the solves still holding it;
///  * a fingerprint-collision hit (same hash, different shape) is detected
///    via ProblemStructure::compatible_with and replaced instead of served.
class StructureCache {
 public:
  explicit StructureCache(std::size_t capacity = 16) : capacity_(capacity) {}

  /// Return the cached structure when the fingerprint matches, else build,
  /// store (evicting least-recently-used) and return a fresh one.
  std::shared_ptr<const ProblemStructure> get(const Problem& p) const;

  /// Seed the cache with an externally built structure (the lowering
  /// pipeline inserts the pattern it already computed, with base fingerprint
  /// and pass provenance attached, so the backend's get() hits it). An
  /// existing slot with the same fingerprint is replaced.
  void put(std::shared_ptr<const ProblemStructure> structure) const;

  /// Probe for a cached structure by fingerprint without building or
  /// promoting anything (and without counting a hit); null on miss. Lets
  /// the lowering pipeline skip the pattern rebuild + reseed on repeated
  /// structurally identical solves.
  std::shared_ptr<const ProblemStructure> find(std::uint64_t fingerprint) const;

  /// Cache hits since construction (telemetry for tests/benches).
  std::size_t hits() const;
  /// Full counter snapshot (hits/misses/evictions/entries/capacity).
  StructureCacheTelemetry telemetry() const;

  /// Change the LRU entry cap; excess least-recently-used entries are
  /// evicted immediately (counted). The process-wide cache is long-lived, so
  /// an unbounded (or oversized) cap would leak one pattern per distinct
  /// shape ever solved — thousand-point sweeps keep it bounded via
  /// sweep::SweepOptions::structure_cache_capacity.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// The process-wide cache used by the built-in backends.
  static StructureCache& global();

 private:
  /// Drop least-recently-used entries beyond capacity_; counts evictions.
  void enforce_capacity_locked() const SOSLOCK_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::size_t capacity_ SOSLOCK_GUARDED_BY(mutex_);
  mutable std::size_t hits_ SOSLOCK_GUARDED_BY(mutex_) = 0;
  mutable std::size_t misses_ SOSLOCK_GUARDED_BY(mutex_) = 0;
  mutable std::size_t evictions_ SOSLOCK_GUARDED_BY(mutex_) = 0;
  /// Most-recently-used first.
  mutable std::vector<std::shared_ptr<const ProblemStructure>> slots_
      SOSLOCK_GUARDED_BY(mutex_);
};

/// Per-solve flat view of the row coefficients of one block: pointers into a
/// specific Problem instance, laid out for the hot Schur/residual loops (no
/// std::map lookups). Rebuilt per solve (the pointers die with the problem
/// copy); the loop ordering comes from the cached incidence.
struct BlockRowView {
  std::size_t row = 0;
  const SparseSym* coeff = nullptr;
};

/// views[j] lists (row, A_ij) for every row touching block j, in row order.
std::vector<std::vector<BlockRowView>> build_block_row_views(
    const Problem& p, const ProblemStructure& structure);

/// Native decomposed-cone plumbing shared by both backends: collect the
/// cones' overlap couplings as virtual rows with extended indices
/// [num_rows, num_rows + q) and append their coefficient views to `views`.
/// Returns the coupling Rows in index order (pointers into p.cones(),
/// stable for the lifetime of `p`); q == size of the result.
std::vector<const Row*> append_overlap_views(
    const Problem& p, std::vector<std::vector<BlockRowView>>& views);

}  // namespace soslock::sdp
