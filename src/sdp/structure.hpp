#pragma once
// Structural identity and cached sparsity patterns for SDP problems.
//
// The verification pipeline solves long chains of SDPs that share one
// compiled *structure* (block sizes, row sparsity, free-variable incidence)
// and differ only in coefficient values (an advection eps/lambda retry, a
// level maximisation per mode, a warm-started re-solve). Two facilities
// exploit that:
//
//  - structure_fingerprint(): a 64-bit hash of everything value-independent,
//    used to decide whether a WarmStart blob or a cached pattern applies.
//  - StructureCache: a small fingerprint-keyed store for the row→block
//    incidence that both backends otherwise rediscover on every solve.
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sdp/problem.hpp"

namespace soslock::sdp {

/// Hash of the value-independent structure of `p`: block sizes, free count,
/// and per row the touched blocks, triplet positions and free indices (not
/// their values). Two problems with equal fingerprints accept each other's
/// solver state as a warm start and share sparsity caches.
std::uint64_t structure_fingerprint(const Problem& p);

/// Value-independent sparsity pattern shared by structurally equal problems.
struct ProblemStructure {
  std::uint64_t fingerprint = 0;
  std::size_t num_rows = 0;  // of the source problem (collision guard)
  /// For each block, the rows whose coefficient touches it (ascending).
  std::vector<std::vector<std::size_t>> rows_touching_block;

  /// Cheap shape check against a problem about to consume this pattern: a
  /// 64-bit fingerprint collision would otherwise hand the backends row
  /// indices into a different problem (out-of-bounds in the hot loops).
  bool compatible_with(const Problem& p) const {
    return rows_touching_block.size() == p.num_blocks() && num_rows == p.num_rows();
  }
};

/// Build the pattern from scratch (also records the fingerprint).
ProblemStructure build_structure(const Problem& p);

/// Small fingerprint-keyed LRU cache for ProblemStructure; thread-safe.
/// Both backends consult the process-wide instance (global()), so the
/// pipeline's repeated structurally equal solves skip the pattern rebuild
/// even though a fresh backend object is constructed per solve — including
/// from sos::BatchSolver worker threads, which hit it concurrently.
///
/// Concurrency contract (exercised by the warmstart_test stress test):
///  * every access to `slots_`/`hits_` happens under `mutex_` — the LRU
///    move-to-front erase/insert can never invalidate another thread's
///    iteration because no thread iterates without the lock;
///  * the expensive pattern build runs *outside* the lock; the insert
///    re-checks under the lock so two simultaneous first misses of one
///    shape keep a single slot (duplicate slots would evict live patterns);
///  * entries are returned as shared_ptr<const ...>, so an evicted pattern
///    stays alive for the solves still holding it;
///  * a fingerprint-collision hit (same hash, different shape) is detected
///    via ProblemStructure::compatible_with and replaced instead of served.
class StructureCache {
 public:
  explicit StructureCache(std::size_t capacity = 16) : capacity_(capacity) {}

  /// Return the cached structure when the fingerprint matches, else build,
  /// store (evicting least-recently-used) and return a fresh one.
  std::shared_ptr<const ProblemStructure> get(const Problem& p) const;

  /// Cache hits since construction (telemetry for tests/benches).
  std::size_t hits() const;

  /// The process-wide cache used by the built-in backends.
  static StructureCache& global();

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  mutable std::size_t hits_ = 0;
  /// Most-recently-used first.
  mutable std::vector<std::shared_ptr<const ProblemStructure>> slots_;
};

/// Per-solve flat view of the row coefficients of one block: pointers into a
/// specific Problem instance, laid out for the hot Schur/residual loops (no
/// std::map lookups). Rebuilt per solve (the pointers die with the problem
/// copy); the loop ordering comes from the cached incidence.
struct BlockRowView {
  std::size_t row = 0;
  const SparseSym* coeff = nullptr;
};

/// views[j] lists (row, A_ij) for every row touching block j, in row order.
std::vector<std::vector<BlockRowView>> build_block_row_views(
    const Problem& p, const ProblemStructure& structure);

}  // namespace soslock::sdp
