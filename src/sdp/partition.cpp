#include "sdp/partition.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace soslock::sdp {
namespace {

/// Estimated per-iteration projection cost of an n x n PSD block: one
/// eigendecomposition, ~n^3 (the constant cancels in the balance).
double block_flops(std::size_t n) {
  const double d = static_cast<double>(n);
  return d * d * d;
}

}  // namespace

SubtreePartition partition_subtrees(const Problem& problem, std::size_t workers) {
  SubtreePartition part;
  part.workers = std::max<std::size_t>(workers, 1);
  const std::size_t nblocks = problem.num_blocks();
  part.block_worker.assign(nblocks, 0);

  std::vector<double> load(part.workers, 0.0);
  std::vector<bool> in_cone(nblocks, false);
  std::size_t clique_blocks = 0;

  // Decomposed cones: cut each cone's clique preorder into flops-balanced
  // contiguous segments, one per worker. Assigning clique k to worker
  // floor(prefix_flops / per_worker_share) keeps ids non-decreasing along
  // the preorder (the "partition-order" invariant) while equalizing the
  // cumulative cost of each segment.
  for (const DecomposedCone& cone : problem.cones()) {
    double total = 0.0;
    for (const CliqueInfo& clique : cone.cliques) {
      if (clique.block >= nblocks) continue;  // verify() rejects; stay in range
      total += block_flops(problem.block_size(clique.block));
    }
    const double share = total / static_cast<double>(part.workers);
    double prefix = 0.0;
    for (const CliqueInfo& clique : cone.cliques) {
      if (clique.block >= nblocks) continue;
      std::size_t w = 0;
      if (share > 0.0) {
        w = std::min(part.workers - 1, static_cast<std::size_t>(prefix / share));
      }
      part.block_worker[clique.block] = w;
      in_cone[clique.block] = true;
      ++clique_blocks;
      const double cost = block_flops(problem.block_size(clique.block));
      prefix += cost;
      load[w] += cost;
    }
  }

  // Blocks outside any cone carry no overlap couplings, so any placement is
  // legal: greedy least-loaded, largest blocks first.
  std::vector<std::size_t> kept;
  for (std::size_t j = 0; j < nblocks; ++j) {
    if (!in_cone[j]) kept.push_back(j);
  }
  std::stable_sort(kept.begin(), kept.end(), [&](std::size_t a, std::size_t b) {
    return problem.block_size(a) > problem.block_size(b);
  });
  for (const std::size_t j : kept) {
    const std::size_t w = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    part.block_worker[j] = w;
    load[w] += block_flops(problem.block_size(j));
  }

  const double max_load = load.empty() ? 0.0 : *std::max_element(load.begin(), load.end());
  double mean_load = 0.0;
  for (const double l : load) mean_load += l;
  mean_load /= static_cast<double>(part.workers);
  std::ostringstream detail;
  detail << part.workers << " worker(s), " << clique_blocks << " clique block(s), "
         << kept.size() << " kept block(s)";
  if (mean_load > 0.0) {
    detail.precision(2);
    detail << ", load imbalance " << std::fixed << max_load / mean_load << "x";
  }
  part.detail = detail.str();
  return part;
}

}  // namespace soslock::sdp
