#pragma once
// First-order ADMM backend ("admm" in the registry): alternating-direction
// augmented-Lagrangian method on the dual SDP (the boundary-point scheme of
// Povh-Rendl-Wiegele / Wen-Goldfarb-Yin, adapted to the free-variable rows
// of our SOS relaxations):
//
//   dual:  max b'y   s.t.  C_j - sum_i y_i A_ij = S_j >= 0,   B'y = f.
//
// One iteration solves a cached m x m normal-equation system for y, projects
// per block onto the PSD cone (via linalg::eigen_sym), and takes a multiplier
// ascent step in the primal (X, w). The multiplier update X_j = rho * U_j^-
// keeps every primal block PSD by construction (a Gram product of the
// negative eigenpanel) and complementary to S_j up to eigensolver roundoff, so
// iterates are always certificate-shaped; accuracy is first-order (~1e-6).
#include "sdp/options.hpp"
#include "sdp/problem.hpp"
#include "sdp/solver.hpp"

namespace soslock::sdp {

class AdmmSolver : public SolverBackend {
 public:
  explicit AdmmSolver(AdmmOptions options = {}) : options_(options) {}

  using SolverBackend::solve;
  Solution solve(const Problem& problem, SolveContext& context) const override;

  std::string name() const override { return "admm"; }
  Capabilities capabilities() const override {
    Capabilities caps;
    caps.cheap_large_blocks = true;
    caps.warm_startable = true;
    return caps;
  }

  const AdmmOptions& options() const { return options_; }

 private:
  AdmmOptions options_;
};

}  // namespace soslock::sdp
