#include "sdp/resilience.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/log.hpp"

namespace soslock::sdp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Typed reason string for the recovery records, e.g.
/// "Diverged(phase=primal-residual)".
std::string failure_reason(const Solution& sol) {
  std::string reason = to_string(sol.status);
  if (!sol.faulted_phase.empty()) reason += "(phase=" + sol.faulted_phase + ")";
  return reason;
}

/// Iterate quality for the better-of-two handover; lower is better.
/// Diverged/Faulted iterates carry no trustworthy state and rank last.
double quality(const Solution& sol) {
  if (sol.status == SolveStatus::Diverged || sol.status == SolveStatus::Faulted)
    return kInf;
  const double q = sol.primal_residual + sol.gap;
  return std::isfinite(q) ? q : kInf;
}

/// Retries help transient and numerical failures; a deterministic stall
/// (MaxIterations with bad residuals) replays identically, so it escalates
/// straight to the fallback chain.
bool retryable(const Solution& sol) {
  return sol.status == SolveStatus::Diverged || sol.status == SolveStatus::Faulted ||
         sol.status == SolveStatus::NumericalProblem;
}

/// One backend attempt that never leaks an exception: a throwing backend
/// becomes a typed Faulted result the policy can act on. Backend *lookup*
/// stays outside the net — an unknown name is a configuration error, not a
/// solver failure, and must keep throwing std::invalid_argument.
Solution attempt(const std::string& backend_name, const SolverConfig& config,
                 const Problem& problem, SolveContext& context) {
  const std::unique_ptr<SolverBackend> backend = make_solver(backend_name, config);
  try {
    return backend->solve(problem, context);
  } catch (const std::exception& e) {
    util::log_info("solver ", backend_name, " threw (", e.what(),
                   "); classifying as Faulted");
    Solution sol;
    sol.status = SolveStatus::Faulted;
    sol.backend = backend_name;
    sol.faulted_phase = e.what();
    return sol;
  }
}

/// Deterministic perturbation factor for retry k >= 1: 1+j, 1/(1+j), 1+2j,
/// 1/(1+2j), ... — alternating expansion/contraction probes both sides of
/// the failing tuning without any RNG, so a retried solve is reproducible.
double jitter_factor(double jitter, int k) {
  const double step = 1.0 + jitter * static_cast<double>((k + 1) / 2);
  return k % 2 == 1 ? step : 1.0 / step;
}

}  // namespace

bool solve_unusable(const Solution& solution) {
  switch (solution.status) {
    case SolveStatus::Optimal:
    case SolveStatus::PrimalInfeasible:
    case SolveStatus::DualInfeasible:
    case SolveStatus::Interrupted:  // budget/cancel: a retry would also be cut short
      return false;
    case SolveStatus::MaxIterations:
    case SolveStatus::NumericalProblem:
      return solution.primal_residual > 1e-5 || solution.dual_residual > 1e-4 ||
             solution.gap > 5e-3;
    case SolveStatus::Diverged:
    case SolveStatus::Faulted:
      return true;
  }
  return false;
}

Solution resilient_solve(const Problem& problem, SolveContext& context,
                         const SolverConfig& config) {
  const ResiliencePolicy& policy = config.resilience;
  const std::string primary =
      config.backend == "auto" ? auto_backend_for(problem, config) : config.backend;
  if (!policy.enabled) return make_solver(primary, config)->solve(problem, context);

  Solution sol = attempt(primary, config, problem, context);
  if (!solve_unusable(sol) || context.interrupted()) return sol;

  // The recovery loop. `sol` always carries the cumulative iteration/time
  // telemetry; `best` tracks the highest-quality unusable iterate for the
  // final handover (and donates the warm start of every recovery attempt).
  std::vector<RecoveryRecord> records = std::move(sol.recoveries);
  sol.recoveries.clear();
  Solution best = sol;
  std::string current = primary;
  int attempt_no = 0;
  WarmStart rescue;
  const WarmStart* caller_warm = context.warm_start;

  const auto run_recovery = [&](const char* action, const std::string& name,
                                const SolverConfig& cfg) {
    ++attempt_no;
    RecoveryRecord rec;
    rec.action = action;
    rec.from = current;
    rec.to = name;
    rec.reason = failure_reason(sol);
    rec.attempt = attempt_no;
    util::log_info("solver resilience: ", rec.action, " #", attempt_no, " ",
                   rec.from, " -> ", rec.to, " after ", rec.reason);
    records.push_back(std::move(rec));
    if (policy.backoff_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(policy.backoff_seconds));
    }
    // Warm-start the attempt from the best usable iterate so far, honoring
    // the cold-start A/B switch; a divergent/faulted iterate never donates.
    rescue = WarmStart{};
    if (config.warm_start && quality(best) < kInf) rescue = make_warm_start(best, 0);
    context.warm_start = rescue.empty() ? caller_warm : &rescue;
    Solution next;
    try {
      next = attempt(name, cfg, problem, context);
    } catch (...) {
      context.warm_start = caller_warm;
      throw;
    }
    context.warm_start = caller_warm;
    next.iterations += sol.iterations;
    next.solve_seconds += sol.solve_seconds;
    for (RecoveryRecord& r : next.recoveries) records.push_back(std::move(r));
    next.recoveries.clear();
    sol = std::move(next);
    current = name;
    if (quality(sol) < quality(best)) best = sol;
  };

  for (int k = 1; k <= policy.max_retries; ++k) {
    if (!solve_unusable(sol) || !retryable(sol) || context.interrupted()) break;
    SolverConfig jittered = config;
    const double f = jitter_factor(policy.rho_jitter, k);
    jittered.admm.rho = std::clamp(config.admm.rho * f, 1e-6, 1e6);
    jittered.ipm.warm_start_margin =
        std::clamp(config.ipm.warm_start_margin * f, 1e-6, 0.9);
    // A solve that failed *with* the FP32 Schur factor retries in plain
    // FP64: the in-solve fallback already covers transient stagnation, so a
    // failure that reaches the resilience layer means mixed precision is the
    // wrong tool for this problem.
    jittered.ipm.mixed_precision = false;
    run_recovery("retry", primary, jittered);
  }

  std::vector<std::string> chain = policy.fallback_chain;
  if (chain.empty() && primary != "ipm") chain.push_back("ipm");
  for (const std::string& next_backend : chain) {
    if (!solve_unusable(sol) || context.interrupted()) break;
    run_recovery("fallback", next_backend, config);
  }

  // Every attempt failed: hand over the best-quality iterate seen, with the
  // cumulative telemetry, rather than whatever the last backend produced.
  if (solve_unusable(sol) && quality(best) < quality(sol)) {
    best.iterations = sol.iterations;
    best.solve_seconds = sol.solve_seconds;
    sol = std::move(best);
  }
  sol.recoveries = std::move(records);
  return sol;
}

}  // namespace soslock::sdp
