#pragma once
// Per-backend tuning knobs for the SDP solver backends (see sdp/solver.hpp
// for the backend interface and the shared SolverConfig that embeds these),
// plus the structure-exploitation knob shared by the SOS compiler and the
// SDP conversion layer.
#include <cstddef>

namespace soslock::sdp {

/// How aggressively the pipeline exploits sparsity when compiling and
/// solving SOS programs. Threaded through sdp::SolverConfig (and with it
/// through every core options struct and PipelineOptions).
enum class SparsityOptions {
  Off,          // one dense Gram block per SOS constraint (the PR 2 baseline)
  Correlative,  // split each Gram basis along the csp-graph cliques (poly/sparsity)
  Chordal,      // Correlative + chordal conversion of any remaining large PSD
                // block at the SDP level (sdp/chordal)
};

/// Tuning for the SDP-level chordal conversion pass (SparsityOptions::Chordal).
struct ChordalOptions {
  /// Only blocks at least this large are considered for decomposition (the
  /// conversion adds overlap-consistency rows, which is a bad trade for
  /// small cones).
  std::size_t min_block_size = 24;
  /// Skip the decomposition of a block when the largest clique still covers
  /// more than this fraction of it (nothing to win, rows to lose).
  double max_clique_fraction = 0.9;
};

/// Interior-point (HKM predictor-corrector) tuning.
struct IpmOptions {
  double tolerance = 1e-7;        // relative gap + feasibility target
  int max_iterations = 120;
  double step_fraction = 0.98;    // fraction of the distance to the boundary
  bool predictor_corrector = true;
  double free_var_regularization = 1e-10;  // delta on the free-var Schur block
  double infeasibility_threshold = 1e8;    // ||y|| blowup => infeasibility cert
  /// Warm-start restore: X and Z are spectrally shifted so lambda_min >=
  /// warm_start_margin * (block scale). Too small leaves the iterate pinned
  /// to the previous active set (slow steps when the data moved); too large
  /// throws the previous solution away.
  double warm_start_margin = 0.15;
  bool verbose = false;
};

/// First-order operator-splitting (ADMM on the dual) tuning. The per-iteration
/// cost is one cached m x m triangular solve plus one eigendecomposition per
/// PSD block, so large Gram blocks are much cheaper per iteration than the
/// IPM's Schur assembly — at the price of many more iterations and lower
/// final accuracy.
struct AdmmOptions {
  double tolerance = 1e-6;        // max of primal/dual residual and gap
  int max_iterations = 20000;
  double rho = 1.0;               // initial augmented-Lagrangian penalty
  bool adaptive_rho = true;       // residual-balancing penalty updates
  double rho_scale = 2.0;         // multiplicative rho step (clamp per update)
  double residual_balance = 10.0; // trigger ratio for an update
  int rho_update_interval = 50;   // iterations between update checks
  /// Over-relaxation factor alpha in [1, 1.95]; ~1.6 damps the tail
  /// oscillation of the splitting on well-posed problems.
  double over_relaxation = 1.6;
  bool verbose = false;
};

}  // namespace soslock::sdp
