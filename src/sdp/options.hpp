#pragma once
// Per-backend tuning knobs for the SDP solver backends (see sdp/solver.hpp
// for the backend interface and the shared SolverConfig that embeds these),
// plus the structure-exploitation knob shared by the SOS compiler and the
// SDP conversion layer.
#include <cstddef>
#include <string>
#include <vector>

namespace soslock::sdp {

/// How aggressively the pipeline exploits sparsity when compiling and
/// solving SOS programs. Threaded through sdp::SolverConfig (and with it
/// through every core options struct and PipelineOptions).
enum class SparsityOptions {
  Off,          // one dense Gram block per SOS constraint (the PR 2 baseline)
  Correlative,  // split each Gram basis along the csp-graph cliques (poly/sparsity)
  Chordal,      // Correlative + chordal conversion of any remaining large PSD
                // block at the SDP level (sdp/chordal)
};

/// Tuning for the SDP-level chordal conversion pass (SparsityOptions::Chordal).
struct ChordalOptions {
  /// Only blocks at least this large are considered for decomposition (the
  /// conversion adds overlap couplings, which is a bad trade for small
  /// cones).
  std::size_t min_block_size = 24;
  /// Skip the decomposition of a block when the largest clique still covers
  /// more than this fraction of it (nothing to win, couplings to lose).
  double max_clique_fraction = 0.9;
  /// Lower decomposed cones as the PR 3 seam conversion did: overlap
  /// consistency becomes ordinary equality rows appended to the problem, so
  /// the backends see a plain block SDP and the Schur complement carries the
  /// overlap rows. Default (false) registers native sdp::DecomposedCone
  /// descriptors instead — backends enforce the overlaps with multiplier
  /// terms block-eliminated from the factored Schur/normal system, warm
  /// starts remap per clique, and the dense factor keeps the original row
  /// count. The seam path is kept selectable as the parity reference,
  /// mirroring IpmOptions::reference_schur.
  bool at_seam = false;
};

/// Interior-point (HKM predictor-corrector) tuning.
struct IpmOptions {
  double tolerance = 1e-7;        // relative gap + feasibility target
  int max_iterations = 120;
  double step_fraction = 0.98;    // fraction of the distance to the boundary
  bool predictor_corrector = true;
  double free_var_regularization = 1e-10;  // delta on the free-var Schur block
  double infeasibility_threshold = 1e8;    // ||y|| blowup => infeasibility cert
  /// Warm-start restore: X and Z are spectrally shifted so lambda_min >=
  /// warm_start_margin * (block scale). Too small leaves the iterate pinned
  /// to the previous active set (slow steps when the data moved); too large
  /// throws the previous solution away.
  double warm_start_margin = 0.15;
  /// Worker threads for the per-iteration hot paths (Schur assembly panels,
  /// block factorizations, direction recovery). 0 = hardware count; 1 =
  /// serial. The parallel partitioning writes disjoint entries in a fixed
  /// order, so results are bit-identical across thread counts.
  std::size_t threads = 1;
  /// Use the pre-overhaul Schur assembly (both triangles, per-row column
  /// solves) instead of the sparse upper-triangle panel assembly. Reference
  /// implementation for parity tests and the bench speedup gates.
  bool reference_schur = false;
  /// Factor the (reduced) Schur complement in FP32 — twice the SIMD lanes,
  /// half the factor memory — and recover the FP64 search direction by
  /// iterative refinement against the FP64 matrix. Soundness is unaffected:
  /// the direction is refined to FP64 residuals (and the SOS audit
  /// re-verifies certificates regardless); when refinement stagnates or the
  /// FP32 factorization breaks down, the iteration falls back to the FP64
  /// factorization automatically and records the event on
  /// Solution::mixed / Solution::recoveries. The resilience layer disables
  /// this mode on jittered retries, so a persistent mixed-precision failure
  /// escalates to a plain FP64 solve.
  bool mixed_precision = false;
  /// Refinement-step budget per refined solve before the solve is declared
  /// stagnant and the iteration falls back to FP64.
  int max_refinement_steps = 8;
  bool verbose = false;
};

/// First-order operator-splitting (ADMM on the dual) tuning. The per-iteration
/// cost is one cached m x m triangular solve plus one eigendecomposition per
/// PSD block, so large Gram blocks are much cheaper per iteration than the
/// IPM's Schur assembly — at the price of many more iterations and lower
/// final accuracy.
struct AdmmOptions {
  double tolerance = 1e-6;        // max of primal/dual residual and gap
  int max_iterations = 20000;
  double rho = 1.0;               // initial augmented-Lagrangian penalty
  bool adaptive_rho = true;       // residual-balancing penalty updates
  double rho_scale = 2.0;         // multiplicative rho step (clamp per update)
  double residual_balance = 10.0; // trigger ratio for an update
  int rho_update_interval = 50;   // iterations between update checks
  /// Over-relaxation factor alpha in [1, 1.95]; ~1.6 damps the tail
  /// oscillation of the splitting on well-posed problems.
  double over_relaxation = 1.6;
  /// Worker threads for the per-iteration PSD projections (one
  /// eigendecomposition per block; blocks are independent). 0 = hardware
  /// count; 1 = serial. Deterministic across thread counts (disjoint
  /// per-block writes, order-independent max-reduction).
  std::size_t threads = 1;
  /// Project with the cyclic-Jacobi reference eigensolver instead of the
  /// tridiagonal-QL production path. For parity tests and the bench
  /// eigensolver-swap speedup gate. Honored by both the synchronous
  /// projection fan-out and the per-clique async worker path (they share
  /// admm_split_psd).
  bool use_jacobi_eig = false;
  /// Clique-parallel asynchronous driver: one resident worker per clique-tree
  /// subtree runs the PSD projections on its own clock, exchanging separator
  /// state with the consensus thread through bounded-staleness mailboxes
  /// instead of a fork-join barrier per iteration. Requires a partition
  /// (taken from the lowering's subtree-partition pass when present, computed
  /// on the fly otherwise). Falls back to the synchronous loop when the
  /// problem has fewer than two non-empty worker subtrees.
  bool async = false;
  /// Bounded staleness for the async driver: a worker may start projection
  /// round r with any consensus y-version in [r - max_staleness, r], and the
  /// consensus thread evaluates iteration t once every worker has finished
  /// round t - max_staleness. 0 = lockstep schedule, which reproduces the
  /// synchronous backend bit-identically at any worker count (the projections
  /// are computed from exactly the same snapshots, just on resident threads).
  int max_staleness = 0;
  /// Async worker count; 0 = hardware count. Ignored by the sync driver.
  std::size_t workers = 0;
  bool verbose = false;
  /// In-solve resilience of the async driver: when a worker dies (exception,
  /// injected thread death, or a stall past worker_stall_seconds) or the
  /// watchdog classifies the gathered iterate as divergent, fall back to the
  /// synchronous single-thread lockstep loop on the same lowered problem,
  /// warm-started from the last consistent iterate, instead of failing the
  /// solve. The fallback is recorded as a RecoveryRecord on the Solution.
  bool sync_fallback = true;
  /// Bound on the consensus thread's wait for worker progress, in seconds: a
  /// worker that posts nothing for a full window is treated as dead — it may
  /// have exited its body without posting a final mailbox version, in which
  /// case the awaited round never arrives. 0 disables the bound (the pre-PR 9
  /// unbounded wait). Generous by default; only a genuinely wedged solve
  /// pays it.
  double worker_stall_seconds = 30.0;
};

/// Declarative retry/fallback policy of the resilience layer
/// (sdp/resilience.hpp), carried on SolverConfig. Generalizes the "auto"
/// backend's hard-coded ADMM -> IPM rescue: an unusable result is retried on
/// the same backend with deterministically jittered options, then escalated
/// along a fallback chain, every step warm-started from the best usable
/// iterate so far and recorded as RecoveryRecord telemetry.
struct ResiliencePolicy {
  /// Master switch: off = a failed solve returns as-is, no retries and no
  /// fallback (the raw single-backend behavior).
  bool enabled = true;
  /// Same-backend retries before the fallback chain is consulted. Retries
  /// apply to transient/numerical failures (Diverged, Faulted,
  /// NumericalProblem); a deterministic stall (MaxIterations with bad
  /// residuals) escalates straight to the chain — re-running the identical
  /// stall is the one recovery known not to help.
  int max_retries = 1;
  /// Sleep between attempts, for transient-resource failure hygiene.
  double backoff_seconds = 0.0;
  /// Multiplicative perturbation per retry: attempt k scales the ADMM rho
  /// and the IPM warm-start margin by an alternating expansion/contraction
  /// factor derived from k — deterministic, no RNG, so a retried solve is
  /// reproducible.
  double rho_jitter = 0.5;
  /// Backends to escalate to after retries, in order. Empty = the auto
  /// default: any failing backend other than "ipm" escalates to "ipm" (the
  /// high-accuracy backend), reproducing the old hard-coded recovery.
  std::vector<std::string> fallback_chain;
};

}  // namespace soslock::sdp
