#pragma once
// Per-backend tuning knobs for the SDP solver backends (see sdp/solver.hpp
// for the backend interface and the shared SolverConfig that embeds these).
namespace soslock::sdp {

/// Interior-point (HKM predictor-corrector) tuning.
struct IpmOptions {
  double tolerance = 1e-7;        // relative gap + feasibility target
  int max_iterations = 120;
  double step_fraction = 0.98;    // fraction of the distance to the boundary
  bool predictor_corrector = true;
  double free_var_regularization = 1e-10;  // delta on the free-var Schur block
  double infeasibility_threshold = 1e8;    // ||y|| blowup => infeasibility cert
  /// Warm-start restore: X and Z are spectrally shifted so lambda_min >=
  /// warm_start_margin * (block scale). Too small leaves the iterate pinned
  /// to the previous active set (slow steps when the data moved); too large
  /// throws the previous solution away.
  double warm_start_margin = 0.15;
  bool verbose = false;
};

/// First-order operator-splitting (ADMM on the dual) tuning. The per-iteration
/// cost is one cached m x m triangular solve plus one eigendecomposition per
/// PSD block, so large Gram blocks are much cheaper per iteration than the
/// IPM's Schur assembly — at the price of many more iterations and lower
/// final accuracy.
struct AdmmOptions {
  double tolerance = 1e-6;        // max of primal/dual residual and gap
  int max_iterations = 20000;
  double rho = 1.0;               // initial augmented-Lagrangian penalty
  bool adaptive_rho = true;       // residual-balancing penalty updates
  double rho_scale = 2.0;         // multiplicative rho step (clamp per update)
  double residual_balance = 10.0; // trigger ratio for an update
  int rho_update_interval = 50;   // iterations between update checks
  /// Over-relaxation factor alpha in [1, 1.95]; ~1.6 damps the tail
  /// oscillation of the splitting on well-posed problems.
  double over_relaxation = 1.6;
  bool verbose = false;
};

}  // namespace soslock::sdp
