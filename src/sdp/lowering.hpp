#pragma once
// Staged SOS→SDP lowering pipeline. The compiler (sos/compiler) emits a
// block SDP; everything between that emission and the backend used to be a
// seam of ad-hoc steps (chordal conversion, fingerprinting, equilibration)
// hard-wired into SosProgram::solve. This header makes it an explicit
// pipeline of ordered passes, each recording its provenance:
//
//   analyze     — support/aggregate-sparsity analysis: base fingerprint of
//                 the as-compiled problem (the space warm blobs live in) and
//                 the candidate screening for decomposition.
//   decompose   — chordal clique planning of every qualifying PSD block
//                 (sdp::plan_decomposition).
//   lower       — block lowering: clique blocks replace decomposed ones,
//                 with overlap consistency either registered natively as
//                 sdp::DecomposedCone couplings (default) or appended as
//                 equality rows (ChordalOptions::at_seam, the PR 3 parity
//                 reference).
//   partition   — subtree partition for the async clique-parallel ADMM
//                 driver (sdp/partition): blocks -> worker ids, balanced by
//                 estimated projection flops. Opt-in via
//                 LoweringOptions::partition_workers; structure-preserving.
//   equilibrate — row equilibration (sdp/scaling).
//
// Warm-start blobs live in the *base* (pre-lowering) space: a blob exported
// from one lowering replays into any other lowering of the same compiled
// problem via per-clique remapping (remap_warm_start), so pass-parameter
// changes — min_block_size, at_seam, even the sparsity mode when it does not
// change the compiled blocks — no longer orphan solver state the way the
// old fingerprint salting did.
//
// Adding a pass: run it inside lower() between the existing stages, mutate
// `Lowering::problem`, and push a PassRecord (name, post-pass structure
// fingerprint, wall seconds, human-readable detail). If the pass changes
// the block/row shape, teach remap_warm_start and recover how to cross it —
// that is the whole contract; fingerprints and provenance are recomputed
// here, and the backends only ever see the final problem plus its cached
// ProblemStructure.
#include <atomic>
#include <cstdint>
#include <vector>

#include "sdp/chordal.hpp"
#include "sdp/options.hpp"
#include "sdp/partition.hpp"
#include "sdp/problem.hpp"
#include "sdp/scaling.hpp"
#include "sdp/solver.hpp"
#include "sdp/structure.hpp"

namespace soslock::sdp {

struct LoweringOptions {
  SparsityOptions sparsity = SparsityOptions::Off;
  ChordalOptions chordal;
  /// > 0 runs the subtree-partition pass for the async clique-parallel ADMM
  /// driver with exactly this worker count (resolve 0-means-hardware before
  /// lowering; the partition is cached on the structure, so the count must
  /// be concrete). 0 skips the pass — the async driver then partitions on
  /// the fly per solve.
  std::size_t partition_workers = 0;
};

/// Everything the pipeline produced for one compiled problem: the lowered
/// problem the backend solves, the maps to get solutions and warm blobs
/// across the lowering, and the per-pass provenance.
struct Lowering {
  Problem problem;  // lowered + equilibrated: what the backend factors
  /// Structure fingerprint of the problem as compiled, before any lowering
  /// pass — the space warm-start blobs are exported in and accepted against.
  std::uint64_t base_fingerprint = 0;
  /// Structure fingerprint of `problem` (what the backends' caches key on).
  std::uint64_t lowered_fingerprint = 0;
  ChordalMap map;   // identity when no block decomposed
  /// Subtree partition (empty unless LoweringOptions::partition_workers > 0).
  SubtreePartition partition;
  Scaling scaling;  // row equilibration applied to `problem`
  std::vector<PassRecord> passes;  // provenance, one record per pass run
  double convert_seconds = 0.0;    // summed pass wall time (PhaseTimes::convert)

  bool decomposed() const { return !map.identity(); }
};

/// Run the pass pipeline over a compiled problem (consumed by value). The
/// resulting structure — with base fingerprint and pass provenance attached
/// — is seeded into StructureCache::global() so the backend's lookup hits
/// it.
Lowering lower(Problem problem, const LoweringOptions& options);

/// Map a lowered-space solution back onto the original compiled shape:
/// un-equilibrate the dual multipliers, complete decomposed primal cones
/// along their clique trees, scatter-add the dual slacks (Agler). Stamps
/// PhaseTimes::convert with the pipeline's pass time and
/// PhaseTimes::complete with the recovery time, so decomposed-vs-seam
/// comparisons account for the full round trip.
Solution recover(Solution solution, const Lowering& lowering);

/// Remap an original-space warm blob into the lowered space: clique blocks
/// are extracted from the dense primal (exactly consistent and PSD), dual
/// slacks are split by entry multiplicity, and the row multipliers are
/// scaled into the equilibrated row space (seam overlap rows start at 0;
/// native overlap multipliers are backend state and start at 0 either way).
///
/// Drift guard: every clique's canonical entry map is validated against the
/// blob's block shapes — a clique whose vertices fall outside the blob's
/// original block (a stale map, the remap analog of a fingerprint
/// collision) rejects the whole blob, returning an empty WarmStart (cold
/// start) instead of scattering out-of-range reads into the backend.
WarmStart remap_warm_start(const WarmStart& original, const Lowering& lowering);

/// Snapshot a recovered (original-space) solution as a base-space blob for
/// the next structurally identical compile, whatever its pass parameters.
WarmStart export_warm_start(const Solution& recovered, const Lowering& lowering);

/// One-slot lowering cache with an in-place coefficient-update fast path —
/// the pipeline's fifth pass ("update"). Design-space sweeps solve long runs
/// of problems that share one compiled structure and differ only in
/// coefficient values; re-running analyze → decompose → lower per grid point
/// repays the whole pipeline for answers that cannot have changed. lower()
/// here detects that case by base fingerprint (value-independent, so an
/// equal fingerprint means the cached destination of every triplet still
/// holds), rewrites rhs / free / triplet values and objectives of the cached
/// lowered problem in place — decomposed cones included, re-targeting every
/// entry at its canonical clique through the cached BlockPlans — then
/// re-equilibrates and stamps ["update", "equilibrate"] provenance.
///
/// Fallback contract: any mismatch runs the full pipeline and re-caches.
/// That covers a different base fingerprint (including a coefficient that
/// became exactly 0.0 — SparseSym::add drops zeros, so the triplet set
/// itself changed), different pass options, and an objective entry off the
/// cached aggregate pattern (objective values are not fingerprinted, but an
/// off-pattern nonzero would have changed the decomposition plan).
///
/// Not thread-safe: one cache per sweep lane / worker. The telemetry
/// counters (full_lowerings / updates) are the one exception — they are
/// atomics, so a monitoring thread may poll them while the owning lane is
/// mid-lower() without a data race (the values are momentarily stale, never
/// torn).
class LoweringCache {
 public:
  /// Lower `problem` via the in-place update pass when the cached lowering
  /// applies, else via the full pipeline. The reference stays valid until
  /// the next lower() call on this cache.
  const Lowering& lower(Problem problem, const LoweringOptions& options);

  bool valid() const { return valid_; }
  /// Full pipeline runs (the first call plus every fallback).
  std::size_t full_lowerings() const { return full_.load(std::memory_order_relaxed); }
  /// In-place coefficient updates (recompile-free solves).
  std::size_t updates() const { return updates_.load(std::memory_order_relaxed); }

 private:
  /// Destination of one base-row triplet inside the cached lowered problem.
  struct TripletDest {
    std::size_t block = 0;  // lowered block index
    std::size_t entry = 0;  // entry index in that block's coeff of the row
  };

  bool options_match(const LoweringOptions& options) const;
  /// Rewrite the cached lowering's values from `problem` (same base
  /// fingerprint, checked by the caller). False = structural surprise, run
  /// the full pipeline; the cached problem is only mutated on success.
  bool try_update(Problem& problem);
  /// Build plan_ / entry_index_ from the cached map, verifying every
  /// destination against the cached lowered rows. Read-only; false on any
  /// mismatch.
  bool build_update_plan(const Problem& base);

  Lowering lowering_;
  LoweringOptions options_;
  bool valid_ = false;
  /// Per base row, triplet destinations aligned with the row's iteration
  /// order (blocks in key order, entries in stored order). Built lazily on
  /// the first update of a decomposed lowering.
  std::vector<std::vector<TripletDest>> plan_;
  bool plan_built_ = false;
  /// Canonical-assignment index per decomposed cone (aligned with
  /// lowering_.map.plans), for objective re-scatter.
  std::vector<BlockEntryIndex> entry_index_;
  std::atomic<std::size_t> full_{0};
  std::atomic<std::size_t> updates_{0};
};

}  // namespace soslock::sdp
