#include "sdp/structure.hpp"

#include "util/fault.hpp"

namespace soslock::sdp {
namespace {

/// FNV-1a, 64-bit.
struct Hasher {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
};

}  // namespace

std::uint64_t structure_fingerprint(const Problem& p) {
  Hasher hash;
  hash.mix(p.num_blocks());
  for (std::size_t j = 0; j < p.num_blocks(); ++j) hash.mix(p.block_size(j));
  hash.mix(p.num_free());
  hash.mix(p.num_rows());
  for (const Row& row : p.rows()) {
    hash.mix(0x526f77ull);  // row marker
    for (const auto& [j, a] : row.blocks) {
      hash.mix(j);
      hash.mix(a.entries.size());
      for (const Triplet& t : a.entries) {
        hash.mix(t.r);
        hash.mix(t.c);
      }
    }
    hash.mix(0x46726565ull);  // free marker
    for (const auto& [v, c] : row.free_coeffs) hash.mix(v);
  }
  // Native decomposed cones are structure: two problems with identical rows
  // and blocks but different clique layouts (or none) solve differently, so
  // their iterates must never cross via the fingerprint.
  for (const DecomposedCone& cone : p.cones()) {
    hash.mix(0x436f6e65ull);  // cone marker
    hash.mix(cone.original_size);
    for (const CliqueInfo& clique : cone.cliques) {
      hash.mix(clique.block);
      hash.mix(clique.parent);
      for (const std::size_t v : clique.vertices) hash.mix(v);
    }
    for (const Row& overlap : cone.overlaps) {
      hash.mix(0x4f76ull);  // overlap marker
      for (const auto& [j, a] : overlap.blocks) {
        hash.mix(j);
        for (const Triplet& t : a.entries) {
          hash.mix(t.r);
          hash.mix(t.c);
        }
      }
    }
  }
  return hash.h;
}

ProblemStructure build_structure(const Problem& p) {
  return build_structure(p, structure_fingerprint(p));
}

ProblemStructure build_structure(const Problem& p, std::uint64_t fingerprint) {
  ProblemStructure s;
  s.fingerprint = fingerprint;
  s.num_rows = p.num_rows();
  s.rows_touching_block.assign(p.num_blocks(), {});
  for (std::size_t i = 0; i < p.num_rows(); ++i)
    for (const auto& [j, a] : p.rows()[i].blocks) s.rows_touching_block[j].push_back(i);
  return s;
}

std::shared_ptr<const ProblemStructure> StructureCache::get(const Problem& p) const {
  const std::uint64_t fp = structure_fingerprint(p);
  {
    const util::MutexLock lock(mutex_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i]->fingerprint != fp) continue;
      if (!slots_[i]->compatible_with(p)) {
        // Fingerprint collision: serving this slot would hand the backend
        // row indices into a different problem. Drop it and rebuild below.
        slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      auto hit = slots_[i];
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
      slots_.insert(slots_.begin(), hit);
      ++hits_;
      return hit;
    }
  }
  auto fresh = std::make_shared<const ProblemStructure>(build_structure(p));
  // Injected eviction race: the whole cache is flushed in the unlocked gap
  // between the miss-path build above and the re-check below — the worst
  // interleaving a concurrent set_capacity(0)/put storm can produce. Callers
  // hold shared_ptrs, so evicted structures stay alive; the re-insert below
  // must leave the cache consistent.
  SOSLOCK_FAULT_HOOK(util::fault_site::kCacheEvict, {
    const util::MutexLock evict_lock(mutex_);
    evictions_ += slots_.size();
    slots_.clear();
  });
  const util::MutexLock lock(mutex_);
  // Re-check under the lock: batch workers miss simultaneously on first use
  // of a shared shape, and duplicate slots would evict live patterns. The
  // winner's slot is promoted and counted like any other hit.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i]->fingerprint != fp || !slots_[i]->compatible_with(p)) continue;
    auto slot = slots_[i];
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
    slots_.insert(slots_.begin(), slot);
    ++hits_;
    return slot;
  }
  ++misses_;
  slots_.insert(slots_.begin(), fresh);
  enforce_capacity_locked();
  return fresh;
}

void StructureCache::put(std::shared_ptr<const ProblemStructure> structure) const {
  if (!structure) return;
  const util::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i]->fingerprint == structure->fingerprint) {
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  slots_.insert(slots_.begin(), std::move(structure));
  enforce_capacity_locked();
}

void StructureCache::enforce_capacity_locked() const {
  while (slots_.size() > capacity_) {
    slots_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const ProblemStructure> StructureCache::find(std::uint64_t fingerprint) const {
  const util::MutexLock lock(mutex_);
  for (const auto& slot : slots_) {
    if (slot->fingerprint == fingerprint) return slot;
  }
  return nullptr;
}

std::size_t StructureCache::hits() const {
  const util::MutexLock lock(mutex_);
  return hits_;
}

StructureCacheTelemetry StructureCache::telemetry() const {
  const util::MutexLock lock(mutex_);
  StructureCacheTelemetry t;
  t.hits = hits_;
  t.misses = misses_;
  t.evictions = evictions_;
  t.entries = slots_.size();
  t.capacity = capacity_;
  return t;
}

void StructureCache::set_capacity(std::size_t capacity) {
  const util::MutexLock lock(mutex_);
  capacity_ = capacity;
  enforce_capacity_locked();
}

std::size_t StructureCache::capacity() const {
  const util::MutexLock lock(mutex_);
  return capacity_;
}

StructureCache& StructureCache::global() {
  static StructureCache* cache = new StructureCache(16);
  return *cache;
}

std::vector<std::vector<BlockRowView>> build_block_row_views(
    const Problem& p, const ProblemStructure& structure) {
  std::vector<std::vector<BlockRowView>> views(p.num_blocks());
  for (std::size_t j = 0; j < p.num_blocks(); ++j) {
    const auto& touching = structure.rows_touching_block[j];
    views[j].reserve(touching.size());
    for (const std::size_t i : touching) {
      views[j].push_back({i, &p.rows()[i].blocks.at(j)});
    }
  }
  return views;
}

std::vector<const Row*> append_overlap_views(
    const Problem& p, std::vector<std::vector<BlockRowView>>& views) {
  std::vector<const Row*> overlaps;
  for (const DecomposedCone& cone : p.cones())
    for (const Row& overlap : cone.overlaps) overlaps.push_back(&overlap);
  const std::size_t m = p.num_rows();
  for (std::size_t o = 0; o < overlaps.size(); ++o)
    for (const auto& [j, a] : overlaps[o]->blocks) views[j].push_back({m + o, &a});
  return overlaps;
}

}  // namespace soslock::sdp
