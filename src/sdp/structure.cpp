#include "sdp/structure.hpp"

namespace soslock::sdp {
namespace {

/// FNV-1a, 64-bit.
struct Hasher {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
};

}  // namespace

std::uint64_t structure_fingerprint(const Problem& p) {
  Hasher hash;
  hash.mix(p.num_blocks());
  for (std::size_t j = 0; j < p.num_blocks(); ++j) hash.mix(p.block_size(j));
  hash.mix(p.num_free());
  hash.mix(p.num_rows());
  for (const Row& row : p.rows()) {
    hash.mix(0x526f77ull);  // row marker
    for (const auto& [j, a] : row.blocks) {
      hash.mix(j);
      hash.mix(a.entries.size());
      for (const Triplet& t : a.entries) {
        hash.mix(t.r);
        hash.mix(t.c);
      }
    }
    hash.mix(0x46726565ull);  // free marker
    for (const auto& [v, c] : row.free_coeffs) hash.mix(v);
  }
  return hash.h;
}

ProblemStructure build_structure(const Problem& p) {
  ProblemStructure s;
  s.fingerprint = structure_fingerprint(p);
  s.num_rows = p.num_rows();
  s.rows_touching_block.assign(p.num_blocks(), {});
  for (std::size_t i = 0; i < p.num_rows(); ++i)
    for (const auto& [j, a] : p.rows()[i].blocks) s.rows_touching_block[j].push_back(i);
  return s;
}

std::shared_ptr<const ProblemStructure> StructureCache::get(const Problem& p) const {
  const std::uint64_t fp = structure_fingerprint(p);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i]->fingerprint != fp) continue;
      if (!slots_[i]->compatible_with(p)) {
        // Fingerprint collision: serving this slot would hand the backend
        // row indices into a different problem. Drop it and rebuild below.
        slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      auto hit = slots_[i];
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
      slots_.insert(slots_.begin(), hit);
      ++hits_;
      return hit;
    }
  }
  auto fresh = std::make_shared<const ProblemStructure>(build_structure(p));
  const std::lock_guard<std::mutex> lock(mutex_);
  // Re-check under the lock: batch workers miss simultaneously on first use
  // of a shared shape, and duplicate slots would evict live patterns. The
  // winner's slot is promoted and counted like any other hit.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i]->fingerprint != fp || !slots_[i]->compatible_with(p)) continue;
    auto slot = slots_[i];
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
    slots_.insert(slots_.begin(), slot);
    ++hits_;
    return slot;
  }
  slots_.insert(slots_.begin(), fresh);
  if (slots_.size() > capacity_) slots_.resize(capacity_);
  return fresh;
}

std::size_t StructureCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

StructureCache& StructureCache::global() {
  static StructureCache* cache = new StructureCache(16);
  return *cache;
}

std::vector<std::vector<BlockRowView>> build_block_row_views(
    const Problem& p, const ProblemStructure& structure) {
  std::vector<std::vector<BlockRowView>> views(p.num_blocks());
  for (std::size_t j = 0; j < p.num_blocks(); ++j) {
    const auto& touching = structure.rows_touching_block[j];
    views[j].reserve(touching.size());
    for (const std::size_t i : touching) {
      views[j].push_back({i, &p.rows()[i].blocks.at(j)});
    }
  }
  return views;
}

}  // namespace soslock::sdp
