#include "sdp/verify.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace soslock::sdp {

bool VerifyResult::has(const std::string& check) const {
  for (const VerifyViolation& v : violations) {
    if (v.check == check) return true;
  }
  return false;
}

std::string VerifyResult::str() const {
  std::ostringstream os;
  os << "sdp::verify";
  if (!pass.empty()) os << " after pass '" << pass << "'";
  if (ok()) {
    os << ": ok";
    return os.str();
  }
  os << ": " << violations.size() << " invariant violation(s)";
  for (const VerifyViolation& v : violations) {
    os << "\n  [" << v.check << "] " << v.message;
  }
  return os.str();
}

namespace {

/// Pipeline order of the known passes; provenance must list them with
/// strictly increasing rank. "update" replaces analyze→decompose→lower on
/// the LoweringCache fast path, so it shares the pre-equilibrate rank.
int pass_rank(const std::string& name) {
  if (name == "analyze") return 0;
  if (name == "decompose") return 1;
  if (name == "lower") return 2;
  if (name == "update") return 2;
  if (name == "partition") return 3;  // opt-in; monotonicity only requires
                                      // increase, so lower -> equilibrate
                                      // chains without it remain valid
  if (name == "equilibrate") return 4;
  return -1;  // unknown
}

class Checker {
 public:
  explicit Checker(VerifyResult& out) : out_(out) {}

  template <typename... Ts>
  void fail(const char* check, const Ts&... parts) {
    // Cap the report: one corrupt buffer can break thousands of entries, and
    // the first few name the culprit just as well.
    if (out_.violations.size() >= kMaxViolations) return;
    std::ostringstream os;
    (os << ... << parts);
    out_.violations.push_back({check, os.str()});
  }

 private:
  static constexpr std::size_t kMaxViolations = 64;
  VerifyResult& out_;
};

void check_matrix_finite_symmetric(Checker& chk, const linalg::Matrix& m,
                                   const char* what, std::size_t index) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (!std::isfinite(m(r, c))) {
        chk.fail("finite", what, " ", index, ": entry (", r, ",", c, ") is ", m(r, c));
        return;
      }
    }
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = r + 1; c < m.cols(); ++c) {
      if (m(r, c) != m(c, r)) {
        chk.fail("objective-symmetric", what, " ", index, ": entry (", r, ",", c, ") = ",
                 m(r, c), " but (", c, ",", r, ") = ", m(c, r));
        return;
      }
    }
  }
}

/// Triplet canonical form + ranges of one sparse coefficient. `where` names
/// the containing row for messages; `n` is the block dimension.
void check_sparse_coeff(Checker& chk, const SparseSym& a, std::size_t n,
                        const std::string& where, std::size_t block) {
  for (const Triplet& t : a.entries) {
    if (t.r > t.c) {
      chk.fail("triplet-canonical", where, ": triplet (", t.r, ",", t.c, ") in block ",
               block, " is not upper-triangular");
    }
    if (t.r >= n || t.c >= n) {
      chk.fail("triplet-range", where, ": triplet (", t.r, ",", t.c, ") outside block ",
               block, " of size ", n);
    }
    if (!std::isfinite(t.v)) {
      chk.fail("finite", where, ": triplet (", t.r, ",", t.c, ") in block ", block,
               " has value ", t.v);
    }
  }
  // Duplicate positions would double-count in every <A, X> inner product.
  std::vector<std::pair<std::size_t, std::size_t>> pos;
  pos.reserve(a.entries.size());
  for (const Triplet& t : a.entries) pos.emplace_back(t.r, t.c);
  std::sort(pos.begin(), pos.end());
  for (std::size_t i = 1; i < pos.size(); ++i) {
    if (pos[i] == pos[i - 1]) {
      chk.fail("triplet-canonical", where, ": duplicate triplet position (", pos[i].first,
               ",", pos[i].second, ") in block ", block);
    }
  }
}

void check_rows(Checker& chk, const Problem& p) {
  for (std::size_t i = 0; i < p.num_rows(); ++i) {
    const Row& row = p.rows()[i];
    const std::string where = "row " + std::to_string(i);
    if (!std::isfinite(row.rhs)) chk.fail("finite", where, ": rhs is ", row.rhs);
    for (const auto& [j, a] : row.blocks) {
      if (j >= p.num_blocks()) {
        chk.fail("block-range", where, ": references block ", j, " of ", p.num_blocks());
        continue;
      }
      check_sparse_coeff(chk, a, p.block_size(j), where, j);
    }
    for (const auto& [v, coeff] : row.free_coeffs) {
      if (v >= p.num_free()) {
        chk.fail("free-range", where, ": references free var ", v, " of ", p.num_free());
      }
      if (!std::isfinite(coeff)) {
        chk.fail("finite", where, ": free var ", v, " coefficient is ", coeff);
      }
    }
  }
}

void check_objectives(Checker& chk, const Problem& p) {
  for (std::size_t j = 0; j < p.num_blocks(); ++j) {
    const linalg::Matrix& c = p.block_objective(j);
    if (c.rows() != p.block_size(j) || c.cols() != p.block_size(j)) {
      chk.fail("objective-shape", "block ", j, ": objective is ", c.rows(), "x", c.cols(),
               " but the block has size ", p.block_size(j));
      continue;
    }
    check_matrix_finite_symmetric(chk, c, "block objective", j);
  }
  for (std::size_t v = 0; v < p.num_free(); ++v) {
    if (!std::isfinite(p.free_objective()[v])) {
      chk.fail("finite", "free objective ", v, " is ", p.free_objective()[v]);
    }
  }
}

void check_cones(Checker& chk, const Problem& p) {
  // Clique blocks must be bijectively assigned: no problem block may hold
  // two cliques' PSD copies (across all cones).
  std::vector<bool> block_claimed(p.num_blocks(), false);

  for (std::size_t ci = 0; ci < p.cones().size(); ++ci) {
    const DecomposedCone& cone = p.cones()[ci];
    const std::string where = "cone " + std::to_string(ci);
    if (cone.original_size == 0 || cone.cliques.empty()) {
      chk.fail("cone-empty", where, ": original size ", cone.original_size, ", ",
               cone.cliques.size(), " clique(s)");
      continue;
    }
    const std::size_t n = cone.original_size;
    const std::size_t nk = cone.cliques.size();
    std::vector<bool> covered(n, false);
    std::vector<bool> seen(n, false);  // vertices of cliques [0, k)

    for (std::size_t k = 0; k < nk; ++k) {
      const CliqueInfo& clique = cone.cliques[k];
      const std::string cwhere = where + " clique " + std::to_string(k);
      if (clique.vertices.empty()) {
        chk.fail("clique-vertices", cwhere, ": no vertices");
        continue;
      }
      bool vertices_ok = true;
      for (std::size_t a = 0; a < clique.vertices.size(); ++a) {
        const std::size_t v = clique.vertices[a];
        if (v >= n) {
          chk.fail("clique-vertices", cwhere, ": vertex ", v, " outside cone of size ", n);
          vertices_ok = false;
          break;
        }
        if (a > 0 && clique.vertices[a - 1] >= v) {
          chk.fail("clique-vertices", cwhere, ": vertices not strictly ascending at ",
                   clique.vertices[a - 1], ", ", v);
          vertices_ok = false;
          break;
        }
      }
      // The canonical entry map of a clique IS (block, vertices): the block
      // holds the clique-local copy, the vertex list maps local<->global.
      // Consistency = block exists, its dimension equals the clique size,
      // and no other clique claims it.
      if (clique.block >= p.num_blocks()) {
        chk.fail("clique-block", cwhere, ": block ", clique.block, " of ", p.num_blocks());
      } else {
        if (p.block_size(clique.block) != clique.vertices.size()) {
          chk.fail("clique-block", cwhere, ": block ", clique.block, " has size ",
                   p.block_size(clique.block), " but the clique has ",
                   clique.vertices.size(), " vertices");
        }
        if (block_claimed[clique.block]) {
          chk.fail("clique-block", cwhere, ": block ", clique.block,
                   " already holds another clique's copy");
        }
        block_claimed[clique.block] = true;
      }
      if (!vertices_ok) continue;
      for (const std::size_t v : clique.vertices) covered[v] = true;

      // Clique-tree shape: parent in range; RIP preorder wants non-root
      // parents strictly earlier. (Cycle detection runs over the whole
      // parent array below — a cyclic tree also breaks the order here, but
      // the dedicated walk names the cycle.)
      if (clique.parent >= nk) {
        chk.fail("clique-parent", cwhere, ": parent ", clique.parent, " of ", nk);
      } else if (clique.parent != k) {
        if (clique.parent > k) {
          chk.fail("clique-tree-order", cwhere, ": parent ", clique.parent,
                   " does not precede its child (RIP preorder)");
        } else {
          // Running intersection: everything this clique shares with any
          // earlier clique must live in the parent — that is what makes
          // tree-edge overlap couplings chain every copy of an entry, and
          // what the completion/warm-remap walks rely on.
          const CliqueInfo& parent = cone.cliques[clique.parent];
          for (const std::size_t v : clique.vertices) {
            if (!seen[v]) continue;
            if (!std::binary_search(parent.vertices.begin(), parent.vertices.end(), v)) {
              chk.fail("clique-rip", cwhere, ": shared vertex ", v,
                       " is not in parent clique ", clique.parent);
              break;
            }
          }
        }
      }
      for (const std::size_t v : clique.vertices) seen[v] = true;
    }

    for (std::size_t v = 0; v < n; ++v) {
      if (!covered[v]) {
        chk.fail("clique-cover", where, ": vertex ", v, " is in no clique");
        break;
      }
    }

    // Acyclicity: following parents from any clique must reach a root
    // (parent == self) within nk steps.
    for (std::size_t k = 0; k < nk; ++k) {
      std::size_t cur = k, steps = 0;
      while (steps <= nk && cur < nk && cone.cliques[cur].parent != cur) {
        cur = cone.cliques[cur].parent;
        ++steps;
      }
      if (cur < nk && steps > nk) {
        chk.fail("clique-tree-cycle", where, ": parent walk from clique ", k,
                 " never reaches a root");
        break;
      }
    }

    // Overlap couplings: zero-rhs difference rows whose entries address the
    // cone's own clique blocks. They become the virtual rows [m, m + q), so
    // an invalid index here is an out-of-range read in both backends' panel
    // machinery.
    std::vector<bool> is_clique_block(p.num_blocks(), false);
    for (const CliqueInfo& clique : cone.cliques) {
      if (clique.block < p.num_blocks()) is_clique_block[clique.block] = true;
    }
    for (std::size_t o = 0; o < cone.overlaps.size(); ++o) {
      const Row& row = cone.overlaps[o];
      const std::string owhere = where + " overlap " + std::to_string(o);
      if (row.rhs != 0.0) chk.fail("overlap-rhs", owhere, ": rhs is ", row.rhs);
      if (!row.free_coeffs.empty()) {
        chk.fail("overlap-free", owhere, ": touches ", row.free_coeffs.size(),
                 " free variable(s)");
      }
      if (row.blocks.empty()) chk.fail("overlap-empty", owhere, ": no coefficients");
      // Separator-mailbox shape: each coupling ties exactly two clique
      // copies (child, parent) with entry-aligned coefficients — the async
      // consensus layer exchanges separator state through mailboxes shaped
      // by these pairs, so a lopsided or many-sided row would misalign the
      // exchange (and break the ±w difference semantics everywhere else).
      if (!row.blocks.empty() && row.blocks.size() != 2) {
        chk.fail("overlap-mailbox", owhere, ": couples ", row.blocks.size(),
                 " block(s), expected exactly 2 (child, parent)");
      } else if (row.blocks.size() == 2) {
        const auto first = row.blocks.begin();
        const auto second = std::next(first);
        if (first->second.entries.size() != second->second.entries.size()) {
          chk.fail("overlap-mailbox", owhere, ": sides carry ",
                   first->second.entries.size(), " vs ", second->second.entries.size(),
                   " entries (copies must pair 1:1)");
        }
      }
      for (const auto& [j, a] : row.blocks) {
        if (j >= p.num_blocks() || !is_clique_block[j]) {
          chk.fail("overlap-block", owhere, ": references block ", j,
                   " which is not a clique block of this cone");
          continue;
        }
        check_sparse_coeff(chk, a, p.block_size(j), owhere, j);
      }
    }
  }
}

void check_structure(Checker& chk, const Problem& p, const ProblemStructure& s) {
  if (!s.compatible_with(p)) {
    chk.fail("structure-shape", "structure built for ", s.num_rows, " rows / ",
             s.rows_touching_block.size(), " blocks, problem has ", p.num_rows(), " / ",
             p.num_blocks());
    return;  // the incidence comparison below would index out of range
  }
  const std::uint64_t fp = structure_fingerprint(p);
  if (fp != s.fingerprint) {
    chk.fail("fingerprint-stale", "recomputed fingerprint ", fp,
             " does not match the stamped ", s.fingerprint);
  }
  // The cached row→block incidence is what the hot loops iterate; a drifted
  // pattern reads the wrong rows without ever going out of bounds.
  const ProblemStructure fresh = build_structure(p, fp);
  for (std::size_t j = 0; j < p.num_blocks(); ++j) {
    if (fresh.rows_touching_block[j] != s.rows_touching_block[j]) {
      chk.fail("structure-incidence", "block ", j, ": cached incidence lists ",
               s.rows_touching_block[j].size(), " row(s), recomputation finds ",
               fresh.rows_touching_block[j].size(), " (or different rows)");
    }
  }

  // Subtree partition (the opt-in "partition" pass): every block must map to
  // a worker in range, and along each cone's clique preorder the worker ids
  // must be non-decreasing — each worker's share of a cone is one contiguous
  // clique-tree segment, which is what bounds a worker's separator mailboxes
  // to its preorder neighbors. An out-of-range id is an out-of-bounds worker
  // dispatch; a non-monotone id scatters one subtree across workers.
  if (s.partition_workers > 0 || !s.block_worker.empty()) {
    if (s.partition_workers == 0 || s.block_worker.size() != p.num_blocks()) {
      chk.fail("partition-range", "partition maps ", s.block_worker.size(),
               " block(s) onto ", s.partition_workers, " worker(s), problem has ",
               p.num_blocks(), " block(s)");
    } else {
      for (std::size_t j = 0; j < s.block_worker.size(); ++j) {
        if (s.block_worker[j] >= s.partition_workers) {
          chk.fail("partition-range", "block ", j, ": worker ", s.block_worker[j],
                   " of ", s.partition_workers);
        }
      }
      for (std::size_t ci = 0; ci < p.cones().size(); ++ci) {
        const DecomposedCone& cone = p.cones()[ci];
        std::size_t prev = 0;
        bool first = true;
        for (std::size_t k = 0; k < cone.cliques.size(); ++k) {
          const std::size_t b = cone.cliques[k].block;
          if (b >= s.block_worker.size()) continue;  // clique-block reports it
          const std::size_t w = s.block_worker[b];
          if (!first && w < prev) {
            chk.fail("partition-order", "cone ", ci, " clique ", k, ": worker ", w,
                     " precedes worker ", prev,
                     " in the clique preorder (subtree segments must be contiguous)");
            break;
          }
          prev = w;
          first = false;
        }
      }
    }
  }

  // Provenance: the pass chain must be a monotone walk through the pipeline
  // (analyze → decompose → lower → equilibrate, or the cache's update →
  // equilibrate), stamping the base fingerprint before the lowering and the
  // lowered fingerprint from the lower/update pass on.
  const auto& prov = s.provenance;
  for (std::size_t i = 0; i < prov.size(); ++i) {
    const PassRecord& rec = prov[i];
    const int rank = pass_rank(rec.name);
    if (rank < 0) {
      chk.fail("provenance-name", "pass record ", i, " has unknown name '", rec.name, "'");
      continue;
    }
    if (i > 0) {
      const int prev = pass_rank(prov[i - 1].name);
      if (prev >= 0 && rank <= prev) {
        chk.fail("provenance-order", "pass '", rec.name, "' (record ", i,
                 ") does not follow '", prov[i - 1].name, "' in pipeline order");
      }
    }
    if (rec.seconds < 0.0 || !std::isfinite(rec.seconds)) {
      chk.fail("provenance-time", "pass '", rec.name, "' records ", rec.seconds, "s");
    }
    const bool pre_lowering = rec.name == "analyze" || rec.name == "decompose";
    const std::uint64_t expected =
        pre_lowering && s.base_fingerprint != 0 ? s.base_fingerprint : s.fingerprint;
    if (rec.fingerprint != expected) {
      chk.fail("provenance-fingerprint", "pass '", rec.name, "' stamped fingerprint ",
               rec.fingerprint, ", expected ", expected);
    }
  }
  if (!prov.empty()) {
    if (prov.front().name != "analyze" && prov.front().name != "update") {
      chk.fail("provenance-order", "provenance starts with '", prov.front().name,
               "', expected 'analyze' or 'update'");
    }
    if (prov.back().name != "equilibrate") {
      chk.fail("provenance-order", "provenance ends with '", prov.back().name,
               "', expected 'equilibrate'");
    }
  }
}

}  // namespace

VerifyResult verify(const Problem& p, const ProblemStructure* structure) {
  VerifyResult out;
  Checker chk(out);
  check_objectives(chk, p);
  check_rows(chk, p);
  check_cones(chk, p);
  if (structure != nullptr) {
    if (!structure->provenance.empty()) out.pass = structure->provenance.back().name;
    check_structure(chk, p, *structure);
  }
  return out;
}

void verify_pass_or_throw(const Problem& p, std::uint64_t expected_fingerprint,
                          const char* pass, const ProblemStructure* structure) {
  VerifyResult result = verify(p, structure);
  result.pass = pass;
  if (expected_fingerprint != 0) {
    const std::uint64_t fp = structure_fingerprint(p);
    if (fp != expected_fingerprint) {
      result.violations.push_back(
          {"fingerprint-stale",
           "recomputed fingerprint " + std::to_string(fp) + " does not match the stamped " +
               std::to_string(expected_fingerprint)});
    }
  }
  if (!result.ok()) throw std::logic_error(result.str());
}

}  // namespace soslock::sdp
