#include "sdp/admm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "sdp/scaling.hpp"
#include "util/log.hpp"

namespace soslock::sdp {
namespace {

using linalg::Cholesky;
using linalg::Matrix;
using linalg::Vector;

class Admm {
 public:
  Admm(const Problem& p, const AdmmOptions& opt, SolveContext& ctx)
      : p_(p), opt_(opt), ctx_(ctx) {
    m_ = p_.num_rows();
    nf_ = p_.num_free();
    nblocks_ = p_.num_blocks();
    total_dim_ = p_.total_psd_dim();
    rows_touching_block_.assign(nblocks_, {});
    for (std::size_t i = 0; i < m_; ++i)
      for (const auto& [j, a] : p_.rows()[i].blocks) rows_touching_block_[j].push_back(i);
    data_norm_ = 1.0;
    for (std::size_t i = 0; i < m_; ++i) data_norm_ = std::max(data_norm_, std::fabs(p_.rhs(i)));
    c_norm_ = 1.0;
    for (std::size_t j = 0; j < nblocks_; ++j)
      c_norm_ = std::max(c_norm_, linalg::norm_inf(p_.block_objective(j)));
    for (double fi : p_.free_objective()) c_norm_ = std::max(c_norm_, std::fabs(fi));
  }

  Solution run() {
    Solution out;
    rho_ = std::max(opt_.rho, 1e-8);
    const int rho_interval = std::max(opt_.rho_update_interval, 1);

    // The y-update normal matrix M = A A* + B B' is iteration-independent:
    // factor it once. M_ik = sum_j <A_ij, A_kj> + sum_v B_iv B_kv.
    std::optional<Cholesky> chol_m;
    if (m_ > 0) {
      Matrix normal(m_, m_);
      for (std::size_t j = 0; j < nblocks_; ++j) {
        const auto& touching = rows_touching_block_[j];
        for (std::size_t a = 0; a < touching.size(); ++a) {
          const std::size_t i = touching[a];
          const SparseSym& ai = p_.rows()[i].blocks.at(j);
          for (std::size_t bnd = a; bnd < touching.size(); ++bnd) {
            const std::size_t k = touching[bnd];
            const SparseSym& ak = p_.rows()[k].blocks.at(j);
            const double v = sparse_dot(ai, ak);
            normal(i, k) += v;
            if (i != k) normal(k, i) += v;
          }
        }
      }
      for (std::size_t i = 0; i < m_; ++i) {
        for (const auto& [v, ci] : p_.rows()[i].free_coeffs) {
          for (std::size_t k = i; k < m_; ++k) {
            const auto it = p_.rows()[k].free_coeffs.find(v);
            if (it == p_.rows()[k].free_coeffs.end()) continue;
            normal(i, k) += ci * it->second;
            if (i != k) normal(k, i) += ci * it->second;
          }
        }
      }
      chol_m = Cholesky::factor_shifted(normal, 1e-12);
    }

    // State: primal (X, w), dual (y, S). X stays exactly PSD by construction.
    std::vector<Matrix> x, s;
    x.reserve(nblocks_);
    s.reserve(nblocks_);
    for (std::size_t j = 0; j < nblocks_; ++j) {
      const std::size_t n = p_.block_size(j);
      x.emplace_back(n, n);
      s.emplace_back(n, n);
    }
    Vector y(m_, 0.0), w(nf_, 0.0);

    // Iteration-invariant part of the y-update rhs: A_i(C) + B_i'f.
    Vector rhs0(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const Row& row = p_.rows()[i];
      for (const auto& [j, a] : row.blocks) rhs0[i] += a.dot(p_.block_objective(j));
      for (const auto& [v, c] : row.free_coeffs) rhs0[i] += c * p_.free_objective()[v];
    }

    double pres = 1.0, dres = 1.0, gap = 1.0;
    // Best-iterate tracking: first-order iterates oscillate, and on
    // degenerate objectives the merit can plateau far from tolerance — in
    // both cases the caller gets the best iterate seen, and a long plateau
    // stops early instead of burning the remaining budget.
    Solution best;
    double best_merit = std::numeric_limits<double>::infinity();
    int stagnant_iterations = 0;
    constexpr int kStagnationWindow = 1000;
    int iter = 0;
    for (; iter < opt_.max_iterations; ++iter) {
      // --- y-update: M y = (b - A(X) - B w)/rho + A(C - S) + B f.
      if (m_ > 0) {
        Vector rhs(m_, 0.0);
        for (std::size_t i = 0; i < m_; ++i) {
          const Row& row = p_.rows()[i];
          double ax = 0.0;
          for (const auto& [j, a] : row.blocks) ax += a.dot(x[j]);
          for (const auto& [v, c] : row.free_coeffs) ax += c * w[v];
          rhs[i] = (p_.rhs(i) - ax) / rho_ + rhs0[i];
          for (const auto& [j, a] : row.blocks) rhs[i] -= a.dot(s[j]);
        }
        y = chol_m->solve(rhs);
      }

      // --- (S, X)-update: one eigendecomposition per block splits
      // U_j = C_j - A*_j y - X_j/rho into S_j = U_j^+ and X_j = rho U_j^-.
      dres = 0.0;
      for (std::size_t j = 0; j < nblocks_; ++j) {
        const std::size_t n = p_.block_size(j);
        Matrix u = p_.block_objective(j);
        for (std::size_t i : rows_touching_block_[j])
          p_.rows()[i].blocks.at(j).add_to(u, -y[i]);
        u.axpy(-1.0 / rho_, x[j]);
        u.symmetrize();
        const linalg::EigenSym eig = linalg::eigen_sym(u);
        Matrix splus(n, n), sminus(n, n);
        for (std::size_t r = 0; r < n; ++r) {
          const double lam = eig.values[r];
          // Rank-1 accumulate lam * q q' into the positive or negative part.
          Matrix& target = lam >= 0.0 ? splus : sminus;
          const double mag = std::fabs(lam);
          if (mag == 0.0) continue;
          for (std::size_t a = 0; a < n; ++a) {
            const double qa = eig.vectors(a, r) * mag;
            if (qa == 0.0) continue;
            for (std::size_t bnd = 0; bnd < n; ++bnd)
              target(a, bnd) += qa * eig.vectors(bnd, r);
          }
        }
        s[j] = std::move(splus);
        sminus.scale(rho_);  // new X_j
        // ADMM dual residual: the multiplier step ||X_new - X_old|| / rho.
        Matrix diff = sminus;
        diff -= x[j];
        dres = std::max(dres, linalg::norm_inf(diff) / (rho_ * (1.0 + c_norm_)));
        x[j] = std::move(sminus);
      }

      // --- w-update (multiplier ascent on B'y = f).
      if (nf_ > 0) {
        Vector bty(nf_, 0.0);
        for (std::size_t i = 0; i < m_; ++i) {
          if (y[i] == 0.0) continue;
          for (const auto& [v, c] : p_.rows()[i].free_coeffs) bty[v] += c * y[i];
        }
        for (std::size_t v = 0; v < nf_; ++v) {
          const double viol = bty[v] - p_.free_objective()[v];
          w[v] += rho_ * viol;
          dres = std::max(dres, std::fabs(viol) / (1.0 + c_norm_));
        }
      }

      // --- residuals / stopping.
      pres = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const Row& row = p_.rows()[i];
        double ax = 0.0;
        for (const auto& [j, a] : row.blocks) ax += a.dot(x[j]);
        for (const auto& [v, c] : row.free_coeffs) ax += c * w[v];
        pres = std::max(pres, std::fabs(p_.rhs(i) - ax));
      }
      pres /= 1.0 + data_norm_;
      const double pobj = primal_objective(x, w);
      const double dobj = dual_objective(y);
      gap = std::fabs(pobj - dobj) / (1.0 + std::fabs(pobj) + std::fabs(dobj));

      IterationInfo info;
      info.iteration = iter;
      info.primal_residual = pres;
      info.dual_residual = dres;
      info.gap = gap;
      ctx_.notify(info);

      if (opt_.verbose && iter % 100 == 0) {
        std::fprintf(stderr, "  admm %5d  rho=%8.2e  rp=%9.2e  rd=%9.2e  gap=%9.2e\n", iter,
                     rho_, pres, dres, gap);
      }

      const double merit = pres + dres + gap;
      if (merit < 0.99 * best_merit) {
        stagnant_iterations = 0;
      } else if (++stagnant_iterations > kStagnationWindow) {
        best.status = SolveStatus::MaxIterations;
        return best;
      }
      if (merit < best_merit) {
        best_merit = merit;
        fill(best, x, s, y, w, pres, dres, gap, iter);
      }

      if (pres < opt_.tolerance && dres < opt_.tolerance && gap < opt_.tolerance) {
        fill(out, x, s, y, w, pres, dres, gap, iter);
        out.status = SolveStatus::Optimal;
        return out;
      }
      if (ctx_.interrupted()) {
        if (best_merit == std::numeric_limits<double>::infinity())
          fill(best, x, s, y, w, pres, dres, gap, iter);
        best.status = SolveStatus::Interrupted;
        return best;
      }

      // --- residual balancing (Boyd et al. sec. 3.4.1, mapped to the dual
      // splitting: dres is the penalized constraint, pres the multiplier).
      if (opt_.adaptive_rho && iter > 0 && iter % rho_interval == 0) {
        if (dres > opt_.residual_balance * pres) {
          rho_ = std::min(rho_ * opt_.rho_scale, 1e8);
        } else if (pres > opt_.residual_balance * dres) {
          rho_ = std::max(rho_ / opt_.rho_scale, 1e-8);
        }
      }
    }
    if (best_merit == std::numeric_limits<double>::infinity())
      fill(best, x, s, y, w, pres, dres, gap, iter - 1);
    best.status = SolveStatus::MaxIterations;
    return best;
  }

 private:
  static double sparse_dot(const SparseSym& a, const SparseSym& b) {
    // <A, B> for two upper-triplet symmetric matrices: off-diagonal pairs
    // count twice. Both triplet lists are tiny (SOS rows touch few entries).
    double acc = 0.0;
    for (const Triplet& ta : a.entries) {
      for (const Triplet& tb : b.entries) {
        if (ta.r == tb.r && ta.c == tb.c)
          acc += ta.v * tb.v * (ta.r == ta.c ? 1.0 : 2.0);
      }
    }
    return acc;
  }

  double primal_objective(const std::vector<Matrix>& x, const Vector& w) const {
    double obj = linalg::dot(p_.free_objective(), w);
    for (std::size_t j = 0; j < nblocks_; ++j) obj += linalg::dot(p_.block_objective(j), x[j]);
    return obj;
  }

  double dual_objective(const Vector& y) const {
    double obj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) obj += p_.rhs(i) * y[i];
    return obj;
  }

  void fill(Solution& out, const std::vector<Matrix>& x, const std::vector<Matrix>& s,
            const Vector& y, const Vector& w, double pres, double dres, double gap,
            int iter) const {
    out.x = x;
    out.z = s;
    out.y = y;
    out.w = w;
    out.primal_objective = primal_objective(x, w);
    out.dual_objective = dual_objective(y);
    double mu = 0.0;
    for (std::size_t j = 0; j < nblocks_; ++j) mu += linalg::dot(x[j], s[j]);
    out.mu = total_dim_ > 0 ? mu / static_cast<double>(total_dim_) : 0.0;
    out.primal_residual = pres;
    out.dual_residual = dres;
    out.gap = gap;
    out.iterations = iter;
  }

  const Problem& p_;
  const AdmmOptions& opt_;
  SolveContext& ctx_;
  std::size_t m_ = 0, nf_ = 0, nblocks_ = 0, total_dim_ = 0;
  std::vector<std::vector<std::size_t>> rows_touching_block_;
  double data_norm_ = 1.0, c_norm_ = 1.0;
  double rho_ = 1.0;
};

}  // namespace

Solution AdmmSolver::solve(const Problem& problem, SolveContext& context) const {
  const util::Timer timer;
  Problem scaled = problem;
  const Scaling scaling = equilibrate_rows(scaled);
  Admm admm(scaled, options_, context);
  Solution sol = admm.run();
  for (std::size_t i = 0; i < sol.y.size(); ++i) {
    if (scaling.row_scale[i] != 0.0) sol.y[i] /= scaling.row_scale[i];
  }
  sol.backend = name();
  sol.solve_seconds = timer.seconds();
  util::log_debug("admm: ", to_string(sol.status), " after ", sol.iterations,
                  " iters, gap=", sol.gap, ", rp=", sol.primal_residual);
  return sol;
}

}  // namespace soslock::sdp
