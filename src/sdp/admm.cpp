#include "sdp/admm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "linalg/eigen_sym.hpp"
#include "linalg/kernels.hpp"
#include "sdp/admm_engine.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace soslock::sdp {

using linalg::Cholesky;
using linalg::Matrix;
using linalg::Vector;

void admm_split_psd(const Matrix& u, double rho, bool use_jacobi, Matrix& splus_out,
                    Matrix& xnew_out) {
  const std::size_t n = u.rows();
  const linalg::EigenSym eig = use_jacobi ? linalg::eigen_sym_jacobi(u) : linalg::eigen_sym(u);
  std::size_t nneg = 0;  // values ascending: negatives first
  while (nneg < n && eig.values[nneg] < 0.0) ++nneg;
  Matrix panel(n, nneg);
  for (std::size_t c = 0; c < nneg; ++c) {
    const double scale = std::sqrt(-eig.values[c]);
    for (std::size_t r = 0; r < n; ++r) panel(r, c) = eig.vectors(r, c) * scale;
  }
  const Matrix neg = linalg::times_transposed(panel, panel);  // U^-
  // Fused recombination: S^+ = U + U^-, X' = rho U^- in one pass over the
  // eigensplit output (linalg::Kernels::split_recombine).
  Matrix pos(n, n), xnew(n, n);
  linalg::active_kernels().split_recombine(neg.data(), u.data(), rho, pos.data(),
                                           xnew.data(), n * n);
  splus_out = std::move(pos);
  xnew_out = std::move(xnew);
}

AdmmEngine::AdmmEngine(const Problem& p, const AdmmOptions& opt, SolveContext& ctx,
                       std::shared_ptr<const ProblemStructure> structure)
    : p_(p), opt_(opt), ctx_(ctx), structure_(std::move(structure)), pool_(opt.threads) {
  m_ = p_.num_rows();
  nf_ = p_.num_free();
  nblocks_ = p_.num_blocks();
  total_dim_ = p_.total_psd_dim();
  views_ = build_block_row_views(p_, *structure_);
  // Native decomposed cones: overlap couplings join the dual update as
  // virtual rows [m, m+q) with consensus multipliers of their own. Their
  // (q x q) corner of the normal matrix is block-eliminated at setup, so
  // the per-iteration factorized system stays m x m; the per-clique PSD
  // projections are untouched — each clique block projects independently
  // and the multipliers price separator agreement.
  overlap_rows_ = append_overlap_views(p_, views_);
  q_ = overlap_rows_.size();
  mext_ = m_ + q_;
  data_norm_ = 1.0;
  for (std::size_t i = 0; i < m_; ++i) data_norm_ = std::max(data_norm_, std::fabs(p_.rhs(i)));
  c_norm_ = 1.0;
  for (std::size_t j = 0; j < nblocks_; ++j)
    c_norm_ = std::max(c_norm_, linalg::norm_inf(p_.block_objective(j)));
  for (double fi : p_.free_objective()) c_norm_ = std::max(c_norm_, std::fabs(fi));
}

void AdmmEngine::setup_normal() {
  // The y-update normal matrix M = A A* + B B' is iteration-independent:
  // factor it once. M_ik = sum_j <A_ij, A_kj> + sum_v B_iv B_kv. With
  // native cones the overlap couplings extend it to (m+q); the overlap
  // corner is block-eliminated here — factor Q and the reduced
  // Nyy - Nyl Q^{-1} Nly — so every later y-update solves the joint
  // (rows, consensus multipliers) system through two fixed factors of
  // dimension m and q instead of one of dimension m+q.
  const util::Timer setup_timer;
  if (mext_ > 0) {
    Matrix normal(mext_, mext_);
    for (std::size_t j = 0; j < nblocks_; ++j) {
      const auto& touching = views_[j];
      for (std::size_t a = 0; a < touching.size(); ++a) {
        const SparseSym& ai = *touching[a].coeff;
        for (std::size_t bnd = a; bnd < touching.size(); ++bnd) {
          const SparseSym& ak = *touching[bnd].coeff;
          const double v = sparse_dot(ai, ak);
          const std::size_t i = touching[a].row, k = touching[bnd].row;
          normal(i, k) += v;
          if (i != k) normal(k, i) += v;
        }
      }
    }
    for (std::size_t i = 0; i < m_; ++i) {
      for (const auto& [v, ci] : p_.rows()[i].free_coeffs) {
        for (std::size_t k = i; k < m_; ++k) {
          const auto it = p_.rows()[k].free_coeffs.find(v);
          if (it == p_.rows()[k].free_coeffs.end()) continue;
          normal(i, k) += ci * it->second;
          if (i != k) normal(k, i) += ci * it->second;
        }
      }
    }
    if (q_ == 0) {
      if (m_ > 0) chol_m_.emplace(Cholesky::factor_shifted(normal, 1e-12));
    } else {
      // Same flop-neutral elimination shape as the IPM's Schur step; here
      // the normal matrix is iteration-invariant, so it runs once.
      const Matrix reduced = elim_.reduce(normal, m_, q_, 1e-12);
      if (m_ > 0) chol_m_.emplace(Cholesky::factor_shifted(reduced, 1e-12));
    }
  }
  phase_.factor += setup_timer.seconds();
}

void AdmmEngine::init_state() {
  // State: primal (X, w), dual (y, S). X stays PSD by construction (it is
  // rebuilt each iteration as a Gram product of the negative eigenpanel).
  if (const WarmStart* ws = ctx_.warm_start; ws != nullptr && ws->fits(p_)) {
    // First-order iterates need no interior margin: restore the raw state.
    x_ = ws->x;
    s_ = ws->z;
    y_ = ws->y;
    y_.resize(mext_, 0.0);  // consensus multipliers restart at zero
    w_ = ws->w;
    for (std::size_t j = 0; j < nblocks_; ++j) {
      x_[j].symmetrize();
      s_[j].symmetrize();
    }
  } else {
    // Cold start from fat identity iterates (the SDPT3-style magnitudes
    // the IPM uses) rather than zero: X = 0 is the most rank-deficient
    // point of the cone, and an interior start gives every eigendirection
    // initial mass. (This matters for basin quality, not for the
    // degenerate-drift lock below, which forms mid-descent regardless of
    // the start.)
    double xi = 10.0, eta = 10.0;
    for (std::size_t i = 0; i < m_; ++i) {
      double arow = 1.0;
      for (const auto& [j, a] : p_.rows()[i].blocks) arow = std::max(arow, a.frobenius_norm());
      xi = std::max(xi, (1.0 + std::fabs(p_.rhs(i))) / arow);
    }
    eta = std::max(eta, 1.0 + c_norm_);
    x_.clear();
    s_.clear();
    x_.reserve(nblocks_);
    s_.reserve(nblocks_);
    for (std::size_t j = 0; j < nblocks_; ++j) {
      const std::size_t n = p_.block_size(j);
      Matrix xj = Matrix::identity(n);
      xj.scale(xi);
      Matrix sj = Matrix::identity(n);
      sj.scale(eta);
      x_.push_back(std::move(xj));
      s_.push_back(std::move(sj));
    }
    y_.assign(mext_, 0.0);
    w_.assign(nf_, 0.0);
  }

  // Iteration-invariant part of the y-update rhs: A_i(C) + B_i'f.
  rhs0_.assign(mext_, 0.0);
  for (std::size_t i = 0; i < mext_; ++i) {
    const Row& row = row_at(i);
    for (const auto& [j, a] : row.blocks) rhs0_[i] += a.dot(p_.block_objective(j));
    for (const auto& [v, c] : row.free_coeffs) rhs0_[i] += c * p_.free_objective()[v];
  }
}

Vector AdmmEngine::solve_y(const std::vector<Matrix>& x, const std::vector<Matrix>& s,
                           const Vector& w, double rho) const {
  if (mext_ == 0) return Vector();
  Vector rhs(mext_, 0.0);
  for (std::size_t i = 0; i < mext_; ++i) {
    const Row& row = row_at(i);
    double ax = 0.0;
    for (const auto& [j, a] : row.blocks) ax += a.dot(x[j]);
    for (const auto& [v, c] : row.free_coeffs) ax += c * w[v];
    rhs[i] = (rhs_at(i) - ax) / rho + rhs0_[i];
    for (const auto& [j, a] : row.blocks) rhs[i] -= a.dot(s[j]);
  }
  // Injected iterate poisoning: a NaN here flows into y and from there into
  // every projection — the leak the control_step watchdog must classify.
  SOSLOCK_FAULT_HOOK(util::fault_site::kIterateNan, {
    if (!rhs.empty()) rhs[0] = std::numeric_limits<double>::quiet_NaN();
  });
  if (q_ == 0) return chol_m_->solve(rhs);
  // Two-stage elimination solve — algebraically the joint (m+q) normal
  // system, through the cached factors.
  Vector ra(rhs.begin(), rhs.begin() + static_cast<std::ptrdiff_t>(m_));
  const Vector rb(rhs.begin() + static_cast<std::ptrdiff_t>(m_), rhs.end());
  const Vector t = elim_.fold_rhs(rb, ra);
  const Vector yrows = m_ > 0 ? chol_m_->solve(ra) : Vector();
  const Vector lam = elim_.multipliers(t, yrows);
  Vector y = yrows;
  y.insert(y.end(), lam.begin(), lam.end());
  return y;
}

double AdmmEngine::project_block(std::size_t j, const Vector& y, double rho, Matrix& x_j,
                                 Matrix& s_j) const {
  // U_j = alpha (C_j - A*_j y) + (1-alpha) S_j - X_j/rho; the eigensplit
  // gives S_j = U_j^+ and X_j = -rho U_j^-, PSD by construction and
  // complementary up to eigensolver roundoff, with over-relaxation damping
  // the tail oscillation of the plain splitting.
  Matrix u = p_.block_objective(j);
  for (const BlockRowView& v : views_[j]) v.coeff->add_to(u, -y[v.row]);
  if (alpha_ != 1.0) {
    u.scale(alpha_);
    u.axpy(1.0 - alpha_, s_j);
  }
  u.axpy(-1.0 / rho, x_j);
  u.symmetrize();
  Matrix splus, xnew;
  admm_split_psd(u, rho, opt_.use_jacobi_eig, splus, xnew);
  Matrix diff = xnew;
  diff -= x_j;
  const double dres = linalg::norm_inf(diff) / (rho * (1.0 + c_norm_));
  s_j = std::move(splus);
  x_j = std::move(xnew);
  return dres;
}

double AdmmEngine::update_w(const Vector& y, Vector& w, double rho) const {
  if (nf_ == 0) return 0.0;
  double dres = 0.0;
  Vector bty(nf_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    if (y[i] == 0.0) continue;
    for (const auto& [v, c] : p_.rows()[i].free_coeffs) bty[v] += c * y[i];
  }
  for (std::size_t v = 0; v < nf_; ++v) {
    const double viol = bty[v] - p_.free_objective()[v];
    w[v] += alpha_ * rho * viol;
    dres = std::max(dres, std::fabs(viol) / (1.0 + c_norm_));
  }
  return dres;
}

double AdmmEngine::primal_residual_inf(const std::vector<Matrix>& x, const Vector& w) const {
  // Overlap couplings count as primal feasibility: the iterate is only
  // feasible when the clique copies agree on their separators.
  double pres = 0.0;
  for (std::size_t i = 0; i < mext_; ++i) {
    const Row& row = row_at(i);
    double ax = 0.0;
    for (const auto& [j, a] : row.blocks) ax += a.dot(x[j]);
    for (const auto& [v, c] : row.free_coeffs) ax += c * w[v];
    pres = std::max(pres, std::fabs(rhs_at(i) - ax));
  }
  return pres;
}

double AdmmEngine::overlap_residual_inf(const std::vector<Matrix>& x) const {
  double res = 0.0;
  for (std::size_t i = m_; i < mext_; ++i) {
    const Row& row = row_at(i);
    double ax = 0.0;
    for (const auto& [j, a] : row.blocks) ax += a.dot(x[j]);
    res = std::max(res, std::fabs(ax));
  }
  return res;
}

double AdmmEngine::sparse_dot(const SparseSym& a, const SparseSym& b) {
  // <A, B> for two upper-triplet symmetric matrices: off-diagonal pairs
  // count twice. Both triplet lists are tiny (SOS rows touch few entries).
  double acc = 0.0;
  for (const Triplet& ta : a.entries) {
    for (const Triplet& tb : b.entries) {
      if (ta.r == tb.r && ta.c == tb.c) acc += ta.v * tb.v * (ta.r == ta.c ? 1.0 : 2.0);
    }
  }
  return acc;
}

double AdmmEngine::primal_objective(const std::vector<Matrix>& x, const Vector& w) const {
  double obj = linalg::dot(p_.free_objective(), w);
  for (std::size_t j = 0; j < nblocks_; ++j) obj += linalg::dot(p_.block_objective(j), x[j]);
  return obj;
}

double AdmmEngine::dual_objective(const Vector& y) const {
  double obj = 0.0;
  for (std::size_t i = 0; i < m_; ++i) obj += p_.rhs(i) * y[i];
  return obj;
}

void AdmmEngine::fill(Solution& out, const std::vector<Matrix>& x,
                      const std::vector<Matrix>& s, const Vector& y, const Vector& w,
                      double pres, double dres, double gap, int iter) const {
  out.x = x;
  out.z = s;
  // Consensus multipliers are internal state: only row multipliers leave.
  out.y.assign(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(m_));
  out.w = w;
  out.primal_objective = primal_objective(x, w);
  out.dual_objective = dual_objective(y);
  double mu = 0.0;
  for (std::size_t j = 0; j < nblocks_; ++j) mu += linalg::dot(x[j], s[j]);
  out.mu = total_dim_ > 0 ? mu / static_cast<double>(total_dim_) : 0.0;
  out.primal_residual = pres;
  out.dual_residual = dres;
  out.gap = gap;
  out.iterations = iter;
}

AdmmEngine::ControlAction AdmmEngine::control_step(int iter, double pres, double dres,
                                                   double gap, const std::vector<Matrix>& x,
                                                   const std::vector<Matrix>& s,
                                                   const Vector& y, const Vector& w,
                                                   Solution& best, double& best_merit,
                                                   int& stagnant) {
  constexpr int kStagnationWindow = 1000;

  // Watchdog first: a non-finite residual/gap or iterate means a NaN/Inf
  // entered the state (satellite fix: the old loop iterated to max_iter on a
  // poisoned iterate, because the residual max-reductions silently drop
  // NaNs — std::max(x, NaN) is x). Classify and bail with the phase named.
  if (!std::isfinite(pres + dres + gap)) {
    diverged_phase_ = !std::isfinite(pres)   ? "primal-residual"
                      : !std::isfinite(dres) ? "dual-residual"
                                             : "gap";
    util::log_info("admm: diverged at iteration ", iter, " (", diverged_phase_, ")");
    return ControlAction::Diverged;
  }
  if (!iterate_finite(x, s, y, w)) {
    diverged_phase_ = "iterate";
    util::log_info("admm: diverged at iteration ", iter, " (iterate)");
    return ControlAction::Diverged;
  }

  IterationInfo info;
  info.iteration = iter;
  info.primal_residual = pres;
  info.dual_residual = dres;
  info.gap = gap;
  ctx_.notify(info);

  if (opt_.verbose && iter % 100 == 0) {
    std::fprintf(stderr, "  admm %5d  rho=%8.2e  rp=%9.2e  rd=%9.2e  gap=%9.2e\n", iter,
                 rho_, pres, dres, gap);
  }

  // Best-iterate tracking: first-order iterates oscillate, and on degenerate
  // objectives the merit can plateau far from tolerance — in both cases the
  // caller gets the best iterate seen, and a long plateau stops early
  // instead of burning the remaining budget.
  const double merit = pres + dres + gap;
  if (merit < 0.99 * best_merit) {
    stagnant = 0;
  } else {
    ++stagnant;
  }
  if (merit < best_merit) {
    best_merit = merit;
    fill(best, x, s, y, w, pres, dres, gap, iter);
  }

  if (pres < opt_.tolerance && dres < opt_.tolerance && gap < opt_.tolerance) {
    return ControlAction::Converged;
  }
  if (ctx_.interrupted()) {
    if (best_merit == std::numeric_limits<double>::infinity())
      fill(best, x, s, y, w, pres, dres, gap, iter);
    return ControlAction::Interrupted;
  }

  // --- degenerate-drift classification. On non-strictly-complementary
  // optima (the maximize_region Lyapunov objective is the canonical in-tree
  // case) the projection splitting locks its eigenspace split: dres
  // collapses to machine noise while pres freezes and b'y crawls along a
  // nearly flat dual direction at a constant per-iteration delta. No penalty
  // schedule moves that floor (rho scans, restarts, over-relaxation and
  // exact inner ALM solves were all tried) — the honest move is to classify
  // early and hand the caller the best iterate plus its warm-start state,
  // instead of burning the remaining budget "stalled". The "auto" policy
  // backend then recovers by re-solving on the second-order backend from
  // this very iterate.
  const bool drift_locked =
      stagnant > 300 && dres < 1e-3 * pres && pres > 10.0 * opt_.tolerance;
  if (drift_locked || stagnant > kStagnationWindow) {
    if (drift_locked) {
      util::log_debug("admm: degenerate-drift lock classified at iter ", iter, " (rp=", pres,
                      ", rd=", dres, "); returning best iterate");
    }
    return ControlAction::ReturnBest;
  }

  // --- residual balancing (Boyd et al. sec. 3.4.1 mapped to the dual
  // splitting: dres is the penalized constraint, pres the multiplier), made
  // proportional — rescale by sqrt(ratio) toward balance, clamped to one
  // rho_scale step per update. The PR 1 stall came from the unguarded branch
  // below: when dres collapses to machine noise the ratio says nothing about
  // rho (the degenerate-drift regime handled above), yet the old rule kept
  // halving rho until the multiplier steps were too small to ever move pres
  // again. Guard: leave rho alone once dres is noise-level.
  if (opt_.adaptive_rho && iter > 0 && iter % rho_interval_ == 0 && dres > 1e-10 &&
      pres > 0.0) {
    const double ratio = dres / pres;
    if (ratio > opt_.residual_balance || ratio < 1.0 / opt_.residual_balance) {
      const double factor = std::clamp(std::sqrt(ratio), 1.0 / opt_.rho_scale, opt_.rho_scale);
      rho_ = std::clamp(rho_ * factor, 1e-6, 1e6);
    }
  }
  return ControlAction::Continue;
}

bool AdmmEngine::iterate_finite(const std::vector<Matrix>& x,
                                const std::vector<Matrix>& s, const Vector& y,
                                const Vector& w) {
  // One accumulator per solve: NaN and Inf both propagate through addition
  // (Inf + -Inf is NaN), so a single non-finite entry anywhere poisons the
  // sum. O(n^2) per block against the O(n^3) eigensplit per iteration.
  double acc = 0.0;
  for (const std::vector<Matrix>* set : {&x, &s}) {
    for (const Matrix& m : *set) {
      for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) acc += m(r, c);
      }
    }
  }
  for (const double v : y) acc += v;
  for (const double v : w) acc += v;
  return std::isfinite(acc);
}

Solution AdmmEngine::run() {
  rho_ = std::max(opt_.rho, 1e-8);
  rho_interval_ = std::max(opt_.rho_update_interval, 1);
  alpha_ = std::clamp(opt_.over_relaxation, 1.0, 1.95);
  setup_normal();
  init_state();

  Solution sol;
  bool ran_async = false;
  if (opt_.async) {
    const SubtreePartition partition =
        resolve_partition(opt_.workers == 0 ? util::ThreadPool::hardware_threads()
                                            : opt_.workers);
    std::vector<bool> used(partition.workers, false);
    for (std::size_t j = 0; j < nblocks_; ++j) {
      if (p_.block_size(j) > 0) used[partition.block_worker[j]] = true;
    }
    std::size_t live = 0;
    for (const bool u : used) live += u ? 1 : 0;
    if (live >= 2) {
      sol = run_async(partition);
      ran_async = true;
    }
  }
  if (!ran_async) sol = run_sync();

  sol.recoveries.insert(sol.recoveries.end(), recoveries_.begin(), recoveries_.end());
  sol.phase = phase_;
  // Dimension of the dense cached normal factor: overlap couplings are
  // block-eliminated, so it is the row count with or without cones.
  sol.schur_rows = m_;
  return sol;
}

SubtreePartition AdmmEngine::resolve_partition(std::size_t workers) const {
  if (structure_ != nullptr && structure_->partition_workers == workers &&
      structure_->block_worker.size() == nblocks_) {
    SubtreePartition part;
    part.workers = structure_->partition_workers;
    part.block_worker = structure_->block_worker;
    part.detail = "cached on structure";
    return part;
  }
  return partition_subtrees(p_, workers);
}

Solution AdmmEngine::run_sync() {
  Solution out;
  double pres = 1.0, dres = 1.0, gap = 1.0;
  Solution best;
  double best_merit = std::numeric_limits<double>::infinity();
  int stagnant = 0;
  linalg::Vector dres_per_block(nblocks_, 0.0);
  int iter = 0;
  for (; iter < opt_.max_iterations; ++iter) {
    util::Timer phase_timer;
    y_ = solve_y(x_, s_, w_, rho_);
    phase_.schur += phase_timer.seconds();
    phase_timer.reset();
    // Blocks are independent given y (read-only here): one eigendecomposition
    // per block, fanned out on the pool. Each task writes only its own
    // x_[j] / s_[j] slot and dres slot, and the final max-reduction is
    // order-independent, so results are identical across thread counts.
    pool_.run_all(nblocks_, [&](std::size_t j) {
      dres_per_block[j] = project_block(j, y_, rho_, x_[j], s_[j]);
    });
    dres = 0.0;
    for (double d : dres_per_block) dres = std::max(dres, d);
    phase_.eig += phase_timer.seconds();
    phase_timer.reset();
    dres = std::max(dres, update_w(y_, w_, rho_));
    pres = primal_residual_inf(x_, w_) / (1.0 + data_norm_);
    const double pobj = primal_objective(x_, w_);
    const double dobj = dual_objective(y_);
    gap = std::fabs(pobj - dobj) / (1.0 + std::fabs(pobj) + std::fabs(dobj));
    phase_.recover += phase_timer.seconds();

    const ControlAction action =
        control_step(iter, pres, dres, gap, x_, s_, y_, w_, best, best_merit, stagnant);
    if (action == ControlAction::Converged) {
      fill(out, x_, s_, y_, w_, pres, dres, gap, iter);
      out.status = SolveStatus::Optimal;
      return out;
    }
    if (action == ControlAction::Interrupted) {
      best.status = SolveStatus::Interrupted;
      return best;
    }
    if (action == ControlAction::ReturnBest) {
      best.status = SolveStatus::MaxIterations;
      return best;
    }
    if (action == ControlAction::Diverged) {
      if (best_merit == std::numeric_limits<double>::infinity())
        fill(best, x_, s_, y_, w_, pres, dres, gap, iter);
      best.status = SolveStatus::Diverged;
      best.faulted_phase = diverged_phase_;
      return best;
    }
  }
  if (best_merit == std::numeric_limits<double>::infinity())
    fill(best, x_, s_, y_, w_, pres, dres, gap, iter - 1);
  best.status = SolveStatus::MaxIterations;
  return best;
}

Solution AdmmSolver::solve(const Problem& problem, SolveContext& context) const {
  // Row equilibration is the caller's job (SosProgram::solve applies it to
  // every compiled program); see IpmSolver::solve for the warm-start rationale.
  const util::Timer timer;
  AdmmEngine engine(problem, options_, context, StructureCache::global().get(problem));
  Solution sol = engine.run();
  sol.backend = name();
  sol.solve_seconds = timer.seconds();
  util::log_debug("admm: ", to_string(sol.status), " after ", sol.iterations,
                  " iters, gap=", sol.gap, ", rp=", sol.primal_residual);
  return sol;
}

}  // namespace soslock::sdp
