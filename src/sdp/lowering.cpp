#include "sdp/lowering.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "sdp/verify.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace soslock::sdp {

using linalg::Matrix;

Lowering lower(Problem problem, const LoweringOptions& options) {
  Lowering out;
  const util::Timer total_timer;
  util::Timer pass_timer;

  // --- analyze: the base space. Its fingerprint is what warm blobs carry.
  out.base_fingerprint = structure_fingerprint(problem);
  const bool convert = options.sparsity == SparsityOptions::Chordal;
  {
    PassRecord rec;
    rec.name = "analyze";
    rec.fingerprint = out.base_fingerprint;
    rec.detail = problem.stats() + (convert ? "" : " (conversion off)");
    rec.seconds = pass_timer.seconds();
    out.passes.push_back(std::move(rec));
  }
  SOSLOCK_VERIFY_PASS(problem, out.base_fingerprint, "analyze");
  // Injected pipeline failure between passes: `problem` was moved in but no
  // caller-visible state has been touched yet, so an abort here must leave
  // every cache exactly as it was (the fault tests assert this).
  SOSLOCK_FAULT_POINT(util::fault_site::kLoweringPass);

  // --- decompose + lower: chordal clique planning and block lowering.
  if (convert) {
    pass_timer.reset();
    const ConversionPlan plan = plan_decomposition(problem, options.chordal);
    {
      PassRecord rec;
      rec.name = "decompose";
      rec.fingerprint = out.base_fingerprint;  // planning reads only
      rec.detail = plan.detail;
      rec.seconds = pass_timer.seconds();
      out.passes.push_back(std::move(rec));
    }
    SOSLOCK_VERIFY_PASS(problem, out.base_fingerprint, "decompose");
    pass_timer.reset();
    out.map = apply_decomposition(problem, plan, options.chordal.at_seam);
    {
      PassRecord rec;
      rec.name = "lower";
      // Equilibration below is structure-preserving, so the post-lower
      // fingerprint IS the lowered fingerprint — hash once, record twice.
      out.lowered_fingerprint =
          out.map.identity() ? out.base_fingerprint : structure_fingerprint(problem);
      rec.fingerprint = out.lowered_fingerprint;
      rec.detail = out.map.identity()
                       ? "identity (nothing split)"
                       : (options.chordal.at_seam ? "seam rows: " : "native cones: ") +
                             std::to_string(out.map.plans.size()) + " cone(s), max clique " +
                             std::to_string(out.map.max_clique_size());
      rec.seconds = pass_timer.seconds();
      out.passes.push_back(std::move(rec));
    }
    SOSLOCK_VERIFY_PASS(problem, out.lowered_fingerprint, "lower");
  }
  if (!convert) out.lowered_fingerprint = out.base_fingerprint;

  // --- partition (opt-in): subtree -> worker assignment for the async
  // clique-parallel ADMM driver. Reads the lowered block/cone layout and
  // writes no problem state, so the fingerprint is unchanged.
  if (options.partition_workers > 0) {
    pass_timer.reset();
    out.partition = partition_subtrees(problem, options.partition_workers);
    PassRecord rec;
    rec.name = "partition";
    rec.fingerprint = out.lowered_fingerprint;
    rec.detail = out.partition.detail;
    rec.seconds = pass_timer.seconds();
    out.passes.push_back(std::move(rec));
    SOSLOCK_VERIFY_PASS(problem, out.lowered_fingerprint, "partition");
  }

  // --- equilibrate: row scaling (structure-preserving).
  pass_timer.reset();
  out.scaling = equilibrate_rows(problem);
  {
    std::size_t scaled = 0;
    for (const double s : out.scaling.row_scale) scaled += s != 1.0 ? 1 : 0;
    PassRecord rec;
    rec.name = "equilibrate";
    rec.fingerprint = out.lowered_fingerprint;
    rec.detail = std::to_string(scaled) + "/" +
                 std::to_string(out.scaling.row_scale.size()) + " rows scaled";
    rec.seconds = pass_timer.seconds();
    out.passes.push_back(std::move(rec));
  }
  SOSLOCK_VERIFY_PASS(problem, out.lowered_fingerprint, "equilibrate");

  out.problem = std::move(problem);
  out.convert_seconds = total_timer.seconds();

  // Seed the pattern cache with the structure we effectively already know,
  // carrying the base fingerprint and the pass provenance, so the backend's
  // lookup returns this annotated instance. Repeated structurally identical
  // solves (the warm-start retry ladders) find their previous entry and
  // skip the rebuild + reseed entirely.
  const auto existing = StructureCache::global().find(out.lowered_fingerprint);
  const bool reusable =
      existing != nullptr && existing->base_fingerprint == out.base_fingerprint &&
      existing->compatible_with(out.problem) &&
      (out.partition.empty() || (existing->partition_workers == out.partition.workers &&
                                 existing->block_worker == out.partition.block_worker));
  if (!reusable) {
    auto structure = std::make_shared<ProblemStructure>(
        build_structure(out.problem, out.lowered_fingerprint));
    structure->base_fingerprint = out.base_fingerprint;
    structure->provenance = out.passes;
    structure->block_worker = out.partition.block_worker;
    structure->partition_workers = out.partition.workers;
    StructureCache::global().put(std::move(structure));
  }
  return out;
}

Solution recover(Solution solution, const Lowering& lowering) {
  // Un-scale the dual multipliers so they certify the original rows (the
  // audit and every solution.value() consumer sees the unequilibrated
  // system). Seam overlap rows are part of the lowered row space and are
  // dropped by recover_original below.
  for (std::size_t i = 0; i < solution.y.size() && i < lowering.scaling.row_scale.size();
       ++i) {
    if (lowering.scaling.row_scale[i] != 0.0) solution.y[i] /= lowering.scaling.row_scale[i];
  }
  if (!lowering.map.identity()) solution = recover_original(solution, lowering.map);
  solution.phase.convert += lowering.convert_seconds;
  return solution;
}

namespace {

/// How many cliques of `plan` cover each (r, c) entry pair of the original
/// block — the dual-slack split weights of the warm remap.
std::vector<int> entry_multiplicity(const BlockPlan& plan) {
  const std::size_t n = plan.original_size;
  std::vector<int> mult(n * n, 0);
  for (const auto& clique : plan.forest.cliques) {
    for (const std::size_t r : clique)
      for (const std::size_t c : clique) ++mult[r * n + c];
  }
  return mult;
}

}  // namespace

WarmStart remap_warm_start(const WarmStart& original, const Lowering& lowering) {
  WarmStart out;
  if (original.empty()) return out;

  // Shape of the base space this lowering came from.
  const std::size_t base_blocks = lowering.map.identity()
                                      ? lowering.problem.num_blocks()
                                      : lowering.map.original_block_sizes.size();
  const std::size_t base_rows =
      lowering.map.identity() ? lowering.problem.num_rows() : lowering.map.original_rows;
  if (original.x.size() != base_blocks || original.z.size() != base_blocks ||
      original.y.size() != base_rows || original.w.size() != lowering.problem.num_free()) {
    util::log_debug("lowering: warm blob shape does not match the base space; cold start");
    return out;
  }

  out.fingerprint = lowering.lowered_fingerprint;
  out.w = original.w;

  // Row multipliers: original rows keep their indices across the lowering;
  // seam overlap rows (appended after them) start at zero. Scale into the
  // equilibrated row space the backend sees.
  out.y.assign(lowering.problem.num_rows(), 0.0);
  for (std::size_t i = 0; i < base_rows; ++i) out.y[i] = original.y[i];
  for (std::size_t i = 0; i < out.y.size() && i < lowering.scaling.row_scale.size(); ++i)
    out.y[i] *= lowering.scaling.row_scale[i];

  out.x.assign(lowering.problem.num_blocks(), Matrix());
  out.z.assign(lowering.problem.num_blocks(), Matrix());
  if (lowering.map.identity()) {
    for (std::size_t j = 0; j < base_blocks; ++j) {
      if (original.x[j].rows() != lowering.problem.block_size(j)) {
        util::log_debug("lowering: warm blob block ", j, " shape drifted; cold start");
        return WarmStart{};
      }
      out.x[j] = original.x[j];
      out.z[j] = original.z[j];
    }
    return out;
  }

  // Kept blocks copy over; decomposed blocks restrict per clique.
  for (std::size_t j = 0; j < base_blocks; ++j) {
    const std::size_t cb = lowering.map.block_map[j];
    if (cb == ChordalMap::kNotMapped) continue;
    if (original.x[j].rows() != lowering.problem.block_size(cb)) {
      util::log_debug("lowering: warm blob block ", j, " shape drifted; cold start");
      return WarmStart{};
    }
    out.x[cb] = original.x[j];
    out.z[cb] = original.z[j];
  }
  for (const BlockPlan& plan : lowering.map.plans) {
    const std::size_t n = plan.original_size;
    const Matrix& x = original.x[plan.original_block];
    const Matrix& z = original.z[plan.original_block];
    // Drift guard: the canonical entry map of every clique must address the
    // blob's block. A blob from before the map changed (the remap analog of
    // a fingerprint collision) is rejected whole — replaying a misaligned
    // clique would scatter unrelated entries into the backend's iterate.
    if (x.rows() != n || z.rows() != n) {
      util::log_debug("lowering: warm blob cone ", plan.original_block,
                      " shape drifted (", x.rows(), " vs ", n, "); cold start");
      return WarmStart{};
    }
    for (const auto& clique : plan.forest.cliques) {
      for (const std::size_t v : clique) {
        if (v >= n) {
          util::log_debug("lowering: clique entry map drifted out of block ",
                          plan.original_block, "; cold start");
          return WarmStart{};
        }
      }
    }
    const std::vector<int> mult = entry_multiplicity(plan);
    for (std::size_t k = 0; k < plan.forest.cliques.size(); ++k) {
      const auto& clique = plan.forest.cliques[k];
      const std::size_t cb = plan.converted_block[k];
      const std::size_t nk = clique.size();
      Matrix xk(nk, nk), zk(nk, nk);
      for (std::size_t a = 0; a < nk; ++a) {
        for (std::size_t b = 0; b < nk; ++b) {
          const std::size_t r = clique[a], c = clique[b];
          // Primal restriction of a PSD matrix is PSD and exactly
          // consistent across copies; the dual splits by multiplicity so
          // the scatter-add recombination reproduces the dense slack.
          xk(a, b) = x(r, c);
          zk(a, b) = z(r, c) / static_cast<double>(mult[r * n + c]);
        }
      }
      out.x[cb] = std::move(xk);
      out.z[cb] = std::move(zk);
    }
  }
  return out;
}

WarmStart export_warm_start(const Solution& recovered, const Lowering& lowering) {
  return make_warm_start(recovered, lowering.base_fingerprint);
}

namespace {

constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

/// Reseed the global pattern cache when the lowered structure fell out of it
/// (sweeps bound the cache; a colder shape may have evicted this one).
void reseed_structure(const Lowering& lowering) {
  const auto existing = StructureCache::global().find(lowering.lowered_fingerprint);
  if (existing != nullptr && existing->base_fingerprint == lowering.base_fingerprint &&
      existing->compatible_with(lowering.problem) &&
      (lowering.partition.empty() ||
       (existing->partition_workers == lowering.partition.workers &&
        existing->block_worker == lowering.partition.block_worker))) {
    return;
  }
  auto structure = std::make_shared<ProblemStructure>(
      build_structure(lowering.problem, lowering.lowered_fingerprint));
  structure->base_fingerprint = lowering.base_fingerprint;
  structure->provenance = lowering.passes;
  structure->block_worker = lowering.partition.block_worker;
  structure->partition_workers = lowering.partition.workers;
  StructureCache::global().put(std::move(structure));
}

}  // namespace

bool LoweringCache::options_match(const LoweringOptions& options) const {
  return options.sparsity == options_.sparsity &&
         options.chordal.min_block_size == options_.chordal.min_block_size &&
         options.chordal.max_clique_fraction == options_.chordal.max_clique_fraction &&
         options.chordal.at_seam == options_.chordal.at_seam &&
         options.partition_workers == options_.partition_workers;
}

const Lowering& LoweringCache::lower(Problem problem, const LoweringOptions& options) {
  if (valid_ && options_match(options) && try_update(problem)) {
    updates_.fetch_add(1, std::memory_order_relaxed);
    return lowering_;
  }
  plan_.clear();
  plan_built_ = false;
  entry_index_.clear();
  lowering_ = soslock::sdp::lower(std::move(problem), options);
  options_ = options;
  valid_ = true;
  full_.fetch_add(1, std::memory_order_relaxed);
  return lowering_;
}

bool LoweringCache::build_update_plan(const Problem& base) {
  const ChordalMap& map = lowering_.map;
  entry_index_.clear();
  entry_index_.reserve(map.plans.size());
  for (const BlockPlan& bp : map.plans)
    entry_index_.push_back(index_decomposed_block(bp.forest, bp.original_size));
  std::vector<std::size_t> plan_of(map.block_map.size(), kNoEntry);
  for (std::size_t pi = 0; pi < map.plans.size(); ++pi)
    plan_of[map.plans[pi].original_block] = pi;

  plan_.assign(base.num_rows(), {});
  for (std::size_t i = 0; i < base.num_rows(); ++i) {
    const Row& brow = base.rows()[i];
    const Row& lrow = lowering_.problem.rows()[i];
    if (brow.free_coeffs.size() != lrow.free_coeffs.size()) return false;
    auto& dests = plan_[i];
    for (const auto& [j, a] : brow.blocks) {
      const std::size_t cb = map.block_map[j];
      if (cb != ChordalMap::kNotMapped) {
        // Kept block: apply_decomposition copied its coefficient verbatim,
        // so destinations are 1:1 at the same entry index. Verify anyway —
        // a position mismatch here is the update analog of a fingerprint
        // collision and must fall back, not scatter.
        const auto it = lrow.blocks.find(cb);
        if (it == lrow.blocks.end() || it->second.entries.size() != a.entries.size())
          return false;
        for (std::size_t e = 0; e < a.entries.size(); ++e) {
          if (it->second.entries[e].r != a.entries[e].r ||
              it->second.entries[e].c != a.entries[e].c) {
            return false;
          }
          dests.push_back({cb, e});
        }
        continue;
      }
      if (j >= plan_of.size() || plan_of[j] == kNoEntry) return false;
      const BlockPlan& bp = map.plans[plan_of[j]];
      const BlockEntryIndex& idx = entry_index_[plan_of[j]];
      // Decomposed block: each triplet lands on its canonical clique. The
      // per-(row, block) map is injective — distinct global pairs stay
      // distinct inside a clique and different cliques are different blocks
      // — so every lowered entry is owned by exactly one base triplet.
      for (const Triplet& t : a.entries) {
        if (t.r >= idx.n || t.c >= idx.n) return false;
        const std::size_t k = idx.entry_clique[t.r * idx.n + t.c];
        if (k == BlockEntryIndex::kNone) return false;
        const std::size_t db = bp.converted_block[k];
        std::size_t lr = idx.local[k][t.r], lc = idx.local[k][t.c];
        if (lr > lc) std::swap(lr, lc);
        const auto dit = lrow.blocks.find(db);
        if (dit == lrow.blocks.end()) return false;
        std::size_t e = kNoEntry;
        for (std::size_t q = 0; q < dit->second.entries.size(); ++q) {
          if (dit->second.entries[q].r == lr && dit->second.entries[q].c == lc) {
            e = q;
            break;
          }
        }
        if (e == kNoEntry) return false;
        dests.push_back({db, e});
      }
    }
  }
  plan_built_ = true;
  return true;
}

bool LoweringCache::try_update(Problem& problem) {
  if (structure_fingerprint(problem) != lowering_.base_fingerprint) return false;
  util::Timer pass_timer;
  const ChordalMap& map = lowering_.map;

  if (map.identity()) {
    // The lowered problem IS the base problem up to row equilibration:
    // adopt the fresh values wholesale (cheaper than any per-entry plan)
    // and re-equilibrate below. Shape paranoia first — a fingerprint
    // collision must fall back, not corrupt the cache.
    if (problem.num_rows() != lowering_.problem.num_rows() ||
        problem.num_free() != lowering_.problem.num_free() ||
        problem.block_sizes() != lowering_.problem.block_sizes()) {
      return false;
    }
    lowering_.problem = std::move(problem);
  } else {
    if (problem.num_rows() != map.original_rows ||
        problem.num_free() != lowering_.problem.num_free() ||
        problem.block_sizes() != map.original_block_sizes) {
      return false;
    }
    if (!plan_built_ && !build_update_plan(problem)) return false;
    // Objective pattern guard, before any mutation: objective values are
    // not fingerprinted, so a nonzero entry off the cached aggregate
    // pattern means a fresh plan_decomposition would have chosen different
    // cliques — full pipeline.
    for (std::size_t pi = 0; pi < map.plans.size(); ++pi) {
      const BlockPlan& bp = map.plans[pi];
      const Matrix& c = problem.block_objective(bp.original_block);
      if (c.rows() == 0) continue;
      if (c.rows() != bp.original_size) return false;
      const BlockEntryIndex& idx = entry_index_[pi];
      for (std::size_t r = 0; r < bp.original_size; ++r) {
        for (std::size_t cc = r; cc < bp.original_size; ++cc) {
          if (c(r, cc) == 0.0 && c(cc, r) == 0.0) continue;
          if (idx.entry_clique[r * idx.n + cc] == BlockEntryIndex::kNone) return false;
        }
      }
    }

    // All guards passed — rewrite in place. Original rows keep their
    // indices across the lowering; seam overlap rows (beyond them) and
    // native cone couplings are structural ±1/∓0.5 weights that never
    // change between grid points.
    auto& lrows = lowering_.problem.mutable_rows();
    for (std::size_t i = 0; i < problem.num_rows(); ++i) {
      const Row& brow = problem.rows()[i];
      Row& lrow = lrows[i];
      lrow.rhs = brow.rhs;
      {
        // Same key sets (free indices are fingerprinted): parallel walk.
        auto bit = brow.free_coeffs.begin();
        for (auto& [v, coeff] : lrow.free_coeffs) {
          (void)v;
          coeff = bit->second;
          ++bit;
        }
      }
      std::size_t d = 0;
      SparseSym* dest = nullptr;
      std::size_t dest_block = kNoEntry;
      for (const auto& [j, a] : brow.blocks) {
        (void)j;
        for (const Triplet& t : a.entries) {
          const TripletDest td = plan_[i][d++];
          if (td.block != dest_block) {
            dest = &lrow.blocks.find(td.block)->second;
            dest_block = td.block;
          }
          dest->entries[td.entry].v = t.v;
        }
      }
    }

    // Objectives: kept blocks copy over; decomposed blocks re-scatter on
    // canonical cliques exactly as apply_decomposition did.
    for (std::size_t j = 0; j < problem.num_blocks(); ++j) {
      const std::size_t cb = map.block_map[j];
      if (cb == ChordalMap::kNotMapped) continue;
      lowering_.problem.mutable_block_objective(cb) = problem.block_objective(j);
    }
    for (std::size_t pi = 0; pi < map.plans.size(); ++pi) {
      const BlockPlan& bp = map.plans[pi];
      const BlockEntryIndex& idx = entry_index_[pi];
      const std::size_t n = bp.original_size;
      std::vector<Matrix> clique_obj;
      clique_obj.reserve(bp.forest.cliques.size());
      for (const auto& clique : bp.forest.cliques)
        clique_obj.emplace_back(clique.size(), clique.size());
      const Matrix& c = problem.block_objective(bp.original_block);
      if (c.rows() == n) {
        for (std::size_t r = 0; r < n; ++r) {
          for (std::size_t cc = r; cc < n; ++cc) {
            if (c(r, cc) == 0.0 && c(cc, r) == 0.0) continue;
            const std::size_t k = idx.entry_clique[r * n + cc];
            const std::size_t lr = idx.local[k][r], lc = idx.local[k][cc];
            clique_obj[k](lr, lc) += c(r, cc);
            if (lr != lc) clique_obj[k](lc, lr) += c(cc, r);
          }
        }
      }
      for (std::size_t k = 0; k < bp.converted_block.size(); ++k)
        lowering_.problem.mutable_block_objective(bp.converted_block[k]) =
            std::move(clique_obj[k]);
    }
    for (std::size_t v = 0; v < problem.num_free(); ++v)
      lowering_.problem.set_free_objective(v, problem.free_objective()[v]);
  }

  lowering_.passes.clear();
  {
    PassRecord rec;
    rec.name = "update";
    rec.fingerprint = lowering_.lowered_fingerprint;
    rec.detail = std::to_string(map.identity() ? lowering_.problem.num_rows()
                                               : map.original_rows) +
                 " row(s) rewritten in place" +
                 (map.identity() ? ""
                                 : ", " + std::to_string(map.plans.size()) +
                                       " decomposed cone(s) retargeted");
    rec.seconds = pass_timer.seconds();
    lowering_.passes.push_back(std::move(rec));
  }
  SOSLOCK_VERIFY_PASS(lowering_.problem, lowering_.lowered_fingerprint, "update");

  // Re-equilibrate the fresh values. Idempotent on what it leaves behind
  // (a unit-inf-norm row rescales by exactly 1.0), so untouched seam rows
  // come through verbatim.
  pass_timer.reset();
  lowering_.scaling = equilibrate_rows(lowering_.problem);
  {
    std::size_t scaled = 0;
    for (const double s : lowering_.scaling.row_scale) scaled += s != 1.0 ? 1 : 0;
    PassRecord rec;
    rec.name = "equilibrate";
    rec.fingerprint = lowering_.lowered_fingerprint;
    rec.detail = std::to_string(scaled) + "/" +
                 std::to_string(lowering_.scaling.row_scale.size()) + " rows scaled";
    rec.seconds = pass_timer.seconds();
    lowering_.passes.push_back(std::move(rec));
  }
  SOSLOCK_VERIFY_PASS(lowering_.problem, lowering_.lowered_fingerprint, "equilibrate");
  lowering_.convert_seconds = 0.0;
  for (const PassRecord& rec : lowering_.passes) lowering_.convert_seconds += rec.seconds;

  reseed_structure(lowering_);
  return true;
}

}  // namespace soslock::sdp
