#include "sdp/lowering.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace soslock::sdp {

using linalg::Matrix;

Lowering lower(Problem problem, const LoweringOptions& options) {
  Lowering out;
  const util::Timer total_timer;
  util::Timer pass_timer;

  // --- analyze: the base space. Its fingerprint is what warm blobs carry.
  out.base_fingerprint = structure_fingerprint(problem);
  const bool convert = options.sparsity == SparsityOptions::Chordal;
  {
    PassRecord rec;
    rec.name = "analyze";
    rec.fingerprint = out.base_fingerprint;
    rec.detail = problem.stats() + (convert ? "" : " (conversion off)");
    rec.seconds = pass_timer.seconds();
    out.passes.push_back(std::move(rec));
  }

  // --- decompose + lower: chordal clique planning and block lowering.
  if (convert) {
    pass_timer.reset();
    const ConversionPlan plan = plan_decomposition(problem, options.chordal);
    {
      PassRecord rec;
      rec.name = "decompose";
      rec.fingerprint = out.base_fingerprint;  // planning reads only
      rec.detail = plan.detail;
      rec.seconds = pass_timer.seconds();
      out.passes.push_back(std::move(rec));
    }
    pass_timer.reset();
    out.map = apply_decomposition(problem, plan, options.chordal.at_seam);
    {
      PassRecord rec;
      rec.name = "lower";
      // Equilibration below is structure-preserving, so the post-lower
      // fingerprint IS the lowered fingerprint — hash once, record twice.
      out.lowered_fingerprint =
          out.map.identity() ? out.base_fingerprint : structure_fingerprint(problem);
      rec.fingerprint = out.lowered_fingerprint;
      rec.detail = out.map.identity()
                       ? "identity (nothing split)"
                       : (options.chordal.at_seam ? "seam rows: " : "native cones: ") +
                             std::to_string(out.map.plans.size()) + " cone(s), max clique " +
                             std::to_string(out.map.max_clique_size());
      rec.seconds = pass_timer.seconds();
      out.passes.push_back(std::move(rec));
    }
  }
  if (!convert) out.lowered_fingerprint = out.base_fingerprint;

  // --- equilibrate: row scaling (structure-preserving).
  pass_timer.reset();
  out.scaling = equilibrate_rows(problem);
  {
    std::size_t scaled = 0;
    for (const double s : out.scaling.row_scale) scaled += s != 1.0 ? 1 : 0;
    PassRecord rec;
    rec.name = "equilibrate";
    rec.fingerprint = out.lowered_fingerprint;
    rec.detail = std::to_string(scaled) + "/" +
                 std::to_string(out.scaling.row_scale.size()) + " rows scaled";
    rec.seconds = pass_timer.seconds();
    out.passes.push_back(std::move(rec));
  }

  out.problem = std::move(problem);
  out.convert_seconds = total_timer.seconds();

  // Seed the pattern cache with the structure we effectively already know,
  // carrying the base fingerprint and the pass provenance, so the backend's
  // lookup returns this annotated instance. Repeated structurally identical
  // solves (the warm-start retry ladders) find their previous entry and
  // skip the rebuild + reseed entirely.
  const auto existing = StructureCache::global().find(out.lowered_fingerprint);
  if (existing == nullptr || existing->base_fingerprint != out.base_fingerprint ||
      !existing->compatible_with(out.problem)) {
    auto structure = std::make_shared<ProblemStructure>(
        build_structure(out.problem, out.lowered_fingerprint));
    structure->base_fingerprint = out.base_fingerprint;
    structure->provenance = out.passes;
    StructureCache::global().put(std::move(structure));
  }
  return out;
}

Solution recover(Solution solution, const Lowering& lowering) {
  // Un-scale the dual multipliers so they certify the original rows (the
  // audit and every solution.value() consumer sees the unequilibrated
  // system). Seam overlap rows are part of the lowered row space and are
  // dropped by recover_original below.
  for (std::size_t i = 0; i < solution.y.size() && i < lowering.scaling.row_scale.size();
       ++i) {
    if (lowering.scaling.row_scale[i] != 0.0) solution.y[i] /= lowering.scaling.row_scale[i];
  }
  if (!lowering.map.identity()) solution = recover_original(solution, lowering.map);
  solution.phase.convert += lowering.convert_seconds;
  return solution;
}

namespace {

/// How many cliques of `plan` cover each (r, c) entry pair of the original
/// block — the dual-slack split weights of the warm remap.
std::vector<int> entry_multiplicity(const BlockPlan& plan) {
  const std::size_t n = plan.original_size;
  std::vector<int> mult(n * n, 0);
  for (const auto& clique : plan.forest.cliques) {
    for (const std::size_t r : clique)
      for (const std::size_t c : clique) ++mult[r * n + c];
  }
  return mult;
}

}  // namespace

WarmStart remap_warm_start(const WarmStart& original, const Lowering& lowering) {
  WarmStart out;
  if (original.empty()) return out;

  // Shape of the base space this lowering came from.
  const std::size_t base_blocks = lowering.map.identity()
                                      ? lowering.problem.num_blocks()
                                      : lowering.map.original_block_sizes.size();
  const std::size_t base_rows =
      lowering.map.identity() ? lowering.problem.num_rows() : lowering.map.original_rows;
  if (original.x.size() != base_blocks || original.z.size() != base_blocks ||
      original.y.size() != base_rows || original.w.size() != lowering.problem.num_free()) {
    util::log_debug("lowering: warm blob shape does not match the base space; cold start");
    return out;
  }

  out.fingerprint = lowering.lowered_fingerprint;
  out.w = original.w;

  // Row multipliers: original rows keep their indices across the lowering;
  // seam overlap rows (appended after them) start at zero. Scale into the
  // equilibrated row space the backend sees.
  out.y.assign(lowering.problem.num_rows(), 0.0);
  for (std::size_t i = 0; i < base_rows; ++i) out.y[i] = original.y[i];
  for (std::size_t i = 0; i < out.y.size() && i < lowering.scaling.row_scale.size(); ++i)
    out.y[i] *= lowering.scaling.row_scale[i];

  out.x.assign(lowering.problem.num_blocks(), Matrix());
  out.z.assign(lowering.problem.num_blocks(), Matrix());
  if (lowering.map.identity()) {
    for (std::size_t j = 0; j < base_blocks; ++j) {
      if (original.x[j].rows() != lowering.problem.block_size(j)) {
        util::log_debug("lowering: warm blob block ", j, " shape drifted; cold start");
        return WarmStart{};
      }
      out.x[j] = original.x[j];
      out.z[j] = original.z[j];
    }
    return out;
  }

  // Kept blocks copy over; decomposed blocks restrict per clique.
  for (std::size_t j = 0; j < base_blocks; ++j) {
    const std::size_t cb = lowering.map.block_map[j];
    if (cb == ChordalMap::kNotMapped) continue;
    if (original.x[j].rows() != lowering.problem.block_size(cb)) {
      util::log_debug("lowering: warm blob block ", j, " shape drifted; cold start");
      return WarmStart{};
    }
    out.x[cb] = original.x[j];
    out.z[cb] = original.z[j];
  }
  for (const BlockPlan& plan : lowering.map.plans) {
    const std::size_t n = plan.original_size;
    const Matrix& x = original.x[plan.original_block];
    const Matrix& z = original.z[plan.original_block];
    // Drift guard: the canonical entry map of every clique must address the
    // blob's block. A blob from before the map changed (the remap analog of
    // a fingerprint collision) is rejected whole — replaying a misaligned
    // clique would scatter unrelated entries into the backend's iterate.
    if (x.rows() != n || z.rows() != n) {
      util::log_debug("lowering: warm blob cone ", plan.original_block,
                      " shape drifted (", x.rows(), " vs ", n, "); cold start");
      return WarmStart{};
    }
    for (const auto& clique : plan.forest.cliques) {
      for (const std::size_t v : clique) {
        if (v >= n) {
          util::log_debug("lowering: clique entry map drifted out of block ",
                          plan.original_block, "; cold start");
          return WarmStart{};
        }
      }
    }
    const std::vector<int> mult = entry_multiplicity(plan);
    for (std::size_t k = 0; k < plan.forest.cliques.size(); ++k) {
      const auto& clique = plan.forest.cliques[k];
      const std::size_t cb = plan.converted_block[k];
      const std::size_t nk = clique.size();
      Matrix xk(nk, nk), zk(nk, nk);
      for (std::size_t a = 0; a < nk; ++a) {
        for (std::size_t b = 0; b < nk; ++b) {
          const std::size_t r = clique[a], c = clique[b];
          // Primal restriction of a PSD matrix is PSD and exactly
          // consistent across copies; the dual splits by multiplicity so
          // the scatter-add recombination reproduces the dense slack.
          xk(a, b) = x(r, c);
          zk(a, b) = z(r, c) / static_cast<double>(mult[r * n + c]);
        }
      }
      out.x[cb] = std::move(xk);
      out.z[cb] = std::move(zk);
    }
  }
  return out;
}

WarmStart export_warm_start(const Solution& recovered, const Lowering& lowering) {
  return make_warm_start(recovered, lowering.base_fingerprint);
}

}  // namespace soslock::sdp
