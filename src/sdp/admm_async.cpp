// Asynchronous clique-parallel driver of the first-order ADMM backend.
//
// Worker model: the subtree partition assigns every PSD block to one of W
// resident workers (util::ResidentPool — spawned once per solve, not per
// iteration). Each worker loops on its own clock: snapshot the consensus
// board (y, rho, version), run the eigensplit projection of its owned blocks
// against its private previous copies, publish the results into its mailbox,
// bump its round. There is no fork-join barrier; the only synchronization is
// the bounded-staleness window.
//
// Consensus thread (the calling thread): iteration t computes y_t from the
// newest mailbox snapshots and w_{t-1} (the same cached m x m normal solve
// as the synchronous loop), publishes (y_t, rho_t, version = t) to the
// board, steps the free-variable multipliers, then waits until every worker
// has finished round t - max_staleness before gathering the snapshots and
// evaluating residuals/gap and the shared iteration control law.
//
// Staleness bound S = AdmmOptions::max_staleness: a worker may start round r
// once version >= r - S (so it can run up to S rounds ahead of the slowest
// consensus evaluation, overlapping its eigensplits with the serial normal
// solve), and the consensus evaluates iteration t from rounds >= t - S. At
// S = 0 the schedule is lockstep — every projection of round t sees exactly
// (y_t, rho_t) and the consensus evaluates exactly round-t state, which
// reproduces the synchronous loop bit-identically at any worker count. At
// S > 0 the evaluated iterate can mix rounds, but it is still a genuine
// primal-dual iterate whose pres/gap are computed exactly — the tolerance
// check is honest, only the path to it differs (the audited-verdict parity
// tests gate this).
//
// All shared state is Mutex-guarded and SOSLOCK_GUARDED_BY-annotated; the
// clang -Wthread-safety -Werror job and the TSan stress test are the
// enforcement mechanism.
#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "sdp/admm_engine.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace soslock::sdp {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// Worker -> consensus: the freshest projected copies of the worker's owned
/// blocks (parallel arrays over its block list) plus the round that produced
/// them and the largest y-version lag the worker has observed.
struct WorkerMailbox {
  util::Mutex mutex;
  std::vector<Matrix> x SOSLOCK_GUARDED_BY(mutex);
  std::vector<Matrix> s SOSLOCK_GUARDED_BY(mutex);
  std::vector<double> dres SOSLOCK_GUARDED_BY(mutex);
  int round SOSLOCK_GUARDED_BY(mutex) = -1;
  int staleness_seen SOSLOCK_GUARDED_BY(mutex) = 0;
};

/// Consensus -> workers: the separator exchange. Workers read (y, rho) at
/// whatever version the board holds, within the staleness window.
struct ConsensusBoard {
  util::Mutex mutex;
  std::condition_variable_any cv;
  Vector y SOSLOCK_GUARDED_BY(mutex);
  double rho SOSLOCK_GUARDED_BY(mutex) = 1.0;
  int version SOSLOCK_GUARDED_BY(mutex) = -1;
  bool stop SOSLOCK_GUARDED_BY(mutex) = false;
};

/// Workers -> consensus: per-worker last completed round, so the consensus
/// can wait for the staleness window without touching the mailboxes.
struct ProgressBoard {
  util::Mutex mutex;
  std::condition_variable_any cv;
  std::vector<int> round SOSLOCK_GUARDED_BY(mutex);
  bool failed SOSLOCK_GUARDED_BY(mutex) = false;
};

}  // namespace

Solution AdmmEngine::run_async(const SubtreePartition& partition) {
  const int max_stale = std::max(opt_.max_staleness, 0);

  // Compress the partition to live workers (a worker with only empty blocks
  // would spin without work); owned[w] lists block indices ascending.
  std::vector<std::vector<std::size_t>> owned;
  {
    std::vector<std::vector<std::size_t>> by_id(partition.workers);
    for (std::size_t j = 0; j < nblocks_; ++j) {
      if (p_.block_size(j) > 0) by_id[partition.block_worker[j]].push_back(j);
    }
    for (auto& blocks : by_id) {
      if (!blocks.empty()) owned.push_back(std::move(blocks));
    }
  }
  const std::size_t num_workers = owned.size();

  ConsensusBoard board;
  ProgressBoard progress;
  std::vector<WorkerMailbox> mailboxes(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    const util::MutexLock lock(mailboxes[w].mutex);
    mailboxes[w].x.reserve(owned[w].size());
    mailboxes[w].s.reserve(owned[w].size());
    for (const std::size_t j : owned[w]) {
      mailboxes[w].x.push_back(x_[j]);
      mailboxes[w].s.push_back(s_[j]);
    }
    mailboxes[w].dres.assign(owned[w].size(), 0.0);
  }
  {
    const util::MutexLock lock(progress.mutex);
    progress.round.assign(num_workers, -1);
  }
  std::vector<double> eig_seconds(num_workers, 0.0);

  // The consensus's view of the projected blocks: x_/s_ double as the
  // snapshot buffers (they hold the initial state now, and round-t mailbox
  // copies after each gather — the same role they play in the sync loop).
  Vector dres_block(nblocks_, 0.0);

  auto worker_body = [&](std::size_t w) {
    // Injected silent exit: the worker leaves its body without ever posting
    // a round, exercising the consensus stall watchdog below.
    SOSLOCK_FAULT_HOOK(util::fault_site::kAdmmWorkerExit, { return; });
    WorkerMailbox& mb = mailboxes[w];
    const std::vector<std::size_t>& blocks = owned[w];
    // Private previous-round copies: the projection recurrence is local to
    // the worker, only the results cross the mailbox.
    std::vector<Matrix> lx, ls;
    lx.reserve(blocks.size());
    ls.reserve(blocks.size());
    {
      const util::MutexLock lock(mb.mutex);
      lx = mb.x;
      ls = mb.s;
    }
    std::vector<double> ldres(blocks.size(), 0.0);
    Vector ysnap;
    double rho_snap = 1.0;
    double eig_acc = 0.0;
    int last_used = -1;
    try {
      for (int r = 0;; ++r) {
        // Wait for a published y that is (a) no older than r - S (version -1
        // means nothing is published yet, so round 0 always blocks on y_0
        // even under a nonzero staleness bound) and (b) strictly newer than
        // the one round r - 1 consumed. (b) is what keeps the schedule a
        // delayed ADMM rather than a divergent one: re-projecting against
        // the same y amplifies under over-relaxation (the (1 - alpha) slack
        // term has negative weight), and it is also exactly the lockstep
        // discipline, so S = 0 semantics are unchanged.
        const int oldest_usable = std::max(0, r - max_stale);
        int used_version = 0;
        {
          util::CondLock lock(board.mutex);
          while (!board.stop &&
                 (board.version < oldest_usable || board.version == last_used))
            lock.wait(board.cv);
          if (board.stop) break;
          ysnap = board.y;
          rho_snap = board.rho;
          used_version = board.version;
        }
        last_used = used_version;
        const util::Timer timer;
        for (std::size_t i = 0; i < blocks.size(); ++i) {
          ldres[i] = project_block(blocks[i], ysnap, rho_snap, lx[i], ls[i]);
        }
        eig_acc += timer.seconds();
        // Injected mailbox corruption: poison the projected copy before it is
        // published; the consensus-side finiteness watchdog must catch it.
        SOSLOCK_FAULT_HOOK(util::fault_site::kAdmmMailboxCorrupt, {
          if (!lx.empty() && lx[0].rows() > 0)
            lx[0](0, 0) = std::numeric_limits<double>::quiet_NaN();
        });
        {
          const util::MutexLock lock(mb.mutex);
          for (std::size_t i = 0; i < blocks.size(); ++i) {
            mb.x[i] = lx[i];
            mb.s[i] = ls[i];
            mb.dres[i] = ldres[i];
          }
          mb.round = r;
          mb.staleness_seen = std::max(mb.staleness_seen, std::max(0, r - used_version));
        }
        {
          const util::MutexLock lock(progress.mutex);
          progress.round[w] = r;
        }
        progress.cv.notify_all();
      }
    } catch (...) {
      {
        const util::MutexLock lock(progress.mutex);
        progress.failed = true;
      }
      progress.cv.notify_all();
      throw;  // captured by the pool, rethrown by join() below
    }
    eig_seconds[w] = eig_acc;  // written once pre-join, read post-join
  };

  util::ResidentPool pool(num_workers);
  pool.start(worker_body);

  const auto request_stop = [&board] {
    {
      const util::MutexLock lock(board.mutex);
      board.stop = true;
    }
    board.cv.notify_all();
  };

  Solution result;
  Solution best;
  double best_merit = std::numeric_limits<double>::infinity();
  int stagnant = 0;
  double pres = 1.0, dres = 1.0, gap = 1.0;
  long rounds_published = 0;
  int consensus_lag = 0;
  int last_gathered = -1;
  bool have_result = false;
  bool worker_failed = false;
  bool worker_stalled = false;
  bool diverged = false;
  int iter = 0;
  try {
    for (; iter < opt_.max_iterations; ++iter) {
      util::Timer phase_timer;
      y_ = solve_y(x_, s_, w_, rho_);
      phase_.schur += phase_timer.seconds();
      {
        const util::MutexLock lock(board.mutex);
        board.y = y_;
        board.rho = rho_;
        board.version = iter;
      }
      board.cv.notify_all();
      ++rounds_published;

      phase_timer.reset();
      dres = update_w(y_, w_, rho_);

      // Bounded-staleness window: evaluate iteration `iter` once every
      // worker has cleared round iter - S (at S = 0 this is exactly the
      // round the y just published feeds — the lockstep schedule) AND at
      // least one projection round is new since the last evaluation. The
      // second clause mirrors the workers' consume-each-y-once rule:
      // without it the consensus can iterate the y/w ascent repeatedly
      // against a frozen mailbox state, which is an open-loop multiplier
      // update and diverges the same way re-projecting a fixed y does.
      const int target = std::max(iter - max_stale, last_gathered + 1);
      {
        util::CondLock lock(progress.mutex);
        for (;;) {
          if (progress.failed) {
            worker_failed = true;
            break;
          }
          int min_round = opt_.max_iterations;
          for (const int r : progress.round) min_round = std::min(min_round, r);
          if (min_round >= target) {
            last_gathered = min_round;
            break;
          }
          if (opt_.worker_stall_seconds > 0.0) {
            // Satellite fix: the old unbounded wait hung forever when a
            // worker exited its body without posting a final round. A stall
            // past the bound is a typed failure, never a deadlock.
            if (!lock.wait_for(progress.cv, opt_.worker_stall_seconds)) {
              worker_failed = true;
              worker_stalled = true;
              break;
            }
          } else {
            lock.wait(progress.cv);
          }
        }
      }
      if (worker_failed) break;

      for (std::size_t w = 0; w < num_workers; ++w) {
        WorkerMailbox& mb = mailboxes[w];
        const util::MutexLock lock(mb.mutex);
        for (std::size_t i = 0; i < owned[w].size(); ++i) {
          const std::size_t j = owned[w][i];
          x_[j] = mb.x[i];
          s_[j] = mb.s[i];
          dres_block[j] = mb.dres[i];
        }
        // Consensus-side lag: this evaluation of iteration `iter` is reading
        // a round that may trail it by up to S (the dual of a worker
        // projecting with an old y — whichever side is faster, the lag shows
        // up on exactly one of the two counters).
        consensus_lag = std::max(consensus_lag, iter - mb.round);
      }
      for (const double d : dres_block) dres = std::max(dres, d);
      pres = primal_residual_inf(x_, w_) / (1.0 + data_norm_);
      const double pobj = primal_objective(x_, w_);
      const double dobj = dual_objective(y_);
      gap = std::fabs(pobj - dobj) / (1.0 + std::fabs(pobj) + std::fabs(dobj));
      phase_.recover += phase_timer.seconds();

      const ControlAction action =
          control_step(iter, pres, dres, gap, x_, s_, y_, w_, best, best_merit, stagnant);
      if (action == ControlAction::Continue) continue;
      if (action == ControlAction::Diverged) {
        diverged = true;
        break;
      }
      if (action == ControlAction::Converged) {
        fill(result, x_, s_, y_, w_, pres, dres, gap, iter);
        result.status = SolveStatus::Optimal;
      } else {
        result = std::move(best);
        result.status = action == ControlAction::Interrupted ? SolveStatus::Interrupted
                                                             : SolveStatus::MaxIterations;
      }
      have_result = true;
      break;
    }
  } catch (...) {
    // Consensus-side failure: release the workers before propagating, and
    // never let a secondary worker error mask the original one.
    request_stop();
    try {
      pool.join();
    } catch (...) {
    }
    throw;
  }

  request_stop();
  std::string worker_error = "worker exited without posting its round";
  try {
    pool.join();  // rethrows the first worker exception as a typed capture
  } catch (const std::exception& e) {
    if (have_result) {
      // An error surfacing only at shutdown cannot invalidate a result that
      // was already evaluated from consistent mailbox snapshots.
      util::log_debug("admm-async: late worker error at shutdown: ", e.what());
    } else {
      worker_failed = true;
      worker_error = e.what();
    }
  }

  // Telemetry: per-worker rounds, observed staleness, consensus activity.
  // The workers have quiesced (join above), so the mailbox locks are
  // uncontended — still taken, for the annotation contract. Gathered before
  // the fallback below so a rescued solve inherits the async history.
  std::vector<int> worker_rounds(num_workers, 0);
  {
    const util::MutexLock lock(progress.mutex);
    for (std::size_t w = 0; w < num_workers; ++w)
      worker_rounds[w] = progress.round[w] + 1;
  }
  int staleness = consensus_lag;
  for (std::size_t w = 0; w < num_workers; ++w) {
    const util::MutexLock lock(mailboxes[w].mutex);
    staleness = std::max(staleness, mailboxes[w].staleness_seen);
  }
  for (const double sec : eig_seconds) phase_.eig += sec;

  if ((worker_failed || diverged) && !have_result) {
    std::string reason;
    if (diverged) {
      reason = "diverged(phase=" + diverged_phase_ + ")";
    } else if (worker_stalled) {
      reason = "worker-stall";
    } else {
      reason = "worker-death: " + worker_error;
    }
    if (opt_.sync_fallback) {
      // Self-healing path: restart as the synchronous lockstep loop, warm
      // from the last consistent best iterate (the gathered snapshot may be
      // poisoned or partial), and record the recovery on the Solution.
      RecoveryRecord rec;
      rec.action = "sync-fallback";
      rec.from = "admm-async";
      rec.to = "admm-sync";
      rec.reason = reason;
      rec.attempt = 1;
      recoveries_.push_back(std::move(rec));
      util::log_info("admm-async: ", reason,
                     "; falling back to the synchronous lockstep loop");
      if (best_merit < std::numeric_limits<double>::infinity() &&
          best.x.size() == nblocks_) {
        x_ = best.x;
        s_ = best.z;
        y_ = best.y;
        y_.resize(mext_, 0.0);  // consensus multipliers restart at zero
        w_ = best.w;
        for (std::size_t j = 0; j < nblocks_; ++j) {
          x_[j].symmetrize();
          s_[j].symmetrize();
        }
      } else {
        init_state();
      }
      diverged_phase_.clear();
      Solution fb = run_sync();
      fb.iterations += iter;  // consensus iterations spent before the rescue
      fb.worker_iterations = std::move(worker_rounds);
      fb.max_staleness_seen = staleness;
      fb.consensus_rounds = rounds_published;
      return fb;
    }
    // Fallback disabled: surface the typed terminal status, never a hang or
    // a raw exception.
    if (best_merit == std::numeric_limits<double>::infinity())
      fill(best, x_, s_, y_, w_, pres, dres, gap, std::max(iter - 1, 0));
    result = std::move(best);
    result.status = diverged ? SolveStatus::Diverged : SolveStatus::Faulted;
    result.faulted_phase = diverged ? diverged_phase_ : reason;
    have_result = true;
  }

  if (!have_result) {
    if (best_merit == std::numeric_limits<double>::infinity())
      fill(best, x_, s_, y_, w_, pres, dres, gap, iter - 1);
    result = std::move(best);
    result.status = SolveStatus::MaxIterations;
  }

  result.worker_iterations = std::move(worker_rounds);
  result.max_staleness_seen = staleness;
  result.consensus_rounds = rounds_published;
  if (result.x.size() == nblocks_) {
    result.consensus_residual = overlap_residual_inf(result.x);
  }
  util::log_debug("admm-async: ", num_workers, " worker(s), staleness<=", max_stale,
                  ", observed ", staleness, ", ", rounds_published, " consensus round(s)");
  return result;
}

}  // namespace soslock::sdp
