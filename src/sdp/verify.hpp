#pragma once
// Debug-mode structural verifier for the SOS→SDP lowering pipeline.
//
// Six passes now mutate or annotate a cached sdp::Problem (analyze →
// decompose → lower → partition → equilibrate, plus LoweringCache's
// coefficient-update fast path),
// and every one of them assumes invariants the others established: triplet
// indices inside their block and upper-triangular-canonical, clique entry
// maps consistent with their clique vertices, an acyclic RIP-ordered clique
// tree, zero-rhs overlap couplings, symmetric finite objectives, a structure
// fingerprint that still matches the data it was stamped from. A pass that
// silently breaks one of these does not crash — it produces a *wrong
// certificate* several layers later (a misaligned warm start, a Schur row
// read out of range, a completion walked along a cyclic tree). verify()
// checks all of them in one sweep so corruption fails loudly at the pass
// that introduced it.
//
// Usage:
//  * verify(p, structure) — full check; always compiled, callable from tests
//    and external drivers. `structure` adds the fingerprint-recomputation,
//    incidence and PassRecord-provenance checks when non-null.
//  * SOSLOCK_VERIFY_PASS(p, fingerprint, "pass") — the automatic post-pass
//    hook inside sdp/lowering. Under the SDP_VERIFY CMake option (default ON
//    for Debug builds, ON in the CI sanitizer matrix) it verifies and throws
//    std::logic_error naming the pass that broke the invariant; in Release
//    it compiles to nothing, so the hot path pays zero (the bench gates
//    confirm this — they run the Release build).
//
// Adding a pass to the pipeline? Add its name to pass_rank() below so the
// provenance-monotonicity check accepts it, place a SOSLOCK_VERIFY_PASS
// after its mutation, and — if it introduces a new structural invariant —
// add a check_* lambda in verify() with a new check id. The check ids are a
// stable interface: tests match on them (VerifyResult::has).
#include <cstdint>
#include <string>
#include <vector>

#include "sdp/problem.hpp"
#include "sdp/structure.hpp"

namespace soslock::sdp {

/// One broken invariant: a machine-matchable check id plus a human-readable
/// message naming the offending index/entry.
struct VerifyViolation {
  std::string check;    // e.g. "triplet-range", "clique-tree-cycle"
  std::string message;  // detail: which row/block/clique/entry broke it
};

struct VerifyResult {
  /// The lowering pass that produced the verified problem: the last
  /// provenance record when verifying against a ProblemStructure, or the
  /// name the SOSLOCK_VERIFY_PASS hook passed. Empty when unknown.
  std::string pass;
  std::vector<VerifyViolation> violations;

  bool ok() const { return violations.empty(); }
  /// Any violation with the given check id?
  bool has(const std::string& check) const;
  /// Multi-line report naming the pass and every violation; "ok" when clean.
  std::string str() const;
};

/// Verify every structural invariant of `p` the pipeline assumes:
///  - block dims: objective shape per block, triplet indices in range and
///    upper-triangular-canonical (r <= c, no duplicate positions), free
///    indices in range;
///  - decomposed cones: clique vertices ascending/in range, clique blocks
///    bijectively assigned with matching sizes, vertex cover, clique-tree
///    parents acyclic and RIP-preordered, overlap couplings zero-rhs with
///    valid entries into their clique blocks only;
///  - values: no NaN/Inf anywhere in rhs / triplets / free coefficients /
///    objectives, block objectives exactly symmetric;
///  - with `structure`: shape compatibility, fingerprint recomputation
///    matching the stamped fingerprint, row→block incidence matching a
///    recomputation, and PassRecord provenance monotone (known pass names in
///    pipeline order, fingerprints consistent with base/lowered stamps).
VerifyResult verify(const Problem& p, const ProblemStructure* structure = nullptr);

/// Post-pass hook body: verify(p), additionally recompute the structure
/// fingerprint against `expected_fingerprint` (0 skips that check), and
/// throw std::logic_error with a report naming `pass` on any violation.
/// Always compiled (tests drive it directly); the macro below gates the
/// pipeline call sites.
void verify_pass_or_throw(const Problem& p, std::uint64_t expected_fingerprint,
                          const char* pass, const ProblemStructure* structure = nullptr);

#if defined(SOSLOCK_SDP_VERIFY)
#define SOSLOCK_VERIFY_PASS(problem, fingerprint, pass) \
  ::soslock::sdp::verify_pass_or_throw((problem), (fingerprint), (pass))
#else
#define SOSLOCK_VERIFY_PASS(problem, fingerprint, pass) ((void)0)
#endif

}  // namespace soslock::sdp
